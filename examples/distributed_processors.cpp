// A deployment that looks like the paper's Figure 1: many brokers, several
// SPE-equipped processors, sources scattered over the overlay, users
// everywhere. Shows load management policies, per-processor query merging,
// rate calibration from observed traffic, and the self-tuning loop.

#include <cstdio>

#include "core/system.h"
#include "core/workload.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "stream/sensor_dataset.h"

using namespace cosmos;

int main() {
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 40;
  topo_opts.ba_edges_per_node = 3;
  topo_opts.seed = 2024;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto tree = DisseminationTree::FromEdges(
                  topo_opts.num_nodes, *MinimumSpanningTree(topo.graph))
                  .value();

  SystemOptions options;
  options.distribution = DistributionPolicy::kSignatureAffinity;
  CosmosSystem system(std::move(tree), options);
  system.SetOverlay(topo.graph);

  // Sensors publish from scattered nodes; three nodes carry SPEs.
  SensorDatasetOptions sopts;
  sopts.num_stations = 16;
  sopts.duration = 30 * kMinute;
  SensorDataset sensors(sopts);
  Rng rng(7);
  for (int k = 0; k < sopts.num_stations; ++k) {
    (void)system.RegisterSource(sensors.SchemaOf(k),
                                sensors.RatePerStation(),
                                static_cast<NodeId>(rng.NextBounded(40)));
  }
  for (NodeId p : {3, 17, 31}) {
    (void)system.AddProcessor(p);
  }

  // 60 zipf-skewed queries from random users.
  WorkloadOptions wl;
  wl.zipf_theta = 1.2;
  wl.seed = 99;
  QueryWorkloadGenerator gen(&system.catalog(), wl);
  int results = 0;
  for (int i = 0; i < 60; ++i) {
    auto id = system.SubmitQuery(
        gen.NextCql(), static_cast<NodeId>(rng.NextBounded(40)),
        [&results](const std::string&, const Tuple&) { ++results; });
    if (!id.ok()) {
      std::fprintf(stderr, "submit: %s\n", id.status().ToString().c_str());
    }
  }

  std::printf("query placement (signature affinity co-locates mergeable "
              "queries):\n");
  for (NodeId p : {3, 17, 31}) {
    const Processor* proc = system.processor(p);
    std::printf("  processor %2d: %2zu queries in %2zu groups\n", p,
                proc->num_queries(), proc->grouping().num_groups());
  }

  // Stream the sensor history.
  auto replay = sensors.MakeReplay();
  (void)system.Replay(*replay);
  std::printf("replayed history: %d result tuples delivered, %llu bytes "
              "moved\n",
              results,
              static_cast<unsigned long long>(
                  system.network().total_bytes()));

  // Self-tuning loop: calibrate rates from observation, then reorganize
  // the dissemination tree for the actual flows.
  size_t calibrated = system.CalibrateRates();
  auto stats = system.SelfTune();
  if (stats.ok()) {
    std::printf("self-tuning: %zu stream rates recalibrated; tree cost "
                "%.0f -> %.0f (%d swaps)\n",
                calibrated, stats->initial_cost, stats->final_cost,
                stats->swaps_applied);
  }

  // Everything still flows after the reorganization.
  int before = results;
  auto replay2 = sensors.MakeReplay();
  (void)system.Replay(*replay2);
  std::printf("post-reorganization replay delivered %d more tuples\n",
              results - before);
  return (results > before && before > 0) ? 0 : 1;
}
