// Quickstart: stand up a small COSMOS deployment, submit one continuous
// query, stream data through the content-based network, and watch results
// arrive at the user's node.
//
//   overlay:  0 -- 1 -- 2 -- 3   (a 4-node chain)
//   source:   OpenAuction published at node 0
//   processor: node 1 (runs the SPE)
//   user:      node 3

#include <cstdio>

#include "core/system.h"
#include "stream/auction_dataset.h"

using namespace cosmos;

int main() {
  // 1. Build the overlay dissemination tree (a chain).
  std::vector<Edge> edges = {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}};
  auto tree = DisseminationTree::FromEdges(4, edges);
  if (!tree.ok()) {
    std::fprintf(stderr, "tree: %s\n", tree.status().ToString().c_str());
    return 1;
  }

  // 2. Create the system and register the auction source at node 0.
  CosmosSystem system(std::move(*tree));
  AuctionDataset auctions;
  Status s = system.RegisterSource(AuctionDataset::OpenAuctionSchema(),
                                   /*rate=*/2.0, /*publisher=*/0);
  if (!s.ok()) {
    std::fprintf(stderr, "register: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Equip node 1 with a stream processing engine.
  s = system.AddProcessor(1);
  if (!s.ok()) {
    std::fprintf(stderr, "processor: %s\n", s.ToString().c_str());
    return 1;
  }

  // 4. A user at node 3 asks for expensive auctions.
  int received = 0;
  auto result = system.SubmitQuery(
      "SELECT itemID, start_price FROM OpenAuction [Range 1 Hour] "
      "WHERE start_price > 900",
      /*user_node=*/3, [&received](const std::string& stream,
                                   const Tuple& t) {
        ++received;
        if (received <= 5) {
          std::printf("  result on '%s': %s\n", stream.c_str(),
                      t.ToString().c_str());
        }
      });
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("submitted query %s\n", result->c_str());

  // 5. Replay the auction history through the CBN.
  auto gen = auctions.MakeOpenGenerator();
  int published = 0;
  while (auto t = gen->Next()) {
    (void)system.PublishSourceTuple("OpenAuction", *t);
    ++published;
  }

  std::printf("published %d tuples, received %d results\n", published,
              received);
  std::printf("bytes on the wire: %llu across %zu links\n",
              static_cast<unsigned long long>(system.network().total_bytes()),
              system.network().link_stats().size());
  return received > 0 ? 0 : 1;
}
