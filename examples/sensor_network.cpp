// The paper's §5 scenario at example scale: 63 SensorScope-like streams, a
// power-law overlay, randomly generated user queries (zipf-skewed), query
// merging at the processor, and a replay of the sensor history through the
// CBN. Prints how many queries merged into how many groups and the
// bandwidth the merging saved.

#include <cstdio>

#include "core/system.h"
#include "core/workload.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "stream/sensor_dataset.h"

using namespace cosmos;

int main() {
  // A 50-node Barabási–Albert overlay with an MST dissemination tree.
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 50;
  topo_opts.seed = 7;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto mst = MinimumSpanningTree(topo.graph);
  auto tree = DisseminationTree::FromEdges(topo.graph.num_nodes(), *mst);
  if (!tree.ok()) return 1;

  CosmosSystem system(std::move(*tree));

  // 63 sensor stations publishing from random nodes.
  SensorDatasetOptions sensor_opts;
  sensor_opts.duration = 30 * kMinute;
  SensorDataset sensors(sensor_opts);
  Rng rng(99);
  for (int k = 0; k < sensors.num_stations(); ++k) {
    NodeId publisher = static_cast<NodeId>(rng.NextBounded(50));
    (void)system.RegisterSource(sensors.SchemaOf(k), sensors.RatePerStation(),
                                publisher);
  }
  (void)system.AddProcessor(0);

  // 200 zipf(1.5)-skewed random queries from random user nodes.
  WorkloadOptions wl;
  wl.zipf_theta = 1.5;
  wl.seed = 2024;
  QueryWorkloadGenerator gen(&system.catalog(), wl);
  int results = 0;
  int submitted = 0;
  for (int i = 0; i < 200; ++i) {
    NodeId user = static_cast<NodeId>(rng.NextBounded(50));
    auto id = system.SubmitQuery(gen.NextCql(), user,
                                 [&results](const std::string&,
                                            const Tuple&) { ++results; });
    if (id.ok()) ++submitted;
  }

  std::printf("submitted %d queries -> %zu groups (grouping ratio %.3f)\n",
              submitted, system.TotalGroups(),
              static_cast<double>(system.TotalGroups()) / submitted);
  double member_rate = system.TotalMemberRate();
  double rep_rate = system.TotalRepresentativeRate();
  std::printf("estimated result rates: unmerged %.1f B/s, merged %.1f B/s "
              "(saved %.1f%%)\n",
              member_rate, rep_rate,
              100.0 * (member_rate - rep_rate) / member_rate);

  // Replay the sensor data.
  auto replay = sensors.MakeReplay();
  (void)system.Replay(*replay);

  std::printf("delivered %d result tuples; total bytes on the wire: %llu\n",
              results,
              static_cast<unsigned long long>(
                  system.network().total_bytes()));
  return submitted > 0 && results > 0 ? 0 : 1;
}
