// Demonstrates the overlay network optimizer (paper §3.2): build a random
// dissemination tree over a power-law overlay, load it with flows, and let
// the cost-driven local reorganization improve it. Compares against the
// MST the paper's evaluation uses.

#include <cstdio>

#include "overlay/optimizer.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"

using namespace cosmos;

int main() {
  TopologyOptions opts;
  opts.num_nodes = 60;
  opts.ba_edges_per_node = 3;
  opts.seed = 11;
  Topology topo = GenerateBarabasiAlbert(opts);

  // Random flows: a few sources streaming to many sinks.
  Rng rng(5);
  std::vector<Flow> flows;
  for (int i = 0; i < 40; ++i) {
    Flow f;
    f.source = static_cast<NodeId>(rng.NextBounded(5));  // hot sources
    f.sink = static_cast<NodeId>(rng.NextBounded(60));
    f.rate_bps = rng.NextDouble(100.0, 10000.0);
    flows.push_back(f);
  }

  OverlayOptimizer optimizer(topo.graph);

  auto random_tree_edges = RandomSpanningTree(topo.graph, rng);
  auto random_tree =
      DisseminationTree::FromEdges(opts.num_nodes, *random_tree_edges);
  auto mst_edges = MinimumSpanningTree(topo.graph);
  auto mst = DisseminationTree::FromEdges(opts.num_nodes, *mst_edges);

  double random_cost = optimizer.TreeCost(*random_tree, flows);
  double mst_cost = optimizer.TreeCost(*mst, flows);

  OverlayOptimizer::Stats stats;
  auto optimized = optimizer.Optimize(*random_tree, flows, &stats);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimize: %s\n",
                 optimized.status().ToString().c_str());
    return 1;
  }
  double optimized_cost = optimizer.TreeCost(*optimized, flows);

  std::printf("tree cost under the flow-weighted delay model:\n");
  std::printf("  random spanning tree : %12.0f\n", random_cost);
  std::printf("  minimum spanning tree: %12.0f\n", mst_cost);
  std::printf("  optimized (from random, %d swaps): %12.0f\n",
              stats.swaps_applied, optimized_cost);
  std::printf("local reorganization recovered %.1f%% of the random tree's "
              "excess cost\n",
              100.0 * (random_cost - optimized_cost) /
                  std::max(1.0, random_cost - mst_cost));
  return optimized_cost <= random_cost ? 0 : 1;
}
