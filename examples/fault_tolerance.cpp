// Data-layer fault tolerance in action (paper Figure 2's data-layer
// fault-tolerance module): a tree link fails mid-replay, the CBN buffers
// the traffic that would have crossed it, and the overlay repair splices a
// backup edge in and flushes the buffer — the user misses nothing.

#include <cstdio>

#include "core/system.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "stream/sensor_dataset.h"

using namespace cosmos;

int main() {
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 24;
  topo_opts.ba_edges_per_node = 3;
  topo_opts.seed = 41;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto tree = DisseminationTree::FromEdges(
                  topo_opts.num_nodes, *MinimumSpanningTree(topo.graph))
                  .value();

  CosmosSystem system(tree);
  system.SetOverlay(topo.graph);

  SensorDatasetOptions sopts;
  sopts.num_stations = 4;
  sopts.duration = 20 * kMinute;
  SensorDataset sensors(sopts);
  for (int k = 0; k < sopts.num_stations; ++k) {
    (void)system.RegisterSource(sensors.SchemaOf(k),
                                sensors.RatePerStation(), k * 5);
  }
  (void)system.AddProcessor(2);

  int received = 0;
  auto id = system.SubmitQuery(
      "SELECT ambient_temperature, relative_humidity FROM sensor_01",
      /*user=*/20, [&](const std::string&, const Tuple&) { ++received; });
  if (!id.ok()) {
    std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
    return 1;
  }

  // Stream the first half of the history.
  auto replay = sensors.MakeReplay();
  int streamed = 0;
  const int total = 4 * 40;  // 4 stations x 40 samples
  while (streamed < total / 2) {
    auto t = replay->Next();
    if (!t) break;
    (void)system.PublishSourceTuple(t->schema()->stream_name(), *t);
    ++streamed;
  }
  std::printf("first half streamed: user received %d tuples\n", received);

  // Take down a link on the processor-to-user delivery path, keep
  // streaming.
  auto path = system.network().tree().Path(2, 20);
  Edge victim{path[path.size() - 2], path[path.size() - 1], 0};
  (void)system.FailLink(victim.u, victim.v);
  std::printf("link %d-%d failed (last hop to the user)\n", victim.u,
              victim.v);
  while (auto t = replay->Next()) {
    (void)system.PublishSourceTuple(t->schema()->stream_name(), *t);
    ++streamed;
  }
  std::printf("second half streamed during the outage: received %d, "
              "buffered %llu datagrams\n",
              received,
              static_cast<unsigned long long>(
                  system.network().buffered_datagrams()));

  // Repair from the overlay and flush.
  Status s = system.RepairLinks();
  if (!s.ok()) {
    std::fprintf(stderr, "repair: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("after repair: received %d (expected %d), recovered %llu\n",
              received, 40,
              static_cast<unsigned long long>(
                  system.network().recovered_datagrams()));
  return received == 40 ? 0 : 1;
}
