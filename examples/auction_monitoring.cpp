// The auction monitoring application of the paper's Table 1 / Figure 3:
// two users issue the overlapping join queries q1 and q2; COSMOS merges
// them into the representative q3, runs q3 once on the SPE at node n1, and
// splits the shared result stream s3 back into s1 and s2 at the branch
// node n2 using re-tightened CBN profiles.
//
//        n1 (processor, SPE)
//        |
//        n2 (broker — the split point)
//       .  .
//      n3    n4
//     (q1)  (q2)
//
// Sources publish at n1's side so the result stream s3 crosses n1–n2 once.

#include <cstdio>

#include "core/system.h"
#include "stream/auction_dataset.h"

using namespace cosmos;

namespace {

const char* kQ1 =
    "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C "
    "WHERE O.itemID = C.itemID";

const char* kQ2 =
    "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp "
    "FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
    "WHERE O.itemID = C.itemID";

}  // namespace

int main() {
  std::vector<Edge> edges = {{0, 1, 1.0}, {1, 2, 1.0}, {1, 3, 1.0}};
  auto tree = DisseminationTree::FromEdges(4, edges);
  if (!tree.ok()) return 1;

  CosmosSystem system(std::move(*tree));
  AuctionDatasetOptions opts;
  opts.num_auctions = 2000;
  opts.max_duration = 8 * kHour;
  AuctionDataset auctions(opts);

  (void)system.RegisterSource(AuctionDataset::OpenAuctionSchema(), 2.0, 0);
  (void)system.RegisterSource(AuctionDataset::ClosedAuctionSchema(), 1.8, 0);
  (void)system.AddProcessor(0);  // n1

  int q1_results = 0;
  int q2_results = 0;
  auto q1 = system.SubmitQuery(kQ1, /*user_node=*/2,
                               [&](const std::string&, const Tuple&) {
                                 ++q1_results;
                               });
  auto q2 = system.SubmitQuery(kQ2, /*user_node=*/3,
                               [&](const std::string&, const Tuple&) {
                                 ++q2_results;
                               });
  if (!q1.ok() || !q2.ok()) {
    std::fprintf(stderr, "submit failed: %s %s\n",
                 q1.status().ToString().c_str(),
                 q2.status().ToString().c_str());
    return 1;
  }

  const Processor* proc = system.processor(0);
  std::printf("queries submitted: %s, %s\n", q1->c_str(), q2->c_str());
  std::printf("query groups on the processor: %zu (merged: %s)\n",
              proc->grouping().num_groups(),
              proc->grouping().num_groups() == 1 ? "yes" : "no");
  for (const auto& [gid, group] : proc->grouping().groups()) {
    std::printf("  representative (the paper's q3):\n    %s\n",
                Unparse(group.representative).c_str());
  }

  // Stream the auction history.
  auto replay = auctions.MakeReplay();
  while (auto t = replay->Next()) {
    (void)system.PublishSourceTuple(t->schema()->stream_name(), *t);
  }

  std::printf("q1 results (closed within 3h): %d\n", q1_results);
  std::printf("q2 results (closed within 5h): %d\n", q2_results);
  std::printf("q1 is a subset of q2's auctions, as expected: %s\n",
              q1_results <= q2_results ? "yes" : "NO (bug!)");

  // Figure 3's point: bytes on the shared n1-n2 link vs the two last-mile
  // links.
  const auto& stats = system.network().link_stats();
  for (const auto& [key, st] : stats) {
    std::printf("  link %d-%d: %llu datagrams, %llu bytes\n", key.first,
                key.second, static_cast<unsigned long long>(st.datagrams),
                static_cast<unsigned long long>(st.bytes));
  }
  return (q1_results > 0 && q1_results <= q2_results) ? 0 : 1;
}
