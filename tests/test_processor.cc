#include "core/processor.h"

#include <gtest/gtest.h>

#include "stream/auction_dataset.h"

namespace cosmos {
namespace {

// n0 (processor + sources) - n1 - n2, n1 - n3 (users at n2/n3).
class ProcessorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tree_ = std::make_unique<DisseminationTree>(
        DisseminationTree::FromEdges(
            4, {Edge{0, 1, 1.0}, Edge{1, 2, 1.0}, Edge{1, 3, 1.0}})
            .value());
    network_ = std::make_unique<ContentBasedNetwork>(*tree_);
    AuctionDataset auctions;
    ASSERT_TRUE(auctions.RegisterAll(catalog_).ok());
  }

  std::unique_ptr<Processor> MakeProcessor(bool merging = true) {
    ProcessorOptions opts;
    opts.enable_merging = merging;
    return std::make_unique<Processor>(0, &catalog_, network_.get(), opts);
  }

  Tuple Open(int64_t item, double price, Timestamp ts) {
    return Tuple(AuctionDataset::OpenAuctionSchema(),
                 {Value(item), Value(int64_t{1}), Value(price),
                  Value(static_cast<int64_t>(ts))},
                 ts);
  }

  Catalog catalog_;
  std::unique_ptr<DisseminationTree> tree_;
  std::unique_ptr<ContentBasedNetwork> network_;
};

TEST_F(ProcessorTest, SubmitInstallsRepresentativeAndDelivers) {
  auto proc = MakeProcessor();
  int hits = 0;
  ASSERT_TRUE(proc->SubmitQuery("q1",
                                "SELECT itemID FROM OpenAuction WHERE "
                                "start_price > 100",
                                /*user_node=*/2,
                                [&](const std::string&, const Tuple&) {
                                  ++hits;
                                })
                  .ok());
  EXPECT_EQ(proc->num_queries(), 1u);
  EXPECT_EQ(proc->num_installed_representatives(), 1u);
  network_->Publish(0, Datagram{"OpenAuction", Open(1, 150, 0)});
  network_->Publish(0, Datagram{"OpenAuction", Open(2, 50, 1)});
  EXPECT_EQ(hits, 1);
}

TEST_F(ProcessorTest, BadQueryRejectedAndStateClean) {
  auto proc = MakeProcessor();
  EXPECT_FALSE(proc->SubmitQuery("bad", "SELECT nothing FROM nowhere", 2,
                                 nullptr)
                   .ok());
  EXPECT_EQ(proc->num_queries(), 0u);
  EXPECT_EQ(proc->grouping().num_queries(), 0u);
}

TEST_F(ProcessorTest, DuplicateIdRejected) {
  auto proc = MakeProcessor();
  ASSERT_TRUE(
      proc->SubmitQuery("q", "SELECT itemID FROM OpenAuction", 2, nullptr)
          .ok());
  EXPECT_EQ(proc->SubmitQuery("q", "SELECT itemID FROM OpenAuction", 2,
                              nullptr)
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ProcessorTest, MergedQueriesShareOneRepresentative) {
  auto proc = MakeProcessor(/*merging=*/true);
  int hits2 = 0, hits3 = 0;
  ASSERT_TRUE(proc->SubmitQuery("q1",
                                "SELECT itemID, start_price FROM "
                                "OpenAuction WHERE "
                                "start_price >= 100 AND start_price <= 500",
                                2,
                                [&](const std::string&, const Tuple&) {
                                  ++hits2;
                                })
                  .ok());
  ASSERT_TRUE(proc->SubmitQuery("q2",
                                "SELECT itemID, start_price FROM "
                                "OpenAuction WHERE "
                                "start_price >= 300 AND start_price <= 800",
                                3,
                                [&](const std::string&, const Tuple&) {
                                  ++hits3;
                                })
                  .ok());
  EXPECT_EQ(proc->grouping().num_groups(), 1u);
  EXPECT_EQ(proc->num_installed_representatives(), 1u);

  network_->Publish(0, Datagram{"OpenAuction", Open(1, 200, 0)});  // q1 only
  network_->Publish(0, Datagram{"OpenAuction", Open(2, 400, 1)});  // both
  network_->Publish(0, Datagram{"OpenAuction", Open(3, 700, 2)});  // q2 only
  network_->Publish(0, Datagram{"OpenAuction", Open(4, 900, 3)});  // neither
  EXPECT_EQ(hits2, 2);
  EXPECT_EQ(hits3, 2);
}

TEST_F(ProcessorTest, UnmergedProcessorKeepsQueriesSeparate) {
  auto proc = MakeProcessor(/*merging=*/false);
  ASSERT_TRUE(proc->SubmitQuery("q1", "SELECT itemID FROM OpenAuction", 2,
                                nullptr)
                  .ok());
  ASSERT_TRUE(proc->SubmitQuery("q2", "SELECT itemID FROM OpenAuction", 3,
                                nullptr)
                  .ok());
  EXPECT_EQ(proc->grouping().num_groups(), 2u);
  EXPECT_EQ(proc->num_installed_representatives(), 2u);
}

TEST_F(ProcessorTest, LateJoinerStillGetsOnlyItsResults) {
  auto proc = MakeProcessor();
  int hits_q1 = 0, hits_q2 = 0;
  ASSERT_TRUE(proc->SubmitQuery("q1",
                                "SELECT itemID, start_price FROM "
                                "OpenAuction WHERE "
                                "start_price >= 100 AND start_price <= 200",
                                2,
                                [&](const std::string&, const Tuple&) {
                                  ++hits_q1;
                                })
                  .ok());
  network_->Publish(0, Datagram{"OpenAuction", Open(1, 150, 0)});
  EXPECT_EQ(hits_q1, 1);
  // Second query widens the group (version bump + resubscription of q1).
  ASSERT_TRUE(proc->SubmitQuery("q2",
                                "SELECT itemID, start_price FROM "
                                "OpenAuction WHERE "
                                "start_price >= 150 AND start_price <= 400",
                                3,
                                [&](const std::string&, const Tuple&) {
                                  ++hits_q2;
                                })
                  .ok());
  network_->Publish(0, Datagram{"OpenAuction", Open(2, 180, 1)});  // both
  network_->Publish(0, Datagram{"OpenAuction", Open(3, 300, 2)});  // q2 only
  EXPECT_EQ(hits_q1, 2);
  EXPECT_EQ(hits_q2, 2);
}

TEST_F(ProcessorTest, RemoveQueryStopsItsDeliveries) {
  auto proc = MakeProcessor();
  int hits1 = 0, hits2 = 0;
  ASSERT_TRUE(proc->SubmitQuery(
                      "q1", "SELECT itemID FROM OpenAuction", 2,
                      [&](const std::string&, const Tuple&) { ++hits1; })
                  .ok());
  ASSERT_TRUE(proc->SubmitQuery(
                      "q2", "SELECT itemID FROM OpenAuction", 3,
                      [&](const std::string&, const Tuple&) { ++hits2; })
                  .ok());
  ASSERT_TRUE(proc->RemoveQuery("q1").ok());
  EXPECT_EQ(proc->RemoveQuery("q1").code(), StatusCode::kNotFound);
  network_->Publish(0, Datagram{"OpenAuction", Open(1, 10, 0)});
  EXPECT_EQ(hits1, 0);
  EXPECT_EQ(hits2, 1);
}

TEST_F(ProcessorTest, RemovingLastQueryTearsDownEverything) {
  auto proc = MakeProcessor();
  ASSERT_TRUE(proc->SubmitQuery("q", "SELECT itemID FROM OpenAuction", 2,
                                nullptr)
                  .ok());
  ASSERT_TRUE(proc->RemoveQuery("q").ok());
  EXPECT_EQ(proc->num_installed_representatives(), 0u);
  // No dangling subscriptions: publishing moves no bytes.
  network_->ResetStats();
  network_->Publish(0, Datagram{"OpenAuction", Open(1, 10, 0)});
  EXPECT_EQ(network_->total_bytes(), 0u);
  EXPECT_EQ(network_->total_deliveries(), 0u);
}

TEST_F(ProcessorTest, SourceSubscriptionIsShared) {
  // Two singleton groups over the same stream: the processor holds one
  // merged source subscription, so each source tuple enters the SPE once.
  auto proc = MakeProcessor(/*merging=*/false);
  int hits1 = 0, hits2 = 0;
  ASSERT_TRUE(proc->SubmitQuery(
                      "q1", "SELECT itemID FROM OpenAuction", 2,
                      [&](const std::string&, const Tuple&) { ++hits1; })
                  .ok());
  ASSERT_TRUE(proc->SubmitQuery(
                      "q2", "SELECT itemID FROM OpenAuction", 3,
                      [&](const std::string&, const Tuple&) { ++hits2; })
                  .ok());
  network_->Publish(0, Datagram{"OpenAuction", Open(1, 10, 0)});
  EXPECT_EQ(hits1, 1);  // not 2: no duplicate source delivery
  EXPECT_EQ(hits2, 1);
}

}  // namespace
}  // namespace cosmos
