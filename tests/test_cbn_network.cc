#include "cbn/network.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "query/parser.h"

namespace cosmos {
namespace {

std::shared_ptr<const Schema> SensorSchema() {
  return std::make_shared<Schema>(
      "s", std::vector<AttributeDef>{{"temp", ValueType::kDouble, -10, 40},
                                     {"hum", ValueType::kDouble, 0, 100},
                                     {"timestamp", ValueType::kInt64}});
}

Datagram MakeDatagram(double temp, double hum, Timestamp ts = 0) {
  return Datagram{
      "s", Tuple(SensorSchema(),
                 {Value(temp), Value(hum), Value(static_cast<int64_t>(ts))},
                 ts)};
}

ConjunctiveClause Clause(const std::string& text) {
  auto c = ClauseFromExpr(*ParseExpression(text));
  EXPECT_TRUE(c.ok());
  return *c;
}

// 0 - 1 - 2
//     |
//     3
DisseminationTree StarTree() {
  return DisseminationTree::FromEdges(
             4, {Edge{0, 1, 1.0}, Edge{1, 2, 1.0}, Edge{1, 3, 1.0}})
      .value();
}

TEST(Network, DeliversToMatchingSubscriberOnly) {
  ContentBasedNetwork net(StarTree());
  int hits2 = 0;
  int hits3 = 0;
  Profile p2;
  p2.AddFilter(Filter("s", Clause("temp > 20")));
  net.Subscribe(2, p2, [&](const std::string&, const Tuple&) { ++hits2; });
  Profile p3;
  p3.AddFilter(Filter("s", Clause("temp <= 20")));
  net.Subscribe(3, p3, [&](const std::string&, const Tuple&) { ++hits3; });

  net.Publish(0, MakeDatagram(25, 50));
  net.Publish(0, MakeDatagram(10, 50));
  EXPECT_EQ(hits2, 1);
  EXPECT_EQ(hits3, 1);
}

TEST(Network, NoSubscribersMeansNoTraffic) {
  ContentBasedNetwork net(StarTree());
  size_t delivered = net.Publish(0, MakeDatagram(25, 50));
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(net.total_bytes(), 0u);
}

TEST(Network, LocalSubscriberGetsDataWithoutLinkTraffic) {
  ContentBasedNetwork net(StarTree());
  int hits = 0;
  Profile p;
  p.AddStream("s");
  net.Subscribe(0, p, [&](const std::string&, const Tuple&) { ++hits; });
  net.Publish(0, MakeDatagram(1, 1));
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(net.total_bytes(), 0u);
}

TEST(Network, SharedPathTransfersOnce) {
  // Two subscribers behind the same branch: link 0-1 carries one copy.
  ContentBasedNetwork net(StarTree());
  Profile p;
  p.AddStream("s");
  net.Subscribe(2, p, nullptr);
  net.Subscribe(3, p, nullptr);
  net.Publish(0, MakeDatagram(1, 1));
  const auto& stats = net.link_stats();
  EXPECT_EQ(stats.at({0, 1}).datagrams, 1u);
  EXPECT_EQ(stats.at({1, 2}).datagrams, 1u);
  EXPECT_EQ(stats.at({1, 3}).datagrams, 1u);
  EXPECT_EQ(net.total_deliveries(), 2u);
}

TEST(Network, ForwardingStopsWhereNoInterest) {
  ContentBasedNetwork net(StarTree());
  Profile p;
  p.AddFilter(Filter("s", Clause("temp > 20")));
  net.Subscribe(2, p, nullptr);
  net.Publish(0, MakeDatagram(10, 10));  // matches nobody
  EXPECT_EQ(net.total_bytes(), 0u);
  net.Publish(0, MakeDatagram(30, 10));
  // Reaches 2 via 0-1, 1-2; never touches 1-3.
  EXPECT_EQ(net.link_stats().count({1, 3}), 0u);
}

TEST(Network, EarlyProjectionShrinksDatagrams) {
  NetworkOptions with;
  with.early_projection = true;
  NetworkOptions without;
  without.early_projection = false;

  for (bool early : {false, true}) {
    ContentBasedNetwork net(StarTree(), early ? with : without);
    Profile p;
    p.AddStream("s", {"temp"});
    std::vector<size_t> sizes;
    net.Subscribe(2, p, [&](const std::string&, const Tuple& t) {
      sizes.push_back(t.num_values());
    });
    net.Publish(0, MakeDatagram(1, 1));
    ASSERT_EQ(sizes.size(), 1u);
    // Last-hop projection always applies: subscriber sees only temp.
    EXPECT_EQ(sizes[0], 1u);
    uint64_t bytes = net.link_stats().at({0, 1}).bytes;
    if (early) {
      EXPECT_LT(bytes, 30u);  // projected on the wire
    } else {
      EXPECT_GT(bytes, 30u);  // full tuple on the wire
    }
  }
}

TEST(Network, ProjectionKeepsFilterAttributesForDownstreamReevaluation) {
  // Subscriber wants only "hum" but filters on temp: the wire format must
  // retain temp so intermediate hops can re-evaluate, while the subscriber
  // still receives only hum.
  ContentBasedNetwork net(StarTree());
  Profile p;
  p.AddStream("s", {"hum"});
  p.AddFilter(Filter("s", Clause("temp > 20")));
  std::vector<Tuple> received;
  net.Subscribe(2, p, [&](const std::string&, const Tuple& t) {
    received.push_back(t);
  });
  net.Publish(0, MakeDatagram(30, 77));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].num_values(), 1u);
  EXPECT_DOUBLE_EQ(received[0].value(0).AsDouble(), 77.0);
}

TEST(Network, UnsubscribeStopsDelivery) {
  ContentBasedNetwork net(StarTree());
  int hits = 0;
  Profile p;
  p.AddStream("s");
  ProfileId id =
      net.Subscribe(2, p, [&](const std::string&, const Tuple&) { ++hits; });
  net.Publish(0, MakeDatagram(1, 1));
  EXPECT_EQ(hits, 1);
  EXPECT_TRUE(net.Unsubscribe(id));
  EXPECT_FALSE(net.Unsubscribe(id));
  net.Publish(0, MakeDatagram(2, 2));
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(net.router(0).table().TotalEntries(), 0u);
}

TEST(Network, CoveringPruneSavesControlMessages) {
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 60;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto tree = DisseminationTree::FromEdges(
                  60, *MinimumSpanningTree(topo.graph))
                  .value();
  Profile wide;
  wide.AddFilter(Filter("s", Clause("temp >= 0 AND temp <= 30")));
  Profile narrow;
  narrow.AddFilter(Filter("s", Clause("temp >= 10 AND temp <= 20")));

  NetworkOptions pruned;
  pruned.covering_prune = true;
  ContentBasedNetwork a(tree, pruned);
  a.Subscribe(5, wide, nullptr);
  uint64_t before = a.control_messages();
  a.Subscribe(5, narrow, nullptr);
  uint64_t pruned_cost = a.control_messages() - before;

  NetworkOptions flood;
  flood.covering_prune = false;
  ContentBasedNetwork b(tree, flood);
  b.Subscribe(5, wide, nullptr);
  before = b.control_messages();
  b.Subscribe(5, narrow, nullptr);
  uint64_t flood_cost = b.control_messages() - before;

  EXPECT_LT(pruned_cost, flood_cost);
}

TEST(Network, CoveringPruneDoesNotLoseDeliveries) {
  // Same subscriptions with and without pruning must deliver identically.
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 30;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto tree = DisseminationTree::FromEdges(
                  30, *MinimumSpanningTree(topo.graph))
                  .value();
  std::vector<int> hits_per_mode;
  for (bool prune : {false, true}) {
    NetworkOptions opts;
    opts.covering_prune = prune;
    ContentBasedNetwork net(tree, opts);
    int hits = 0;
    Rng sub_rng(77);
    for (int i = 0; i < 10; ++i) {
      Profile p;
      double lo = sub_rng.NextInt(-10, 30);
      ConjunctiveClause c;
      c.ConstrainInterval("temp", Interval(lo, false, lo + 10, false));
      p.AddFilter(Filter("s", std::move(c)));
      net.Subscribe(static_cast<NodeId>(sub_rng.NextBounded(30)), p,
                    [&](const std::string&, const Tuple&) { ++hits; });
    }
    Rng pub_rng(99);
    for (int i = 0; i < 50; ++i) {
      net.Publish(static_cast<NodeId>(pub_rng.NextBounded(30)),
                  MakeDatagram(pub_rng.NextInt(-10, 40),
                               pub_rng.NextInt(0, 100)));
    }
    hits_per_mode.push_back(hits);
  }
  ASSERT_EQ(hits_per_mode.size(), 2u);
  EXPECT_GT(hits_per_mode[0], 0);
  EXPECT_EQ(hits_per_mode[0], hits_per_mode[1]);
}

TEST(Network, UnsubscribingCoveringProfileDoesNotSilenceCoveredOnes) {
  // Regression: subscription B's propagation was pruned under covering
  // subscription A; when A unsubscribes, B must be re-propagated or nodes
  // beyond the prune point stop routing toward B ("deaf subscriber").
  // Chain: publisher at 0, both subscribers at 3 — pruning happens at
  // nodes 2 and 1 while flooding outward from node 3.
  auto tree = DisseminationTree::FromEdges(
                  4, {Edge{0, 1, 1.0}, Edge{1, 2, 1.0}, Edge{2, 3, 1.0}})
                  .value();
  ContentBasedNetwork net(std::move(tree));
  int hits_b = 0;
  Profile wide;
  wide.AddFilter(Filter("s", Clause("temp >= 0 AND temp <= 40")));
  Profile narrow;
  narrow.AddFilter(Filter("s", Clause("temp >= 10 AND temp <= 20")));
  ProfileId a = net.Subscribe(3, wide, nullptr);
  net.Subscribe(3, narrow,
                [&](const std::string&, const Tuple&) { ++hits_b; });
  net.Publish(0, MakeDatagram(15, 0));
  EXPECT_EQ(hits_b, 1);
  EXPECT_TRUE(net.Unsubscribe(a));
  net.Publish(0, MakeDatagram(15, 0));
  EXPECT_EQ(hits_b, 2) << "covered subscription went deaf after the "
                          "covering one unsubscribed";
}

TEST(Network, RepeatedRefreshChurnKeepsDelivery) {
  // The processor's source-profile refresh pattern: subscribe the new
  // merged profile, then unsubscribe the old identical one — repeatedly.
  auto tree = DisseminationTree::FromEdges(
                  3, {Edge{0, 1, 1.0}, Edge{1, 2, 1.0}})
                  .value();
  ContentBasedNetwork net(std::move(tree));
  int hits = 0;
  Profile p;
  p.AddFilter(Filter("s", Clause("temp >= 0 AND temp <= 40")));
  ProfileId current =
      net.Subscribe(2, p, [&](const std::string&, const Tuple&) { ++hits; });
  for (int round = 0; round < 5; ++round) {
    ProfileId next = net.Subscribe(
        2, p, [&](const std::string&, const Tuple&) { ++hits; });
    net.Unsubscribe(current);
    current = next;
    net.Publish(0, MakeDatagram(10, round));
    EXPECT_EQ(hits, round + 1) << "round " << round;
  }
}

TEST(Network, SimulatedModeDeliversWithDelay) {
  Simulator sim;
  ContentBasedNetwork net(StarTree(), NetworkOptions{}, &sim);
  std::vector<Timestamp> delivery_times;
  Profile p;
  p.AddStream("s");
  net.Subscribe(2, p, [&](const std::string&, const Tuple&) {
    delivery_times.push_back(sim.now());
  });
  net.Publish(0, MakeDatagram(1, 1));
  EXPECT_TRUE(delivery_times.empty());  // nothing until the sim runs
  sim.Run();
  ASSERT_EQ(delivery_times.size(), 1u);
  // Two hops of weight 1.0ms each.
  EXPECT_EQ(delivery_times[0], 2 * kMillisecond);
}

TEST(Network, ResetStatsClearsCounters) {
  ContentBasedNetwork net(StarTree());
  Profile p;
  p.AddStream("s");
  net.Subscribe(2, p, nullptr);
  net.Publish(0, MakeDatagram(1, 1));
  EXPECT_GT(net.total_bytes(), 0u);
  net.ResetStats();
  EXPECT_EQ(net.total_bytes(), 0u);
  EXPECT_TRUE(net.link_stats().empty());
  EXPECT_EQ(net.total_deliveries(), 0u);
}

TEST(Network, WeightedBytesUsesEdgeWeights) {
  auto tree = DisseminationTree::FromEdges(
                  2, {Edge{0, 1, 10.0}})
                  .value();
  ContentBasedNetwork net(std::move(tree));
  Profile p;
  p.AddStream("s");
  net.Subscribe(1, p, nullptr);
  net.Publish(0, MakeDatagram(1, 1));
  EXPECT_DOUBLE_EQ(net.WeightedBytes(),
                   static_cast<double>(net.total_bytes()) * 10.0);
}

// Property: CBN delivery matches direct profile evaluation — every
// subscriber receives exactly the datagrams its profile covers.
class CbnDeliveryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CbnDeliveryPropertyTest, DeliveryEqualsCoverage) {
  Rng rng(GetParam());
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 25;
  topo_opts.seed = GetParam();
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto tree =
      DisseminationTree::FromEdges(25, *MinimumSpanningTree(topo.graph))
          .value();
  ContentBasedNetwork net(std::move(tree));

  struct Sub {
    Profile profile;
    int hits = 0;
  };
  std::vector<std::unique_ptr<Sub>> subs;
  for (int i = 0; i < 8; ++i) {
    auto sub = std::make_unique<Sub>();
    ConjunctiveClause c;
    double lo = rng.NextInt(-10, 30);
    c.ConstrainInterval("temp", Interval(lo, false, lo + rng.NextInt(2, 15),
                                         false));
    sub->profile.AddFilter(Filter("s", std::move(c)));
    Sub* raw = sub.get();
    net.Subscribe(static_cast<NodeId>(rng.NextBounded(25)), raw->profile,
                  [raw](const std::string&, const Tuple&) { ++raw->hits; });
    subs.push_back(std::move(sub));
  }

  std::vector<Datagram> published;
  for (int i = 0; i < 100; ++i) {
    Datagram d = MakeDatagram(rng.NextInt(-10, 40), rng.NextInt(0, 100), i);
    net.Publish(static_cast<NodeId>(rng.NextBounded(25)), d);
    published.push_back(d);
  }

  for (const auto& sub : subs) {
    int expected = 0;
    for (const auto& d : published) {
      if (sub->profile.Covers(d)) ++expected;
    }
    EXPECT_EQ(sub->hits, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CbnDeliveryPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// Regression for DST seed 313: a filtered subscription propagated after an
// unfiltered one projecting the same attributes used to be covering-pruned,
// after which early projection stripped the filtered attribute upstream and
// the filtered subscriber went deaf — initially or after a tree rebuild.
TEST(Network, PrunedFilteredSubscriberStillServedUnderEarlyProjection) {
  // Chain 0-1-2-3; publisher at 0.
  auto tree = DisseminationTree::FromEdges(
                  4, {Edge{0, 1, 1.0}, Edge{1, 2, 1.0}, Edge{2, 3, 1.0}})
                  .value();
  ContentBasedNetwork net(std::move(tree));
  int plain_hits = 0;
  int filtered_hits = 0;
  Profile plain;  // everything, but only "hum" retained
  plain.AddStream("s", {"hum"});
  net.Subscribe(2, plain,
                [&](const std::string&, const Tuple&) { ++plain_hits; });
  Profile filtered;  // same projection, but needs "temp" to decide
  filtered.AddStream("s", {"hum"});
  filtered.AddFilter(Filter("s", Clause("temp > 20")));
  net.Subscribe(3, filtered,
                [&](const std::string&, const Tuple&) { ++filtered_hits; });

  net.Publish(0, MakeDatagram(25, 50));
  EXPECT_EQ(plain_hits, 1);
  EXPECT_EQ(filtered_hits, 1) << "filtered subscriber starved of 'temp'";

  // Rebuilding reinstalls subscriptions in registry order (unfiltered
  // first), the exact shape that used to trigger the faulty prune.
  auto same_tree = DisseminationTree::FromEdges(
                       4, {Edge{0, 1, 1.0}, Edge{1, 2, 1.0}, Edge{2, 3, 1.0}})
                       .value();
  ASSERT_TRUE(net.RebuildTree(std::move(same_tree)).ok());
  net.Publish(0, MakeDatagram(30, 60));
  EXPECT_EQ(plain_hits, 2);
  EXPECT_EQ(filtered_hits, 2) << "filtered subscriber deaf after rebuild";

  // Below the filter threshold only the unfiltered subscriber fires.
  net.Publish(0, MakeDatagram(10, 70));
  EXPECT_EQ(plain_hits, 3);
  EXPECT_EQ(filtered_hits, 2);
}

}  // namespace
}  // namespace cosmos
