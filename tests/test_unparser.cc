#include "query/unparser.h"

#include <gtest/gtest.h>

#include "core/containment.h"
#include "stream/auction_dataset.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

class UnparserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AuctionDataset auctions;
    ASSERT_TRUE(auctions.RegisterAll(catalog_).ok());
    SensorDataset sensors;
    ASSERT_TRUE(sensors.RegisterAll(catalog_).ok());
  }

  // Round-trip: unparse then re-analyze; the two semantic forms must be
  // mutually containing (semantically equal).
  void ExpectRoundTrip(const std::string& cql) {
    auto q1 = ParseAndAnalyze(cql, catalog_, "r");
    ASSERT_TRUE(q1.ok()) << cql << " -> " << q1.status().ToString();
    std::string text = Unparse(*q1);
    auto q2 = ParseAndAnalyze(text, catalog_, "r");
    ASSERT_TRUE(q2.ok()) << "unparsed: " << text << " -> "
                         << q2.status().ToString();
    EXPECT_TRUE(QueryContains(*q1, *q2) && QueryContains(*q2, *q1))
        << "original: " << cql << "\nunparsed: " << text;
  }

  Catalog catalog_;
};

TEST_F(UnparserTest, SimpleSelect) {
  ExpectRoundTrip("SELECT itemID FROM OpenAuction [Range 1 Hour]");
}

TEST_F(UnparserTest, SelectionPredicates) {
  ExpectRoundTrip(
      "SELECT itemID, start_price FROM OpenAuction [Range 1 Hour] "
      "WHERE start_price >= 10 AND start_price <= 50");
}

TEST_F(UnparserTest, StrictBoundsSurvive) {
  ExpectRoundTrip(
      "SELECT itemID FROM OpenAuction WHERE start_price > 10 AND "
      "start_price < 50");
}

TEST_F(UnparserTest, JoinQuery) {
  ExpectRoundTrip(
      "SELECT O.itemID, C.buyerID FROM OpenAuction [Range 3 Hour] O, "
      "ClosedAuction [Now] C WHERE O.itemID = C.itemID");
}

TEST_F(UnparserTest, JoinWithResidual) {
  ExpectRoundTrip(
      "SELECT O.itemID FROM OpenAuction [Range 3 Hour] O, ClosedAuction "
      "[Now] C WHERE O.itemID = C.itemID AND O.timestamp - C.timestamp <= "
      "0");
}

TEST_F(UnparserTest, AggregateQuery) {
  ExpectRoundTrip(
      "SELECT station_id, AVG(ambient_temperature) FROM sensor_01 "
      "[Range 30 Minute] GROUP BY station_id");
}

TEST_F(UnparserTest, Table1Q3) {
  ExpectRoundTrip(
      "SELECT O.*, C.buyerID, C.timestamp FROM OpenAuction [Range 5 Hour] "
      "O, ClosedAuction [Now] C WHERE O.itemID = C.itemID");
}

TEST_F(UnparserTest, EqualityPredicate) {
  ExpectRoundTrip("SELECT itemID FROM OpenAuction WHERE sellerID = 42");
}

TEST_F(UnparserTest, RebuildWhereIsNullForNoPredicates) {
  auto q = ParseAndAnalyze("SELECT itemID FROM OpenAuction", catalog_, "r");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(RebuildWhere(*q), nullptr);
}

TEST_F(UnparserTest, UnparseMentionsWindow) {
  auto q = ParseAndAnalyze("SELECT itemID FROM OpenAuction [Range 3 Hour]",
                           catalog_, "r");
  ASSERT_TRUE(q.ok());
  std::string text = Unparse(*q);
  EXPECT_NE(text.find("[Range 3 Hour]"), std::string::npos) << text;
}

}  // namespace
}  // namespace cosmos
