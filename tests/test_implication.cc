#include "expr/implication.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/parser.h"

namespace cosmos {
namespace {

ConjunctiveClause Parse(const std::string& text) {
  auto expr = ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  auto clause = ClauseFromExpr(*expr);
  EXPECT_TRUE(clause.ok());
  return *clause;
}

TEST(Implication, TighterRangeImpliesWider) {
  EXPECT_TRUE(ClauseImplies(Parse("a >= 10 AND a <= 20"),
                            Parse("a >= 5 AND a <= 25")));
  EXPECT_FALSE(ClauseImplies(Parse("a >= 5 AND a <= 25"),
                             Parse("a >= 10 AND a <= 20")));
}

TEST(Implication, AnythingImpliesTautology) {
  EXPECT_TRUE(ClauseImplies(Parse("a > 100"), ConjunctiveClause{}));
  EXPECT_TRUE(ClauseImplies(ConjunctiveClause{}, ConjunctiveClause{}));
}

TEST(Implication, TautologyImpliesNothingConstrained) {
  EXPECT_FALSE(ClauseImplies(ConjunctiveClause{}, Parse("a > 1")));
}

TEST(Implication, UnsatisfiableImpliesEverything) {
  EXPECT_TRUE(ClauseImplies(Parse("a > 5 AND a < 1"), Parse("b = 3")));
}

TEST(Implication, ExtraConstraintsStillImply) {
  EXPECT_TRUE(
      ClauseImplies(Parse("a >= 10 AND a <= 20 AND b > 0"), Parse("a >= 5")));
}

TEST(Implication, StringEqualities) {
  EXPECT_TRUE(ClauseImplies(Parse("tag = 'x'"), Parse("tag = 'x'")));
  EXPECT_FALSE(ClauseImplies(Parse("tag = 'x'"), Parse("tag = 'y'")));
  // Equality to x guarantees != y.
  EXPECT_TRUE(ClauseImplies(Parse("tag = 'x'"), Parse("tag != 'y'")));
  EXPECT_FALSE(ClauseImplies(Parse("tag != 'y'"), Parse("tag = 'x'")));
  EXPECT_TRUE(ClauseImplies(Parse("tag != 'y'"), Parse("tag != 'y'")));
}

TEST(Implication, ResidualsMustBeSubsumed) {
  ConjunctiveClause with_residual = Parse("a > b");
  ConjunctiveClause same = Parse("a > b");
  EXPECT_TRUE(ClauseImplies(with_residual, same));
  EXPECT_FALSE(ClauseImplies(Parse("a >= 0"), with_residual));
  // Residual on the left is extra strength: fine.
  EXPECT_TRUE(ClauseImplies(Parse("a > b AND a >= 0"), Parse("a >= 0")));
}

TEST(Implication, EquivalenceIsBidirectional) {
  EXPECT_TRUE(ClauseEquivalent(Parse("a >= 1 AND a <= 2"),
                               Parse("a <= 2 AND a >= 1")));
  EXPECT_FALSE(ClauseEquivalent(Parse("a >= 1"), Parse("a > 1")));
}

TEST(Disjoint, SeparatedRanges) {
  EXPECT_TRUE(ClauseDisjoint(Parse("a < 1"), Parse("a > 2")));
  EXPECT_FALSE(ClauseDisjoint(Parse("a < 2"), Parse("a > 1")));
}

TEST(Disjoint, DifferentEqualities) {
  EXPECT_TRUE(ClauseDisjoint(Parse("tag = 'x'"), Parse("tag = 'y'")));
  EXPECT_TRUE(ClauseDisjoint(Parse("tag = 'x'"), Parse("tag != 'x'")));
  EXPECT_FALSE(ClauseDisjoint(Parse("tag = 'x'"), Parse("tag != 'y'")));
}

TEST(Disjoint, IndependentAttributesNotDisjoint) {
  EXPECT_FALSE(ClauseDisjoint(Parse("a > 5"), Parse("b < 5")));
}

TEST(DnfImplication, EveryClauseNeedsACover) {
  auto a = ToDnf(*ParseExpression("(a >= 1 AND a <= 2) OR (a >= 5 AND a <= 6)"));
  auto b = ToDnf(*ParseExpression("a >= 0 AND a <= 10"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(DnfImplies(*a, *b));
  EXPECT_FALSE(DnfImplies(*b, *a));
}

TEST(DnfImplication, PartialCoverFails) {
  auto a = ToDnf(*ParseExpression("(a >= 1 AND a <= 2) OR (a >= 50)"));
  auto b = ToDnf(*ParseExpression("a >= 0 AND a <= 10"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(DnfImplies(*a, *b));
}

// ---- randomized property: implication is sound on samples ----

class ImplicationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

ConjunctiveClause RandomClause(Rng& rng) {
  ConjunctiveClause c;
  const char* attrs[] = {"a", "b", "c"};
  int n = 1 + static_cast<int>(rng.NextBounded(2));
  for (int i = 0; i < n; ++i) {
    const char* attr = attrs[rng.NextBounded(3)];
    double lo = rng.NextInt(-5, 5);
    double hi = rng.NextInt(-5, 5);
    if (hi < lo) std::swap(lo, hi);
    c.ConstrainInterval(attr, Interval(lo, rng.NextBool(), hi,
                                       rng.NextBool()));
  }
  return c;
}

TEST_P(ImplicationPropertyTest, ImpliesIsSoundOnSamples) {
  Rng rng(GetParam());
  auto schema = std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"a", ValueType::kDouble},
                                     {"b", ValueType::kDouble},
                                     {"c", ValueType::kDouble}});
  for (int iter = 0; iter < 100; ++iter) {
    ConjunctiveClause x = RandomClause(rng);
    ConjunctiveClause y = RandomClause(rng);
    if (!ClauseImplies(x, y)) continue;
    // Sample the cube [-6,6]^3: every x-match must y-match.
    for (double a = -6; a <= 6; a += 2) {
      for (double b = -6; b <= 6; b += 2) {
        for (double c = -6; c <= 6; c += 2) {
          Tuple t(schema, {Value(a), Value(b), Value(c)}, 0);
          if (x.MatchesCanonical(t)) {
            EXPECT_TRUE(y.MatchesCanonical(t))
                << x.ToString() << " => " << y.ToString() << " violated at ("
                << a << "," << b << "," << c << ")";
          }
        }
      }
    }
  }
}

TEST_P(ImplicationPropertyTest, DisjointIsSoundOnSamples) {
  Rng rng(GetParam() ^ 0xD15);
  auto schema = std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"a", ValueType::kDouble},
                                     {"b", ValueType::kDouble},
                                     {"c", ValueType::kDouble}});
  for (int iter = 0; iter < 100; ++iter) {
    ConjunctiveClause x = RandomClause(rng);
    ConjunctiveClause y = RandomClause(rng);
    if (!ClauseDisjoint(x, y)) continue;
    for (double a = -6; a <= 6; a += 2) {
      for (double b = -6; b <= 6; b += 2) {
        for (double c = -6; c <= 6; c += 2) {
          Tuple t(schema, {Value(a), Value(b), Value(c)}, 0);
          EXPECT_FALSE(x.MatchesCanonical(t) && y.MatchesCanonical(t))
              << x.ToString() << " disjoint " << y.ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImplicationPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace cosmos
