#include "spe/join.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/parser.h"

namespace cosmos {
namespace {

std::shared_ptr<const Schema> LeftSchema() {
  return std::make_shared<Schema>(
      "L", std::vector<AttributeDef>{{"id", ValueType::kInt64},
                                     {"x", ValueType::kDouble}});
}

std::shared_ptr<const Schema> RightSchema() {
  return std::make_shared<Schema>(
      "R", std::vector<AttributeDef>{{"id", ValueType::kInt64},
                                     {"y", ValueType::kDouble}});
}

Tuple L(int64_t id, double x, Timestamp ts) {
  return Tuple(LeftSchema(), {Value(id), Value(x)}, ts);
}
Tuple R(int64_t id, double y, Timestamp ts) {
  return Tuple(RightSchema(), {Value(id), Value(y)}, ts);
}

std::shared_ptr<const Schema> Joined() {
  return MakeJoinedSchema(*LeftSchema(), "L", *RightSchema(), "R", "J");
}

TEST(WindowJoin, EquiKeyMatch) {
  WindowJoinOperator join(kInfiniteDuration, kInfiniteDuration, {{0, 0}},
                          nullptr, Joined());
  std::vector<Tuple> out;
  join.SetSink([&](const Tuple& t) { out.push_back(t); });
  join.Push(0, L(1, 1.0, 0));
  join.Push(0, L(2, 2.0, 1));
  join.Push(1, R(1, 9.0, 2));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].GetAttribute("L.id")->AsInt64(), 1);
  EXPECT_DOUBLE_EQ(out[0].GetAttribute("R.y")->AsDouble(), 9.0);
  EXPECT_EQ(out[0].timestamp(), 2);  // max of inputs
}

TEST(WindowJoin, SymmetricProbing) {
  WindowJoinOperator join(kInfiniteDuration, kInfiniteDuration, {{0, 0}},
                          nullptr, Joined());
  int n = 0;
  join.SetSink([&](const Tuple&) { ++n; });
  join.Push(1, R(7, 1.0, 0));
  join.Push(0, L(7, 2.0, 1));  // arrival on the left probes the right
  EXPECT_EQ(n, 1);
}

TEST(WindowJoin, Lemma1TemporalCondition) {
  // T1 (left window) = 10, T2 (right window) = 5:
  // join iff -10 <= l.ts - r.ts <= 5.
  WindowJoinOperator join(10, 5, {{0, 0}}, nullptr, Joined());
  std::vector<std::pair<Timestamp, Timestamp>> matched;
  join.SetSink([&](const Tuple& t) {
    matched.push_back({t.GetAttribute("L.id")->AsInt64(),
                       t.GetAttribute("R.id")->AsInt64()});
  });
  // Interleave arrivals in event-time order; all share key semantics via
  // distinct ids so each (l, r) pair is identified by ids.
  join.Push(0, L(100, 0, 100));
  join.Push(1, R(100, 0, 104));  // l.ts - r.ts = -4: within [-10, 5]: match
  join.Push(0, L(200, 0, 105));
  join.Push(1, R(200, 0, 116));  // -11 < -10: no match
  join.Push(1, R(300, 0, 120));
  join.Push(0, L(300, 0, 124));  // 124-120 = 4 <= 5: match
  join.Push(1, R(400, 0, 130));
  join.Push(0, L(400, 0, 140));  // 10 > 5: no match
  ASSERT_EQ(matched.size(), 2u);
  EXPECT_EQ(matched[0].first, 100);
  EXPECT_EQ(matched[1].first, 300);
}

TEST(WindowJoin, NowWindowMatchesEqualTimestampsOnly) {
  // Right window [Now] (0): l.ts - r.ts <= 0; left window 10.
  WindowJoinOperator join(10, 0, {{0, 0}}, nullptr, Joined());
  int n = 0;
  join.SetSink([&](const Tuple&) { ++n; });
  join.Push(0, L(1, 0, 100));
  join.Push(1, R(1, 0, 105));  // l older than r by 5 <= T1: match
  EXPECT_EQ(n, 1);
  join.Push(1, R(2, 0, 110));
  join.Push(0, L(2, 0, 115));  // l newer than r: l.ts-r.ts = 5 > 0: no
  EXPECT_EQ(n, 1);
}

TEST(WindowJoin, EvictionDropsExpiredPartners) {
  WindowJoinOperator join(10, 10, {{0, 0}}, nullptr, Joined());
  int n = 0;
  join.SetSink([&](const Tuple&) { ++n; });
  join.Push(0, L(1, 0, 0));
  join.Push(1, R(1, 0, 20));  // l expired (20 - 0 > 10): no match
  EXPECT_EQ(n, 0);
  EXPECT_EQ(join.left_buffer_size(), 0u);  // evicted
}

TEST(WindowJoin, MultipleMatchesPerArrival) {
  WindowJoinOperator join(kInfiniteDuration, kInfiniteDuration, {{0, 0}},
                          nullptr, Joined());
  int n = 0;
  join.SetSink([&](const Tuple&) { ++n; });
  join.Push(0, L(1, 0, 0));
  join.Push(0, L(1, 1, 1));
  join.Push(0, L(1, 2, 2));
  join.Push(1, R(1, 0, 3));
  EXPECT_EQ(n, 3);
}

TEST(WindowJoin, ResidualPredicateFiltersJoined) {
  // Join with residual L.x < R.y.
  WindowJoinOperator join(kInfiniteDuration, kInfiniteDuration, {{0, 0}},
                          *ParseExpression("L.x < R.y"), Joined());
  int n = 0;
  join.SetSink([&](const Tuple&) { ++n; });
  join.Push(0, L(1, 5.0, 0));
  join.Push(1, R(1, 9.0, 1));  // 5 < 9: pass
  join.Push(1, R(1, 2.0, 2));  // 5 < 2: fail
  EXPECT_EQ(n, 1);
}

TEST(WindowJoin, NoKeysMeansTemporalCrossJoin) {
  WindowJoinOperator join(5, 5, {}, nullptr, Joined());
  int n = 0;
  join.SetSink([&](const Tuple&) { ++n; });
  join.Push(0, L(1, 0, 0));
  join.Push(0, L(2, 0, 1));
  join.Push(1, R(99, 0, 3));
  EXPECT_EQ(n, 2);  // matches both lefts regardless of key
}

TEST(WindowJoin, MultiKeyJoin) {
  // Join on (id, x=y).
  WindowJoinOperator join(kInfiniteDuration, kInfiniteDuration,
                          {{0, 0}, {1, 1}}, nullptr, Joined());
  int n = 0;
  join.SetSink([&](const Tuple&) { ++n; });
  join.Push(0, L(1, 5.0, 0));
  join.Push(1, R(1, 5.0, 1));  // both keys equal
  join.Push(1, R(1, 6.0, 2));  // second key differs
  EXPECT_EQ(n, 1);
}

// Property test: the streaming join equals the naive nested-loop join over
// the full history, for random inputs (Lemma 1 as the oracle).
class JoinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinPropertyTest, MatchesNestedLoopOracle) {
  Rng rng(GetParam());
  const Duration t_left = rng.NextInt(0, 20);
  const Duration t_right = rng.NextInt(0, 20);

  struct Row {
    int64_t id;
    Timestamp ts;
    bool left;
  };
  std::vector<Row> rows;
  Timestamp now = 0;
  for (int i = 0; i < 200; ++i) {
    now += rng.NextInt(0, 3);
    rows.push_back({rng.NextInt(0, 5), now, rng.NextBool()});
  }

  WindowJoinOperator join(t_left, t_right, {{0, 0}}, nullptr, Joined());
  int streamed = 0;
  join.SetSink([&](const Tuple&) { ++streamed; });
  for (const auto& r : rows) {
    if (r.left) {
      join.Push(0, L(r.id, 0, r.ts));
    } else {
      join.Push(1, R(r.id, 0, r.ts));
    }
  }

  int oracle = 0;
  for (const auto& l : rows) {
    if (!l.left) continue;
    for (const auto& r : rows) {
      if (r.left) continue;
      if (l.id != r.id) continue;
      int64_t diff = l.ts - r.ts;
      if (diff >= -t_left && diff <= t_right) ++oracle;
    }
  }
  EXPECT_EQ(streamed, oracle)
      << "T_left=" << t_left << " T_right=" << t_right;
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace cosmos
