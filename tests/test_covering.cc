#include "cbn/covering.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/parser.h"

namespace cosmos {
namespace {

ConjunctiveClause Clause(const std::string& text) {
  auto c = ClauseFromExpr(*ParseExpression(text));
  EXPECT_TRUE(c.ok());
  return *c;
}

std::shared_ptr<const Schema> SensorSchema() {
  return std::make_shared<Schema>(
      "s", std::vector<AttributeDef>{{"temp", ValueType::kDouble, -10, 40},
                                     {"hum", ValueType::kDouble, 0, 100}});
}

Datagram MakeDatagram(const std::string& stream, double temp, double hum) {
  return Datagram{stream, Tuple(SensorSchema(), {Value(temp), Value(hum)}, 0)};
}

TEST(FilterCovering, WiderRangeCovers) {
  Filter wide("s", Clause("temp >= 0 AND temp <= 30"));
  Filter narrow("s", Clause("temp >= 10 AND temp <= 20"));
  EXPECT_TRUE(FilterCovers(wide, narrow));
  EXPECT_FALSE(FilterCovers(narrow, wide));
}

TEST(FilterCovering, DifferentStreamsNeverCover) {
  Filter a("s", Clause("temp >= 0"));
  Filter b("t", Clause("temp >= 10"));
  EXPECT_FALSE(FilterCovers(a, b));
}

TEST(ProfileCovering, StreamSetMustContain) {
  Profile wide;
  wide.AddStream("s");
  Profile narrow;
  narrow.AddStream("s");
  narrow.AddStream("t");
  EXPECT_FALSE(ProfileCovers(wide, narrow));
  EXPECT_TRUE(ProfileCovers(narrow, wide));
}

TEST(ProfileCovering, ProjectionMustBeSuperset) {
  Profile wide;
  wide.AddStream("s", {"temp"});
  Profile narrow;
  narrow.AddStream("s", {"temp", "hum"});
  EXPECT_FALSE(ProfileCovers(wide, narrow));
  EXPECT_TRUE(ProfileCovers(narrow, wide));
  Profile all;
  all.AddStream("s", {});
  EXPECT_TRUE(ProfileCovers(all, narrow));
  EXPECT_FALSE(ProfileCovers(narrow, all));
}

TEST(ProfileCovering, UnconditionalStreamCoversFiltered) {
  Profile wide;
  wide.AddStream("s");
  Profile narrow;
  narrow.AddFilter(Filter("s", Clause("temp > 10")));
  EXPECT_TRUE(ProfileCovers(wide, narrow));
  EXPECT_FALSE(ProfileCovers(narrow, wide));
}

TEST(ProfileCovering, EveryNarrowFilterNeedsAWideCover) {
  Profile wide;
  wide.AddFilter(Filter("s", Clause("temp >= 0 AND temp <= 30")));
  Profile narrow;
  narrow.AddFilter(Filter("s", Clause("temp >= 5 AND temp <= 10")));
  narrow.AddFilter(Filter("s", Clause("temp >= 20 AND temp <= 25")));
  EXPECT_TRUE(ProfileCovers(wide, narrow));
  narrow.AddFilter(Filter("s", Clause("temp >= 35")));
  EXPECT_FALSE(ProfileCovers(wide, narrow));
}

TEST(ProfileCovering, FilterAttributesCountAsNeeded) {
  // Found by DST seed 313: `wide` projecting exactly `narrow`'s projection
  // is not enough — `narrow`'s filter references "temp", and downstream of
  // links early-projected to `wide`'s required set {hum} that filter can
  // never match again. Coverage must compare required-attribute sets.
  Profile wide;
  wide.AddStream("s", {"hum"});
  Profile narrow;
  narrow.AddStream("s", {"hum"});
  narrow.AddFilter(Filter("s", Clause("temp > 10")));
  EXPECT_FALSE(ProfileCovers(wide, narrow));

  // Widening the projection to include the filtered attribute restores
  // coverage.
  Profile wide_enough;
  wide_enough.AddStream("s", {"hum", "temp"});
  EXPECT_TRUE(ProfileCovers(wide_enough, narrow));
}

TEST(ProfileCovering, ReflexiveOnItself) {
  Profile p;
  p.AddStream("s", {"temp"});
  p.AddFilter(Filter("s", Clause("temp > 10")));
  EXPECT_TRUE(ProfileCovers(p, p));
}

TEST(MergeProfiles, UnionOfStreams) {
  Profile a;
  a.AddStream("s");
  Profile b;
  b.AddStream("t");
  Profile m = MergeProfiles(a, b);
  EXPECT_TRUE(m.WantsStream("s"));
  EXPECT_TRUE(m.WantsStream("t"));
}

TEST(MergeProfiles, CoverageIsUnionOnSamples) {
  Profile a;
  a.AddStream("s", {"temp"});
  a.AddFilter(Filter("s", Clause("temp >= 0 AND temp <= 10")));
  Profile b;
  b.AddStream("s", {"hum"});
  b.AddFilter(Filter("s", Clause("temp >= 20 AND temp <= 30")));
  Profile m = MergeProfiles(a, b);
  for (double t = -10; t <= 40; t += 2.5) {
    Datagram d = MakeDatagram("s", t, 50);
    EXPECT_EQ(m.Covers(d), a.Covers(d) || b.Covers(d)) << "temp=" << t;
  }
  EXPECT_TRUE(ProfileCovers(m, a));
  EXPECT_TRUE(ProfileCovers(m, b));
}

TEST(MergeProfiles, CoveredFiltersArePruned) {
  Profile a;
  a.AddFilter(Filter("s", Clause("temp >= 0 AND temp <= 30")));
  Profile b;
  b.AddFilter(Filter("s", Clause("temp >= 10 AND temp <= 20")));
  Profile m = MergeProfiles(a, b);
  EXPECT_EQ(m.filters().size(), 1u);
}

TEST(MergeProfiles, UnconditionalSwallowsFilters) {
  Profile a;
  a.AddStream("s");  // unconditional
  Profile b;
  b.AddFilter(Filter("s", Clause("temp > 10")));
  Profile m = MergeProfiles(a, b);
  EXPECT_TRUE(m.FiltersOf("s").empty());
  EXPECT_TRUE(m.Covers(MakeDatagram("s", -5, 0)));
}

// Randomized: merge coverage equals union coverage; merged profile covers
// both inputs.
class CoveringPropertyTest : public ::testing::TestWithParam<uint64_t> {};

Profile RandomProfile(Rng& rng) {
  Profile p;
  int nfilters = 1 + static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i < nfilters; ++i) {
    ConjunctiveClause c;
    double lo = rng.NextInt(-10, 35);
    double hi = lo + rng.NextInt(0, 20);
    c.ConstrainInterval("temp", Interval(lo, false, hi, false));
    if (rng.NextBool(0.3)) {
      double hlo = rng.NextInt(0, 80);
      c.ConstrainInterval("hum", Interval(hlo, false, hlo + 20, false));
    }
    p.AddFilter(Filter("s", std::move(c)));
  }
  if (rng.NextBool(0.3)) {
    p.AddStream("s", {"temp"});
  }
  return p;
}

TEST_P(CoveringPropertyTest, MergeEqualsUnionOnSamples) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    Profile a = RandomProfile(rng);
    Profile b = RandomProfile(rng);
    Profile m = MergeProfiles(a, b);
    EXPECT_TRUE(ProfileCovers(m, a));
    EXPECT_TRUE(ProfileCovers(m, b));
    for (double t = -10; t <= 40; t += 5) {
      for (double h = 0; h <= 100; h += 25) {
        Datagram d = MakeDatagram("s", t, h);
        EXPECT_EQ(m.Covers(d), a.Covers(d) || b.Covers(d))
            << "temp=" << t << " hum=" << h;
      }
    }
  }
}

TEST_P(CoveringPropertyTest, ProfileCoversIsSoundOnSamples) {
  Rng rng(GetParam() ^ 0xC0FFEE);
  for (int iter = 0; iter < 30; ++iter) {
    Profile a = RandomProfile(rng);
    Profile b = RandomProfile(rng);
    if (!ProfileCovers(a, b)) continue;
    for (double t = -10; t <= 40; t += 5) {
      for (double h = 0; h <= 100; h += 25) {
        Datagram d = MakeDatagram("s", t, h);
        if (b.Covers(d)) {
          EXPECT_TRUE(a.Covers(d)) << "temp=" << t << " hum=" << h;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoveringPropertyTest,
                         ::testing::Values(7, 14, 21, 28));

}  // namespace
}  // namespace cosmos
