#include "query/lexer.h"

#include <gtest/gtest.h>

namespace cosmos {
namespace {

std::vector<Token> Lex(const std::string& s) {
  auto r = Tokenize(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(Lexer, EmptyInputYieldsEnd) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(Lexer, IdentifiersAndKeywords) {
  auto tokens = Lex("SELECT foo _bar b2");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[2].text, "_bar");
  EXPECT_EQ(tokens[3].text, "b2");
}

TEST(Lexer, IntegerAndFloatLiterals) {
  auto tokens = Lex("42 3.14 1e3 2.5e-2 7");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.14);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 1000.0);
  EXPECT_EQ(tokens[3].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.025);
  EXPECT_EQ(tokens[4].type, TokenType::kInteger);
}

TEST(Lexer, IntegerFollowedByIdentifier) {
  auto tokens = Lex("3 e");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
}

TEST(Lexer, StringLiterals) {
  auto tokens = Lex("'hello' 'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].type, TokenType::kString);
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(Lexer, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(Lexer, Operators) {
  auto tokens = Lex("= != <> < <= > >= + - * / ( ) [ ] , .");
  std::vector<TokenType> expected = {
      TokenType::kEq,     TokenType::kNe,      TokenType::kNe,
      TokenType::kLt,     TokenType::kLe,      TokenType::kGt,
      TokenType::kGe,     TokenType::kPlus,    TokenType::kMinus,
      TokenType::kStar,   TokenType::kSlash,   TokenType::kLParen,
      TokenType::kRParen, TokenType::kLBracket, TokenType::kRBracket,
      TokenType::kComma,  TokenType::kDot,     TokenType::kEnd};
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << i;
  }
}

TEST(Lexer, StrayCharacterFails) {
  EXPECT_FALSE(Tokenize("a # b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(Lexer, OffsetsPointIntoSource) {
  auto tokens = Lex("ab cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 3u);
}

TEST(Lexer, QualifiedNameIsThreeTokens) {
  auto tokens = Lex("O.itemID");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].type, TokenType::kDot);
  EXPECT_EQ(tokens[2].type, TokenType::kIdentifier);
}

TEST(Lexer, KeywordMatchIsCaseInsensitive) {
  auto tokens = Lex("sElEcT");
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_FALSE(tokens[0].IsKeyword("FROM"));
}

}  // namespace
}  // namespace cosmos
