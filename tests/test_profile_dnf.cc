// Disjunctive source profiles: WHERE clauses with OR expand into multiple
// conjunctive filters (paper §3.1: F is a disjunction of filters).

#include <gtest/gtest.h>

#include "core/profile_composer.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

class ProfileDnfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SensorDataset sensors;
    ASSERT_TRUE(sensors.RegisterAll(catalog_).ok());
  }

  AnalyzedQuery Q(const std::string& cql) {
    auto q = ParseAndAnalyze(cql, catalog_, "r");
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  Datagram Reading(double temp) {
    SensorDataset sensors;
    auto schema = sensors.SchemaOf(0);
    std::vector<Value> values;
    for (const auto& def : schema->attributes()) {
      if (def.name == "ambient_temperature") {
        values.emplace_back(temp);
      } else if (def.type == ValueType::kInt64) {
        values.emplace_back(int64_t{0});
      } else {
        values.emplace_back(10.0);
      }
    }
    return Datagram{"sensor_00", Tuple(schema, std::move(values), 0)};
  }

  Catalog catalog_;
};

TEST_F(ProfileDnfTest, OrPredicateBecomesTwoFilters) {
  AnalyzedQuery q = Q(
      "SELECT ambient_temperature FROM sensor_00 WHERE "
      "ambient_temperature < 0 OR ambient_temperature > 30");
  Profile p = ComposeSourceProfile(q);
  EXPECT_EQ(p.filters().size(), 2u);
  EXPECT_TRUE(p.Covers(Reading(-5)));
  EXPECT_TRUE(p.Covers(Reading(35)));
  EXPECT_FALSE(p.Covers(Reading(15)));
}

TEST_F(ProfileDnfTest, NestedDisjunctionDistributes) {
  AnalyzedQuery q = Q(
      "SELECT ambient_temperature FROM sensor_00 WHERE "
      "(ambient_temperature < 0 OR ambient_temperature > 30) AND "
      "(relative_humidity < 20 OR relative_humidity > 80)");
  Profile p = ComposeSourceProfile(q);
  EXPECT_EQ(p.filters().size(), 4u);
}

TEST_F(ProfileDnfTest, PlainConjunctionStaysSingleFilter) {
  AnalyzedQuery q = Q(
      "SELECT ambient_temperature FROM sensor_00 WHERE "
      "ambient_temperature >= 0 AND ambient_temperature <= 30");
  Profile p = ComposeSourceProfile(q);
  EXPECT_EQ(p.filters().size(), 1u);
}

TEST_F(ProfileDnfTest, CoverageMatchesPredicateSemantics) {
  AnalyzedQuery q = Q(
      "SELECT ambient_temperature FROM sensor_00 WHERE "
      "(ambient_temperature >= 0 AND ambient_temperature <= 10) OR "
      "ambient_temperature >= 30");
  Profile p = ComposeSourceProfile(q);
  for (double t = -10; t <= 35; t += 2.5) {
    bool expected = (t >= 0 && t <= 10) || t >= 30;
    EXPECT_EQ(p.Covers(Reading(t)), expected) << "temp=" << t;
  }
}

}  // namespace
}  // namespace cosmos
