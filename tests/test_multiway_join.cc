#include "spe/multiway_join.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/parser.h"

namespace cosmos {
namespace {

std::shared_ptr<const Schema> PartSchema(const std::string& name) {
  return std::make_shared<Schema>(
      name, std::vector<AttributeDef>{{"k", ValueType::kInt64},
                                      {"v", ValueType::kDouble}});
}

Tuple Part(const std::shared_ptr<const Schema>& schema, int64_t k, double v,
           Timestamp ts) {
  return Tuple(schema, {Value(k), Value(v)}, ts);
}

class MultiWayJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = PartSchema("A");
    b_ = PartSchema("B");
    c_ = PartSchema("C");
    out_ = MakeConcatenatedSchema(
        {{a_.get(), "A"}, {b_.get(), "B"}, {c_.get(), "C"}}, "J");
  }

  std::shared_ptr<const Schema> a_, b_, c_, out_;
};

TEST_F(MultiWayJoinTest, ConcatenatedSchemaQualifies) {
  EXPECT_EQ(out_->num_attributes(), 6u);
  EXPECT_TRUE(out_->HasAttribute("A.k"));
  EXPECT_TRUE(out_->HasAttribute("B.v"));
  EXPECT_TRUE(out_->HasAttribute("C.k"));
}

TEST_F(MultiWayJoinTest, ThreeWayKeyChainJoins) {
  // A.k = B.k and B.k = C.k.
  MultiWayJoinOperator join(
      {kInfiniteDuration, kInfiniteDuration, kInfiniteDuration},
      {{0, 0, 1, 0}, {1, 0, 2, 0}}, nullptr, out_);
  std::vector<Tuple> results;
  join.SetSink([&](const Tuple& t) { results.push_back(t); });
  join.Push(0, Part(a_, 1, 0.5, 0));
  join.Push(1, Part(b_, 1, 1.5, 1));
  EXPECT_TRUE(results.empty());  // C still missing
  join.Push(2, Part(c_, 1, 2.5, 2));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].GetAttribute("A.k")->AsInt64(), 1);
  EXPECT_DOUBLE_EQ(results[0].GetAttribute("C.v")->AsDouble(), 2.5);
  EXPECT_EQ(results[0].timestamp(), 2);  // tau = max
  // Mismatched key never joins.
  join.Push(2, Part(c_, 9, 0.0, 3));
  EXPECT_EQ(results.size(), 1u);
}

TEST_F(MultiWayJoinTest, ArrivalOnMiddlePortCompletesCombination) {
  MultiWayJoinOperator join(
      {kInfiniteDuration, kInfiniteDuration, kInfiniteDuration},
      {{0, 0, 1, 0}, {1, 0, 2, 0}}, nullptr, out_);
  int n = 0;
  join.SetSink([&](const Tuple&) { ++n; });
  join.Push(0, Part(a_, 7, 0, 0));
  join.Push(2, Part(c_, 7, 0, 1));
  join.Push(1, Part(b_, 7, 0, 2));  // completes on the middle port
  EXPECT_EQ(n, 1);
}

TEST_F(MultiWayJoinTest, WindowConditionUsesTau) {
  // Windows: A 10, B 10, C 10. A combination joins iff every component is
  // within 10 of the max timestamp.
  MultiWayJoinOperator join({10, 10, 10}, {{0, 0, 1, 0}, {1, 0, 2, 0}},
                            nullptr, out_);
  int n = 0;
  join.SetSink([&](const Tuple&) { ++n; });
  join.Push(0, Part(a_, 1, 0, 0));
  join.Push(1, Part(b_, 1, 0, 5));
  join.Push(2, Part(c_, 1, 0, 9));  // tau=9: ages 9,4,0 all <= 10
  EXPECT_EQ(n, 1);
  join.Push(0, Part(a_, 2, 0, 20));
  join.Push(1, Part(b_, 2, 0, 25));
  join.Push(2, Part(c_, 2, 0, 35));  // tau=35: A's age 15 > 10
  EXPECT_EQ(n, 1);
}

TEST_F(MultiWayJoinTest, MultipleCombinationsPerArrival) {
  MultiWayJoinOperator join(
      {kInfiniteDuration, kInfiniteDuration, kInfiniteDuration},
      {{0, 0, 1, 0}, {1, 0, 2, 0}}, nullptr, out_);
  int n = 0;
  join.SetSink([&](const Tuple&) { ++n; });
  join.Push(0, Part(a_, 1, 0, 0));
  join.Push(0, Part(a_, 1, 1, 1));
  join.Push(1, Part(b_, 1, 0, 2));
  join.Push(1, Part(b_, 1, 1, 3));
  join.Push(2, Part(c_, 1, 0, 4));  // 2 As x 2 Bs
  EXPECT_EQ(n, 4);
}

TEST_F(MultiWayJoinTest, ResidualFiltersCombinations) {
  auto residual = ParseExpression("A.v < C.v");
  ASSERT_TRUE(residual.ok());
  MultiWayJoinOperator join(
      {kInfiniteDuration, kInfiniteDuration, kInfiniteDuration},
      {{0, 0, 1, 0}, {1, 0, 2, 0}}, *residual, out_);
  int n = 0;
  join.SetSink([&](const Tuple&) { ++n; });
  join.Push(0, Part(a_, 1, 5.0, 0));
  join.Push(1, Part(b_, 1, 0.0, 1));
  join.Push(2, Part(c_, 1, 9.0, 2));  // 5 < 9: pass
  join.Push(2, Part(c_, 1, 1.0, 3));  // 5 < 1: fail
  EXPECT_EQ(n, 1);
}

// Pairwise two-way equivalence: MultiWayJoin(n=2) must agree with the
// specialized WindowJoinOperator's Lemma-1 oracle.
class MultiWayOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiWayOracleTest, ThreeWayMatchesNestedLoopOracle) {
  Rng rng(GetParam());
  auto a = PartSchema("A");
  auto b = PartSchema("B");
  auto c = PartSchema("C");
  auto out = MakeConcatenatedSchema(
      {{a.get(), "A"}, {b.get(), "B"}, {c.get(), "C"}}, "J");
  const Duration ta = rng.NextInt(0, 15);
  const Duration tb = rng.NextInt(0, 15);
  const Duration tc = rng.NextInt(0, 15);

  struct Row {
    int port;
    int64_t k;
    Timestamp ts;
  };
  std::vector<Row> rows;
  Timestamp now = 0;
  for (int i = 0; i < 120; ++i) {
    now += rng.NextInt(0, 3);
    rows.push_back({static_cast<int>(rng.NextBounded(3)),
                    rng.NextInt(0, 3), now});
  }

  MultiWayJoinOperator join({ta, tb, tc}, {{0, 0, 1, 0}, {1, 0, 2, 0}},
                            nullptr, out);
  int streamed = 0;
  join.SetSink([&](const Tuple&) { ++streamed; });
  std::vector<std::shared_ptr<const Schema>> schemas = {a, b, c};
  for (const auto& r : rows) {
    join.Push(static_cast<size_t>(r.port),
              Part(schemas[r.port], r.k, 0, r.ts));
  }

  // Oracle: all (A,B,C) triples with equal keys and every age <= its
  // window at tau = max timestamp.
  int oracle = 0;
  Duration windows[3] = {ta, tb, tc};
  for (const auto& x : rows) {
    if (x.port != 0) continue;
    for (const auto& y : rows) {
      if (y.port != 1 || y.k != x.k) continue;
      for (const auto& z : rows) {
        if (z.port != 2 || z.k != x.k) continue;
        Timestamp tau = std::max({x.ts, y.ts, z.ts});
        Timestamp parts[3] = {x.ts, y.ts, z.ts};
        bool ok = true;
        for (int i = 0; i < 3; ++i) {
          if (windows[i] != kInfiniteDuration &&
              tau - parts[i] > windows[i]) {
            ok = false;
          }
        }
        if (ok) ++oracle;
      }
    }
  }
  EXPECT_EQ(streamed, oracle) << "Ta=" << ta << " Tb=" << tb << " Tc=" << tc;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiWayOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace cosmos
