#include "core/statistics.h"

#include <gtest/gtest.h>

#include "core/system.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

TEST(RateMonitor, EmptyMonitorReportsZero) {
  RateMonitor m;
  EXPECT_DOUBLE_EQ(m.TupleRate("s", 100), 0.0);
  EXPECT_DOUBLE_EQ(m.ByteRate("s", 100), 0.0);
  EXPECT_EQ(m.WindowCount("s", 100), 0u);
  EXPECT_EQ(m.TotalTuples("s"), 0u);
  EXPECT_TRUE(m.ObservedStreams().empty());
}

TEST(RateMonitor, SteadyRateMeasuredCorrectly) {
  RateMonitor m(kMinute);
  // 2 tuples/second for 30 seconds.
  for (int i = 0; i < 60; ++i) {
    m.Record("s", i * kSecond / 2, 100);
  }
  Timestamp now = 30 * kSecond;
  EXPECT_NEAR(m.TupleRate("s", now), 2.0, 0.1);
  EXPECT_NEAR(m.ByteRate("s", now), 200.0, 10.0);
  EXPECT_EQ(m.TotalTuples("s"), 60u);
}

TEST(RateMonitor, WindowForgetsOldTraffic) {
  RateMonitor m(10 * kSecond);
  for (int i = 0; i < 10; ++i) m.Record("s", i * kSecond, 10);
  EXPECT_EQ(m.WindowCount("s", 9 * kSecond), 10u);
  // 30 seconds later, everything has aged out.
  EXPECT_EQ(m.WindowCount("s", 40 * kSecond), 0u);
  EXPECT_DOUBLE_EQ(m.TupleRate("s", 40 * kSecond), 0.0);
  // Lifetime totals survive.
  EXPECT_EQ(m.TotalTuples("s"), 10u);
}

TEST(RateMonitor, BurstThenIdleDecays) {
  RateMonitor m(10 * kSecond);
  for (int i = 0; i < 100; ++i) m.Record("s", kSecond + i, 10);  // burst
  double during = m.TupleRate("s", kSecond + 100);
  double later = m.TupleRate("s", 8 * kSecond);
  EXPECT_GT(during, later);
}

TEST(RateMonitor, PerStreamIsolation) {
  RateMonitor m(kMinute);
  m.Record("a", 0, 10);
  m.Record("a", kSecond, 10);
  m.Record("b", 0, 10);
  EXPECT_GT(m.TupleRate("a", kSecond), m.TupleRate("b", kSecond));
  EXPECT_EQ(m.ObservedStreams().size(), 2u);
}

TEST(RateMonitor, OutOfOrderNearWindowEdgeStillCounted) {
  RateMonitor m(10 * kSecond);
  m.Record("s", 20 * kSecond, 10);
  // Arrives late but still inside the window ending at max_ts: counted.
  m.Record("s", 11 * kSecond, 10);
  EXPECT_EQ(m.WindowCount("s", 20 * kSecond), 2u);
  EXPECT_EQ(m.TotalTuples("s"), 2u);
}

TEST(RateMonitor, OutOfOrderOlderThanWindowNeverLodges) {
  RateMonitor m(10 * kSecond);
  m.Record("s", 20 * kSecond, 10);
  // Arrives late AND already outside the window: it must not join the
  // window deque (it would sit behind the newer entry, beyond the reach of
  // front pruning, and inflate window stats for another full window).
  m.Record("s", 5 * kSecond, 1000);
  EXPECT_EQ(m.WindowCount("s", 20 * kSecond), 1u);
  EXPECT_NEAR(m.ByteRate("s", 20 * kSecond), 10.0, 1e-9);
  // The lifetime total still counts it.
  EXPECT_EQ(m.TotalTuples("s"), 2u);
}

TEST(RateMonitor, SpanSecondsClipsToObservedDataEarlyOn) {
  RateMonitor m(10 * kMinute);
  // 5 tuples over 4 seconds, queried right away: the averaging span must be
  // the 4 observed seconds, not the 10-minute window (which would dilute
  // the rate toward zero), and never below 1 second.
  for (int i = 0; i < 5; ++i) m.Record("s", i * kSecond, 10);
  EXPECT_NEAR(m.TupleRate("s", 4 * kSecond), 1.25, 0.01);
  // A single sample at `now` spans the 1-second floor: finite rate.
  RateMonitor single(10 * kMinute);
  single.Record("t", 7 * kSecond, 10);
  EXPECT_NEAR(single.TupleRate("t", 7 * kSecond), 1.0, 1e-9);
}

TEST(RateMonitor, MaxDriftRatioComparesObservedToCatalog) {
  Catalog catalog;
  (void)catalog.RegisterStream(
      std::make_shared<Schema>(
          "s", std::vector<AttributeDef>{{"x", ValueType::kInt64}}),
      /*rate=*/1.0);
  RateMonitor m(kMinute);
  EXPECT_DOUBLE_EQ(m.MaxDriftRatio(catalog, 0), 0.0);
  // Observed ~3 tuples/sec against an estimate of 1 => drift ~2.0.
  for (int i = 0; i < 90; ++i) m.Record("s", i * kSecond / 3, 10);
  double drift = m.MaxDriftRatio(catalog, 30 * kSecond);
  EXPECT_NEAR(drift, 2.0, 0.2);
  // Streams unknown to the catalog are ignored.
  for (int i = 0; i < 50; ++i) m.Record("mystery", i * kSecond, 10);
  EXPECT_NEAR(m.MaxDriftRatio(catalog, 30 * kSecond), drift, 1e-9);
  // After recalibration the drift collapses.
  EXPECT_EQ(m.CalibrateCatalog(catalog, 30 * kSecond), 1u);
  EXPECT_LT(m.MaxDriftRatio(catalog, 30 * kSecond), 0.01);
}

TEST(RateMonitor, CalibrateCatalogWritesObservedRates) {
  Catalog catalog;
  (void)catalog.RegisterStream(
      std::make_shared<Schema>(
          "s", std::vector<AttributeDef>{{"x", ValueType::kInt64}}),
      /*rate=*/999.0);
  RateMonitor m(kMinute);
  for (int i = 0; i < 20; ++i) m.Record("s", i * kSecond, 10);
  m.Record("unknown_stream", 0, 10);
  EXPECT_EQ(m.CalibrateCatalog(catalog, 19 * kSecond), 1u);
  EXPECT_NEAR(catalog.Lookup("s")->rate_tuples_per_sec, 1.0, 0.2);
}

TEST(RateMonitor, SystemObservesReplayAndCalibrates) {
  std::vector<Edge> edges = {{0, 1, 1.0}};
  CosmosSystem system(DisseminationTree::FromEdges(2, edges).value());
  SensorDatasetOptions sopts;
  sopts.num_stations = 2;
  sopts.duration = 10 * kMinute;
  sopts.sampling_period = 30 * kSecond;
  SensorDataset sensors(sopts);
  for (int k = 0; k < 2; ++k) {
    // Deliberately wrong initial estimates.
    ASSERT_TRUE(
        system.RegisterSource(sensors.SchemaOf(k), 123.0, 0).ok());
  }
  auto replay = sensors.MakeReplay();
  ASSERT_TRUE(system.Replay(*replay).ok());
  EXPECT_EQ(system.rate_monitor().TotalTuples("sensor_00"), 20u);
  EXPECT_EQ(system.CalibrateRates(), 2u);
  // True rate: one tuple per 30 seconds.
  EXPECT_NEAR(system.catalog().Lookup("sensor_00")->rate_tuples_per_sec,
              1.0 / 30.0, 0.01);
}

}  // namespace
}  // namespace cosmos
