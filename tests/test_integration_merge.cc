// End-to-end correctness of the paper's core mechanism: query merging plus
// profile re-tightening must be invisible to users. Every query must
// deliver exactly the same result multiset whether COSMOS merges queries
// into representatives (Figure 3b) or runs each query separately
// (Figure 3a). Exercised with the Table 1 auction queries and with random
// sensor workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/system.h"
#include "core/workload.h"
#include "stream/auction_dataset.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

DisseminationTree StarTree(int leaves) {
  std::vector<Edge> edges;
  for (int i = 1; i <= leaves; ++i) edges.push_back(Edge{0, i, 1.0});
  return DisseminationTree::FromEdges(leaves + 1, edges).value();
}

// Exact delivered-tuple fingerprint: schema (stream + attribute names),
// column order, values, timestamp. The presentation mapping re-shapes
// merged deliveries into the user query's own result schema, so merged and
// unmerged runs must match byte for byte.
std::string Canonicalize(const Tuple& t) { return t.ToString(); }

using ResultLog = std::map<int, std::multiset<std::string>>;

class MergeInvisibilityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeInvisibilityTest, RandomSensorWorkload) {
  const uint64_t seed = GetParam();

  // Build the same workload for both runs.
  SensorDatasetOptions sopts;
  sopts.num_stations = 6;
  sopts.duration = 30 * kMinute;
  sopts.seed = seed;
  SensorDataset sensors(sopts);

  Catalog workload_catalog;
  ASSERT_TRUE(sensors.RegisterAll(workload_catalog).ok());
  WorkloadOptions wl;
  wl.zipf_theta = 1.5;
  wl.seed = seed ^ 0xF00D;
  wl.aggregate_fraction = 0.15;
  QueryWorkloadGenerator gen(&workload_catalog, wl);
  std::vector<std::string> cqls;
  for (int i = 0; i < 25; ++i) cqls.push_back(gen.NextCql());

  ResultLog logs[2];
  for (int mode = 0; mode < 2; ++mode) {
    SystemOptions options;
    options.processor.enable_merging = (mode == 1);
    CosmosSystem system(StarTree(4), options);
    for (int k = 0; k < sopts.num_stations; ++k) {
      ASSERT_TRUE(system
                      .RegisterSource(sensors.SchemaOf(k),
                                      sensors.RatePerStation(), 0)
                      .ok());
    }
    ASSERT_TRUE(system.AddProcessor(0).ok());

    Rng user_rng(seed ^ 0xBEE);
    for (size_t i = 0; i < cqls.size(); ++i) {
      int qidx = static_cast<int>(i);
      NodeId user = 1 + static_cast<NodeId>(user_rng.NextBounded(4));
      ResultLog* log = &logs[mode];
      auto id = system.SubmitQuery(
          cqls[i], user, [log, qidx](const std::string&, const Tuple& t) {
            (*log)[qidx].insert(Canonicalize(t));
          });
      ASSERT_TRUE(id.ok()) << cqls[i] << ": " << id.status().ToString();
    }

    auto replay = sensors.MakeReplay();
    ASSERT_TRUE(system.Replay(*replay).ok());
  }

  int nonempty = 0;
  for (size_t i = 0; i < cqls.size(); ++i) {
    int qidx = static_cast<int>(i);
    EXPECT_EQ(logs[0][qidx].size(), logs[1][qidx].size())
        << "query " << i << ": " << cqls[i];
    EXPECT_EQ(logs[0][qidx], logs[1][qidx]) << "query " << i << ": "
                                            << cqls[i];
    if (!logs[0][qidx].empty()) ++nonempty;
  }
  // The workload must actually exercise deliveries.
  EXPECT_GT(nonempty, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeInvisibilityTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(MergeInvisibilityAuction, Table1QueriesSplitExactly) {
  const char* kQ1 =
      "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID";
  const char* kQ2 =
      "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp "
      "FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID";

  AuctionDatasetOptions aopts;
  aopts.num_auctions = 1500;
  aopts.seed = 99;
  AuctionDataset auctions(aopts);

  ResultLog logs[2];
  size_t groups[2];
  for (int mode = 0; mode < 2; ++mode) {
    SystemOptions options;
    options.processor.enable_merging = (mode == 1);
    CosmosSystem system(StarTree(3), options);
    (void)system.RegisterSource(AuctionDataset::OpenAuctionSchema(), 2.0, 0);
    (void)system.RegisterSource(AuctionDataset::ClosedAuctionSchema(), 1.8,
                                0);
    ASSERT_TRUE(system.AddProcessor(0).ok());
    ResultLog* log = &logs[mode];
    ASSERT_TRUE(system
                    .SubmitQuery(kQ1, 1,
                                 [log](const std::string&, const Tuple& t) {
                                   (*log)[1].insert(Canonicalize(t));
                                 })
                    .ok());
    ASSERT_TRUE(system
                    .SubmitQuery(kQ2, 2,
                                 [log](const std::string&, const Tuple& t) {
                                   (*log)[2].insert(Canonicalize(t));
                                 })
                    .ok());
    groups[mode] = system.TotalGroups();
    auto replay = auctions.MakeReplay();
    ASSERT_TRUE(system.Replay(*replay).ok());
  }
  EXPECT_EQ(groups[0], 2u);  // non-share: two groups
  EXPECT_EQ(groups[1], 1u);  // share: merged into the paper's q3
  EXPECT_FALSE(logs[0][1].empty());
  EXPECT_FALSE(logs[0][2].empty());
  EXPECT_EQ(logs[0][1], logs[1][1]) << "q1 results differ under merging";
  EXPECT_EQ(logs[0][2], logs[1][2]) << "q2 results differ under merging";
}

}  // namespace
}  // namespace cosmos
