#include "stream/catalog.h"

#include <gtest/gtest.h>

namespace cosmos {
namespace {

std::shared_ptr<const Schema> MakeSchema(const std::string& name) {
  return std::make_shared<Schema>(
      name, std::vector<AttributeDef>{{"x", ValueType::kInt64}});
}

TEST(Catalog, RegisterAndLookup) {
  Catalog c;
  ASSERT_TRUE(c.RegisterStream(MakeSchema("S"), 5.0, 3).ok());
  EXPECT_TRUE(c.HasStream("S"));
  auto info = c.Lookup("S");
  ASSERT_TRUE(info.ok());
  EXPECT_DOUBLE_EQ(info->rate_tuples_per_sec, 5.0);
  EXPECT_EQ(info->publisher_node, 3);
  EXPECT_EQ(c.num_streams(), 1u);
}

TEST(Catalog, DuplicateRegistrationFails) {
  Catalog c;
  ASSERT_TRUE(c.RegisterStream(MakeSchema("S")).ok());
  Status s = c.RegisterStream(MakeSchema("S"));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(Catalog, NullSchemaRejected) {
  Catalog c;
  EXPECT_EQ(c.RegisterStream(nullptr).code(), StatusCode::kInvalidArgument);
}

TEST(Catalog, LookupMissingFails) {
  Catalog c;
  EXPECT_EQ(c.Lookup("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(c.LookupSchema("nope").status().code(), StatusCode::kNotFound);
}

TEST(Catalog, UpdateRate) {
  Catalog c;
  ASSERT_TRUE(c.RegisterStream(MakeSchema("S"), 1.0).ok());
  ASSERT_TRUE(c.UpdateRate("S", 9.0).ok());
  EXPECT_DOUBLE_EQ(c.Lookup("S")->rate_tuples_per_sec, 9.0);
  EXPECT_EQ(c.UpdateRate("T", 1.0).code(), StatusCode::kNotFound);
}

TEST(Catalog, StreamNamesSorted) {
  Catalog c;
  (void)c.RegisterStream(MakeSchema("b"));
  (void)c.RegisterStream(MakeSchema("a"));
  auto names = c.StreamNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // map ordering
  EXPECT_EQ(names[1], "b");
}

TEST(Catalog, FloodedModeLookupIsFree) {
  Catalog c(DirectoryMode::kFlooded, 10);
  (void)c.RegisterStream(MakeSchema("S"));
  for (int n = 0; n < 10; ++n) {
    EXPECT_EQ(c.LookupHops("S", n), 0);
  }
}

TEST(Catalog, DhtModeChargesOneHopExceptAtHome) {
  Catalog c(DirectoryMode::kDht, 10);
  (void)c.RegisterStream(MakeSchema("S"));
  int home = c.ResponsibleNode("S");
  ASSERT_GE(home, 0);
  ASSERT_LT(home, 10);
  EXPECT_EQ(c.LookupHops("S", home), 0);
  EXPECT_EQ(c.LookupHops("S", (home + 1) % 10), 1);
}

TEST(Catalog, DhtSpreadsResponsibility) {
  Catalog c(DirectoryMode::kDht, 16);
  std::set<int> homes;
  for (int i = 0; i < 50; ++i) {
    homes.insert(c.ResponsibleNode("stream_" + std::to_string(i)));
  }
  // 50 names over 16 nodes should hit a decent spread.
  EXPECT_GT(homes.size(), 8u);
}

}  // namespace
}  // namespace cosmos
