// cosmos_dst: the deterministic simulation-testing driver.
//
//   cosmos_dst --seed=17            one scenario, full repro detail
//   cosmos_dst --begin=1 --count=50 a seed range (the dst_smoke suite)
//
// Every seed deterministically derives a topology, a workload, a query mix
// and a fault schedule (src/harness/scenario.h); the run is checked against
// a ground-truth oracle (src/harness/runner.h). On failure the driver
// prints the seed, greedily shrinks the event timeline to a minimal
// still-failing scenario, and dumps it together with the CBN event trace.
// Exit code 0 = every seed passed.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "harness/runner.h"
#include "harness/scenario.h"

namespace {

struct Flags {
  uint64_t begin = 1;
  uint64_t count = 50;
  bool single_seed = false;
  bool shrink = true;
  size_t shrink_budget = 400;
  std::string repro_dir;
  bool verbose = false;
  bool print_scenario = false;
  // Write the Chrome trace of this run to the given file (single-seed use;
  // load the JSON in chrome://tracing or Perfetto).
  std::string trace_out;
  // Escape hatch: run the CBN with the interpreted per-profile matching
  // walk instead of the compiled counting matcher. Deliveries must be
  // identical; the nightly sweep runs a seed slice in each mode and diffs.
  bool interpreted_match = false;
};

bool ParseUint64(const char* text, uint64_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t value = 0;
    if (std::strncmp(arg, "--seed=", 7) == 0 && ParseUint64(arg + 7, &value)) {
      flags->begin = value;
      flags->count = 1;
      flags->single_seed = true;
    } else if (std::strncmp(arg, "--begin=", 8) == 0 &&
               ParseUint64(arg + 8, &value)) {
      flags->begin = value;
    } else if (std::strncmp(arg, "--count=", 8) == 0 &&
               ParseUint64(arg + 8, &value)) {
      flags->count = value;
    } else if (std::strncmp(arg, "--shrink-budget=", 16) == 0 &&
               ParseUint64(arg + 16, &value)) {
      flags->shrink_budget = static_cast<size_t>(value);
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      flags->shrink = false;
    } else if (std::strncmp(arg, "--repro-dir=", 12) == 0) {
      flags->repro_dir = arg + 12;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      flags->verbose = true;
    } else if (std::strcmp(arg, "--print-scenario") == 0) {
      flags->print_scenario = true;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      flags->trace_out = arg + 12;
    } else if (std::strcmp(arg, "--interpreted-match") == 0) {
      flags->interpreted_match = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      std::fprintf(stderr,
                   "usage: cosmos_dst [--seed=N | --begin=N --count=K] "
                   "[--no-shrink] [--shrink-budget=N] [--repro-dir=DIR] "
                   "[--trace-out=FILE] [--interpreted-match] [--verbose] "
                   "[--print-scenario]\n");
      return false;
    }
  }
  return true;
}

std::string FailureText(uint64_t seed, const cosmos::DstScenario& minimized,
                        const cosmos::DstReport& report, size_t shrink_runs) {
  std::string out = cosmos::StrFormat(
      "seed %llu FAILED — reproduce with: cosmos_dst --seed=%llu\n",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(seed));
  out += report.Summary() + "\n";
  for (const std::string& f : report.failures) {
    out += "  CHECK FAILED: " + f + "\n";
  }
  if (shrink_runs > 0) {
    out += cosmos::StrFormat(
        "--- minimized scenario (%zu events, %zu initial queries) ---\n",
        minimized.events.size(), minimized.initial_queries.size());
  } else {
    out += "--- scenario ---\n";
  }
  out += minimized.ToString();
  if (!report.trace.empty()) {
    out += cosmos::StrFormat("--- CBN trace (last %zu events) ---\n",
                             report.trace.size());
    for (const std::string& line : report.trace) out += line + "\n";
  }
  return out;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(content.c_str(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  cosmos::DstOptions options;
  uint64_t failed = 0;
  for (uint64_t seed = flags.begin; seed < flags.begin + flags.count; ++seed) {
    cosmos::DstScenario scenario = cosmos::GenerateScenario(seed, options);
    if (flags.print_scenario) {
      std::fputs(scenario.ToString().c_str(), stdout);
    }
    cosmos::DstRunOptions first_run;
    first_run.interpreted_match = flags.interpreted_match;
    if (!flags.trace_out.empty()) {
      first_run.capture_chrome_trace = true;
      first_run.capture_metrics_json = true;
    }
    cosmos::DstReport report = cosmos::RunScenario(scenario, first_run);
    if (!flags.trace_out.empty()) {
      if (WriteFile(flags.trace_out, report.chrome_trace_json)) {
        std::printf("chrome trace written to %s\n", flags.trace_out.c_str());
      }
      if (WriteFile(flags.trace_out + ".metrics.json", report.metrics_json)) {
        std::printf("metrics snapshot written to %s.metrics.json\n",
                    flags.trace_out.c_str());
      }
    }
    if (report.ok) {
      if (flags.verbose || flags.single_seed) {
        std::printf("seed %llu: %s\n",
                    static_cast<unsigned long long>(seed),
                    report.Summary().c_str());
      }
      continue;
    }
    ++failed;

    cosmos::DstScenario minimized = scenario;
    size_t shrink_runs = 0;
    if (flags.shrink) {
      // Shrink under the same match mode the failure was found in.
      cosmos::DstRunOptions shrink_opts;
      shrink_opts.interpreted_match = flags.interpreted_match;
      minimized = cosmos::ShrinkScenario(
          scenario,
          [&shrink_opts](const cosmos::DstScenario& candidate) {
            return !cosmos::RunScenario(candidate, shrink_opts).ok;
          },
          flags.shrink_budget);
      shrink_runs = flags.shrink_budget;
    }
    // Re-run the minimized form with the CBN trace tap on for the report,
    // plus the Chrome trace and metrics snapshot for repro artifacts.
    cosmos::DstRunOptions run_options;
    run_options.interpreted_match = flags.interpreted_match;
    run_options.capture_trace = true;
    run_options.capture_chrome_trace = !flags.repro_dir.empty();
    run_options.capture_metrics_json = !flags.repro_dir.empty();
    cosmos::DstReport detailed = cosmos::RunScenario(minimized, run_options);
    // Shrinking preserves *some* failure, not necessarily the same one; if
    // the minimized run somehow passes (flaky shrink predicate would be a
    // bug in itself), fall back to the original report.
    const cosmos::DstReport& final_report =
        detailed.ok ? report : detailed;
    const cosmos::DstScenario& final_scenario =
        detailed.ok ? scenario : minimized;
    std::string text =
        FailureText(seed, final_scenario, final_report, shrink_runs);
    std::fputs(text.c_str(), stdout);

    if (!flags.repro_dir.empty()) {
      std::string stem = flags.repro_dir +
                         cosmos::StrFormat("/seed-%llu",
                                           static_cast<unsigned long long>(
                                               seed));
      if (WriteFile(stem + ".txt", text)) {
        std::printf("repro written to %s.txt\n", stem.c_str());
      }
      // The failing run's Chrome trace and final metrics snapshot ride
      // along so CI can upload them as debugging artifacts.
      if (!detailed.chrome_trace_json.empty() &&
          WriteFile(stem + ".trace.json", detailed.chrome_trace_json)) {
        std::printf("chrome trace written to %s.trace.json\n", stem.c_str());
      }
      if (!detailed.metrics_json.empty() &&
          WriteFile(stem + ".metrics.json", detailed.metrics_json)) {
        std::printf("metrics snapshot written to %s.metrics.json\n",
                    stem.c_str());
      }
    }
  }

  if (flags.count > 1 || flags.verbose) {
    std::printf("%llu/%llu seeds passed\n",
                static_cast<unsigned long long>(flags.count - failed),
                static_cast<unsigned long long>(flags.count));
  }
  return failed == 0 ? 0 : 1;
}
