// Query-layer failover: a processor disappears and its queries re-home
// onto the surviving processors with no user-visible change beyond the
// gap.

#include <gtest/gtest.h>

#include "core/system.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

DisseminationTree ChainTree(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back(Edge{i, i + 1, 1.0});
  return DisseminationTree::FromEdges(n, edges).value();
}

class FailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SensorDatasetOptions sopts;
    sopts.num_stations = 3;
    sopts.duration = 10 * kMinute;
    sensors_ = std::make_unique<SensorDataset>(sopts);
    system_ = std::make_unique<CosmosSystem>(ChainTree(6));
    for (int k = 0; k < 3; ++k) {
      ASSERT_TRUE(system_
                      ->RegisterSource(sensors_->SchemaOf(k),
                                       sensors_->RatePerStation(), 0)
                      .ok());
    }
    ASSERT_TRUE(system_->AddProcessor(2).ok());
    ASSERT_TRUE(system_->AddProcessor(4).ok());
  }

  std::unique_ptr<SensorDataset> sensors_;
  std::unique_ptr<CosmosSystem> system_;
};

TEST_F(FailoverTest, QueriesSurviveProcessorFailure) {
  int hits = 0;
  auto id = system_->SubmitQuery(
      "SELECT ambient_temperature FROM sensor_01", 5,
      [&](const std::string&, const Tuple&) { ++hits; });
  ASSERT_TRUE(id.ok());

  auto replay1 = sensors_->MakeReplay();
  ASSERT_TRUE(system_->Replay(*replay1).ok());
  EXPECT_EQ(hits, 20);

  // Whichever processor hosts the query, fail it.
  NodeId victim = system_->processor(2) != nullptr &&
                          system_->processor(2)->num_queries() > 0
                      ? 2
                      : 4;
  ASSERT_TRUE(system_->FailProcessor(victim).ok());
  EXPECT_EQ(system_->num_processors(), 1u);
  EXPECT_EQ(system_->TotalQueries(), 1u);

  auto replay2 = sensors_->MakeReplay();
  ASSERT_TRUE(system_->Replay(*replay2).ok());
  EXPECT_EQ(hits, 40) << "query went silent after failover";
}

TEST_F(FailoverTest, CannotFailTheLastProcessor) {
  ASSERT_TRUE(system_->FailProcessor(2).ok());
  EXPECT_EQ(system_->FailProcessor(4).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FailoverTest, FailUnknownProcessorRejected) {
  EXPECT_EQ(system_->FailProcessor(1).code(), StatusCode::kNotFound);
}

TEST_F(FailoverTest, MergedGroupsReformAtTheNewHome) {
  int hits1 = 0, hits2 = 0;
  (void)system_->SubmitQuery(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "20 AND relative_humidity <= 60",
      5, [&](const std::string&, const Tuple&) { ++hits1; });
  (void)system_->SubmitQuery(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "40 AND relative_humidity <= 80",
      5, [&](const std::string&, const Tuple&) { ++hits2; });
  // Signature affinity put both on one processor as one group.
  NodeId home = system_->processor(2)->num_queries() == 2 ? 2 : 4;
  EXPECT_EQ(system_->processor(home)->grouping().num_groups(), 1u);

  auto replay1 = sensors_->MakeReplay();
  ASSERT_TRUE(system_->Replay(*replay1).ok());
  int before1 = hits1, before2 = hits2;
  EXPECT_GT(before1 + before2, 0);

  ASSERT_TRUE(system_->FailProcessor(home).ok());
  NodeId survivor = home == 2 ? 4 : 2;
  EXPECT_EQ(system_->processor(survivor)->num_queries(), 2u);
  // The group re-formed at the survivor.
  EXPECT_EQ(system_->processor(survivor)->grouping().num_groups(), 1u);

  auto replay2 = sensors_->MakeReplay();
  ASSERT_TRUE(system_->Replay(*replay2).ok());
  EXPECT_EQ(hits1, 2 * before1);
  EXPECT_EQ(hits2, 2 * before2);
}

TEST_F(FailoverTest, SurvivorLoadReflectsRehoming) {
  for (int i = 0; i < 4; ++i) {
    (void)system_->SubmitQuery(
        "SELECT ambient_temperature FROM sensor_0" + std::to_string(i % 3),
        5, nullptr);
  }
  size_t before = system_->TotalQueries();
  ASSERT_TRUE(system_->FailProcessor(2).ok());
  EXPECT_EQ(system_->TotalQueries(), before);
  EXPECT_EQ(system_->processor(4)->num_queries(), before);
}

}  // namespace
}  // namespace cosmos
