// Failure recovery: query-layer failover (a processor disappears and its
// queries re-home onto the surviving processors) and data-layer recovery
// regressions (buffered-datagram flushing must neither duplicate nor
// strand deliveries, and recovery statistics must reset cleanly).

#include <gtest/gtest.h>

#include "cbn/network.h"
#include "core/system.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

DisseminationTree ChainTree(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back(Edge{i, i + 1, 1.0});
  return DisseminationTree::FromEdges(n, edges).value();
}

class FailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SensorDatasetOptions sopts;
    sopts.num_stations = 3;
    sopts.duration = 10 * kMinute;
    sensors_ = std::make_unique<SensorDataset>(sopts);
    system_ = std::make_unique<CosmosSystem>(ChainTree(6));
    for (int k = 0; k < 3; ++k) {
      ASSERT_TRUE(system_
                      ->RegisterSource(sensors_->SchemaOf(k),
                                       sensors_->RatePerStation(), 0)
                      .ok());
    }
    ASSERT_TRUE(system_->AddProcessor(2).ok());
    ASSERT_TRUE(system_->AddProcessor(4).ok());
  }

  std::unique_ptr<SensorDataset> sensors_;
  std::unique_ptr<CosmosSystem> system_;
};

TEST_F(FailoverTest, QueriesSurviveProcessorFailure) {
  int hits = 0;
  auto id = system_->SubmitQuery(
      "SELECT ambient_temperature FROM sensor_01", 5,
      [&](const std::string&, const Tuple&) { ++hits; });
  ASSERT_TRUE(id.ok());

  auto replay1 = sensors_->MakeReplay();
  ASSERT_TRUE(system_->Replay(*replay1).ok());
  EXPECT_EQ(hits, 20);

  // Whichever processor hosts the query, fail it.
  NodeId victim = system_->processor(2) != nullptr &&
                          system_->processor(2)->num_queries() > 0
                      ? 2
                      : 4;
  ASSERT_TRUE(system_->FailProcessor(victim).ok());
  EXPECT_EQ(system_->num_processors(), 1u);
  EXPECT_EQ(system_->TotalQueries(), 1u);

  auto replay2 = sensors_->MakeReplay();
  ASSERT_TRUE(system_->Replay(*replay2).ok());
  EXPECT_EQ(hits, 40) << "query went silent after failover";
}

TEST_F(FailoverTest, CannotFailTheLastProcessor) {
  ASSERT_TRUE(system_->FailProcessor(2).ok());
  EXPECT_EQ(system_->FailProcessor(4).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FailoverTest, FailUnknownProcessorRejected) {
  EXPECT_EQ(system_->FailProcessor(1).code(), StatusCode::kNotFound);
}

TEST_F(FailoverTest, MergedGroupsReformAtTheNewHome) {
  int hits1 = 0, hits2 = 0;
  (void)system_->SubmitQuery(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "20 AND relative_humidity <= 60",
      5, [&](const std::string&, const Tuple&) { ++hits1; });
  (void)system_->SubmitQuery(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "40 AND relative_humidity <= 80",
      5, [&](const std::string&, const Tuple&) { ++hits2; });
  // Signature affinity put both on one processor as one group.
  NodeId home = system_->processor(2)->num_queries() == 2 ? 2 : 4;
  EXPECT_EQ(system_->processor(home)->grouping().num_groups(), 1u);

  auto replay1 = sensors_->MakeReplay();
  ASSERT_TRUE(system_->Replay(*replay1).ok());
  int before1 = hits1, before2 = hits2;
  EXPECT_GT(before1 + before2, 0);

  ASSERT_TRUE(system_->FailProcessor(home).ok());
  NodeId survivor = home == 2 ? 4 : 2;
  EXPECT_EQ(system_->processor(survivor)->num_queries(), 2u);
  // The group re-formed at the survivor.
  EXPECT_EQ(system_->processor(survivor)->grouping().num_groups(), 1u);

  auto replay2 = sensors_->MakeReplay();
  ASSERT_TRUE(system_->Replay(*replay2).ok());
  EXPECT_EQ(hits1, 2 * before1);
  EXPECT_EQ(hits2, 2 * before2);
}

TEST_F(FailoverTest, SurvivorLoadReflectsRehoming) {
  for (int i = 0; i < 4; ++i) {
    (void)system_->SubmitQuery(
        "SELECT ambient_temperature FROM sensor_0" + std::to_string(i % 3),
        5, nullptr);
  }
  size_t before = system_->TotalQueries();
  ASSERT_TRUE(system_->FailProcessor(2).ok());
  EXPECT_EQ(system_->TotalQueries(), before);
  EXPECT_EQ(system_->processor(4)->num_queries(), before);
}

// ---- data-layer recovery regressions -------------------------------------

std::shared_ptr<const Schema> CbnSchema() {
  return std::make_shared<Schema>(
      "s", std::vector<AttributeDef>{{"temp", ValueType::kDouble, -10, 40}});
}

Datagram CbnDatagram(double temp, Timestamp ts = 0) {
  return Datagram{"s", Tuple(CbnSchema(), {Value(temp)}, ts)};
}

// Overlay square 0-1-2-3-0; tree is the chain 0-1-2-3.
Graph SquareOverlay() {
  Graph g(4);
  (void)g.AddEdge(0, 1, 1.0);
  (void)g.AddEdge(1, 2, 1.0);
  (void)g.AddEdge(2, 3, 1.0);
  (void)g.AddEdge(3, 0, 2.0);
  return g;
}

Profile WholeStreamProfile() {
  Profile p;
  p.AddStream("s");
  return p;
}

TEST(CbnFailureRecovery, RepairUnderSimulatorDoesNotDuplicateDeliveries) {
  // Regression: forwarding hops scheduled on the Simulator dropped the
  // `allowed` component restriction, so a buffered datagram flushed by
  // Repair() re-entered the healthy side and was delivered twice there.
  Simulator sim;
  ContentBasedNetwork net(ChainTree(4), NetworkOptions{}, &sim);
  int hits1 = 0;
  int hits3 = 0;
  net.Subscribe(1, WholeStreamProfile(),
                [&](const std::string&, const Tuple&) { ++hits1; });
  net.Subscribe(3, WholeStreamProfile(),
                [&](const std::string&, const Tuple&) { ++hits3; });
  ASSERT_TRUE(net.FailLink(1, 2).ok());
  net.Publish(0, CbnDatagram(1));
  sim.Run();
  EXPECT_EQ(hits1, 1);
  EXPECT_EQ(hits3, 0);
  EXPECT_EQ(net.buffered_datagrams(), 1u);

  ASSERT_TRUE(net.Repair(SquareOverlay()).ok());
  sim.Run();
  EXPECT_EQ(hits3, 1) << "buffered datagram not recovered";
  EXPECT_EQ(hits1, 1)
      << "scheduled hop dropped the component restriction: duplicate "
         "delivery on the healthy side";
}

TEST(CbnFailureRecovery, RebuildTreeDeliversBufferedDatagrams) {
  // Regression: RebuildTree() cleared failed_links_ but stranded buffered_
  // datagrams — never delivered, never counted lost or recovered.
  ContentBasedNetwork net(ChainTree(4));
  int hits1 = 0;
  int hits3 = 0;
  net.Subscribe(1, WholeStreamProfile(),
                [&](const std::string&, const Tuple&) { ++hits1; });
  net.Subscribe(3, WholeStreamProfile(),
                [&](const std::string&, const Tuple&) { ++hits3; });
  ASSERT_TRUE(net.FailLink(1, 2).ok());
  net.Publish(0, CbnDatagram(1));
  EXPECT_EQ(hits1, 1);
  EXPECT_EQ(hits3, 0);
  EXPECT_EQ(net.buffered_datagrams(), 1u);

  ASSERT_TRUE(net.RebuildTree(ChainTree(4)).ok());
  EXPECT_EQ(hits3, 1) << "RebuildTree stranded the buffered datagram";
  EXPECT_EQ(hits1, 1) << "duplicate delivery on the healthy side";
  EXPECT_EQ(net.buffered_datagrams(), 0u);
  EXPECT_EQ(net.recovered_datagrams(), 1u);
  EXPECT_EQ(net.lost_datagrams(), 0u);
}

TEST(CbnFailureRecovery, ResetStatsClearsRecoveryCounters) {
  // Regression: ResetStats() left recovered_datagrams_ standing, so
  // ablation runs resetting between trials double-counted recoveries.
  ContentBasedNetwork net(ChainTree(4));
  net.Subscribe(3, WholeStreamProfile(), nullptr);
  ASSERT_TRUE(net.FailLink(1, 2).ok());
  net.Publish(0, CbnDatagram(1));
  ASSERT_TRUE(net.Repair(SquareOverlay()).ok());
  ASSERT_EQ(net.recovered_datagrams(), 1u);

  net.ResetStats();
  EXPECT_EQ(net.recovered_datagrams(), 0u);
  EXPECT_EQ(net.lost_datagrams(), 0u);
  EXPECT_EQ(net.total_bytes(), 0u);
}

TEST(CbnFailureRecovery, RepairDropsStatsForRemovedLinks) {
  // Regression: WeightedBytes() kept charging pre-repair link keys that
  // are no longer tree edges, at the value_or(1.0) fallback weight.
  ContentBasedNetwork net(ChainTree(4));
  net.Subscribe(3, WholeStreamProfile(), nullptr);
  net.Publish(0, CbnDatagram(1));
  ASSERT_GT(net.link_stats().count({1, 2}), 0u);

  ASSERT_TRUE(net.FailLink(1, 2).ok());
  ASSERT_TRUE(net.Repair(SquareOverlay()).ok());
  EXPECT_EQ(net.link_stats().count({1, 2}), 0u)
      << "stats survived for a link the repair removed from the tree";
  for (const auto& [key, stats] : net.link_stats()) {
    EXPECT_TRUE(net.tree().HasEdge(key.first, key.second))
        << "stats for (" << key.first << "," << key.second
        << ") but no such tree edge";
  }
}

// ---- stream-partitioned routing index under churn -------------------------

// Sum over (link, entry) of the entry's stream count: what the per-stream
// index must hold for the table to be consistent.
size_t ExpectedIndexSlots(const RoutingTable& table) {
  size_t expected = 0;
  for (NodeId link : table.Links()) {
    for (const auto& e : table.EntriesFor(link)) {
      expected += e.profile->streams().size();
    }
  }
  return expected;
}

void ExpectIndexConsistent(const ContentBasedNetwork& net) {
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    const RoutingTable& table = net.router(n).table();
    ASSERT_TRUE(table.CheckInvariants()) << "node " << n;
    EXPECT_EQ(table.TotalIndexedSlots(), ExpectedIndexSlots(table))
        << "node " << n;
  }
}

TEST(RoutingIndexConsistency, SubscribeUnsubscribeRepairChurn) {
  // Random subscribe/unsubscribe/fail/repair churn must keep every node's
  // per-stream bucket index exactly mirroring its entry list. Profiles are
  // single-stream here, so indexed slots == TotalEntries() per node.
  ContentBasedNetwork net(ChainTree(6));
  Graph overlay(6);
  for (int i = 0; i + 1 < 6; ++i) (void)overlay.AddEdge(i, i + 1, 1.0);
  (void)overlay.AddEdge(5, 0, 2.0);
  (void)overlay.AddEdge(4, 0, 3.0);

  Rng rng(2024);
  std::vector<ProfileId> live;
  int delivered = 0;
  for (int round = 0; round < 200; ++round) {
    double action = rng.NextDouble();
    if (action < 0.5 || live.empty()) {
      Profile p;
      ConjunctiveClause c;
      double lo = rng.NextInt(-10, 30);
      c.ConstrainInterval("temp", Interval(lo, false, lo + 10, false));
      p.AddStream("s", {"temp"});
      p.AddFilter(Filter("s", std::move(c)));
      live.push_back(net.Subscribe(
          static_cast<NodeId>(rng.NextBounded(6)), std::move(p),
          [&](const std::string&, const Tuple&) { ++delivered; }));
    } else if (action < 0.8) {
      size_t pick = rng.NextBounded(live.size());
      EXPECT_TRUE(net.Unsubscribe(live[pick]));
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      // Fail a random edge of the *current* tree (repairs reshape it).
      const auto& edges = net.tree().edges();
      const Edge e = edges[rng.NextBounded(edges.size())];
      ASSERT_TRUE(net.FailLink(e.u, e.v).ok());
      net.Publish(0, CbnDatagram(rng.NextInt(-10, 40)));
      ASSERT_TRUE(net.Repair(overlay).ok());
    }
    net.Publish(static_cast<NodeId>(rng.NextBounded(6)),
                CbnDatagram(rng.NextInt(-10, 40)));
    ExpectIndexConsistent(net);
    size_t expected_total = 0;
    for (NodeId n = 0; n < net.num_nodes(); ++n) {
      expected_total += net.router(n).table().TotalEntries();
    }
    size_t indexed_total = 0;
    for (NodeId n = 0; n < net.num_nodes(); ++n) {
      indexed_total += net.router(n).table().TotalIndexedSlots();
    }
    EXPECT_EQ(indexed_total, expected_total)
        << "single-stream profiles: slots must equal entries";
  }
  EXPECT_GT(delivered, 0);
}

TEST(RoutingIndexConsistency, MultiStreamProfilesIndexEveryStream) {
  ContentBasedNetwork net(ChainTree(4));
  Profile p;
  p.AddStream("a");
  p.AddStream("b");
  int hits = 0;
  ProfileId id = net.Subscribe(
      3, p, [&](const std::string&, const Tuple&) { ++hits; });
  ExpectIndexConsistent(net);
  // Each table entry for this profile carries one slot per stream.
  for (NodeId n = 0; n < 3; ++n) {
    const RoutingTable& t = net.router(n).table();
    EXPECT_EQ(t.TotalIndexedSlots(), 2 * t.TotalEntries()) << "node " << n;
  }
  auto sa = std::make_shared<Schema>(
      "a", std::vector<AttributeDef>{{"x", ValueType::kDouble}});
  auto sb = std::make_shared<Schema>(
      "b", std::vector<AttributeDef>{{"x", ValueType::kDouble}});
  net.Publish(0, Datagram{"a", Tuple(sa, {Value(1.0)}, 0)});
  net.Publish(0, Datagram{"b", Tuple(sb, {Value(2.0)}, 1)});
  EXPECT_EQ(hits, 2);
  EXPECT_TRUE(net.Unsubscribe(id));
  for (NodeId n = 0; n < net.num_nodes(); ++n) {
    EXPECT_EQ(net.router(n).table().TotalIndexedSlots(), 0u);
    EXPECT_EQ(net.router(n).table().TotalEntries(), 0u);
  }
}

}  // namespace
}  // namespace cosmos
