#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cbn/codec.h"
#include "cbn/profile.h"
#include "common/random.h"
#include "expr/expression.h"

namespace cosmos {
namespace {

// Seeded structural fuzzing of the wire codec: every generated Datagram
// and Profile must survive encode -> decode -> encode with the re-encoded
// bytes identical to the first encoding (canonical form), and the decoded
// object must compare equal field-by-field. Byte-identity is the strong
// property: it catches asymmetric encoders (lossy field, reordered map,
// float formatting) that a pure equality check can miss.

Value RandomValue(Rng& rng, ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return Value(rng.NextInt(-1000000, 1000000));
    case ValueType::kDouble: {
      // Mix plain values with exact-representation hazards.
      switch (rng.NextBounded(5)) {
        case 0:
          return Value(0.0);
        case 1:
          return Value(-0.0);
        case 2:
          return Value(rng.NextDouble(-1e9, 1e9));
        case 3:
          return Value(rng.NextDouble() * 1e-300);
        default:
          return Value(rng.NextGaussian());
      }
    }
    case ValueType::kString: {
      std::string s;
      size_t len = rng.NextBounded(12);
      for (size_t i = 0; i < len; ++i) {
        // Include NUL and high bytes: strings are length-prefixed.
        s.push_back(static_cast<char>(rng.NextBounded(256)));
      }
      return Value(std::move(s));
    }
    case ValueType::kBool:
      return Value(rng.NextBool());
    case ValueType::kNull:
    default:
      return Value();
  }
}

ValueType RandomType(Rng& rng) {
  static const ValueType kTypes[] = {ValueType::kInt64, ValueType::kDouble,
                                     ValueType::kString, ValueType::kBool,
                                     ValueType::kNull};
  return kTypes[rng.NextBounded(5)];
}

Datagram RandomDatagram(Rng& rng) {
  size_t num_attrs = 1 + rng.NextBounded(6);
  std::vector<AttributeDef> defs;
  std::vector<Value> values;
  std::vector<ValueType> types;
  for (size_t i = 0; i < num_attrs; ++i) {
    ValueType t = RandomType(rng);
    types.push_back(t);
    defs.push_back({"a" + std::to_string(i), t});
  }
  std::string stream = "s" + std::to_string(rng.NextBounded(4));
  auto schema = std::make_shared<Schema>(stream, std::move(defs));
  for (size_t i = 0; i < num_attrs; ++i) {
    values.push_back(RandomValue(rng, types[i]));
  }
  Timestamp ts = static_cast<Timestamp>(rng.NextUint64() >> 1);
  return Datagram{stream, Tuple(schema, std::move(values), ts)};
}

ExprPtr RandomResidual(Rng& rng, int depth = 0) {
  if (depth >= 2 || rng.NextBool(0.4)) {
    if (rng.NextBool()) return MakeColumn("a" + std::to_string(rng.NextBounded(4)));
    return MakeLiteral(RandomValue(
        rng, rng.NextBool() ? ValueType::kDouble : ValueType::kInt64));
  }
  static const CompareOp kCmp[] = {CompareOp::kLt, CompareOp::kLe,
                                   CompareOp::kGt, CompareOp::kGe,
                                   CompareOp::kEq, CompareOp::kNe};
  static const ArithOp kArith[] = {ArithOp::kAdd, ArithOp::kSub,
                                   ArithOp::kMul, ArithOp::kDiv};
  if (rng.NextBool()) {
    return MakeCompare(kCmp[rng.NextBounded(6)], RandomResidual(rng, depth + 1),
                       RandomResidual(rng, depth + 1));
  }
  return MakeArith(kArith[rng.NextBounded(4)], RandomResidual(rng, depth + 1),
                   RandomResidual(rng, depth + 1));
}

Profile RandomProfile(Rng& rng) {
  Profile p;
  size_t num_streams = 1 + rng.NextBounded(3);
  for (size_t s = 0; s < num_streams; ++s) {
    std::string stream = "s" + std::to_string(s);
    std::vector<std::string> projection;
    size_t num_proj = rng.NextBounded(4);  // 0 = all attributes
    for (size_t i = 0; i < num_proj; ++i) {
      projection.push_back("a" + std::to_string(rng.NextBounded(6)));
    }
    p.AddStream(stream, projection);
    size_t num_filters = rng.NextBounded(3);
    for (size_t f = 0; f < num_filters; ++f) {
      ConjunctiveClause clause;
      size_t num_constraints = rng.NextBounded(3);
      for (size_t c = 0; c < num_constraints; ++c) {
        std::string attr = "a" + std::to_string(rng.NextBounded(4));
        switch (rng.NextBounded(4)) {
          case 0: {
            double lo = rng.NextDouble(-100, 100);
            clause.ConstrainInterval(
                attr, Interval(lo, rng.NextBool(), lo + rng.NextDouble(0, 50),
                               rng.NextBool()));
            break;
          }
          case 1:
            clause.ConstrainEquals(attr,
                                   RandomValue(rng, ValueType::kInt64));
            break;
          case 2:
            clause.ConstrainNotEquals(attr,
                                      RandomValue(rng, ValueType::kString));
            break;
          default:
            clause.ConstrainInterval(attr, Interval::AtLeast(
                rng.NextDouble(-100, 100), rng.NextBool()));
            break;
        }
      }
      if (rng.NextBool(0.3)) clause.AddResidual(RandomResidual(rng));
      p.AddFilter(Filter(stream, std::move(clause)));
    }
  }
  return p;
}

TEST(CodecFuzz, DatagramRoundTripsByteIdentical) {
  Rng rng(0xC0DEC0DEull);
  for (int i = 0; i < 10000; ++i) {
    Datagram original = RandomDatagram(rng);
    std::vector<uint8_t> bytes = EncodeDatagram(original);
    auto decoded = DecodeDatagram(bytes);
    ASSERT_TRUE(decoded.ok())
        << "case " << i << ": " << decoded.status().ToString();
    ASSERT_EQ(decoded->stream, original.stream) << "case " << i;
    ASSERT_EQ(decoded->tuple.timestamp(), original.tuple.timestamp())
        << "case " << i;
    ASSERT_EQ(decoded->tuple.num_values(), original.tuple.num_values())
        << "case " << i;
    for (size_t v = 0; v < original.tuple.num_values(); ++v) {
      ASSERT_EQ(decoded->tuple.value(v).ToString(),
                original.tuple.value(v).ToString())
          << "case " << i << " value " << v;
    }
    std::vector<uint8_t> re = EncodeDatagram(*decoded);
    ASSERT_EQ(re, bytes) << "case " << i << ": re-encode not byte-identical";
  }
}

TEST(CodecFuzz, ProfileRoundTripsByteIdentical) {
  Rng rng(0x9120F11Eull);
  for (int i = 0; i < 10000; ++i) {
    Profile original = RandomProfile(rng);
    std::vector<uint8_t> bytes = EncodeProfile(original);
    auto decoded = DecodeProfile(bytes);
    ASSERT_TRUE(decoded.ok())
        << "case " << i << ": " << decoded.status().ToString()
        << "\nprofile: " << original.ToString();
    ASSERT_EQ(decoded->ToString(), original.ToString()) << "case " << i;
    std::vector<uint8_t> re = EncodeProfile(*decoded);
    ASSERT_EQ(re, bytes) << "case " << i << ": re-encode not byte-identical"
                         << "\nprofile: " << original.ToString();
  }
}

TEST(CodecFuzz, DatagramDecodeRejectsTruncations) {
  // Every strict prefix of a valid encoding must fail cleanly, never
  // crash or succeed: the deserializer guards each read.
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    Datagram d = RandomDatagram(rng);
    std::vector<uint8_t> bytes = EncodeDatagram(d);
    for (size_t cut = 0; cut < bytes.size();
         cut += 1 + bytes.size() / 37) {
      std::vector<uint8_t> prefix(bytes.begin(),
                                  bytes.begin() + static_cast<long>(cut));
      EXPECT_FALSE(DecodeDatagram(prefix).ok());
    }
  }
}

}  // namespace
}  // namespace cosmos
