#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "harness/oracle.h"
#include "harness/runner.h"
#include "harness/scenario.h"

namespace cosmos {
namespace {

// The DST harness itself must be trustworthy: scenarios are pure functions
// of the seed, runs are deterministic, and the shrinker only ever returns
// scenarios on which the failure predicate still holds.

TEST(DstScenario, SameSeedSameScenario) {
  DstScenario a = GenerateScenario(4242);
  DstScenario b = GenerateScenario(4242);
  EXPECT_EQ(a.ToString(), b.ToString());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].ToString(), b.events[i].ToString()) << "event " << i;
  }
}

TEST(DstScenario, DifferentSeedsDiffer) {
  // Not guaranteed per-pair in general, but these seeds must not collide —
  // a collision would mean the seed barely feeds the generator.
  EXPECT_NE(GenerateScenario(1).ToString(), GenerateScenario(2).ToString());
  EXPECT_NE(GenerateScenario(1).ToString(), GenerateScenario(3).ToString());
}

TEST(DstScenario, RespectsOptionEnvelope) {
  DstOptions opts;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    DstScenario s = GenerateScenario(seed, opts);
    EXPECT_GE(s.num_nodes, opts.min_nodes) << "seed " << seed;
    EXPECT_LE(s.num_nodes, opts.max_nodes) << "seed " << seed;
    EXPECT_GE(static_cast<int>(s.sources.size()), opts.min_streams);
    EXPECT_LE(static_cast<int>(s.sources.size()), opts.max_streams);
    EXPECT_GE(static_cast<int>(s.processors.size()), opts.min_processors);
    EXPECT_LE(static_cast<int>(s.processors.size()), opts.max_processors);
    EXPECT_GE(static_cast<int>(s.initial_queries.size()),
              opts.min_initial_queries);
    EXPECT_LE(static_cast<int>(s.initial_queries.size()),
              opts.max_initial_queries);
    for (NodeId p : s.processors) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, s.num_nodes);
    }
    for (const auto& src : s.sources) {
      EXPECT_GE(src.publisher, 0);
      EXPECT_LT(src.publisher, s.num_nodes);
      ASSERT_NE(src.schema, nullptr);
    }
  }
}

TEST(DstScenario, EventsAreTimeOrdered) {
  for (uint64_t seed : {1ull, 7ull, 313ull, 982ull}) {
    DstScenario s = GenerateScenario(seed);
    for (size_t i = 1; i < s.events.size(); ++i) {
      EXPECT_LE(s.events[i - 1].at, s.events[i].at)
          << "seed " << seed << " event " << i;
    }
  }
}

TEST(DstScenario, QueryTagsAreUnique) {
  DstScenario s = GenerateScenario(55);
  std::set<std::string> tags;
  for (const auto& q : s.initial_queries) {
    EXPECT_TRUE(tags.insert(q.tag).second) << "duplicate tag " << q.tag;
  }
  for (const auto& e : s.events) {
    if (e.type == DstEventType::kSubmitQuery) {
      EXPECT_TRUE(tags.insert(e.query.tag).second)
          << "duplicate tag " << e.query.tag;
    }
  }
}

TEST(DstRunner, RunIsDeterministic) {
  DstScenario s = GenerateScenario(17);
  DstReport a = RunScenario(s);
  DstReport b = RunScenario(s);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.failures, b.failures);
}

TEST(DstRunner, SmokeSeedsHaveSubstance) {
  // A scenario that injects nothing or submits nothing tests nothing; the
  // generator's envelope guarantees every seed has observable work.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    DstScenario s = GenerateScenario(seed);
    DstReport r = RunScenario(s);
    EXPECT_TRUE(r.ok) << "seed " << seed << "\n" << r.Summary();
    EXPECT_GT(r.tuples_injected, 0u) << "seed " << seed;
    EXPECT_GT(r.queries_submitted, 0u) << "seed " << seed;
    EXPECT_GT(r.results_expected, 0u) << "seed " << seed;
  }
}

TEST(DstShrinker, PreservesThePredicate) {
  DstScenario s = GenerateScenario(23);
  ASSERT_GT(s.events.size(), 4u);
  // Synthetic failure: "scenario still contains an inject event". The
  // shrinker must converge to exactly one event without ever returning a
  // scenario where the predicate fails.
  auto has_inject = [](const DstScenario& sc) {
    return std::any_of(sc.events.begin(), sc.events.end(),
                       [](const DstEvent& e) {
                         return e.type == DstEventType::kInjectTuple;
                       });
  };
  DstScenario minimized = ShrinkScenario(s, has_inject);
  EXPECT_TRUE(has_inject(minimized));
  EXPECT_EQ(minimized.events.size(), 1u);
  EXPECT_EQ(minimized.events[0].type, DstEventType::kInjectTuple);
  // Initial queries are not needed by the predicate, so they are dropped.
  EXPECT_TRUE(minimized.initial_queries.empty());
}

TEST(DstShrinker, RespectsBudget) {
  DstScenario s = GenerateScenario(29);
  size_t calls = 0;
  auto counting = [&calls](const DstScenario& sc) {
    ++calls;
    return !sc.events.empty();
  };
  (void)ShrinkScenario(s, counting, /*budget=*/10);
  EXPECT_LE(calls, 10u);
}

TEST(DstShrinker, KeepsFailingScenarioWhenNothingCanBeDropped) {
  DstScenario s = GenerateScenario(31);
  // Predicate pinned to the exact event count: any drop breaks it, so the
  // shrinker must return the original scenario unchanged.
  size_t original = s.events.size();
  auto exact = [original](const DstScenario& sc) {
    return sc.events.size() == original;
  };
  DstScenario minimized = ShrinkScenario(s, exact);
  EXPECT_EQ(minimized.events.size(), original);
}

TEST(DstOracle, SelectionFiltersAndRemoveFreezesResults) {
  Catalog catalog;
  auto schema = std::make_shared<Schema>(
      "w", std::vector<AttributeDef>{{"station_id", ValueType::kInt64},
                                     {"m0", ValueType::kDouble},
                                     {"timestamp", ValueType::kInt64}});
  ASSERT_TRUE(catalog.RegisterStream(schema, 0).ok());

  GroundTruthOracle oracle(&catalog);
  ASSERT_TRUE(oracle.Submit("q", "SELECT m0 FROM w [Range 1 Minute] "
                                 "WHERE m0 > 50").ok());
  auto inject = [&](int64_t ts, double m0) {
    oracle.Inject("w", Tuple(schema, {Value(int64_t{1}), Value(m0),
                                      Value(ts)},
                             static_cast<Timestamp>(ts)));
  };
  inject(1000, 60.0);
  inject(2000, 40.0);  // filtered out
  inject(3000, 70.0);
  ASSERT_EQ(oracle.ResultsFor("q").size(), 2u);

  ASSERT_TRUE(oracle.Remove("q").ok());
  inject(4000, 80.0);  // after removal: not accumulated
  EXPECT_EQ(oracle.ResultsFor("q").size(), 2u);
}

TEST(DstOracle, StaticEvaluateMatchesIncrementalInjection) {
  Catalog catalog;
  auto schema = std::make_shared<Schema>(
      "w", std::vector<AttributeDef>{{"station_id", ValueType::kInt64},
                                     {"m0", ValueType::kDouble},
                                     {"timestamp", ValueType::kInt64}});
  ASSERT_TRUE(catalog.RegisterStream(schema, 0).ok());

  GroundTruthOracle oracle(&catalog);
  ASSERT_TRUE(oracle.Submit("q", "SELECT m0 FROM w [Range 1 Minute] "
                                 "WHERE m0 >= 25").ok());
  std::vector<std::pair<std::string, Tuple>> log;
  for (int64_t i = 0; i < 20; ++i) {
    Tuple t(schema, {Value(i % 3), Value(static_cast<double>(i) * 5.0),
                     Value(i * 1000)},
            static_cast<Timestamp>(i) * 1000);
    log.emplace_back("w", t);
    oracle.Inject("w", t);
  }
  const AnalyzedQuery* q = oracle.Query("q");
  ASSERT_NE(q, nullptr);
  std::vector<Tuple> batch = GroundTruthOracle::Evaluate(*q, log);
  const std::vector<Tuple>& incremental = oracle.ResultsFor("q");
  ASSERT_EQ(batch.size(), incremental.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].ToString(), incremental[i].ToString()) << "row " << i;
  }
}

}  // namespace
}  // namespace cosmos
