#include "core/containment.h"

#include <gtest/gtest.h>

#include "stream/auction_dataset.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

class ContainmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AuctionDataset auctions;
    ASSERT_TRUE(auctions.RegisterAll(catalog_).ok());
    SensorDataset sensors;
    ASSERT_TRUE(sensors.RegisterAll(catalog_).ok());
  }

  AnalyzedQuery Q(const std::string& cql) {
    auto q = ParseAndAnalyze(cql, catalog_, "r");
    EXPECT_TRUE(q.ok()) << cql << ": " << q.status().ToString();
    return *q;
  }

  Catalog catalog_;
};

TEST_F(ContainmentTest, Table1Q3ContainsQ1AndQ2) {
  // The paper's running example.
  AnalyzedQuery q1 = Q(
      "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID");
  AnalyzedQuery q2 = Q(
      "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp "
      "FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID");
  AnalyzedQuery q3 = Q(
      "SELECT O.*, C.buyerID, C.timestamp "
      "FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID");
  EXPECT_TRUE(QueryContains(q3, q1));
  EXPECT_TRUE(QueryContains(q3, q2));
  EXPECT_FALSE(QueryContains(q1, q3));  // narrower window
  EXPECT_FALSE(QueryContains(q2, q3));  // missing projection columns
  EXPECT_FALSE(QueryContains(q1, q2));
  EXPECT_FALSE(QueryContains(q2, q1));
}

TEST_F(ContainmentTest, SelfContainment) {
  AnalyzedQuery q = Q("SELECT itemID FROM OpenAuction [Range 1 Hour] WHERE "
                      "start_price > 10");
  EXPECT_TRUE(QueryContains(q, q));
  EXPECT_TRUE(QueryEquivalent(q, q));
}

TEST_F(ContainmentTest, Theorem1WindowCondition) {
  AnalyzedQuery small = Q(
      "SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction "
      "[Now] C WHERE O.itemID = C.itemID");
  AnalyzedQuery big = Q(
      "SELECT O.itemID FROM OpenAuction [Range 2 Hour] O, ClosedAuction "
      "[Now] C WHERE O.itemID = C.itemID");
  EXPECT_TRUE(QueryContains(big, small));
  EXPECT_FALSE(QueryContains(small, big));
}

TEST_F(ContainmentTest, UnboundedWindowContainsAll) {
  AnalyzedQuery bounded = Q(
      "SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction "
      "[Now] C WHERE O.itemID = C.itemID");
  AnalyzedQuery unbounded = Q(
      "SELECT O.itemID FROM OpenAuction [Unbounded] O, ClosedAuction [Now] "
      "C WHERE O.itemID = C.itemID");
  EXPECT_TRUE(QueryContains(unbounded, bounded));
  EXPECT_FALSE(QueryContains(bounded, unbounded));
}

TEST_F(ContainmentTest, SelectionImplication) {
  AnalyzedQuery narrow = Q(
      "SELECT itemID FROM OpenAuction WHERE start_price >= 10 AND "
      "start_price <= 20");
  AnalyzedQuery wide = Q(
      "SELECT itemID FROM OpenAuction WHERE start_price >= 5 AND "
      "start_price <= 25");
  EXPECT_TRUE(QueryContains(wide, narrow));
  EXPECT_FALSE(QueryContains(narrow, wide));
}

TEST_F(ContainmentTest, ProjectionMustBeSuperset) {
  AnalyzedQuery one = Q("SELECT itemID FROM OpenAuction");
  AnalyzedQuery two = Q("SELECT itemID, start_price FROM OpenAuction");
  EXPECT_TRUE(QueryContains(two, one));
  EXPECT_FALSE(QueryContains(one, two));
}

TEST_F(ContainmentTest, DifferentStreamsNeverContain) {
  AnalyzedQuery a = Q("SELECT itemID FROM OpenAuction");
  AnalyzedQuery b = Q("SELECT itemID FROM ClosedAuction");
  EXPECT_FALSE(QueryContains(a, b));
  EXPECT_FALSE(QueryContains(b, a));
}

TEST_F(ContainmentTest, MissingJoinMakesContainerWider) {
  // Container without the join admits more rows: containment holds only in
  // that direction... but the output schemas differ in arity (cross
  // product), and joins are conditions: container's joins must be a subset
  // of containee's.
  AnalyzedQuery with_join = Q(
      "SELECT O.itemID FROM OpenAuction O, ClosedAuction C "
      "WHERE O.itemID = C.itemID");
  AnalyzedQuery without_join = Q(
      "SELECT O.itemID FROM OpenAuction O, ClosedAuction C "
      "WHERE O.sellerID > 0 AND O.itemID = C.itemID");
  EXPECT_TRUE(QueryContains(with_join, without_join));
  EXPECT_FALSE(QueryContains(without_join, with_join));
}

TEST_F(ContainmentTest, ExtraResidualNarrowsContainee) {
  AnalyzedQuery plain = Q(
      "SELECT O.itemID FROM OpenAuction O, ClosedAuction C "
      "WHERE O.itemID = C.itemID");
  AnalyzedQuery tighter = Q(
      "SELECT O.itemID FROM OpenAuction O, ClosedAuction C "
      "WHERE O.itemID = C.itemID AND O.timestamp - C.timestamp <= 0");
  EXPECT_TRUE(QueryContains(plain, tighter));
  EXPECT_FALSE(QueryContains(tighter, plain));
}

TEST_F(ContainmentTest, AliasNamesDoNotMatter) {
  AnalyzedQuery a = Q(
      "SELECT X.itemID FROM OpenAuction [Range 1 Hour] X, ClosedAuction "
      "[Now] Y WHERE X.itemID = Y.itemID");
  AnalyzedQuery b = Q(
      "SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction "
      "[Now] C WHERE O.itemID = C.itemID");
  EXPECT_TRUE(QueryEquivalent(a, b));
}

TEST_F(ContainmentTest, SourceOrderDoesNotMatter) {
  AnalyzedQuery a = Q(
      "SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction "
      "[Now] C WHERE O.itemID = C.itemID");
  AnalyzedQuery b = Q(
      "SELECT O.itemID FROM ClosedAuction [Now] C, OpenAuction [Range 1 "
      "Hour] O WHERE O.itemID = C.itemID");
  EXPECT_TRUE(QueryEquivalent(a, b));
}

TEST_F(ContainmentTest, AggregateTheorem2RequiresEqualWindows) {
  AnalyzedQuery h1 = Q(
      "SELECT station_id, AVG(ambient_temperature) FROM sensor_00 "
      "[Range 1 Hour] GROUP BY station_id");
  AnalyzedQuery h1_same = Q(
      "SELECT station_id, AVG(ambient_temperature) FROM sensor_00 "
      "[Range 1 Hour] GROUP BY station_id");
  AnalyzedQuery h2 = Q(
      "SELECT station_id, AVG(ambient_temperature) FROM sensor_00 "
      "[Range 2 Hour] GROUP BY station_id");
  EXPECT_TRUE(QueryContains(h1, h1_same));
  EXPECT_FALSE(QueryContains(h2, h1));  // different window
  EXPECT_FALSE(QueryContains(h1, h2));
}

TEST_F(ContainmentTest, AggregateSelectionsMustBeEquivalent) {
  AnalyzedQuery narrow = Q(
      "SELECT station_id, AVG(ambient_temperature) FROM sensor_00 "
      "[Range 1 Hour] WHERE ambient_temperature > 10 GROUP BY station_id");
  AnalyzedQuery wide = Q(
      "SELECT station_id, AVG(ambient_temperature) FROM sensor_00 "
      "[Range 1 Hour] GROUP BY station_id");
  // A wider aggregate does NOT contain a narrower one (values differ).
  EXPECT_FALSE(QueryContains(wide, narrow));
  EXPECT_FALSE(QueryContains(narrow, wide));
}

TEST_F(ContainmentTest, AggregateVsSpjNeverContain) {
  AnalyzedQuery agg = Q(
      "SELECT station_id, COUNT(*) FROM sensor_00 GROUP BY station_id");
  AnalyzedQuery spj = Q("SELECT station_id FROM sensor_00");
  EXPECT_FALSE(QueryContains(agg, spj));
  EXPECT_FALSE(QueryContains(spj, agg));
}

TEST_F(ContainmentTest, DifferentAggregateFunctions) {
  AnalyzedQuery avg = Q(
      "SELECT station_id, AVG(ambient_temperature) FROM sensor_00 "
      "[Range 1 Hour] GROUP BY station_id");
  AnalyzedQuery maxq = Q(
      "SELECT station_id, MAX(ambient_temperature) FROM sensor_00 "
      "[Range 1 Hour] GROUP BY station_id");
  EXPECT_FALSE(QueryContains(avg, maxq));
}

TEST_F(ContainmentTest, AlignSourcesRejectsSelfJoin) {
  AnalyzedQuery self = Q(
      "SELECT A.itemID FROM OpenAuction A, OpenAuction B WHERE A.itemID = "
      "B.itemID");
  EXPECT_FALSE(AlignSources(self, self).has_value());
}

TEST_F(ContainmentTest, AlignSourcesMapsByStream) {
  AnalyzedQuery a = Q(
      "SELECT O.itemID FROM OpenAuction O, ClosedAuction C WHERE O.itemID "
      "= C.itemID");
  AnalyzedQuery b = Q(
      "SELECT O.itemID FROM ClosedAuction C, OpenAuction O WHERE O.itemID "
      "= C.itemID");
  auto align = AlignSources(a, b);
  ASSERT_TRUE(align.has_value());
  EXPECT_EQ((*align)[0], 1u);  // a's OpenAuction is b's source 1
  EXPECT_EQ((*align)[1], 0u);
}

}  // namespace
}  // namespace cosmos
