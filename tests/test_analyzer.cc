#include "query/analyzer.h"

#include <gtest/gtest.h>

#include "stream/auction_dataset.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AuctionDataset auctions;
    ASSERT_TRUE(auctions.RegisterAll(catalog_).ok());
    SensorDataset sensors;
    ASSERT_TRUE(sensors.RegisterAll(catalog_).ok());
  }

  AnalyzedQuery MustAnalyze(const std::string& cql,
                            const std::string& name = "r") {
    auto q = ParseAndAnalyze(cql, catalog_, name);
    EXPECT_TRUE(q.ok()) << cql << " -> " << q.status().ToString();
    return *q;
  }

  Catalog catalog_;
};

TEST_F(AnalyzerTest, ResolvesSingleSource) {
  AnalyzedQuery q = MustAnalyze(
      "SELECT itemID, start_price FROM OpenAuction [Range 1 Hour]");
  ASSERT_EQ(q.sources().size(), 1u);
  EXPECT_EQ(q.sources()[0].from.stream, "OpenAuction");
  EXPECT_EQ(q.WindowSize(0), kHour);
  ASSERT_EQ(q.output_columns().size(), 2u);
  EXPECT_EQ(q.output_schema()->stream_name(), "r");
  EXPECT_TRUE(q.output_schema()->HasAttribute("itemID"));
}

TEST_F(AnalyzerTest, UnknownStreamFails) {
  auto q = ParseAndAnalyze("SELECT a FROM Nope", catalog_, "r");
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(AnalyzerTest, UnknownColumnFails) {
  auto q = ParseAndAnalyze("SELECT zzz FROM OpenAuction", catalog_, "r");
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(AnalyzerTest, UnknownAliasFails) {
  auto q = ParseAndAnalyze("SELECT X.itemID FROM OpenAuction O", catalog_,
                           "r");
  EXPECT_FALSE(q.ok());
}

TEST_F(AnalyzerTest, DuplicateAliasFails) {
  auto q = ParseAndAnalyze(
      "SELECT O.itemID FROM OpenAuction O, ClosedAuction O", catalog_, "r");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, AmbiguousColumnFails) {
  // itemID exists in both auction streams.
  auto q = ParseAndAnalyze(
      "SELECT itemID FROM OpenAuction O, ClosedAuction C", catalog_, "r");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, UnambiguousUnqualifiedColumnResolves) {
  AnalyzedQuery q = MustAnalyze(
      "SELECT start_price FROM OpenAuction O, ClosedAuction C "
      "WHERE O.itemID = C.itemID");
  EXPECT_EQ(q.output_columns()[0].source, 0u);
}

TEST_F(AnalyzerTest, LocalSelectionsSplitPerSource) {
  AnalyzedQuery q = MustAnalyze(
      "SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction "
      "[Now] C WHERE O.start_price > 10 AND C.buyerID = 7 AND O.itemID = "
      "C.itemID");
  EXPECT_FALSE(q.local_selection(0).IsTautology());
  EXPECT_FALSE(q.local_selection(1).IsTautology());
  EXPECT_EQ(q.local_selection(0).ConstraintFor("start_price").interval,
            Interval::AtLeast(10, /*open=*/true));
  EXPECT_TRUE(
      q.local_selection(1).ConstraintFor("buyerID").interval.IsPoint());
  ASSERT_EQ(q.equi_joins().size(), 1u);
}

TEST_F(AnalyzerTest, EquiJoinDetected) {
  AnalyzedQuery q = MustAnalyze(
      "SELECT O.itemID FROM OpenAuction O, ClosedAuction C "
      "WHERE O.itemID = C.itemID");
  ASSERT_EQ(q.equi_joins().size(), 1u);
  const EquiJoin& j = q.equi_joins()[0];
  EXPECT_EQ(q.sources()[j.left_source].from.stream, "OpenAuction");
  EXPECT_EQ(q.sources()[j.right_source].from.stream, "ClosedAuction");
  EXPECT_TRUE(q.cross_residual().empty());
}

TEST_F(AnalyzerTest, NonEquiCrossPredicateGoesResidual) {
  AnalyzedQuery q = MustAnalyze(
      "SELECT O.itemID FROM OpenAuction O, ClosedAuction C "
      "WHERE O.itemID = C.itemID AND O.timestamp - C.timestamp <= 0");
  EXPECT_EQ(q.equi_joins().size(), 1u);
  ASSERT_EQ(q.cross_residual().size(), 1u);
}

TEST_F(AnalyzerTest, SelectStarExpandsAllSources) {
  AnalyzedQuery q = MustAnalyze(
      "SELECT * FROM OpenAuction O, ClosedAuction C WHERE O.itemID = "
      "C.itemID");
  EXPECT_EQ(q.output_columns().size(), 4u + 3u);
  // Multi-source output names are qualified.
  EXPECT_TRUE(q.output_schema()->HasAttribute("O.itemID"));
  EXPECT_TRUE(q.output_schema()->HasAttribute("C.buyerID"));
}

TEST_F(AnalyzerTest, QualifiedStarExpandsOneSource) {
  AnalyzedQuery q = MustAnalyze(
      "SELECT O.* FROM OpenAuction O, ClosedAuction C WHERE O.itemID = "
      "C.itemID");
  EXPECT_EQ(q.output_columns().size(), 4u);
}

TEST_F(AnalyzerTest, SingleSourceOutputNamesAreBare) {
  AnalyzedQuery q = MustAnalyze("SELECT itemID FROM OpenAuction");
  EXPECT_TRUE(q.output_schema()->HasAttribute("itemID"));
}

TEST_F(AnalyzerTest, AggregateQueryShape) {
  AnalyzedQuery q = MustAnalyze(
      "SELECT station_id, AVG(ambient_temperature) FROM sensor_00 "
      "[Range 1 Hour] GROUP BY station_id");
  EXPECT_TRUE(q.is_aggregate());
  ASSERT_EQ(q.group_by().size(), 1u);
  ASSERT_EQ(q.aggregates().size(), 1u);
  EXPECT_EQ(q.aggregates()[0].func, AggFunc::kAvg);
  ASSERT_EQ(q.output_schema()->num_attributes(), 2u);
  EXPECT_EQ(q.output_schema()->attribute(1).type, ValueType::kDouble);
}

TEST_F(AnalyzerTest, CountStarOutputIsInt) {
  AnalyzedQuery q = MustAnalyze(
      "SELECT station_id, COUNT(*) FROM sensor_00 GROUP BY station_id");
  EXPECT_EQ(q.output_schema()->attribute(1).type, ValueType::kInt64);
}

TEST_F(AnalyzerTest, NonGroupedColumnWithAggregateFails) {
  auto q = ParseAndAnalyze(
      "SELECT ambient_temperature, COUNT(*) FROM sensor_00 GROUP BY "
      "station_id",
      catalog_, "r");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, GroupByWithoutAggregatesFails) {
  auto q = ParseAndAnalyze("SELECT station_id FROM sensor_00 GROUP BY "
                           "station_id",
                           catalog_, "r");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, SumOverStringFails) {
  auto q = ParseAndAnalyze("SELECT SUM(itemID) FROM OpenAuction", catalog_,
                           "r");
  EXPECT_TRUE(q.ok());  // itemID is numeric
  auto bad = ParseAndAnalyze("SELECT AVG(buyerID) FROM ClosedAuction",
                             catalog_, "r2");
  EXPECT_TRUE(bad.ok());  // also numeric; build a genuinely bad one:
  Catalog c2;
  (void)c2.RegisterStream(std::make_shared<Schema>(
      "T", std::vector<AttributeDef>{{"s", ValueType::kString}}));
  auto worse = ParseAndAnalyze("SELECT SUM(s) FROM T", c2, "r3");
  EXPECT_EQ(worse.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, CountStarOnlyForCount) {
  Catalog c2;
  (void)c2.RegisterStream(std::make_shared<Schema>(
      "T", std::vector<AttributeDef>{{"x", ValueType::kInt64}}));
  auto q = ParseAndAnalyze("SELECT SUM(*) FROM T", c2, "r");
  EXPECT_FALSE(q.ok());
}

TEST_F(AnalyzerTest, ReferencedAttributesCoverProjectionAndPredicates) {
  AnalyzedQuery q = MustAnalyze(
      "SELECT O.sellerID FROM OpenAuction [Range 1 Hour] O, ClosedAuction "
      "[Now] C WHERE O.itemID = C.itemID AND O.start_price > 10");
  auto open_refs = q.ReferencedAttributes(0);
  EXPECT_EQ(open_refs.size(), 3u);  // sellerID, itemID, start_price
  auto closed_refs = q.ReferencedAttributes(1);
  EXPECT_EQ(closed_refs.size(), 1u);  // itemID
}

TEST_F(AnalyzerTest, NormalizedWhereIsFullyQualified) {
  AnalyzedQuery q = MustAnalyze(
      "SELECT start_price FROM OpenAuction WHERE start_price > 10");
  ASSERT_NE(q.normalized_where(), nullptr);
  std::vector<const ColumnRefExpr*> cols;
  CollectColumns(q.normalized_where(), &cols);
  for (const auto* c : cols) {
    EXPECT_FALSE(c->qualifier().empty());
  }
}

TEST_F(AnalyzerTest, SourceIndexLookup) {
  AnalyzedQuery q = MustAnalyze(
      "SELECT O.itemID FROM OpenAuction O, ClosedAuction C WHERE O.itemID = "
      "C.itemID");
  EXPECT_EQ(q.SourceIndex("O"), 0);
  EXPECT_EQ(q.SourceIndex("C"), 1);
  EXPECT_EQ(q.SourceIndex("X"), -1);
}

TEST_F(AnalyzerTest, DuplicateOutputNameFails) {
  auto q = ParseAndAnalyze("SELECT itemID, itemID FROM OpenAuction",
                           catalog_, "r");
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, OutputSchemaPreservesRanges) {
  AnalyzedQuery q = MustAnalyze(
      "SELECT ambient_temperature FROM sensor_00 [Range 1 Hour]");
  auto def = q.output_schema()->FindAttribute("ambient_temperature");
  ASSERT_TRUE(def.ok());
  EXPECT_TRUE(def->has_range);
}

}  // namespace
}  // namespace cosmos
