#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace cosmos {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(99);
  const int kBuckets = 10;
  const int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NextIntDegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.NextInt(42, 42), 42);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble(-5.0, 5.0);
    EXPECT_GE(d, -5.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(Rng, NextBoolProbability) {
  Rng rng(17);
  int heads = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / static_cast<double>(kDraws), 0.3, 0.02);
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, GaussianMomentsAreStandard) {
  Rng rng(23);
  const int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, WeightedFollowsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  int counts[3] = {};
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextWeighted(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.6, 0.02);
}

TEST(Rng, ForkIsDecorrelatedFromParent) {
  Rng parent(77);
  Rng child = parent.Fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForksWithDifferentStreamsDiffer) {
  Rng parent(77);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(77);
  Rng p2(77);
  Rng a = p1.Fork(5);
  Rng b = p2.Fork(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(SplitMix, AdvancesState) {
  uint64_t s = 1;
  uint64_t v1 = SplitMix64(s);
  uint64_t v2 = SplitMix64(s);
  EXPECT_NE(v1, v2);
}

}  // namespace
}  // namespace cosmos
