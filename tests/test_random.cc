#include "common/random.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>

namespace cosmos {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(99);
  const int kBuckets = 10;
  const int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, NextIntDegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.NextInt(42, 42), 42);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble(-5.0, 5.0);
    EXPECT_GE(d, -5.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(Rng, NextBoolProbability) {
  Rng rng(17);
  int heads = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(heads / static_cast<double>(kDraws), 0.3, 0.02);
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, GaussianMomentsAreStandard) {
  Rng rng(23);
  const int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, WeightedFollowsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  int counts[3] = {};
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextWeighted(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.6, 0.02);
}

TEST(Rng, ForkIsDecorrelatedFromParent) {
  Rng parent(77);
  Rng child = parent.Fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForksWithDifferentStreamsDiffer) {
  Rng parent(77);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng p1(77);
  Rng p2(77);
  Rng a = p1.Fork(5);
  Rng b = p2.Fork(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(SplitMix, AdvancesState) {
  uint64_t s = 1;
  uint64_t v1 = SplitMix64(s);
  uint64_t v2 = SplitMix64(s);
  EXPECT_NE(v1, v2);
}

// ---- Derive: the DST harness depends on these properties ----

// Golden values pin the exact sequences across platforms and compilers:
// a DST seed must reproduce the identical scenario everywhere, or a CI
// failure's `--seed=N` repro would diverge locally.
TEST(Rng, GoldenSequences) {
  Rng r0(0);
  EXPECT_EQ(r0.NextUint64(), 11091344671253066420ull);
  EXPECT_EQ(r0.NextUint64(), 13793997310169335082ull);
  EXPECT_EQ(r0.NextUint64(), 1900383378846508768ull);
  EXPECT_EQ(r0.NextUint64(), 7684712102626143532ull);
  Rng r1(1);
  EXPECT_EQ(r1.NextUint64(), 12966619160104079557ull);
  EXPECT_EQ(r1.NextUint64(), 9600361134598540522ull);
}

TEST(Rng, DeriveGoldenValues) {
  Rng s(42);
  Rng d1 = s.Derive(1);
  EXPECT_EQ(d1.NextUint64(), 10918409916959707638ull);
  EXPECT_EQ(d1.NextUint64(), 10751976195851383956ull);
  Rng d2 = s.Derive(2);
  EXPECT_EQ(d2.NextUint64(), 5011351562892868128ull);
  EXPECT_EQ(d2.NextUint64(), 15426170904703254450ull);
  Rng d3 = s.Derive(3);
  EXPECT_EQ(d3.NextUint64(), 1521852891070688611ull);
  EXPECT_EQ(d3.NextUint64(), 7035243952445240909ull);
  Rng other = Rng(7).Derive(2);
  EXPECT_EQ(other.NextUint64(), 7372961589732782238ull);
  EXPECT_EQ(other.NextUint64(), 14387876585268191371ull);
}

// Derivation is a pure function of (seed, stream): consuming values from
// the parent must not change what a later Derive produces. The scenario
// generator relies on this to regenerate any single concern in isolation.
TEST(Rng, DeriveIsPositionIndependent) {
  Rng fresh(42);
  Rng advanced(42);
  (void)advanced.NextUint64();
  (void)advanced.NextDouble();
  (void)advanced.NextBounded(7);
  Rng a = fresh.Derive(2);
  Rng b = advanced.Derive(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(Rng, DeriveDoesNotAdvanceParent) {
  Rng with_derives(99);
  Rng plain(99);
  (void)with_derives.Derive(1);
  (void)with_derives.Derive(2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(with_derives.NextUint64(), plain.NextUint64());
  }
}

// Streams of one seed should look like independent generators: the
// average Hamming distance of paired 64-bit draws is ~32 bits for
// independent uniform values. A shared-state or offset-stream bug drives
// this toward 0.
TEST(Rng, DeriveStreamsAreBitwiseDecorrelated) {
  Rng parent(123);
  Rng a = parent.Derive(1);
  Rng b = parent.Derive(2);
  int64_t total_bits = 0;
  const int kDraws = 2000;
  for (int i = 0; i < kDraws; ++i) {
    total_bits += std::popcount(a.NextUint64() ^ b.NextUint64());
  }
  double mean = static_cast<double>(total_bits) / kDraws;
  EXPECT_GT(mean, 30.0);
  EXPECT_LT(mean, 34.0);
}

TEST(Rng, DeriveSameStreamOfDifferentSeedsDiffers) {
  Rng a = Rng(1).Derive(5);
  Rng b = Rng(2).Derive(5);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsAnAliasForDerive) {
  Rng parent(31);
  Rng f = parent.Fork(4);
  Rng d = parent.Derive(4);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(f.NextUint64(), d.NextUint64());
  }
}

}  // namespace
}  // namespace cosmos
