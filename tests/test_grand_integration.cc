// The everything test: a realistic deployment exercising merging,
// multi-processor distribution, rate calibration, self-tuning
// reorganization, a link failure with buffered recovery, and a processor
// failover — asserting user-visible correctness at every stage.

#include <gtest/gtest.h>

#include "core/cosmos.h"

namespace cosmos {
namespace {

TEST(GrandIntegration, FullLifecycle) {
  // Overlay + MST.
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 30;
  topo_opts.ba_edges_per_node = 3;
  topo_opts.seed = 12345;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto tree = DisseminationTree::FromEdges(
                  30, *MinimumSpanningTree(topo.graph))
                  .value();

  CosmosSystem system(std::move(tree));
  system.SetOverlay(topo.graph);

  // Sources.
  SensorDatasetOptions sopts;
  sopts.num_stations = 6;
  sopts.duration = 20 * kMinute;
  SensorDataset sensors(sopts);
  Rng rng(55);
  for (int k = 0; k < 6; ++k) {
    ASSERT_TRUE(system
                    .RegisterSource(sensors.SchemaOf(k),
                                    sensors.RatePerStation(),
                                    static_cast<NodeId>(rng.NextBounded(30)))
                    .ok());
  }
  ASSERT_TRUE(system.AddProcessor(5).ok());
  ASSERT_TRUE(system.AddProcessor(20).ok());

  // Queries: overlapping pairs that merge, plus an aggregate.
  std::map<std::string, int> hits;
  auto reset_hits = [&hits] {
    hits.clear();
    hits["narrow"] = hits["wide"] = hits["agg"] = 0;
  };
  reset_hits();
  auto submit = [&](const std::string& cql, NodeId user,
                    const std::string& tag) {
    auto id = system.SubmitQuery(cql, user,
                                 [&hits, tag](const std::string&,
                                              const Tuple&) { ++hits[tag]; });
    ASSERT_TRUE(id.ok()) << cql << ": " << id.status().ToString();
  };
  submit(
      "SELECT ambient_temperature, relative_humidity FROM sensor_02 WHERE "
      "relative_humidity BETWEEN 10 AND 70",
      7, "narrow");
  submit(
      "SELECT ambient_temperature, relative_humidity FROM sensor_02 WHERE "
      "relative_humidity BETWEEN 30 AND 90",
      11, "wide");
  submit(
      "SELECT station_id, COUNT(*) FROM sensor_03 [Range 5 Minute] GROUP "
      "BY station_id",
      29, "agg");

  // The two range queries merged into one group somewhere.
  EXPECT_EQ(system.TotalQueries(), 3u);
  EXPECT_LE(system.TotalGroups(), 3u);

  // Phase 1: plain replay.
  auto replay1 = sensors.MakeReplay();
  ASSERT_TRUE(system.Replay(*replay1).ok());
  std::map<std::string, int> phase1 = hits;
  EXPECT_GT(phase1["wide"], 0);
  EXPECT_GT(phase1["narrow"] + phase1["wide"], 0);
  EXPECT_EQ(phase1["agg"], 40);  // one row per arrival on sensor_03

  // Phase 2: calibrate + self-tune, then replay must deliver identically.
  EXPECT_GT(system.CalibrateRates(), 0u);
  auto tune = system.SelfTune();
  ASSERT_TRUE(tune.ok());
  reset_hits();
  auto replay2 = sensors.MakeReplay();
  ASSERT_TRUE(system.Replay(*replay2).ok());
  EXPECT_EQ(hits, phase1) << "self-tuning changed user-visible results";

  // Phase 3: fail a live tree link mid-replay, repair, verify totals.
  reset_hits();
  auto replay3 = sensors.MakeReplay();
  int streamed = 0;
  Edge victim = system.network().tree().edges()[3];
  while (auto t = replay3->Next()) {
    if (streamed == 60) {
      ASSERT_TRUE(system.FailLink(victim.u, victim.v).ok());
    }
    if (streamed == 180) {
      ASSERT_TRUE(system.RepairLinks().ok());
    }
    ASSERT_TRUE(
        system.PublishSourceTuple(t->schema()->stream_name(), *t).ok());
    ++streamed;
  }
  if (system.network().HasFailedLinks()) {
    ASSERT_TRUE(system.RepairLinks().ok());
  }
  EXPECT_EQ(hits, phase1) << "link failure + repair lost or duplicated "
                             "results";

  // Phase 4: fail whichever processor hosts the merged pair; replay again.
  NodeId victim_proc =
      system.processor(5)->num_queries() >= 2 ? 5 : 20;
  ASSERT_TRUE(system.FailProcessor(victim_proc).ok());
  reset_hits();
  auto replay4 = sensors.MakeReplay();
  ASSERT_TRUE(system.Replay(*replay4).ok());
  EXPECT_EQ(hits, phase1) << "processor failover changed results";
}

}  // namespace
}  // namespace cosmos
