#include <gtest/gtest.h>

#include <vector>

#include "cbn/network.h"
#include "sim/simulator.h"

namespace cosmos {
namespace {

// Regression tests for the order in which Network::FlushBuffered replays
// datagrams buffered during a link failure: subscribers must observe the
// publish order (FIFO), in both the synchronous network and under the
// discrete-event simulator. A reordering flush would break downstream SPE
// windows, which assume per-stream non-decreasing event time.

std::shared_ptr<const Schema> SeqSchema() {
  return std::make_shared<Schema>(
      "s", std::vector<AttributeDef>{{"seq", ValueType::kInt64},
                                     {"timestamp", ValueType::kInt64}});
}

Datagram SeqDatagram(int64_t seq, Timestamp ts) {
  return Datagram{
      "s", Tuple(SeqSchema(), {Value(seq), Value(static_cast<int64_t>(ts))},
                 ts)};
}

// Overlay square 0-1-2-3-0; tree is the chain 0-1-2-3.
Graph SquareOverlay() {
  Graph g(4);
  (void)g.AddEdge(0, 1, 1.0);
  (void)g.AddEdge(1, 2, 1.0);
  (void)g.AddEdge(2, 3, 1.0);
  (void)g.AddEdge(3, 0, 2.0);
  return g;
}

DisseminationTree ChainTree() {
  return DisseminationTree::FromEdges(
             4, {Edge{0, 1, 1.0}, Edge{1, 2, 1.0}, Edge{2, 3, 1.0}})
      .value();
}

TEST(FlushOrdering, RepairReplaysBufferedInPublishOrder) {
  ContentBasedNetwork net(ChainTree());
  std::vector<int64_t> seen;
  Profile p;
  p.AddStream("s");
  net.Subscribe(3, p, [&](const std::string&, const Tuple& t) {
    seen.push_back(t.value(0).AsInt64());
  });

  ASSERT_TRUE(net.FailLink(2, 3).ok());
  for (int64_t i = 0; i < 10; ++i) {
    net.Publish(0, SeqDatagram(i, static_cast<Timestamp>(i) * 1000));
  }
  EXPECT_TRUE(seen.empty());
  EXPECT_EQ(net.buffered_datagrams(), 10u);

  ASSERT_TRUE(net.Repair(SquareOverlay()).ok());
  ASSERT_EQ(seen.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], i) << "flush out of order";
  }
  EXPECT_EQ(net.buffered_datagrams(), 0u);
  EXPECT_EQ(net.recovered_datagrams(), 10u);
  EXPECT_EQ(net.lost_datagrams(), 0u);
}

TEST(FlushOrdering, RepairReplaysBufferedInPublishOrderUnderSimulator) {
  Simulator sim;
  ContentBasedNetwork net(ChainTree(), NetworkOptions{}, &sim);
  std::vector<int64_t> seen;
  Profile p;
  p.AddStream("s");
  net.Subscribe(3, p, [&](const std::string&, const Tuple& t) {
    seen.push_back(t.value(0).AsInt64());
  });

  ASSERT_TRUE(net.FailLink(2, 3).ok());
  for (int64_t i = 0; i < 10; ++i) {
    net.Publish(0, SeqDatagram(i, static_cast<Timestamp>(i) * 1000));
  }
  sim.Run();  // everything up to the cut is delivered/buffered
  EXPECT_TRUE(seen.empty());
  EXPECT_EQ(net.buffered_datagrams(), 10u);

  ASSERT_TRUE(net.Repair(SquareOverlay()).ok());
  sim.Run();
  ASSERT_EQ(seen.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], i) << "flush out of order";
  }
  EXPECT_EQ(net.buffered_datagrams(), 0u);
}

TEST(FlushOrdering, PostRepairTrafficFollowsFlushedTraffic) {
  // Tuples published after the repair must not overtake the flushed
  // backlog at the subscriber.
  ContentBasedNetwork net(ChainTree());
  std::vector<int64_t> seen;
  Profile p;
  p.AddStream("s");
  net.Subscribe(3, p, [&](const std::string&, const Tuple& t) {
    seen.push_back(t.value(0).AsInt64());
  });

  net.Publish(0, SeqDatagram(0, 0));
  ASSERT_TRUE(net.FailLink(2, 3).ok());
  net.Publish(0, SeqDatagram(1, 1000));
  net.Publish(0, SeqDatagram(2, 2000));
  ASSERT_TRUE(net.Repair(SquareOverlay()).ok());
  net.Publish(0, SeqDatagram(3, 3000));

  ASSERT_EQ(seen.size(), 4u);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(seen[static_cast<size_t>(i)], i);
  }
}

TEST(FlushOrdering, FlushOnlyReachesTheCutOffSide) {
  // Two subscribers, one on each side of the failed link. The near-side
  // subscriber was served at publish time; the flush must deliver only to
  // the far side, or the near side would see duplicates.
  ContentBasedNetwork net(ChainTree());
  std::vector<int64_t> near_seen;
  std::vector<int64_t> far_seen;
  Profile p;
  p.AddStream("s");
  net.Subscribe(1, p, [&](const std::string&, const Tuple& t) {
    near_seen.push_back(t.value(0).AsInt64());
  });
  net.Subscribe(3, p, [&](const std::string&, const Tuple& t) {
    far_seen.push_back(t.value(0).AsInt64());
  });

  ASSERT_TRUE(net.FailLink(2, 3).ok());
  for (int64_t i = 0; i < 5; ++i) {
    net.Publish(0, SeqDatagram(i, static_cast<Timestamp>(i) * 1000));
  }
  EXPECT_EQ(near_seen.size(), 5u);  // near side unaffected by the cut
  EXPECT_TRUE(far_seen.empty());

  ASSERT_TRUE(net.Repair(SquareOverlay()).ok());
  EXPECT_EQ(near_seen.size(), 5u) << "near side saw duplicates after flush";
  ASSERT_EQ(far_seen.size(), 5u);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(far_seen[static_cast<size_t>(i)], i);
  }
}

}  // namespace
}  // namespace cosmos
