#include "query/parser.h"

#include <gtest/gtest.h>

namespace cosmos {
namespace {

ParsedQuery MustParse(const std::string& cql) {
  auto r = ParseQuery(cql);
  EXPECT_TRUE(r.ok()) << cql << " -> " << r.status().ToString();
  return r.ok() ? *r : ParsedQuery{};
}

TEST(Parser, MinimalQuery) {
  ParsedQuery q = MustParse("SELECT a FROM S");
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].kind, SelectItem::Kind::kColumn);
  EXPECT_EQ(q.select[0].name, "a");
  ASSERT_EQ(q.from.size(), 1u);
  EXPECT_EQ(q.from[0].stream, "S");
  EXPECT_TRUE(q.from[0].window.is_unbounded());  // default window
  EXPECT_EQ(q.where, nullptr);
}

TEST(Parser, SelectStarAndQualifiedStar) {
  ParsedQuery q = MustParse("SELECT *, O.* FROM S [Now] O");
  ASSERT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.select[0].kind, SelectItem::Kind::kStar);
  EXPECT_EQ(q.select[1].kind, SelectItem::Kind::kQualifiedStar);
  EXPECT_EQ(q.select[1].qualifier, "O");
}

TEST(Parser, QualifiedColumnsAndAliases) {
  ParsedQuery q =
      MustParse("SELECT O.itemID, price AS p FROM OpenAuction [Now] O");
  EXPECT_EQ(q.select[0].qualifier, "O");
  EXPECT_EQ(q.select[0].name, "itemID");
  EXPECT_EQ(q.select[1].name, "price");
  EXPECT_EQ(q.select[1].alias, "p");
}

TEST(Parser, WindowForms) {
  EXPECT_TRUE(MustParse("SELECT a FROM S [Now]").from[0].window.is_now());
  EXPECT_TRUE(
      MustParse("SELECT a FROM S [Unbounded]").from[0].window.is_unbounded());
  EXPECT_TRUE(MustParse("SELECT a FROM S [Range Unbounded]")
                  .from[0]
                  .window.is_unbounded());
  EXPECT_EQ(MustParse("SELECT a FROM S [Range 3 Hour]").from[0].window.size,
            3 * kHour);
  EXPECT_EQ(
      MustParse("SELECT a FROM S [Range 90 Seconds]").from[0].window.size,
      90 * kSecond);
  EXPECT_EQ(
      MustParse("SELECT a FROM S [Range 2 Minutes]").from[0].window.size,
      2 * kMinute);
  EXPECT_EQ(MustParse("SELECT a FROM S [Range 1 Day]").from[0].window.size,
            kDay);
}

TEST(Parser, WindowErrors) {
  EXPECT_FALSE(ParseQuery("SELECT a FROM S [Range]").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM S [Range 3]").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM S [Range 3 Parsecs]").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM S [Soon]").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM S [Now").ok());
}

TEST(Parser, MultipleFromWithAliases) {
  ParsedQuery q = MustParse(
      "SELECT O.a FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C");
  ASSERT_EQ(q.from.size(), 2u);
  EXPECT_EQ(q.from[0].alias, "O");
  EXPECT_EQ(q.from[1].alias, "C");
  EXPECT_EQ(q.from[0].window.size, 3 * kHour);
  EXPECT_TRUE(q.from[1].window.is_now());
}

TEST(Parser, AliasDefaultsToStream) {
  ParsedQuery q = MustParse("SELECT a FROM S");
  EXPECT_EQ(q.from[0].EffectiveAlias(), "S");
}

TEST(Parser, WhereComparisons) {
  ParsedQuery q = MustParse("SELECT a FROM S WHERE a > 10 AND b <= 2.5");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind(), ExprKind::kLogical);
}

TEST(Parser, WherePrecedenceOrBelowAnd) {
  ParsedQuery q = MustParse("SELECT a FROM S WHERE a > 1 OR b > 2 AND c > 3");
  // Expect OR at the top.
  ASSERT_EQ(q.where->kind(), ExprKind::kLogical);
  EXPECT_EQ(static_cast<const LogicalExpr&>(*q.where).op(), LogicalOp::kOr);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  ParsedQuery q =
      MustParse("SELECT a FROM S WHERE (a > 1 OR b > 2) AND c > 3");
  ASSERT_EQ(q.where->kind(), ExprKind::kLogical);
  EXPECT_EQ(static_cast<const LogicalExpr&>(*q.where).op(), LogicalOp::kAnd);
}

TEST(Parser, NotParses) {
  ParsedQuery q = MustParse("SELECT a FROM S WHERE NOT a > 1");
  ASSERT_EQ(q.where->kind(), ExprKind::kLogical);
  EXPECT_EQ(static_cast<const LogicalExpr&>(*q.where).op(), LogicalOp::kNot);
}

TEST(Parser, ArithmeticInWhere) {
  ParsedQuery q = MustParse(
      "SELECT a FROM S, T WHERE S.ts - T.ts <= 5 AND S.x * 2 > T.y / 3");
  ASSERT_NE(q.where, nullptr);
}

TEST(Parser, ChainedComparisonDesugarsToAnd) {
  ParsedQuery q = MustParse("SELECT a FROM S WHERE -3 <= a - b <= 0");
  ASSERT_EQ(q.where->kind(), ExprKind::kLogical);
  const auto& l = static_cast<const LogicalExpr&>(*q.where);
  EXPECT_EQ(l.op(), LogicalOp::kAnd);
  EXPECT_EQ(l.children().size(), 2u);
}

TEST(Parser, NegativeNumbersFoldIntoLiterals) {
  ParsedQuery q = MustParse("SELECT a FROM S WHERE a > -5 AND b < -2.5");
  EXPECT_NE(q.where, nullptr);
}

TEST(Parser, UnaryMinusOnColumn) {
  ParsedQuery q = MustParse("SELECT a FROM S WHERE -a < 5");
  EXPECT_NE(q.where, nullptr);
}

TEST(Parser, StringAndBoolLiterals) {
  ParsedQuery q =
      MustParse("SELECT a FROM S WHERE tag = 'x' AND flag = TRUE");
  EXPECT_NE(q.where, nullptr);
}

TEST(Parser, Aggregates) {
  ParsedQuery q = MustParse(
      "SELECT station, COUNT(*), AVG(temp) AS mean_temp FROM S [Range 1 "
      "Hour] GROUP BY station");
  ASSERT_EQ(q.select.size(), 3u);
  EXPECT_EQ(q.select[1].kind, SelectItem::Kind::kAggregate);
  EXPECT_TRUE(q.select[1].agg_star);
  EXPECT_EQ(q.select[1].func, AggFunc::kCount);
  EXPECT_EQ(q.select[2].func, AggFunc::kAvg);
  EXPECT_EQ(q.select[2].name, "temp");
  EXPECT_EQ(q.select[2].alias, "mean_temp");
  ASSERT_EQ(q.group_by.size(), 1u);
}

TEST(Parser, AllAggregateFunctions) {
  ParsedQuery q = MustParse(
      "SELECT SUM(a), MIN(a), MAX(a), COUNT(a), AVG(a) FROM S GROUP BY b");
  EXPECT_EQ(q.select[0].func, AggFunc::kSum);
  EXPECT_EQ(q.select[1].func, AggFunc::kMin);
  EXPECT_EQ(q.select[2].func, AggFunc::kMax);
  EXPECT_EQ(q.select[3].func, AggFunc::kCount);
  EXPECT_EQ(q.select[4].func, AggFunc::kAvg);
}

TEST(Parser, SyntaxErrors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT").ok());
  EXPECT_FALSE(ParseQuery("SELECT a").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM S WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT FROM S").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM S GROUP").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM S trailing garbage !").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM S WHERE a >").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM S WHERE (a > 1").ok());
}

TEST(Parser, KeywordsAreCaseInsensitive) {
  ParsedQuery q =
      MustParse("select a from S [range 1 hour] where a > 1 group by a");
  EXPECT_EQ(q.from[0].window.size, kHour);
  EXPECT_NE(q.where, nullptr);
  EXPECT_EQ(q.group_by.size(), 1u);
}

TEST(Parser, AstToStringRoundTrips) {
  const char* queries[] = {
      "SELECT a FROM S [Range 3 Hour]",
      "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID",
      "SELECT a, COUNT(*) FROM S [Range 1 Minute] GROUP BY a",
  };
  for (const char* cql : queries) {
    ParsedQuery q1 = MustParse(cql);
    ParsedQuery q2 = MustParse(q1.ToString());
    EXPECT_EQ(q1.ToString(), q2.ToString()) << cql;
  }
}

TEST(Parser, BetweenDesugarsToRange) {
  ParsedQuery q = MustParse("SELECT a FROM S WHERE a BETWEEN 5 AND 10");
  ASSERT_EQ(q.where->kind(), ExprKind::kLogical);
  const auto& l = static_cast<const LogicalExpr&>(*q.where);
  EXPECT_EQ(l.op(), LogicalOp::kAnd);
  ASSERT_EQ(l.children().size(), 2u);
  EXPECT_EQ(l.children()[0]->ToString(), "a >= 5");
  EXPECT_EQ(l.children()[1]->ToString(), "a <= 10");
}

TEST(Parser, BetweenComposesWithOtherPredicates) {
  ParsedQuery q = MustParse(
      "SELECT a FROM S WHERE a BETWEEN 5 AND 10 AND b > 2");
  const auto& l = static_cast<const LogicalExpr&>(*q.where);
  EXPECT_EQ(l.children().size(), 3u);  // flattened AND
}

TEST(Parser, BetweenRequiresAnd) {
  EXPECT_FALSE(ParseQuery("SELECT a FROM S WHERE a BETWEEN 5 10").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM S WHERE a BETWEEN 5 OR 10").ok());
}

TEST(Parser, StandaloneExpression) {
  auto e = ParseExpression("a >= 1 AND a <= 2");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind(), ExprKind::kLogical);
  EXPECT_FALSE(ParseExpression("a >= AND").ok());
  EXPECT_FALSE(ParseExpression("a >= 1 extra").ok());
}

TEST(Parser, Table1QueriesParse) {
  // The three queries of the paper's Table 1.
  MustParse(
      "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID");
  MustParse(
      "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp "
      "FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID");
  MustParse(
      "SELECT O.*, C.buyerID, C.timestamp "
      "FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID");
}

}  // namespace
}  // namespace cosmos
