// Boundary-case coverage for expr/interval and expr/implication: empty
// intervals in every algebraic position, INT64 min/max endpoints (the values
// UBSan flags first when double<->int conversions go wrong), and all
// open/closed combinations at shared endpoints.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "expr/implication.h"
#include "expr/interval.h"

namespace cosmos {
namespace {

constexpr double kInt64Min =
    static_cast<double>(std::numeric_limits<int64_t>::min());
constexpr double kInt64Max =
    static_cast<double>(std::numeric_limits<int64_t>::max());

// ---------------------------------------------------------------- interval

TEST(IntervalBoundary, EmptyIsAbsorbingForIntersect) {
  Interval e = Interval::Empty();
  Interval i(1.0, false, 5.0, false);
  EXPECT_TRUE(e.Intersect(i).IsEmpty());
  EXPECT_TRUE(i.Intersect(e).IsEmpty());
  EXPECT_TRUE(e.Intersect(e).IsEmpty());
  EXPECT_TRUE(e.Intersect(Interval::All()).IsEmpty());
}

TEST(IntervalBoundary, EmptyIsIdentityForHull) {
  Interval e = Interval::Empty();
  Interval i(1.0, true, 5.0, false);
  EXPECT_EQ(e.Hull(i), i);
  EXPECT_EQ(i.Hull(e), i);
  EXPECT_TRUE(e.Hull(e).IsEmpty());
}

TEST(IntervalBoundary, EmptyCoveringRules) {
  Interval e = Interval::Empty();
  Interval i(1.0, false, 5.0, false);
  EXPECT_TRUE(i.Covers(e));   // everything covers the empty set
  EXPECT_FALSE(e.Covers(i));  // the empty set covers nothing non-empty
  EXPECT_TRUE(e.Covers(e));
  EXPECT_TRUE(e.UnionIsExact(i));  // union with empty adds no points
}

TEST(IntervalBoundary, EmptyConstructionsAreCanonicallyEqual) {
  // Every way of producing emptiness compares equal to canonical Empty().
  EXPECT_EQ(Interval(2.0, false, 1.0, false), Interval::Empty());
  EXPECT_EQ(Interval(3.0, true, 3.0, false), Interval::Empty());
  EXPECT_EQ(Interval(3.0, false, 3.0, true), Interval::Empty());
  EXPECT_EQ(Interval(1.0, false, 5.0, false).Intersect(
                Interval(6.0, false, 9.0, false)),
            Interval::Empty());
}

TEST(IntervalBoundary, Int64ExtremesAsEndpoints) {
  Interval full(kInt64Min, false, kInt64Max, false);
  EXPECT_FALSE(full.IsEmpty());
  EXPECT_TRUE(full.Contains(0.0));
  EXPECT_TRUE(full.Contains(kInt64Min));
  EXPECT_TRUE(full.Contains(kInt64Max));
  EXPECT_FALSE(full.IsAll());  // finite endpoints are not (-inf, +inf)

  Interval min_point = Interval::Point(kInt64Min);
  EXPECT_TRUE(min_point.IsPoint());
  EXPECT_TRUE(full.Covers(min_point));
  EXPECT_TRUE(Interval::All().Covers(full));

  // Intersecting the extremes with a narrower window keeps the window.
  Interval window(-10.0, false, 10.0, false);
  EXPECT_EQ(full.Intersect(window), window);
  EXPECT_EQ(full.Hull(window), full);
}

TEST(IntervalBoundary, Int64ExtremePointsDisjoint) {
  Interval lo_point = Interval::Point(kInt64Min);
  Interval hi_point = Interval::Point(kInt64Max);
  EXPECT_TRUE(lo_point.Intersect(hi_point).IsEmpty());
  Interval hull = lo_point.Hull(hi_point);
  EXPECT_EQ(hull, Interval(kInt64Min, false, kInt64Max, false));
  EXPECT_FALSE(lo_point.UnionIsExact(hi_point));
}

TEST(IntervalBoundary, TouchingEndpointsOpenClosedMatrix) {
  // All four open/closed combinations of two intervals sharing endpoint 5.
  struct Case {
    bool left_hi_open;
    bool right_lo_open;
    bool union_exact;       // hull introduces no spurious points
    bool intersect_nonempty;  // they share the touch point
  };
  const Case cases[] = {
      {false, false, true, true},   // [..5] [5..]: share 5
      {false, true, true, false},   // [..5] (5..]: exact, 5 on left only
      {true, false, true, false},   // [..5) [5..]: exact, 5 on right only
      {true, true, false, false},   // [..5) (5..]: hole at 5
  };
  for (const auto& c : cases) {
    Interval left(0.0, false, 5.0, c.left_hi_open);
    Interval right(5.0, c.right_lo_open, 10.0, false);
    EXPECT_EQ(left.UnionIsExact(right), c.union_exact)
        << left.ToString() << " vs " << right.ToString();
    EXPECT_EQ(right.UnionIsExact(left), c.union_exact)
        << right.ToString() << " vs " << left.ToString();
    EXPECT_EQ(!left.Intersect(right).IsEmpty(), c.intersect_nonempty)
        << left.ToString() << " vs " << right.ToString();
    // The hull never depends on openness at the interior touch point.
    EXPECT_EQ(left.Hull(right), Interval(0.0, false, 10.0, false));
  }
}

TEST(IntervalBoundary, SharedEndpointCoverRequiresClosedness) {
  Interval closed(0.0, false, 5.0, false);
  Interval half(0.0, false, 5.0, true);
  EXPECT_TRUE(closed.Covers(half));
  EXPECT_FALSE(half.Covers(closed));  // missing the point 5
  EXPECT_TRUE(closed.Covers(closed));
  EXPECT_TRUE(half.Covers(half));
}

TEST(IntervalBoundary, SelectivityDegenerateRanges) {
  Interval i(1.0, false, 5.0, false);
  // Degenerate declared range collapses to point-membership.
  EXPECT_EQ(i.SelectivityWithin(3.0, 3.0), 1.0);
  EXPECT_EQ(i.SelectivityWithin(9.0, 9.0), 0.0);
  EXPECT_EQ(Interval::Empty().SelectivityWithin(0.0, 1.0), 0.0);
  // Point interval inside the range selects the equality sliver.
  EXPECT_GT(Interval::Point(2.0).SelectivityWithin(0.0, 10.0), 0.0);
  // Intervals entirely outside the range select nothing.
  EXPECT_EQ(i.SelectivityWithin(100.0, 200.0), 0.0);
}

TEST(IntervalBoundary, UnboundedEndpointsNormalizeToOpen) {
  // A "closed" infinite endpoint is meaningless; construction normalizes.
  Interval i(-Interval::kInf, false, 3.0, false);
  EXPECT_TRUE(i.lo_open());
  EXPECT_TRUE(i.lo_unbounded());
  Interval j(3.0, false, Interval::kInf, false);
  EXPECT_TRUE(j.hi_open());
  EXPECT_TRUE(j.hi_unbounded());
  EXPECT_TRUE(Interval::All().Covers(i));
  EXPECT_TRUE(i.Hull(j).IsAll());
}

// ------------------------------------------------------------- implication

ConjunctiveClause RangeClause(const std::string& attr, const Interval& i) {
  ConjunctiveClause c;
  c.ConstrainInterval(attr, i);
  return c;
}

TEST(ImplicationBoundary, EmptyIntervalClauseImpliesEverything) {
  ConjunctiveClause unsat = RangeClause("a", Interval::Empty());
  ASSERT_TRUE(unsat.IsUnsatisfiable());
  EXPECT_TRUE(ClauseImplies(unsat, RangeClause("b", Interval::Point(3.0))));
  EXPECT_TRUE(ClauseImplies(unsat, ConjunctiveClause{}));
  // Nothing non-trivial implies the unsatisfiable clause.
  EXPECT_FALSE(
      ClauseImplies(RangeClause("a", Interval::Point(1.0)), unsat));
}

TEST(ImplicationBoundary, Int64ExtremeRanges) {
  ConjunctiveClause full =
      RangeClause("a", Interval(kInt64Min, false, kInt64Max, false));
  ConjunctiveClause narrow =
      RangeClause("a", Interval(-100.0, false, 100.0, false));
  EXPECT_TRUE(ClauseImplies(narrow, full));
  EXPECT_FALSE(ClauseImplies(full, narrow));

  // Point constraints at the extremes imply the containing range and stay
  // disjoint from each other.
  ConjunctiveClause at_min = RangeClause("a", Interval::Point(kInt64Min));
  ConjunctiveClause at_max = RangeClause("a", Interval::Point(kInt64Max));
  EXPECT_TRUE(ClauseImplies(at_min, full));
  EXPECT_TRUE(ClauseImplies(at_max, full));
  EXPECT_TRUE(ClauseDisjoint(at_min, at_max));
  EXPECT_FALSE(ClauseDisjoint(at_min, full));
}

TEST(ImplicationBoundary, OpenClosedEdgeImplication) {
  // (0, 5) implies [0, 5]; the converse fails at both edges.
  ConjunctiveClause open_c = RangeClause("a", Interval(0.0, true, 5.0, true));
  ConjunctiveClause closed_c =
      RangeClause("a", Interval(0.0, false, 5.0, false));
  EXPECT_TRUE(ClauseImplies(open_c, closed_c));
  EXPECT_FALSE(ClauseImplies(closed_c, open_c));

  // Same bounds, same openness: mutual implication (equivalence).
  EXPECT_TRUE(ClauseEquivalent(open_c, open_c));
  EXPECT_TRUE(ClauseEquivalent(closed_c, closed_c));
  EXPECT_FALSE(ClauseEquivalent(open_c, closed_c));
}

TEST(ImplicationBoundary, TouchingOpenIntervalsAreDisjoint) {
  // a < 5 and a > 5 never both hold; a <= 5 and a >= 5 share the point.
  ConjunctiveClause below = RangeClause("a", Interval::AtMost(5.0, true));
  ConjunctiveClause above = RangeClause("a", Interval::AtLeast(5.0, true));
  EXPECT_TRUE(ClauseDisjoint(below, above));
  ConjunctiveClause below_eq = RangeClause("a", Interval::AtMost(5.0));
  ConjunctiveClause above_eq = RangeClause("a", Interval::AtLeast(5.0));
  EXPECT_FALSE(ClauseDisjoint(below_eq, above_eq));
}

TEST(ImplicationBoundary, DnfWithEmptyAndExtremeClauses) {
  std::vector<ConjunctiveClause> narrow = {
      RangeClause("a", Interval::Point(kInt64Min)),
      RangeClause("a", Interval::Point(kInt64Max)),
  };
  std::vector<ConjunctiveClause> wide = {
      RangeClause("a", Interval(kInt64Min, false, kInt64Max, false)),
  };
  EXPECT_TRUE(DnfImplies(narrow, wide));
  EXPECT_FALSE(DnfImplies(wide, narrow));

  // An unsatisfiable disjunct is absorbed on the left.
  narrow.push_back(RangeClause("a", Interval::Empty()));
  EXPECT_TRUE(DnfImplies(narrow, wide));
}

}  // namespace
}  // namespace cosmos
