#include <gtest/gtest.h>

#include "overlay/dissemination_tree.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"

namespace cosmos {
namespace {

TEST(Graph, AddEdgeValidations) {
  Graph g(3);
  EXPECT_TRUE(g.AddEdge(0, 1, 2.0).ok());
  EXPECT_EQ(g.AddEdge(0, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddEdge(1, 0).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddEdge(0, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(0, 9).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(0, 2, -1.0).code(), StatusCode::kInvalidArgument);
}

TEST(Graph, NeighborsAndWeights) {
  Graph g(3);
  (void)g.AddEdge(0, 1, 2.5);
  (void)g.AddEdge(1, 2, 1.5);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_TRUE(g.HasEdge(1, 0));
  auto w = g.EdgeWeight(1, 2);
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(*w, 1.5);
  EXPECT_FALSE(g.EdgeWeight(0, 2).ok());
}

TEST(Graph, Connectivity) {
  Graph g(4);
  (void)g.AddEdge(0, 1);
  (void)g.AddEdge(2, 3);
  EXPECT_FALSE(g.IsConnected());
  (void)g.AddEdge(1, 2);
  EXPECT_TRUE(g.IsConnected());
}

TEST(Graph, ShortestDistances) {
  Graph g(4);
  (void)g.AddEdge(0, 1, 1.0);
  (void)g.AddEdge(1, 2, 1.0);
  (void)g.AddEdge(0, 2, 5.0);
  (void)g.AddEdge(2, 3, 1.0);
  auto dist = g.ShortestDistances(0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 2.0);  // via 1, not the direct 5.0 edge
  EXPECT_DOUBLE_EQ(dist[3], 3.0);
}

TEST(Topology, BarabasiAlbertIsConnectedAndSized) {
  TopologyOptions opts;
  opts.num_nodes = 200;
  opts.ba_edges_per_node = 2;
  Topology topo = GenerateBarabasiAlbert(opts);
  EXPECT_EQ(topo.graph.num_nodes(), 200);
  EXPECT_TRUE(topo.graph.IsConnected());
  EXPECT_EQ(topo.coordinates.size(), 200u);
  // Roughly m edges per node beyond the seed.
  EXPECT_GE(topo.graph.num_edges(), 200u);
}

TEST(Topology, BarabasiAlbertHasHubs) {
  TopologyOptions opts;
  opts.num_nodes = 500;
  opts.ba_edges_per_node = 2;
  Topology topo = GenerateBarabasiAlbert(opts);
  auto hist = DegreeHistogram(topo.graph);
  int max_degree = static_cast<int>(hist.size()) - 1;
  // Preferential attachment grows hubs far above the mean degree (~4).
  EXPECT_GT(max_degree, 15);
  // And most nodes stay at the minimum degree.
  int low_degree = 0;
  for (int d = 0; d <= 4 && d < static_cast<int>(hist.size()); ++d) {
    low_degree += hist[d];
  }
  EXPECT_GT(low_degree, 250);
}

TEST(Topology, DeterministicPerSeed) {
  TopologyOptions opts;
  opts.num_nodes = 50;
  Topology a = GenerateBarabasiAlbert(opts);
  Topology b = GenerateBarabasiAlbert(opts);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (size_t i = 0; i < a.graph.edges().size(); ++i) {
    EXPECT_EQ(a.graph.edges()[i].u, b.graph.edges()[i].u);
    EXPECT_EQ(a.graph.edges()[i].v, b.graph.edges()[i].v);
  }
}

TEST(Topology, WaxmanIsConnected) {
  TopologyOptions opts;
  opts.num_nodes = 100;
  opts.seed = 5;
  Topology topo = GenerateWaxman(opts);
  EXPECT_TRUE(topo.graph.IsConnected());
}

TEST(SpanningTree, MstHasMinimalWeight) {
  // Known graph: MST weight is 1+2+3 = 6 (skip the 10 edge).
  Graph g(4);
  (void)g.AddEdge(0, 1, 1.0);
  (void)g.AddEdge(1, 2, 2.0);
  (void)g.AddEdge(2, 3, 3.0);
  (void)g.AddEdge(0, 3, 10.0);
  auto mst = MinimumSpanningTree(g);
  ASSERT_TRUE(mst.ok());
  ASSERT_EQ(mst->size(), 3u);
  double total = 0;
  for (const auto& e : *mst) total += e.weight;
  EXPECT_DOUBLE_EQ(total, 6.0);
}

TEST(SpanningTree, MstOfDisconnectedGraphFails) {
  Graph g(3);
  (void)g.AddEdge(0, 1);
  EXPECT_FALSE(MinimumSpanningTree(g).ok());
}

TEST(SpanningTree, MstWeightNoGreaterThanRandomTree) {
  TopologyOptions opts;
  opts.num_nodes = 120;
  Topology topo = GenerateBarabasiAlbert(opts);
  auto mst = MinimumSpanningTree(topo.graph);
  ASSERT_TRUE(mst.ok());
  Rng rng(4);
  auto rnd = RandomSpanningTree(topo.graph, rng);
  ASSERT_TRUE(rnd.ok());
  double mst_w = 0, rnd_w = 0;
  for (const auto& e : *mst) mst_w += e.weight;
  for (const auto& e : *rnd) rnd_w += e.weight;
  EXPECT_LE(mst_w, rnd_w + 1e-9);
}

TEST(SpanningTree, ShortestPathTreePreservesDistances) {
  TopologyOptions opts;
  opts.num_nodes = 60;
  Topology topo = GenerateBarabasiAlbert(opts);
  auto spt_edges = ShortestPathTree(topo.graph, 0);
  ASSERT_TRUE(spt_edges.ok());
  auto tree = DisseminationTree::FromEdges(60, *spt_edges);
  ASSERT_TRUE(tree.ok());
  auto dist = topo.graph.ShortestDistances(0);
  for (NodeId v = 0; v < 60; ++v) {
    EXPECT_NEAR(tree->WeightedDistance(0, v), dist[v], 1e-9) << v;
  }
}

TEST(DisseminationTree, RejectsNonTrees) {
  // Wrong edge count.
  EXPECT_FALSE(
      DisseminationTree::FromEdges(3, {Edge{0, 1, 1.0}}).ok());
  // Cycle (3 edges over 3 nodes... that's n edges; use disconnected).
  EXPECT_FALSE(DisseminationTree::FromEdges(
                   4, {Edge{0, 1, 1}, Edge{0, 1, 1}, Edge{2, 3, 1}})
                   .ok());
  EXPECT_FALSE(DisseminationTree::FromEdges(
                   4, {Edge{0, 1, 1}, Edge{1, 2, 1}, Edge{0, 2, 1}})
                   .ok());
  EXPECT_FALSE(DisseminationTree::FromEdges(2, {Edge{0, 0, 1}}).ok());
}

TEST(DisseminationTree, PathAndDistances) {
  // 0 - 1 - 2
  //     |
  //     3
  auto tree = DisseminationTree::FromEdges(
      4, {Edge{0, 1, 1.0}, Edge{1, 2, 2.0}, Edge{1, 3, 3.0}});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Path(0, 2), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(tree->Path(2, 3), (std::vector<NodeId>{2, 1, 3}));
  EXPECT_EQ(tree->Path(1, 1), (std::vector<NodeId>{1}));
  EXPECT_EQ(tree->HopDistance(0, 3), 2);
  EXPECT_EQ(tree->HopDistance(0, 0), 0);
  EXPECT_DOUBLE_EQ(tree->WeightedDistance(2, 3), 5.0);
  EXPECT_EQ(tree->NextHop(0, 3), 1);
  EXPECT_EQ(tree->NextHop(1, 3), 3);
  EXPECT_EQ(tree->NextHop(2, 2), 2);
  EXPECT_DOUBLE_EQ(tree->TotalWeight(), 6.0);
}

TEST(DisseminationTree, EdgeKeyIsCanonical) {
  EXPECT_EQ(DisseminationTree::EdgeKey(3, 1),
            DisseminationTree::EdgeKey(1, 3));
}

TEST(DisseminationTree, SingleNodeTree) {
  auto tree = DisseminationTree::FromEdges(1, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->HopDistance(0, 0), 0);
}

}  // namespace
}  // namespace cosmos
