#include "expr/relaxation.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "expr/implication.h"
#include "query/parser.h"

namespace cosmos {
namespace {

ConjunctiveClause Parse(const std::string& text) {
  auto expr = ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  auto clause = ClauseFromExpr(*expr);
  EXPECT_TRUE(clause.ok());
  return *clause;
}

TEST(Relaxation, HullOfOverlappingRanges) {
  ConjunctiveClause h = ClauseHull(Parse("a >= 10 AND a <= 20"),
                                   Parse("a >= 15 AND a <= 25"));
  EXPECT_EQ(h.ConstraintFor("a").interval, Interval(10, false, 25, false));
}

TEST(Relaxation, AttributeConstrainedOnOneSideIsDropped) {
  ConjunctiveClause h =
      ClauseHull(Parse("a >= 10 AND b > 0"), Parse("a >= 5"));
  EXPECT_FALSE(h.ConstraintFor("a").interval.IsAll());
  EXPECT_TRUE(h.ConstraintFor("b").IsUnconstrained());
}

TEST(Relaxation, EqualEqualitiesKept) {
  ConjunctiveClause h = ClauseHull(Parse("tag = 'x' AND a > 1"),
                                   Parse("tag = 'x' AND a > 5"));
  ASSERT_TRUE(h.ConstraintFor("tag").eq.has_value());
  EXPECT_EQ(h.ConstraintFor("tag").eq->AsString(), "x");
}

TEST(Relaxation, DifferentEqualitiesDropped) {
  ConjunctiveClause h = ClauseHull(Parse("tag = 'x'"), Parse("tag = 'y'"));
  EXPECT_FALSE(h.ConstraintFor("tag").eq.has_value());
}

TEST(Relaxation, CommonDisequalitiesKept) {
  ConjunctiveClause h = ClauseHull(Parse("tag != 'x' AND tag != 'y'"),
                                   Parse("tag != 'x'"));
  ASSERT_EQ(h.ConstraintFor("tag").neq.size(), 1u);
  EXPECT_EQ(h.ConstraintFor("tag").neq[0].AsString(), "x");
}

TEST(Relaxation, SharedResidualsKept) {
  ConjunctiveClause h = ClauseHull(Parse("a > b AND a >= 0"),
                                   Parse("a > b AND a >= 5"));
  EXPECT_EQ(h.residual().size(), 1u);
  ConjunctiveClause h2 =
      ClauseHull(Parse("a > b AND a >= 0"), Parse("a >= 5"));
  EXPECT_TRUE(h2.residual().empty());
}

TEST(Relaxation, UnsatisfiableSideIsIdentity) {
  ConjunctiveClause sat = Parse("a >= 0 AND a <= 1");
  ConjunctiveClause unsat = Parse("a > 5 AND a < 1");
  ConjunctiveClause h = ClauseHull(sat, unsat);
  EXPECT_TRUE(ClauseImplies(h, sat));
  EXPECT_TRUE(ClauseImplies(sat, h));
}

TEST(Relaxation, HullManyFoldsAll) {
  std::vector<ConjunctiveClause> cs = {
      Parse("a >= 0 AND a <= 1"),
      Parse("a >= 2 AND a <= 3"),
      Parse("a >= 4 AND a <= 5"),
  };
  ConjunctiveClause h = ClauseHullMany(cs);
  EXPECT_EQ(h.ConstraintFor("a").interval, Interval(0, false, 5, false));
  EXPECT_TRUE(ClauseHullMany({}).IsTautology());
}

TEST(Relaxation, ExactnessDetection) {
  EXPECT_TRUE(ClauseHullIsExact(Parse("a >= 0 AND a <= 2"),
                                Parse("a >= 1 AND a <= 3")));
  EXPECT_FALSE(ClauseHullIsExact(Parse("a >= 0 AND a <= 1"),
                                 Parse("a >= 4 AND a <= 5")));
  // One clause containing the other is always exact.
  EXPECT_TRUE(ClauseHullIsExact(Parse("a >= 0 AND a <= 10"),
                                Parse("a >= 2 AND a <= 3")));
  // Two attributes differing with neither box containing the other: the
  // box hull admits corner points outside the union.
  EXPECT_FALSE(ClauseHullIsExact(Parse("a <= 1 AND b >= 1"),
                                 Parse("a <= 2 AND b >= 2")));
}

// ---- randomized property: the hull is implied by both inputs ----

class RelaxationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

ConjunctiveClause RandomClause(Rng& rng) {
  ConjunctiveClause c;
  const char* attrs[] = {"a", "b"};
  int n = 1 + static_cast<int>(rng.NextBounded(2));
  for (int i = 0; i < n; ++i) {
    const char* attr = attrs[rng.NextBounded(2)];
    double lo = rng.NextInt(-5, 5);
    double hi = rng.NextInt(-5, 5);
    if (hi < lo) std::swap(lo, hi);
    c.ConstrainInterval(attr,
                        Interval(lo, rng.NextBool(), hi, rng.NextBool()));
  }
  return c;
}

TEST_P(RelaxationPropertyTest, BothSidesImplyHull) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    ConjunctiveClause a = RandomClause(rng);
    ConjunctiveClause b = RandomClause(rng);
    ConjunctiveClause h = ClauseHull(a, b);
    EXPECT_TRUE(ClauseImplies(a, h))
        << a.ToString() << " !=> hull " << h.ToString();
    EXPECT_TRUE(ClauseImplies(b, h))
        << b.ToString() << " !=> hull " << h.ToString();
  }
}

TEST_P(RelaxationPropertyTest, HullAcceptsUnionOnSamples) {
  Rng rng(GetParam() ^ 0xBEEF);
  auto schema = std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"a", ValueType::kDouble},
                                     {"b", ValueType::kDouble}});
  for (int iter = 0; iter < 100; ++iter) {
    ConjunctiveClause a = RandomClause(rng);
    ConjunctiveClause b = RandomClause(rng);
    ConjunctiveClause h = ClauseHull(a, b);
    for (double x = -6; x <= 6; x += 1.5) {
      for (double y = -6; y <= 6; y += 1.5) {
        Tuple t(schema, {Value(x), Value(y)}, 0);
        if (a.MatchesCanonical(t) || b.MatchesCanonical(t)) {
          EXPECT_TRUE(h.MatchesCanonical(t))
              << "hull misses (" << x << "," << y << ")";
        }
      }
    }
  }
}

TEST_P(RelaxationPropertyTest, ExactHullAddsNothingOnSamples) {
  Rng rng(GetParam() ^ 0xE0);
  auto schema = std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"a", ValueType::kDouble},
                                     {"b", ValueType::kDouble}});
  for (int iter = 0; iter < 100; ++iter) {
    ConjunctiveClause a = RandomClause(rng);
    ConjunctiveClause b = RandomClause(rng);
    if (!ClauseHullIsExact(a, b)) continue;
    ConjunctiveClause h = ClauseHull(a, b);
    for (double x = -6; x <= 6; x += 1.5) {
      for (double y = -6; y <= 6; y += 1.5) {
        Tuple t(schema, {Value(x), Value(y)}, 0);
        EXPECT_EQ(h.MatchesCanonical(t),
                  a.MatchesCanonical(t) || b.MatchesCanonical(t))
            << "exact hull differs from union at (" << x << "," << y << ")\n"
            << "a: " << a.ToString() << "\nb: " << b.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelaxationPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace cosmos
