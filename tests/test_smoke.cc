#include <gtest/gtest.h>

#include "core/system.h"

namespace cosmos {
namespace {

TEST(Smoke, LibrariesLink) {
  Status s = Status::OK();
  EXPECT_TRUE(s.ok());
}

}  // namespace
}  // namespace cosmos
