#include "core/system.h"

#include <gtest/gtest.h>

#include "stream/auction_dataset.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

DisseminationTree ChainTree(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) {
    edges.push_back(Edge{i, i + 1, 1.0});
  }
  return DisseminationTree::FromEdges(n, edges).value();
}

TEST(System, EndToEndSingleQuery) {
  CosmosSystem system(ChainTree(4));
  ASSERT_TRUE(
      system.RegisterSource(AuctionDataset::OpenAuctionSchema(), 1.0, 0)
          .ok());
  ASSERT_TRUE(system.AddProcessor(1).ok());
  int hits = 0;
  auto id = system.SubmitQuery(
      "SELECT itemID FROM OpenAuction WHERE start_price > 100", 3,
      [&](const std::string&, const Tuple&) { ++hits; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  auto open = AuctionDataset::OpenAuctionSchema();
  ASSERT_TRUE(system
                  .PublishSourceTuple(
                      "OpenAuction",
                      Tuple(open, {Value(int64_t{1}), Value(int64_t{1}),
                                   Value(150.0), Value(int64_t{0})},
                            0))
                  .ok());
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(system.TotalQueries(), 1u);
  EXPECT_EQ(system.TotalGroups(), 1u);
}

TEST(System, QueriesWithoutProcessorsFail) {
  CosmosSystem system(ChainTree(2));
  auto id = system.SubmitQuery("SELECT x FROM S", 0, nullptr);
  EXPECT_EQ(id.status().code(), StatusCode::kFailedPrecondition);
}

TEST(System, BadCqlSurfacesParseError) {
  CosmosSystem system(ChainTree(2));
  (void)system.RegisterSource(AuctionDataset::OpenAuctionSchema(), 1.0, 0);
  ASSERT_TRUE(system.AddProcessor(0).ok());
  auto id = system.SubmitQuery("SELECT FROM garbage", 1, nullptr);
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(system.TotalQueries(), 0u);
}

TEST(System, UnknownStreamPublishFails) {
  CosmosSystem system(ChainTree(2));
  auto open = AuctionDataset::OpenAuctionSchema();
  Tuple t(open,
          {Value(int64_t{1}), Value(int64_t{1}), Value(1.0),
           Value(int64_t{0})},
          0);
  EXPECT_EQ(system.PublishSourceTuple("Nope", t).code(),
            StatusCode::kNotFound);
}

TEST(System, ProcessorValidation) {
  CosmosSystem system(ChainTree(3));
  EXPECT_FALSE(system.AddProcessor(-1).ok());
  EXPECT_FALSE(system.AddProcessor(99).ok());
  ASSERT_TRUE(system.AddProcessor(1).ok());
  EXPECT_EQ(system.AddProcessor(1).code(), StatusCode::kAlreadyExists);
  EXPECT_NE(system.processor(1), nullptr);
  EXPECT_EQ(system.processor(2), nullptr);
}

TEST(System, SignatureAffinityRoutesLikeQueriesTogether) {
  CosmosSystem system(ChainTree(6));
  SensorDataset sensors;
  for (int k = 0; k < 5; ++k) {
    ASSERT_TRUE(
        system.RegisterSource(sensors.SchemaOf(k), 1.0, 0).ok());
  }
  ASSERT_TRUE(system.AddProcessor(1).ok());
  ASSERT_TRUE(system.AddProcessor(2).ok());
  for (int i = 0; i < 6; ++i) {
    auto id = system.SubmitQuery(
        "SELECT ambient_temperature FROM sensor_00", 3, nullptr);
    ASSERT_TRUE(id.ok());
  }
  // All six identical queries landed on one processor => one group total.
  EXPECT_EQ(system.TotalGroups(), 1u);
  EXPECT_EQ(system.TotalQueries(), 6u);
}

TEST(System, RemoveQueryCleansUp) {
  CosmosSystem system(ChainTree(3));
  (void)system.RegisterSource(AuctionDataset::OpenAuctionSchema(), 1.0, 0);
  ASSERT_TRUE(system.AddProcessor(1).ok());
  int hits = 0;
  auto id = system.SubmitQuery(
      "SELECT itemID FROM OpenAuction", 2,
      [&](const std::string&, const Tuple&) { ++hits; });
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(system.RemoveQuery(*id).ok());
  EXPECT_EQ(system.RemoveQuery(*id).code(), StatusCode::kNotFound);
  auto open = AuctionDataset::OpenAuctionSchema();
  (void)system.PublishSourceTuple(
      "OpenAuction", Tuple(open,
                           {Value(int64_t{1}), Value(int64_t{1}), Value(1.0),
                            Value(int64_t{0})},
                           0));
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(system.TotalQueries(), 0u);
}

TEST(System, MergedRatesAggregateAcrossProcessors) {
  CosmosSystem system(ChainTree(4));
  SensorDataset sensors;
  (void)system.RegisterSource(sensors.SchemaOf(0), 1.0, 0);
  ASSERT_TRUE(system.AddProcessor(1).ok());
  for (int i = 0; i < 4; ++i) {
    (void)system.SubmitQuery("SELECT ambient_temperature FROM sensor_00", 2,
                             nullptr);
  }
  EXPECT_GT(system.TotalMemberRate(), 0.0);
  EXPECT_LE(system.TotalRepresentativeRate(), system.TotalMemberRate());
}

TEST(System, ReplayDrivesWholePipeline) {
  CosmosSystem system(ChainTree(3));
  SensorDatasetOptions sopts;
  sopts.num_stations = 3;
  sopts.duration = 10 * kMinute;
  SensorDataset sensors(sopts);
  for (int k = 0; k < 3; ++k) {
    ASSERT_TRUE(system
                    .RegisterSource(sensors.SchemaOf(k),
                                    sensors.RatePerStation(), 0)
                    .ok());
  }
  ASSERT_TRUE(system.AddProcessor(1).ok());
  int hits = 0;
  ASSERT_TRUE(system
                  .SubmitQuery("SELECT ambient_temperature FROM sensor_01",
                               2,
                               [&](const std::string&, const Tuple&) {
                                 ++hits;
                               })
                  .ok());
  auto replay = sensors.MakeReplay();
  ASSERT_TRUE(system.Replay(*replay).ok());
  EXPECT_EQ(hits, 20);  // 10 min at 30s period
}

}  // namespace
}  // namespace cosmos
