#include "core/grouping.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "core/workload.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

class GroupingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SensorDataset sensors;
    ASSERT_TRUE(sensors.RegisterAll(catalog_).ok());
  }

  AnalyzedQuery Q(const std::string& cql) {
    auto q = ParseAndAnalyze(cql, catalog_, "r");
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  Catalog catalog_;
};

TEST_F(GroupingTest, FirstQueryOpensGroup) {
  GroupingEngine engine(&catalog_);
  auto result = engine.AddQuery("q1", Q("SELECT ambient_temperature FROM "
                                        "sensor_00"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->created_new_group);
  EXPECT_TRUE(result->representative_changed);
  EXPECT_EQ(engine.num_groups(), 1u);
  EXPECT_EQ(engine.num_queries(), 1u);
}

TEST_F(GroupingTest, OverlappingQueriesMerge) {
  GroupingEngine engine(&catalog_);
  (void)engine.AddQuery(
      "q1", Q("SELECT relative_humidity FROM sensor_00 WHERE "
              "relative_humidity >= 10 AND relative_humidity <= 60"));
  auto result = engine.AddQuery(
      "q2", Q("SELECT relative_humidity FROM sensor_00 WHERE "
              "relative_humidity >= 20 AND relative_humidity <= 70"));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->created_new_group);
  EXPECT_TRUE(result->representative_changed);
  EXPECT_GT(result->marginal_benefit, 0.0);
  EXPECT_EQ(engine.num_groups(), 1u);
  const QueryGroup* g = engine.GroupOf("q2");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->size(), 2u);
  EXPECT_TRUE(QueryContains(g->representative, g->members[0]));
  EXPECT_TRUE(QueryContains(g->representative, g->members[1]));
}

TEST_F(GroupingTest, IdenticalQueryDoesNotBumpVersion) {
  GroupingEngine engine(&catalog_);
  (void)engine.AddQuery(
      "q1", Q("SELECT relative_humidity FROM sensor_00 WHERE "
              "relative_humidity <= 50"));
  const QueryGroup* g1 = engine.GroupOf("q1");
  uint64_t v1 = g1->version;
  auto result = engine.AddQuery(
      "q2", Q("SELECT relative_humidity FROM sensor_00 WHERE "
              "relative_humidity <= 50"));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->created_new_group);
  EXPECT_FALSE(result->representative_changed);
  EXPECT_EQ(engine.GroupOf("q2")->version, v1);
}

TEST_F(GroupingTest, DisjointQueriesStaySeparate) {
  GroupingEngine engine(&catalog_);
  (void)engine.AddQuery(
      "q1", Q("SELECT relative_humidity FROM sensor_00 WHERE "
              "relative_humidity >= 0 AND relative_humidity <= 5"));
  (void)engine.AddQuery(
      "q2", Q("SELECT relative_humidity FROM sensor_00 WHERE "
              "relative_humidity >= 95 AND relative_humidity <= 100"));
  // Hull would be 20x wider than each member: negative benefit.
  EXPECT_EQ(engine.num_groups(), 2u);
}

TEST_F(GroupingTest, DifferentStreamsNeverGroup) {
  GroupingEngine engine(&catalog_);
  (void)engine.AddQuery("q1", Q("SELECT ambient_temperature FROM sensor_00"));
  (void)engine.AddQuery("q2", Q("SELECT ambient_temperature FROM sensor_01"));
  EXPECT_EQ(engine.num_groups(), 2u);
}

TEST_F(GroupingTest, DuplicateIdRejected) {
  GroupingEngine engine(&catalog_);
  (void)engine.AddQuery("q", Q("SELECT ambient_temperature FROM sensor_00"));
  auto result =
      engine.AddQuery("q", Q("SELECT ambient_temperature FROM sensor_00"));
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(GroupingTest, RemoveShrinksAndRecomposes) {
  GroupingEngine engine(&catalog_);
  (void)engine.AddQuery(
      "narrow", Q("SELECT relative_humidity FROM sensor_00 WHERE "
                  "relative_humidity >= 40 AND relative_humidity <= 50"));
  (void)engine.AddQuery(
      "wide", Q("SELECT relative_humidity FROM sensor_00 WHERE "
                "relative_humidity >= 10 AND relative_humidity <= 90"));
  ASSERT_EQ(engine.num_groups(), 1u);
  double before = engine.TotalRepresentativeRate();
  ASSERT_TRUE(engine.RemoveQuery("wide").ok());
  EXPECT_EQ(engine.num_queries(), 1u);
  EXPECT_EQ(engine.num_groups(), 1u);
  // Representative re-tightens to the narrow member.
  EXPECT_LT(engine.TotalRepresentativeRate(), before);
  const QueryGroup* g = engine.GroupOf("narrow");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->representative.local_selection(0)
                .ConstraintFor("relative_humidity")
                .interval,
            Interval(40, false, 50, false));
}

TEST_F(GroupingTest, RemoveLastMemberDropsGroup) {
  GroupingEngine engine(&catalog_);
  (void)engine.AddQuery("q", Q("SELECT ambient_temperature FROM sensor_00"));
  ASSERT_TRUE(engine.RemoveQuery("q").ok());
  EXPECT_EQ(engine.num_groups(), 0u);
  EXPECT_EQ(engine.num_queries(), 0u);
  EXPECT_EQ(engine.RemoveQuery("q").status().code(), StatusCode::kNotFound);
}

TEST_F(GroupingTest, GroupingRatioMatchesDefinition) {
  GroupingEngine engine(&catalog_);
  EXPECT_DOUBLE_EQ(engine.GroupingRatio(), 1.0);  // vacuous
  (void)engine.AddQuery("q1", Q("SELECT ambient_temperature FROM sensor_00"));
  (void)engine.AddQuery("q2", Q("SELECT ambient_temperature FROM sensor_00"));
  (void)engine.AddQuery("q3", Q("SELECT ambient_temperature FROM sensor_01"));
  EXPECT_DOUBLE_EQ(engine.GroupingRatio(), 2.0 / 3.0);
}

TEST_F(GroupingTest, MergedRateNeverExceedsUnmerged) {
  GroupingEngine engine(&catalog_);
  WorkloadOptions wl;
  wl.zipf_theta = 1.0;
  wl.seed = 321;
  QueryWorkloadGenerator gen(&catalog_, wl);
  for (int i = 0; i < 100; ++i) {
    auto q = ParseAndAnalyze(gen.NextCql(), catalog_, "r" + std::to_string(i));
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(engine.AddQuery("q" + std::to_string(i), *q).ok());
  }
  EXPECT_LE(engine.TotalRepresentativeRate(),
            engine.TotalMemberRate() * (1.0 + 1e-9));
  EXPECT_LE(engine.num_groups(), engine.num_queries());
}

TEST_F(GroupingTest, EveryMemberContainedInItsRepresentative) {
  GroupingEngine engine(&catalog_);
  WorkloadOptions wl;
  wl.zipf_theta = 1.5;
  wl.seed = 654;
  QueryWorkloadGenerator gen(&catalog_, wl);
  for (int i = 0; i < 80; ++i) {
    auto q = ParseAndAnalyze(gen.NextCql(), catalog_, "r" + std::to_string(i));
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(engine.AddQuery("q" + std::to_string(i), *q).ok());
  }
  for (const auto& [gid, group] : engine.groups()) {
    for (const auto& m : group.members) {
      EXPECT_TRUE(QueryContains(group.representative, m))
          << "group " << gid;
    }
  }
}

TEST_F(GroupingTest, ZeroCandidatesDisablesMerging) {
  GroupingOptions opts;
  opts.max_candidates = 0;
  GroupingEngine engine(&catalog_, opts);
  for (int i = 0; i < 5; ++i) {
    (void)engine.AddQuery("q" + std::to_string(i),
                          Q("SELECT ambient_temperature FROM sensor_00"));
  }
  EXPECT_EQ(engine.num_groups(), 5u);
}

TEST_F(GroupingTest, MinBenefitThresholdBlocksMarginalMerges) {
  GroupingOptions opts;
  opts.min_benefit = 1e12;  // impossible bar
  GroupingEngine engine(&catalog_, opts);
  (void)engine.AddQuery("q1", Q("SELECT ambient_temperature FROM sensor_00"));
  (void)engine.AddQuery("q2", Q("SELECT ambient_temperature FROM sensor_00"));
  EXPECT_EQ(engine.num_groups(), 2u);
}

TEST_F(GroupingTest, ResultStreamNameEncodesVersion) {
  GroupingEngine engine(&catalog_);
  (void)engine.AddQuery(
      "q1", Q("SELECT relative_humidity FROM sensor_00 WHERE "
              "relative_humidity <= 40"));
  const QueryGroup* g = engine.GroupOf("q1");
  std::string name_v1 = g->ResultStreamName();
  (void)engine.AddQuery(
      "q2", Q("SELECT relative_humidity FROM sensor_00 WHERE "
              "relative_humidity <= 60"));
  g = engine.GroupOf("q1");
  EXPECT_NE(g->ResultStreamName(), name_v1);  // widened => version bump
}

}  // namespace
}  // namespace cosmos
