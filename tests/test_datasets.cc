#include <gtest/gtest.h>

#include "stream/auction_dataset.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

TEST(SensorDataset, SchemasHaveMeasurementsAndRanges) {
  SensorDataset sensors;
  auto schema = sensors.SchemaOf(0);
  EXPECT_EQ(schema->stream_name(), "sensor_00");
  EXPECT_TRUE(schema->HasAttribute("station_id"));
  EXPECT_TRUE(schema->HasAttribute("ambient_temperature"));
  EXPECT_TRUE(schema->HasAttribute("timestamp"));
  auto temp = schema->FindAttribute("ambient_temperature");
  ASSERT_TRUE(temp.ok());
  EXPECT_TRUE(temp->has_range);
  EXPECT_LT(temp->min, temp->max);
}

TEST(SensorDataset, RegistersSixtyThreeStreams) {
  Catalog catalog;
  SensorDataset sensors;
  ASSERT_TRUE(sensors.RegisterAll(catalog).ok());
  EXPECT_EQ(catalog.num_streams(), 63u);  // as in the paper's experiment
}

TEST(SensorDataset, GeneratorIsTimestampOrderedAndBounded) {
  SensorDatasetOptions opts;
  opts.duration = 10 * kMinute;
  opts.sampling_period = 30 * kSecond;
  SensorDataset sensors(opts);
  auto gen = sensors.MakeGenerator(5);
  Timestamp prev = -1;
  int count = 0;
  while (auto t = gen->Next()) {
    EXPECT_GE(t->timestamp(), prev);
    prev = t->timestamp();
    EXPECT_LT(t->timestamp(), opts.duration);
    // Values stay inside declared ranges.
    for (size_t i = 0; i < t->schema()->num_attributes(); ++i) {
      const auto& def = t->schema()->attribute(i);
      if (def.has_range && def.type == ValueType::kDouble) {
        double v = t->value(i).AsDouble();
        EXPECT_GE(v, def.min) << def.name;
        EXPECT_LE(v, def.max) << def.name;
      }
    }
    ++count;
  }
  EXPECT_EQ(count, 20);  // 10 minutes at 30s period
}

TEST(SensorDataset, DeterministicForSameSeed) {
  SensorDataset a;
  SensorDataset b;
  auto ga = a.MakeGenerator(3);
  auto gb = b.MakeGenerator(3);
  for (int i = 0; i < 10; ++i) {
    auto ta = ga->Next();
    auto tb = gb->Next();
    ASSERT_TRUE(ta.has_value());
    ASSERT_TRUE(tb.has_value());
    EXPECT_EQ(*ta, *tb);
  }
}

TEST(SensorDataset, DifferentStationsDiffer) {
  SensorDataset sensors;
  auto g0 = sensors.MakeGenerator(0);
  auto g1 = sensors.MakeGenerator(1);
  auto t0 = g0->Next();
  auto t1 = g1->Next();
  ASSERT_TRUE(t0 && t1);
  EXPECT_EQ(t0->GetAttribute("station_id")->AsInt64(), 0);
  EXPECT_EQ(t1->GetAttribute("station_id")->AsInt64(), 1);
}

TEST(SensorDataset, ReplayIsGloballyOrdered) {
  SensorDatasetOptions opts;
  opts.num_stations = 5;
  opts.duration = 5 * kMinute;
  SensorDataset sensors(opts);
  auto replay = sensors.MakeReplay();
  Timestamp prev = -1;
  int count = 0;
  while (auto t = replay->Next()) {
    EXPECT_GE(t->timestamp(), prev);
    prev = t->timestamp();
    ++count;
  }
  EXPECT_EQ(count, 5 * 10);  // 5 stations x 10 samples
}

TEST(SensorDataset, RateMatchesSamplingPeriod) {
  SensorDatasetOptions opts;
  opts.sampling_period = 2 * kSecond;
  SensorDataset sensors(opts);
  EXPECT_DOUBLE_EQ(sensors.RatePerStation(), 0.5);
}

TEST(AuctionDataset, SchemasMatchTable1) {
  auto open = AuctionDataset::OpenAuctionSchema();
  EXPECT_EQ(open->stream_name(), "OpenAuction");
  EXPECT_TRUE(open->HasAttribute("itemID"));
  EXPECT_TRUE(open->HasAttribute("sellerID"));
  EXPECT_TRUE(open->HasAttribute("start_price"));
  EXPECT_TRUE(open->HasAttribute("timestamp"));
  auto closed = AuctionDataset::ClosedAuctionSchema();
  EXPECT_EQ(closed->stream_name(), "ClosedAuction");
  EXPECT_TRUE(closed->HasAttribute("itemID"));
  EXPECT_TRUE(closed->HasAttribute("buyerID"));
  EXPECT_TRUE(closed->HasAttribute("timestamp"));
}

TEST(AuctionDataset, EveryCloseFollowsItsOpenWithinBounds) {
  AuctionDatasetOptions opts;
  opts.num_auctions = 500;
  opts.close_fraction = 1.0;
  AuctionDataset auctions(opts);
  auto open_gen = auctions.MakeOpenGenerator();
  std::map<int64_t, Timestamp> open_time;
  while (auto t = open_gen->Next()) {
    open_time[t->GetAttribute("itemID")->AsInt64()] = t->timestamp();
  }
  EXPECT_EQ(open_time.size(), 500u);
  auto closed_gen = auctions.MakeClosedGenerator();
  int closes = 0;
  while (auto t = closed_gen->Next()) {
    int64_t item = t->GetAttribute("itemID")->AsInt64();
    ASSERT_TRUE(open_time.count(item));
    Duration d = t->timestamp() - open_time[item];
    EXPECT_GE(d, opts.min_duration);
    EXPECT_LE(d, opts.max_duration);
    ++closes;
  }
  EXPECT_EQ(closes, 500);
}

TEST(AuctionDataset, CloseFractionRespected) {
  AuctionDatasetOptions opts;
  opts.num_auctions = 2000;
  opts.close_fraction = 0.5;
  AuctionDataset auctions(opts);
  auto closed = auctions.MakeClosedGenerator();
  int closes = 0;
  while (closed->Next()) ++closes;
  EXPECT_NEAR(closes, 1000, 100);
}

TEST(AuctionDataset, StreamsAreTimestampOrdered) {
  AuctionDataset auctions;
  std::vector<std::unique_ptr<StreamGenerator>> gens;
  gens.push_back(auctions.MakeOpenGenerator());
  gens.push_back(auctions.MakeClosedGenerator());
  for (auto& gen : gens) {
    Timestamp prev = -1;
    while (auto t = gen->Next()) {
      EXPECT_GE(t->timestamp(), prev);
      prev = t->timestamp();
    }
  }
}

TEST(Generator, VectorGeneratorDrains) {
  auto schema = std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"x", ValueType::kInt64}});
  std::vector<Tuple> tuples;
  for (int i = 0; i < 5; ++i) {
    tuples.emplace_back(schema, std::vector<Value>{Value(int64_t{i})}, i);
  }
  VectorGenerator gen(schema, tuples);
  auto drained = DrainGenerator(gen);
  EXPECT_EQ(drained.size(), 5u);
  EXPECT_FALSE(gen.Next().has_value());
}

TEST(Generator, ReplayMergerInterleavesByTimestamp) {
  auto schema = std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"x", ValueType::kInt64}});
  auto make = [&](std::vector<Timestamp> ts) {
    std::vector<Tuple> tuples;
    for (Timestamp t : ts) {
      tuples.emplace_back(schema, std::vector<Value>{Value(int64_t{t})}, t);
    }
    return std::make_unique<VectorGenerator>(schema, std::move(tuples));
  };
  std::vector<std::unique_ptr<StreamGenerator>> gens;
  gens.push_back(make({1, 4, 7}));
  gens.push_back(make({2, 3, 8}));
  ReplayMerger merger(std::move(gens));
  std::vector<Timestamp> order;
  while (auto t = merger.Next()) order.push_back(t->timestamp());
  EXPECT_EQ(order, (std::vector<Timestamp>{1, 2, 3, 4, 7, 8}));
}

TEST(Generator, UnsortedVectorDies) {
  auto schema = std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"x", ValueType::kInt64}});
  std::vector<Tuple> tuples;
  tuples.emplace_back(schema, std::vector<Value>{Value(int64_t{2})}, 2);
  tuples.emplace_back(schema, std::vector<Value>{Value(int64_t{1})}, 1);
  EXPECT_DEATH(VectorGenerator(schema, std::move(tuples)), "CHECK failed");
}

}  // namespace
}  // namespace cosmos
