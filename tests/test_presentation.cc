// Presentation mapping: delivered representative-stream tuples are
// re-shaped into the user query's own result schema (names, column order,
// stream name) before reaching the user callback.

#include <gtest/gtest.h>

#include "core/merger.h"
#include "core/profile_composer.h"
#include "core/system.h"
#include "stream/auction_dataset.h"

namespace cosmos {
namespace {

class PresentationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AuctionDataset auctions;
    ASSERT_TRUE(auctions.RegisterAll(catalog_).ok());
  }

  AnalyzedQuery Q(const std::string& cql, const std::string& name = "r") {
    auto q = ParseAndAnalyze(cql, catalog_, name);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  Catalog catalog_;
};

TEST_F(PresentationTest, UserColumnRepNamesFollowSelectOrder) {
  AnalyzedQuery user = Q(
      "SELECT start_price, itemID FROM OpenAuction WHERE sellerID = 3",
      "user_q");
  auto rep = ComposeRepresentative({&user}, catalog_, "grp");
  ASSERT_TRUE(rep.ok());
  auto names = UserColumnRepNames(user, *rep);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ((*names)[0], "start_price");
  EXPECT_EQ((*names)[1], "itemID");
}

TEST_F(PresentationTest, CallbackReordersAndRenames) {
  // User asks for (start_price, itemID); the representative delivers in
  // schema order (itemID, start_price, ...). The wrapper must flip them
  // and rename the stream to the user's result name.
  AnalyzedQuery user = Q(
      "SELECT start_price, itemID FROM OpenAuction WHERE sellerID = 3",
      "result_user");
  AnalyzedQuery wide = Q(
      "SELECT itemID, sellerID, start_price FROM OpenAuction WHERE "
      "sellerID = 3",
      "other");
  auto rep = ComposeRepresentative({&wide, &user}, catalog_, "grp");
  ASSERT_TRUE(rep.ok());

  std::vector<std::string> streams;
  std::vector<Tuple> tuples;
  auto cb = MakePresentationCallback(
      user, *rep, [&](const std::string& s, const Tuple& t) {
        streams.push_back(s);
        tuples.push_back(t);
      });
  ASSERT_NE(cb, nullptr);

  // Simulate a delivery from the representative stream: its schema is the
  // rep's output schema (possibly projected by the user's profile; here we
  // deliver the full row).
  std::vector<Value> values;
  for (const auto& def : rep->output_schema()->attributes()) {
    if (def.name == "itemID") {
      values.emplace_back(int64_t{7});
    } else if (def.name == "start_price") {
      values.emplace_back(99.5);
    } else {
      values.emplace_back(int64_t{3});
    }
  }
  cb("grp", Tuple(rep->output_schema(), std::move(values), 42));

  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(streams[0], "result_user");
  EXPECT_EQ(tuples[0].schema()->stream_name(), "result_user");
  ASSERT_EQ(tuples[0].num_values(), 2u);
  EXPECT_EQ(tuples[0].schema()->attribute(0).name, "start_price");
  EXPECT_DOUBLE_EQ(tuples[0].value(0).AsDouble(), 99.5);
  EXPECT_EQ(tuples[0].schema()->attribute(1).name, "itemID");
  EXPECT_EQ(tuples[0].value(1).AsInt64(), 7);
  EXPECT_EQ(tuples[0].timestamp(), 42);
}

TEST_F(PresentationTest, EndToEndUserSeesOwnSchema) {
  std::vector<Edge> edges = {{0, 1, 1.0}};
  CosmosSystem system(DisseminationTree::FromEdges(2, edges).value());
  (void)system.RegisterSource(AuctionDataset::OpenAuctionSchema(), 1.0, 0);
  ASSERT_TRUE(system.AddProcessor(0).ok());
  std::vector<Tuple> got;
  std::vector<std::string> streams;
  auto id = system.SubmitQuery(
      "SELECT start_price, itemID FROM OpenAuction", 1,
      [&](const std::string& s, const Tuple& t) {
        streams.push_back(s);
        got.push_back(t);
      });
  ASSERT_TRUE(id.ok());
  auto open = AuctionDataset::OpenAuctionSchema();
  (void)system.PublishSourceTuple(
      "OpenAuction",
      Tuple(open,
            {Value(int64_t{5}), Value(int64_t{2}), Value(10.0),
             Value(int64_t{0})},
            0));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(streams[0], "result_" + *id);
  EXPECT_EQ(got[0].schema()->attribute(0).name, "start_price");
  EXPECT_EQ(got[0].schema()->attribute(1).name, "itemID");
  EXPECT_DOUBLE_EQ(got[0].value(0).AsDouble(), 10.0);
  EXPECT_EQ(got[0].value(1).AsInt64(), 5);
}

TEST_F(PresentationTest, JoinUserKeepsQualifiedNames) {
  std::vector<Edge> edges = {{0, 1, 1.0}};
  CosmosSystem system(DisseminationTree::FromEdges(2, edges).value());
  (void)system.RegisterSource(AuctionDataset::OpenAuctionSchema(), 1.0, 0);
  (void)system.RegisterSource(AuctionDataset::ClosedAuctionSchema(), 1.0,
                              0);
  ASSERT_TRUE(system.AddProcessor(0).ok());
  std::vector<Tuple> got;
  auto id = system.SubmitQuery(
      "SELECT C.buyerID, O.itemID FROM OpenAuction [Range 1 Hour] O, "
      "ClosedAuction [Now] C WHERE O.itemID = C.itemID",
      1, [&](const std::string&, const Tuple& t) { got.push_back(t); });
  ASSERT_TRUE(id.ok());
  auto open = AuctionDataset::OpenAuctionSchema();
  auto closed = AuctionDataset::ClosedAuctionSchema();
  (void)system.PublishSourceTuple(
      "OpenAuction", Tuple(open,
                           {Value(int64_t{5}), Value(int64_t{2}),
                            Value(10.0), Value(int64_t{0})},
                           0));
  (void)system.PublishSourceTuple(
      "ClosedAuction",
      Tuple(closed, {Value(int64_t{5}), Value(int64_t{9}), Value(int64_t{0})},
            0));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].schema()->attribute(0).name, "C.buyerID");
  EXPECT_EQ(got[0].value(0).AsInt64(), 9);
  EXPECT_EQ(got[0].schema()->attribute(1).name, "O.itemID");
  EXPECT_EQ(got[0].value(1).AsInt64(), 5);
}

}  // namespace
}  // namespace cosmos
