#include "spe/aggregate.h"

#include <gtest/gtest.h>

namespace cosmos {
namespace {

std::shared_ptr<const Schema> InSchema() {
  return std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"g", ValueType::kInt64},
                                     {"v", ValueType::kDouble}});
}

std::shared_ptr<const Schema> OutSchema(const char* agg_name,
                                        ValueType agg_type) {
  return std::make_shared<Schema>(
      "out", std::vector<AttributeDef>{{"g", ValueType::kInt64},
                                       {agg_name, agg_type}});
}

Tuple In(int64_t g, double v, Timestamp ts) {
  return Tuple(InSchema(), {Value(g), Value(v)}, ts);
}

TEST(WindowAggregate, CountPerGroup) {
  WindowAggregateOperator agg(kInfiniteDuration, {0},
                              {{AggFunc::kCount, true, 0}},
                              OutSchema("cnt", ValueType::kInt64));
  std::vector<Tuple> out;
  agg.SetSink([&](const Tuple& t) { out.push_back(t); });
  agg.Push(0, In(1, 0, 0));
  agg.Push(0, In(1, 0, 1));
  agg.Push(0, In(2, 0, 2));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].value(1).AsInt64(), 1);
  EXPECT_EQ(out[1].value(1).AsInt64(), 2);
  EXPECT_EQ(out[2].value(1).AsInt64(), 1);  // group 2
  EXPECT_EQ(agg.num_groups(), 2u);
}

TEST(WindowAggregate, SumAndAvg) {
  WindowAggregateOperator agg(
      kInfiniteDuration, {0},
      {{AggFunc::kSum, false, 1}, {AggFunc::kAvg, false, 1}},
      std::make_shared<Schema>(
          "out", std::vector<AttributeDef>{{"g", ValueType::kInt64},
                                           {"s", ValueType::kDouble},
                                           {"a", ValueType::kDouble}}));
  std::vector<Tuple> out;
  agg.SetSink([&](const Tuple& t) { out.push_back(t); });
  agg.Push(0, In(1, 10, 0));
  agg.Push(0, In(1, 20, 1));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[1].value(1).AsDouble(), 30.0);
  EXPECT_DOUBLE_EQ(out[1].value(2).AsDouble(), 15.0);
}

TEST(WindowAggregate, MinMaxTrackWindow) {
  WindowAggregateOperator agg(
      kInfiniteDuration, {0},
      {{AggFunc::kMin, false, 1}, {AggFunc::kMax, false, 1}},
      std::make_shared<Schema>(
          "out", std::vector<AttributeDef>{{"g", ValueType::kInt64},
                                           {"lo", ValueType::kDouble},
                                           {"hi", ValueType::kDouble}}));
  std::vector<Tuple> out;
  agg.SetSink([&](const Tuple& t) { out.push_back(t); });
  agg.Push(0, In(1, 5, 0));
  agg.Push(0, In(1, 3, 1));
  agg.Push(0, In(1, 8, 2));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[2].value(1).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(out[2].value(2).AsDouble(), 8.0);
}

TEST(WindowAggregate, WindowEvictionUpdatesState) {
  // Window of 10: at ts=15, the tuple from ts=0 has left.
  WindowAggregateOperator agg(10, {0}, {{AggFunc::kSum, false, 1}},
                              OutSchema("s", ValueType::kDouble));
  std::vector<Tuple> out;
  agg.SetSink([&](const Tuple& t) { out.push_back(t); });
  agg.Push(0, In(1, 100, 0));
  agg.Push(0, In(1, 10, 15));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[1].value(1).AsDouble(), 10.0);  // 100 evicted
}

TEST(WindowAggregate, MinRecomputedAfterEviction) {
  WindowAggregateOperator agg(10, {0}, {{AggFunc::kMin, false, 1}},
                              OutSchema("lo", ValueType::kDouble));
  std::vector<Tuple> out;
  agg.SetSink([&](const Tuple& t) { out.push_back(t); });
  agg.Push(0, In(1, 1, 0));   // min = 1
  agg.Push(0, In(1, 5, 8));   // min = 1
  agg.Push(0, In(1, 7, 15));  // ts=0 evicted (cutoff 5); min of {5,7} = 5
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[2].value(1).AsDouble(), 5.0);
}

TEST(WindowAggregate, GroupsDisappearWhenEmpty) {
  WindowAggregateOperator agg(5, {0}, {{AggFunc::kCount, true, 0}},
                              OutSchema("c", ValueType::kInt64));
  agg.SetSink(nullptr);
  agg.Push(0, In(1, 0, 0));
  agg.Push(0, In(2, 0, 100));  // group 1 evicted entirely
  EXPECT_EQ(agg.num_groups(), 1u);
}

TEST(WindowAggregate, EmptyGroupByAggregatesGlobally) {
  WindowAggregateOperator agg(kInfiniteDuration, {},
                              {{AggFunc::kCount, true, 0}},
                              std::make_shared<Schema>(
                                  "out", std::vector<AttributeDef>{
                                             {"c", ValueType::kInt64}}));
  std::vector<Tuple> out;
  agg.SetSink([&](const Tuple& t) { out.push_back(t); });
  agg.Push(0, In(1, 0, 0));
  agg.Push(0, In(9, 0, 1));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].value(0).AsInt64(), 2);
  EXPECT_EQ(agg.num_groups(), 1u);
}

TEST(WindowAggregate, EmissionTimestampIsArrivalTime) {
  WindowAggregateOperator agg(kInfiniteDuration, {0},
                              {{AggFunc::kCount, true, 0}},
                              OutSchema("c", ValueType::kInt64));
  std::vector<Tuple> out;
  agg.SetSink([&](const Tuple& t) { out.push_back(t); });
  agg.Push(0, In(1, 0, 77));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].timestamp(), 77);
}

}  // namespace
}  // namespace cosmos
