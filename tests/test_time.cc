#include "common/time.h"

#include <gtest/gtest.h>

namespace cosmos {
namespace {

TEST(Time, UnitRatios) {
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
}

TEST(Time, DurationToStringPicksNaturalUnit) {
  EXPECT_EQ(DurationToString(3 * kHour), "3h");
  EXPECT_EQ(DurationToString(90 * kMinute), "90m");
  EXPECT_EQ(DurationToString(45 * kSecond), "45s");
  EXPECT_EQ(DurationToString(250 * kMillisecond), "250ms");
  EXPECT_EQ(DurationToString(17), "17us");
  EXPECT_EQ(DurationToString(kInfiniteDuration), "unbounded");
}

TEST(Time, ZeroDuration) { EXPECT_EQ(DurationToString(0), "0us"); }

}  // namespace
}  // namespace cosmos
