#include <gtest/gtest.h>

#include "stream/tuple.h"

namespace cosmos {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  return std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{
               {"a", ValueType::kInt64, 0, 100},
               {"b", ValueType::kDouble, -1.0, 1.0},
               {"name", ValueType::kString},
               {"timestamp", ValueType::kInt64},
           });
}

TEST(Schema, IndexOfFindsAttributes) {
  auto s = TestSchema();
  EXPECT_EQ(s->IndexOf("a"), 0u);
  EXPECT_EQ(s->IndexOf("timestamp"), 3u);
  EXPECT_FALSE(s->IndexOf("missing").has_value());
  EXPECT_TRUE(s->HasAttribute("b"));
  EXPECT_FALSE(s->HasAttribute("B"));  // case sensitive
}

TEST(Schema, FindAttributeReturnsDefOrError) {
  auto s = TestSchema();
  auto def = s->FindAttribute("b");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->type, ValueType::kDouble);
  EXPECT_TRUE(def->has_range);
  EXPECT_DOUBLE_EQ(def->min, -1.0);
  EXPECT_FALSE(s->FindAttribute("zzz").ok());
}

TEST(Schema, EstimatedRowWidth) {
  auto s = TestSchema();
  // a(8) + b(8) + name(4+16) + timestamp(8) = 44
  EXPECT_EQ(s->EstimatedRowWidth(), 44u);
}

TEST(Schema, ToStringListsAttributes) {
  auto s = TestSchema();
  EXPECT_EQ(s->ToString(),
            "S(a:int64, b:double, name:string, timestamp:int64)");
}

TEST(Schema, EqualityByNameAndTypes) {
  auto a = TestSchema();
  auto b = TestSchema();
  EXPECT_TRUE(*a == *b);
  Schema other("T", {{"a", ValueType::kInt64}});
  EXPECT_FALSE(*a == other);
}

TEST(Tuple, ConstructionAndAccess) {
  auto s = TestSchema();
  Tuple t(s, {Value(int64_t{5}), Value(0.5), Value("x"), Value(int64_t{99})},
          99);
  EXPECT_EQ(t.num_values(), 4u);
  EXPECT_EQ(t.timestamp(), 99);
  auto v = t.GetAttribute("b");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 0.5);
  EXPECT_FALSE(t.GetAttribute("nope").ok());
}

TEST(Tuple, SerializedSizeSumsValuesPlusTimestamp) {
  auto s = TestSchema();
  Tuple t(s, {Value(int64_t{5}), Value(0.5), Value("xy"), Value(int64_t{9})},
          9);
  // 8 (ts) + 8 + 8 + (4+2) + 8 = 38
  EXPECT_EQ(t.SerializedSize(), 38u);
}

TEST(Tuple, ProjectKeepsTimestampAndOrder) {
  auto s = TestSchema();
  auto proj_schema = std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"a", ValueType::kInt64},
                                     {"name", ValueType::kString}});
  Tuple t(s, {Value(int64_t{5}), Value(0.5), Value("x"), Value(int64_t{9})},
          9);
  Tuple p = t.Project({0, 2}, proj_schema);
  EXPECT_EQ(p.num_values(), 2u);
  EXPECT_EQ(p.value(0).AsInt64(), 5);
  EXPECT_EQ(p.value(1).AsString(), "x");
  EXPECT_EQ(p.timestamp(), 9);
}

TEST(Tuple, EqualityIsValueWise) {
  auto s = TestSchema();
  Tuple a(s, {Value(int64_t{1}), Value(0.0), Value("x"), Value(int64_t{2})},
          2);
  Tuple b(s, {Value(int64_t{1}), Value(0.0), Value("x"), Value(int64_t{2})},
          2);
  Tuple c(s, {Value(int64_t{9}), Value(0.0), Value("x"), Value(int64_t{2})},
          2);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Tuple, MakeJoinedSchemaQualifiesNames) {
  Schema left("L", {{"id", ValueType::kInt64}, {"x", ValueType::kDouble}});
  Schema right("R", {{"id", ValueType::kInt64}, {"y", ValueType::kDouble}});
  auto joined = MakeJoinedSchema(left, "A", right, "B", "J");
  EXPECT_EQ(joined->stream_name(), "J");
  ASSERT_EQ(joined->num_attributes(), 4u);
  EXPECT_TRUE(joined->HasAttribute("A.id"));
  EXPECT_TRUE(joined->HasAttribute("B.id"));
  EXPECT_TRUE(joined->HasAttribute("A.x"));
  EXPECT_TRUE(joined->HasAttribute("B.y"));
  EXPECT_FALSE(joined->HasAttribute("id"));
}

TEST(Tuple, MismatchedValueCountDies) {
  auto s = TestSchema();
  EXPECT_DEATH(Tuple(s, {Value(int64_t{1})}, 0), "CHECK failed");
}

}  // namespace
}  // namespace cosmos
