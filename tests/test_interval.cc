#include "expr/interval.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace cosmos {
namespace {

TEST(Interval, DefaultIsAll) {
  Interval i;
  EXPECT_TRUE(i.IsAll());
  EXPECT_FALSE(i.IsEmpty());
  EXPECT_TRUE(i.Contains(0));
  EXPECT_TRUE(i.Contains(-1e300));
  EXPECT_TRUE(i.Contains(1e300));
}

TEST(Interval, EmptyContainsNothing) {
  Interval e = Interval::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_FALSE(e.Contains(0));
  EXPECT_EQ(e.ToString(), "{}");
}

TEST(Interval, PointInterval) {
  Interval p = Interval::Point(5.0);
  EXPECT_TRUE(p.IsPoint());
  EXPECT_TRUE(p.Contains(5.0));
  EXPECT_FALSE(p.Contains(5.0001));
}

TEST(Interval, OpenClosedBoundaries) {
  Interval closed(1.0, false, 2.0, false);
  EXPECT_TRUE(closed.Contains(1.0));
  EXPECT_TRUE(closed.Contains(2.0));
  Interval open(1.0, true, 2.0, true);
  EXPECT_FALSE(open.Contains(1.0));
  EXPECT_FALSE(open.Contains(2.0));
  EXPECT_TRUE(open.Contains(1.5));
}

TEST(Interval, DegeneratesToEmpty) {
  Interval bad(2.0, false, 1.0, false);
  EXPECT_TRUE(bad.IsEmpty());
  Interval half_open_point(1.0, true, 1.0, false);
  EXPECT_TRUE(half_open_point.IsEmpty());
}

TEST(Interval, AtLeastAtMost) {
  Interval ge = Interval::AtLeast(3.0);
  EXPECT_TRUE(ge.Contains(3.0));
  EXPECT_TRUE(ge.Contains(1e308));
  EXPECT_FALSE(ge.Contains(2.999));
  Interval lt = Interval::AtMost(3.0, /*open=*/true);
  EXPECT_FALSE(lt.Contains(3.0));
  EXPECT_TRUE(lt.Contains(2.999));
}

TEST(Interval, CoversRespectsBoundTypes) {
  Interval outer(0.0, false, 10.0, false);
  Interval inner(0.0, true, 10.0, true);
  EXPECT_TRUE(outer.Covers(inner));
  EXPECT_FALSE(inner.Covers(outer));  // open misses the endpoints
  EXPECT_TRUE(outer.Covers(outer));
  EXPECT_TRUE(outer.Covers(Interval::Empty()));
  EXPECT_FALSE(Interval::Empty().Covers(outer));
  EXPECT_TRUE(Interval::Empty().Covers(Interval::Empty()));
}

TEST(Interval, IntersectBasics) {
  Interval a(0.0, false, 5.0, false);
  Interval b(3.0, false, 8.0, false);
  Interval i = a.Intersect(b);
  EXPECT_EQ(i, Interval(3.0, false, 5.0, false));
  EXPECT_TRUE(a.Intersect(Interval(6.0, false, 7.0, false)).IsEmpty());
}

TEST(Interval, IntersectTouchingPoints) {
  Interval a(0.0, false, 3.0, false);
  Interval b(3.0, false, 5.0, false);
  Interval i = a.Intersect(b);
  EXPECT_TRUE(i.IsPoint());
  EXPECT_TRUE(i.Contains(3.0));
  // Open touch is empty.
  Interval c(0.0, false, 3.0, true);
  EXPECT_TRUE(c.Intersect(b).IsEmpty());
}

TEST(Interval, HullSpansGaps) {
  Interval a(0.0, false, 1.0, false);
  Interval b(3.0, false, 4.0, false);
  Interval h = a.Hull(b);
  EXPECT_EQ(h, Interval(0.0, false, 4.0, false));
  EXPECT_TRUE(h.Contains(2.0));  // hull over-approximates the union
}

TEST(Interval, HullWithEmptyIsIdentity) {
  Interval a(0.0, false, 1.0, false);
  EXPECT_EQ(a.Hull(Interval::Empty()), a);
  EXPECT_EQ(Interval::Empty().Hull(a), a);
}

TEST(Interval, UnionIsExactDetection) {
  Interval a(0.0, false, 2.0, false);
  Interval b(1.0, false, 3.0, false);
  EXPECT_TRUE(a.UnionIsExact(b));  // overlap
  Interval c(2.0, false, 3.0, false);
  EXPECT_TRUE(a.UnionIsExact(c));  // closed touch
  Interval d(2.0, true, 3.0, false);
  EXPECT_TRUE(a.UnionIsExact(d));  // touch included by a
  Interval e(0.0, false, 2.0, true);
  Interval f(2.0, true, 3.0, false);
  EXPECT_FALSE(e.UnionIsExact(f));  // hole at 2.0
  Interval g(5.0, false, 6.0, false);
  EXPECT_FALSE(a.UnionIsExact(g));  // gap
}

TEST(Interval, SelectivityWithinRange) {
  Interval half(0.0, false, 5.0, false);
  EXPECT_NEAR(half.SelectivityWithin(0.0, 10.0), 0.5, 1e-12);
  EXPECT_NEAR(Interval::All().SelectivityWithin(0.0, 10.0), 1.0, 1e-12);
  EXPECT_NEAR(Interval::Empty().SelectivityWithin(0.0, 10.0), 0.0, 1e-12);
  // Outside the range entirely.
  Interval out(20.0, false, 30.0, false);
  EXPECT_NEAR(out.SelectivityWithin(0.0, 10.0), 0.0, 1e-12);
  // Point gets the equality sliver.
  EXPECT_NEAR(Interval::Point(5.0).SelectivityWithin(0.0, 10.0), 0.001,
              1e-12);
}

TEST(Interval, ToStringForms) {
  EXPECT_EQ(Interval(1.0, false, 2.0, true).ToString(), "[1, 2)");
  EXPECT_EQ(Interval::AtLeast(3.0).ToString(), "[3, +inf)");
  EXPECT_EQ(Interval::All().ToString(), "(-inf, +inf)");
}

// ---- randomized properties ----

class IntervalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

Interval RandomInterval(Rng& rng) {
  switch (rng.NextBounded(6)) {
    case 0:
      return Interval::All();
    case 1:
      return Interval::Empty();
    case 2:
      return Interval::Point(rng.NextInt(-5, 5));
    case 3:
      return Interval::AtLeast(rng.NextInt(-5, 5), rng.NextBool());
    case 4:
      return Interval::AtMost(rng.NextInt(-5, 5), rng.NextBool());
    default: {
      double lo = rng.NextInt(-5, 5);
      double hi = rng.NextInt(-5, 5);
      if (hi < lo) std::swap(lo, hi);
      return Interval(lo, rng.NextBool(), hi, rng.NextBool());
    }
  }
}

TEST_P(IntervalPropertyTest, IntersectionIsExactOnSamples) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    Interval a = RandomInterval(rng);
    Interval b = RandomInterval(rng);
    Interval i = a.Intersect(b);
    for (double x = -6.0; x <= 6.0; x += 0.5) {
      EXPECT_EQ(i.Contains(x), a.Contains(x) && b.Contains(x))
          << a.ToString() << " ∩ " << b.ToString() << " at " << x;
    }
  }
}

TEST_P(IntervalPropertyTest, HullCoversBothAndUnion) {
  Rng rng(GetParam() ^ 0xFF);
  for (int iter = 0; iter < 50; ++iter) {
    Interval a = RandomInterval(rng);
    Interval b = RandomInterval(rng);
    Interval h = a.Hull(b);
    EXPECT_TRUE(h.Covers(a));
    EXPECT_TRUE(h.Covers(b));
    for (double x = -6.0; x <= 6.0; x += 0.5) {
      if (a.Contains(x) || b.Contains(x)) {
        EXPECT_TRUE(h.Contains(x));
      }
    }
    if (a.UnionIsExact(b)) {
      // Exact hull adds no new sample points.
      for (double x = -6.0; x <= 6.0; x += 0.5) {
        EXPECT_EQ(h.Contains(x), a.Contains(x) || b.Contains(x))
            << a.ToString() << " u " << b.ToString() << " at " << x;
      }
    }
  }
}

TEST_P(IntervalPropertyTest, CoversAgreesWithSampleMembership) {
  Rng rng(GetParam() ^ 0xABC);
  for (int iter = 0; iter < 50; ++iter) {
    Interval a = RandomInterval(rng);
    Interval b = RandomInterval(rng);
    if (a.Covers(b)) {
      for (double x = -6.0; x <= 6.0; x += 0.25) {
        if (b.Contains(x)) {
          EXPECT_TRUE(a.Contains(x))
              << a.ToString() << " covers " << b.ToString() << " but misses "
              << x;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cosmos
