#include "cbn/matcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "cbn/router.h"
#include "cbn/routing_table.h"
#include "common/random.h"
#include "expr/expression.h"

namespace cosmos {
namespace {

const std::shared_ptr<const Schema>& FullSchema() {
  static const auto& schema = *new std::shared_ptr<const Schema>(
      std::make_shared<Schema>(
          "s", std::vector<AttributeDef>{
                   {"d0", ValueType::kDouble, 0, 10},
                   {"d1", ValueType::kDouble, 0, 10},
                   {"i0", ValueType::kInt64, 0, 5},
                   {"s0", ValueType::kString},
                   {"b0", ValueType::kBool}}));
  return schema;
}

// The same stream after upstream projection dropped d1/s0/b0 — datagrams on
// it exercise the absent-attribute (presence) semantics.
const std::shared_ptr<const Schema>& NarrowSchema() {
  static const auto& schema = *new std::shared_ptr<const Schema>(
      std::make_shared<Schema>(
          "s", std::vector<AttributeDef>{{"d0", ValueType::kDouble, 0, 10},
                                         {"i0", ValueType::kInt64, 0, 5}}));
  return schema;
}

Datagram MakeDatagram(double d0, double d1, int64_t i0,
                      const std::string& s0, bool b0) {
  return Datagram{"s", Tuple(FullSchema(),
                             {Value(d0), Value(d1), Value(i0), Value(s0),
                              Value(b0)},
                             0)};
}

Datagram MakeNarrowDatagram(double d0, int64_t i0) {
  return Datagram{"s", Tuple(NarrowSchema(), {Value(d0), Value(i0)}, 0)};
}

// Reference implementation: the interpreted per-profile walk.
std::vector<uint32_t> InterpretedMatch(
    const std::vector<ProfilePtr>& profiles, const Datagram& d) {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < profiles.size(); ++i) {
    if (profiles[i]->Covers(d)) out.push_back(i);
  }
  return out;
}

std::vector<uint32_t> CompiledMatch(const CompiledMatcher& m,
                                    const Datagram& d) {
  CompiledMatcher::Scratch scratch;
  std::vector<uint32_t> out;
  m.Match(d, &scratch, &out);
  return out;
}

CompiledMatcher Compile(const std::vector<ProfilePtr>& profiles) {
  std::vector<const Profile*> raw;
  raw.reserve(profiles.size());
  for (const auto& p : profiles) raw.push_back(p.get());
  return CompiledMatcher("s", raw);
}

ProfilePtr RangeProfile(double lo, double hi) {
  auto p = std::make_shared<Profile>();
  ConjunctiveClause c;
  c.ConstrainInterval("d0", Interval(lo, false, hi, false));
  p->AddFilter(Filter("s", std::move(c)));
  return p;
}

TEST(CompiledMatcher, EqualityAndRangeTables) {
  std::vector<ProfilePtr> profiles;
  profiles.push_back(RangeProfile(0, 5));  // d0 in [0,5]
  auto eq = std::make_shared<Profile>();
  ConjunctiveClause ec;
  ec.ConstrainEquals("i0", Value(int64_t{3}));  // point interval
  eq->AddFilter(Filter("s", std::move(ec)));
  profiles.push_back(eq);

  CompiledMatcher m = Compile(profiles);
  EXPECT_EQ(m.num_profiles(), 2u);
  EXPECT_EQ(m.num_conjuncts(), 2u);
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(2, 0, 3, "x", true)),
            (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(7, 0, 3, "x", true)),
            (std::vector<uint32_t>{1}));
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(7, 0, 4, "x", true)),
            (std::vector<uint32_t>{}));
}

TEST(CompiledMatcher, DisjunctionMatchesOnAnyConjunct) {
  auto p = std::make_shared<Profile>();
  ConjunctiveClause a;
  a.ConstrainInterval("d0", Interval::AtMost(1));
  p->AddFilter(Filter("s", std::move(a)));
  ConjunctiveClause b;
  b.ConstrainInterval("d0", Interval::AtLeast(9));
  p->AddFilter(Filter("s", std::move(b)));

  CompiledMatcher m = Compile({p});
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(0.5, 0, 0, "x", false)),
            (std::vector<uint32_t>{0}));
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(9.5, 0, 0, "x", false)),
            (std::vector<uint32_t>{0}));
  // Both conjuncts hit: the profile is still reported once.
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(5, 0, 0, "x", false)),
            (std::vector<uint32_t>{}));
}

TEST(CompiledMatcher, UnconditionalAndZeroArityProfiles) {
  auto unconditional = std::make_shared<Profile>();
  unconditional->AddStream("s");
  auto zero_arity = std::make_shared<Profile>();
  // A clause with only a residual: arity 0, gated by the fallback.
  ConjunctiveClause c;
  c.AddResidual(MakeCompare(CompareOp::kGt, MakeColumn("d0"),
                            MakeLiteral(Value(5.0))));
  zero_arity->AddFilter(Filter("s", std::move(c)));

  CompiledMatcher m = Compile({unconditional, zero_arity});
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(7, 0, 0, "x", false)),
            (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(3, 0, 0, "x", false)),
            (std::vector<uint32_t>{0}));
}

TEST(CompiledMatcher, AbsentAttributeFailsEvenWhenUnconstrained) {
  auto p = std::make_shared<Profile>();
  ConjunctiveClause c;
  // Presence-only constraint: All-interval on d1.
  c.ConstrainInterval("d1", Interval::All());
  p->AddFilter(Filter("s", std::move(c)));

  CompiledMatcher m = Compile({p});
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(1, 1, 0, "x", false)),
            (std::vector<uint32_t>{0}));
  // d1 was projected away upstream: the constraint must fail, exactly like
  // MatchesCanonical's resolution failure.
  EXPECT_EQ(CompiledMatch(m, MakeNarrowDatagram(1, 0)),
            (std::vector<uint32_t>{}));
  EXPECT_FALSE(p->Covers(MakeNarrowDatagram(1, 0)));
}

TEST(CompiledMatcher, UnsatisfiableConjunctDroppedWhole) {
  auto p = std::make_shared<Profile>();
  ConjunctiveClause dead;
  dead.ConstrainInterval("d0", Interval::Empty());
  dead.ConstrainInterval("d1", Interval::All());
  p->AddFilter(Filter("s", std::move(dead)));
  ConjunctiveClause live;
  live.ConstrainInterval("d0", Interval::AtLeast(5));
  p->AddFilter(Filter("s", std::move(live)));

  CompiledMatcher m = Compile({p});
  // Only the live conjunct remains; the dead one must not contribute a
  // lowered-arity partial match.
  EXPECT_EQ(m.num_conjuncts(), 1u);
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(7, 1, 0, "x", false)),
            (std::vector<uint32_t>{0}));
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(3, 1, 0, "x", false)),
            (std::vector<uint32_t>{}));
}

TEST(CompiledMatcher, StringAndBoolConstraintsUseMiscTable) {
  auto p = std::make_shared<Profile>();
  ConjunctiveClause c;
  c.ConstrainEquals("s0", Value("x"));
  c.ConstrainNotEquals("s0", Value("y"));
  c.ConstrainEquals("b0", Value(true));
  p->AddFilter(Filter("s", std::move(c)));

  CompiledMatcher m = Compile({p});
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(0, 0, 0, "x", true)),
            (std::vector<uint32_t>{0}));
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(0, 0, 0, "y", true)),
            (std::vector<uint32_t>{}));
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(0, 0, 0, "x", false)),
            (std::vector<uint32_t>{}));
}

TEST(CompiledMatcher, ResidualFallbackOnlyAfterCanonicalPass) {
  auto p = std::make_shared<Profile>();
  ConjunctiveClause c;
  c.ConstrainInterval("d0", Interval::AtLeast(5));
  c.AddResidual(MakeCompare(CompareOp::kLe,
                            MakeArith(ArithOp::kAdd, MakeColumn("d0"),
                                      MakeColumn("d1")),
                            MakeLiteral(Value(12.0))));
  p->AddFilter(Filter("s", std::move(c)));

  CompiledMatcher m = Compile({p});
  CompiledMatcher::Scratch scratch;
  std::vector<uint32_t> out;
  // Canonical stage fails: the residual must not even be evaluated.
  m.Match(MakeDatagram(3, 3, 0, "x", false), &scratch, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(scratch.fallback_evals, 0u);
  // Canonical passes, residual decides.
  m.Match(MakeDatagram(6, 3, 0, "x", false), &scratch, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{0}));
  EXPECT_EQ(scratch.fallback_evals, 1u);
  m.Match(MakeDatagram(6, 9, 0, "x", false), &scratch, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(scratch.fallback_evals, 1u);
}

TEST(CompiledMatcher, NumericNotEqualsStaysExactViaResidual) {
  auto p = std::make_shared<Profile>();
  ConjunctiveClause c;
  c.ConstrainInterval("d0", Interval(0, false, 10, false));
  c.ConstrainNotEquals("d0", Value(5.0));  // lands in the residual
  p->AddFilter(Filter("s", std::move(c)));

  CompiledMatcher m = Compile({p});
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(4, 0, 0, "x", false)),
            (std::vector<uint32_t>{0}));
  EXPECT_EQ(CompiledMatch(m, MakeDatagram(5, 0, 0, "x", false)),
            (std::vector<uint32_t>{}));
}

TEST(CompiledMatcher, BucketInvalidationOnChurn) {
  RoutingTable t;
  t.Add(1, 1, RangeProfile(0, 5));
  const RoutingTable::StreamBucket* bucket = t.BucketFor(1, "s");
  ASSERT_NE(bucket, nullptr);
  EXPECT_FALSE(bucket->has_compiled());
  EXPECT_EQ(bucket->Compiled("s").num_profiles(), 1u);
  EXPECT_TRUE(bucket->has_compiled());

  // Every mutation hook must drop the compiled matcher.
  t.Add(1, 2, RangeProfile(3, 8));
  bucket = t.BucketFor(1, "s");
  ASSERT_NE(bucket, nullptr);
  EXPECT_FALSE(bucket->has_compiled());
  EXPECT_EQ(bucket->Compiled("s").num_profiles(), 2u);

  t.Remove(1, 1);
  bucket = t.BucketFor(1, "s");
  ASSERT_NE(bucket, nullptr);
  EXPECT_FALSE(bucket->has_compiled());
  EXPECT_EQ(bucket->Compiled("s").num_profiles(), 1u);
}

// ---------------------------------------------------------------------------
// Randomized equivalence fuzz: compiled (match set, projection union) must
// equal the interpreted Filter::Covers path on arbitrary profile mixes,
// arbitrary datagrams (including projected schemas), and across churn.
// ---------------------------------------------------------------------------

constexpr double kLevels[] = {0, 1, 2.5, 4, 5, 6.5, 8, 10};
const char* const kStrings[] = {"x", "y", "z"};

Value RandomLevel(Rng& rng) {
  return Value(kLevels[rng.NextBounded(std::size(kLevels))]);
}

ConjunctiveClause RandomClause(Rng& rng) {
  ConjunctiveClause c;
  const int n = static_cast<int>(rng.NextBounded(3)) + 1;
  for (int k = 0; k < n; ++k) {
    switch (rng.NextBounded(7)) {
      case 0: {  // closed/open interval on a double attribute
        double lo = kLevels[rng.NextBounded(std::size(kLevels))];
        double hi = kLevels[rng.NextBounded(std::size(kLevels))];
        if (lo > hi) std::swap(lo, hi);
        c.ConstrainInterval(rng.NextBool() ? "d0" : "d1",
                            Interval(lo, rng.NextBool(), hi, rng.NextBool()));
        break;
      }
      case 1:  // half-open range
        c.ConstrainInterval(rng.NextBool() ? "d0" : "d1",
                            rng.NextBool()
                                ? Interval::AtLeast(rng.NextDouble(0, 10))
                                : Interval::AtMost(rng.NextDouble(0, 10)));
        break;
      case 2:  // numeric point equality (int attribute)
        c.ConstrainEquals("i0", Value(rng.NextInt(0, 5)));
        break;
      case 3:  // string equality / disequality
        if (rng.NextBool()) {
          c.ConstrainEquals("s0",
                            Value(kStrings[rng.NextBounded(3)]));
        } else {
          c.ConstrainNotEquals("s0",
                               Value(kStrings[rng.NextBounded(3)]));
        }
        break;
      case 4:  // bool equality
        c.ConstrainEquals("b0", Value(rng.NextBool()));
        break;
      case 5:  // presence-only constraint
        c.ConstrainInterval(rng.NextBool() ? "d1" : "b0", Interval::All());
        break;
      case 6:  // residual: d0 + d1 <= threshold, or numeric disequality
        if (rng.NextBool()) {
          c.AddResidual(MakeCompare(
              CompareOp::kLe,
              MakeArith(ArithOp::kAdd, MakeColumn("d0"), MakeColumn("d1")),
              MakeLiteral(Value(rng.NextDouble(0, 20)))));
        } else {
          c.ConstrainNotEquals("d0", RandomLevel(rng));
        }
        break;
    }
  }
  return c;
}

ProfilePtr RandomProfile(Rng& rng) {
  auto p = std::make_shared<Profile>();
  if (rng.NextBool(0.3)) {
    // A projection set (must precede AddFilter, which defaults to "all"):
    // exercises the projection-union path downstream.
    std::vector<std::string> proj = {"d0"};
    if (rng.NextBool()) proj.push_back("i0");
    p->AddStream("s", std::move(proj));
  }
  if (rng.NextBool(0.1)) {
    p->AddStream("s");  // unconditional (no filters)
  } else {
    const int filters = static_cast<int>(rng.NextBounded(3)) + 1;
    for (int f = 0; f < filters; ++f) {
      p->AddFilter(Filter("s", RandomClause(rng)));
    }
  }
  return p;
}

Datagram RandomDatagram(Rng& rng) {
  const double d0 = rng.NextBool(0.7)
                        ? kLevels[rng.NextBounded(std::size(kLevels))]
                        : rng.NextDouble(0, 10);
  const double d1 = rng.NextDouble(0, 10);
  const int64_t i0 = rng.NextInt(0, 5);
  if (rng.NextBool(0.15)) return MakeNarrowDatagram(d0, i0);
  return MakeDatagram(d0, d1, i0, kStrings[rng.NextBounded(3)],
                      rng.NextBool());
}

TEST(MatcherFuzz, CompiledEqualsInterpretedAcrossSeeds) {
  Rng root(0xC0DEC0DE);
  for (int trial = 0; trial < 25; ++trial) {
    Rng prof_rng = root.Derive(2 * static_cast<uint64_t>(trial));
    Rng data_rng = root.Derive(2 * static_cast<uint64_t>(trial) + 1);
    std::vector<ProfilePtr> profiles;
    const size_t n = prof_rng.NextBounded(40) + 1;
    for (size_t i = 0; i < n; ++i) profiles.push_back(RandomProfile(prof_rng));

    CompiledMatcher m = Compile(profiles);
    CompiledMatcher::Scratch scratch;
    std::vector<uint32_t> hits;
    for (int k = 0; k < 80; ++k) {
      Datagram d = RandomDatagram(data_rng);
      m.Match(d, &scratch, &hits);
      EXPECT_EQ(hits, InterpretedMatch(profiles, d))
          << "trial " << trial << " datagram " << k << ": "
          << d.tuple.ToString();
    }
  }
}

// Full-router equivalence including the projection union: a compiled and an
// interpreted router share the same table (same ProfilePtrs) and must
// produce identical DecideForward results — including the early-projected
// schema — across Add/Remove/RemoveEverywhere churn.
TEST(MatcherFuzz, RouterForwardEquivalenceUnderChurn) {
  Rng root(0xFACADE);
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng = root.Derive(static_cast<uint64_t>(trial));
    Router compiled(0);
    Router interpreted(0);
    interpreted.set_compiled_matching(false);
    ASSERT_TRUE(compiled.compiled_matching());
    ProjectionCache cache_c, cache_i;
    const NodeId kLink = 1;
    ProfileId next_id = 1;
    std::vector<ProfileId> live;

    auto check_round = [&](int round) {
      for (int k = 0; k < 40; ++k) {
        Datagram d = RandomDatagram(rng);
        std::optional<Datagram> a =
            compiled.DecideForward(d, kLink, /*early_projection=*/true,
                                   cache_c);
        std::optional<Datagram> b =
            interpreted.DecideForward(d, kLink, /*early_projection=*/true,
                                      cache_i);
        ASSERT_EQ(a.has_value(), b.has_value())
            << "trial " << trial << " round " << round;
        if (a.has_value()) {
          EXPECT_EQ(a->stream, b->stream);
          EXPECT_EQ(a->tuple, b->tuple)
              << "projection-union divergence: " << a->tuple.ToString()
              << " vs " << b->tuple.ToString();
        }
      }
    };

    for (int round = 0; round < 4; ++round) {
      const size_t adds = rng.NextBounded(12) + 1;
      for (size_t i = 0; i < adds; ++i) {
        ProfilePtr p = RandomProfile(rng);
        compiled.table().Add(kLink, next_id, p);
        interpreted.table().Add(kLink, next_id, p);
        live.push_back(next_id++);
      }
      if (round > 0 && !live.empty() && rng.NextBool(0.7)) {
        const size_t victim = rng.NextBounded(live.size());
        if (rng.NextBool()) {
          compiled.table().Remove(kLink, live[victim]);
          interpreted.table().Remove(kLink, live[victim]);
        } else {
          compiled.table().RemoveEverywhere(live[victim]);
          interpreted.table().RemoveEverywhere(live[victim]);
        }
        live.erase(live.begin() + static_cast<long>(victim));
      }
      check_round(round);
    }
  }
}

// Local-delivery equivalence: same subscribers on a compiled and an
// interpreted router must fire the same callbacks with the same payloads.
TEST(MatcherFuzz, LocalDeliveryEquivalence) {
  Rng root(0x10CA1);
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng = root.Derive(static_cast<uint64_t>(trial));
    Router compiled(0);
    Router interpreted(0);
    interpreted.set_compiled_matching(false);
    ProjectionCache cache_c, cache_i;
    std::vector<std::string> got_c, got_i;
    const size_t n = rng.NextBounded(12) + 1;
    for (size_t i = 0; i < n; ++i) {
      ProfilePtr p = RandomProfile(rng);
      auto tag = std::to_string(i) + ":";
      compiled.AddLocal(i + 1, p,
                        [&got_c, tag](const std::string&, const Tuple& t) {
                          got_c.push_back(tag + t.ToString());
                        });
      interpreted.AddLocal(i + 1, p,
                           [&got_i, tag](const std::string&, const Tuple& t) {
                             got_i.push_back(tag + t.ToString());
                           });
    }
    for (int k = 0; k < 60; ++k) {
      Datagram d = RandomDatagram(rng);
      const size_t dc = compiled.DeliverLocal(d, cache_c);
      const size_t di = interpreted.DeliverLocal(d, cache_i);
      ASSERT_EQ(dc, di) << "trial " << trial << " datagram " << k;
    }
    EXPECT_EQ(got_c, got_i);
  }
}

}  // namespace
}  // namespace cosmos
