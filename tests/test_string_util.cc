#include "common/string_util.h"

#include <gtest/gtest.h>

namespace cosmos {
namespace {

TEST(StrSplit, BasicSplit) {
  auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrSplit, KeepsEmptyPieces) {
  auto parts = StrSplit(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(StrSplit, EmptyInputYieldsOneEmptyPiece) {
  auto parts = StrSplit("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StrJoin, RoundTripsWithSplit) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(pieces, ", "), "x, y, z");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StripWhitespace, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\nx\r "), "x");
  EXPECT_EQ(StripWhitespace("nowhitespace"), "nowhitespace");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(CaseConversion, ToLowerUpper) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
  EXPECT_EQ(ToLower("123-abc"), "123-abc");
}

TEST(EqualsIgnoreCase, Matches) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "ab"));
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(StartsWith("sensor_01", "sensor"));
  EXPECT_FALSE(StartsWith("sensor", "sensor_01"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith("file.cc", ".h"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(StrFormat, LongOutput) {
  std::string long_str(500, 'a');
  std::string out = StrFormat("[%s]", long_str.c_str());
  EXPECT_EQ(out.size(), 502u);
}

}  // namespace
}  // namespace cosmos
