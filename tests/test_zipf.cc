#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cosmos {
namespace {

TEST(Zipf, PmfSumsToOne) {
  for (double theta : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    ZipfDistribution z(50, theta);
    double total = 0.0;
    for (size_t k = 0; k < z.n(); ++k) total += z.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-9) << "theta=" << theta;
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfDistribution z(10, 0.0);
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(z.pmf(k), 0.1, 1e-12);
  }
}

TEST(Zipf, PmfIsMonotoneDecreasing) {
  ZipfDistribution z(100, 1.5);
  for (size_t k = 1; k < z.n(); ++k) {
    EXPECT_LE(z.pmf(k), z.pmf(k - 1));
  }
}

TEST(Zipf, HeadMassGrowsWithTheta) {
  ZipfDistribution z1(100, 1.0);
  ZipfDistribution z2(100, 2.0);
  EXPECT_GT(z2.pmf(0), z1.pmf(0));
}

TEST(Zipf, PmfMatchesDefinition) {
  const size_t n = 20;
  const double theta = 1.3;
  ZipfDistribution z(n, theta);
  double h = 0.0;
  for (size_t k = 1; k <= n; ++k) h += 1.0 / std::pow(k, theta);
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(z.pmf(k), (1.0 / std::pow(k + 1, theta)) / h, 1e-9);
  }
}

TEST(Zipf, SamplingMatchesPmf) {
  const size_t n = 10;
  ZipfDistribution z(n, 1.0);
  Rng rng(42);
  const int kDraws = 200000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < kDraws; ++i) {
    size_t k = z.Sample(rng);
    ASSERT_LT(k, n);
    ++counts[k];
  }
  for (size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(kDraws), z.pmf(k), 0.01)
        << "rank " << k;
  }
}

TEST(Zipf, SingleElementAlwaysSampled) {
  ZipfDistribution z(1, 1.5);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(z.Sample(rng), 0u);
  }
}

TEST(Zipf, HighSkewConcentratesOnHead) {
  ZipfDistribution z(1000, 2.0);
  Rng rng(9);
  int head = 0;
  const int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (z.Sample(rng) < 10) ++head;
  }
  // With theta=2 over 1000 ranks, >90% of mass is in the first 10 ranks.
  EXPECT_GT(head, kDraws * 85 / 100);
}

}  // namespace
}  // namespace cosmos
