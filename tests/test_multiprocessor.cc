// Multi-processor deployments: several SPE-equipped nodes, queries spread
// by the load-management service, source streams fanning to every
// interested processor, result streams converging on users.

#include <gtest/gtest.h>

#include "core/system.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

// 0-1-2-3-4-5 chain.
DisseminationTree ChainTree(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back(Edge{i, i + 1, 1.0});
  return DisseminationTree::FromEdges(n, edges).value();
}

class MultiProcessorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SensorDatasetOptions sopts;
    sopts.num_stations = 4;
    sopts.duration = 10 * kMinute;
    sensors_ = std::make_unique<SensorDataset>(sopts);
  }

  std::unique_ptr<SensorDataset> sensors_;
};

TEST_F(MultiProcessorTest, RoundRobinSpreadsQueries) {
  SystemOptions options;
  options.distribution = DistributionPolicy::kRoundRobin;
  CosmosSystem system(ChainTree(6), options);
  for (int k = 0; k < 4; ++k) {
    (void)system.RegisterSource(sensors_->SchemaOf(k),
                                sensors_->RatePerStation(), 0);
  }
  ASSERT_TRUE(system.AddProcessor(2).ok());
  ASSERT_TRUE(system.AddProcessor(4).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(system
                    .SubmitQuery("SELECT ambient_temperature FROM sensor_0" +
                                     std::to_string(i % 4),
                                 5, nullptr)
                    .ok());
  }
  EXPECT_EQ(system.processor(2)->num_queries(), 3u);
  EXPECT_EQ(system.processor(4)->num_queries(), 3u);
}

TEST_F(MultiProcessorTest, ResultsFlowFromTheRightProcessor) {
  SystemOptions options;
  options.distribution = DistributionPolicy::kRoundRobin;
  CosmosSystem system(ChainTree(6), options);
  for (int k = 0; k < 4; ++k) {
    (void)system.RegisterSource(sensors_->SchemaOf(k),
                                sensors_->RatePerStation(), 0);
  }
  ASSERT_TRUE(system.AddProcessor(1).ok());
  ASSERT_TRUE(system.AddProcessor(3).ok());
  int hits_a = 0, hits_b = 0;
  ASSERT_TRUE(system
                  .SubmitQuery("SELECT ambient_temperature FROM sensor_00",
                               5,
                               [&](const std::string&, const Tuple&) {
                                 ++hits_a;
                               })
                  .ok());
  ASSERT_TRUE(system
                  .SubmitQuery("SELECT relative_humidity FROM sensor_01", 5,
                               [&](const std::string&, const Tuple&) {
                                 ++hits_b;
                               })
                  .ok());
  auto replay = sensors_->MakeReplay();
  ASSERT_TRUE(system.Replay(*replay).ok());
  EXPECT_EQ(hits_a, 20);
  EXPECT_EQ(hits_b, 20);
  // Both processors actually run one query each.
  EXPECT_EQ(system.processor(1)->num_installed_representatives(), 1u);
  EXPECT_EQ(system.processor(3)->num_installed_representatives(), 1u);
}

TEST_F(MultiProcessorTest, SourceStreamSharedAcrossProcessors) {
  // Two processors both consuming sensor_00: the CBN shares the transfer
  // along the common path from the publisher.
  SystemOptions options;
  options.distribution = DistributionPolicy::kRoundRobin;
  CosmosSystem system(ChainTree(6), options);
  (void)system.RegisterSource(sensors_->SchemaOf(0),
                              sensors_->RatePerStation(), 0);
  ASSERT_TRUE(system.AddProcessor(4).ok());
  ASSERT_TRUE(system.AddProcessor(5).ok());
  int hits = 0;
  ASSERT_TRUE(system
                  .SubmitQuery("SELECT ambient_temperature FROM sensor_00",
                               1,
                               [&](const std::string&, const Tuple&) {
                                 ++hits;
                               })
                  .ok());
  ASSERT_TRUE(system
                  .SubmitQuery("SELECT wind_speed FROM sensor_00", 1,
                               [&](const std::string&, const Tuple&) {
                                 ++hits;
                               })
                  .ok());
  system.network().ResetStats();
  auto gen = sensors_->MakeGenerator(0);
  int published = 0;
  while (auto t = gen->Next()) {
    ASSERT_TRUE(system.PublishSourceTuple("sensor_00", *t).ok());
    ++published;
  }
  EXPECT_EQ(hits, 2 * published);
  // The shared link 0-1 carries each source tuple exactly once even though
  // two processors downstream want it (the CBN shares the transfer); the
  // result streams flow 4->1 and 5->1 and never touch 0-1.
  const auto& stats = system.network().link_stats();
  auto it = stats.find({0, 1});
  ASSERT_NE(it, stats.end());
  EXPECT_EQ(it->second.datagrams, static_cast<uint64_t>(published));
}

TEST_F(MultiProcessorTest, AggregateEndToEndMatchesOracle) {
  CosmosSystem system(ChainTree(3));
  (void)system.RegisterSource(sensors_->SchemaOf(0),
                              sensors_->RatePerStation(), 0);
  ASSERT_TRUE(system.AddProcessor(1).ok());

  std::vector<Tuple> results;
  ASSERT_TRUE(system
                  .SubmitQuery(
                      "SELECT station_id, AVG(ambient_temperature) FROM "
                      "sensor_00 [Range 2 Minute] GROUP BY station_id",
                      2,
                      [&](const std::string&, const Tuple& t) {
                        results.push_back(t);
                      })
                  .ok());

  // Oracle: sliding 2-minute average over the replayed values.
  auto gen = sensors_->MakeGenerator(0);
  std::vector<std::pair<Timestamp, double>> history;
  std::vector<double> expected;
  while (auto t = gen->Next()) {
    double v = t->GetAttribute("ambient_temperature")->AsDouble();
    history.emplace_back(t->timestamp(), v);
    double sum = 0;
    int n = 0;
    for (const auto& [ts, x] : history) {
      if (ts >= t->timestamp() - 2 * kMinute) {
        sum += x;
        ++n;
      }
    }
    expected.push_back(sum / n);
    ASSERT_TRUE(system.PublishSourceTuple("sensor_00", *t).ok());
  }
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < results.size(); ++i) {
    auto avg = results[i].GetAttribute("avg_ambient_temperature");
    ASSERT_TRUE(avg.ok());
    EXPECT_NEAR(avg->AsDouble(), expected[i], 1e-9) << i;
  }
}

}  // namespace
}  // namespace cosmos
