#include "core/rate_estimator.h"

#include <gtest/gtest.h>

#include "core/containment.h"
#include "stream/auction_dataset.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

class RateEstimatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AuctionDataset auctions;
    ASSERT_TRUE(auctions.RegisterAll(catalog_).ok());
    SensorDataset sensors;  // rate 1/30s
    ASSERT_TRUE(sensors.RegisterAll(catalog_).ok());
    ASSERT_TRUE(catalog_.UpdateRate("sensor_00", 10.0).ok());
  }

  AnalyzedQuery Q(const std::string& cql) {
    auto q = ParseAndAnalyze(cql, catalog_, "r");
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  Catalog catalog_;
};

TEST_F(RateEstimatorTest, UnfilteredRateIsStreamRate) {
  RateEstimator est(&catalog_);
  AnalyzedQuery q = Q("SELECT ambient_temperature FROM sensor_00");
  EXPECT_DOUBLE_EQ(est.EstimateTupleRate(q), 10.0);
}

TEST_F(RateEstimatorTest, SelectionScalesRate) {
  RateEstimator est(&catalog_);
  // ambient_temperature range is [-10, 35]; [0, 12.5] is 27.8% of it... use
  // exact halves: hum [0,100], take [0,50].
  AnalyzedQuery q = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= 0 "
      "AND relative_humidity <= 50");
  EXPECT_NEAR(est.EstimateTupleRate(q), 5.0, 1e-9);
}

TEST_F(RateEstimatorTest, TighterSelectionMeansLowerRate) {
  RateEstimator est(&catalog_);
  AnalyzedQuery wide = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity <= "
      "80");
  AnalyzedQuery narrow = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity <= "
      "20");
  EXPECT_GT(est.EstimateTupleRate(wide), est.EstimateTupleRate(narrow));
}

TEST_F(RateEstimatorTest, OutputRateScalesWithRowWidth) {
  RateEstimator est(&catalog_);
  AnalyzedQuery narrow = Q("SELECT ambient_temperature FROM sensor_00");
  AnalyzedQuery wide = Q(
      "SELECT ambient_temperature, relative_humidity, wind_speed FROM "
      "sensor_00");
  EXPECT_GT(est.EstimateOutputRate(wide), est.EstimateOutputRate(narrow));
  EXPECT_DOUBLE_EQ(est.EstimateTupleRate(wide),
                   est.EstimateTupleRate(narrow));
}

TEST_F(RateEstimatorTest, JoinRateGrowsWithWindows) {
  RateEstimator est(&catalog_);
  AnalyzedQuery small = Q(
      "SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, ClosedAuction "
      "[Now] C WHERE O.itemID = C.itemID");
  AnalyzedQuery big = Q(
      "SELECT O.itemID FROM OpenAuction [Range 5 Hour] O, ClosedAuction "
      "[Now] C WHERE O.itemID = C.itemID");
  EXPECT_GT(est.EstimateTupleRate(big), est.EstimateTupleRate(small));
}

TEST_F(RateEstimatorTest, MergeBenefitPositiveForOverlappingQueries) {
  RateEstimator est(&catalog_);
  AnalyzedQuery q1 = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "10 AND relative_humidity <= 60");
  AnalyzedQuery q2 = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "20 AND relative_humidity <= 70");
  // A representative covering [10, 70] is cheaper than both separately.
  AnalyzedQuery rep = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "10 AND relative_humidity <= 70");
  EXPECT_GT(est.MergeBenefit({&q1, &q2}, rep), 0.0);
}

TEST_F(RateEstimatorTest, MergeBenefitNegativeForDisjointQueries) {
  RateEstimator est(&catalog_);
  AnalyzedQuery q1 = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "0 AND relative_humidity <= 10");
  AnalyzedQuery q2 = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "90 AND relative_humidity <= 100");
  AnalyzedQuery hull = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "0 AND relative_humidity <= 100");
  EXPECT_LT(est.MergeBenefit({&q1, &q2}, hull), 1e-9);
}

TEST_F(RateEstimatorTest, FastMergedEstimateTracksExactComposition) {
  RateEstimator est(&catalog_);
  AnalyzedQuery a = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "10 AND relative_humidity <= 60");
  AnalyzedQuery b = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "20 AND relative_humidity <= 70");
  auto align = AlignSources(b, a);
  ASSERT_TRUE(align.has_value());
  double fast = est.EstimateMergedOutputRate(a, b, *align);
  // Exact: hull selects [10,70] = 60% of the range, rate 6 tuples/s; the
  // merged projection carries relative_humidity only.
  AnalyzedQuery exact = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "10 AND relative_humidity <= 70");
  double exact_rate = est.EstimateOutputRate(exact);
  EXPECT_NEAR(fast, exact_rate, exact_rate * 0.05);
}

TEST_F(RateEstimatorTest, UnknownStreamDefaultsGracefully) {
  Catalog empty;
  (void)empty.RegisterStream(std::make_shared<Schema>(
      "T", std::vector<AttributeDef>{{"x", ValueType::kInt64}}));
  RateEstimator est(&empty);
  auto q = ParseAndAnalyze("SELECT x FROM T", empty, "r");
  ASSERT_TRUE(q.ok());
  EXPECT_GT(est.EstimateOutputRate(*q), 0.0);
}

}  // namespace
}  // namespace cosmos
