// Regression tests for the split-expressibility invariant: a group
// representative must project every attribute a member's re-tightening
// profile filters on. (Found by the churn test: a newcomer *contained* by
// the representative, but constraining an attribute the representative
// didn't project, broke user-profile composition.)

#include <gtest/gtest.h>

#include "core/grouping.h"
#include "core/profile_composer.h"
#include "stream/auction_dataset.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

class SplittableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SensorDataset sensors;
    ASSERT_TRUE(sensors.RegisterAll(catalog_).ok());
    AuctionDataset auctions;
    ASSERT_TRUE(auctions.RegisterAll(catalog_).ok());
  }

  AnalyzedQuery Q(const std::string& cql, const std::string& name = "r") {
    auto q = ParseAndAnalyze(cql, catalog_, name);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  Catalog catalog_;
};

TEST_F(SplittableTest, EqualSelectionsAreSplittable) {
  AnalyzedQuery a = Q(
      "SELECT ambient_temperature FROM sensor_00 WHERE solar_radiation >= "
      "0 AND solar_radiation <= 900");
  EXPECT_TRUE(SplittableFrom(a, a));
}

TEST_F(SplittableTest, TighterConstraintOnUnprojectedAttrIsNotSplittable) {
  AnalyzedQuery rep = Q(
      "SELECT ambient_temperature FROM sensor_00 WHERE solar_radiation >= "
      "0 AND solar_radiation <= 1000");
  AnalyzedQuery user = Q(
      "SELECT ambient_temperature FROM sensor_00 WHERE solar_radiation >= "
      "0 AND solar_radiation <= 900");
  ASSERT_TRUE(QueryContains(rep, user));
  EXPECT_FALSE(SplittableFrom(user, rep));
}

TEST_F(SplittableTest, TighterConstraintOnProjectedAttrIsSplittable) {
  AnalyzedQuery rep = Q(
      "SELECT ambient_temperature, solar_radiation FROM sensor_00 WHERE "
      "solar_radiation >= 0 AND solar_radiation <= 1000");
  AnalyzedQuery user = Q(
      "SELECT ambient_temperature FROM sensor_00 WHERE solar_radiation >= "
      "0 AND solar_radiation <= 900");
  EXPECT_TRUE(SplittableFrom(user, rep));
}

TEST_F(SplittableTest, TighterJoinWindowNeedsTimestamps) {
  AnalyzedQuery rep_no_ts = Q(
      "SELECT O.itemID FROM OpenAuction [Range 5 Hour] O, ClosedAuction "
      "[Now] C WHERE O.itemID = C.itemID");
  AnalyzedQuery user = Q(
      "SELECT O.itemID FROM OpenAuction [Range 3 Hour] O, ClosedAuction "
      "[Now] C WHERE O.itemID = C.itemID");
  EXPECT_FALSE(SplittableFrom(user, rep_no_ts));
  AnalyzedQuery rep_ts = Q(
      "SELECT O.itemID, O.timestamp, C.timestamp FROM OpenAuction [Range 5 "
      "Hour] O, ClosedAuction [Now] C WHERE O.itemID = C.itemID");
  EXPECT_TRUE(SplittableFrom(user, rep_ts));
}

TEST_F(SplittableTest, GroupingRecomposesForContainedButUnsplittableQuery) {
  GroupingEngine engine(&catalog_);
  // Two identical wide queries establish a representative that does not
  // project solar_radiation (no re-filtering needed among them).
  (void)engine.AddQuery(
      "w1", Q("SELECT ambient_temperature FROM sensor_00 WHERE "
              "solar_radiation >= 0 AND solar_radiation <= 1000"));
  (void)engine.AddQuery(
      "w2", Q("SELECT ambient_temperature FROM sensor_00 WHERE "
              "solar_radiation >= 0 AND solar_radiation <= 1000"));
  const QueryGroup* g = engine.GroupOf("w1");
  ASSERT_NE(g, nullptr);
  EXPECT_FALSE(
      g->representative.output_schema()->HasAttribute("solar_radiation"));

  // A tighter query joins: contained, but needs solar_radiation on the
  // wire to split. The engine must recompose (version bump) and the new
  // representative must project it.
  auto result = engine.AddQuery(
      "narrow", Q("SELECT ambient_temperature FROM sensor_00 WHERE "
                  "solar_radiation >= 0 AND solar_radiation <= 900"));
  ASSERT_TRUE(result.ok());
  if (!result->created_new_group) {
    EXPECT_TRUE(result->representative_changed);
    g = engine.GroupOf("narrow");
    ASSERT_NE(g, nullptr);
    EXPECT_TRUE(
        g->representative.output_schema()->HasAttribute("solar_radiation"));
    // And the user profile now composes.
    auto profile =
        ComposeUserProfile(g->members.back(), g->representative);
    EXPECT_TRUE(profile.ok()) << profile.status().ToString();
  }
}

TEST_F(SplittableTest, EveryGroupMemberProfileComposes) {
  // Invariant check over a random-ish workload: for every member of every
  // group, the re-tightening profile must compose without error.
  GroupingEngine engine(&catalog_);
  const char* queries[] = {
      "SELECT ambient_temperature FROM sensor_00 WHERE solar_radiation >= "
      "0 AND solar_radiation <= 1000",
      "SELECT ambient_temperature FROM sensor_00 WHERE solar_radiation >= "
      "100 AND solar_radiation <= 900",
      "SELECT ambient_temperature FROM sensor_00",
      "SELECT ambient_temperature, wind_speed FROM sensor_00 WHERE "
      "wind_speed >= 0 AND wind_speed <= 10",
      "SELECT ambient_temperature FROM sensor_00 WHERE wind_speed >= 2 AND "
      "wind_speed <= 8",
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "20 AND relative_humidity <= 60",
  };
  int i = 0;
  for (const char* cql : queries) {
    ASSERT_TRUE(
        engine.AddQuery("q" + std::to_string(i++), Q(cql)).ok());
  }
  for (const auto& [gid, group] : engine.groups()) {
    for (const auto& m : group.members) {
      EXPECT_TRUE(SplittableFrom(m, group.representative));
      auto profile = ComposeUserProfile(m, group.representative);
      EXPECT_TRUE(profile.ok()) << profile.status().ToString();
    }
  }
}

}  // namespace
}  // namespace cosmos
