#include "overlay/optimizer.h"

#include <gtest/gtest.h>

#include "overlay/spanning_tree.h"
#include "overlay/topology.h"

namespace cosmos {
namespace {

TEST(OverlayOptimizer, EdgeTrafficFollowsPaths) {
  // Chain 0-1-2-3 with one flow 0 -> 3.
  Graph g(4);
  (void)g.AddEdge(0, 1, 1.0);
  (void)g.AddEdge(1, 2, 1.0);
  (void)g.AddEdge(2, 3, 1.0);
  auto tree = DisseminationTree::FromEdges(
      4, {Edge{0, 1, 1}, Edge{1, 2, 1}, Edge{2, 3, 1}});
  ASSERT_TRUE(tree.ok());
  OverlayOptimizer opt(g);
  std::vector<Flow> flows = {{0, 3, 100.0}};
  auto traffic = opt.EdgeTraffic(*tree, flows);
  EXPECT_DOUBLE_EQ((traffic[{0, 1}]), 100.0);
  EXPECT_DOUBLE_EQ((traffic[{1, 2}]), 100.0);
  EXPECT_DOUBLE_EQ((traffic[{2, 3}]), 100.0);
}

TEST(OverlayOptimizer, FlowsAccumulatePerLink) {
  Graph g(3);
  (void)g.AddEdge(0, 1, 1.0);
  (void)g.AddEdge(1, 2, 1.0);
  auto tree =
      DisseminationTree::FromEdges(3, {Edge{0, 1, 1}, Edge{1, 2, 1}});
  OverlayOptimizer opt(g);
  std::vector<Flow> flows = {{0, 2, 10.0}, {1, 2, 5.0}};
  auto traffic = opt.EdgeTraffic(*tree, flows);
  EXPECT_DOUBLE_EQ((traffic[{0, 1}]), 10.0);
  EXPECT_DOUBLE_EQ((traffic[{1, 2}]), 15.0);
}

TEST(OverlayOptimizer, SwapMovesHotFlowOffSlowLink) {
  // Square: 0-1 cheap, 1-2 cheap, 0-3 cheap, 2-3 expensive; tree uses the
  // expensive edge for a hot 0->2 flow. The optimizer should swap in 1-2.
  Graph g(4);
  (void)g.AddEdge(0, 1, 1.0);
  (void)g.AddEdge(1, 2, 1.0);
  (void)g.AddEdge(0, 3, 1.0);
  (void)g.AddEdge(2, 3, 100.0);
  auto tree = DisseminationTree::FromEdges(
      4, {Edge{0, 1, 1.0}, Edge{0, 3, 1.0}, Edge{2, 3, 100.0}});
  ASSERT_TRUE(tree.ok());
  OverlayOptimizer opt(g);
  std::vector<Flow> flows = {{0, 2, 1000.0}};
  OverlayOptimizer::Stats stats;
  auto improved = opt.Optimize(*tree, flows, &stats);
  ASSERT_TRUE(improved.ok());
  EXPECT_GE(stats.swaps_applied, 1);
  EXPECT_LT(stats.final_cost, stats.initial_cost);
  EXPECT_TRUE(improved->HasEdge(1, 2));
  EXPECT_FALSE(improved->HasEdge(2, 3));
}

TEST(OverlayOptimizer, ResultIsAlwaysASpanningTree) {
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 40;
  topo_opts.ba_edges_per_node = 3;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  Rng rng(8);
  auto tree = DisseminationTree::FromEdges(
      40, *RandomSpanningTree(topo.graph, rng));
  ASSERT_TRUE(tree.ok());
  std::vector<Flow> flows;
  for (int i = 0; i < 30; ++i) {
    flows.push_back({static_cast<NodeId>(rng.NextBounded(40)),
                     static_cast<NodeId>(rng.NextBounded(40)),
                     rng.NextDouble(1, 100)});
  }
  OverlayOptimizer opt(topo.graph);
  auto improved = opt.Optimize(*tree, flows);
  ASSERT_TRUE(improved.ok());
  EXPECT_EQ(improved->num_nodes(), 40);
  EXPECT_EQ(improved->edges().size(), 39u);
  // Every tree edge must exist in the overlay.
  for (const auto& e : improved->edges()) {
    EXPECT_TRUE(topo.graph.HasEdge(e.u, e.v));
  }
}

TEST(OverlayOptimizer, NeverIncreasesCost) {
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 30;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  Rng rng(12);
  std::vector<Flow> flows;
  for (int i = 0; i < 20; ++i) {
    flows.push_back({static_cast<NodeId>(rng.NextBounded(30)),
                     static_cast<NodeId>(rng.NextBounded(30)),
                     rng.NextDouble(1, 100)});
  }
  OverlayOptimizer opt(topo.graph);
  auto tree = DisseminationTree::FromEdges(
      30, *RandomSpanningTree(topo.graph, rng));
  double before = opt.TreeCost(*tree, flows);
  auto improved = opt.Optimize(*tree, flows);
  ASSERT_TRUE(improved.ok());
  EXPECT_LE(opt.TreeCost(*improved, flows), before + 1e-9);
}

TEST(OverlayOptimizer, RespectsDegreeConstraint) {
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 30;
  topo_opts.ba_edges_per_node = 4;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  Rng rng(21);
  OptimizerOptions oopts;
  oopts.max_degree = 3;
  OverlayOptimizer opt(topo.graph, oopts);
  auto mst_edges = MinimumSpanningTree(topo.graph);
  auto tree = DisseminationTree::FromEdges(30, *mst_edges);
  ASSERT_TRUE(tree.ok());
  // MST may violate the degree bound already; the optimizer must not make
  // any node exceed it through its own swaps beyond the starting tree.
  int start_max = 0;
  for (NodeId v = 0; v < 30; ++v) {
    start_max = std::max(start_max, tree->Degree(v));
  }
  std::vector<Flow> flows;
  for (int i = 0; i < 15; ++i) {
    flows.push_back({static_cast<NodeId>(rng.NextBounded(30)),
                     static_cast<NodeId>(rng.NextBounded(30)),
                     rng.NextDouble(1, 50)});
  }
  auto improved = opt.Optimize(*tree, flows);
  ASSERT_TRUE(improved.ok());
  for (NodeId v = 0; v < 30; ++v) {
    EXPECT_LE(improved->Degree(v), std::max(start_max, oopts.max_degree));
  }
}

TEST(OverlayOptimizer, CustomCostFunction) {
  Graph g(3);
  (void)g.AddEdge(0, 1, 1.0);
  (void)g.AddEdge(1, 2, 1.0);
  (void)g.AddEdge(0, 2, 1.0);
  OptimizerOptions oopts;
  // Hop-count cost: every edge costs 1 regardless of traffic.
  oopts.edge_cost = [](const Edge&, double) { return 1.0; };
  OverlayOptimizer opt(g, oopts);
  auto tree =
      DisseminationTree::FromEdges(3, {Edge{0, 1, 1}, Edge{1, 2, 1}});
  EXPECT_DOUBLE_EQ(opt.TreeCost(*tree, {}), 2.0);
}

}  // namespace
}  // namespace cosmos
