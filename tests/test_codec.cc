#include "cbn/codec.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

TEST(Codec, PrimitivesRoundTrip) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU16(0x1234);
  enc.PutU32(0xDEADBEEF);
  enc.PutI64(-42);
  enc.PutF64(3.14159);
  enc.PutString("hello");
  auto bytes = enc.Take();

  Decoder dec(bytes);
  EXPECT_EQ(*dec.GetU8(), 0xAB);
  EXPECT_EQ(*dec.GetU16(), 0x1234);
  EXPECT_EQ(*dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*dec.GetI64(), -42);
  EXPECT_DOUBLE_EQ(*dec.GetF64(), 3.14159);
  EXPECT_EQ(*dec.GetString(), "hello");
  EXPECT_TRUE(dec.AtEnd());
}

TEST(Codec, DecodePastEndFails) {
  std::vector<uint8_t> bytes = {1, 2};
  Decoder dec(bytes);
  EXPECT_TRUE(dec.GetU16().ok());
  EXPECT_EQ(dec.GetU8().status().code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(dec.GetI64().ok());
}

TEST(Codec, ExtremeValues) {
  Encoder enc;
  enc.PutI64(std::numeric_limits<int64_t>::min());
  enc.PutI64(std::numeric_limits<int64_t>::max());
  enc.PutF64(-0.0);
  enc.PutF64(std::numeric_limits<double>::infinity());
  enc.PutString("");
  auto bytes = enc.Take();
  Decoder dec(bytes);
  EXPECT_EQ(*dec.GetI64(), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(*dec.GetI64(), std::numeric_limits<int64_t>::max());
  EXPECT_DOUBLE_EQ(*dec.GetF64(), -0.0);
  EXPECT_DOUBLE_EQ(*dec.GetF64(),
                   std::numeric_limits<double>::infinity());
  EXPECT_EQ(*dec.GetString(), "");
}

Datagram SampleDatagram() {
  auto schema = std::make_shared<Schema>(
      "stream_x", std::vector<AttributeDef>{
                      {"i", ValueType::kInt64},
                      {"d", ValueType::kDouble},
                      {"s", ValueType::kString},
                      {"b", ValueType::kBool},
                      {"n", ValueType::kNull},
                  });
  return Datagram{"stream_x",
                  Tuple(schema,
                        {Value(int64_t{-7}), Value(2.5), Value("payload"),
                         Value(true), Value()},
                        123456789)};
}

TEST(Codec, DatagramRoundTrip) {
  Datagram original = SampleDatagram();
  auto bytes = EncodeDatagram(original);
  auto decoded = DecodeDatagram(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->stream, "stream_x");
  EXPECT_EQ(decoded->tuple.timestamp(), 123456789);
  ASSERT_EQ(decoded->tuple.num_values(), 5u);
  EXPECT_EQ(decoded->tuple.GetAttribute("i")->AsInt64(), -7);
  EXPECT_DOUBLE_EQ(decoded->tuple.GetAttribute("d")->AsDouble(), 2.5);
  EXPECT_EQ(decoded->tuple.GetAttribute("s")->AsString(), "payload");
  EXPECT_TRUE(decoded->tuple.GetAttribute("b")->AsBool());
  EXPECT_TRUE(decoded->tuple.GetAttribute("n")->is_null());
}

TEST(Codec, TruncatedDatagramFails) {
  auto bytes = EncodeDatagram(SampleDatagram());
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{3}}) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeDatagram(truncated).ok()) << "cut at " << cut;
  }
}

TEST(Codec, TrailingBytesFail) {
  auto bytes = EncodeDatagram(SampleDatagram());
  bytes.push_back(0);
  EXPECT_FALSE(DecodeDatagram(bytes).ok());
}

TEST(Codec, SensorTuplesRoundTripExactly) {
  SensorDatasetOptions opts;
  opts.duration = 5 * kMinute;
  SensorDataset sensors(opts);
  auto gen = sensors.MakeGenerator(7);
  int n = 0;
  while (auto t = gen->Next()) {
    Datagram d{"sensor_07", *t};
    auto decoded = DecodeDatagram(EncodeDatagram(d));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->tuple.values(), t->values());
    EXPECT_EQ(decoded->tuple.timestamp(), t->timestamp());
    ++n;
  }
  EXPECT_GT(n, 0);
}

}  // namespace
}  // namespace cosmos
