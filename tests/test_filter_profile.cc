#include <gtest/gtest.h>

#include "cbn/profile.h"
#include "query/parser.h"

namespace cosmos {
namespace {

std::shared_ptr<const Schema> SensorSchema() {
  return std::make_shared<Schema>(
      "sensor", std::vector<AttributeDef>{
                    {"temp", ValueType::kDouble, -10, 40},
                    {"hum", ValueType::kDouble, 0, 100},
                    {"timestamp", ValueType::kInt64},
                });
}

Datagram MakeDatagram(const std::string& stream, double temp, double hum,
                      Timestamp ts = 0) {
  auto schema = SensorSchema();
  return Datagram{stream,
                  Tuple(schema, {Value(temp), Value(hum),
                                 Value(static_cast<int64_t>(ts))},
                        ts)};
}

ConjunctiveClause Clause(const std::string& text) {
  auto c = ClauseFromExpr(*ParseExpression(text));
  EXPECT_TRUE(c.ok());
  return *c;
}

TEST(Filter, CoversRequiresStreamAndConstraints) {
  Filter f("sensor", Clause("temp >= 10 AND temp <= 20"));
  EXPECT_TRUE(f.Covers(MakeDatagram("sensor", 15, 50)));
  EXPECT_FALSE(f.Covers(MakeDatagram("sensor", 25, 50)));
  EXPECT_FALSE(f.Covers(MakeDatagram("other", 15, 50)));
}

TEST(Filter, ResidualConjunctsAreEvaluated) {
  Filter f("sensor", Clause("temp - hum <= 0"));
  EXPECT_TRUE(f.Covers(MakeDatagram("sensor", 10, 50)));
  EXPECT_FALSE(f.Covers(MakeDatagram("sensor", 30, 20)));
}

TEST(Filter, ResidualOnMissingAttributeFailsClosed) {
  Filter f("sensor", Clause("nonexistent > 1"));
  EXPECT_FALSE(f.Covers(MakeDatagram("sensor", 10, 50)));
}

TEST(Filter, ReferencedAttributesIncludeResidualColumns) {
  Filter f("sensor", Clause("temp >= 10 AND temp - hum <= 0"));
  auto attrs = f.ReferencedAttributes();
  EXPECT_EQ(attrs.size(), 2u);
}

TEST(Profile, EmptyProfileCoversNothing) {
  Profile p;
  EXPECT_FALSE(p.Covers(MakeDatagram("sensor", 10, 10)));
}

TEST(Profile, StreamWithoutFilterIsUnconditional) {
  Profile p;
  p.AddStream("sensor");
  EXPECT_TRUE(p.Covers(MakeDatagram("sensor", 99, 99)));
  EXPECT_FALSE(p.Covers(MakeDatagram("other", 1, 1)));
}

TEST(Profile, FilterDisjunction) {
  Profile p;
  p.AddFilter(Filter("sensor", Clause("temp < 0")));
  p.AddFilter(Filter("sensor", Clause("temp > 30")));
  EXPECT_TRUE(p.Covers(MakeDatagram("sensor", -5, 0)));
  EXPECT_TRUE(p.Covers(MakeDatagram("sensor", 35, 0)));
  EXPECT_FALSE(p.Covers(MakeDatagram("sensor", 15, 0)));
}

TEST(Profile, AddFilterRegistersStream) {
  Profile p;
  p.AddFilter(Filter("sensor", Clause("temp > 0")));
  EXPECT_TRUE(p.WantsStream("sensor"));
  EXPECT_EQ(p.streams().size(), 1u);
}

TEST(Profile, ProjectionDefaultsToAll) {
  Profile p;
  p.AddStream("sensor");
  EXPECT_TRUE(p.ProjectionOf("sensor").empty());
}

TEST(Profile, ProjectionUnionAcrossAddStream) {
  Profile p;
  p.AddStream("sensor", {"temp"});
  p.AddStream("sensor", {"hum"});
  auto proj = p.ProjectionOf("sensor");
  EXPECT_EQ(proj.size(), 2u);
}

TEST(Profile, AllAttributesDominatesUnion) {
  Profile p;
  p.AddStream("sensor", {});  // all
  p.AddStream("sensor", {"temp"});
  EXPECT_TRUE(p.ProjectionOf("sensor").empty());
}

TEST(Profile, RequiredAttributesIncludeFilterColumns) {
  Profile p;
  p.AddStream("sensor", {"hum"});
  p.AddFilter(Filter("sensor", Clause("temp > 10")));
  auto req = p.RequiredAttributes("sensor");
  ASSERT_EQ(req.size(), 2u);  // hum + temp
}

TEST(Profile, RequiredAttributesAllWhenProjectionAll) {
  Profile p;
  p.AddStream("sensor");
  p.AddFilter(Filter("sensor", Clause("temp > 10")));
  EXPECT_TRUE(p.RequiredAttributes("sensor").empty());
}

TEST(Profile, FiltersOfSelectsByStream) {
  Profile p;
  p.AddFilter(Filter("a", Clause("temp > 1")));
  p.AddFilter(Filter("b", Clause("temp > 2")));
  p.AddFilter(Filter("a", Clause("temp > 3")));
  EXPECT_EQ(p.FiltersOf("a").size(), 2u);
  EXPECT_EQ(p.FiltersOf("b").size(), 1u);
  EXPECT_TRUE(p.FiltersOf("c").empty());
}

TEST(Datagram, SerializedSizeIncludesStreamHeader) {
  Datagram d = MakeDatagram("sensor", 1, 2);
  // 2 + 6 (name) + tuple(8 ts + 8 + 8 + 8)
  EXPECT_EQ(d.SerializedSize(), 2u + 6u + 32u);
}

}  // namespace
}  // namespace cosmos
