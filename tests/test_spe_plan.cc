#include "spe/plan.h"

#include <gtest/gtest.h>

#include "spe/wrapper.h"
#include "stream/auction_dataset.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AuctionDataset auctions;
    ASSERT_TRUE(auctions.RegisterAll(catalog_).ok());
    SensorDataset sensors;
    ASSERT_TRUE(sensors.RegisterAll(catalog_).ok());
  }

  std::unique_ptr<QueryPlan> MustBuild(const std::string& cql) {
    auto analyzed = ParseAndAnalyze(cql, catalog_, "r");
    EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
    auto plan = QueryPlan::Build(*analyzed);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(*plan);
  }

  Tuple Open(int64_t item, int64_t seller, double price, Timestamp ts) {
    return Tuple(AuctionDataset::OpenAuctionSchema(),
                 {Value(item), Value(seller), Value(price),
                  Value(static_cast<int64_t>(ts))},
                 ts);
  }
  Tuple Closed(int64_t item, int64_t buyer, Timestamp ts) {
    return Tuple(AuctionDataset::ClosedAuctionSchema(),
                 {Value(item), Value(buyer), Value(static_cast<int64_t>(ts))},
                 ts);
  }

  Catalog catalog_;
};

TEST_F(PlanTest, SelectProjectPipeline) {
  auto plan = MustBuild(
      "SELECT itemID, start_price FROM OpenAuction [Range 1 Hour] WHERE "
      "start_price > 100");
  std::vector<Tuple> out;
  plan->SetSink([&](const Tuple& t) { out.push_back(t); });
  plan->Push("OpenAuction", Open(1, 2, 50.0, 0));
  plan->Push("OpenAuction", Open(2, 2, 150.0, 1));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].num_values(), 2u);
  EXPECT_EQ(out[0].GetAttribute("itemID")->AsInt64(), 2);
  EXPECT_EQ(plan->tuples_in(), 2u);
  EXPECT_EQ(plan->tuples_out(), 1u);
}

TEST_F(PlanTest, IgnoresForeignStreams) {
  auto plan = MustBuild("SELECT itemID FROM OpenAuction");
  int n = 0;
  plan->SetSink([&](const Tuple&) { ++n; });
  plan->Push("ClosedAuction", Closed(1, 1, 0));
  EXPECT_EQ(n, 0);
  EXPECT_EQ(plan->tuples_in(), 0u);
}

TEST_F(PlanTest, InputSchemasAreProjected) {
  auto plan = MustBuild(
      "SELECT itemID FROM OpenAuction WHERE start_price > 10");
  ASSERT_EQ(plan->input_schemas().size(), 1u);
  // Referenced: itemID + start_price (not sellerID/timestamp).
  EXPECT_EQ(plan->input_schemas()[0]->num_attributes(), 2u);
}

TEST_F(PlanTest, AcceptsProjectedInputTuples) {
  // The CBN delivers pre-projected tuples; the plan must cope.
  auto plan = MustBuild(
      "SELECT itemID FROM OpenAuction WHERE start_price > 10");
  auto projected_schema = std::make_shared<Schema>(
      "OpenAuction", std::vector<AttributeDef>{
                         {"itemID", ValueType::kInt64},
                         {"start_price", ValueType::kDouble}});
  int n = 0;
  plan->SetSink([&](const Tuple&) { ++n; });
  plan->Push("OpenAuction",
             Tuple(projected_schema, {Value(int64_t{5}), Value(20.0)}, 0));
  EXPECT_EQ(n, 1);
}

TEST_F(PlanTest, JoinPlanProducesQualifiedOutputs) {
  auto plan = MustBuild(
      "SELECT O.itemID, C.buyerID FROM OpenAuction [Range 3 Hour] O, "
      "ClosedAuction [Now] C WHERE O.itemID = C.itemID");
  std::vector<Tuple> out;
  plan->SetSink([&](const Tuple& t) { out.push_back(t); });
  Timestamp t0 = 0;
  plan->Push("OpenAuction", Open(1, 10, 100, t0));
  plan->Push("ClosedAuction", Closed(1, 42, t0 + kHour));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].GetAttribute("O.itemID")->AsInt64(), 1);
  EXPECT_EQ(out[0].GetAttribute("C.buyerID")->AsInt64(), 42);
}

TEST_F(PlanTest, JoinRespectsWindows) {
  auto plan = MustBuild(
      "SELECT O.itemID FROM OpenAuction [Range 3 Hour] O, ClosedAuction "
      "[Now] C WHERE O.itemID = C.itemID");
  int n = 0;
  plan->SetSink([&](const Tuple&) { ++n; });
  plan->Push("OpenAuction", Open(1, 1, 1, 0));
  plan->Push("ClosedAuction", Closed(1, 1, 2 * kHour));  // within 3h
  EXPECT_EQ(n, 1);
  plan->Push("OpenAuction", Open(2, 1, 1, 3 * kHour));
  plan->Push("ClosedAuction", Closed(2, 1, 7 * kHour));  // 4h later: out
  EXPECT_EQ(n, 1);
}

TEST_F(PlanTest, AggregatePlan) {
  auto plan = MustBuild(
      "SELECT station_id, COUNT(*) FROM sensor_00 [Range 1 Hour] GROUP BY "
      "station_id");
  std::vector<Tuple> out;
  plan->SetSink([&](const Tuple& t) { out.push_back(t); });
  SensorDataset sensors;
  auto gen = sensors.MakeGenerator(0);
  int pushed = 0;
  while (auto t = gen->Next()) {
    plan->Push("sensor_00", *t);
    ++pushed;
    if (pushed >= 5) break;
  }
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.back().value(1).AsInt64(), 5);
}

TEST_F(PlanTest, ThreeWayJoinBuildsAndRuns) {
  // Correlate open/closed auctions with a sensor reading in the same
  // instant ([Now] windows all around except the auction window).
  auto analyzed = ParseAndAnalyze(
      "SELECT O.itemID, C.buyerID, S.station_id FROM OpenAuction [Range 3 "
      "Hour] O, ClosedAuction [Now] C, sensor_00 [Now] S "
      "WHERE O.itemID = C.itemID",
      catalog_, "r");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  auto plan = QueryPlan::Build(*analyzed);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::vector<Tuple> out;
  (*plan)->SetSink([&](const Tuple& t) { out.push_back(t); });

  SensorDataset sensors;
  auto sensor_schema = sensors.SchemaOf(0);
  auto sensor_tuple = [&](Timestamp ts) {
    std::vector<Value> values;
    for (const auto& def : sensor_schema->attributes()) {
      if (def.type == ValueType::kInt64) {
        values.emplace_back(int64_t{0});
      } else {
        values.emplace_back(1.0);
      }
    }
    return Tuple(sensor_schema, std::move(values), ts);
  };

  Timestamp t0 = kHour;
  (*plan)->Push("OpenAuction", Open(1, 1, 10, t0));
  (*plan)->Push("sensor_00", sensor_tuple(t0 + kHour));
  (*plan)->Push("ClosedAuction", Closed(1, 2, t0 + kHour));  // same instant
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].GetAttribute("O.itemID")->AsInt64(), 1);
  EXPECT_EQ(out[0].GetAttribute("C.buyerID")->AsInt64(), 2);
  EXPECT_EQ(out[0].GetAttribute("S.station_id")->AsInt64(), 0);
}

TEST_F(PlanTest, NineWayJoinRejected) {
  Catalog c;
  std::string from;
  for (int i = 0; i < 9; ++i) {
    std::string name = "t" + std::to_string(i);
    (void)c.RegisterStream(std::make_shared<Schema>(
        name, std::vector<AttributeDef>{{"k", ValueType::kInt64}}));
    if (i > 0) from += ", ";
    from += name;
  }
  auto analyzed =
      ParseAndAnalyze("SELECT t0.k FROM " + from, c, "r");
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ(QueryPlan::Build(*analyzed).status().code(),
            StatusCode::kUnimplemented);
}

TEST_F(PlanTest, JoinAggregateUnimplemented) {
  auto analyzed = ParseAndAnalyze(
      "SELECT COUNT(*) FROM OpenAuction O, ClosedAuction C "
      "WHERE O.itemID = C.itemID GROUP BY O.sellerID",
      catalog_, "r");
  // Analyzer accepts it; plan builder rejects it.
  if (analyzed.ok()) {
    auto plan = QueryPlan::Build(*analyzed);
    EXPECT_EQ(plan.status().code(), StatusCode::kUnimplemented);
  }
}

TEST_F(PlanTest, SelfJoinSameStreamFeedsBothPorts) {
  auto analyzed = ParseAndAnalyze(
      "SELECT A.itemID FROM OpenAuction A, OpenAuction B "
      "WHERE A.itemID = B.itemID",
      catalog_, "r");
  ASSERT_TRUE(analyzed.ok());
  auto plan = QueryPlan::Build(*analyzed);
  ASSERT_TRUE(plan.ok());
  int n = 0;
  (*plan)->SetSink([&](const Tuple&) { ++n; });
  (*plan)->Push("OpenAuction", Open(1, 1, 1, 0));
  // The single tuple entered both ports and joins with itself.
  EXPECT_GE(n, 1);
}

TEST_F(PlanTest, EngineFansOutToAllConsumingPlans) {
  SpeEngine engine;
  auto q1 = ParseAndAnalyze("SELECT itemID FROM OpenAuction", catalog_, "r1");
  auto q2 = ParseAndAnalyze(
      "SELECT itemID FROM OpenAuction WHERE start_price > 100", catalog_,
      "r2");
  ASSERT_TRUE(q1.ok() && q2.ok());
  std::map<std::string, int> results;
  auto sink = [&](const std::string& id, const Tuple&) { ++results[id]; };
  ASSERT_TRUE(engine.InstallQuery("q1", *q1, sink).ok());
  ASSERT_TRUE(engine.InstallQuery("q2", *q2, sink).ok());
  EXPECT_EQ(engine.num_queries(), 2u);
  engine.PushSourceTuple("OpenAuction", Open(1, 1, 50, 0));
  engine.PushSourceTuple("OpenAuction", Open(2, 1, 150, 1));
  EXPECT_EQ(results["q1"], 2);
  EXPECT_EQ(results["q2"], 1);
  EXPECT_EQ(engine.results_emitted(), 3u);
}

TEST_F(PlanTest, EngineRemoveQueryStopsResults) {
  SpeEngine engine;
  auto q = ParseAndAnalyze("SELECT itemID FROM OpenAuction", catalog_, "r");
  int n = 0;
  ASSERT_TRUE(engine
                  .InstallQuery("q", *q,
                                [&](const std::string&, const Tuple&) { ++n; })
                  .ok());
  ASSERT_TRUE(engine.RemoveQuery("q").ok());
  EXPECT_EQ(engine.RemoveQuery("q").code(), StatusCode::kNotFound);
  engine.PushSourceTuple("OpenAuction", Open(1, 1, 1, 0));
  EXPECT_EQ(n, 0);
}

TEST_F(PlanTest, EngineDuplicateIdRejected) {
  SpeEngine engine;
  auto q = ParseAndAnalyze("SELECT itemID FROM OpenAuction", catalog_, "r");
  ASSERT_TRUE(engine.InstallQuery("q", *q, nullptr).ok());
  EXPECT_EQ(engine.InstallQuery("q", *q, nullptr).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(PlanTest, WrapperInstallsFromCqlText) {
  NativeSpeWrapper wrapper(&catalog_);
  int n = 0;
  ASSERT_TRUE(wrapper
                  .InstallQuery("w1",
                                "SELECT itemID FROM OpenAuction WHERE "
                                "start_price > 10",
                                "res_w1",
                                [&](const std::string&, const Tuple&) { ++n; })
                  .ok());
  auto schema = wrapper.ResultSchema("w1");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->stream_name(), "res_w1");
  wrapper.DeliverTuple("OpenAuction", Open(1, 1, 50, 0));
  EXPECT_EQ(n, 1);
  EXPECT_EQ(wrapper.ResultSchema("nope"), nullptr);
}

TEST_F(PlanTest, WrapperRejectsBadCql) {
  NativeSpeWrapper wrapper(&catalog_);
  EXPECT_FALSE(wrapper.InstallQuery("w", "SELECT FROM", "r", nullptr).ok());
}

}  // namespace
}  // namespace cosmos
