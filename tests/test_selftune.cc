// System-level self-tuning (the "Self-tuning" in COSMOS) and fault
// tolerance through the CosmosSystem façade.

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "core/self_tuner.h"
#include "core/system.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "sim/simulator.h"
#include "stream/sensor_dataset.h"
#include "telemetry/registry.h"

namespace cosmos {
namespace {

class SelfTuneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TopologyOptions opts;
    opts.num_nodes = 20;
    opts.ba_edges_per_node = 3;
    opts.seed = 77;
    topo_ = GenerateBarabasiAlbert(opts);
  }

  Topology topo_;
};

TEST_F(SelfTuneTest, RequiresOverlay) {
  auto tree = DisseminationTree::FromEdges(
                  20, *MinimumSpanningTree(topo_.graph))
                  .value();
  CosmosSystem system(std::move(tree));
  EXPECT_EQ(system.SelfTune().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(system.RepairLinks().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SelfTuneTest, CollectFlowsCoversSourcesAndUsers) {
  auto tree = DisseminationTree::FromEdges(
                  20, *MinimumSpanningTree(topo_.graph))
                  .value();
  CosmosSystem system(std::move(tree));
  SensorDataset sensors;
  (void)system.RegisterSource(sensors.SchemaOf(0), 2.0, /*publisher=*/5);
  ASSERT_TRUE(system.AddProcessor(3).ok());
  ASSERT_TRUE(system
                  .SubmitQuery("SELECT ambient_temperature FROM sensor_00",
                               /*user=*/9, nullptr)
                  .ok());
  auto flows = system.CollectFlows();
  ASSERT_EQ(flows.size(), 2u);
  // Source flow 5 -> 3 and result flow 3 -> 9.
  bool source_flow = false, result_flow = false;
  for (const auto& f : flows) {
    if (f.source == 5 && f.sink == 3) source_flow = true;
    if (f.source == 3 && f.sink == 9) result_flow = true;
    EXPECT_GT(f.rate_bps, 0.0);
  }
  EXPECT_TRUE(source_flow);
  EXPECT_TRUE(result_flow);
}

TEST_F(SelfTuneTest, SelfTuneNeverHurtsAndKeepsDelivering) {
  // Start from a random (bad) spanning tree so the optimizer has work.
  Rng rng(3);
  auto bad = DisseminationTree::FromEdges(
                 20, *RandomSpanningTree(topo_.graph, rng))
                 .value();
  CosmosSystem system(std::move(bad));
  system.SetOverlay(topo_.graph);
  SensorDatasetOptions sopts;
  sopts.num_stations = 4;
  sopts.duration = 10 * kMinute;
  SensorDataset sensors(sopts);
  for (int k = 0; k < 4; ++k) {
    (void)system.RegisterSource(sensors.SchemaOf(k),
                                sensors.RatePerStation(), k * 3);
  }
  ASSERT_TRUE(system.AddProcessor(1).ok());
  int hits = 0;
  ASSERT_TRUE(system
                  .SubmitQuery("SELECT ambient_temperature FROM sensor_02",
                               /*user=*/19,
                               [&](const std::string&, const Tuple&) {
                                 ++hits;
                               })
                  .ok());

  auto stats = system.SelfTune();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_LE(stats->final_cost, stats->initial_cost);

  // The rebuilt network still routes results end-to-end.
  auto replay = sensors.MakeReplay();
  ASSERT_TRUE(system.Replay(*replay).ok());
  EXPECT_EQ(hits, 20);
}

TEST_F(SelfTuneTest, SelfTunerClosesTheLoopOnMeasuredRates) {
  // A random (bad) tree, and a catalog whose rate estimates invert
  // reality: the hottest stream is registered as the slowest.
  Rng rng(3);
  auto bad = DisseminationTree::FromEdges(
                 20, *RandomSpanningTree(topo_.graph, rng))
                 .value();
  MetricsRegistry metrics;
  SystemOptions options;
  options.metrics = &metrics;
  CosmosSystem system(std::move(bad), options);
  system.SetOverlay(topo_.graph);

  SensorDatasetOptions sopts;
  sopts.num_stations = 4;
  SensorDataset sensors(sopts);
  const double kClaimedRate[] = {0.01, 0.1, 1.0, 4.0};
  const NodeId kPublisher[] = {2, 6, 11, 17};
  for (int k = 0; k < 4; ++k) {
    ASSERT_TRUE(system
                    .RegisterSource(sensors.SchemaOf(k), kClaimedRate[k],
                                    kPublisher[k])
                    .ok());
  }
  ASSERT_TRUE(system.AddProcessor(1).ok());
  int hits = 0;
  for (int k = 0; k < 4; ++k) {
    ASSERT_TRUE(
        system
            .SubmitQuery(StrFormat(
                             "SELECT ambient_temperature FROM sensor_%02d",
                             k),
                         /*user=*/19 - k,
                         [&](const std::string&, const Tuple&) { ++hits; })
            .ok());
  }

  // Real traffic is Zipf-skewed the *other* way: stream k carries
  // 240/(k+1) tuples over one minute, so sensor_00 is the hot stream.
  const size_t num_measurements =
      SensorDataset::MeasurementAttributes().size();
  auto publish_one = [&](int k, Timestamp ts) {
    std::vector<Value> values;
    values.emplace_back(static_cast<int64_t>(k));
    for (size_t m = 0; m < num_measurements; ++m) values.emplace_back(10.0);
    values.emplace_back(static_cast<int64_t>(ts));
    ASSERT_TRUE(system
                    .PublishSourceTuple(
                        SensorDataset::StreamName(k),
                        Tuple(sensors.SchemaOf(k), std::move(values), ts))
                    .ok());
  };
  for (int k = 0; k < 4; ++k) {
    int count = 240 / (k + 1);
    for (int i = 0; i < count; ++i) {
      publish_one(k, static_cast<Timestamp>(i) * kMinute / count);
    }
  }
  EXPECT_GT(hits, 0);

  SelfTuner tuner(&system);
  auto round = tuner.RunOnce(kMinute);
  ASSERT_TRUE(round.ok()) << round.status().ToString();

  // (a) The drift was detected and the catalog recalibrated: estimates now
  //     match the observed Zipf reality, not the registration-time claims.
  EXPECT_GT(round->max_drift, 1.0);
  EXPECT_EQ(round->streams_recalibrated, 4u);
  EXPECT_NEAR(system.catalog().Lookup("sensor_00")->rate_tuples_per_sec,
              4.0, 0.5);
  EXPECT_NEAR(system.catalog().Lookup("sensor_03")->rate_tuples_per_sec,
              1.0, 0.3);

  // (b) Flows came from measured bytes, (c) the optimizer found a cheaper
  //     tree for the real load and applied it.
  EXPECT_GT(round->flows, 0u);
  EXPECT_TRUE(round->tree_changed);
  EXPECT_LT(round->cost_after, round->cost_before);

  // (d) The loop recorded its own actions as telemetry.
  EXPECT_EQ(metrics.FindCounter("selftune.runs")->value(), 1u);
  EXPECT_EQ(metrics.FindCounter("selftune.recalibrations")->value(), 4u);
  EXPECT_GT(metrics.FindCounter("selftune.tree_changes")->value(), 0u);
  EXPECT_GT(metrics.FindGauge("selftune.max_drift")->value(), 1.0);
  EXPECT_LT(metrics.FindGauge("selftune.cost_after")->value(),
            metrics.FindGauge("selftune.cost_before")->value());

  // The rebuilt network still routes end-to-end.
  int before = hits;
  publish_one(0, kMinute + kSecond);
  EXPECT_EQ(hits, before + 1);
}

TEST_F(SelfTuneTest, SelfTunerRunsPeriodicallyOnTheSimulator) {
  auto tree = DisseminationTree::FromEdges(
                  20, *MinimumSpanningTree(topo_.graph))
                  .value();
  Simulator sim;
  CosmosSystem system(std::move(tree), SystemOptions{}, &sim);
  system.SetOverlay(topo_.graph);
  SelfTunerOptions topts;
  topts.period = 10 * kSecond;
  SelfTuner tuner(&system, topts);
  tuner.Start();
  EXPECT_TRUE(tuner.running());
  sim.RunUntil(35 * kSecond);
  EXPECT_EQ(tuner.rounds_run(), 3u);
  // Stop cancels the pending round; virtual time marching on runs nothing.
  tuner.Stop();
  sim.RunUntil(2 * kMinute);
  EXPECT_EQ(tuner.rounds_run(), 3u);
}

TEST_F(SelfTuneTest, FailAndRepairThroughSystem) {
  auto mst = DisseminationTree::FromEdges(
                 20, *MinimumSpanningTree(topo_.graph))
                 .value();
  Edge victim = mst.edges()[2];
  CosmosSystem system(std::move(mst));
  system.SetOverlay(topo_.graph);
  SensorDatasetOptions sopts;
  sopts.num_stations = 2;
  sopts.duration = 5 * kMinute;
  SensorDataset sensors(sopts);
  for (int k = 0; k < 2; ++k) {
    (void)system.RegisterSource(sensors.SchemaOf(k),
                                sensors.RatePerStation(), k);
  }
  ASSERT_TRUE(system.AddProcessor(4).ok());
  int hits = 0;
  ASSERT_TRUE(system
                  .SubmitQuery("SELECT ambient_temperature FROM sensor_01",
                               /*user=*/15,
                               [&](const std::string&, const Tuple&) {
                                 ++hits;
                               })
                  .ok());
  ASSERT_TRUE(system.FailLink(victim.u, victim.v).ok());
  auto replay = sensors.MakeReplay();
  ASSERT_TRUE(system.Replay(*replay).ok());
  ASSERT_TRUE(system.RepairLinks().ok());
  // Whatever was cut off arrives after the repair; total deliveries equal
  // the full replay volume.
  EXPECT_EQ(hits, 10);
}

}  // namespace
}  // namespace cosmos
