// System-level self-tuning (the "Self-tuning" in COSMOS) and fault
// tolerance through the CosmosSystem façade.

#include <gtest/gtest.h>

#include "core/system.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

class SelfTuneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TopologyOptions opts;
    opts.num_nodes = 20;
    opts.ba_edges_per_node = 3;
    opts.seed = 77;
    topo_ = GenerateBarabasiAlbert(opts);
  }

  Topology topo_;
};

TEST_F(SelfTuneTest, RequiresOverlay) {
  auto tree = DisseminationTree::FromEdges(
                  20, *MinimumSpanningTree(topo_.graph))
                  .value();
  CosmosSystem system(std::move(tree));
  EXPECT_EQ(system.SelfTune().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(system.RepairLinks().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SelfTuneTest, CollectFlowsCoversSourcesAndUsers) {
  auto tree = DisseminationTree::FromEdges(
                  20, *MinimumSpanningTree(topo_.graph))
                  .value();
  CosmosSystem system(std::move(tree));
  SensorDataset sensors;
  (void)system.RegisterSource(sensors.SchemaOf(0), 2.0, /*publisher=*/5);
  ASSERT_TRUE(system.AddProcessor(3).ok());
  ASSERT_TRUE(system
                  .SubmitQuery("SELECT ambient_temperature FROM sensor_00",
                               /*user=*/9, nullptr)
                  .ok());
  auto flows = system.CollectFlows();
  ASSERT_EQ(flows.size(), 2u);
  // Source flow 5 -> 3 and result flow 3 -> 9.
  bool source_flow = false, result_flow = false;
  for (const auto& f : flows) {
    if (f.source == 5 && f.sink == 3) source_flow = true;
    if (f.source == 3 && f.sink == 9) result_flow = true;
    EXPECT_GT(f.rate_bps, 0.0);
  }
  EXPECT_TRUE(source_flow);
  EXPECT_TRUE(result_flow);
}

TEST_F(SelfTuneTest, SelfTuneNeverHurtsAndKeepsDelivering) {
  // Start from a random (bad) spanning tree so the optimizer has work.
  Rng rng(3);
  auto bad = DisseminationTree::FromEdges(
                 20, *RandomSpanningTree(topo_.graph, rng))
                 .value();
  CosmosSystem system(std::move(bad));
  system.SetOverlay(topo_.graph);
  SensorDatasetOptions sopts;
  sopts.num_stations = 4;
  sopts.duration = 10 * kMinute;
  SensorDataset sensors(sopts);
  for (int k = 0; k < 4; ++k) {
    (void)system.RegisterSource(sensors.SchemaOf(k),
                                sensors.RatePerStation(), k * 3);
  }
  ASSERT_TRUE(system.AddProcessor(1).ok());
  int hits = 0;
  ASSERT_TRUE(system
                  .SubmitQuery("SELECT ambient_temperature FROM sensor_02",
                               /*user=*/19,
                               [&](const std::string&, const Tuple&) {
                                 ++hits;
                               })
                  .ok());

  auto stats = system.SelfTune();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_LE(stats->final_cost, stats->initial_cost);

  // The rebuilt network still routes results end-to-end.
  auto replay = sensors.MakeReplay();
  ASSERT_TRUE(system.Replay(*replay).ok());
  EXPECT_EQ(hits, 20);
}

TEST_F(SelfTuneTest, FailAndRepairThroughSystem) {
  auto mst = DisseminationTree::FromEdges(
                 20, *MinimumSpanningTree(topo_.graph))
                 .value();
  Edge victim = mst.edges()[2];
  CosmosSystem system(std::move(mst));
  system.SetOverlay(topo_.graph);
  SensorDatasetOptions sopts;
  sopts.num_stations = 2;
  sopts.duration = 5 * kMinute;
  SensorDataset sensors(sopts);
  for (int k = 0; k < 2; ++k) {
    (void)system.RegisterSource(sensors.SchemaOf(k),
                                sensors.RatePerStation(), k);
  }
  ASSERT_TRUE(system.AddProcessor(4).ok());
  int hits = 0;
  ASSERT_TRUE(system
                  .SubmitQuery("SELECT ambient_temperature FROM sensor_01",
                               /*user=*/15,
                               [&](const std::string&, const Tuple&) {
                                 ++hits;
                               })
                  .ok());
  ASSERT_TRUE(system.FailLink(victim.u, victim.v).ok());
  auto replay = sensors.MakeReplay();
  ASSERT_TRUE(system.Replay(*replay).ok());
  ASSERT_TRUE(system.RepairLinks().ok());
  // Whatever was cut off arrives after the repair; total deliveries equal
  // the full replay volume.
  EXPECT_EQ(hits, 10);
}

}  // namespace
}  // namespace cosmos
