// Property: for any workload-generated query, analyze -> Unparse ->
// re-analyze yields a semantically equal query (mutual containment). This
// is the exact path representative queries take into the pluggable SPE
// wrapper, so it must hold for everything the system can generate.

#include <gtest/gtest.h>

#include "core/containment.h"
#include "core/merger.h"
#include "core/workload.h"
#include "query/parser.h"
#include "query/unparser.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

class RoundTripPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    SensorDataset sensors;
    ASSERT_TRUE(sensors.RegisterAll(catalog_).ok());
  }
  Catalog catalog_;
};

TEST_P(RoundTripPropertyTest, WorkloadQueriesRoundTrip) {
  WorkloadOptions wl;
  wl.zipf_theta = 1.0;
  wl.seed = GetParam();
  wl.aggregate_fraction = 0.2;
  wl.join_fraction = 0.1;
  QueryWorkloadGenerator gen(&catalog_, wl);
  for (int i = 0; i < 100; ++i) {
    std::string cql = gen.NextCql();
    auto q1 = ParseAndAnalyze(cql, catalog_, "r");
    ASSERT_TRUE(q1.ok()) << cql;
    std::string text = Unparse(*q1);
    auto q2 = ParseAndAnalyze(text, catalog_, "r");
    ASSERT_TRUE(q2.ok()) << "unparse broke: " << text;
    EXPECT_TRUE(QueryContains(*q1, *q2) && QueryContains(*q2, *q1))
        << "original: " << cql << "\nunparsed: " << text;
  }
}

TEST_P(RoundTripPropertyTest, PairwiseMergesRoundTripThroughCql) {
  WorkloadOptions wl;
  wl.zipf_theta = 2.0;  // heavy overlap => many mergeable pairs
  wl.seed = GetParam() ^ 0x99;
  QueryWorkloadGenerator gen(&catalog_, wl);
  std::vector<AnalyzedQuery> queries;
  for (int i = 0; i < 40; ++i) {
    auto q = ParseAndAnalyze(gen.NextCql(), catalog_, "r" + std::to_string(i));
    ASSERT_TRUE(q.ok());
    queries.push_back(std::move(*q));
  }
  int merged = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = i + 1; j < queries.size() && merged < 25; ++j) {
      if (!MergeCompatible(queries[i], queries[j])) continue;
      auto rep =
          ComposeRepresentative({&queries[i], &queries[j]}, catalog_, "rep");
      if (!rep.ok()) continue;
      ++merged;
      // The representative survives the CQL wrapper boundary.
      auto reparsed = ParseAndAnalyze(Unparse(*rep), catalog_, "rep");
      ASSERT_TRUE(reparsed.ok()) << Unparse(*rep);
      EXPECT_TRUE(QueryContains(*reparsed, queries[i]));
      EXPECT_TRUE(QueryContains(*reparsed, queries[j]));
    }
  }
  EXPECT_GT(merged, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripPropertyTest,
                         ::testing::Values(10, 20, 30, 40));

TEST(ParserRobustness, DeepNestingAndLongConjunctions) {
  // 40 nested parens.
  std::string nested = "SELECT a FROM S WHERE ";
  for (int i = 0; i < 40; ++i) nested += "(";
  nested += "a > 1";
  for (int i = 0; i < 40; ++i) nested += ")";
  EXPECT_TRUE(ParseQuery(nested).ok());

  // 200-term conjunction.
  std::string conj = "SELECT a FROM S WHERE a > 0";
  for (int i = 1; i < 200; ++i) {
    conj += " AND a > " + std::to_string(-i);
  }
  auto q = ParseQuery(conj);
  ASSERT_TRUE(q.ok());
  // Flattened into one AND with 200 children.
  ASSERT_EQ(q->where->kind(), ExprKind::kLogical);
  EXPECT_EQ(static_cast<const LogicalExpr&>(*q->where).children().size(),
            200u);
}

TEST(ParserRobustness, WhitespaceAndCaseChaos) {
  auto q = ParseQuery(
      "  sElEcT\n\ta ,\tb  FROM\n  S  [ rAnGe 3 hOuR ]\nWHERE a>1 AND b<2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select.size(), 2u);
  EXPECT_EQ(q->from[0].window.size, 3 * kHour);
}

TEST(ParserRobustness, VeryLongIdentifiers) {
  std::string name(200, 'x');
  auto q = ParseQuery("SELECT " + name + " FROM " + name);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->from[0].stream, name);
}

}  // namespace
}  // namespace cosmos
