#include "common/status.h"

#include <gtest/gtest.h>

namespace cosmos {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "invalid argument: bad thing");
}

TEST(Status, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

// GCC 12 raises a -Wmaybe-uninitialized false positive when it inlines the
// Status alternative's string members out of a variant it can prove holds
// the int alternative (GCC bug 105562).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}
#pragma GCC diagnostic pop

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(Result, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  COSMOS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(Result, AssignOrReturnPropagatesError) {
  int out = 0;
  Status s = UseAssignOrReturn(-1, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 0);
}

TEST(Result, AssignOrReturnAssignsValue) {
  int out = 0;
  Status s = UseAssignOrReturn(21, &out);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(out, 42);
}

Status UseReturnIfError(bool fail) {
  COSMOS_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(Result, ReturnIfError) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
}

TEST(Result, AccessingErrorValueDies) {
  Result<int> r = Status::Internal("nope");
  EXPECT_DEATH({ (void)r.value(); }, "Result accessed");
}

}  // namespace
}  // namespace cosmos
