#include <gtest/gtest.h>

#include "query/parser.h"
#include "spe/operator.h"
#include "spe/window.h"

namespace cosmos {
namespace {

std::shared_ptr<const Schema> ABSchema() {
  return std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"a", ValueType::kInt64},
                                     {"b", ValueType::kDouble}});
}

Tuple MakeTuple(int64_t a, double b, Timestamp ts = 0) {
  return Tuple(ABSchema(), {Value(a), Value(b)}, ts);
}

TEST(SelectOperator, FiltersByPredicate) {
  SelectOperator op(*ParseExpression("a >= 5"));
  std::vector<Tuple> out;
  op.SetSink([&](const Tuple& t) { out.push_back(t); });
  for (int i = 0; i < 10; ++i) op.Push(0, MakeTuple(i, 0.0));
  EXPECT_EQ(out.size(), 5u);
}

TEST(SelectOperator, NullPredicatePassesAll) {
  SelectOperator op(nullptr);
  int n = 0;
  op.SetSink([&](const Tuple&) { ++n; });
  op.Push(0, MakeTuple(1, 1.0));
  op.Push(0, MakeTuple(2, 2.0));
  EXPECT_EQ(n, 2);
}

TEST(SelectOperator, RebindsPerInputSchema) {
  // Same logical predicate evaluated against two physically different
  // schemas (different attribute positions).
  SelectOperator op(*ParseExpression("a >= 5"));
  int n = 0;
  op.SetSink([&](const Tuple&) { ++n; });
  op.Push(0, MakeTuple(7, 0.0));
  auto flipped = std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"b", ValueType::kDouble},
                                     {"a", ValueType::kInt64}});
  op.Push(0, Tuple(flipped, {Value(0.0), Value(int64_t{9})}, 0));
  EXPECT_EQ(n, 2);
}

TEST(SelectOperator, UnbindableSchemaDropsTuples) {
  SelectOperator op(*ParseExpression("missing >= 5"));
  int n = 0;
  op.SetSink([&](const Tuple&) { ++n; });
  op.Push(0, MakeTuple(7, 0.0));
  EXPECT_EQ(n, 0);
}

TEST(AdaptOperator, ReordersAndDropsExtras) {
  auto target = std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"b", ValueType::kDouble}});
  AdaptOperator op(target);
  std::vector<Tuple> out;
  op.SetSink([&](const Tuple& t) { out.push_back(t); });
  op.Push(0, MakeTuple(1, 2.5, 42));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].num_values(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value(0).AsDouble(), 2.5);
  EXPECT_EQ(out[0].timestamp(), 42);
}

TEST(AdaptOperator, DropsTuplesMissingTargetAttributes) {
  auto target = std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"z", ValueType::kInt64}});
  AdaptOperator op(target);
  int n = 0;
  op.SetSink([&](const Tuple&) { ++n; });
  op.Push(0, MakeTuple(1, 1.0));
  EXPECT_EQ(n, 0);
}

TEST(ProjectOperator, MapsIndexes) {
  auto out_schema = std::make_shared<Schema>(
      "out", std::vector<AttributeDef>{{"renamed", ValueType::kInt64}});
  ProjectOperator op({0}, out_schema);
  std::vector<Tuple> out;
  op.SetSink([&](const Tuple& t) { out.push_back(t); });
  op.Push(0, MakeTuple(9, 1.0, 5));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema()->attribute(0).name, "renamed");
  EXPECT_EQ(out[0].value(0).AsInt64(), 9);
}

TEST(WindowBuffer, EvictsExpired) {
  WindowBuffer w(10);
  w.Insert(MakeTuple(1, 0, 0));
  w.Insert(MakeTuple(2, 0, 5));
  w.Insert(MakeTuple(3, 0, 10));
  std::vector<Tuple> evicted;
  // At now=12, cutoff = 2: tuple at ts=0 leaves.
  EXPECT_EQ(w.EvictExpired(12, &evicted), 1u);
  EXPECT_EQ(w.count(), 2u);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].timestamp(), 0);
}

TEST(WindowBuffer, BoundaryTupleStays) {
  WindowBuffer w(10);
  w.Insert(MakeTuple(1, 0, 0));
  // cutoff = now - T = 0: ts=0 is still inside [now-T, now].
  EXPECT_EQ(w.EvictExpired(10, nullptr), 0u);
  EXPECT_EQ(w.EvictExpired(11, nullptr), 1u);
}

TEST(WindowBuffer, UnboundedNeverEvicts) {
  WindowBuffer w(kInfiniteDuration);
  for (int i = 0; i < 100; ++i) w.Insert(MakeTuple(i, 0, i));
  EXPECT_EQ(w.EvictExpired(1'000'000'000, nullptr), 0u);
  EXPECT_EQ(w.count(), 100u);
}

TEST(WindowBuffer, NowWindowKeepsOnlyCurrentInstant) {
  WindowBuffer w(0);
  w.Insert(MakeTuple(1, 0, 5));
  EXPECT_EQ(w.EvictExpired(5, nullptr), 0u);  // same instant survives
  EXPECT_EQ(w.EvictExpired(6, nullptr), 1u);
}

}  // namespace
}  // namespace cosmos
