#include <gtest/gtest.h>

#include "expr/evaluator.h"
#include "expr/expression.h"

namespace cosmos {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  return std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{
               {"a", ValueType::kInt64, 0, 100},
               {"b", ValueType::kDouble, -10, 10},
               {"name", ValueType::kString},
           });
}

Tuple MakeTuple(int64_t a, double b, const std::string& name,
                Timestamp ts = 0) {
  return Tuple(TestSchema(), {Value(a), Value(b), Value(name)}, ts);
}

TEST(Expression, LiteralEval) {
  auto t = MakeTuple(1, 2.0, "x");
  auto v = EvalExpr(MakeLiteral(Value(int64_t{5})), t);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 5);
}

TEST(Expression, ColumnEval) {
  auto t = MakeTuple(7, 2.5, "x");
  auto v = EvalExpr(MakeColumn("b"), t);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 2.5);
  EXPECT_FALSE(EvalExpr(MakeColumn("zzz"), t).ok());
}

TEST(Expression, QualifiedColumnResolvesThroughStreamName) {
  auto t = MakeTuple(7, 2.5, "x");
  auto v = EvalExpr(MakeColumn("S", "a"), t);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 7);
  EXPECT_FALSE(EvalExpr(MakeColumn("T", "a"), t).ok());
}

TEST(Expression, ComparisonOps) {
  auto t = MakeTuple(5, 1.0, "x");
  auto col = MakeColumn("a");
  auto lit = MakeLiteral(Value(int64_t{5}));
  struct Case {
    CompareOp op;
    bool expected;
  } cases[] = {
      {CompareOp::kEq, true}, {CompareOp::kNe, false},
      {CompareOp::kLt, false}, {CompareOp::kLe, true},
      {CompareOp::kGt, false}, {CompareOp::kGe, true},
  };
  for (const auto& c : cases) {
    auto r = EvalPredicate(MakeCompare(c.op, col, lit), t);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, c.expected) << CompareOpToString(c.op);
  }
}

TEST(Expression, MixedNumericComparison) {
  auto t = MakeTuple(5, 4.5, "x");
  auto r = EvalPredicate(
      MakeCompare(CompareOp::kGt, MakeColumn("a"), MakeColumn("b")), t);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(Expression, EqualityToleratesTypeMismatch) {
  auto t = MakeTuple(5, 1.0, "x");
  auto r = EvalPredicate(MakeCompare(CompareOp::kEq, MakeColumn("name"),
                                     MakeLiteral(Value(int64_t{5}))),
                         t);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  r = EvalPredicate(MakeCompare(CompareOp::kNe, MakeColumn("name"),
                                MakeLiteral(Value(int64_t{5}))),
                    t);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(Expression, OrderedStringComparisonErrors) {
  auto t = MakeTuple(5, 1.0, "x");
  auto r = EvalPredicate(MakeCompare(CompareOp::kLt, MakeColumn("name"),
                                     MakeLiteral(Value(int64_t{5}))),
                         t);
  EXPECT_FALSE(r.ok());
}

TEST(Expression, LogicalShortCircuitSemantics) {
  auto t = MakeTuple(5, 1.0, "x");
  auto true_cmp = MakeCompare(CompareOp::kEq, MakeColumn("a"),
                              MakeLiteral(Value(int64_t{5})));
  auto false_cmp = MakeCompare(CompareOp::kEq, MakeColumn("a"),
                               MakeLiteral(Value(int64_t{6})));
  EXPECT_TRUE(*EvalPredicate(MakeAnd({true_cmp, true_cmp}), t));
  EXPECT_FALSE(*EvalPredicate(MakeAnd({true_cmp, false_cmp}), t));
  EXPECT_TRUE(*EvalPredicate(MakeOr({false_cmp, true_cmp}), t));
  EXPECT_FALSE(*EvalPredicate(MakeOr({false_cmp, false_cmp}), t));
  EXPECT_FALSE(*EvalPredicate(MakeNot(true_cmp), t));
  EXPECT_TRUE(*EvalPredicate(MakeNot(false_cmp), t));
}

TEST(Expression, ArithmeticInt64PreservesIntegers) {
  auto t = MakeTuple(10, 1.0, "x");
  auto v = EvalExpr(MakeArith(ArithOp::kSub, MakeColumn("a"),
                              MakeLiteral(Value(int64_t{3}))),
                    t);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type(), ValueType::kInt64);
  EXPECT_EQ(v->AsInt64(), 7);
}

TEST(Expression, ArithmeticMixedWidensToDouble) {
  auto t = MakeTuple(10, 0.5, "x");
  auto v = EvalExpr(MakeArith(ArithOp::kMul, MakeColumn("a"),
                              MakeColumn("b")),
                    t);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v->AsDouble(), 5.0);
}

TEST(Expression, DivisionByZeroErrors) {
  auto t = MakeTuple(10, 0.0, "x");
  EXPECT_FALSE(EvalExpr(MakeArith(ArithOp::kDiv, MakeColumn("a"),
                                  MakeLiteral(Value(int64_t{0}))),
                        t)
                   .ok());
  EXPECT_FALSE(
      EvalExpr(MakeArith(ArithOp::kDiv, MakeColumn("a"), MakeColumn("b")), t)
          .ok());
}

TEST(Expression, ArithmeticOnStringErrors) {
  auto t = MakeTuple(10, 1.0, "x");
  EXPECT_FALSE(EvalExpr(MakeArith(ArithOp::kAdd, MakeColumn("name"),
                                  MakeLiteral(Value(int64_t{1}))),
                        t)
                   .ok());
}

TEST(Expression, NullPredicateIsTrue) {
  auto t = MakeTuple(1, 1.0, "x");
  auto r = EvalPredicate(nullptr, t);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(Expression, MakeAndFlattens) {
  auto a = MakeCompare(CompareOp::kEq, MakeColumn("a"),
                       MakeLiteral(Value(int64_t{1})));
  auto inner = MakeAnd({a, a});
  auto outer = MakeAnd({inner, a});
  ASSERT_EQ(outer->kind(), ExprKind::kLogical);
  EXPECT_EQ(static_cast<const LogicalExpr&>(*outer).children().size(), 3u);
}

TEST(Expression, MakeAndSingleChildCollapses) {
  auto a = MakeCompare(CompareOp::kEq, MakeColumn("a"),
                       MakeLiteral(Value(int64_t{1})));
  EXPECT_EQ(MakeAnd({a}).get(), a.get());
}

TEST(Expression, ConjoinNullable) {
  auto a = MakeCompare(CompareOp::kEq, MakeColumn("a"),
                       MakeLiteral(Value(int64_t{1})));
  EXPECT_EQ(ConjoinNullable(nullptr, a).get(), a.get());
  EXPECT_EQ(ConjoinNullable(a, nullptr).get(), a.get());
  auto both = ConjoinNullable(a, a);
  EXPECT_EQ(both->kind(), ExprKind::kLogical);
}

TEST(Expression, StructuralEquality) {
  auto e1 = MakeCompare(CompareOp::kLt, MakeColumn("O", "ts"),
                        MakeLiteral(Value(int64_t{5})));
  auto e2 = MakeCompare(CompareOp::kLt, MakeColumn("O", "ts"),
                        MakeLiteral(Value(int64_t{5})));
  auto e3 = MakeCompare(CompareOp::kLe, MakeColumn("O", "ts"),
                        MakeLiteral(Value(int64_t{5})));
  EXPECT_TRUE(e1->Equals(*e2));
  EXPECT_FALSE(e1->Equals(*e3));
}

TEST(Expression, CollectColumnsFindsAll) {
  auto e = MakeAnd(
      {MakeCompare(CompareOp::kEq, MakeColumn("O", "id"),
                   MakeColumn("C", "id")),
       MakeCompare(CompareOp::kGt,
                   MakeArith(ArithOp::kSub, MakeColumn("O", "ts"),
                             MakeColumn("C", "ts")),
                   MakeLiteral(Value(int64_t{0})))});
  std::vector<const ColumnRefExpr*> cols;
  CollectColumns(e, &cols);
  EXPECT_EQ(cols.size(), 4u);
}

TEST(Expression, ToStringReadable) {
  auto e = MakeCompare(CompareOp::kGe, MakeColumn("O", "price"),
                       MakeLiteral(Value(10.0)));
  EXPECT_EQ(e->ToString(), "O.price >= 10");
}

TEST(BoundPredicate, MatchesSameAsTreeWalk) {
  auto schema = TestSchema();
  auto e = MakeAnd({MakeCompare(CompareOp::kGe, MakeColumn("a"),
                                MakeLiteral(Value(int64_t{3}))),
                    MakeCompare(CompareOp::kLt, MakeColumn("b"),
                                MakeLiteral(Value(5.0)))});
  auto bound = BoundPredicate::Bind(e, *schema);
  ASSERT_TRUE(bound.ok());
  for (int a = 0; a < 8; ++a) {
    for (double b = -8; b < 8; b += 1.5) {
      Tuple t = MakeTuple(a, b, "x");
      auto walked = EvalPredicate(e, t);
      ASSERT_TRUE(walked.ok());
      EXPECT_EQ(bound->Matches(t), *walked) << a << " " << b;
    }
  }
}

TEST(BoundPredicate, BindFailsOnUnknownColumn) {
  auto schema = TestSchema();
  auto e = MakeCompare(CompareOp::kEq, MakeColumn("missing"),
                       MakeLiteral(Value(int64_t{1})));
  EXPECT_FALSE(BoundPredicate::Bind(e, *schema).ok());
}

TEST(BoundPredicate, NullExprAlwaysMatches) {
  auto schema = TestSchema();
  auto bound = BoundPredicate::Bind(nullptr, *schema);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->Matches(MakeTuple(1, 1.0, "x")));
}

TEST(BoundPredicate, TypeErrorMeansNoMatch) {
  auto schema = TestSchema();
  // name < 5 is a type error: bound evaluation reports no match.
  auto e = MakeCompare(CompareOp::kLt, MakeColumn("name"),
                       MakeLiteral(Value(int64_t{5})));
  auto bound = BoundPredicate::Bind(e, *schema);
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(bound->Matches(MakeTuple(1, 1.0, "x")));
}

TEST(FlipCompareOp, MirrorsOperands) {
  EXPECT_EQ(FlipCompareOp(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(FlipCompareOp(CompareOp::kLe), CompareOp::kGe);
  EXPECT_EQ(FlipCompareOp(CompareOp::kGt), CompareOp::kLt);
  EXPECT_EQ(FlipCompareOp(CompareOp::kGe), CompareOp::kLe);
  EXPECT_EQ(FlipCompareOp(CompareOp::kEq), CompareOp::kEq);
  EXPECT_EQ(FlipCompareOp(CompareOp::kNe), CompareOp::kNe);
}

}  // namespace
}  // namespace cosmos
