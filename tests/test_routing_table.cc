#include "cbn/routing_table.h"

#include <gtest/gtest.h>

#include "cbn/router.h"
#include "query/parser.h"

namespace cosmos {
namespace {

const std::shared_ptr<const Schema>& SensorSchema() {
  // One shared instance: ProjectionCache keys plans on the schema pointer.
  static const auto& schema = *new std::shared_ptr<const Schema>(
      std::make_shared<Schema>(
          "s",
          std::vector<AttributeDef>{{"temp", ValueType::kDouble, -10, 40},
                                    {"hum", ValueType::kDouble, 0, 100}}));
  return schema;
}

Datagram MakeDatagram(double temp, double hum = 50) {
  return Datagram{"s",
                  Tuple(SensorSchema(), {Value(temp), Value(hum)}, 0)};
}

ProfilePtr MakeProfile(double lo, double hi,
                       std::vector<std::string> projection = {}) {
  auto p = std::make_shared<Profile>();
  ConjunctiveClause c;
  c.ConstrainInterval("temp", Interval(lo, false, hi, false));
  p->AddStream("s", std::move(projection));
  p->AddFilter(Filter("s", std::move(c)));
  return p;
}

TEST(RoutingTable, AddAndLookup) {
  RoutingTable t;
  t.Add(3, 1, MakeProfile(0, 10));
  t.Add(3, 2, MakeProfile(20, 30));
  t.Add(5, 3, MakeProfile(0, 40));
  EXPECT_EQ(t.EntriesFor(3).size(), 2u);
  EXPECT_EQ(t.EntriesFor(5).size(), 1u);
  EXPECT_TRUE(t.EntriesFor(9).empty());
  EXPECT_EQ(t.TotalEntries(), 3u);
  EXPECT_EQ(t.Links(), (std::vector<NodeId>{3, 5}));
}

TEST(RoutingTable, LinkCoversAnyProfile) {
  RoutingTable t;
  t.Add(3, 1, MakeProfile(0, 10));
  t.Add(3, 2, MakeProfile(20, 30));
  EXPECT_TRUE(t.LinkCovers(3, MakeDatagram(5)));
  EXPECT_TRUE(t.LinkCovers(3, MakeDatagram(25)));
  EXPECT_FALSE(t.LinkCovers(3, MakeDatagram(15)));
  EXPECT_FALSE(t.LinkCovers(9, MakeDatagram(5)));
}

TEST(RoutingTable, MatchingProfilesReturnsAll) {
  RoutingTable t;
  t.Add(3, 1, MakeProfile(0, 20));
  t.Add(3, 2, MakeProfile(10, 30));
  EXPECT_EQ(t.MatchingProfiles(3, MakeDatagram(15)).size(), 2u);
  EXPECT_EQ(t.MatchingProfiles(3, MakeDatagram(5)).size(), 1u);
}

TEST(RoutingTable, RemoveByIdOnLink) {
  RoutingTable t;
  t.Add(3, 1, MakeProfile(0, 10));
  t.Add(3, 2, MakeProfile(20, 30));
  EXPECT_TRUE(t.Remove(3, 1));
  EXPECT_FALSE(t.Remove(3, 1));
  EXPECT_EQ(t.EntriesFor(3).size(), 1u);
  EXPECT_FALSE(t.Remove(9, 2));
}

TEST(RoutingTable, RemoveEverywhereSweepsAllLinks) {
  RoutingTable t;
  auto p = MakeProfile(0, 10);
  t.Add(1, 7, p);
  t.Add(2, 7, p);
  t.Add(3, 8, p);
  EXPECT_EQ(t.RemoveEverywhere(7), 2u);
  EXPECT_EQ(t.TotalEntries(), 1u);
  EXPECT_EQ(t.RemoveEverywhere(7), 0u);
  // Emptied links disappear from Links().
  EXPECT_EQ(t.Links(), (std::vector<NodeId>{3}));
}

TEST(RoutingTable, ContainsChecksLinkAndId) {
  RoutingTable t;
  t.Add(3, 1, MakeProfile(0, 10));
  EXPECT_TRUE(t.Contains(3, 1));
  EXPECT_FALSE(t.Contains(3, 2));
  EXPECT_FALSE(t.Contains(5, 1));
}

TEST(RoutingTable, AddUniqueRejectsDuplicateId) {
  RoutingTable t;
  EXPECT_TRUE(t.AddUnique(3, 1, MakeProfile(0, 10)));
  EXPECT_FALSE(t.AddUnique(3, 1, MakeProfile(20, 30)));
  EXPECT_TRUE(t.AddUnique(5, 1, MakeProfile(0, 10)));
  EXPECT_EQ(t.TotalEntries(), 2u);
  EXPECT_TRUE(t.CheckInvariants());
}

TEST(RoutingTable, BucketForPartitionsByStream) {
  RoutingTable t;
  t.Add(3, 1, MakeProfile(0, 10));
  ASSERT_NE(t.BucketFor(3, "s"), nullptr);
  EXPECT_EQ(t.BucketFor(3, "s")->slots().size(), 1u);
  EXPECT_EQ(t.BucketFor(3, "other"), nullptr);
  EXPECT_EQ(t.BucketFor(9, "s"), nullptr);
  // A datagram of an unindexed stream matches nothing without touching
  // the "s" entries.
  auto other_schema = std::make_shared<Schema>(
      "other", std::vector<AttributeDef>{{"temp", ValueType::kDouble}});
  Datagram d{"other", Tuple(other_schema, {Value(5.0)}, 0)};
  EXPECT_FALSE(t.LinkCovers(3, d));
  EXPECT_TRUE(t.MatchingProfiles(3, d).empty());
}

TEST(RoutingTable, MultiStreamProfileHasOneSlotPerStream) {
  RoutingTable t;
  auto p = std::make_shared<Profile>();
  p->AddStream("a", {"x"});
  p->AddStream("b");
  t.Add(3, 7, p);
  EXPECT_EQ(t.TotalEntries(), 1u);
  EXPECT_EQ(t.TotalIndexedSlots(), 2u);
  ASSERT_NE(t.BucketFor(3, "a"), nullptr);
  ASSERT_NE(t.BucketFor(3, "b"), nullptr);
  EXPECT_TRUE(t.CheckInvariants());
  EXPECT_TRUE(t.Remove(3, 7));
  EXPECT_EQ(t.TotalIndexedSlots(), 0u);
  EXPECT_EQ(t.BucketFor(3, "a"), nullptr);
  EXPECT_EQ(t.BucketFor(3, "b"), nullptr);
}

TEST(RoutingTable, ScratchMatchingProfilesAppends) {
  RoutingTable t;
  t.Add(3, 1, MakeProfile(0, 20));
  t.Add(3, 2, MakeProfile(10, 30));
  std::vector<const Profile*> scratch;
  t.MatchingProfiles(3, MakeDatagram(15), &scratch);
  EXPECT_EQ(scratch.size(), 2u);
  // Caller owns the scratch: a second call appends rather than clears.
  t.MatchingProfiles(3, MakeDatagram(5), &scratch);
  EXPECT_EQ(scratch.size(), 3u);
}

TEST(RoutingTable, UnionRequiredCachesAcrossSlots) {
  RoutingTable t;
  t.Add(3, 1, MakeProfile(0, 10, {"temp"}));
  t.Add(3, 2, MakeProfile(0, 10, {"hum"}));
  bool wants_all = true;
  const auto* bucket = t.BucketFor(3, "s");
  ASSERT_NE(bucket, nullptr);
  const auto& u = bucket->UnionRequired(&wants_all);
  EXPECT_FALSE(wants_all);
  EXPECT_EQ(u, (std::vector<std::string>{"hum", "temp"}));  // sorted
  // A profile needing every attribute poisons the union.
  t.Add(3, 4, MakeProfile(0, 10));
  bucket = t.BucketFor(3, "s");
  ASSERT_NE(bucket, nullptr);
  (void)bucket->UnionRequired(&wants_all);
  EXPECT_TRUE(wants_all);
  // Removing it restores the attribute union (invalidation on Remove).
  EXPECT_TRUE(t.Remove(3, 4));
  bucket = t.BucketFor(3, "s");
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->UnionRequired(&wants_all),
            (std::vector<std::string>{"hum", "temp"}));
  EXPECT_FALSE(wants_all);
}

TEST(RoutingTable, IndexSurvivesChurn) {
  RoutingTable t;
  for (ProfileId id = 1; id <= 40; ++id) {
    t.Add(static_cast<NodeId>(id % 4), id,
          MakeProfile(static_cast<double>(id % 7), 30));
  }
  EXPECT_TRUE(t.CheckInvariants());
  EXPECT_EQ(t.TotalIndexedSlots(), t.TotalEntries());
  for (ProfileId id = 1; id <= 40; id += 2) {
    EXPECT_EQ(t.RemoveEverywhere(id), 1u);
  }
  EXPECT_TRUE(t.CheckInvariants());
  EXPECT_EQ(t.TotalIndexedSlots(), t.TotalEntries());
  EXPECT_EQ(t.TotalEntries(), 20u);
}

TEST(Router, DeliverLocalAppliesExactProjection) {
  Router r(0);
  ProjectionCache cache;
  std::vector<Tuple> got;
  r.AddLocal(1, MakeProfile(0, 40, {"hum"}),
             [&](const std::string&, const Tuple& t) { got.push_back(t); });
  r.DeliverLocal(MakeDatagram(10, 77), cache);
  ASSERT_EQ(got.size(), 1u);
  ASSERT_EQ(got[0].num_values(), 1u);
  EXPECT_DOUBLE_EQ(got[0].value(0).AsDouble(), 77.0);
}

TEST(Router, DeliverLocalSkipsNonMatching) {
  Router r(0);
  ProjectionCache cache;
  int hits = 0;
  r.AddLocal(1, MakeProfile(0, 10),
             [&](const std::string&, const Tuple&) { ++hits; });
  EXPECT_EQ(r.DeliverLocal(MakeDatagram(50), cache), 0u);
  EXPECT_EQ(hits, 0);
}

TEST(Router, RemoveLocalStopsDelivery) {
  Router r(0);
  ProjectionCache cache;
  int hits = 0;
  r.AddLocal(1, MakeProfile(0, 40),
             [&](const std::string&, const Tuple&) { ++hits; });
  EXPECT_TRUE(r.RemoveLocal(1));
  EXPECT_FALSE(r.RemoveLocal(1));
  r.DeliverLocal(MakeDatagram(10), cache);
  EXPECT_EQ(hits, 0);
}

TEST(Router, DecideForwardNoMatchIsNullopt) {
  Router r(0);
  ProjectionCache cache;
  r.table().Add(2, 1, MakeProfile(0, 10));
  EXPECT_FALSE(r.DecideForward(MakeDatagram(50), 2, true, cache).has_value());
  EXPECT_FALSE(r.DecideForward(MakeDatagram(5), 9, true, cache).has_value());
}

TEST(Router, DecideForwardProjectsToUnionOfNeeds) {
  Router r(0);
  ProjectionCache cache;
  r.table().Add(2, 1, MakeProfile(0, 20, {"temp"}));
  r.table().Add(2, 2, MakeProfile(10, 30, {"hum"}));
  // Datagram at 15 matches both: union {temp, hum} = identity here.
  auto out = r.DecideForward(MakeDatagram(15), 2, true, cache);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->tuple.num_values(), 2u);
  // Datagram at 5 matches only the temp profile: projected to {temp}.
  out = r.DecideForward(MakeDatagram(5), 2, true, cache);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->tuple.num_values(), 1u);
  EXPECT_EQ(out->tuple.schema()->attribute(0).name, "temp");
}

TEST(Router, DecideForwardWithoutEarlyProjectionKeepsWholeDatagram) {
  Router r(0);
  ProjectionCache cache;
  r.table().Add(2, 1, MakeProfile(0, 20, {"temp"}));
  auto out = r.DecideForward(MakeDatagram(5), 2, false, cache);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->tuple.num_values(), 2u);
}

TEST(Router, AllAttributeProfileDisablesProjection) {
  Router r(0);
  ProjectionCache cache;
  r.table().Add(2, 1, MakeProfile(0, 20));  // wants all attributes
  r.table().Add(2, 2, MakeProfile(0, 20, {"temp"}));
  auto out = r.DecideForward(MakeDatagram(5), 2, true, cache);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->tuple.num_values(), 2u);
}

TEST(Router, DecideForwardTracksTableMutations) {
  Router r(0);
  ProjectionCache cache;
  r.table().Add(2, 1, MakeProfile(0, 20, {"temp"}));
  auto out = r.DecideForward(MakeDatagram(5), 2, true, cache);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->tuple.num_values(), 1u);
  // Adding a hum-projecting profile widens the all-match union.
  r.table().Add(2, 2, MakeProfile(0, 20, {"hum"}));
  out = r.DecideForward(MakeDatagram(5), 2, true, cache);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->tuple.num_values(), 2u);
  // Removing it narrows the union again (invalidation on Remove).
  EXPECT_TRUE(r.table().Remove(2, 2));
  out = r.DecideForward(MakeDatagram(5), 2, true, cache);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->tuple.num_values(), 1u);
  EXPECT_EQ(out->tuple.schema()->attribute(0).name, "temp");
}

TEST(Router, DeliverLocalIgnoresOtherStreams) {
  Router r(0);
  ProjectionCache cache;
  int hits = 0;
  r.AddLocal(1, MakeProfile(0, 40),
             [&](const std::string&, const Tuple&) { ++hits; });
  auto other_schema = std::make_shared<Schema>(
      "other", std::vector<AttributeDef>{{"temp", ValueType::kDouble}});
  Datagram d{"other", Tuple(other_schema, {Value(5.0)}, 0)};
  EXPECT_EQ(r.DeliverLocal(d, cache), 0u);
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(r.DeliverLocal(MakeDatagram(10), cache), 1u);
  EXPECT_EQ(hits, 1);
}

TEST(ProjectionCache, IdentityWhenAllAttributesSelected) {
  ProjectionCache cache;
  Datagram d = MakeDatagram(1, 2);
  Datagram out = cache.Project(d, {"temp", "hum"});
  EXPECT_EQ(out.tuple.num_values(), 2u);
  // Identity reuses the same schema object.
  EXPECT_EQ(out.tuple.schema().get(), d.tuple.schema().get());
}

TEST(ProjectionCache, SkipsUnknownAttributes) {
  ProjectionCache cache;
  Datagram d = MakeDatagram(1, 2);
  Datagram out = cache.Project(d, {"temp", "not_there"});
  EXPECT_EQ(out.tuple.num_values(), 1u);
}

TEST(ProjectionCache, ReusesPlansAcrossCalls) {
  ProjectionCache cache;
  Datagram d1 = MakeDatagram(1, 2);
  Datagram d2 = MakeDatagram(3, 4);
  Datagram o1 = cache.Project(d1, {"temp"});
  Datagram o2 = cache.Project(d2, {"temp"});
  // Same source schema + attr set => same projected schema instance.
  EXPECT_EQ(o1.tuple.schema().get(), o2.tuple.schema().get());
}

}  // namespace
}  // namespace cosmos
