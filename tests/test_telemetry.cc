// The telemetry subsystem: instrument registry, event tracer and snapshot
// algebra, plus the instrumentation wired through the CBN / SPE / system.

#include "telemetry/registry.h"

#include <gtest/gtest.h>

#include "core/system.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "sim/simulator.h"
#include "stream/sensor_dataset.h"
#include "telemetry/snapshot.h"
#include "telemetry/trace.h"

namespace cosmos {
namespace {

TEST(MetricsRegistry, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("a.count");
  c->Increment();
  c->Add(4);
  // Same name returns the same instrument.
  EXPECT_EQ(registry.GetCounter("a.count"), c);
  EXPECT_EQ(c->value(), 5u);
  Gauge* g = registry.GetGauge("a.level");
  g->Set(2.5);
  g->Add(-1.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("a.level")->value(), 1.5);
  EXPECT_EQ(registry.num_instruments(), 2u);

  EXPECT_EQ(registry.FindCounter("a.count"), c);
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);
  EXPECT_EQ(registry.FindGauge("missing"), nullptr);
  EXPECT_EQ(registry.FindHistogram("missing"), nullptr);

  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);  // handle stays valid
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
}

TEST(MetricsRegistry, LabeledFamilies) {
  EXPECT_EQ(MetricsRegistry::LabeledName("cbn.forwarded_bytes", "stream",
                                         "sensor_00"),
            "cbn.forwarded_bytes{stream=sensor_00}");
  EXPECT_EQ(MetricsRegistry::LabelValue(
                "cbn.forwarded_bytes{stream=sensor_00}", "stream"),
            "sensor_00");
  EXPECT_EQ(MetricsRegistry::LabelValue("cbn.forwards", "stream"), "");

  MetricsRegistry registry;
  registry.GetCounter("cbn.published", "stream", "a")->Add(3);
  registry.GetCounter("cbn.published", "stream", "b")->Add(7);
  registry.GetCounter("cbn.forwards");
  auto names = registry.CounterNamesWithLabel("stream");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "cbn.published{stream=a}");
  EXPECT_EQ(names[1], "cbn.published{stream=b}");
}

TEST(Histogram, Log2BucketsAndPercentiles) {
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.max(), 1000u);
  // v == 0 lands in bucket 0 (upper bound 0); v in [2^(i-1), 2^i - 1] in
  // bucket i.
  EXPECT_EQ(h.buckets()[0], 1u);  // 0
  EXPECT_EQ(h.buckets()[1], 1u);  // 1
  EXPECT_EQ(h.buckets()[2], 2u);  // 2, 3
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  // 4 of 5 observations are <= 3, so p80 resolves to bucket 2's bound.
  EXPECT_EQ(h.PercentileUpperBound(0.8), 3u);
  EXPECT_GE(h.PercentileUpperBound(1.0), 1000u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.PercentileUpperBound(0.5), 0u);
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer tracer;
  tracer.Instant("cat", "point", 1);
  tracer.Complete("cat", "slice", 1, 0, 10);
  { Tracer::Span span = tracer.BeginSpan("cat", "work", 2); }
  EXPECT_EQ(tracer.num_events(), 0u);
}

TEST(Tracer, RecordsInstantsSlicesAndSpans) {
  Tracer tracer;
  tracer.Enable();
  Timestamp now = 0;
  tracer.SetClock([&now] { return now; });

  tracer.Instant("cbn", "publish", 3, {{"stream", Tracer::ArgString("s")}});
  tracer.Complete("cbn", "hop", 4, /*ts=*/10, /*dur=*/5);
  now = 100;
  {
    Tracer::Span span = tracer.BeginSpan("spe", "eval", 7);
    span.AddArg("query", Tracer::ArgString("q1"));
    now = 250;
  }
  ASSERT_EQ(tracer.num_events(), 3u);
  const auto& events = tracer.events();
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[0].tid, 3);
  EXPECT_EQ(events[1].phase, 'X');
  EXPECT_EQ(events[1].ts, 10);
  EXPECT_EQ(events[1].dur, 5);
  EXPECT_EQ(events[2].phase, 'X');
  EXPECT_EQ(events[2].ts, 100);
  EXPECT_EQ(events[2].dur, 150);
  EXPECT_EQ(events[2].tid, 7);

  tracer.Clear();
  EXPECT_EQ(tracer.num_events(), 0u);
}

TEST(Tracer, ChromeTraceJsonShape) {
  Tracer tracer;
  tracer.Enable();
  tracer.Instant("cbn", "publish", 0);
  tracer.Complete("cbn", "hop", 2, 5, 3,
                  {{"stream", Tracer::ArgString("a\"b")}, {"from", "1"}});
  std::string json = tracer.ToChromeTraceJson();
  // The trace_event envelope chrome://tracing and Perfetto load.
  EXPECT_NE(json.find("{\"traceEvents\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3"), std::string::npos);
  // Args render as a JSON object with escaped string values.
  EXPECT_NE(json.find("\"stream\":\"a\\\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"from\":1"), std::string::npos);
}

TEST(Tracer, ArgStringEscapes) {
  EXPECT_EQ(Tracer::ArgString("plain"), "\"plain\"");
  EXPECT_EQ(Tracer::ArgString("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Tracer::ArgString("line\nbreak"), "\"line\\nbreak\"");
}

TEST(Tracer, LogicalClockTicksWithoutAClock) {
  Tracer tracer;
  tracer.Enable();
  tracer.Instant("c", "a", 0);
  tracer.Instant("c", "b", 0);
  ASSERT_EQ(tracer.num_events(), 2u);
  EXPECT_LT(tracer.events()[0].ts, tracer.events()[1].ts);
}

TEST(Snapshot, DeltaAndRates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("x.count");
  Gauge* g = registry.GetGauge("x.level");
  Histogram* h = registry.GetHistogram("x.sizes");

  c->Add(10);
  g->Set(1.0);
  h->Observe(4);
  MetricsSnapshot before = TakeSnapshot(registry, kSecond);

  c->Add(30);
  g->Set(9.0);
  h->Observe(8);
  h->Observe(8);
  MetricsSnapshot after = TakeSnapshot(registry, 3 * kSecond);

  EXPECT_EQ(after.CounterValue("x.count"), 40u);
  EXPECT_EQ(after.CounterValue("missing"), 0u);
  // 30 new counts over 2 virtual seconds.
  EXPECT_DOUBLE_EQ(after.CounterRate(before, "x.count"), 15.0);

  MetricsSnapshot delta = SnapshotDelta(after, before);
  EXPECT_EQ(delta.CounterValue("x.count"), 30u);
  // Gauges are instantaneous: delta keeps the later value.
  EXPECT_DOUBLE_EQ(delta.GaugeValue("x.level"), 9.0);
  EXPECT_EQ(delta.histograms.at("x.sizes").count, 2u);
  EXPECT_EQ(delta.at, after.at);

  std::string json = SnapshotToJson(after);
  EXPECT_NE(json.find("\"x.count\": 40"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Snapshot, SeriesServesConsecutiveDeltas) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("n");
  SnapshotSeries series(&registry);
  c->Add(5);
  series.Capture(kSecond);
  c->Add(7);
  series.Capture(2 * kSecond);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_EQ(series.latest().CounterValue("n"), 12u);
  EXPECT_EQ(series.LatestDelta().CounterValue("n"), 7u);
  EXPECT_NE(series.ToJson().find("\"n\": 12"), std::string::npos);
}

// ---- end-to-end instrumentation through the system ----

class TelemetryIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TopologyOptions opts;
    opts.num_nodes = 12;
    opts.ba_edges_per_node = 3;
    opts.seed = 5;
    topo_ = GenerateBarabasiAlbert(opts);
  }

  Topology topo_;
};

TEST_F(TelemetryIntegrationTest, CountersAndTraceFlowThroughTheStack) {
  auto tree = DisseminationTree::FromEdges(
                  12, *MinimumSpanningTree(topo_.graph))
                  .value();
  Simulator sim;
  MetricsRegistry metrics;
  Tracer tracer;
  tracer.Enable();
  SystemOptions options;
  options.metrics = &metrics;
  options.tracer = &tracer;
  CosmosSystem system(std::move(tree), options, &sim);
  system.SetOverlay(topo_.graph);

  SensorDatasetOptions sopts;
  sopts.num_stations = 2;
  sopts.duration = 2 * kMinute;
  SensorDataset sensors(sopts);
  for (int k = 0; k < 2; ++k) {
    ASSERT_TRUE(system
                    .RegisterSource(sensors.SchemaOf(k),
                                    sensors.RatePerStation(), k)
                    .ok());
  }
  ASSERT_TRUE(system.AddProcessor(5).ok());
  int hits = 0;
  ASSERT_TRUE(system
                  .SubmitQuery("SELECT ambient_temperature FROM sensor_01",
                               /*user=*/11,
                               [&](const std::string&, const Tuple&) {
                                 ++hits;
                               })
                  .ok());
  auto replay = sensors.MakeReplay();
  ASSERT_TRUE(system.Replay(*replay).ok());
  sim.Run();
  ASSERT_GT(hits, 0);

  // CBN stream families.
  const Counter* published = metrics.FindCounter(
      MetricsRegistry::LabeledName("cbn.published", "stream", "sensor_01"));
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(published->value(),
            system.rate_monitor().TotalTuples("sensor_01"));
  // Steady-state totals agree with the network's own accounting.
  EXPECT_EQ(metrics.FindCounter("cbn.forwards")->value(),
            system.network().total_datagrams_forwarded());
  EXPECT_EQ(metrics.FindCounter("cbn.forwarded_bytes")->value(),
            system.network().total_bytes());
  // The measured-bytes ledger is maintained for the SelfTuner.
  EXPECT_GT(system.network().published_bytes_by_stream().at("sensor_01"),
            0u);

  // SPE counters on the processor's node.
  const Counter* tuples_in =
      metrics.FindCounter(MetricsRegistry::LabeledName("spe.tuples_in",
                                                       "node", "5"));
  ASSERT_NE(tuples_in, nullptr);
  EXPECT_GT(tuples_in->value(), 0u);
  // Query-layer counters.
  EXPECT_EQ(metrics.FindCounter("core.queries_submitted")->value(), 1u);
  EXPECT_EQ(metrics.FindCounter("core.groups_formed")->value(), 1u);
  // Simulator instrumentation ticked with virtual time.
  EXPECT_GT(metrics.FindCounter("sim.events")->value(), 0u);
  EXPECT_GT(metrics.FindGauge("sim.now_us")->value(), 0.0);

  // The optimizer records its runs through SelfTune.
  ASSERT_TRUE(system.SelfTune().ok());
  EXPECT_EQ(metrics.FindCounter("optimizer.runs")->value(), 1u);

  // The trace carries CBN hops, SPE evaluations and the optimizer slice,
  // stamped with virtual time.
  bool saw_hop = false, saw_eval = false, saw_optimize = false;
  for (const auto& e : tracer.events()) {
    if (e.name == "hop") saw_hop = true;
    if (e.name == "eval") saw_eval = true;
    if (e.name == "optimize") saw_optimize = true;
  }
  EXPECT_TRUE(saw_hop);
  EXPECT_TRUE(saw_eval);
  EXPECT_TRUE(saw_optimize);
}

TEST_F(TelemetryIntegrationTest, NullTelemetryCostsNothingAndStillWorks) {
  auto tree = DisseminationTree::FromEdges(
                  12, *MinimumSpanningTree(topo_.graph))
                  .value();
  CosmosSystem system(std::move(tree));  // no metrics, no tracer
  SensorDatasetOptions sopts;
  sopts.num_stations = 1;
  sopts.duration = kMinute;
  SensorDataset sensors(sopts);
  ASSERT_TRUE(
      system.RegisterSource(sensors.SchemaOf(0), sensors.RatePerStation(), 0)
          .ok());
  ASSERT_TRUE(system.AddProcessor(3).ok());
  int hits = 0;
  ASSERT_TRUE(system
                  .SubmitQuery("SELECT ambient_temperature FROM sensor_00",
                               /*user=*/7,
                               [&](const std::string&, const Tuple&) {
                                 ++hits;
                               })
                  .ok());
  auto replay = sensors.MakeReplay();
  ASSERT_TRUE(system.Replay(*replay).ok());
  EXPECT_GT(hits, 0);
  // The measured-bytes ledger still works without a registry.
  EXPECT_GT(system.network().published_bytes_by_stream().at("sensor_00"),
            0u);
}

}  // namespace
}  // namespace cosmos
