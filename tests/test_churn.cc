// Churn: queries arriving and leaving continuously. The system must stay
// consistent — no stale subscriptions, no lost deliveries for surviving
// queries, grouping state shrinking and regrowing correctly.

#include <gtest/gtest.h>

#include "core/system.h"
#include "core/workload.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

DisseminationTree StarTree(int leaves) {
  std::vector<Edge> edges;
  for (int i = 1; i <= leaves; ++i) edges.push_back(Edge{0, i, 1.0});
  return DisseminationTree::FromEdges(leaves + 1, edges).value();
}

class ChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurnTest, AddRemoveCyclesStayConsistent) {
  const uint64_t seed = GetParam();
  SensorDatasetOptions sopts;
  sopts.num_stations = 4;
  sopts.duration = 10 * kMinute;
  sopts.seed = seed;
  SensorDataset sensors(sopts);

  CosmosSystem system(StarTree(5));
  for (int k = 0; k < sopts.num_stations; ++k) {
    ASSERT_TRUE(system
                    .RegisterSource(sensors.SchemaOf(k),
                                    sensors.RatePerStation(), 0)
                    .ok());
  }
  ASSERT_TRUE(system.AddProcessor(0).ok());

  WorkloadOptions wl;
  wl.zipf_theta = 1.5;
  wl.seed = seed;
  QueryWorkloadGenerator gen(&system.catalog(), wl);
  Rng rng(seed ^ 0x11);

  std::vector<std::string> live;
  std::map<std::string, int> hits;
  for (int round = 0; round < 60; ++round) {
    if (live.size() < 4 || (live.size() < 12 && rng.NextBool(0.6))) {
      NodeId user = 1 + static_cast<NodeId>(rng.NextBounded(5));
      auto id = system.SubmitQuery(
          gen.NextCql(), user,
          [&hits, round](const std::string&, const Tuple&) {
            ++hits["r" + std::to_string(round)];
          });
      ASSERT_TRUE(id.ok());
      live.push_back(*id);
    } else {
      size_t pick = rng.NextBounded(live.size());
      ASSERT_TRUE(system.RemoveQuery(live[pick]).ok());
      live.erase(live.begin() + static_cast<long>(pick));
    }
    EXPECT_EQ(system.TotalQueries(), live.size());
    EXPECT_LE(system.TotalGroups(), live.size());
  }

  // Remaining queries all still deliver.
  int survivors_hit = 0;
  std::map<const void*, int> dummy;
  std::vector<int> counts(live.size(), 0);
  // Re-point callbacks is impossible; instead verify globally: replay and
  // check total deliveries > 0 and per-link consistency.
  auto replay = sensors.MakeReplay();
  uint64_t before = system.network().total_deliveries();
  ASSERT_TRUE(system.Replay(*replay).ok());
  uint64_t delivered = system.network().total_deliveries() - before;
  if (!live.empty()) {
    EXPECT_GT(delivered, 0u);
  }
  (void)survivors_hit;
  (void)dummy;

  // Tear everything down; the network must go quiet.
  while (!live.empty()) {
    ASSERT_TRUE(system.RemoveQuery(live.back()).ok());
    live.pop_back();
  }
  EXPECT_EQ(system.TotalQueries(), 0u);
  EXPECT_EQ(system.TotalGroups(), 0u);
  system.network().ResetStats();
  auto replay2 = sensors.MakeReplay();
  ASSERT_TRUE(system.Replay(*replay2).ok());
  EXPECT_EQ(system.network().total_deliveries(), 0u);
  EXPECT_EQ(system.network().total_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnTest, ::testing::Values(1, 2, 3));

TEST(ChurnGrouping, RemovalTightensRepresentativeTraffic) {
  // One wide and one narrow query merge; removing the wide one must stop
  // wide-only tuples from reaching the narrow user's node.
  SensorDatasetOptions sopts;
  sopts.num_stations = 1;
  sopts.duration = 20 * kMinute;
  SensorDataset sensors(sopts);
  CosmosSystem system(StarTree(2));
  ASSERT_TRUE(system
                  .RegisterSource(sensors.SchemaOf(0),
                                  sensors.RatePerStation(), 0)
                  .ok());
  ASSERT_TRUE(system.AddProcessor(0).ok());

  int narrow_hits = 0;
  auto narrow = system.SubmitQuery(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "40 AND relative_humidity <= 60",
      1, [&](const std::string&, const Tuple&) { ++narrow_hits; });
  auto wide = system.SubmitQuery(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "0 AND relative_humidity <= 100",
      2, [&](const std::string&, const Tuple&) {});
  ASSERT_TRUE(narrow.ok() && wide.ok());

  ASSERT_TRUE(system.RemoveQuery(*wide).ok());
  system.network().ResetStats();
  auto replay = sensors.MakeReplay();
  ASSERT_TRUE(system.Replay(*replay).ok());

  // Everything delivered post-removal matches the narrow query exactly:
  // one source delivery into the processor plus one user delivery per
  // matching tuple — the re-tightened representative lets nothing else
  // through.
  EXPECT_GT(narrow_hits, 0);
  EXPECT_EQ(system.network().total_deliveries(),
            2 * static_cast<uint64_t>(narrow_hits));
}

}  // namespace
}  // namespace cosmos
