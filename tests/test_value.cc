#include "stream/value.h"

#include <gtest/gtest.h>

namespace cosmos {
namespace {

TEST(Value, TypesAreReported) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(int64_t{1}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(1.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("s").type(), ValueType::kString);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);
}

TEST(Value, Accessors) {
  EXPECT_EQ(Value(int64_t{7}).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hello").AsString(), "hello");
  EXPECT_TRUE(Value(true).AsBool());
}

TEST(Value, NumericValueWidens) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).NumericValue(), 3.0);
  EXPECT_DOUBLE_EQ(Value(3.25).NumericValue(), 3.25);
}

TEST(Value, IsNumeric) {
  EXPECT_TRUE(Value(int64_t{1}).is_numeric());
  EXPECT_TRUE(Value(0.5).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
  EXPECT_FALSE(Value(true).is_numeric());
  EXPECT_FALSE(Value().is_numeric());
}

TEST(Value, CompareNumericCrossType) {
  auto c = Value(int64_t{2}).Compare(Value(2.0));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 0);
  c = Value(int64_t{1}).Compare(Value(1.5));
  ASSERT_TRUE(c.ok());
  EXPECT_LT(*c, 0);
  c = Value(3.0).Compare(Value(int64_t{2}));
  ASSERT_TRUE(c.ok());
  EXPECT_GT(*c, 0);
}

TEST(Value, CompareStrings) {
  auto c = Value("abc").Compare(Value("abd"));
  ASSERT_TRUE(c.ok());
  EXPECT_LT(*c, 0);
  c = Value("b").Compare(Value("b"));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 0);
}

TEST(Value, CompareBools) {
  auto c = Value(false).Compare(Value(true));
  ASSERT_TRUE(c.ok());
  EXPECT_LT(*c, 0);
}

TEST(Value, CompareIncompatibleFails) {
  EXPECT_FALSE(Value("x").Compare(Value(int64_t{1})).ok());
  EXPECT_FALSE(Value(true).Compare(Value("t")).ok());
  EXPECT_FALSE(Value().Compare(Value(int64_t{1})).ok());
  EXPECT_FALSE(Value(int64_t{1}).Compare(Value()).ok());
}

TEST(Value, StrictEquality) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  // Strict equality distinguishes int64 1 from double 1.0 (containers).
  EXPECT_NE(Value(int64_t{1}), Value(1.0));
  EXPECT_EQ(Value(), Value::Null());
}

TEST(Value, SerializedSizes) {
  EXPECT_EQ(Value(int64_t{1}).SerializedSize(), 8u);
  EXPECT_EQ(Value(1.0).SerializedSize(), 8u);
  EXPECT_EQ(Value(true).SerializedSize(), 1u);
  EXPECT_EQ(Value().SerializedSize(), 1u);
  EXPECT_EQ(Value("abcd").SerializedSize(), 8u);  // 4 length + 4 payload
}

TEST(Value, ToStringForms) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(false).ToString(), "false");
  EXPECT_EQ(Value().ToString(), "NULL");
}

TEST(Value, HashEqualForIntegralDoubleAndInt) {
  // Mixed-type group keys that compare equal should hash equal.
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(5.0).Hash());
}

TEST(Value, HashDiffersForDifferentPayloads) {
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
  EXPECT_NE(Value("a").Hash(), Value("b").Hash());
}

}  // namespace
}  // namespace cosmos
