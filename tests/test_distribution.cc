#include "core/query_distribution.h"

#include <gtest/gtest.h>

namespace cosmos {
namespace {

TEST(QueryDistributor, NoProcessorsFails) {
  QueryDistributor d;
  EXPECT_EQ(d.Assign("q", "sig").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(QueryDistributor, RoundRobinCycles) {
  QueryDistributor d(DistributionPolicy::kRoundRobin);
  d.AddProcessor(10);
  d.AddProcessor(20);
  d.AddProcessor(30);
  EXPECT_EQ(*d.Assign("a", "s1"), 10);
  EXPECT_EQ(*d.Assign("b", "s2"), 20);
  EXPECT_EQ(*d.Assign("c", "s3"), 30);
  EXPECT_EQ(*d.Assign("d", "s4"), 10);
}

TEST(QueryDistributor, LeastLoadedPicksIdleProcessor) {
  QueryDistributor d(DistributionPolicy::kLeastLoaded);
  d.AddProcessor(1);
  d.AddProcessor(2);
  (void)d.Assign("a", "s");
  (void)d.Assign("b", "s");
  EXPECT_EQ(d.LoadOf(1), 1);
  EXPECT_EQ(d.LoadOf(2), 1);
  (void)d.Assign("c", "s");
  EXPECT_EQ(d.LoadOf(1) + d.LoadOf(2), 3);
  EXPECT_LE(std::abs(d.LoadOf(1) - d.LoadOf(2)), 1);
}

TEST(QueryDistributor, SignatureAffinityCoLocates) {
  QueryDistributor d(DistributionPolicy::kSignatureAffinity);
  d.AddProcessor(1);
  d.AddProcessor(2);
  NodeId home = *d.Assign("a", "sigX");
  // Same-signature queries land on the same processor even when the other
  // is idle.
  EXPECT_EQ(*d.Assign("b", "sigX"), home);
  EXPECT_EQ(*d.Assign("c", "sigX"), home);
  // Different signature lands on the less loaded processor.
  NodeId other = *d.Assign("d", "sigY");
  EXPECT_NE(other, home);
}

TEST(QueryDistributor, DuplicateQueryIdRejected) {
  QueryDistributor d;
  d.AddProcessor(1);
  (void)d.Assign("q", "s");
  EXPECT_EQ(d.Assign("q", "s").status().code(), StatusCode::kAlreadyExists);
}

TEST(QueryDistributor, ReleaseDropsLoad) {
  QueryDistributor d(DistributionPolicy::kLeastLoaded);
  d.AddProcessor(1);
  (void)d.Assign("q", "s");
  EXPECT_EQ(d.LoadOf(1), 1);
  EXPECT_TRUE(d.Release("q").ok());
  EXPECT_EQ(d.LoadOf(1), 0);
  EXPECT_EQ(d.Release("q").code(), StatusCode::kNotFound);
}

TEST(QueryDistributor, AddProcessorIsIdempotent) {
  QueryDistributor d;
  d.AddProcessor(1);
  d.AddProcessor(1);
  EXPECT_EQ(d.processors().size(), 1u);
}

}  // namespace
}  // namespace cosmos
