// Data-layer fault tolerance (paper Figure 2's data-layer fault-tolerance
// module): link failure, buffering, overlay repair, tree rebuild, and
// advertisement-scoped subscription state.

#include <gtest/gtest.h>

#include "cbn/network.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "query/parser.h"

namespace cosmos {
namespace {

std::shared_ptr<const Schema> SensorSchema() {
  return std::make_shared<Schema>(
      "s", std::vector<AttributeDef>{{"temp", ValueType::kDouble, -10, 40}});
}

Datagram MakeDatagram(double temp, Timestamp ts = 0) {
  return Datagram{"s", Tuple(SensorSchema(), {Value(temp)}, ts)};
}

// Overlay square 0-1-2-3-0; tree is the chain 0-1-2-3.
Graph SquareOverlay() {
  Graph g(4);
  (void)g.AddEdge(0, 1, 1.0);
  (void)g.AddEdge(1, 2, 1.0);
  (void)g.AddEdge(2, 3, 1.0);
  (void)g.AddEdge(3, 0, 2.0);
  return g;
}

DisseminationTree ChainTree() {
  return DisseminationTree::FromEdges(
             4, {Edge{0, 1, 1.0}, Edge{1, 2, 1.0}, Edge{2, 3, 1.0}})
      .value();
}

TEST(FaultTolerance, FailUnknownLinkRejected) {
  ContentBasedNetwork net(ChainTree());
  EXPECT_EQ(net.FailLink(0, 2).code(), StatusCode::kNotFound);
  EXPECT_TRUE(net.FailLink(1, 2).ok());
  EXPECT_TRUE(net.HasFailedLinks());
}

TEST(FaultTolerance, LossWithoutBuffering) {
  NetworkOptions opts;
  opts.buffer_on_failure = false;
  ContentBasedNetwork net(ChainTree(), opts);
  int hits = 0;
  Profile p;
  p.AddStream("s");
  net.Subscribe(3, p, [&](const std::string&, const Tuple&) { ++hits; });
  ASSERT_TRUE(net.FailLink(1, 2).ok());
  net.Publish(0, MakeDatagram(1));
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(net.lost_datagrams(), 1u);
}

TEST(FaultTolerance, BufferAndRecoverAfterRepair) {
  ContentBasedNetwork net(ChainTree());
  std::vector<double> received;
  Profile p;
  p.AddStream("s");
  net.Subscribe(3, p, [&](const std::string&, const Tuple& t) {
    received.push_back(t.value(0).AsDouble());
  });
  net.Publish(0, MakeDatagram(1, 0));
  ASSERT_EQ(received.size(), 1u);

  ASSERT_TRUE(net.FailLink(1, 2).ok());
  net.Publish(0, MakeDatagram(2, 1));
  net.Publish(0, MakeDatagram(3, 2));
  EXPECT_EQ(received.size(), 1u);  // cut off
  EXPECT_EQ(net.buffered_datagrams(), 2u);
  EXPECT_EQ(net.lost_datagrams(), 0u);

  ASSERT_TRUE(net.Repair(SquareOverlay()).ok());
  EXPECT_FALSE(net.HasFailedLinks());
  EXPECT_EQ(net.recovered_datagrams(), 2u);
  ASSERT_EQ(received.size(), 3u);
  EXPECT_DOUBLE_EQ(received[1], 2.0);
  EXPECT_DOUBLE_EQ(received[2], 3.0);

  // The repaired tree works for fresh traffic.
  net.Publish(0, MakeDatagram(4, 3));
  EXPECT_EQ(received.size(), 4u);
}

TEST(FaultTolerance, RepairUsesCheapestCrossEdge) {
  ContentBasedNetwork net(ChainTree());
  ASSERT_TRUE(net.FailLink(1, 2).ok());
  ASSERT_TRUE(net.Repair(SquareOverlay()).ok());
  // The only overlay edge across the {0,1} / {2,3} cut is 3-0.
  EXPECT_TRUE(net.tree().HasEdge(3, 0));
  EXPECT_FALSE(net.tree().HasEdge(1, 2));
}

TEST(FaultTolerance, NoDuplicateDeliveryOnHealthySide) {
  // Subscriber at node 1 (near side) must see each datagram exactly once
  // even though datagrams toward node 3 were buffered and flushed.
  ContentBasedNetwork net(ChainTree());
  int hits1 = 0, hits3 = 0;
  Profile p;
  p.AddStream("s");
  net.Subscribe(1, p, [&](const std::string&, const Tuple&) { ++hits1; });
  net.Subscribe(3, p, [&](const std::string&, const Tuple&) { ++hits3; });
  ASSERT_TRUE(net.FailLink(1, 2).ok());
  net.Publish(0, MakeDatagram(1));
  EXPECT_EQ(hits1, 1);
  EXPECT_EQ(hits3, 0);
  ASSERT_TRUE(net.Repair(SquareOverlay()).ok());
  EXPECT_EQ(hits1, 1);  // no duplicate
  EXPECT_EQ(hits3, 1);  // recovered
}

TEST(FaultTolerance, UnrepairablePartitionReported) {
  // Overlay identical to the tree: no alternate edge across the cut.
  Graph overlay(4);
  (void)overlay.AddEdge(0, 1, 1.0);
  (void)overlay.AddEdge(1, 2, 1.0);
  (void)overlay.AddEdge(2, 3, 1.0);
  ContentBasedNetwork net(ChainTree());
  ASSERT_TRUE(net.FailLink(1, 2).ok());
  EXPECT_EQ(net.Repair(overlay).code(), StatusCode::kFailedPrecondition);
}

TEST(FaultTolerance, MultipleFailuresRepairedTogether) {
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 30;
  topo_opts.ba_edges_per_node = 3;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto tree = DisseminationTree::FromEdges(
                  30, *MinimumSpanningTree(topo.graph))
                  .value();
  ContentBasedNetwork net(tree);
  int hits = 0;
  Profile p;
  p.AddStream("s");
  net.Subscribe(17, p, [&](const std::string&, const Tuple&) { ++hits; });

  // Fail two tree links.
  const auto& edges = tree.edges();
  ASSERT_TRUE(net.FailLink(edges[0].u, edges[0].v).ok());
  ASSERT_TRUE(net.FailLink(edges[5].u, edges[5].v).ok());
  ASSERT_TRUE(net.Repair(topo.graph).ok());
  EXPECT_FALSE(net.HasFailedLinks());
  // Fresh traffic reaches the subscriber from anywhere.
  for (NodeId n = 0; n < 30; n += 7) {
    net.Publish(n, MakeDatagram(1));
  }
  EXPECT_EQ(hits, 5);
}

TEST(RebuildTree, PreservesSubscriptions) {
  ContentBasedNetwork net(ChainTree());
  int hits = 0;
  Profile p;
  ConjunctiveClause c;
  c.ConstrainInterval("temp", Interval(0, false, 10, false));
  p.AddFilter(Filter("s", std::move(c)));
  net.Subscribe(3, p, [&](const std::string&, const Tuple&) { ++hits; });

  // Rebuild on a star topology instead of the chain.
  auto star = DisseminationTree::FromEdges(
                  4, {Edge{0, 1, 1.0}, Edge{0, 2, 1.0}, Edge{0, 3, 1.0}})
                  .value();
  ASSERT_TRUE(net.RebuildTree(star).ok());
  net.Publish(1, MakeDatagram(5));   // match
  net.Publish(1, MakeDatagram(20));  // no match
  EXPECT_EQ(hits, 1);
}

TEST(RebuildTree, WrongSizeRejected) {
  ContentBasedNetwork net(ChainTree());
  auto small = DisseminationTree::FromEdges(2, {Edge{0, 1, 1.0}}).value();
  EXPECT_EQ(net.RebuildTree(small).code(), StatusCode::kInvalidArgument);
}

TEST(Advertisements, ScopingShrinksRoutingState) {
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 50;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto tree = DisseminationTree::FromEdges(
                  50, *MinimumSpanningTree(topo.graph))
                  .value();

  NetworkOptions scoped;
  scoped.advertisement_scoping = true;
  ContentBasedNetwork with(tree, scoped);
  ContentBasedNetwork without(tree, NetworkOptions{});

  with.Advertise(0, "s");
  Profile p;
  p.AddStream("s");
  with.Subscribe(40, p, nullptr);
  without.Subscribe(40, p, nullptr);
  EXPECT_LT(with.TotalTableEntries(), without.TotalTableEntries());
  // Delivery still works.
  int hits = 0;
  ProfileId id = with.Subscribe(45, p, [&](const std::string&, const Tuple&) {
    ++hits;
  });
  (void)id;
  with.Publish(0, MakeDatagram(5));
  EXPECT_EQ(hits, 1);
}

TEST(Advertisements, LateAdvertiserGetsRoutes) {
  NetworkOptions scoped;
  scoped.advertisement_scoping = true;
  ContentBasedNetwork net(ChainTree(), scoped);
  int hits = 0;
  Profile p;
  p.AddStream("s");
  net.Subscribe(3, p, [&](const std::string&, const Tuple&) { ++hits; });
  // Subscription predates the advertisement.
  net.Advertise(0, "s");
  net.Publish(0, MakeDatagram(1));
  EXPECT_EQ(hits, 1);
}

TEST(Advertisements, ScopedDeliveryMatchesUnscopedDelivery) {
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 20;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto tree = DisseminationTree::FromEdges(
                  20, *MinimumSpanningTree(topo.graph))
                  .value();
  Rng rng(31);
  std::vector<int> hits_per_mode;
  for (bool scoping : {false, true}) {
    NetworkOptions opts;
    opts.advertisement_scoping = scoping;
    ContentBasedNetwork net(tree, opts);
    net.Advertise(2, "s");
    net.Advertise(11, "s");
    int hits = 0;
    Rng sub_rng(5);
    for (int i = 0; i < 8; ++i) {
      Profile p;
      ConjunctiveClause c;
      double lo = sub_rng.NextInt(-10, 30);
      c.ConstrainInterval("temp", Interval(lo, false, lo + 10, false));
      p.AddFilter(Filter("s", std::move(c)));
      net.Subscribe(static_cast<NodeId>(sub_rng.NextBounded(20)), p,
                    [&](const std::string&, const Tuple&) { ++hits; });
    }
    Rng pub_rng(9);
    for (int i = 0; i < 60; ++i) {
      NodeId publisher = pub_rng.NextBool() ? 2 : 11;
      net.Publish(publisher, MakeDatagram(pub_rng.NextInt(-10, 40)));
    }
    hits_per_mode.push_back(hits);
  }
  EXPECT_GT(hits_per_mode[0], 0);
  EXPECT_EQ(hits_per_mode[0], hits_per_mode[1]);
}

TEST(Advertisements, PublishersOfTracksAdvertisers) {
  ContentBasedNetwork net(ChainTree());
  EXPECT_EQ(net.PublishersOf("s"), nullptr);
  net.Advertise(1, "s");
  net.Advertise(2, "s");
  net.Advertise(1, "s");  // idempotent
  const auto* pubs = net.PublishersOf("s");
  ASSERT_NE(pubs, nullptr);
  EXPECT_EQ(pubs->size(), 2u);
}

}  // namespace
}  // namespace cosmos
