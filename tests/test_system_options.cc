// System option matrix: DHT schema directory, advertisement scoping, and
// early projection exercised end-to-end through CosmosSystem.

#include <gtest/gtest.h>

#include "core/system.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

DisseminationTree ChainTree(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back(Edge{i, i + 1, 1.0});
  return DisseminationTree::FromEdges(n, edges).value();
}

int RunScenario(SystemOptions options) {
  SensorDatasetOptions sopts;
  sopts.num_stations = 3;
  sopts.duration = 10 * kMinute;
  SensorDataset sensors(sopts);
  CosmosSystem system(ChainTree(5), options);
  for (int k = 0; k < 3; ++k) {
    EXPECT_TRUE(system
                    .RegisterSource(sensors.SchemaOf(k),
                                    sensors.RatePerStation(), k)
                    .ok());
  }
  EXPECT_TRUE(system.AddProcessor(2).ok());
  int hits = 0;
  EXPECT_TRUE(system
                  .SubmitQuery(
                      "SELECT ambient_temperature FROM sensor_01 WHERE "
                      "ambient_temperature BETWEEN -100 AND 100",
                      4,
                      [&](const std::string&, const Tuple&) { ++hits; })
                  .ok());
  auto replay = sensors.MakeReplay();
  EXPECT_TRUE(system.Replay(*replay).ok());
  return hits;
}

TEST(SystemOptionsMatrix, AllCombinationsDeliverIdentically) {
  std::vector<int> results;
  for (bool dht : {false, true}) {
    for (bool adv : {false, true}) {
      for (bool proj : {false, true}) {
        SystemOptions options;
        options.directory =
            dht ? DirectoryMode::kDht : DirectoryMode::kFlooded;
        options.network.advertisement_scoping = adv;
        options.network.early_projection = proj;
        results.push_back(RunScenario(options));
      }
    }
  }
  ASSERT_EQ(results.size(), 8u);
  EXPECT_EQ(results[0], 20);
  for (int r : results) {
    EXPECT_EQ(r, results[0]);
  }
}

TEST(SystemOptionsMatrix, DhtDirectoryChargesLookupHops) {
  SystemOptions options;
  options.directory = DirectoryMode::kDht;
  CosmosSystem system(ChainTree(4), options);
  SensorDataset sensors;
  (void)system.RegisterSource(sensors.SchemaOf(0), 1.0, 0);
  int home = system.catalog().ResponsibleNode("sensor_00");
  EXPECT_EQ(system.catalog().LookupHops("sensor_00", home), 0);
  EXPECT_EQ(system.catalog().LookupHops("sensor_00", (home + 1) % 4), 1);
}

TEST(SystemOptionsMatrix, AdvertisementScopingShrinksSystemTables) {
  size_t entries[2];
  for (int mode = 0; mode < 2; ++mode) {
    SystemOptions options;
    options.network.advertisement_scoping = (mode == 1);
    SensorDatasetOptions sopts;
    sopts.num_stations = 3;
    SensorDataset sensors(sopts);
    CosmosSystem system(ChainTree(12), options);
    for (int k = 0; k < 3; ++k) {
      (void)system.RegisterSource(sensors.SchemaOf(k),
                                  sensors.RatePerStation(), 0);
    }
    (void)system.AddProcessor(1);
    (void)system.SubmitQuery("SELECT ambient_temperature FROM sensor_00", 2,
                             nullptr);
    entries[mode] = system.network().TotalTableEntries();
  }
  EXPECT_LT(entries[1], entries[0]);
}

}  // namespace
}  // namespace cosmos
