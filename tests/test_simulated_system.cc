// The CBN under the discrete-event simulator: link delays, in-flight
// ordering, and end-to-end latency accounting.

#include <gtest/gtest.h>

#include "cbn/network.h"

namespace cosmos {
namespace {

std::shared_ptr<const Schema> SensorSchema() {
  return std::make_shared<Schema>(
      "s", std::vector<AttributeDef>{{"temp", ValueType::kDouble, -10, 40}});
}

Datagram MakeDatagram(double temp, Timestamp ts = 0) {
  return Datagram{"s", Tuple(SensorSchema(), {Value(temp)}, ts)};
}

TEST(SimulatedCbn, DeliveryTimeIsPathDelay) {
  // Chain with heterogeneous delays: 0 -(2ms)- 1 -(5ms)- 2 -(1ms)- 3.
  Simulator sim;
  auto tree = DisseminationTree::FromEdges(
                  4, {Edge{0, 1, 2.0}, Edge{1, 2, 5.0}, Edge{2, 3, 1.0}})
                  .value();
  ContentBasedNetwork net(std::move(tree), NetworkOptions{}, &sim);
  std::vector<Timestamp> at;
  Profile p;
  p.AddStream("s");
  net.Subscribe(3, p, [&](const std::string&, const Tuple&) {
    at.push_back(sim.now());
  });
  net.Publish(0, MakeDatagram(1));
  sim.Run();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], 8 * kMillisecond);
}

TEST(SimulatedCbn, IntermediateSubscriberSeesItEarlier) {
  Simulator sim;
  auto tree = DisseminationTree::FromEdges(
                  3, {Edge{0, 1, 3.0}, Edge{1, 2, 4.0}})
                  .value();
  ContentBasedNetwork net(std::move(tree), NetworkOptions{}, &sim);
  std::map<NodeId, Timestamp> at;
  Profile p;
  p.AddStream("s");
  net.Subscribe(1, p, [&](const std::string&, const Tuple&) {
    at[1] = sim.now();
  });
  net.Subscribe(2, p, [&](const std::string&, const Tuple&) {
    at[2] = sim.now();
  });
  net.Publish(0, MakeDatagram(1));
  sim.Run();
  EXPECT_EQ(at[1], 3 * kMillisecond);
  EXPECT_EQ(at[2], 7 * kMillisecond);
}

TEST(SimulatedCbn, PublishesInterleaveByDelay) {
  // Two publishers at different distances from the subscriber: arrival
  // order at the subscriber follows delay, not publish order.
  Simulator sim;
  auto tree = DisseminationTree::FromEdges(
                  3, {Edge{0, 2, 10.0}, Edge{1, 2, 1.0}})
                  .value();
  ContentBasedNetwork net(std::move(tree), NetworkOptions{}, &sim);
  std::vector<double> order;
  Profile p;
  p.AddStream("s");
  net.Subscribe(2, p, [&](const std::string&, const Tuple& t) {
    order.push_back(t.value(0).AsDouble());
  });
  net.Publish(0, MakeDatagram(111));  // far: arrives at 10ms
  net.Publish(1, MakeDatagram(222));  // near: arrives at 1ms
  sim.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_DOUBLE_EQ(order[0], 222.0);
  EXPECT_DOUBLE_EQ(order[1], 111.0);
}

TEST(SimulatedCbn, NothingMovesUntilTheClockRuns) {
  Simulator sim;
  auto tree =
      DisseminationTree::FromEdges(2, {Edge{0, 1, 1.0}}).value();
  ContentBasedNetwork net(std::move(tree), NetworkOptions{}, &sim);
  int hits = 0;
  Profile p;
  p.AddStream("s");
  net.Subscribe(1, p, [&](const std::string&, const Tuple&) { ++hits; });
  net.Publish(0, MakeDatagram(1));
  EXPECT_EQ(hits, 0);
  EXPECT_TRUE(sim.HasPendingEvents());
  sim.Run();
  EXPECT_EQ(hits, 1);
}

TEST(SimulatedCbn, ByteAccountingIdenticalToSynchronousMode) {
  auto make_tree = [] {
    return DisseminationTree::FromEdges(
               4, {Edge{0, 1, 2.0}, Edge{1, 2, 3.0}, Edge{1, 3, 4.0}})
        .value();
  };
  Profile p;
  p.AddStream("s");

  ContentBasedNetwork sync_net(make_tree());
  sync_net.Subscribe(2, p, nullptr);
  sync_net.Subscribe(3, p, nullptr);
  sync_net.Publish(0, MakeDatagram(1));

  Simulator sim;
  ContentBasedNetwork sim_net(make_tree(), NetworkOptions{}, &sim);
  sim_net.Subscribe(2, p, nullptr);
  sim_net.Subscribe(3, p, nullptr);
  sim_net.Publish(0, MakeDatagram(1));
  sim.Run();

  EXPECT_EQ(sync_net.total_bytes(), sim_net.total_bytes());
  EXPECT_EQ(sync_net.total_deliveries(), sim_net.total_deliveries());
  EXPECT_EQ(sync_net.link_stats().size(), sim_net.link_stats().size());
}

}  // namespace
}  // namespace cosmos
