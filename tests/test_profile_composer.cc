#include "core/profile_composer.h"

#include <gtest/gtest.h>

#include "core/merger.h"
#include "stream/auction_dataset.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

class ProfileComposerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AuctionDataset auctions;
    ASSERT_TRUE(auctions.RegisterAll(catalog_).ok());
    SensorDataset sensors;
    ASSERT_TRUE(sensors.RegisterAll(catalog_).ok());
  }

  AnalyzedQuery Q(const std::string& cql, const std::string& name = "r") {
    auto q = ParseAndAnalyze(cql, catalog_, name);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  Catalog catalog_;
};

TEST_F(ProfileComposerTest, SourceProfileMatchesPaperExample) {
  // Paper §4: SELECT R.A, S.C FROM R [Now], S [Now]
  //           WHERE R.B = S.B AND R.A > 10
  // => S = {R, S}, P = {R.A, R.B, S.B, S.C}, F = {R.A > 10}.
  Catalog catalog;
  (void)catalog.RegisterStream(std::make_shared<Schema>(
      "R", std::vector<AttributeDef>{{"A", ValueType::kDouble, 0, 100},
                                     {"B", ValueType::kInt64, 0, 100},
                                     {"Z", ValueType::kDouble}}));
  (void)catalog.RegisterStream(std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"B", ValueType::kInt64, 0, 100},
                                     {"C", ValueType::kDouble},
                                     {"W", ValueType::kDouble}}));
  auto q = ParseAndAnalyze(
      "SELECT R.A, S.C FROM R [Now], S [Now] WHERE R.B = S.B AND R.A > 10",
      catalog, "res");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  Profile p = ComposeSourceProfile(*q);
  EXPECT_TRUE(p.WantsStream("R"));
  EXPECT_TRUE(p.WantsStream("S"));
  auto pr = p.ProjectionOf("R");
  EXPECT_EQ(pr.size(), 2u);  // A, B — not Z
  auto ps = p.ProjectionOf("S");
  EXPECT_EQ(ps.size(), 2u);  // B, C — not W
  ASSERT_EQ(p.filters().size(), 1u);
  EXPECT_EQ(p.filters()[0].stream(), "R");
  EXPECT_EQ(p.filters()[0].clause().ConstraintFor("A").interval,
            Interval::AtLeast(10, /*open=*/true));
}

TEST_F(ProfileComposerTest, SourceProfileNoFilterWhenNoSelection) {
  AnalyzedQuery q = Q("SELECT itemID FROM OpenAuction");
  Profile p = ComposeSourceProfile(q);
  EXPECT_TRUE(p.filters().empty());
  EXPECT_EQ(p.ProjectionOf("OpenAuction").size(), 1u);
}

TEST_F(ProfileComposerTest, WholeStreamProfile) {
  Profile p = ComposeWholeStreamProfile("result_q1");
  EXPECT_TRUE(p.WantsStream("result_q1"));
  EXPECT_TRUE(p.filters().empty());
  EXPECT_TRUE(p.ProjectionOf("result_q1").empty());
}

TEST_F(ProfileComposerTest, UserProfileReproducesPaperP1P2) {
  // Paper §4's p1/p2 example: users re-tighten the q3 result stream.
  AnalyzedQuery q1 = Q(
      "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID",
      "r1");
  AnalyzedQuery q2 = Q(
      "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp "
      "FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID",
      "r2");
  auto rep = ComposeRepresentative({&q1, &q2}, catalog_, "s3");
  ASSERT_TRUE(rep.ok());

  auto p1 = ComposeUserProfile(q1, *rep);
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();
  // S = {s3}.
  EXPECT_TRUE(p1->WantsStream("s3"));
  EXPECT_EQ(p1->streams().size(), 1u);
  // P = O.* — four O columns.
  EXPECT_EQ(p1->ProjectionOf("s3").size(), 4u);
  // F includes the window re-tightening residual (q1 has a tighter O
  // window than the representative).
  ASSERT_EQ(p1->filters().size(), 1u);
  EXPECT_FALSE(p1->filters()[0].clause().residual().empty());

  auto p2 = ComposeUserProfile(q2, *rep);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->ProjectionOf("s3").size(), 4u);
  // q2's windows equal the representative's: no filter needed.
  EXPECT_TRUE(p2->filters().empty());
}

TEST_F(ProfileComposerTest, UserProfileReimposesSelectionConstraints) {
  AnalyzedQuery q1 = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "10 AND relative_humidity <= 40",
      "r1");
  AnalyzedQuery q2 = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity >= "
      "30 AND relative_humidity <= 80",
      "r2");
  auto rep = ComposeRepresentative({&q1, &q2}, catalog_, "grp");
  ASSERT_TRUE(rep.ok());
  auto p1 = ComposeUserProfile(q1, *rep);
  ASSERT_TRUE(p1.ok());
  ASSERT_EQ(p1->filters().size(), 1u);
  EXPECT_EQ(
      p1->filters()[0].clause().ConstraintFor("relative_humidity").interval,
      Interval(10, false, 40, false));
}

TEST_F(ProfileComposerTest, UserProfileSkipsConstraintsRepEnforces) {
  AnalyzedQuery q1 = Q(
      "SELECT relative_humidity FROM sensor_00 WHERE relative_humidity <= "
      "40",
      "r1");
  auto rep = ComposeRepresentative({&q1}, catalog_, "grp");
  ASSERT_TRUE(rep.ok());
  auto p = ComposeUserProfile(q1, *rep);
  ASSERT_TRUE(p.ok());
  // The singleton representative enforces exactly the member's selection:
  // nothing to re-tighten.
  EXPECT_TRUE(p->filters().empty());
}

TEST_F(ProfileComposerTest, AggregateUserProfileTakesWholeRow) {
  AnalyzedQuery q = Q(
      "SELECT station_id, AVG(ambient_temperature) FROM sensor_00 "
      "[Range 1 Hour] GROUP BY station_id",
      "r1");
  auto rep = ComposeRepresentative({&q}, catalog_, "grp");
  ASSERT_TRUE(rep.ok());
  auto p = ComposeUserProfile(q, *rep);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->ProjectionOf("grp").empty());  // all attributes
  EXPECT_TRUE(p->filters().empty());
}

TEST_F(ProfileComposerTest, MismatchedStreamsRejected) {
  AnalyzedQuery a = Q("SELECT itemID FROM OpenAuction", "r1");
  AnalyzedQuery b = Q("SELECT itemID FROM ClosedAuction", "r2");
  auto p = ComposeUserProfile(a, b);
  EXPECT_FALSE(p.ok());
}

}  // namespace
}  // namespace cosmos
