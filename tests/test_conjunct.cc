#include "expr/conjunct.h"

#include <gtest/gtest.h>

#include "expr/evaluator.h"
#include "query/parser.h"

namespace cosmos {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  return std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{
               {"a", ValueType::kDouble, 0, 100},
               {"b", ValueType::kDouble, 0, 10},
               {"tag", ValueType::kString},
           });
}

Tuple MakeTuple(double a, double b, const std::string& tag) {
  return Tuple(TestSchema(), {Value(a), Value(b), Value(tag)}, 0);
}

ConjunctiveClause Parse(const std::string& text) {
  auto expr = ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  auto clause = ClauseFromExpr(*expr);
  EXPECT_TRUE(clause.ok()) << clause.status().ToString();
  return *clause;
}

TEST(Conjunct, RangeAtomsCollapseToInterval) {
  ConjunctiveClause c = Parse("a >= 10 AND a <= 20 AND a < 30");
  AttrConstraint ac = c.ConstraintFor("a");
  EXPECT_EQ(ac.interval, Interval(10, false, 20, false));
  EXPECT_FALSE(c.has_residual());
}

TEST(Conjunct, FlippedOperandOrder) {
  ConjunctiveClause c = Parse("10 <= a AND 20 >= a");
  EXPECT_EQ(c.ConstraintFor("a").interval, Interval(10, false, 20, false));
}

TEST(Conjunct, NumericEqualityBecomesPoint) {
  ConjunctiveClause c = Parse("a = 5");
  EXPECT_TRUE(c.ConstraintFor("a").interval.IsPoint());
}

TEST(Conjunct, ContradictionIsUnsatisfiable) {
  ConjunctiveClause c = Parse("a > 10 AND a < 5");
  EXPECT_TRUE(c.IsUnsatisfiable());
}

TEST(Conjunct, StringEqualityAndDisequality) {
  ConjunctiveClause c = Parse("tag = 'x' AND tag != 'y'");
  AttrConstraint ac = c.ConstraintFor("tag");
  ASSERT_TRUE(ac.eq.has_value());
  EXPECT_EQ(ac.eq->AsString(), "x");
  ASSERT_EQ(ac.neq.size(), 1u);
  EXPECT_EQ(ac.neq[0].AsString(), "y");
  EXPECT_FALSE(c.IsUnsatisfiable());
}

TEST(Conjunct, ConflictingStringEqualitiesUnsatisfiable) {
  ConjunctiveClause c = Parse("tag = 'x' AND tag = 'y'");
  EXPECT_TRUE(c.IsUnsatisfiable());
}

TEST(Conjunct, EqAndNeqSameValueUnsatisfiable) {
  ConjunctiveClause c = Parse("tag = 'x' AND tag != 'x'");
  EXPECT_TRUE(c.IsUnsatisfiable());
}

TEST(Conjunct, NumericDisequalityGoesResidual) {
  ConjunctiveClause c = Parse("a != 5");
  EXPECT_TRUE(c.has_residual());
  EXPECT_TRUE(c.MatchesCanonical(MakeTuple(5, 0, "")));  // canonical ignores
}

TEST(Conjunct, NonCanonicalAtomGoesResidual) {
  ConjunctiveClause c = Parse("a > b");
  EXPECT_TRUE(c.has_residual());
  EXPECT_TRUE(c.constraints().empty());
}

TEST(Conjunct, MatchesCanonicalChecksAllConstraints) {
  ConjunctiveClause c = Parse("a >= 10 AND a <= 20 AND b < 5");
  EXPECT_TRUE(c.MatchesCanonical(MakeTuple(15, 3, "")));
  EXPECT_FALSE(c.MatchesCanonical(MakeTuple(25, 3, "")));
  EXPECT_FALSE(c.MatchesCanonical(MakeTuple(15, 7, "")));
}

TEST(Conjunct, MatchesCanonicalMissingAttributeFails) {
  ConjunctiveClause c = Parse("missing > 1");
  EXPECT_FALSE(c.MatchesCanonical(MakeTuple(1, 1, "")));
}

TEST(Conjunct, TautologyMatchesEverything) {
  ConjunctiveClause c;
  EXPECT_TRUE(c.IsTautology());
  EXPECT_TRUE(c.MatchesCanonical(MakeTuple(1, 2, "z")));
  EXPECT_EQ(c.ToExpr(), nullptr);
  EXPECT_EQ(c.ToString(), "TRUE");
}

TEST(Conjunct, ToExprRoundTrip) {
  ConjunctiveClause c = Parse("a >= 10 AND a < 20 AND tag = 'x'");
  ExprPtr rebuilt = c.ToExpr();
  ASSERT_NE(rebuilt, nullptr);
  auto c2 = ClauseFromExpr(rebuilt);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c, *c2);
}

TEST(Conjunct, SelectivityUsesDeclaredRanges) {
  auto schema = TestSchema();
  ConjunctiveClause c = Parse("a >= 0 AND a <= 50");  // half of [0,100]
  EXPECT_NEAR(c.EstimateSelectivity(*schema), 0.5, 1e-9);
  ConjunctiveClause both = Parse("a >= 0 AND a <= 50 AND b >= 0 AND b <= 5");
  EXPECT_NEAR(both.EstimateSelectivity(*schema), 0.25, 1e-9);
}

TEST(Conjunct, SelectivityOfEqualityOnString) {
  auto schema = TestSchema();
  ConjunctiveClause c = Parse("tag = 'x'");
  EXPECT_NEAR(c.EstimateSelectivity(*schema, 0.1), 0.1, 1e-9);
}

TEST(Conjunct, SelectivityChargesResiduals) {
  auto schema = TestSchema();
  ConjunctiveClause c = Parse("a > b");
  EXPECT_NEAR(c.EstimateSelectivity(*schema, 0.1, 0.5), 0.5, 1e-9);
}

TEST(Dnf, PlainConjunctionYieldsOneClause) {
  auto expr = ParseExpression("a > 1 AND b < 2");
  auto dnf = ToDnf(*expr);
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ(dnf->size(), 1u);
}

TEST(Dnf, DisjunctionSplits) {
  auto expr = ParseExpression("a > 1 OR b < 2");
  auto dnf = ToDnf(*expr);
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ(dnf->size(), 2u);
}

TEST(Dnf, DistributesAndOverOr) {
  auto expr = ParseExpression("(a > 1 OR a < 0) AND (b > 1 OR b < 0)");
  auto dnf = ToDnf(*expr);
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ(dnf->size(), 4u);
}

TEST(Dnf, DropsUnsatisfiableClauses) {
  auto expr = ParseExpression("(a > 5 AND a < 1) OR b > 2");
  auto dnf = ToDnf(*expr);
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ(dnf->size(), 1u);
}

TEST(Dnf, NotOverAtomIsPushedIn) {
  auto expr = ParseExpression("NOT a > 5");
  auto dnf = ToDnf(*expr);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->size(), 1u);
  EXPECT_EQ((*dnf)[0].ConstraintFor("a").interval, Interval::AtMost(5.0));
}

TEST(Dnf, NotOverConjunctionDeMorgans) {
  auto expr = ParseExpression("NOT (a > 5 AND b < 2)");
  auto dnf = ToDnf(*expr);
  ASSERT_TRUE(dnf.ok()) << dnf.status().ToString();
  // ¬(a>5 ∧ b<2) = a<=5 ∨ b>=2.
  ASSERT_EQ(dnf->size(), 2u);
  EXPECT_EQ((*dnf)[0].ConstraintFor("a").interval, Interval::AtMost(5.0));
  EXPECT_EQ((*dnf)[1].ConstraintFor("b").interval, Interval::AtLeast(2.0));
}

TEST(Dnf, NotOverDisjunctionDeMorgans) {
  auto expr = ParseExpression("NOT (a > 5 OR b < 2)");
  auto dnf = ToDnf(*expr);
  ASSERT_TRUE(dnf.ok());
  // ¬(a>5 ∨ b<2) = a<=5 ∧ b>=2: one clause, two constraints.
  ASSERT_EQ(dnf->size(), 1u);
  EXPECT_EQ((*dnf)[0].ConstraintFor("a").interval, Interval::AtMost(5.0));
  EXPECT_EQ((*dnf)[0].ConstraintFor("b").interval, Interval::AtLeast(2.0));
}

TEST(Dnf, DoubleNegationCancels) {
  auto expr = ParseExpression("NOT NOT a > 5");
  auto dnf = ToDnf(*expr);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->size(), 1u);
  EXPECT_EQ((*dnf)[0].ConstraintFor("a").interval,
            Interval::AtLeast(5.0, /*open=*/true));
}

TEST(Dnf, DeMorganSamplingAgreement) {
  auto expr = ParseExpression(
      "NOT ((a >= 10 AND a <= 30) OR (b >= 2 AND b <= 4))");
  auto dnf = ToDnf(*expr);
  ASSERT_TRUE(dnf.ok());
  for (double a = 0; a <= 40; a += 5) {
    for (double b = 0; b <= 6; b += 1) {
      Tuple t = MakeTuple(a, b, "");
      bool via_dnf = false;
      for (const auto& clause : *dnf) {
        if (clause.MatchesCanonical(t)) via_dnf = true;
      }
      auto direct = EvalPredicate(*expr, t);
      ASSERT_TRUE(direct.ok());
      EXPECT_EQ(via_dnf, *direct) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Dnf, NullExprIsTautology) {
  auto dnf = ToDnf(nullptr);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->size(), 1u);
  EXPECT_TRUE((*dnf)[0].IsTautology());
}

TEST(Dnf, SamplingAgreementWithEval) {
  auto expr = ParseExpression(
      "(a >= 10 AND a <= 30) OR (b >= 2 AND b <= 4 AND a < 50)");
  auto dnf = ToDnf(*expr);
  ASSERT_TRUE(dnf.ok());
  for (double a = 0; a <= 60; a += 5) {
    for (double b = 0; b <= 6; b += 1) {
      Tuple t = MakeTuple(a, b, "");
      bool via_dnf = false;
      for (const auto& clause : *dnf) {
        if (clause.MatchesCanonical(t)) via_dnf = true;
      }
      auto direct = EvalPredicate(*expr, t);
      ASSERT_TRUE(direct.ok());
      EXPECT_EQ(via_dnf, *direct) << "a=" << a << " b=" << b;
    }
  }
}

}  // namespace
}  // namespace cosmos
