#include "core/merger.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "query/unparser.h"
#include "stream/auction_dataset.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

class MergerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AuctionDataset auctions;
    ASSERT_TRUE(auctions.RegisterAll(catalog_).ok());
    SensorDataset sensors;
    ASSERT_TRUE(sensors.RegisterAll(catalog_).ok());
  }

  AnalyzedQuery Q(const std::string& cql, const std::string& name = "r") {
    auto q = ParseAndAnalyze(cql, catalog_, name);
    EXPECT_TRUE(q.ok()) << cql << ": " << q.status().ToString();
    return *q;
  }

  AnalyzedQuery Merge(const std::vector<const AnalyzedQuery*>& members) {
    auto rep = ComposeRepresentative(members, catalog_, "rep");
    EXPECT_TRUE(rep.ok()) << rep.status().ToString();
    return *rep;
  }

  Catalog catalog_;
};

TEST_F(MergerTest, ReproducesTable1Q3) {
  AnalyzedQuery q1 = Q(
      "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID");
  AnalyzedQuery q2 = Q(
      "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp "
      "FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID");
  AnalyzedQuery rep = Merge({&q1, &q2});

  // The paper's q3: 5-hour window, O.* plus C.buyerID and C.timestamp.
  EXPECT_EQ(rep.WindowSize(0), 5 * kHour);
  EXPECT_EQ(rep.WindowSize(1), 0);
  EXPECT_TRUE(QueryContains(rep, q1));
  EXPECT_TRUE(QueryContains(rep, q2));
  // Projects everything q3 projects.
  EXPECT_TRUE(rep.output_schema()->HasAttribute("O.itemID"));
  EXPECT_TRUE(rep.output_schema()->HasAttribute("O.sellerID"));
  EXPECT_TRUE(rep.output_schema()->HasAttribute("O.start_price"));
  EXPECT_TRUE(rep.output_schema()->HasAttribute("O.timestamp"));
  EXPECT_TRUE(rep.output_schema()->HasAttribute("C.buyerID"));
  EXPECT_TRUE(rep.output_schema()->HasAttribute("C.timestamp"));
}

TEST_F(MergerTest, SelectionsHull) {
  AnalyzedQuery q1 = Q(
      "SELECT itemID FROM OpenAuction WHERE start_price >= 10 AND "
      "start_price <= 20");
  AnalyzedQuery q2 = Q(
      "SELECT itemID FROM OpenAuction WHERE start_price >= 15 AND "
      "start_price <= 30");
  AnalyzedQuery rep = Merge({&q1, &q2});
  EXPECT_EQ(rep.local_selection(0).ConstraintFor("start_price").interval,
            Interval(10, false, 30, false));
  // Differing selections force start_price into the projection.
  EXPECT_TRUE(rep.output_schema()->HasAttribute("start_price"));
}

TEST_F(MergerTest, IdenticalSelectionsStayTight) {
  AnalyzedQuery q1 = Q("SELECT itemID FROM OpenAuction WHERE start_price > 10");
  AnalyzedQuery q2 = Q("SELECT sellerID FROM OpenAuction WHERE start_price > 10");
  AnalyzedQuery rep = Merge({&q1, &q2});
  EXPECT_EQ(rep.local_selection(0).ConstraintFor("start_price").interval,
            Interval::AtLeast(10, /*open=*/true));
  // No re-filtering needed; start_price not forced into the projection.
  EXPECT_FALSE(rep.output_schema()->HasAttribute("start_price"));
  EXPECT_TRUE(rep.output_schema()->HasAttribute("itemID"));
  EXPECT_TRUE(rep.output_schema()->HasAttribute("sellerID"));
}

TEST_F(MergerTest, WindowsDifferAddTimestampsForJoins) {
  AnalyzedQuery q1 = Q(
      "SELECT O.sellerID FROM OpenAuction [Range 3 Hour] O, ClosedAuction "
      "[Now] C WHERE O.itemID = C.itemID");
  AnalyzedQuery q2 = Q(
      "SELECT O.sellerID FROM OpenAuction [Range 5 Hour] O, ClosedAuction "
      "[Now] C WHERE O.itemID = C.itemID");
  AnalyzedQuery rep = Merge({&q1, &q2});
  EXPECT_TRUE(rep.output_schema()->HasAttribute("O.timestamp"));
  EXPECT_TRUE(rep.output_schema()->HasAttribute("C.timestamp"));
}

TEST_F(MergerTest, SingleMemberIsRenamedIdentity) {
  AnalyzedQuery q = Q("SELECT itemID FROM OpenAuction WHERE start_price > 5");
  AnalyzedQuery rep = Merge({&q});
  EXPECT_TRUE(QueryContains(rep, q));
  EXPECT_TRUE(QueryContains(q, rep));
  EXPECT_EQ(rep.output_schema()->stream_name(), "rep");
}

TEST_F(MergerTest, ManyMembersFold) {
  std::vector<AnalyzedQuery> queries;
  for (int i = 0; i < 5; ++i) {
    queries.push_back(Q(StrFormat(
        "SELECT itemID FROM OpenAuction WHERE start_price >= %d AND "
        "start_price <= %d",
        i * 10, i * 10 + 15)));
  }
  std::vector<const AnalyzedQuery*> members;
  for (const auto& q : queries) members.push_back(&q);
  AnalyzedQuery rep = Merge(members);
  for (const auto& q : queries) {
    EXPECT_TRUE(QueryContains(rep, q));
  }
  EXPECT_EQ(rep.local_selection(0).ConstraintFor("start_price").interval,
            Interval(0, false, 55, false));
}

TEST_F(MergerTest, AggregateMembersMustBeEquivalent) {
  AnalyzedQuery a1 = Q(
      "SELECT station_id, AVG(ambient_temperature) FROM sensor_00 "
      "[Range 1 Hour] GROUP BY station_id");
  AnalyzedQuery a2 = Q(
      "SELECT station_id, AVG(ambient_temperature) FROM sensor_00 "
      "[Range 1 Hour] GROUP BY station_id");
  EXPECT_TRUE(MergeCompatible(a1, a2));
  AnalyzedQuery rep = Merge({&a1, &a2});
  EXPECT_TRUE(QueryContains(rep, a1));
  EXPECT_TRUE(QueryContains(rep, a2));

  AnalyzedQuery different_window = Q(
      "SELECT station_id, AVG(ambient_temperature) FROM sensor_00 "
      "[Range 2 Hour] GROUP BY station_id");
  EXPECT_FALSE(MergeCompatible(a1, different_window));
}

TEST_F(MergerTest, IncompatibleStreamSetsRejected) {
  AnalyzedQuery a = Q("SELECT itemID FROM OpenAuction");
  AnalyzedQuery b = Q("SELECT itemID FROM ClosedAuction");
  EXPECT_FALSE(MergeCompatible(a, b));
  auto rep = ComposeRepresentative({&a, &b}, catalog_, "rep");
  EXPECT_FALSE(rep.ok());
}

TEST_F(MergerTest, DifferentJoinSetsRejected) {
  AnalyzedQuery joined = Q(
      "SELECT O.itemID FROM OpenAuction O, ClosedAuction C WHERE O.itemID "
      "= C.itemID");
  AnalyzedQuery cross = Q(
      "SELECT O.itemID FROM OpenAuction O, ClosedAuction C WHERE "
      "O.sellerID > 5");
  EXPECT_FALSE(MergeCompatible(joined, cross));
}

TEST_F(MergerTest, DifferentResidualsRejected) {
  AnalyzedQuery a = Q(
      "SELECT O.itemID FROM OpenAuction O, ClosedAuction C WHERE O.itemID "
      "= C.itemID AND O.timestamp - C.timestamp <= 0");
  AnalyzedQuery b = Q(
      "SELECT O.itemID FROM OpenAuction O, ClosedAuction C WHERE O.itemID "
      "= C.itemID");
  EXPECT_FALSE(MergeCompatible(a, b));
}

TEST_F(MergerTest, SignatureGroupsCompatibleQueries) {
  AnalyzedQuery a = Q("SELECT itemID FROM OpenAuction WHERE start_price > 1");
  AnalyzedQuery b =
      Q("SELECT sellerID FROM OpenAuction WHERE start_price > 99");
  EXPECT_EQ(MergeSignature(a), MergeSignature(b));
  AnalyzedQuery c = Q("SELECT itemID FROM ClosedAuction");
  EXPECT_NE(MergeSignature(a), MergeSignature(c));
  // Aliases do not change the signature.
  AnalyzedQuery d1 = Q(
      "SELECT X.itemID FROM OpenAuction X, ClosedAuction Y WHERE X.itemID "
      "= Y.itemID");
  AnalyzedQuery d2 = Q(
      "SELECT O.itemID FROM OpenAuction O, ClosedAuction C WHERE O.itemID "
      "= C.itemID");
  EXPECT_EQ(MergeSignature(d1), MergeSignature(d2));
}

TEST_F(MergerTest, RepresentativeIsUnparsableAndReparsable) {
  AnalyzedQuery q1 = Q(
      "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID");
  AnalyzedQuery q2 = Q(
      "SELECT O.itemID, C.buyerID FROM OpenAuction [Range 5 Hour] O, "
      "ClosedAuction [Now] C WHERE O.itemID = C.itemID");
  AnalyzedQuery rep = Merge({&q1, &q2});
  std::string cql = Unparse(rep);
  auto reparsed = ParseAndAnalyze(cql, catalog_, "rep");
  ASSERT_TRUE(reparsed.ok()) << cql;
  EXPECT_TRUE(QueryContains(*reparsed, q1));
  EXPECT_TRUE(QueryContains(*reparsed, q2));
}

TEST_F(MergerTest, ThreeWayJoinQueriesMerge) {
  // Same three-stream join shape with different windows and selections.
  AnalyzedQuery q1 = Q(
      "SELECT O.itemID FROM OpenAuction [Range 2 Hour] O, ClosedAuction "
      "[Now] C, sensor_00 [Now] S WHERE O.itemID = C.itemID AND "
      "O.start_price > 100");
  AnalyzedQuery q2 = Q(
      "SELECT O.itemID, C.buyerID FROM OpenAuction [Range 4 Hour] O, "
      "ClosedAuction [Now] C, sensor_00 [Now] S WHERE O.itemID = C.itemID "
      "AND O.start_price > 50");
  ASSERT_TRUE(MergeCompatible(q1, q2));
  AnalyzedQuery rep = Merge({&q1, &q2});
  EXPECT_TRUE(QueryContains(rep, q1));
  EXPECT_TRUE(QueryContains(rep, q2));
  EXPECT_EQ(rep.WindowSize(0), 4 * kHour);
  // Differing windows in a multi-stream query force timestamps into the
  // projection for Lemma-1 re-tightening.
  EXPECT_TRUE(rep.output_schema()->HasAttribute("O.timestamp"));
  EXPECT_TRUE(SplittableFrom(q1, rep));
  EXPECT_TRUE(SplittableFrom(q2, rep));
}

TEST_F(MergerTest, EmptyMemberListRejected) {
  auto rep = ComposeRepresentative({}, catalog_, "rep");
  EXPECT_FALSE(rep.ok());
}

}  // namespace
}  // namespace cosmos
