#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace cosmos {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Push(30, [&] { fired.push_back(3); });
  q.Push(10, [&] { fired.push_back(1); });
  q.Push(20, [&] { fired.push_back(2); });
  while (!q.Empty()) {
    auto [t, cb] = q.Pop();
    cb();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Push(5, [&] { fired.push_back(1); });
  q.Push(5, [&] { fired.push_back(2); });
  q.Push(5, [&] { fired.push_back(3); });
  while (!q.Empty()) q.Pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelSuppressesEvent) {
  EventQueue q;
  int fired = 0;
  uint64_t id = q.Push(1, [&] { ++fired; });
  q.Push(2, [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // already cancelled
  EXPECT_EQ(q.size(), 1u);
  while (!q.Empty()) q.Pop().second();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, NextTimeSkipsTombstones) {
  EventQueue q;
  uint64_t id = q.Push(1, [] {});
  q.Push(5, [] {});
  EXPECT_EQ(q.NextTime(), 1);
  q.Cancel(id);
  EXPECT_EQ(q.NextTime(), 5);
}

TEST(EventQueue, EmptyNextTimeIsInvalid) {
  EventQueue q;
  EXPECT_EQ(q.NextTime(), kInvalidTimestamp);
  EXPECT_TRUE(q.Empty());
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Timestamp> seen;
  sim.Schedule(100, [&] { seen.push_back(sim.now()); });
  sim.Schedule(50, [&] { seen.push_back(sim.now()); });
  size_t n = sim.Run();
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(seen, (std::vector<Timestamp>{50, 100}));
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<Timestamp> seen;
  sim.Schedule(10, [&] {
    seen.push_back(sim.now());
    sim.Schedule(5, [&] { seen.push_back(sim.now()); });
  });
  sim.Run();
  EXPECT_EQ(seen, (std::vector<Timestamp>{10, 15}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(20, [&] { ++fired; });
  sim.Schedule(30, [&] { ++fired; });
  size_t n = sim.RunUntil(20);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_TRUE(sim.HasPendingEvents());
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.HasPendingEvents());
  sim.Run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  int fired = 0;
  uint64_t id = sim.Schedule(10, [&] { ++fired; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, SchedulingInThePastDies) {
  Simulator sim;
  sim.Schedule(10, [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(5, [] {}), "CHECK failed");
}

TEST(Simulator, StepProcessesOne) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1, [&] { ++fired; });
  sim.Schedule(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

}  // namespace
}  // namespace cosmos
