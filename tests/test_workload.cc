#include "core/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "query/analyzer.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SensorDataset sensors;
    ASSERT_TRUE(sensors.RegisterAll(catalog_).ok());
  }
  Catalog catalog_;
};

TEST_F(WorkloadTest, GeneratedQueriesAllParseAndAnalyze) {
  WorkloadOptions opts;
  opts.zipf_theta = 1.0;
  opts.seed = 555;
  opts.aggregate_fraction = 0.2;
  QueryWorkloadGenerator gen(&catalog_, opts);
  for (int i = 0; i < 200; ++i) {
    std::string cql = gen.NextCql();
    auto q = ParseAndAnalyze(cql, catalog_, "r");
    EXPECT_TRUE(q.ok()) << cql << " -> " << q.status().ToString();
  }
}

TEST_F(WorkloadTest, DeterministicForSameSeed) {
  WorkloadOptions opts;
  opts.seed = 9;
  QueryWorkloadGenerator a(&catalog_, opts);
  QueryWorkloadGenerator b(&catalog_, opts);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextCql(), b.NextCql());
  }
}

TEST_F(WorkloadTest, ReseedRestartsSequence) {
  WorkloadOptions opts;
  opts.seed = 9;
  QueryWorkloadGenerator gen(&catalog_, opts);
  std::string first = gen.NextCql();
  gen.NextCql();
  gen.Reseed(9);
  EXPECT_EQ(gen.NextCql(), first);
}

TEST_F(WorkloadTest, SkewConcentratesStreams) {
  auto count_distinct_streams = [&](double theta) {
    WorkloadOptions opts;
    opts.zipf_theta = theta;
    opts.seed = 17;
    QueryWorkloadGenerator gen(&catalog_, opts);
    std::set<std::string> streams;
    for (int i = 0; i < 300; ++i) {
      auto q = ParseAndAnalyze(gen.NextCql(), catalog_, "r");
      if (q.ok()) streams.insert(q->sources()[0].from.stream);
    }
    return streams.size();
  };
  size_t uniform = count_distinct_streams(0.0);
  size_t skewed = count_distinct_streams(2.0);
  EXPECT_GT(uniform, skewed);
  EXPECT_LT(skewed, 20u);  // zipf2 over 63 streams clusters hard
}

TEST_F(WorkloadTest, SkewProducesMoreDuplicateQueries) {
  auto count_distinct = [&](double theta) {
    WorkloadOptions opts;
    opts.zipf_theta = theta;
    opts.seed = 23;
    QueryWorkloadGenerator gen(&catalog_, opts);
    std::set<std::string> qs;
    for (int i = 0; i < 300; ++i) qs.insert(gen.NextCql());
    return qs.size();
  };
  EXPECT_GT(count_distinct(0.0), count_distinct(2.0));
}

TEST_F(WorkloadTest, AggregateFractionProducesAggregates) {
  WorkloadOptions opts;
  opts.aggregate_fraction = 1.0;
  opts.seed = 3;
  QueryWorkloadGenerator gen(&catalog_, opts);
  for (int i = 0; i < 20; ++i) {
    auto q = ParseAndAnalyze(gen.NextCql(), catalog_, "r");
    ASSERT_TRUE(q.ok());
    EXPECT_TRUE(q->is_aggregate());
  }
}

TEST_F(WorkloadTest, JoinFractionProducesJoins) {
  WorkloadOptions opts;
  opts.join_fraction = 1.0;
  opts.seed = 3;
  QueryWorkloadGenerator gen(&catalog_, opts);
  int joins = 0;
  for (int i = 0; i < 20; ++i) {
    auto q = ParseAndAnalyze(gen.NextCql(), catalog_, "r");
    ASSERT_TRUE(q.ok());
    if (q->sources().size() == 2) ++joins;
  }
  EXPECT_GT(joins, 15);
}

}  // namespace
}  // namespace cosmos
