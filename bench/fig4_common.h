#ifndef COSMOS_BENCH_FIG4_COMMON_H_
#define COSMOS_BENCH_FIG4_COMMON_H_

// Shared experiment harness for Figure 4(a) Benefit Ratio and Figure 4(b)
// Grouping Ratio (paper §5):
//
//   - 63 SensorScope-like streams (synthetic stand-in, DESIGN.md),
//   - random select-project queries whose stream / window / predicate
//     choices follow uniform or zipf(theta) distributions,
//   - a 1000-node power-law (Barabási–Albert, BRITE stand-in) topology
//     with an MST dissemination tree,
//   - queries inserted incrementally into the greedy grouping engine;
//     metrics sampled at 2000-query checkpoints,
//   - averaged over repetitions with distinct seeds (paper: 20).
//
// Benefit ratio = 1 - merged_cost / unmerged_cost, where cost is the
// result-delivery communication cost over the dissemination tree:
//   unmerged: each query's result stream flows the full path from the
//             processor to its user at rate C(q);
//   merged:   each group's stream flows once per link, at
//             min(C(rep), sum of member rates downstream) — the CBN splits
//             the shared stream at branch points and the re-tightened
//             profiles thin it toward each user (Figure 3b).

#include <cstdio>
#include <map>
#include <vector>

#include "core/grouping.h"
#include "core/workload.h"
#include "overlay/dissemination_tree.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "stream/sensor_dataset.h"

namespace cosmos::bench {

struct Fig4Options {
  int num_nodes = 1000;
  int max_queries = 10000;
  int snapshot_step = 2000;
  int repetitions = 3;  // paper used 20; override via argv[1]
  std::vector<double> thetas = {0.0, 1.0, 1.5, 2.0};
  uint64_t seed = 42;
};

struct Fig4Cell {
  double benefit_ratio = 0.0;
  double grouping_ratio = 0.0;
};

// results[theta_index][snapshot_index], averaged over repetitions.
using Fig4Table = std::vector<std::vector<Fig4Cell>>;

inline Fig4Table RunFig4(const Fig4Options& options) {
  const int num_snapshots = options.max_queries / options.snapshot_step;
  Fig4Table table(options.thetas.size(),
                  std::vector<Fig4Cell>(num_snapshots));

  for (size_t ti = 0; ti < options.thetas.size(); ++ti) {
    for (int rep = 0; rep < options.repetitions; ++rep) {
      uint64_t run_seed =
          options.seed + 1000003ULL * rep + 7919ULL * ti;

      // Topology: BA power law + MST dissemination tree, processor at 0.
      TopologyOptions topo_opts;
      topo_opts.num_nodes = options.num_nodes;
      topo_opts.seed = run_seed;
      Topology topo = GenerateBarabasiAlbert(topo_opts);
      auto mst = MinimumSpanningTree(topo.graph);
      auto tree = DisseminationTree::FromEdges(options.num_nodes, *mst);

      // Parent pointers toward the processor (node 0).
      std::vector<NodeId> parent(options.num_nodes, -1);
      {
        std::vector<NodeId> stack{0};
        std::vector<bool> seen(options.num_nodes, false);
        seen[0] = true;
        while (!stack.empty()) {
          NodeId u = stack.back();
          stack.pop_back();
          for (const auto& [v, w] : tree->Neighbors(u)) {
            if (!seen[v]) {
              seen[v] = true;
              parent[v] = u;
              stack.push_back(v);
            }
          }
        }
      }

      // Streams.
      Catalog catalog;
      SensorDataset sensors;
      (void)sensors.RegisterAll(catalog);

      GroupingEngine engine(&catalog);
      WorkloadOptions wl;
      wl.zipf_theta = options.thetas[ti];
      wl.seed = run_seed ^ 0xABCDEF;
      QueryWorkloadGenerator gen(&catalog, wl);

      Rng user_rng(run_seed ^ 0x5555);
      struct QueryInfo {
        NodeId user;
        double rate;
      };
      std::map<std::string, QueryInfo> queries;

      int inserted = 0;
      for (int snap = 0; snap < num_snapshots; ++snap) {
        while (inserted < (snap + 1) * options.snapshot_step) {
          std::string id = "q" + std::to_string(inserted);
          auto analyzed =
              ParseAndAnalyze(gen.NextCql(), catalog, "result_" + id);
          if (!analyzed.ok()) continue;  // workload always parses; safety
          auto placed = engine.AddQuery(id, *analyzed);
          if (!placed.ok()) continue;
          QueryInfo info;
          info.user = static_cast<NodeId>(
              user_rng.NextBounded(options.num_nodes));
          info.rate =
              engine.rate_estimator().EstimateOutputRate(*analyzed);
          queries.emplace(id, info);
          ++inserted;
        }

        // ---- communication cost at this checkpoint ----
        double unmerged = 0.0;
        for (const auto& [id, info] : queries) {
          int depth = 0;
          for (NodeId v = info.user; v != 0 && v != -1; v = parent[v]) {
            ++depth;
          }
          unmerged += info.rate * depth;
        }
        double merged = 0.0;
        for (const auto& [gid, group] : engine.groups()) {
          // Accumulate member demand per link (link keyed by child node).
          std::map<NodeId, double> demand;
          for (const auto& mid : group.member_ids) {
            const QueryInfo& info = queries.at(mid);
            for (NodeId v = info.user; v != 0 && v != -1; v = parent[v]) {
              demand[v] += queries.at(mid).rate;
            }
            (void)info;
          }
          for (const auto& [link, sum] : demand) {
            merged += std::min(group.representative_rate, sum);
          }
        }
        Fig4Cell& cell = table[ti][snap];
        if (unmerged > 0) {
          cell.benefit_ratio += (1.0 - merged / unmerged);
        }
        cell.grouping_ratio += engine.GroupingRatio();
      }
    }
    for (auto& cell : table[ti]) {
      cell.benefit_ratio /= options.repetitions;
      cell.grouping_ratio /= options.repetitions;
    }
  }
  return table;
}

inline const char* ThetaLabel(double theta) {
  if (theta == 0.0) return "uniform";
  if (theta == 1.0) return "zipf1.0";
  if (theta == 1.5) return "zipf1.5";
  if (theta == 2.0) return "zipf2";
  return "zipf?";
}

}  // namespace cosmos::bench

#endif  // COSMOS_BENCH_FIG4_COMMON_H_
