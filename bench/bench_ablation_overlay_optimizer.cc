// Ablation abl-opt (DESIGN.md): dissemination-tree quality under the
// cost-driven local reorganization of §3.2 — random spanning tree vs. the
// MST the paper's evaluation uses vs. optimizer-improved trees, under a
// flow-weighted delay cost.

#include <cstdio>

#include "overlay/optimizer.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"

using namespace cosmos;

int main(int argc, char** argv) {
  int num_nodes = argc > 1 ? std::atoi(argv[1]) : 80;
  int num_flows = argc > 2 ? std::atoi(argv[2]) : 60;
  int reps = argc > 3 ? std::atoi(argv[3]) : 5;

  std::printf("# Ablation: overlay optimizer (%d nodes, %d flows, %d reps)\n",
              num_nodes, num_flows, reps);
  std::printf("%-12s %14s %14s %14s %14s\n", "rep", "random", "mst",
              "opt(random)", "opt(mst)");

  double sum_random = 0, sum_mst = 0, sum_opt_r = 0, sum_opt_m = 0;
  for (int rep = 0; rep < reps; ++rep) {
    TopologyOptions opts;
    opts.num_nodes = num_nodes;
    opts.ba_edges_per_node = 3;
    opts.seed = 1000 + rep;
    Topology topo = GenerateBarabasiAlbert(opts);

    Rng rng(500 + rep);
    std::vector<Flow> flows;
    for (int i = 0; i < num_flows; ++i) {
      Flow f;
      f.source = static_cast<NodeId>(rng.NextBounded(8));
      f.sink = static_cast<NodeId>(rng.NextBounded(num_nodes));
      f.rate_bps = rng.NextDouble(100.0, 5000.0);
      flows.push_back(f);
    }

    OverlayOptimizer optimizer(topo.graph);
    auto random_tree =
        DisseminationTree::FromEdges(
            num_nodes, *RandomSpanningTree(topo.graph, rng))
            .value();
    auto mst = DisseminationTree::FromEdges(
                   num_nodes, *MinimumSpanningTree(topo.graph))
                   .value();

    double c_random = optimizer.TreeCost(random_tree, flows);
    double c_mst = optimizer.TreeCost(mst, flows);
    double c_opt_r =
        optimizer.TreeCost(*optimizer.Optimize(random_tree, flows), flows);
    double c_opt_m =
        optimizer.TreeCost(*optimizer.Optimize(mst, flows), flows);

    std::printf("%-12d %14.0f %14.0f %14.0f %14.0f\n", rep, c_random, c_mst,
                c_opt_r, c_opt_m);
    sum_random += c_random;
    sum_mst += c_mst;
    sum_opt_r += c_opt_r;
    sum_opt_m += c_opt_m;
  }
  std::printf("%-12s %14.0f %14.0f %14.0f %14.0f\n", "mean",
              sum_random / reps, sum_mst / reps, sum_opt_r / reps,
              sum_opt_m / reps);
  std::printf("\noptimizing the random tree recovers %.1f%% of its gap to "
              "the optimized MST\n",
              100.0 * (sum_random - sum_opt_r) /
                  std::max(1.0, sum_random - sum_opt_m));
  return sum_opt_r <= sum_random && sum_opt_m <= sum_mst ? 0 : 1;
}
