// Reproduces Figure 4(a) — Benefit Ratio vs. number of inserted queries,
// for the uniform / zipf1.0 / zipf1.5 / zipf2 query distributions.
// Paper's qualitative shape: benefit grows with #queries and with skew
// (zipf2 highest, uniform lowest).
//
// Usage: bench_fig4a_benefit_ratio [repetitions] [max_queries] [num_nodes]
// Defaults are scaled for a laptop run; the paper's setting is
// repetitions=20, max_queries=10000, num_nodes=1000.

#include "fig4_common.h"

int main(int argc, char** argv) {
  using namespace cosmos::bench;
  Fig4Options options;
  if (argc > 1) options.repetitions = std::atoi(argv[1]);
  if (argc > 2) options.max_queries = std::atoi(argv[2]);
  if (argc > 3) options.num_nodes = std::atoi(argv[3]);
  options.snapshot_step = options.max_queries / 5;

  Fig4Table table = RunFig4(options);

  std::printf("# Figure 4(a): Benefit Ratio "
              "(reps=%d, nodes=%d, streams=63)\n",
              options.repetitions, options.num_nodes);
  std::printf("%-10s", "#queries");
  for (double theta : options.thetas) std::printf("%10s", ThetaLabel(theta));
  std::printf("\n");
  for (size_t snap = 0; snap < table[0].size(); ++snap) {
    std::printf("%-10d",
                static_cast<int>((snap + 1) * options.snapshot_step));
    for (size_t ti = 0; ti < options.thetas.size(); ++ti) {
      std::printf("%10.3f", table[ti][snap].benefit_ratio);
    }
    std::printf("\n");
  }
  return 0;
}
