// Reproduces Figure 4(b) — Grouping Ratio (#groups / #queries) vs. number
// of inserted queries, for the four query distributions. Paper's shape:
// the ratio falls as queries accumulate and falls faster with skew (the
// lower the grouping ratio, the higher the benefit ratio of Fig. 4a).
//
// Usage: bench_fig4b_grouping_ratio [repetitions] [max_queries] [num_nodes]

#include "fig4_common.h"

int main(int argc, char** argv) {
  using namespace cosmos::bench;
  Fig4Options options;
  if (argc > 1) options.repetitions = std::atoi(argv[1]);
  if (argc > 2) options.max_queries = std::atoi(argv[2]);
  if (argc > 3) options.num_nodes = std::atoi(argv[3]);
  options.snapshot_step = options.max_queries / 5;

  Fig4Table table = RunFig4(options);

  std::printf("# Figure 4(b): Grouping Ratio "
              "(reps=%d, nodes=%d, streams=63)\n",
              options.repetitions, options.num_nodes);
  std::printf("%-10s", "#queries");
  for (double theta : options.thetas) std::printf("%10s", ThetaLabel(theta));
  std::printf("\n");
  for (size_t snap = 0; snap < table[0].size(); ++snap) {
    std::printf("%-10d",
                static_cast<int>((snap + 1) * options.snapshot_step));
    for (size_t ti = 0; ti < options.thetas.size(); ++ti) {
      std::printf("%10.3f", table[ti][snap].grouping_ratio);
    }
    std::printf("\n");
  }
  return 0;
}
