// Ablation abl-proj (DESIGN.md): early projection in the CBN (§3.1's
// extension of classic content-based networking) on vs. off. A traditional
// CBN filters but forwards whole datagrams; COSMOS projects away unneeded
// attributes at the first hop. Measures bytes moved for a sensor workload
// where subscribers want a few of the ~11 attributes.

#include <cstdio>

#include "cbn/network.h"
#include "core/profile_composer.h"
#include "core/workload.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "stream/sensor_dataset.h"

using namespace cosmos;

namespace {

uint64_t Run(bool early_projection, int num_queries) {
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 100;
  topo_opts.seed = 3;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto mst = MinimumSpanningTree(topo.graph);
  auto tree =
      DisseminationTree::FromEdges(topo_opts.num_nodes, *mst).value();

  NetworkOptions net_opts;
  net_opts.early_projection = early_projection;
  ContentBasedNetwork network(std::move(tree), net_opts);

  Catalog catalog;
  SensorDatasetOptions sopts;
  sopts.duration = 20 * kMinute;
  SensorDataset sensors(sopts);
  (void)sensors.RegisterAll(catalog);

  // Subscribers: random queries' source profiles at random nodes.
  WorkloadOptions wl;
  wl.zipf_theta = 1.0;
  wl.seed = 77;
  wl.max_projected = 2;  // narrow interests make projection matter
  QueryWorkloadGenerator gen(&catalog, wl);
  Rng rng(123);
  for (int i = 0; i < num_queries; ++i) {
    auto analyzed = ParseAndAnalyze(gen.NextCql(), catalog,
                                    "r" + std::to_string(i));
    if (!analyzed.ok()) continue;
    Profile profile = ComposeSourceProfile(*analyzed);
    NodeId node = static_cast<NodeId>(rng.NextBounded(topo_opts.num_nodes));
    network.Subscribe(node, std::move(profile), nullptr);
  }

  // Publish the sensor replay from per-station publisher nodes.
  Rng pub_rng(9);
  std::vector<NodeId> publisher(sensors.num_stations());
  for (auto& p : publisher) {
    p = static_cast<NodeId>(pub_rng.NextBounded(topo_opts.num_nodes));
  }
  auto replay = sensors.MakeReplay();
  while (auto t = replay->Next()) {
    const std::string& stream = t->schema()->stream_name();
    int station = static_cast<int>(t->value(0).AsInt64());
    network.Publish(publisher[station], Datagram{stream, *t});
  }
  return network.total_bytes();
}

}  // namespace

int main(int argc, char** argv) {
  int num_queries = argc > 1 ? std::atoi(argv[1]) : 100;
  std::printf("# Ablation: early projection (100-node BA overlay, 63 "
              "sensor streams, %d subscriptions)\n",
              num_queries);
  uint64_t without = Run(false, num_queries);
  uint64_t with = Run(true, num_queries);
  std::printf("%-32s %16llu\n", "bytes, filter-only CBN",
              static_cast<unsigned long long>(without));
  std::printf("%-32s %16llu\n", "bytes, with early projection",
              static_cast<unsigned long long>(with));
  std::printf("early projection saves %.1f%% of transfer\n",
              100.0 * (1.0 - static_cast<double>(with) / without));
  return with <= without ? 0 : 1;
}
