// Ablation abl-greedy (DESIGN.md): the incremental greedy grouping of §4
// vs. (a) no merging and (b) an exhaustive best-pair baseline that, for
// each insertion, evaluates the *exact* composed representative for every
// compatible group instead of the fast rate prediction. Reports the merged
// result-rate total (lower is better) and wall time.

#include <chrono>
#include <cstdio>

#include "core/grouping.h"
#include "core/workload.h"
#include "stream/sensor_dataset.h"

using namespace cosmos;

namespace {

struct Outcome {
  size_t groups = 0;
  double merged_rate = 0.0;
  double unmerged_rate = 0.0;
  double millis = 0.0;
};

Outcome RunGreedy(const Catalog& catalog, const std::vector<std::string>& cqls,
                  size_t max_candidates) {
  GroupingOptions gopts;
  gopts.max_candidates = max_candidates;
  GroupingEngine engine(&catalog, gopts);
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < cqls.size(); ++i) {
    auto analyzed =
        ParseAndAnalyze(cqls[i], catalog, "r" + std::to_string(i));
    if (!analyzed.ok()) continue;
    (void)engine.AddQuery("q" + std::to_string(i), *analyzed);
  }
  auto end = std::chrono::steady_clock::now();
  Outcome o;
  o.groups = engine.num_groups();
  o.merged_rate = engine.TotalRepresentativeRate();
  o.unmerged_rate = engine.TotalMemberRate();
  o.millis =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count() /
      1000.0;
  return o;
}

// Exhaustive baseline: exact composition against every compatible group,
// keeping the group whose exact composed representative minimizes rate.
Outcome RunExhaustive(const Catalog& catalog,
                      const std::vector<std::string>& cqls) {
  RateEstimator estimator(&catalog);
  struct Group {
    std::vector<AnalyzedQuery> members;
    AnalyzedQuery rep;
    double rate;
  };
  std::vector<Group> groups;
  double unmerged = 0.0;
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < cqls.size(); ++i) {
    auto analyzed =
        ParseAndAnalyze(cqls[i], catalog, "r" + std::to_string(i));
    if (!analyzed.ok()) continue;
    double rate = estimator.EstimateOutputRate(*analyzed);
    unmerged += rate;
    int best = -1;
    double best_marginal = 0.0;
    AnalyzedQuery best_rep;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (!MergeCompatible(groups[g].rep, *analyzed)) continue;
      std::vector<const AnalyzedQuery*> pair = {&groups[g].rep,
                                                &*analyzed};
      auto rep = ComposeRepresentative(pair, catalog,
                                       "g" + std::to_string(g));
      if (!rep.ok()) continue;
      double merged_rate = estimator.EstimateOutputRate(*rep);
      double marginal = groups[g].rate + rate - merged_rate;
      if (marginal > best_marginal) {
        best_marginal = marginal;
        best = static_cast<int>(g);
        best_rep = std::move(*rep);
      }
    }
    if (best >= 0) {
      groups[best].members.push_back(*analyzed);
      groups[best].rep = std::move(best_rep);
      groups[best].rate = estimator.EstimateOutputRate(groups[best].rep);
    } else {
      Group g;
      g.members.push_back(*analyzed);
      g.rep = *analyzed;
      g.rate = rate;
      groups.push_back(std::move(g));
    }
  }
  auto end = std::chrono::steady_clock::now();
  Outcome o;
  o.groups = groups.size();
  for (const auto& g : groups) o.merged_rate += g.rate;
  o.unmerged_rate = unmerged;
  o.millis =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count() /
      1000.0;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  int num_queries = argc > 1 ? std::atoi(argv[1]) : 400;
  double theta = argc > 2 ? std::atof(argv[2]) : 1.5;

  Catalog catalog;
  SensorDataset sensors;
  (void)sensors.RegisterAll(catalog);

  WorkloadOptions wl;
  wl.zipf_theta = theta;
  wl.seed = 4242;
  QueryWorkloadGenerator gen(&catalog, wl);
  std::vector<std::string> cqls;
  for (int i = 0; i < num_queries; ++i) cqls.push_back(gen.NextCql());

  std::printf("# Ablation: grouping policy (%d zipf(%.1f) queries)\n",
              num_queries, theta);
  std::printf("%-24s %8s %14s %14s %10s\n", "policy", "groups",
              "merged B/s", "saved", "ms");

  Outcome none = RunGreedy(catalog, cqls, 0);
  Outcome greedy = RunGreedy(catalog, cqls, 256);
  Outcome exhaustive = RunExhaustive(catalog, cqls);

  auto print = [](const char* name, const Outcome& o) {
    std::printf("%-24s %8zu %14.1f %13.1f%% %10.1f\n", name, o.groups,
                o.merged_rate,
                100.0 * (o.unmerged_rate - o.merged_rate) /
                    std::max(1.0, o.unmerged_rate),
                o.millis);
  };
  print("no merging", none);
  print("greedy (fast estimate)", greedy);
  print("exhaustive (exact)", exhaustive);

  return greedy.merged_rate <= none.merged_rate ? 0 : 1;
}
