// Ablation abl-adv (DESIGN.md): cost of subscription state under the three
// propagation regimes —
//   flood:       subscriptions installed network-wide, no pruning
//   covering:    flooding with covering-based pruning (classic CBN)
//   advertised:  advertisement-scoped installation (paper §2: sources and
//                processors advertise their streams, so interest state only
//                lives on publisher->subscriber paths)
// Reports control messages and routing-table entries; data delivery is
// identical under all three (asserted).

#include <cstdio>

#include "cbn/network.h"
#include "core/profile_composer.h"
#include "core/workload.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "stream/sensor_dataset.h"

using namespace cosmos;

namespace {

struct Outcome {
  uint64_t control_messages = 0;
  size_t table_entries = 0;
  int deliveries = 0;
};

Outcome Run(int mode, int num_nodes, int num_subs) {
  TopologyOptions topo_opts;
  topo_opts.num_nodes = num_nodes;
  topo_opts.seed = 13;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto tree = DisseminationTree::FromEdges(
                  num_nodes, *MinimumSpanningTree(topo.graph))
                  .value();
  NetworkOptions opts;
  opts.covering_prune = (mode >= 1);
  opts.advertisement_scoping = (mode == 2);
  ContentBasedNetwork net(std::move(tree), opts);

  Catalog catalog;
  SensorDataset sensors;
  (void)sensors.RegisterAll(catalog);

  // Publishers at deterministic nodes.
  Rng pub_rng(7);
  std::vector<NodeId> publisher(sensors.num_stations());
  for (int k = 0; k < sensors.num_stations(); ++k) {
    publisher[k] = static_cast<NodeId>(pub_rng.NextBounded(num_nodes));
    net.Advertise(publisher[k], SensorDataset::StreamName(k));
  }

  WorkloadOptions wl;
  wl.zipf_theta = 1.0;
  wl.seed = 99;
  QueryWorkloadGenerator gen(&catalog, wl);
  Outcome out;
  Rng sub_rng(55);
  for (int i = 0; i < num_subs; ++i) {
    auto q = ParseAndAnalyze(gen.NextCql(), catalog,
                             "r" + std::to_string(i));
    if (!q.ok()) continue;
    net.Subscribe(static_cast<NodeId>(sub_rng.NextBounded(num_nodes)),
                  ComposeSourceProfile(*q),
                  [&out](const std::string&, const Tuple&) {
                    ++out.deliveries;
                  });
  }
  out.control_messages = net.control_messages();
  out.table_entries = net.TotalTableEntries();

  // Verify delivery equivalence with a short replay.
  SensorDatasetOptions sopts;
  sopts.duration = 10 * kMinute;
  SensorDataset data(sopts);
  auto replay = data.MakeReplay();
  while (auto t = replay->Next()) {
    int station = static_cast<int>(t->value(0).AsInt64());
    net.Publish(publisher[station],
                Datagram{t->schema()->stream_name(), *t});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int num_nodes = argc > 1 ? std::atoi(argv[1]) : 200;
  int num_subs = argc > 2 ? std::atoi(argv[2]) : 150;
  std::printf("# Ablation: subscription propagation (%d nodes, 63 streams, "
              "%d subscriptions)\n",
              num_nodes, num_subs);
  std::printf("%-28s %16s %16s %14s\n", "regime", "control msgs",
              "table entries", "deliveries");

  const char* names[] = {"flood", "covering-prune", "advertised"};
  Outcome outcomes[3];
  for (int mode = 0; mode < 3; ++mode) {
    outcomes[mode] = Run(mode, num_nodes, num_subs);
    std::printf("%-28s %16llu %16zu %14d\n", names[mode],
                static_cast<unsigned long long>(
                    outcomes[mode].control_messages),
                outcomes[mode].table_entries, outcomes[mode].deliveries);
  }
  bool equivalent = outcomes[0].deliveries == outcomes[1].deliveries &&
                    outcomes[1].deliveries == outcomes[2].deliveries;
  std::printf("\ndelivery identical across regimes: %s\n",
              equivalent ? "yes" : "NO (bug!)");
  std::printf("advertisement scoping keeps %.1f%% of flooded table state\n",
              100.0 * outcomes[2].table_entries /
                  std::max<size_t>(1, outcomes[0].table_entries));
  return equivalent ? 0 : 1;
}
