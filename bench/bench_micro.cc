// Hot-path microbenchmarks (google-benchmark): filter evaluation, profile
// covering, query parsing/analysis, containment, representative
// composition, window-join throughput, and CBN publish.

#include <benchmark/benchmark.h>

#include "cbn/codec.h"
#include "cbn/covering.h"
#include "cbn/network.h"
#include "core/merger.h"
#include "core/profile_composer.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "spe/join.h"
#include "spe/multiway_join.h"
#include "stream/auction_dataset.h"
#include "stream/sensor_dataset.h"

namespace cosmos {
namespace {

Tuple MakeSensorTuple(const std::shared_ptr<const Schema>& schema,
                      double temperature, Timestamp ts) {
  std::vector<Value> values;
  for (const auto& def : schema->attributes()) {
    if (def.name == "ambient_temperature") {
      values.emplace_back(temperature);
    } else if (def.type == ValueType::kInt64) {
      values.emplace_back(int64_t{1});
    } else {
      values.emplace_back(10.0);
    }
  }
  return Tuple(schema, std::move(values), ts);
}

void BM_FilterCovers(benchmark::State& state) {
  SensorDataset sensors;
  auto schema = sensors.SchemaOf(0);
  ConjunctiveClause clause;
  clause.ConstrainInterval("ambient_temperature",
                           Interval(10.0, false, 25.0, false));
  clause.ConstrainInterval("relative_humidity",
                           Interval(0.0, false, 60.0, false));
  Filter filter(schema->stream_name(), clause);
  Datagram d{schema->stream_name(), MakeSensorTuple(schema, 15.0, 1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Covers(d));
  }
}
BENCHMARK(BM_FilterCovers);

void BM_ProfileCovering(benchmark::State& state) {
  SensorDataset sensors;
  auto schema = sensors.SchemaOf(0);
  Profile wide;
  ConjunctiveClause wc;
  wc.ConstrainInterval("ambient_temperature",
                       Interval(0.0, false, 30.0, false));
  wide.AddFilter(Filter(schema->stream_name(), wc));
  Profile narrow;
  ConjunctiveClause nc;
  nc.ConstrainInterval("ambient_temperature",
                       Interval(10.0, false, 20.0, false));
  narrow.AddFilter(Filter(schema->stream_name(), nc));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProfileCovers(wide, narrow));
  }
}
BENCHMARK(BM_ProfileCovering);

void BM_ParseAndAnalyze(benchmark::State& state) {
  Catalog catalog;
  AuctionDataset auctions;
  (void)auctions.RegisterAll(catalog);
  const std::string cql =
      "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp "
      "FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID";
  for (auto _ : state) {
    auto q = ParseAndAnalyze(cql, catalog, "r");
    benchmark::DoNotOptimize(q.ok());
  }
}
BENCHMARK(BM_ParseAndAnalyze);

void BM_QueryContains(benchmark::State& state) {
  Catalog catalog;
  AuctionDataset auctions;
  (void)auctions.RegisterAll(catalog);
  auto q1 = ParseAndAnalyze(
      "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID",
      catalog, "r1");
  auto q2 = ParseAndAnalyze(
      "SELECT O.* FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID",
      catalog, "r2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryContains(*q2, *q1));
  }
}
BENCHMARK(BM_QueryContains);

void BM_ComposeRepresentative(benchmark::State& state) {
  Catalog catalog;
  SensorDataset sensors;
  (void)sensors.RegisterAll(catalog);
  auto q1 = ParseAndAnalyze(
      "SELECT ambient_temperature FROM sensor_00 [Range 1 Hour] "
      "WHERE ambient_temperature >= 10 AND ambient_temperature <= 20",
      catalog, "r1");
  auto q2 = ParseAndAnalyze(
      "SELECT ambient_temperature, relative_humidity FROM sensor_00 "
      "[Range 2 Hour] WHERE ambient_temperature >= 15 AND "
      "ambient_temperature <= 25",
      catalog, "r2");
  std::vector<const AnalyzedQuery*> members = {&*q1, &*q2};
  for (auto _ : state) {
    auto rep = ComposeRepresentative(members, catalog, "rep");
    benchmark::DoNotOptimize(rep.ok());
  }
}
BENCHMARK(BM_ComposeRepresentative);

void BM_WindowJoin(benchmark::State& state) {
  AuctionDataset auctions;
  auto open = AuctionDataset::OpenAuctionSchema();
  auto closed = AuctionDataset::ClosedAuctionSchema();
  auto joined = MakeJoinedSchema(*open, "O", *closed, "C", "j");
  size_t emitted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    WindowJoinOperator join(3 * kHour, 0, {{0, 0}}, nullptr, joined);
    join.SetSink([&emitted](const Tuple&) { ++emitted; });
    auto open_gen = auctions.MakeOpenGenerator();
    auto closed_gen = auctions.MakeClosedGenerator();
    ReplayMerger merger = [&] {
      std::vector<std::unique_ptr<StreamGenerator>> gens;
      gens.push_back(std::move(open_gen));
      gens.push_back(std::move(closed_gen));
      return ReplayMerger(std::move(gens));
    }();
    state.ResumeTiming();
    while (auto t = merger.Next()) {
      join.Push(t->schema()->stream_name() == "OpenAuction" ? 0 : 1, *t);
    }
  }
  benchmark::DoNotOptimize(emitted);
}
BENCHMARK(BM_WindowJoin)->Unit(benchmark::kMillisecond);

// Hash-indexed join probing under a resident window of `range(0)` tuples:
// time per arrival should stay flat as the window grows (O(matches)).
void BM_WindowJoinProbe(benchmark::State& state) {
  const int64_t resident = state.range(0);
  auto left = std::make_shared<Schema>(
      "L", std::vector<AttributeDef>{{"k", ValueType::kInt64}});
  auto right = std::make_shared<Schema>(
      "R", std::vector<AttributeDef>{{"k", ValueType::kInt64}});
  auto out = MakeJoinedSchema(*left, "L", *right, "R", "J");
  WindowJoinOperator join(kInfiniteDuration, kInfiniteDuration, {{0, 0}},
                          nullptr, out);
  join.SetSink(nullptr);
  // Populate the left window with distinct keys.
  for (int64_t i = 0; i < resident; ++i) {
    join.Push(0, Tuple(left, {Value(i)}, i));
  }
  int64_t ts = resident;
  int64_t key = 0;
  for (auto _ : state) {
    join.Push(1, Tuple(right, {Value(key % resident)}, ts));
    ++ts;
    ++key;
    state.PauseTiming();
    // Keep the right buffer from growing unboundedly across iterations.
    state.ResumeTiming();
  }
}
BENCHMARK(BM_WindowJoinProbe)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MultiWayJoinThreeStreams(benchmark::State& state) {
  auto schema = std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"k", ValueType::kInt64}});
  auto out = MakeConcatenatedSchema(
      {{schema.get(), "A"}, {schema.get(), "B"}, {schema.get(), "C"}}, "J");
  size_t emitted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MultiWayJoinOperator join({10, 10, 10}, {{0, 0, 1, 0}, {1, 0, 2, 0}},
                              nullptr, out);
    join.SetSink([&emitted](const Tuple&) { ++emitted; });
    state.ResumeTiming();
    Rng rng(7);
    for (int i = 0; i < 3000; ++i) {
      join.Push(rng.NextBounded(3),
                Tuple(schema, {Value(rng.NextInt(0, 9))}, i));
    }
  }
  benchmark::DoNotOptimize(emitted);
}
BENCHMARK(BM_MultiWayJoinThreeStreams)->Unit(benchmark::kMillisecond);

void BM_CodecRoundTrip(benchmark::State& state) {
  SensorDataset sensors;
  auto schema = sensors.SchemaOf(0);
  Datagram d{schema->stream_name(), MakeSensorTuple(schema, 20.0, 5)};
  for (auto _ : state) {
    auto bytes = EncodeDatagram(d);
    auto decoded = DecodeDatagram(bytes);
    benchmark::DoNotOptimize(decoded.ok());
  }
}
BENCHMARK(BM_CodecRoundTrip);

void BM_CbnPublish(benchmark::State& state) {
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 100;
  topo_opts.seed = 12;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto tree = DisseminationTree::FromEdges(
                  topo_opts.num_nodes, *MinimumSpanningTree(topo.graph))
                  .value();
  ContentBasedNetwork network(std::move(tree));
  SensorDataset sensors;
  auto schema = sensors.SchemaOf(0);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Profile p;
    ConjunctiveClause c;
    c.ConstrainInterval("ambient_temperature",
                        Interval(rng.NextDouble(-10, 10), false,
                                 rng.NextDouble(15, 35), false));
    p.AddStream(schema->stream_name(),
                {"ambient_temperature", "relative_humidity"});
    p.AddFilter(Filter(schema->stream_name(), c));
    network.Subscribe(static_cast<NodeId>(rng.NextBounded(100)),
                      std::move(p), nullptr);
  }
  Datagram d{schema->stream_name(), MakeSensorTuple(schema, 18.0, 1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(network.Publish(0, d));
  }
}
BENCHMARK(BM_CbnPublish);

}  // namespace
}  // namespace cosmos
