// Hot-path microbenchmarks (google-benchmark): filter evaluation, profile
// covering, query parsing/analysis, containment, representative
// composition, window-join throughput, CBN publish, and CBN forwarding
// (stream-partitioned index vs the pre-index linear scan).
//
// The forwarding/matching benchmarks feed BENCH_routing.json (see
// EXPERIMENTS.md):
//   bench_micro --benchmark_filter='BM_RoutingForward|BM_Match'
//       --benchmark_out=BENCH_routing.json --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <set>

#include "cbn/codec.h"
#include "cbn/covering.h"
#include "cbn/network.h"
#include "core/merger.h"
#include "core/profile_composer.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "spe/join.h"
#include "spe/multiway_join.h"
#include "stream/auction_dataset.h"
#include "stream/sensor_dataset.h"

// Heap-allocation counter for the forwarding benchmarks: replacing the
// global operator new is the only way to observe the per-datagram
// allocation count without intrusive instrumentation. new[]/delete[]
// forward here per the standard, so one pair suffices.
namespace {
std::atomic<uint64_t> g_allocation_count{0};
}  // namespace

// noinline keeps GCC from tracing malloc/free through the replaced
// operators and mis-reporting -Wmismatched-new-delete at call sites.
__attribute__((noinline)) void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

__attribute__((noinline)) void operator delete(void* p) noexcept {
  std::free(p);
}
__attribute__((noinline)) void operator delete(void* p,
                                               std::size_t) noexcept {
  std::free(p);
}

namespace cosmos {
namespace {

Tuple MakeSensorTuple(const std::shared_ptr<const Schema>& schema,
                      double temperature, Timestamp ts) {
  std::vector<Value> values;
  for (const auto& def : schema->attributes()) {
    if (def.name == "ambient_temperature") {
      values.emplace_back(temperature);
    } else if (def.type == ValueType::kInt64) {
      values.emplace_back(int64_t{1});
    } else {
      values.emplace_back(10.0);
    }
  }
  return Tuple(schema, std::move(values), ts);
}

void BM_FilterCovers(benchmark::State& state) {
  SensorDataset sensors;
  auto schema = sensors.SchemaOf(0);
  ConjunctiveClause clause;
  clause.ConstrainInterval("ambient_temperature",
                           Interval(10.0, false, 25.0, false));
  clause.ConstrainInterval("relative_humidity",
                           Interval(0.0, false, 60.0, false));
  Filter filter(schema->stream_name(), clause);
  Datagram d{schema->stream_name(), MakeSensorTuple(schema, 15.0, 1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Covers(d));
  }
}
BENCHMARK(BM_FilterCovers);

void BM_ProfileCovering(benchmark::State& state) {
  SensorDataset sensors;
  auto schema = sensors.SchemaOf(0);
  Profile wide;
  ConjunctiveClause wc;
  wc.ConstrainInterval("ambient_temperature",
                       Interval(0.0, false, 30.0, false));
  wide.AddFilter(Filter(schema->stream_name(), wc));
  Profile narrow;
  ConjunctiveClause nc;
  nc.ConstrainInterval("ambient_temperature",
                       Interval(10.0, false, 20.0, false));
  narrow.AddFilter(Filter(schema->stream_name(), nc));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProfileCovers(wide, narrow));
  }
}
BENCHMARK(BM_ProfileCovering);

void BM_ParseAndAnalyze(benchmark::State& state) {
  Catalog catalog;
  AuctionDataset auctions;
  (void)auctions.RegisterAll(catalog);
  const std::string cql =
      "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp "
      "FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID";
  for (auto _ : state) {
    auto q = ParseAndAnalyze(cql, catalog, "r");
    benchmark::DoNotOptimize(q.ok());
  }
}
BENCHMARK(BM_ParseAndAnalyze);

void BM_QueryContains(benchmark::State& state) {
  Catalog catalog;
  AuctionDataset auctions;
  (void)auctions.RegisterAll(catalog);
  auto q1 = ParseAndAnalyze(
      "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID",
      catalog, "r1");
  auto q2 = ParseAndAnalyze(
      "SELECT O.* FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
      "WHERE O.itemID = C.itemID",
      catalog, "r2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(QueryContains(*q2, *q1));
  }
}
BENCHMARK(BM_QueryContains);

void BM_ComposeRepresentative(benchmark::State& state) {
  Catalog catalog;
  SensorDataset sensors;
  (void)sensors.RegisterAll(catalog);
  auto q1 = ParseAndAnalyze(
      "SELECT ambient_temperature FROM sensor_00 [Range 1 Hour] "
      "WHERE ambient_temperature >= 10 AND ambient_temperature <= 20",
      catalog, "r1");
  auto q2 = ParseAndAnalyze(
      "SELECT ambient_temperature, relative_humidity FROM sensor_00 "
      "[Range 2 Hour] WHERE ambient_temperature >= 15 AND "
      "ambient_temperature <= 25",
      catalog, "r2");
  std::vector<const AnalyzedQuery*> members = {&*q1, &*q2};
  for (auto _ : state) {
    auto rep = ComposeRepresentative(members, catalog, "rep");
    benchmark::DoNotOptimize(rep.ok());
  }
}
BENCHMARK(BM_ComposeRepresentative);

void BM_WindowJoin(benchmark::State& state) {
  AuctionDataset auctions;
  auto open = AuctionDataset::OpenAuctionSchema();
  auto closed = AuctionDataset::ClosedAuctionSchema();
  auto joined = MakeJoinedSchema(*open, "O", *closed, "C", "j");
  size_t emitted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    WindowJoinOperator join(3 * kHour, 0, {{0, 0}}, nullptr, joined);
    join.SetSink([&emitted](const Tuple&) { ++emitted; });
    auto open_gen = auctions.MakeOpenGenerator();
    auto closed_gen = auctions.MakeClosedGenerator();
    ReplayMerger merger = [&] {
      std::vector<std::unique_ptr<StreamGenerator>> gens;
      gens.push_back(std::move(open_gen));
      gens.push_back(std::move(closed_gen));
      return ReplayMerger(std::move(gens));
    }();
    state.ResumeTiming();
    while (auto t = merger.Next()) {
      join.Push(t->schema()->stream_name() == "OpenAuction" ? 0 : 1, *t);
    }
  }
  benchmark::DoNotOptimize(emitted);
}
BENCHMARK(BM_WindowJoin)->Unit(benchmark::kMillisecond);

// Hash-indexed join probing under a resident window of `range(0)` tuples:
// time per arrival should stay flat as the window grows (O(matches)).
void BM_WindowJoinProbe(benchmark::State& state) {
  const int64_t resident = state.range(0);
  auto left = std::make_shared<Schema>(
      "L", std::vector<AttributeDef>{{"k", ValueType::kInt64}});
  auto right = std::make_shared<Schema>(
      "R", std::vector<AttributeDef>{{"k", ValueType::kInt64}});
  auto out = MakeJoinedSchema(*left, "L", *right, "R", "J");
  WindowJoinOperator join(kInfiniteDuration, kInfiniteDuration, {{0, 0}},
                          nullptr, out);
  join.SetSink(nullptr);
  // Populate the left window with distinct keys.
  for (int64_t i = 0; i < resident; ++i) {
    join.Push(0, Tuple(left, {Value(i)}, i));
  }
  int64_t ts = resident;
  int64_t key = 0;
  for (auto _ : state) {
    join.Push(1, Tuple(right, {Value(key % resident)}, ts));
    ++ts;
    ++key;
    state.PauseTiming();
    // Keep the right buffer from growing unboundedly across iterations.
    state.ResumeTiming();
  }
}
BENCHMARK(BM_WindowJoinProbe)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MultiWayJoinThreeStreams(benchmark::State& state) {
  auto schema = std::make_shared<Schema>(
      "S", std::vector<AttributeDef>{{"k", ValueType::kInt64}});
  auto out = MakeConcatenatedSchema(
      {{schema.get(), "A"}, {schema.get(), "B"}, {schema.get(), "C"}}, "J");
  size_t emitted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MultiWayJoinOperator join({10, 10, 10}, {{0, 0, 1, 0}, {1, 0, 2, 0}},
                              nullptr, out);
    join.SetSink([&emitted](const Tuple&) { ++emitted; });
    state.ResumeTiming();
    Rng rng(7);
    for (int i = 0; i < 3000; ++i) {
      join.Push(rng.NextBounded(3),
                Tuple(schema, {Value(rng.NextInt(0, 9))}, i));
    }
  }
  benchmark::DoNotOptimize(emitted);
}
BENCHMARK(BM_MultiWayJoinThreeStreams)->Unit(benchmark::kMillisecond);

void BM_CodecRoundTrip(benchmark::State& state) {
  SensorDataset sensors;
  auto schema = sensors.SchemaOf(0);
  Datagram d{schema->stream_name(), MakeSensorTuple(schema, 20.0, 5)};
  for (auto _ : state) {
    auto bytes = EncodeDatagram(d);
    auto decoded = DecodeDatagram(bytes);
    benchmark::DoNotOptimize(decoded.ok());
  }
}
BENCHMARK(BM_CodecRoundTrip);

void BM_CbnPublish(benchmark::State& state) {
  TopologyOptions topo_opts;
  topo_opts.num_nodes = 100;
  topo_opts.seed = 12;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto tree = DisseminationTree::FromEdges(
                  topo_opts.num_nodes, *MinimumSpanningTree(topo.graph))
                  .value();
  ContentBasedNetwork network(std::move(tree));
  SensorDataset sensors;
  auto schema = sensors.SchemaOf(0);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Profile p;
    ConjunctiveClause c;
    c.ConstrainInterval("ambient_temperature",
                        Interval(rng.NextDouble(-10, 10), false,
                                 rng.NextDouble(15, 35), false));
    p.AddStream(schema->stream_name(),
                {"ambient_temperature", "relative_humidity"});
    p.AddFilter(Filter(schema->stream_name(), c));
    network.Subscribe(static_cast<NodeId>(rng.NextBounded(100)),
                      std::move(p), nullptr);
  }
  Datagram d{schema->stream_name(), MakeSensorTuple(schema, 18.0, 1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(network.Publish(0, d));
  }
}
BENCHMARK(BM_CbnPublish);

// ---- telemetry overhead ----
//
// The instruments are meant to stay on everywhere, so their hot-path cost
// is gated: BM_CounterHotPath measures one cached-handle increment, and the
// BM_ForwardWith/WithoutTelemetry pair publishes through an instrumented vs
// bare CBN — tools/check_bench.py requires the instrumented throughput to
// stay within 5% of the bare one (BENCH_routing.json).

void BM_CounterHotPath(benchmark::State& state) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("bench.count");
  Histogram* hist = registry.GetHistogram("bench.bytes");
  uint64_t v = 0;
  for (auto _ : state) {
    counter->Increment();
    hist->Observe(v++ & 1023);
    benchmark::ClobberMemory();
  }
  state.counters["updates_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CounterHotPath);

// A 100-node CBN with 50 range subscriptions, publishing one matching
// sensor datagram per iteration (same shape as BM_CbnPublish).
struct TelemetryForwardFixture {
  TelemetryForwardFixture() : network(MakeTree()) {
    SensorDataset sensors;
    schema = sensors.SchemaOf(0);
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
      Profile p;
      ConjunctiveClause c;
      c.ConstrainInterval("ambient_temperature",
                          Interval(rng.NextDouble(-10, 10), false,
                                   rng.NextDouble(15, 35), false));
      p.AddStream(schema->stream_name(),
                  {"ambient_temperature", "relative_humidity"});
      p.AddFilter(Filter(schema->stream_name(), c));
      network.Subscribe(static_cast<NodeId>(rng.NextBounded(100)),
                        std::move(p), nullptr);
    }
    d = Datagram{schema->stream_name(), MakeSensorTuple(schema, 18.0, 1)};
  }

  static DisseminationTree MakeTree() {
    TopologyOptions topo_opts;
    topo_opts.num_nodes = 100;
    topo_opts.seed = 12;
    Topology topo = GenerateBarabasiAlbert(topo_opts);
    return DisseminationTree::FromEdges(topo_opts.num_nodes,
                                        *MinimumSpanningTree(topo.graph))
        .value();
  }

  ContentBasedNetwork network;
  std::shared_ptr<const Schema> schema;
  Datagram d;
};

void BM_ForwardWithoutTelemetry(benchmark::State& state) {
  TelemetryForwardFixture fix;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fix.network.Publish(0, fix.d));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["datagrams_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ForwardWithoutTelemetry);

void BM_ForwardWithTelemetry(benchmark::State& state) {
  TelemetryForwardFixture fix;
  MetricsRegistry registry;
  fix.network.SetTelemetry(&registry, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fix.network.Publish(0, fix.d));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["datagrams_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ForwardWithTelemetry);

// ---- CBN forwarding: stream-partitioned index vs pre-index linear scan ----
//
// Models one broker link carrying range(0) routing entries spread over
// ~range(0)/10 result streams (the large-scale pub/sub shape: many narrow
// streams, a handful of subscriptions each). The indexed path is the real
// Router::DecideForward; the linear reference reproduces the seed
// implementation — full per-link entry scan plus a per-datagram
// std::set<std::string> union — so one run yields the speedup ratio that
// tools/check_bench.py gates on in BENCH_routing.json.

struct RoutingForwardFixture {
  static constexpr NodeId kLink = 1;

  Router router{0};
  ProjectionCache cache;
  std::vector<Datagram> datagrams;

  explicit RoutingForwardFixture(size_t num_entries) {
    const size_t num_streams = std::max<size_t>(1, num_entries / 10);
    Rng rng(42);
    std::vector<std::shared_ptr<const Schema>> schemas;
    schemas.reserve(num_streams);
    for (size_t s = 0; s < num_streams; ++s) {
      schemas.push_back(std::make_shared<Schema>(
          "st" + std::to_string(s),
          std::vector<AttributeDef>{{"temp", ValueType::kDouble, -10, 40},
                                    {"hum", ValueType::kDouble, 0, 100}}));
    }
    for (size_t i = 0; i < num_entries; ++i) {
      const auto& schema = schemas[i % num_streams];
      Profile p;
      ConjunctiveClause c;
      double lo = rng.NextDouble(-10, 25);
      c.ConstrainInterval("temp", Interval(lo, false, lo + 10, false));
      p.AddStream(schema->stream_name(), {"temp"});
      p.AddFilter(Filter(schema->stream_name(), std::move(c)));
      router.table().Add(kLink, static_cast<ProfileId>(i + 1),
                         std::make_shared<const Profile>(std::move(p)));
    }
    datagrams.reserve(512);
    for (size_t i = 0; i < 512; ++i) {
      const auto& schema = schemas[rng.NextBounded(num_streams)];
      datagrams.push_back(
          Datagram{schema->stream_name(),
                   Tuple(schema,
                         {Value(rng.NextDouble(-10, 40)),
                          Value(rng.NextDouble(0, 100))},
                         static_cast<Timestamp>(i))});
    }
  }
};

// The seed implementation of MatchingProfiles + DecideForward, kept as the
// same-run baseline for the BENCH_routing.json speedup gate.
std::optional<Datagram> LinearDecideForward(const RoutingTable& table,
                                            const Datagram& d, NodeId link,
                                            ProjectionCache& cache) {
  std::vector<const Profile*> matching;
  for (const auto& e : table.EntriesFor(link)) {
    if (e.profile->Covers(d)) matching.push_back(e.profile.get());
  }
  if (matching.empty()) return std::nullopt;
  std::set<std::string> needed;
  for (const Profile* p : matching) {
    std::vector<std::string> req = p->RequiredAttributes(d.stream);
    if (req.empty()) return d;  // wants all attributes
    needed.insert(req.begin(), req.end());
  }
  return cache.Project(
      d, std::vector<std::string>(needed.begin(), needed.end()));
}

void ReportForwardingCounters(benchmark::State& state, uint64_t allocs) {
  state.SetItemsProcessed(state.iterations());
  state.counters["datagrams_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["allocs_per_datagram"] =
      state.iterations() > 0
          ? static_cast<double>(allocs) /
                static_cast<double>(state.iterations())
          : 0.0;
}

void BM_RoutingForwardIndexed(benchmark::State& state) {
  RoutingForwardFixture fix(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  const uint64_t allocs_before = g_allocation_count.load();
  for (auto _ : state) {
    auto out = fix.router.DecideForward(fix.datagrams[i & 511],
                                        RoutingForwardFixture::kLink,
                                        /*early_projection=*/true, fix.cache);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  ReportForwardingCounters(state, g_allocation_count.load() - allocs_before);
}
BENCHMARK(BM_RoutingForwardIndexed)->Arg(100)->Arg(1000)->Arg(10000);

void BM_RoutingForwardLinear(benchmark::State& state) {
  RoutingForwardFixture fix(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  const uint64_t allocs_before = g_allocation_count.load();
  for (auto _ : state) {
    auto out = LinearDecideForward(fix.router.table(), fix.datagrams[i & 511],
                                   RoutingForwardFixture::kLink, fix.cache);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  ReportForwardingCounters(state, g_allocation_count.load() - allocs_before);
}
BENCHMARK(BM_RoutingForwardLinear)->Arg(100)->Arg(1000)->Arg(10000);

// ---- compiled vs interpreted matching inside one (link, stream) bucket ----
//
// All range(0) profiles subscribe to the same stream — the shape the
// stream-partitioned index cannot help with — mixing point equalities on a
// discrete station id with narrow temperature ranges. BM_MatchCompiled is
// the real Router::DecideForward with the compiled counting matcher (the
// default); BM_MatchInterpreted flips the same router to the per-profile
// interpreted walk, so one run yields the >=3x ratio tools/check_bench.py
// gates at 10^4 profiles. The constructor runs a short warm-up so steady
// state measures matching, not the one-off bucket compile (that tradeoff
// is charged to the first datagram after any subscription churn).

struct MatchBucketFixture {
  static constexpr NodeId kLink = 1;

  Router router{0};
  ProjectionCache cache;
  std::vector<Datagram> datagrams;

  MatchBucketFixture(size_t num_profiles, bool compiled) {
    router.set_compiled_matching(compiled);
    Rng rng(7);
    auto schema = std::make_shared<Schema>(
        "sensor",
        std::vector<AttributeDef>{{"station", ValueType::kInt64, 0, 499},
                                  {"temp", ValueType::kDouble, -10, 40},
                                  {"hum", ValueType::kDouble, 0, 100}});
    for (size_t i = 0; i < num_profiles; ++i) {
      Profile p;
      ConjunctiveClause c;
      if (i % 2 == 0) {
        c.ConstrainEquals(
            "station", Value(static_cast<int64_t>(rng.NextBounded(500))));
      } else {
        const double lo = rng.NextDouble(-10, 25);
        c.ConstrainInterval(
            "temp", Interval(lo, false, lo + rng.NextDouble(0.5, 3.0), false));
      }
      p.AddStream("sensor", {"temp"});
      p.AddFilter(Filter("sensor", std::move(c)));
      router.table().Add(kLink, static_cast<ProfileId>(i + 1),
                         std::make_shared<const Profile>(std::move(p)));
    }
    datagrams.reserve(512);
    for (size_t i = 0; i < 512; ++i) {
      datagrams.push_back(
          Datagram{"sensor",
                   Tuple(schema,
                         {Value(static_cast<int64_t>(rng.NextBounded(500))),
                          Value(rng.NextDouble(-10, 40)),
                          Value(rng.NextDouble(0, 100))},
                         static_cast<Timestamp>(i))});
    }
    for (size_t i = 0; i < 8; ++i) {
      auto out = router.DecideForward(datagrams[i], kLink,
                                      /*early_projection=*/true, cache);
      benchmark::DoNotOptimize(out);
    }
  }
};

void BM_MatchCompiled(benchmark::State& state) {
  MatchBucketFixture fix(static_cast<size_t>(state.range(0)),
                         /*compiled=*/true);
  size_t i = 0;
  const uint64_t allocs_before = g_allocation_count.load();
  for (auto _ : state) {
    auto out = fix.router.DecideForward(fix.datagrams[i & 511],
                                        MatchBucketFixture::kLink,
                                        /*early_projection=*/true, fix.cache);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  ReportForwardingCounters(state, g_allocation_count.load() - allocs_before);
}
BENCHMARK(BM_MatchCompiled)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MatchInterpreted(benchmark::State& state) {
  MatchBucketFixture fix(static_cast<size_t>(state.range(0)),
                         /*compiled=*/false);
  size_t i = 0;
  const uint64_t allocs_before = g_allocation_count.load();
  for (auto _ : state) {
    auto out = fix.router.DecideForward(fix.datagrams[i & 511],
                                        MatchBucketFixture::kLink,
                                        /*early_projection=*/true, fix.cache);
    benchmark::DoNotOptimize(out);
    ++i;
  }
  ReportForwardingCounters(state, g_allocation_count.load() - allocs_before);
}
BENCHMARK(BM_MatchInterpreted)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace cosmos
