// Ablation abl-ft (DESIGN.md): data-layer availability under link failures
// — tuples lost with and without failure buffering, and the repair cost
// (control messages to reinstall subscription state), as a function of how
// many tree links fail during a replay.

#include <cstdio>

#include "cbn/network.h"
#include "common/random.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "query/parser.h"
#include "stream/sensor_dataset.h"

using namespace cosmos;

namespace {

struct Outcome {
  uint64_t delivered = 0;
  uint64_t lost = 0;
  uint64_t recovered = 0;
  uint64_t repair_control_msgs = 0;
};

Outcome Run(bool buffering, int num_failures, int num_nodes) {
  TopologyOptions topo_opts;
  topo_opts.num_nodes = num_nodes;
  topo_opts.ba_edges_per_node = 3;
  topo_opts.seed = 5;
  Topology topo = GenerateBarabasiAlbert(topo_opts);
  auto tree = DisseminationTree::FromEdges(
                  num_nodes, *MinimumSpanningTree(topo.graph))
                  .value();
  NetworkOptions opts;
  opts.buffer_on_failure = buffering;
  ContentBasedNetwork net(tree, opts);

  SensorDatasetOptions sopts;
  sopts.num_stations = 8;
  sopts.duration = 30 * kMinute;
  SensorDataset sensors(sopts);

  Outcome out;
  Rng rng(17);
  std::vector<NodeId> publisher(sopts.num_stations);
  for (auto& p : publisher) {
    p = static_cast<NodeId>(rng.NextBounded(num_nodes));
  }
  for (int i = 0; i < 40; ++i) {
    Profile p;
    p.AddStream(SensorDataset::StreamName(
        static_cast<int>(rng.NextBounded(sopts.num_stations))));
    net.Subscribe(static_cast<NodeId>(rng.NextBounded(num_nodes)), p,
                  [&out](const std::string&, const Tuple&) {
                    ++out.delivered;
                  });
  }

  auto replay = sensors.MakeReplay();
  int streamed = 0;
  int total = sopts.num_stations * 60;
  int fail_at = total / 3;
  while (auto t = replay->Next()) {
    if (streamed == fail_at) {
      Rng fail_rng(23);
      for (int f = 0; f < num_failures; ++f) {
        const Edge& e = net.tree().edges()[fail_rng.NextBounded(
            net.tree().edges().size())];
        (void)net.FailLink(e.u, e.v);
      }
    }
    int station = static_cast<int>(t->value(0).AsInt64());
    net.Publish(publisher[station], Datagram{t->schema()->stream_name(), *t});
    ++streamed;
    if (streamed == 2 * total / 3) {
      uint64_t before = net.control_messages();
      (void)net.Repair(topo.graph);
      out.repair_control_msgs = net.control_messages() - before;
    }
  }
  out.lost = net.lost_datagrams();
  out.recovered = net.recovered_datagrams();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int num_nodes = argc > 1 ? std::atoi(argv[1]) : 100;
  std::printf("# Ablation: data-layer fault tolerance (%d-node tree, 8 "
              "streams, 40 subscriptions)\n",
              num_nodes);
  std::printf("%-10s %-10s %12s %10s %12s %14s\n", "failures", "buffering",
              "delivered", "lost", "recovered", "repair msgs");
  for (int failures : {1, 2, 4}) {
    for (bool buffering : {false, true}) {
      Outcome o = Run(buffering, failures, num_nodes);
      std::printf("%-10d %-10s %12llu %10llu %12llu %14llu\n", failures,
                  buffering ? "on" : "off",
                  static_cast<unsigned long long>(o.delivered),
                  static_cast<unsigned long long>(o.lost),
                  static_cast<unsigned long long>(o.recovered),
                  static_cast<unsigned long long>(o.repair_control_msgs));
    }
  }
  return 0;
}
