// Reproduces the Figure 3 experiment: result-stream delivery for the
// Table 1 auction queries q1 (3h) and q2 (5h) issued by users at n3 and n4.
//
//   (a) Non-Share: merging disabled — q1 and q2 each run on the SPE at n1
//       and their result streams s1, s2 cross the n1-n2 link separately.
//   (b) Share: merging enabled — the representative q3 runs once; s3
//       crosses n1-n2 once and is split into s1/s2 at n2 by the
//       re-tightened profiles.
//
// The paper's claim: the overlapping content of s1 and s2 is transmitted
// twice in (a) but once in (b), so the n1-n2 byte count drops.

#include <cstdio>

#include "core/system.h"
#include "stream/auction_dataset.h"

using namespace cosmos;

namespace {

const char* kQ1 =
    "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C "
    "WHERE O.itemID = C.itemID";
const char* kQ2 =
    "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp "
    "FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
    "WHERE O.itemID = C.itemID";

struct RunResult {
  uint64_t n1n2_bytes = 0;
  uint64_t n1n2_datagrams = 0;
  uint64_t total_bytes = 0;
  int q1_results = 0;
  int q2_results = 0;
  size_t groups = 0;
};

RunResult Run(bool share) {
  // n1(0) -- n2(1) -- n3(2), n2(1) -- n4(3); sources feed n1 directly.
  std::vector<Edge> edges = {{0, 1, 1.0}, {1, 2, 1.0}, {1, 3, 1.0}};
  auto tree = DisseminationTree::FromEdges(4, edges).value();

  SystemOptions options;
  options.processor.enable_merging = share;
  CosmosSystem system(std::move(tree), options);

  AuctionDatasetOptions aopts;
  aopts.num_auctions = 4000;
  aopts.seed = 17;
  AuctionDataset auctions(aopts);
  (void)system.RegisterSource(AuctionDataset::OpenAuctionSchema(), 2.0, 0);
  (void)system.RegisterSource(AuctionDataset::ClosedAuctionSchema(), 1.8, 0);
  (void)system.AddProcessor(0);

  RunResult r;
  (void)system.SubmitQuery(kQ1, 2, [&r](const std::string&, const Tuple&) {
    ++r.q1_results;
  });
  (void)system.SubmitQuery(kQ2, 3, [&r](const std::string&, const Tuple&) {
    ++r.q2_results;
  });

  // Only measure result delivery: reset counters after the (source-side)
  // subscription setup, then replay. Source tuples flow only on links the
  // processor needs (none here beyond publishing at n1 itself).
  system.network().ResetStats();
  auto replay = auctions.MakeReplay();
  while (auto t = replay->Next()) {
    (void)system.PublishSourceTuple(t->schema()->stream_name(), *t);
  }

  const auto& stats = system.network().link_stats();
  auto it = stats.find({0, 1});
  if (it != stats.end()) {
    r.n1n2_bytes = it->second.bytes;
    r.n1n2_datagrams = it->second.datagrams;
  }
  r.total_bytes = system.network().total_bytes();
  r.groups = system.TotalGroups();
  return r;
}

}  // namespace

int main() {
  RunResult non_share = Run(false);
  RunResult share = Run(true);

  std::printf("# Figure 3: result stream delivery (Table 1 queries q1,q2)\n");
  std::printf("%-28s %14s %14s\n", "", "non-share(a)", "share(b)");
  std::printf("%-28s %14zu %14zu\n", "query groups at n1",
              non_share.groups, share.groups);
  std::printf("%-28s %14llu %14llu\n", "n1-n2 datagrams",
              static_cast<unsigned long long>(non_share.n1n2_datagrams),
              static_cast<unsigned long long>(share.n1n2_datagrams));
  std::printf("%-28s %14llu %14llu\n", "n1-n2 bytes",
              static_cast<unsigned long long>(non_share.n1n2_bytes),
              static_cast<unsigned long long>(share.n1n2_bytes));
  std::printf("%-28s %14llu %14llu\n", "total bytes",
              static_cast<unsigned long long>(non_share.total_bytes),
              static_cast<unsigned long long>(share.total_bytes));
  std::printf("%-28s %14d %14d\n", "q1 results", non_share.q1_results,
              share.q1_results);
  std::printf("%-28s %14d %14d\n", "q2 results", non_share.q2_results,
              share.q2_results);

  bool correct = non_share.q1_results == share.q1_results &&
                 non_share.q2_results == share.q2_results;
  double saved = non_share.n1n2_bytes == 0
                     ? 0.0
                     : 100.0 * (1.0 - static_cast<double>(share.n1n2_bytes) /
                                          non_share.n1n2_bytes);
  std::printf("\nresults identical under both modes: %s\n",
              correct ? "yes" : "NO (bug!)");
  std::printf("shared delivery saves %.1f%% of n1-n2 bytes\n", saved);
  return correct ? 0 : 1;
}
