#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace cosmos {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kParseError:
      return "parse error";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result accessed with error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace cosmos
