#ifndef COSMOS_COMMON_STATUS_H_
#define COSMOS_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace cosmos {

// Error category for a failed operation. Kept deliberately small; the
// human-readable message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kFailedPrecondition,
  kParseError,
};

// Returns the canonical lower-case name of `code` (e.g. "invalid argument").
const char* StatusCodeToString(StatusCode code);

// Status is the result of a fallible operation that produces no value.
// COSMOS does not use exceptions (see DESIGN.md); every fallible API
// returns Status or Result<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status. Accessing the value of
// an errored Result aborts the process (programming error).
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : repr_(std::move(value)) {}
  Result(Status status) : repr_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOkStatus;
    const Status* s = std::get_if<Status>(&repr_);
    return s == nullptr ? kOkStatus : *s;
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  void CheckOk() const;

  std::variant<T, Status> repr_;
};

namespace internal {
// Aborts with `status` printed; out-of-line to keep Result lean.
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::CheckOk() const {
  if (!ok()) internal::DieOnBadResultAccess(std::get<Status>(repr_));
}

// Propagates an error Status from an expression producing Status.
#define COSMOS_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::cosmos::Status cosmos_status_ = (expr);          \
    if (!cosmos_status_.ok()) return cosmos_status_;   \
  } while (false)

// Evaluates `rexpr` (a Result<T>), propagating its error or assigning its
// value to `lhs`.
#define COSMOS_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  COSMOS_ASSIGN_OR_RETURN_IMPL_(                            \
      COSMOS_STATUS_CONCAT_(cosmos_result_, __LINE__), lhs, rexpr)

#define COSMOS_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                  \
  if (!result.ok()) return result.status();               \
  lhs = std::move(result).value()

#define COSMOS_STATUS_CONCAT_(a, b) COSMOS_STATUS_CONCAT_IMPL_(a, b)
#define COSMOS_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace cosmos

#endif  // COSMOS_COMMON_STATUS_H_
