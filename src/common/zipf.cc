#include "common/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cosmos {

ZipfDistribution::ZipfDistribution(size_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta >= 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = acc;
  }
  const double total = acc;
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

double ZipfDistribution::pmf(size_t k) const {
  assert(k < n_);
  double prev = (k == 0) ? 0.0 : cdf_[k - 1];
  return cdf_[k] - prev;
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace cosmos
