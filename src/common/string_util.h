#ifndef COSMOS_COMMON_STRING_UTIL_H_
#define COSMOS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace cosmos {

// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep);

// Joins `pieces` with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// ASCII-only case conversions.
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace cosmos

#endif  // COSMOS_COMMON_STRING_UTIL_H_
