#ifndef COSMOS_COMMON_CHECK_H_
#define COSMOS_COMMON_CHECK_H_

#include <sstream>
#include <utility>

// Runtime invariant checking.
//
// COSMOS_CHECK(cond)            — always on, aborts with the expression text.
// COSMOS_CHECK_EQ/NE/LT/LE/GT/GE(a, b)
//                               — always on, additionally prints both values.
// COSMOS_DCHECK* family         — same shapes, compiled out under NDEBUG
//                                 (operands stay syntactically live, so a
//                                 release build cannot rot a debug check).
//
// All forms accept streamed context:
//
//   COSMOS_CHECK_LE(lo, hi) << "interval for attribute " << name;
//
// Checks guard internal invariants — conditions that are bugs when false.
// Recoverable conditions (bad user input, I/O) use Status/Result instead.

namespace cosmos {
namespace internal {

// Accumulates the failure message for a check that fired; emits it to
// stderr and aborts in the destructor.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* expr, const char* file,
                     int line);
  ~CheckFailureStream();

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows everything streamed into it; the release-mode DCHECK sink.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace cosmos

// The switch wrapper makes the macros dangling-else safe; the else branch
// keeps streamed context (`COSMOS_CHECK(x) << "why"`) attached to the
// failure message.
#define COSMOS_CHECK(cond)                                                 \
  switch (0)                                                               \
  case 0:                                                                  \
  default:                                                                 \
    if (__builtin_expect(static_cast<bool>(cond), 1)) {                    \
    } else                                                                 \
      ::cosmos::internal::CheckFailureStream("CHECK", #cond, __FILE__,     \
                                             __LINE__)

#define COSMOS_CHECK_OP_(kind, op, a, b)                                    \
  switch (0)                                                                \
  case 0:                                                                   \
  default:                                                                  \
    if (auto _cosmos_vals = ::std::make_pair((a), (b));                     \
        __builtin_expect(                                                   \
            static_cast<bool>(_cosmos_vals.first op _cosmos_vals.second),   \
            1)) {                                                           \
    } else                                                                  \
      ::cosmos::internal::CheckFailureStream(kind, #a " " #op " " #b,       \
                                             __FILE__, __LINE__)            \
          << "(" << _cosmos_vals.first << " vs " << _cosmos_vals.second     \
          << ") "

#define COSMOS_CHECK_EQ(a, b) COSMOS_CHECK_OP_("CHECK", ==, a, b)
#define COSMOS_CHECK_NE(a, b) COSMOS_CHECK_OP_("CHECK", !=, a, b)
#define COSMOS_CHECK_LT(a, b) COSMOS_CHECK_OP_("CHECK", <, a, b)
#define COSMOS_CHECK_LE(a, b) COSMOS_CHECK_OP_("CHECK", <=, a, b)
#define COSMOS_CHECK_GT(a, b) COSMOS_CHECK_OP_("CHECK", >, a, b)
#define COSMOS_CHECK_GE(a, b) COSMOS_CHECK_OP_("CHECK", >=, a, b)

#ifdef NDEBUG

// Operands remain odr-used inside the short-circuited condition so release
// builds still type-check them, but nothing is evaluated at runtime.
#define COSMOS_DCHECK(cond) \
  while (false && static_cast<bool>(cond)) ::cosmos::internal::NullStream()
#define COSMOS_DCHECK_EQ(a, b) COSMOS_DCHECK((a) == (b))
#define COSMOS_DCHECK_NE(a, b) COSMOS_DCHECK((a) != (b))
#define COSMOS_DCHECK_LT(a, b) COSMOS_DCHECK((a) < (b))
#define COSMOS_DCHECK_LE(a, b) COSMOS_DCHECK((a) <= (b))
#define COSMOS_DCHECK_GT(a, b) COSMOS_DCHECK((a) > (b))
#define COSMOS_DCHECK_GE(a, b) COSMOS_DCHECK((a) >= (b))

#else  // !NDEBUG

#define COSMOS_DCHECK(cond)                                                \
  switch (0)                                                               \
  case 0:                                                                  \
  default:                                                                 \
    if (__builtin_expect(static_cast<bool>(cond), 1)) {                    \
    } else                                                                 \
      ::cosmos::internal::CheckFailureStream("DCHECK", #cond, __FILE__,    \
                                             __LINE__)

#define COSMOS_DCHECK_EQ(a, b) COSMOS_CHECK_OP_("DCHECK", ==, a, b)
#define COSMOS_DCHECK_NE(a, b) COSMOS_CHECK_OP_("DCHECK", !=, a, b)
#define COSMOS_DCHECK_LT(a, b) COSMOS_CHECK_OP_("DCHECK", <, a, b)
#define COSMOS_DCHECK_LE(a, b) COSMOS_CHECK_OP_("DCHECK", <=, a, b)
#define COSMOS_DCHECK_GT(a, b) COSMOS_CHECK_OP_("DCHECK", >, a, b)
#define COSMOS_DCHECK_GE(a, b) COSMOS_CHECK_OP_("DCHECK", >=, a, b)

#endif  // NDEBUG

#endif  // COSMOS_COMMON_CHECK_H_
