#ifndef COSMOS_COMMON_LOGGING_H_
#define COSMOS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

#include "common/check.h"  // historical home of COSMOS_CHECK; keep exporting it

namespace cosmos {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are discarded.
// Defaults to kWarning so tests and benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define COSMOS_LOG(level)                                               \
  ::cosmos::internal::LogMessage(::cosmos::LogLevel::k##level, __FILE__, \
                                 __LINE__)

}  // namespace cosmos

#endif  // COSMOS_COMMON_LOGGING_H_
