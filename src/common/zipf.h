#ifndef COSMOS_COMMON_ZIPF_H_
#define COSMOS_COMMON_ZIPF_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace cosmos {

// Zipf(theta) sampler over ranks {0, ..., n-1}: rank k is drawn with
// probability (1/(k+1)^theta) / H_{n,theta}. theta == 0 degenerates to the
// uniform distribution, matching the paper's "uniform" workload knob; the
// paper's zipf1.0 / zipf1.5 / zipf2 workloads use theta in {1.0, 1.5, 2.0}.
//
// Sampling uses the precomputed inverse CDF (binary search), O(log n) per
// draw after O(n) setup.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double theta);

  size_t n() const { return n_; }
  double theta() const { return theta_; }

  // Probability mass of rank k.
  double pmf(size_t k) const;

  // Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

 private:
  size_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace cosmos

#endif  // COSMOS_COMMON_ZIPF_H_
