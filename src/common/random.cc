#include "common/random.h"

#include <cassert>
#include <cmath>

namespace cosmos {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: draw until the value falls below the largest
  // multiple of `bound`, eliminating modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random bits into [0,1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (has_gaussian_) {
    has_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_gaussian_ = true;
  return r * std::cos(theta);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double x = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Derive(uint64_t stream) const {
  // Mix the original seed with the stream id through SplitMix so derived
  // generators are decorrelated from the parent and from each other.
  uint64_t sm = seed_ ^ (0xA5A5A5A5DEADBEEFULL + stream * 0x9E3779B97F4A7C15ULL);
  return Rng(SplitMix64(sm));
}

}  // namespace cosmos
