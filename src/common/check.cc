#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace cosmos {
namespace internal {

CheckFailureStream::CheckFailureStream(const char* kind, const char* expr,
                                       const char* file, int line) {
  stream_ << kind << " failed at " << file << ":" << line << ": " << expr
          << " ";
}

CheckFailureStream::~CheckFailureStream() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace cosmos
