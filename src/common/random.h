#ifndef COSMOS_COMMON_RANDOM_H_
#define COSMOS_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cosmos {

// SplitMix64: used to expand a user seed into internal generator state.
// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
// generators", OOPSLA 2014.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Deterministic, seedable pseudo-random generator (xoshiro256**).
// All experiment repetitions derive their generators from explicit seeds so
// every benchmark table in EXPERIMENTS.md is exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5EED5EED5EEDULL);

  // Uniform in [0, 2^64).
  uint64_t NextUint64();

  // Uniform in [0, bound); bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Requires a non-empty vector with a positive total weight.
  size_t NextWeighted(const std::vector<double>& weights);

  // Derives an independent generator for stream `stream` of this seed. The
  // derivation is a pure function of (seed, stream) — it does not depend on
  // how many values this generator has produced — so a scenario generator
  // can hand each concern (topology, workload, faults, ...) its own
  // decorrelated stream and reproduce any of them in isolation.
  Rng Derive(uint64_t stream) const;

  // Legacy alias for Derive (kept for existing call sites).
  Rng Fork(uint64_t stream) const { return Derive(stream); }

 private:
  uint64_t s_[4];
  uint64_t seed_;
  bool has_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace cosmos

#endif  // COSMOS_COMMON_RANDOM_H_
