#ifndef COSMOS_COMMON_TIME_H_
#define COSMOS_COMMON_TIME_H_

#include <cstdint>
#include <limits>
#include <string>

namespace cosmos {

// Application time domain T (paper §4, Definition 1): a discrete domain from
// which tuple timestamps are drawn. We model it as microseconds since an
// arbitrary epoch. All window arithmetic and the discrete-event simulator use
// this representation.
using Timestamp = int64_t;
using Duration = int64_t;  // microseconds

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;

// Sentinel for an unbounded window ([Range Unbounded] in CQL): T = infinity
// turns the windowed relation into the whole stream history.
inline constexpr Duration kInfiniteDuration =
    std::numeric_limits<Duration>::max();

// Sentinel for "no timestamp yet".
inline constexpr Timestamp kInvalidTimestamp =
    std::numeric_limits<Timestamp>::min();

// Renders a duration with its most natural unit, e.g. "3h", "250ms",
// "unbounded".
std::string DurationToString(Duration d);

inline std::string DurationToString(Duration d) {
  if (d == kInfiniteDuration) return "unbounded";
  if (d % kHour == 0 && d != 0) return std::to_string(d / kHour) + "h";
  if (d % kMinute == 0 && d != 0) return std::to_string(d / kMinute) + "m";
  if (d % kSecond == 0 && d != 0) return std::to_string(d / kSecond) + "s";
  if (d % kMillisecond == 0 && d != 0)
    return std::to_string(d / kMillisecond) + "ms";
  return std::to_string(d) + "us";
}

}  // namespace cosmos

#endif  // COSMOS_COMMON_TIME_H_
