#include "telemetry/trace.h"

#include "common/string_util.h"

namespace cosmos {

Tracer& Tracer::Global() {
  static Tracer* global = new Tracer();
  return *global;
}

Timestamp Tracer::Now() {
  if (clock_) return clock_();
  return ++logical_clock_;
}

void Tracer::Instant(const char* category, std::string name, int tid) {
  Instant(category, std::move(name), tid, {});
}

void Tracer::Instant(const char* category, std::string name, int tid,
                     std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled_) return;
  Event ev;
  ev.phase = 'i';
  ev.ts = Now();
  ev.tid = tid;
  ev.name = std::move(name);
  ev.category = category;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void Tracer::Complete(const char* category, std::string name, int tid,
                      Timestamp ts, Duration dur) {
  Complete(category, std::move(name), tid, ts, dur, {});
}

void Tracer::Complete(const char* category, std::string name, int tid,
                      Timestamp ts, Duration dur,
                      std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled_) return;
  Event ev;
  ev.phase = 'X';
  ev.ts = ts;
  ev.dur = dur > 0 ? dur : 1;
  ev.tid = tid;
  ev.name = std::move(name);
  ev.category = category;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

Tracer::Span Tracer::BeginSpan(const char* category, std::string name,
                               int tid) {
  if (!enabled_) return Span();
  Event ev;
  ev.phase = 'X';
  ev.ts = Now();
  ev.dur = -1;  // open; closed by Span::End
  ev.tid = tid;
  ev.name = std::move(name);
  ev.category = category;
  events_.push_back(std::move(ev));
  return Span(this, events_.size() - 1);
}

void Tracer::Span::AddArg(const std::string& key,
                          const std::string& json_value) {
  if (tracer_ == nullptr) return;
  tracer_->events_[index_].args.emplace_back(key, json_value);
}

void Tracer::Span::End() {
  if (tracer_ == nullptr) return;
  Event& ev = tracer_->events_[index_];
  Duration dur = tracer_->Now() - ev.ts;
  ev.dur = dur > 0 ? dur : 1;
  tracer_ = nullptr;
}

std::string Tracer::ArgString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Tracer::Clear() {
  events_.clear();
  logical_clock_ = 0;
}

std::string Tracer::ToChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const Event& ev : events_) {
    if (!first) out += ",\n";
    first = false;
    out += StrFormat("{\"name\":%s,\"cat\":%s,\"ph\":\"%c\",\"ts\":%lld",
                     ArgString(ev.name).c_str(),
                     ArgString(ev.category).c_str(), ev.phase,
                     static_cast<long long>(ev.ts));
    if (ev.phase == 'X') {
      // A still-open span (dur -1) exports as a minimal slice.
      long long dur = ev.dur > 0 ? static_cast<long long>(ev.dur) : 1;
      out += StrFormat(",\"dur\":%lld", dur);
    }
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    out += StrFormat(",\"pid\":1,\"tid\":%d", ev.tid);
    if (!ev.args.empty()) {
      out += ",\"args\":{";
      for (size_t i = 0; i < ev.args.size(); ++i) {
        if (i > 0) out += ',';
        out += ArgString(ev.args[i].first);
        out += ':';
        out += ev.args[i].second;
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

}  // namespace cosmos
