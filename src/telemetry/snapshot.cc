#include "telemetry/snapshot.h"

#include "common/string_util.h"
#include "telemetry/trace.h"

namespace cosmos {

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double MetricsSnapshot::GaugeValue(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

double MetricsSnapshot::CounterRate(const MetricsSnapshot& earlier,
                                    const std::string& name) const {
  if (at <= earlier.at) return 0.0;
  uint64_t now = CounterValue(name);
  uint64_t before = earlier.CounterValue(name);
  if (now <= before) return 0.0;
  double seconds = static_cast<double>(at - earlier.at) / kSecond;
  return static_cast<double>(now - before) / seconds;
}

MetricsSnapshot TakeSnapshot(const MetricsRegistry& registry, Timestamp at) {
  MetricsSnapshot snap;
  snap.at = at;
  for (const auto& [name, c] : registry.counters()) {
    snap.counters[name] = c->value();
  }
  for (const auto& [name, g] : registry.gauges()) {
    snap.gauges[name] = g->value();
  }
  for (const auto& [name, h] : registry.histograms()) {
    MetricsSnapshot::HistogramValue v;
    v.count = h->count();
    v.sum = h->sum();
    v.max = h->max();
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h->buckets()[i] > 0) {
        v.buckets.emplace_back(Histogram::BucketUpperBound(i),
                               h->buckets()[i]);
      }
    }
    snap.histograms[name] = std::move(v);
  }
  return snap;
}

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& later,
                              const MetricsSnapshot& earlier) {
  MetricsSnapshot delta;
  delta.at = later.at;
  for (const auto& [name, value] : later.counters) {
    auto it = earlier.counters.find(name);
    uint64_t before = it == earlier.counters.end() ? 0 : it->second;
    delta.counters[name] = value >= before ? value - before : 0;
  }
  delta.gauges = later.gauges;
  for (const auto& [name, value] : later.histograms) {
    MetricsSnapshot::HistogramValue v = value;
    auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end()) {
      v.count = v.count >= it->second.count ? v.count - it->second.count : 0;
      v.sum = v.sum >= it->second.sum ? v.sum - it->second.sum : 0;
    }
    delta.histograms[name] = std::move(v);
  }
  return delta;
}

std::string SnapshotToJson(const MetricsSnapshot& snapshot) {
  std::string out = StrFormat("{\n  \"at_us\": %lld,\n",
                              static_cast<long long>(snapshot.at));
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += StrFormat("%s\n    %s: %llu", first ? "" : ",",
                     Tracer::ArgString(name).c_str(),
                     static_cast<unsigned long long>(value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += StrFormat("%s\n    %s: %.17g", first ? "" : ",",
                     Tracer::ArgString(name).c_str(), value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, value] : snapshot.histograms) {
    out += StrFormat(
        "%s\n    %s: {\"count\": %llu, \"sum\": %llu, \"max\": %llu, "
        "\"buckets\": [",
        first ? "" : ",", Tracer::ArgString(name).c_str(),
        static_cast<unsigned long long>(value.count),
        static_cast<unsigned long long>(value.sum),
        static_cast<unsigned long long>(value.max));
    for (size_t i = 0; i < value.buckets.size(); ++i) {
      out += StrFormat("%s[%llu, %llu]", i > 0 ? ", " : "",
                       static_cast<unsigned long long>(
                           value.buckets[i].first),
                       static_cast<unsigned long long>(
                           value.buckets[i].second));
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

const MetricsSnapshot& SnapshotSeries::Capture(Timestamp at) {
  snapshots_.push_back(TakeSnapshot(*registry_, at));
  return snapshots_.back();
}

MetricsSnapshot SnapshotSeries::LatestDelta() const {
  if (snapshots_.empty()) return MetricsSnapshot{};
  if (snapshots_.size() == 1) return snapshots_.back();
  return SnapshotDelta(snapshots_[snapshots_.size() - 1],
                       snapshots_[snapshots_.size() - 2]);
}

std::string SnapshotSeries::ToJson() const {
  std::string out = "[\n";
  for (size_t i = 0; i < snapshots_.size(); ++i) {
    if (i > 0) out += ",\n";
    out += SnapshotToJson(snapshots_[i]);
  }
  out += "]\n";
  return out;
}

}  // namespace cosmos
