#include "telemetry/registry.h"

#include <bit>

namespace cosmos {

void Histogram::Observe(uint64_t v) {
  // bucket 0 <=> v == 0; otherwise 1 + floor(log2(v)).
  size_t bucket = v == 0 ? 0 : static_cast<size_t>(std::bit_width(v));
  ++buckets_[bucket];
  ++count_;
  sum_ += v;
  if (v > max_) max_ = v;
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~uint64_t{0};
  return (uint64_t{1} << i) - 1;
}

uint64_t Histogram::PercentileUpperBound(double p) const {
  if (count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double target = p * static_cast<double>(count_);
  uint64_t below = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    below += buckets_[i];
    if (static_cast<double>(below) >= target) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::LabeledName(const std::string& name,
                                         const std::string& label_key,
                                         const std::string& label_value) {
  std::string out;
  out.reserve(name.size() + label_key.size() + label_value.size() + 3);
  out += name;
  out += '{';
  out += label_key;
  out += '=';
  out += label_value;
  out += '}';
  return out;
}

std::string MetricsRegistry::LabelValue(const std::string& name,
                                        const std::string& key) {
  const std::string needle = "{" + key + "=";
  size_t start = name.find(needle);
  if (start == std::string::npos) return "";
  start += needle.size();
  size_t end = name.find('}', start);
  if (end == std::string::npos) return "";
  return name.substr(start, end - start);
}

std::vector<std::string> MetricsRegistry::CounterNamesWithLabel(
    const std::string& key) const {
  std::vector<std::string> out;
  const std::string needle = "{" + key + "=";
  for (const auto& [name, c] : counters_) {
    if (name.find(needle) != std::string::npos) out.push_back(name);
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace cosmos
