#ifndef COSMOS_TELEMETRY_REGISTRY_H_
#define COSMOS_TELEMETRY_REGISTRY_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cosmos {

// Telemetry instruments. Designed for the forwarding hot path: an update is
// a plain uint64_t/double store with no locking (the whole system is
// single-threaded per simulation, like the routers). Instruments are created
// once through the MetricsRegistry and the returned handles cached by the
// instrumented component, so steady-state cost is one pointer-indirected
// add — cheap enough to leave on everywhere.

// Monotonically increasing event count (datagrams forwarded, tuples
// pushed, ...). Reset only through the registry (snapshot deltas are the
// supported way to read rates).
class Counter {
 public:
  void Increment() { ++value_; }
  void Add(uint64_t n) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Last-write-wins instantaneous value (tree cost, queue depth, drift).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double v) { value_ += v; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

// Log2-bucketed histogram of non-negative integer observations (bytes per
// datagram, tuples per evaluation, microseconds per span). Bucket i counts
// observations v with floor(log2(v)) == i - 1; bucket 0 counts v == 0, so
// the upper bound of bucket i is 2^i - 1.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void Observe(uint64_t v);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

  // Upper bound (inclusive) of bucket `i`.
  static uint64_t BucketUpperBound(size_t i);

  // Smallest bucket upper bound with >= p (in [0,1]) of the mass at or
  // below it; 0 when empty. A coarse quantile, exact to the bucket width.
  uint64_t PercentileUpperBound(double p) const;

  void Reset();

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

// The instrument registry: a name -> instrument map with stable handles
// (instruments are heap-allocated once and never move or disappear).
// Labeled families use the conventional rendering `name{key=value}` as the
// registered name, e.g. cbn.forwarded_bytes{stream=sensor_00}; callers that
// update one per datagram cache the handle per label instead of re-keying.
//
// A process-wide instance is available via MetricsRegistry::Global() for
// tools and examples; components take a MetricsRegistry* so tests and the
// DST harness can give every run an isolated registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Counter* GetCounter(const std::string& name, const std::string& label_key,
                      const std::string& label_value) {
    return GetCounter(LabeledName(name, label_key, label_value));
  }
  Gauge* GetGauge(const std::string& name);
  Gauge* GetGauge(const std::string& name, const std::string& label_key,
                  const std::string& label_value) {
    return GetGauge(LabeledName(name, label_key, label_value));
  }
  Histogram* GetHistogram(const std::string& name);

  // Lookup without creating (nullptr when absent) — for tests and checks.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // `name{key=value}`.
  static std::string LabeledName(const std::string& name,
                                 const std::string& label_key,
                                 const std::string& label_value);
  // The `value` of label `key` in a LabeledName-rendered `name`, or "" when
  // the name carries no such label.
  static std::string LabelValue(const std::string& name,
                                const std::string& key);

  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms()
      const {
    return histograms_;
  }

  // Names (sorted) of counters carrying label `key` with any value, e.g.
  // every per-stream member of a family.
  std::vector<std::string> CounterNamesWithLabel(
      const std::string& key) const;

  size_t num_instruments() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Zeroes every instrument; handles stay valid.
  void ResetAll();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace cosmos

#endif  // COSMOS_TELEMETRY_REGISTRY_H_
