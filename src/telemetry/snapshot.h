#ifndef COSMOS_TELEMETRY_SNAPSHOT_H_
#define COSMOS_TELEMETRY_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "telemetry/registry.h"

namespace cosmos {

// A point-in-time copy of every instrument in a MetricsRegistry, plus the
// delta algebra the SelfTuner and the DST harness read rates from.
struct MetricsSnapshot {
  Timestamp at = 0;  // virtual time of the capture

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;

  struct HistogramValue {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    // (bucket upper bound, count), non-empty buckets only.
    std::vector<std::pair<uint64_t, uint64_t>> buckets;
  };
  std::map<std::string, HistogramValue> histograms;

  uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;

  // Counter rate between `earlier` and this snapshot, in units/second of
  // virtual time (0 when the interval is empty or the counter regressed).
  double CounterRate(const MetricsSnapshot& earlier,
                     const std::string& name) const;
};

MetricsSnapshot TakeSnapshot(const MetricsRegistry& registry, Timestamp at);

// later - earlier: counters and histogram counts subtract (clamped at 0),
// gauges keep `later`'s value (they are instantaneous), `at` keeps later's
// timestamp. Instruments absent from `earlier` count from zero.
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& later,
                              const MetricsSnapshot& earlier);

// Renders a snapshot as a stable, pretty-printed JSON document.
std::string SnapshotToJson(const MetricsSnapshot& snapshot);

// Periodic capture series: the caller (a simulator callback, the SelfTuner,
// or a test) invokes Capture at its chosen cadence; the series keeps every
// snapshot and serves deltas between consecutive ones.
class SnapshotSeries {
 public:
  explicit SnapshotSeries(const MetricsRegistry* registry)
      : registry_(registry) {}

  const MetricsSnapshot& Capture(Timestamp at);

  size_t size() const { return snapshots_.size(); }
  const std::vector<MetricsSnapshot>& snapshots() const { return snapshots_; }
  const MetricsSnapshot& latest() const { return snapshots_.back(); }

  // Delta between the last two captures (or from zero for a single one).
  MetricsSnapshot LatestDelta() const;

  // JSON array of every captured snapshot.
  std::string ToJson() const;

 private:
  const MetricsRegistry* registry_;
  std::vector<MetricsSnapshot> snapshots_;
};

}  // namespace cosmos

#endif  // COSMOS_TELEMETRY_SNAPSHOT_H_
