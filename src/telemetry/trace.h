#ifndef COSMOS_TELEMETRY_TRACE_H_
#define COSMOS_TELEMETRY_TRACE_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"

namespace cosmos {

// An event tracer exporting Chrome trace_event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev). The convention across
// COSMOS: pid 1 is the whole simulation, tid is the overlay node id, so the
// viewer shows one row per node with datagram hops, SPE evaluations and
// optimizer runs as slices on that node's row.
//
// Timestamps come from an injectable clock — CosmosSystem wires the
// discrete-event simulator's virtual clock in, so slice positions are
// virtual microseconds; without a clock a logical tick per recorded event
// keeps slices ordered and non-overlapping.
//
// Disabled (the default) the tracer is one predicted branch per call site:
// call sites guard on enabled() and every record method re-checks, so an
// untraced run allocates and formats nothing.
class Tracer {
 public:
  // A recorded event, pre-serialized into trace_event fields.
  struct Event {
    char phase = 'i';         // 'X' complete slice, 'i' instant
    Timestamp ts = 0;         // microseconds
    Duration dur = 0;         // 'X' only
    int tid = 0;              // row: overlay node id (or -1 system-wide)
    std::string name;
    std::string category;
    // Rendered as the `args` object: key -> already-quoted-or-numeric JSON
    // value (use ArgString for strings, plain digits for numbers).
    std::vector<std::pair<std::string, std::string>> args;
  };

  // Closes its slice on destruction ('X' with dur = now - start). Inactive
  // spans (tracer disabled) are a no-op shell.
  class Span {
   public:
    Span() = default;
    Span(Tracer* tracer, size_t index) : tracer_(tracer), index_(index) {}
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept {
      End();
      tracer_ = other.tracer_;
      index_ = other.index_;
      other.tracer_ = nullptr;
      return *this;
    }
    ~Span() { End(); }

    bool active() const { return tracer_ != nullptr; }
    // Attaches an arg to the (still open) slice.
    void AddArg(const std::string& key, const std::string& json_value);
    void End();

   private:
    Tracer* tracer_ = nullptr;
    size_t index_ = 0;
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& Global();

  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Virtual-time source; unset falls back to a logical tick counter.
  void SetClock(std::function<Timestamp()> clock) {
    clock_ = std::move(clock);
  }

  Timestamp Now();

  // Records an instant event (a point on `tid`'s row).
  void Instant(const char* category, std::string name, int tid);
  void Instant(const char* category, std::string name, int tid,
               std::vector<std::pair<std::string, std::string>> args);

  // Records a complete slice with an explicit duration (e.g. a datagram
  // hop whose duration is the link delay).
  void Complete(const char* category, std::string name, int tid,
                Timestamp ts, Duration dur);
  void Complete(const char* category, std::string name, int tid,
                Timestamp ts, Duration dur,
                std::vector<std::pair<std::string, std::string>> args);

  // Opens a slice ending when the returned Span is destroyed. Zero-duration
  // spans export with dur 1us so viewers render them.
  Span BeginSpan(const char* category, std::string name, int tid);

  // JSON-escapes and quotes `s` for use as an Event arg value.
  static std::string ArgString(const std::string& s);

  const std::vector<Event>& events() const { return events_; }
  size_t num_events() const { return events_.size(); }
  void Clear();

  // The full {"traceEvents": [...]} document.
  std::string ToChromeTraceJson() const;

 private:
  bool enabled_ = false;
  std::function<Timestamp()> clock_;
  Timestamp logical_clock_ = 0;
  std::vector<Event> events_;
};

}  // namespace cosmos

#endif  // COSMOS_TELEMETRY_TRACE_H_
