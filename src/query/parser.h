#ifndef COSMOS_QUERY_PARSER_H_
#define COSMOS_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"

namespace cosmos {

// Parses one CQL statement of the subset used in the paper:
//
//   SELECT <item> (, <item>)*
//   FROM <stream> [window]? [alias]? (, ...)*
//   [WHERE <boolean expression>]
//   [GROUP BY <column> (, <column>)*]
//
// where <item> is *, alias.*, [alias.]column [AS name], or
// AGG([alias.]column | *) [AS name]; window is [Now], [Unbounded],
// [Range <n> <unit>] or [Range Unbounded]; units are Microsecond(s)/
// Millisecond(s)/Second(s)/Minute(s)/Hour(s)/Day(s). Keywords are
// case-insensitive. Expressions support AND/OR/NOT, the six comparison
// operators, + - * /, parentheses, numeric/string/boolean literals.
Result<ParsedQuery> ParseQuery(const std::string& cql);

// Parses a standalone boolean expression (used for hand-written profile
// filters in tests and examples).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace cosmos

#endif  // COSMOS_QUERY_PARSER_H_
