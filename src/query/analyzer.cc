#include "query/analyzer.h"

#include <set>

#include "common/string_util.h"
#include "query/parser.h"

namespace cosmos {

int AnalyzedQuery::SourceIndex(const std::string& alias) const {
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i].alias() == alias) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> AnalyzedQuery::ReferencedAttributes(size_t i) const {
  std::set<std::string> names;
  const std::string& alias = sources_[i].alias();

  for (const auto& col : output_columns_) {
    if (col.source == i) names.insert(sources_[i].schema->attribute(col.attr).name);
  }
  for (const auto& col : group_by_) {
    if (col.source == i) names.insert(sources_[i].schema->attribute(col.attr).name);
  }
  for (const auto& agg : aggregates_) {
    if (!agg.star && agg.source == i) {
      names.insert(sources_[i].schema->attribute(agg.attr).name);
    }
  }
  for (const auto& [attr, c] : local_selections_[i].constraints()) {
    names.insert(attr);
  }
  for (const auto& r : local_selections_[i].residual()) {
    std::vector<const ColumnRefExpr*> cols;
    CollectColumns(r, &cols);
    for (const auto* c : cols) names.insert(c->name());
  }
  for (const auto& j : equi_joins_) {
    if (j.left_source == i) {
      names.insert(sources_[i].schema->attribute(j.left_attr).name);
    }
    if (j.right_source == i) {
      names.insert(sources_[i].schema->attribute(j.right_attr).name);
    }
  }
  for (const auto& r : cross_residual_) {
    std::vector<const ColumnRefExpr*> cols;
    CollectColumns(r, &cols);
    for (const auto* c : cols) {
      if (c->qualifier() == alias) names.insert(c->name());
    }
  }
  return std::vector<std::string>(names.begin(), names.end());
}

namespace internal_analyzer {

class Analyzer {
 public:
  Analyzer(const ParsedQuery& parsed, const Catalog& catalog,
           const std::string& result_name)
      : catalog_(catalog), result_name_(result_name) {
    out_.ast_ = parsed;
  }

  Result<AnalyzedQuery> Run() {
    COSMOS_RETURN_IF_ERROR(ResolveSources());
    COSMOS_RETURN_IF_ERROR(ResolveWhere());
    COSMOS_RETURN_IF_ERROR(ResolveGroupBy());
    COSMOS_RETURN_IF_ERROR(ResolveSelect());
    COSMOS_RETURN_IF_ERROR(BuildOutputSchema());
    return std::move(out_);
  }

 private:
  // Resolves a (possibly unqualified) column reference to (source, attr).
  Result<std::pair<size_t, size_t>> ResolveRef(const std::string& qualifier,
                                               const std::string& name) {
    if (!qualifier.empty()) {
      int si = out_.SourceIndex(qualifier);
      if (si < 0) {
        return Status::NotFound(
            StrFormat("unknown alias '%s'", qualifier.c_str()));
      }
      auto ai = out_.sources_[si].schema->IndexOf(name);
      if (!ai.has_value()) {
        return Status::NotFound(StrFormat("attribute '%s' not in '%s'",
                                          name.c_str(), qualifier.c_str()));
      }
      return std::make_pair(static_cast<size_t>(si), *ai);
    }
    int found_source = -1;
    size_t found_attr = 0;
    for (size_t i = 0; i < out_.sources_.size(); ++i) {
      auto ai = out_.sources_[i].schema->IndexOf(name);
      if (ai.has_value()) {
        if (found_source >= 0) {
          return Status::InvalidArgument(
              StrFormat("ambiguous column '%s'", name.c_str()));
        }
        found_source = static_cast<int>(i);
        found_attr = *ai;
      }
    }
    if (found_source < 0) {
      return Status::NotFound(StrFormat("unknown column '%s'", name.c_str()));
    }
    return std::make_pair(static_cast<size_t>(found_source), found_attr);
  }

  Status ResolveSources() {
    if (out_.ast_.from.empty()) {
      return Status::InvalidArgument("query has no FROM clause");
    }
    std::set<std::string> aliases;
    for (const auto& item : out_.ast_.from) {
      COSMOS_ASSIGN_OR_RETURN(auto schema,
                              catalog_.LookupSchema(item.stream));
      const std::string& alias = item.EffectiveAlias();
      if (!aliases.insert(alias).second) {
        return Status::InvalidArgument(
            StrFormat("duplicate alias '%s'", alias.c_str()));
      }
      ResolvedSource src;
      src.from = item;
      src.schema = schema;
      out_.sources_.push_back(std::move(src));
    }
    out_.local_selections_.resize(out_.sources_.size());
    return Status::OK();
  }

  // Rewrites every column reference in `expr` to alias-qualified form,
  // verifying resolution along the way.
  Result<ExprPtr> QualifyColumns(const ExprPtr& expr) {
    switch (expr->kind()) {
      case ExprKind::kLiteral:
        return expr;
      case ExprKind::kColumnRef: {
        const auto& col = static_cast<const ColumnRefExpr&>(*expr);
        COSMOS_ASSIGN_OR_RETURN(auto ref,
                                ResolveRef(col.qualifier(), col.name()));
        return MakeColumn(out_.sources_[ref.first].alias(),
                          out_.sources_[ref.first].schema
                              ->attribute(ref.second)
                              .name);
      }
      case ExprKind::kComparison: {
        const auto& c = static_cast<const ComparisonExpr&>(*expr);
        COSMOS_ASSIGN_OR_RETURN(ExprPtr l, QualifyColumns(c.lhs()));
        COSMOS_ASSIGN_OR_RETURN(ExprPtr r, QualifyColumns(c.rhs()));
        return MakeCompare(c.op(), std::move(l), std::move(r));
      }
      case ExprKind::kLogical: {
        const auto& l = static_cast<const LogicalExpr&>(*expr);
        std::vector<ExprPtr> children;
        for (const auto& child : l.children()) {
          COSMOS_ASSIGN_OR_RETURN(ExprPtr q, QualifyColumns(child));
          children.push_back(std::move(q));
        }
        if (l.op() == LogicalOp::kNot) return MakeNot(children[0]);
        return l.op() == LogicalOp::kAnd ? MakeAnd(std::move(children))
                                         : MakeOr(std::move(children));
      }
      case ExprKind::kArithmetic: {
        const auto& a = static_cast<const ArithmeticExpr&>(*expr);
        COSMOS_ASSIGN_OR_RETURN(ExprPtr l, QualifyColumns(a.lhs()));
        COSMOS_ASSIGN_OR_RETURN(ExprPtr r, QualifyColumns(a.rhs()));
        return MakeArith(a.op(), std::move(l), std::move(r));
      }
    }
    return Status::Internal("unreachable");
  }

  // Strips the alias qualifier from every column reference (used for
  // single-source conjuncts that become local selections).
  static ExprPtr UnqualifyColumns(const ExprPtr& expr) {
    switch (expr->kind()) {
      case ExprKind::kLiteral:
        return expr;
      case ExprKind::kColumnRef: {
        const auto& col = static_cast<const ColumnRefExpr&>(*expr);
        return MakeColumn(col.name());
      }
      case ExprKind::kComparison: {
        const auto& c = static_cast<const ComparisonExpr&>(*expr);
        return MakeCompare(c.op(), UnqualifyColumns(c.lhs()),
                           UnqualifyColumns(c.rhs()));
      }
      case ExprKind::kLogical: {
        const auto& l = static_cast<const LogicalExpr&>(*expr);
        std::vector<ExprPtr> children;
        for (const auto& child : l.children()) {
          children.push_back(UnqualifyColumns(child));
        }
        if (l.op() == LogicalOp::kNot) return MakeNot(children[0]);
        return l.op() == LogicalOp::kAnd ? MakeAnd(std::move(children))
                                         : MakeOr(std::move(children));
      }
      case ExprKind::kArithmetic: {
        const auto& a = static_cast<const ArithmeticExpr&>(*expr);
        return MakeArith(a.op(), UnqualifyColumns(a.lhs()),
                         UnqualifyColumns(a.rhs()));
      }
    }
    return expr;
  }

  // The set of source indexes referenced by `expr`.
  std::set<size_t> SourcesOf(const ExprPtr& expr) {
    std::vector<const ColumnRefExpr*> cols;
    CollectColumns(expr, &cols);
    std::set<size_t> out;
    for (const auto* c : cols) {
      int si = out_.SourceIndex(c->qualifier());
      if (si >= 0) out.insert(static_cast<size_t>(si));
    }
    return out;
  }

  // True when `expr` is an equi-join atom "a.x = b.y"; fills `join`.
  bool AsEquiJoin(const ExprPtr& expr, EquiJoin* join) {
    if (expr->kind() != ExprKind::kComparison) return false;
    const auto& c = static_cast<const ComparisonExpr&>(*expr);
    if (c.op() != CompareOp::kEq) return false;
    if (c.lhs()->kind() != ExprKind::kColumnRef ||
        c.rhs()->kind() != ExprKind::kColumnRef) {
      return false;
    }
    const auto& l = static_cast<const ColumnRefExpr&>(*c.lhs());
    const auto& r = static_cast<const ColumnRefExpr&>(*c.rhs());
    int ls = out_.SourceIndex(l.qualifier());
    int rs = out_.SourceIndex(r.qualifier());
    if (ls < 0 || rs < 0 || ls == rs) return false;
    auto la = out_.sources_[ls].schema->IndexOf(l.name());
    auto ra = out_.sources_[rs].schema->IndexOf(r.name());
    if (!la || !ra) return false;
    join->left_source = static_cast<size_t>(ls);
    join->left_attr = *la;
    join->right_source = static_cast<size_t>(rs);
    join->right_attr = *ra;
    return true;
  }

  Status ResolveWhere() {
    if (out_.ast_.where == nullptr) return Status::OK();
    COSMOS_ASSIGN_OR_RETURN(out_.normalized_where_,
                            QualifyColumns(out_.ast_.where));

    // Split the top-level conjunction.
    std::vector<ExprPtr> conjuncts;
    const ExprPtr& w = out_.normalized_where_;
    if (w->kind() == ExprKind::kLogical &&
        static_cast<const LogicalExpr&>(*w).op() == LogicalOp::kAnd) {
      conjuncts = static_cast<const LogicalExpr&>(*w).children();
    } else {
      conjuncts.push_back(w);
    }

    for (const auto& atom : conjuncts) {
      std::set<size_t> srcs = SourcesOf(atom);
      if (srcs.empty()) {
        // Constant conjunct; attach to source 0's residual for evaluation.
        out_.local_selections_[0].AddResidual(UnqualifyColumns(atom));
        continue;
      }
      if (srcs.size() == 1) {
        size_t si = *srcs.begin();
        ExprPtr bare = UnqualifyColumns(atom);
        COSMOS_ASSIGN_OR_RETURN(ConjunctiveClause piece,
                                ClauseFromExpr(bare));
        // Merge into the accumulated local selection.
        for (const auto& [attr, c] : piece.constraints()) {
          if (!c.interval.IsAll()) {
            out_.local_selections_[si].ConstrainInterval(attr, c.interval);
          }
          if (c.eq.has_value()) {
            out_.local_selections_[si].ConstrainEquals(attr, *c.eq);
          }
          for (const auto& v : c.neq) {
            out_.local_selections_[si].ConstrainNotEquals(attr, v);
          }
        }
        for (const auto& r : piece.residual()) {
          out_.local_selections_[si].AddResidual(r);
        }
        continue;
      }
      EquiJoin join;
      if (srcs.size() == 2 && AsEquiJoin(atom, &join)) {
        out_.equi_joins_.push_back(join);
        continue;
      }
      out_.cross_residual_.push_back(atom);
    }
    return Status::OK();
  }

  Status ResolveGroupBy() {
    for (const auto& g : out_.ast_.group_by) {
      const auto& col = static_cast<const ColumnRefExpr&>(*g);
      COSMOS_ASSIGN_OR_RETURN(auto ref,
                              ResolveRef(col.qualifier(), col.name()));
      OutputColumn oc;
      oc.source = ref.first;
      oc.attr = ref.second;
      oc.out_name = OutName(ref.first, ref.second);
      out_.group_by_.push_back(std::move(oc));
    }
    return Status::OK();
  }

  std::string OutName(size_t source, size_t attr) const {
    const auto& s = out_.sources_[source];
    if (out_.sources_.size() == 1) return s.schema->attribute(attr).name;
    return s.alias() + "." + s.schema->attribute(attr).name;
  }

  Status ResolveSelect() {
    bool has_agg = false;
    for (const auto& item : out_.ast_.select) {
      if (item.kind == SelectItem::Kind::kAggregate) has_agg = true;
    }

    for (const auto& item : out_.ast_.select) {
      switch (item.kind) {
        case SelectItem::Kind::kStar: {
          if (has_agg) {
            return Status::InvalidArgument(
                "SELECT * cannot be combined with aggregates");
          }
          for (size_t si = 0; si < out_.sources_.size(); ++si) {
            AppendAllColumns(si);
          }
          break;
        }
        case SelectItem::Kind::kQualifiedStar: {
          if (has_agg) {
            return Status::InvalidArgument(
                "alias.* cannot be combined with aggregates");
          }
          int si = out_.SourceIndex(item.qualifier);
          if (si < 0) {
            return Status::NotFound(
                StrFormat("unknown alias '%s'", item.qualifier.c_str()));
          }
          AppendAllColumns(static_cast<size_t>(si));
          break;
        }
        case SelectItem::Kind::kColumn: {
          COSMOS_ASSIGN_OR_RETURN(auto ref,
                                  ResolveRef(item.qualifier, item.name));
          OutputColumn oc;
          oc.source = ref.first;
          oc.attr = ref.second;
          oc.out_name = item.alias.empty() ? OutName(ref.first, ref.second)
                                           : item.alias;
          if (has_agg) {
            // Plain columns in an aggregate query must be grouping columns.
            bool is_group = false;
            for (const auto& g : out_.group_by_) {
              if (g.source == oc.source && g.attr == oc.attr) is_group = true;
            }
            if (!is_group) {
              return Status::InvalidArgument(StrFormat(
                  "column '%s' must appear in GROUP BY", oc.out_name.c_str()));
            }
            // Grouping columns are emitted via group_by_; skip duplicates.
            break;
          }
          out_.output_columns_.push_back(std::move(oc));
          break;
        }
        case SelectItem::Kind::kAggregate: {
          ResolvedAggregate agg;
          agg.func = item.func;
          agg.star = item.agg_star;
          std::string base_name;
          if (item.agg_star) {
            if (item.func != AggFunc::kCount) {
              return Status::InvalidArgument("only COUNT(*) supports '*'");
            }
            base_name = "count_star";
          } else {
            COSMOS_ASSIGN_OR_RETURN(auto ref,
                                    ResolveRef(item.qualifier, item.name));
            agg.source = ref.first;
            agg.attr = ref.second;
            const auto& attr_def =
                out_.sources_[agg.source].schema->attribute(agg.attr);
            if (item.func != AggFunc::kCount && item.func != AggFunc::kMin &&
                item.func != AggFunc::kMax) {
              if (attr_def.type != ValueType::kInt64 &&
                  attr_def.type != ValueType::kDouble) {
                return Status::InvalidArgument(
                    StrFormat("%s over non-numeric attribute '%s'",
                              AggFuncToString(item.func),
                              attr_def.name.c_str()));
              }
            }
            base_name = std::string(ToLower(AggFuncToString(item.func))) +
                        "_" + attr_def.name;
          }
          agg.out_name = item.alias.empty() ? base_name : item.alias;
          out_.aggregates_.push_back(std::move(agg));
          break;
        }
      }
    }
    if (out_.aggregates_.empty() && !out_.group_by_.empty()) {
      return Status::InvalidArgument("GROUP BY requires aggregates");
    }
    if (out_.output_columns_.empty() && out_.aggregates_.empty()) {
      return Status::InvalidArgument("empty SELECT list");
    }
    return Status::OK();
  }

  void AppendAllColumns(size_t si) {
    const auto& schema = out_.sources_[si].schema;
    for (size_t ai = 0; ai < schema->num_attributes(); ++ai) {
      OutputColumn oc;
      oc.source = si;
      oc.attr = ai;
      oc.out_name = OutName(si, ai);
      out_.output_columns_.push_back(std::move(oc));
    }
  }

  Status BuildOutputSchema() {
    std::vector<AttributeDef> attrs;
    if (out_.is_aggregate()) {
      for (const auto& g : out_.group_by_) {
        AttributeDef def = out_.sources_[g.source].schema->attribute(g.attr);
        def.name = g.out_name;
        attrs.push_back(std::move(def));
      }
      for (const auto& a : out_.aggregates_) {
        AttributeDef def;
        def.name = a.out_name;
        if (a.func == AggFunc::kCount) {
          def.type = ValueType::kInt64;
        } else if (a.star) {
          def.type = ValueType::kInt64;
        } else {
          const auto& arg =
              out_.sources_[a.source].schema->attribute(a.attr);
          def.type = (a.func == AggFunc::kAvg) ? ValueType::kDouble
                                               : arg.type;
        }
        attrs.push_back(std::move(def));
      }
    } else {
      std::set<std::string> seen;
      for (const auto& c : out_.output_columns_) {
        AttributeDef def = out_.sources_[c.source].schema->attribute(c.attr);
        def.name = c.out_name;
        if (!seen.insert(def.name).second) {
          return Status::InvalidArgument(
              StrFormat("duplicate output column '%s'", def.name.c_str()));
        }
        attrs.push_back(std::move(def));
      }
    }
    out_.output_schema_ =
        std::make_shared<Schema>(result_name_, std::move(attrs));
    return Status::OK();
  }

  const Catalog& catalog_;
  std::string result_name_;
  AnalyzedQuery out_;
};

}  // namespace internal_analyzer

Result<AnalyzedQuery> Analyze(const ParsedQuery& parsed,
                              const Catalog& catalog,
                              const std::string& result_name) {
  internal_analyzer::Analyzer a(parsed, catalog, result_name);
  return a.Run();
}

Result<AnalyzedQuery> ParseAndAnalyze(const std::string& cql,
                                      const Catalog& catalog,
                                      const std::string& result_name) {
  COSMOS_ASSIGN_OR_RETURN(ParsedQuery parsed, ParseQuery(cql));
  return Analyze(parsed, catalog, result_name);
}

}  // namespace cosmos
