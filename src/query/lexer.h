#ifndef COSMOS_QUERY_LEXER_H_
#define COSMOS_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace cosmos {

enum class TokenType {
  kIdentifier,  // unquoted name (keywords are identifiers; parser decides)
  kInteger,
  kFloat,
  kString,   // 'single quoted'
  kComma,
  kDot,
  kStar,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kEq,       // =
  kNe,       // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kSlash,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      // raw text (identifier/keyword spelled as written)
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t offset = 0;     // byte offset in the source, for error messages

  bool IsKeyword(const char* kw) const;  // case-insensitive identifier match
};

// Tokenizes a CQL statement. Fails with kParseError on malformed input
// (unterminated string, stray character).
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace cosmos

#endif  // COSMOS_QUERY_LEXER_H_
