#include "query/parser.h"

#include "common/check.h"
#include "common/string_util.h"
#include "query/lexer.h"

namespace cosmos {
namespace {

// Recursive-descent parser over the token stream. Grammar (precedence low
// to high): OR, AND, NOT, comparison, additive, multiplicative, unary minus,
// primary.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {
    // Peek/Advance clamp the cursor to the last token; that arithmetic
    // (tokens_.size() - 1) requires a non-empty stream terminated by kEnd,
    // which the lexer guarantees.
    COSMOS_CHECK(!tokens_.empty()) << "lexer emitted an empty token stream";
    COSMOS_CHECK(tokens_.back().type == TokenType::kEnd)
        << "token stream not kEnd-terminated";
  }

  Result<ParsedQuery> ParseQueryStatement() {
    ParsedQuery q;
    COSMOS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    COSMOS_RETURN_IF_ERROR(ParseSelectList(&q));
    COSMOS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    COSMOS_RETURN_IF_ERROR(ParseFromList(&q));
    if (PeekKeyword("WHERE")) {
      Advance();
      COSMOS_ASSIGN_OR_RETURN(q.where, ParseOr());
    }
    if (PeekKeyword("GROUP")) {
      Advance();
      COSMOS_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        COSMOS_ASSIGN_OR_RETURN(ExprPtr col, ParseColumnRef());
        q.group_by.push_back(std::move(col));
        if (Peek().type != TokenType::kComma) break;
        Advance();
      }
    }
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return q;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    COSMOS_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input after expression");
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool PeekKeyword(const char* kw, size_t ahead = 0) const {
    return Peek(ahead).IsKeyword(kw);
  }

  Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) {
      return Error(StrFormat("expected %s", kw).c_str());
    }
    Advance();
    return Status::OK();
  }

  Status Expect(TokenType t, const char* what) {
    if (Peek().type != t) return Error(StrFormat("expected %s", what).c_str());
    Advance();
    return Status::OK();
  }

  Status Error(const char* msg) const {
    const Token& t = Peek();
    return Status::ParseError(StrFormat(
        "%s at offset %zu (near '%s')", msg, t.offset, t.text.c_str()));
  }

  static bool IsReservedKeyword(const Token& t) {
    static const char* kReserved[] = {"SELECT", "FROM",  "WHERE",   "GROUP",
                                      "BY",     "AND",   "OR",      "NOT",
                                      "AS",     "RANGE", "NOW",     "BETWEEN"};
    for (const char* kw : kReserved) {
      if (t.IsKeyword(kw)) return true;
    }
    return false;
  }

  static bool IsAggName(const Token& t, AggFunc* out) {
    struct {
      const char* name;
      AggFunc f;
    } static const kAggs[] = {{"COUNT", AggFunc::kCount},
                              {"SUM", AggFunc::kSum},
                              {"AVG", AggFunc::kAvg},
                              {"MIN", AggFunc::kMin},
                              {"MAX", AggFunc::kMax}};
    for (const auto& a : kAggs) {
      if (t.IsKeyword(a.name)) {
        *out = a.f;
        return true;
      }
    }
    return false;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    AggFunc func;
    if (Peek().type == TokenType::kStar) {
      Advance();
      item.kind = SelectItem::Kind::kStar;
      return item;
    }
    if (Peek().type == TokenType::kIdentifier && IsAggName(Peek(), &func) &&
        Peek(1).type == TokenType::kLParen) {
      Advance();  // agg name
      Advance();  // (
      item.kind = SelectItem::Kind::kAggregate;
      item.func = func;
      if (Peek().type == TokenType::kStar) {
        Advance();
        item.agg_star = true;
      } else {
        COSMOS_RETURN_IF_ERROR(ParseQualifiedName(&item.qualifier,
                                                  &item.name));
      }
      COSMOS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      COSMOS_RETURN_IF_ERROR(MaybeParseAlias(&item.alias));
      return item;
    }
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected select item");
    }
    std::string first = Advance().text;
    if (Peek().type == TokenType::kDot) {
      Advance();
      if (Peek().type == TokenType::kStar) {
        Advance();
        item.kind = SelectItem::Kind::kQualifiedStar;
        item.qualifier = first;
        return item;
      }
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected column name after '.'");
      }
      item.kind = SelectItem::Kind::kColumn;
      item.qualifier = first;
      item.name = Advance().text;
    } else {
      item.kind = SelectItem::Kind::kColumn;
      item.name = first;
    }
    COSMOS_RETURN_IF_ERROR(MaybeParseAlias(&item.alias));
    return item;
  }

  Status MaybeParseAlias(std::string* alias) {
    if (PeekKeyword("AS")) {
      Advance();
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected alias after AS");
      }
      *alias = Advance().text;
    }
    return Status::OK();
  }

  Status ParseQualifiedName(std::string* qualifier, std::string* name) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected column reference");
    }
    std::string first = Advance().text;
    if (Peek().type == TokenType::kDot) {
      Advance();
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected column name after '.'");
      }
      *qualifier = first;
      *name = Advance().text;
    } else {
      *name = first;
    }
    return Status::OK();
  }

  Status ParseSelectList(ParsedQuery* q) {
    for (;;) {
      COSMOS_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      q->select.push_back(std::move(item));
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Result<Duration> ParseTimeUnit() {
    const Token& t = Peek();
    struct {
      const char* name;
      Duration d;
    } static const kUnits[] = {
        {"MICROSECOND", kMicrosecond}, {"MICROSECONDS", kMicrosecond},
        {"MILLISECOND", kMillisecond}, {"MILLISECONDS", kMillisecond},
        {"SECOND", kSecond},           {"SECONDS", kSecond},
        {"MINUTE", kMinute},           {"MINUTES", kMinute},
        {"HOUR", kHour},               {"HOURS", kHour},
        {"DAY", kDay},                 {"DAYS", kDay},
    };
    for (const auto& u : kUnits) {
      if (t.IsKeyword(u.name)) {
        Advance();
        return u.d;
      }
    }
    return Error("expected time unit");
  }

  Result<WindowSpec> ParseWindow() {
    COSMOS_RETURN_IF_ERROR(Expect(TokenType::kLBracket, "["));
    WindowSpec w;
    if (PeekKeyword("NOW")) {
      Advance();
      w = WindowSpec::Now();
    } else if (PeekKeyword("UNBOUNDED")) {
      Advance();
      w = WindowSpec::Unbounded();
    } else if (PeekKeyword("RANGE")) {
      Advance();
      if (PeekKeyword("UNBOUNDED")) {
        Advance();
        w = WindowSpec::Unbounded();
      } else if (Peek().type == TokenType::kInteger) {
        int64_t n = Advance().int_value;
        COSMOS_ASSIGN_OR_RETURN(Duration unit, ParseTimeUnit());
        w = WindowSpec::Range(n * unit);
      } else {
        return Error("expected window length");
      }
    } else {
      return Error("expected Now, Unbounded or Range in window");
    }
    COSMOS_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "]"));
    return w;
  }

  Status ParseFromList(ParsedQuery* q) {
    for (;;) {
      FromItem item;
      if (Peek().type != TokenType::kIdentifier || IsReservedKeyword(Peek())) {
        return Error("expected stream name");
      }
      item.stream = Advance().text;
      if (Peek().type == TokenType::kLBracket) {
        COSMOS_ASSIGN_OR_RETURN(item.window, ParseWindow());
      }
      if (Peek().type == TokenType::kIdentifier &&
          !IsReservedKeyword(Peek())) {
        item.alias = Advance().text;
      }
      q->from.push_back(std::move(item));
      if (Peek().type != TokenType::kComma) break;
      Advance();
    }
    return Status::OK();
  }

  Result<ExprPtr> ParseColumnRef() {
    std::string qualifier;
    std::string name;
    COSMOS_RETURN_IF_ERROR(ParseQualifiedName(&qualifier, &name));
    return MakeColumn(std::move(qualifier), std::move(name));
  }

  Result<ExprPtr> ParseOr() {
    COSMOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    std::vector<ExprPtr> terms{lhs};
    while (PeekKeyword("OR")) {
      Advance();
      COSMOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      terms.push_back(std::move(rhs));
    }
    if (terms.size() == 1) return terms[0];
    return MakeOr(std::move(terms));
  }

  Result<ExprPtr> ParseAnd() {
    COSMOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    std::vector<ExprPtr> terms{lhs};
    while (PeekKeyword("AND")) {
      Advance();
      COSMOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      terms.push_back(std::move(rhs));
    }
    if (terms.size() == 1) return terms[0];
    return MakeAnd(std::move(terms));
  }

  Result<ExprPtr> ParseNot() {
    if (PeekKeyword("NOT")) {
      Advance();
      COSMOS_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
      return MakeNot(std::move(child));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    COSMOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // x BETWEEN a AND b  =>  x >= a AND x <= b
    if (PeekKeyword("BETWEEN")) {
      Advance();
      COSMOS_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      COSMOS_RETURN_IF_ERROR(ExpectKeyword("AND"));
      COSMOS_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      return MakeAnd({MakeCompare(CompareOp::kGe, lhs, std::move(lo)),
                      MakeCompare(CompareOp::kLe, lhs, std::move(hi))});
    }
    CompareOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = CompareOp::kEq;
        break;
      case TokenType::kNe:
        op = CompareOp::kNe;
        break;
      case TokenType::kLt:
        op = CompareOp::kLt;
        break;
      case TokenType::kLe:
        op = CompareOp::kLe;
        break;
      case TokenType::kGt:
        op = CompareOp::kGt;
        break;
      case TokenType::kGe:
        op = CompareOp::kGe;
        break;
      default:
        return lhs;
    }
    Advance();
    COSMOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    ExprPtr cmp = MakeCompare(op, std::move(lhs), std::move(rhs));
    // Support chained comparisons "a <= b <= c" as (a<=b) AND (b<=c).
    // CQL examples in the paper write range predicates this way.
    if (Peek().type == TokenType::kLe || Peek().type == TokenType::kLt ||
        Peek().type == TokenType::kGe || Peek().type == TokenType::kGt) {
      const auto& prev_rhs = static_cast<const ComparisonExpr&>(*cmp).rhs();
      CompareOp op2;
      switch (Peek().type) {
        case TokenType::kLt:
          op2 = CompareOp::kLt;
          break;
        case TokenType::kLe:
          op2 = CompareOp::kLe;
          break;
        case TokenType::kGt:
          op2 = CompareOp::kGt;
          break;
        default:
          op2 = CompareOp::kGe;
          break;
      }
      Advance();
      COSMOS_ASSIGN_OR_RETURN(ExprPtr rhs2, ParseAdditive());
      ExprPtr cmp2 = MakeCompare(op2, prev_rhs, std::move(rhs2));
      return MakeAnd({std::move(cmp), std::move(cmp2)});
    }
    return cmp;
  }

  Result<ExprPtr> ParseAdditive() {
    COSMOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      ArithOp op;
      if (Peek().type == TokenType::kPlus) {
        op = ArithOp::kAdd;
      } else if (Peek().type == TokenType::kMinus) {
        op = ArithOp::kSub;
      } else {
        return lhs;
      }
      Advance();
      COSMOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeArith(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    COSMOS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      ArithOp op;
      if (Peek().type == TokenType::kStar) {
        op = ArithOp::kMul;
      } else if (Peek().type == TokenType::kSlash) {
        op = ArithOp::kDiv;
      } else {
        return lhs;
      }
      Advance();
      COSMOS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeArith(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Peek().type == TokenType::kMinus) {
      Advance();
      // Fold negation into numeric literals; otherwise 0 - x.
      if (Peek().type == TokenType::kInteger) {
        return MakeLiteral(Value(-Advance().int_value));
      }
      if (Peek().type == TokenType::kFloat) {
        return MakeLiteral(Value(-Advance().float_value));
      }
      COSMOS_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
      return MakeArith(ArithOp::kSub, MakeLiteral(Value(int64_t{0})),
                       std::move(child));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger:
        return MakeLiteral(Value(Advance().int_value));
      case TokenType::kFloat:
        return MakeLiteral(Value(Advance().float_value));
      case TokenType::kString:
        return MakeLiteral(Value(Advance().text));
      case TokenType::kLParen: {
        Advance();
        COSMOS_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
        COSMOS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
        return e;
      }
      case TokenType::kIdentifier: {
        if (t.IsKeyword("TRUE")) {
          Advance();
          return MakeLiteral(Value(true));
        }
        if (t.IsKeyword("FALSE")) {
          Advance();
          return MakeLiteral(Value(false));
        }
        if (IsReservedKeyword(t)) {
          return Error("reserved keyword in expression");
        }
        return ParseColumnRef();
      }
      default:
        return Error("expected expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseQuery(const std::string& cql) {
  COSMOS_ASSIGN_OR_RETURN(auto tokens, Tokenize(cql));
  Parser p(std::move(tokens));
  return p.ParseQueryStatement();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  COSMOS_ASSIGN_OR_RETURN(auto tokens, Tokenize(text));
  Parser p(std::move(tokens));
  return p.ParseStandaloneExpression();
}

}  // namespace cosmos
