#ifndef COSMOS_QUERY_ANALYZER_H_
#define COSMOS_QUERY_ANALYZER_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/conjunct.h"
#include "query/ast.h"
#include "stream/catalog.h"

namespace cosmos {

// One resolved FROM entry.
struct ResolvedSource {
  FromItem from;
  std::shared_ptr<const Schema> schema;

  const std::string& alias() const { return from.EffectiveAlias(); }
};

// A projected output column: attribute `attr` of source `source`, emitted
// under `out_name` (qualified "alias.attr" for multi-stream queries, bare
// otherwise, or the user's AS alias).
struct OutputColumn {
  size_t source = 0;
  size_t attr = 0;
  std::string out_name;
};

// A resolved aggregate of the SELECT list.
struct ResolvedAggregate {
  AggFunc func = AggFunc::kCount;
  bool star = false;     // COUNT(*)
  size_t source = 0;     // argument column (when !star)
  size_t attr = 0;
  std::string out_name;
};

namespace internal_analyzer {
class Analyzer;
}  // namespace internal_analyzer

// An equi-join conjunct "a.x = b.y" between two distinct sources.
struct EquiJoin {
  size_t left_source = 0;
  size_t left_attr = 0;
  size_t right_source = 0;
  size_t right_attr = 0;
};

// The semantic form of a continuous query: sources resolved against the
// catalog, the WHERE clause split into per-source canonical selections,
// equi-join conjuncts, and a cross-source residual, and the SELECT list
// expanded into concrete output columns. This is the input to the SPE plan
// builder, the profile composer, and the containment/merging machinery.
class AnalyzedQuery {
 public:
  const ParsedQuery& ast() const { return ast_; }
  const std::vector<ResolvedSource>& sources() const { return sources_; }

  // Index of the source with `alias`, or -1.
  int SourceIndex(const std::string& alias) const;

  // WHERE with every column reference rewritten to alias-qualified form;
  // null when absent.
  const ExprPtr& normalized_where() const { return normalized_where_; }

  // Canonical selection on source i, with *bare* attribute names (ready to
  // become the CBN profile filter of that source stream).
  const ConjunctiveClause& local_selection(size_t i) const {
    return local_selections_[i];
  }
  const std::vector<ConjunctiveClause>& local_selections() const {
    return local_selections_;
  }

  const std::vector<EquiJoin>& equi_joins() const { return equi_joins_; }

  // Cross-source conjuncts that are not simple equi-joins; their column
  // references are alias-qualified, matching the joined-tuple schema.
  const std::vector<ExprPtr>& cross_residual() const {
    return cross_residual_;
  }

  bool is_aggregate() const { return !aggregates_.empty(); }
  const std::vector<ResolvedAggregate>& aggregates() const {
    return aggregates_;
  }
  // Group-by columns (also the leading output columns of an aggregate
  // query).
  const std::vector<OutputColumn>& group_by() const { return group_by_; }

  // Non-aggregate projected columns (empty for aggregate queries; see
  // group_by() there).
  const std::vector<OutputColumn>& output_columns() const {
    return output_columns_;
  }

  // Schema of the result stream (named `result_name` at analysis time).
  const std::shared_ptr<const Schema>& output_schema() const {
    return output_schema_;
  }

  // The set of attributes of source `i` referenced anywhere in the query
  // (projection + predicates + joins + group-by); this is the projection
  // set P of the source profile (paper §4).
  std::vector<std::string> ReferencedAttributes(size_t i) const;

  // Window size of the i-th source (paper notation T^i).
  Duration WindowSize(size_t i) const { return sources_[i].from.window.size; }

 private:
  friend class internal_analyzer::Analyzer;

  ParsedQuery ast_;
  std::vector<ResolvedSource> sources_;
  ExprPtr normalized_where_;
  std::vector<ConjunctiveClause> local_selections_;
  std::vector<EquiJoin> equi_joins_;
  std::vector<ExprPtr> cross_residual_;
  std::vector<OutputColumn> output_columns_;
  std::vector<ResolvedAggregate> aggregates_;
  std::vector<OutputColumn> group_by_;
  std::shared_ptr<const Schema> output_schema_;
};

// Resolves `parsed` against `catalog`, producing the semantic form. The
// result stream is named `result_name` (unique stream names are assigned by
// the query layer; see core/processor.h).
Result<AnalyzedQuery> Analyze(const ParsedQuery& parsed,
                              const Catalog& catalog,
                              const std::string& result_name);

// Convenience: parse + analyze.
Result<AnalyzedQuery> ParseAndAnalyze(const std::string& cql,
                                      const Catalog& catalog,
                                      const std::string& result_name);

}  // namespace cosmos

#endif  // COSMOS_QUERY_ANALYZER_H_
