#include "query/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace cosmos {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();

  auto push = [&](TokenType t, size_t start, size_t len) {
    Token tok;
    tok.type = t;
    tok.text = input.substr(start, len);
    tok.offset = start;
    out.push_back(std::move(tok));
  };

  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      push(TokenType::kIdentifier, start, i - start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i + 1 < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i])))
          ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t mark = i;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          is_float = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i])))
            ++i;
        } else {
          i = mark;  // not an exponent; 'e' belongs to the next token
        }
      }
      Token tok;
      tok.type = is_float ? TokenType::kFloat : TokenType::kInteger;
      tok.text = input.substr(start, i - start);
      tok.offset = start;
      if (is_float) {
        tok.float_value = std::stod(tok.text);
      } else {
        tok.int_value = std::stoll(tok.text);
      }
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      size_t start = i;
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += input[i++];
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      Token tok;
      tok.type = TokenType::kString;
      tok.text = std::move(value);
      tok.offset = start;
      out.push_back(std::move(tok));
      continue;
    }
    size_t start = i;
    switch (c) {
      case ',':
        push(TokenType::kComma, start, 1);
        ++i;
        break;
      case '.':
        push(TokenType::kDot, start, 1);
        ++i;
        break;
      case '*':
        push(TokenType::kStar, start, 1);
        ++i;
        break;
      case '(':
        push(TokenType::kLParen, start, 1);
        ++i;
        break;
      case ')':
        push(TokenType::kRParen, start, 1);
        ++i;
        break;
      case '[':
        push(TokenType::kLBracket, start, 1);
        ++i;
        break;
      case ']':
        push(TokenType::kRBracket, start, 1);
        ++i;
        break;
      case '+':
        push(TokenType::kPlus, start, 1);
        ++i;
        break;
      case '-':
        push(TokenType::kMinus, start, 1);
        ++i;
        break;
      case '/':
        push(TokenType::kSlash, start, 1);
        ++i;
        break;
      case '=':
        push(TokenType::kEq, start, 1);
        ++i;
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kNe, start, 2);
          i += 2;
        } else {
          return Status::ParseError(
              StrFormat("unexpected '!' at offset %zu", i));
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kLe, start, 2);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenType::kNe, start, 2);
          i += 2;
        } else {
          push(TokenType::kLt, start, 1);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenType::kGe, start, 2);
          i += 2;
        } else {
          push(TokenType::kGt, start, 1);
          ++i;
        }
        break;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' at offset %zu", c, i));
    }
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace cosmos
