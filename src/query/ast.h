#ifndef COSMOS_QUERY_AST_H_
#define COSMOS_QUERY_AST_H_

#include <string>
#include <vector>

#include "common/time.h"
#include "expr/expression.h"

namespace cosmos {

// Time-based sliding window predicate w(T) (paper §4): defines the temporal
// relation of tuples that arrived within the last T time units.
//   [Now]               -> size == 0
//   [Range n unit]      -> size == n * unit
//   [Range Unbounded]   -> size == kInfiniteDuration
struct WindowSpec {
  Duration size = kInfiniteDuration;

  static WindowSpec Now() { return WindowSpec{0}; }
  static WindowSpec Range(Duration d) { return WindowSpec{d}; }
  static WindowSpec Unbounded() { return WindowSpec{kInfiniteDuration}; }

  bool is_now() const { return size == 0; }
  bool is_unbounded() const { return size == kInfiniteDuration; }

  std::string ToString() const;

  bool operator==(const WindowSpec& other) const {
    return size == other.size;
  }
};

enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncToString(AggFunc f);

// One entry of the SELECT list.
struct SelectItem {
  enum class Kind {
    kStar,           // SELECT *
    kQualifiedStar,  // SELECT O.*
    kColumn,         // SELECT O.itemID  /  SELECT itemID
    kAggregate,      // SELECT SUM(O.price)  /  COUNT(*)
  };

  Kind kind = Kind::kColumn;
  std::string qualifier;  // alias, for kQualifiedStar / kColumn / agg arg
  std::string name;       // column name (kColumn) or agg argument column
  AggFunc func = AggFunc::kCount;  // kAggregate only
  bool agg_star = false;           // COUNT(*)
  std::string alias;               // optional AS name

  std::string ToString() const;
  bool operator==(const SelectItem& other) const;
};

// One stream reference in the FROM clause: "OpenAuction [Range 3 Hour] O".
struct FromItem {
  std::string stream;  // registered stream name
  WindowSpec window;
  std::string alias;   // defaults to the stream name when omitted

  const std::string& EffectiveAlias() const {
    return alias.empty() ? stream : alias;
  }

  std::string ToString() const;
  bool operator==(const FromItem& other) const;
};

// A parsed (not yet analyzed) continuous query.
struct ParsedQuery {
  std::vector<SelectItem> select;
  std::vector<FromItem> from;
  ExprPtr where;  // nullptr when absent
  std::vector<ExprPtr> group_by;  // column refs

  std::string ToString() const;  // round-trippable CQL text
};

}  // namespace cosmos

#endif  // COSMOS_QUERY_AST_H_
