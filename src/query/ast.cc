#include "query/ast.h"

#include "common/string_util.h"

namespace cosmos {

std::string WindowSpec::ToString() const {
  if (is_now()) return "[Now]";
  if (is_unbounded()) return "[Range Unbounded]";
  if (size % kHour == 0) {
    return StrFormat("[Range %lld Hour]", static_cast<long long>(size / kHour));
  }
  if (size % kMinute == 0) {
    return StrFormat("[Range %lld Minute]",
                     static_cast<long long>(size / kMinute));
  }
  if (size % kSecond == 0) {
    return StrFormat("[Range %lld Second]",
                     static_cast<long long>(size / kSecond));
  }
  return StrFormat("[Range %lld Microsecond]", static_cast<long long>(size));
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

std::string SelectItem::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kStar:
      out = "*";
      break;
    case Kind::kQualifiedStar:
      out = qualifier + ".*";
      break;
    case Kind::kColumn:
      out = qualifier.empty() ? name : qualifier + "." + name;
      break;
    case Kind::kAggregate:
      out = AggFuncToString(func);
      out += "(";
      if (agg_star) {
        out += "*";
      } else {
        out += qualifier.empty() ? name : qualifier + "." + name;
      }
      out += ")";
      break;
  }
  if (!alias.empty()) out += " AS " + alias;
  return out;
}

bool SelectItem::operator==(const SelectItem& other) const {
  return kind == other.kind && qualifier == other.qualifier &&
         name == other.name && func == other.func &&
         agg_star == other.agg_star && alias == other.alias;
}

std::string FromItem::ToString() const {
  std::string out = stream + " " + window.ToString();
  if (!alias.empty() && alias != stream) out += " " + alias;
  return out;
}

bool FromItem::operator==(const FromItem& other) const {
  return stream == other.stream && window == other.window &&
         EffectiveAlias() == other.EffectiveAlias();
}

std::string ParsedQuery::ToString() const {
  std::string out = "SELECT ";
  for (size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    out += select[i].ToString();
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    out += from[i].ToString();
  }
  if (where != nullptr) {
    out += " WHERE " + where->ToString();
  }
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  return out;
}

}  // namespace cosmos
