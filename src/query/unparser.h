#ifndef COSMOS_QUERY_UNPARSER_H_
#define COSMOS_QUERY_UNPARSER_H_

#include <string>

#include "query/analyzer.h"

namespace cosmos {

// Reconstructs CQL text from the semantic form. Used by the query-merging
// layer: representative queries are composed semantically and handed to a
// processor's SPE through its query wrapper as plain CQL, mirroring the
// paper's loose coupling between COSMOS and heterogeneous SPEs.
// Round-trip guarantee (tested): ParseAndAnalyze(Unparse(q)) is semantically
// equal to q.
std::string Unparse(const AnalyzedQuery& query);

// Rebuilds the WHERE expression (qualified names) of the semantic form:
// local selections AND equi-joins AND cross residual. Returns nullptr when
// the query has no predicate.
ExprPtr RebuildWhere(const AnalyzedQuery& query);

}  // namespace cosmos

#endif  // COSMOS_QUERY_UNPARSER_H_
