#include "query/unparser.h"

#include "common/string_util.h"

namespace cosmos {
namespace {

// Qualifies the attribute names of a local-selection clause with `alias`.
ExprPtr QualifiedClauseExpr(const ConjunctiveClause& clause,
                            const std::string& alias) {
  ConjunctiveClause qualified;
  for (const auto& [attr, c] : clause.constraints()) {
    std::string name = alias + "." + attr;
    if (!c.interval.IsAll()) qualified.ConstrainInterval(name, c.interval);
    if (c.eq.has_value()) qualified.ConstrainEquals(name, *c.eq);
    for (const auto& v : c.neq) qualified.ConstrainNotEquals(name, v);
  }
  ExprPtr expr = qualified.ToExpr();
  // Residual conjuncts carry bare names; rebuild them qualified.
  for (const auto& r : clause.residual()) {
    // A residual may reference several attributes; qualify each column ref.
    struct Qualifier {
      const std::string& alias;
      ExprPtr Rewrite(const ExprPtr& e) const {
        switch (e->kind()) {
          case ExprKind::kLiteral:
            return e;
          case ExprKind::kColumnRef: {
            const auto& col = static_cast<const ColumnRefExpr&>(*e);
            if (!col.qualifier().empty()) return e;
            return MakeColumn(alias, col.name());
          }
          case ExprKind::kComparison: {
            const auto& c = static_cast<const ComparisonExpr&>(*e);
            return MakeCompare(c.op(), Rewrite(c.lhs()), Rewrite(c.rhs()));
          }
          case ExprKind::kLogical: {
            const auto& l = static_cast<const LogicalExpr&>(*e);
            std::vector<ExprPtr> children;
            for (const auto& ch : l.children()) children.push_back(Rewrite(ch));
            if (l.op() == LogicalOp::kNot) return MakeNot(children[0]);
            return l.op() == LogicalOp::kAnd ? MakeAnd(std::move(children))
                                             : MakeOr(std::move(children));
          }
          case ExprKind::kArithmetic: {
            const auto& a = static_cast<const ArithmeticExpr&>(*e);
            return MakeArith(a.op(), Rewrite(a.lhs()), Rewrite(a.rhs()));
          }
        }
        return e;
      }
    } q{alias};
    expr = ConjoinNullable(expr, q.Rewrite(r));
  }
  return expr;
}

}  // namespace

ExprPtr RebuildWhere(const AnalyzedQuery& query) {
  ExprPtr where;
  for (size_t i = 0; i < query.sources().size(); ++i) {
    const ConjunctiveClause& sel = query.local_selection(i);
    if (sel.IsTautology()) continue;
    where = ConjoinNullable(
        where, QualifiedClauseExpr(sel, query.sources()[i].alias()));
  }
  for (const auto& j : query.equi_joins()) {
    const auto& ls = query.sources()[j.left_source];
    const auto& rs = query.sources()[j.right_source];
    where = ConjoinNullable(
        where,
        MakeCompare(CompareOp::kEq,
                    MakeColumn(ls.alias(),
                               ls.schema->attribute(j.left_attr).name),
                    MakeColumn(rs.alias(),
                               rs.schema->attribute(j.right_attr).name)));
  }
  for (const auto& r : query.cross_residual()) {
    where = ConjoinNullable(where, r);
  }
  return where;
}

std::string Unparse(const AnalyzedQuery& query) {
  std::string out = "SELECT ";
  std::vector<std::string> items;
  const bool multi = query.sources().size() > 1;

  if (query.is_aggregate()) {
    for (const auto& g : query.group_by()) {
      const auto& s = query.sources()[g.source];
      std::string ref =
          multi ? s.alias() + "." + s.schema->attribute(g.attr).name
                : s.schema->attribute(g.attr).name;
      items.push_back(ref);
    }
    for (const auto& a : query.aggregates()) {
      std::string arg = "*";
      if (!a.star) {
        const auto& s = query.sources()[a.source];
        arg = multi ? s.alias() + "." + s.schema->attribute(a.attr).name
                    : s.schema->attribute(a.attr).name;
      }
      items.push_back(StrFormat("%s(%s) AS %s", AggFuncToString(a.func),
                                arg.c_str(), a.out_name.c_str()));
    }
  } else {
    for (const auto& c : query.output_columns()) {
      const auto& s = query.sources()[c.source];
      std::string ref =
          multi ? s.alias() + "." + s.schema->attribute(c.attr).name
                : s.schema->attribute(c.attr).name;
      // Emit an alias when the output name differs from the default.
      std::string def_name =
          multi ? s.alias() + "." + s.schema->attribute(c.attr).name
                : s.schema->attribute(c.attr).name;
      if (c.out_name != def_name) {
        ref += " AS " + c.out_name;
      }
      items.push_back(std::move(ref));
    }
  }
  out += StrJoin(items, ", ");

  out += " FROM ";
  std::vector<std::string> froms;
  for (const auto& s : query.sources()) {
    std::string f = s.from.stream + " " + s.from.window.ToString();
    if (s.alias() != s.from.stream) f += " " + s.alias();
    froms.push_back(std::move(f));
  }
  out += StrJoin(froms, ", ");

  ExprPtr where = RebuildWhere(query);
  if (where != nullptr) out += " WHERE " + where->ToString();

  if (!query.group_by().empty()) {
    std::vector<std::string> groups;
    for (const auto& g : query.group_by()) {
      const auto& s = query.sources()[g.source];
      groups.push_back(multi
                           ? s.alias() + "." + s.schema->attribute(g.attr).name
                           : s.schema->attribute(g.attr).name);
    }
    out += " GROUP BY " + StrJoin(groups, ", ");
  }
  return out;
}

}  // namespace cosmos
