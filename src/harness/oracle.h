#ifndef COSMOS_HARNESS_ORACLE_H_
#define COSMOS_HARNESS_ORACLE_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "query/analyzer.h"
#include "spe/engine.h"
#include "stream/catalog.h"

namespace cosmos {

// The DST ground-truth oracle: evaluates each submitted query directly on
// the injected tuple stream with a private reference SpeEngine — no CBN, no
// grouping, no representatives, no failures. Whatever the distributed
// system delivers to a user must match what the oracle computed for that
// user's query.
class GroundTruthOracle {
 public:
  explicit GroundTruthOracle(const Catalog* catalog);

  // Installs `cql` under `tag`; results accumulate while the query is live.
  Status Submit(const std::string& tag, const std::string& cql);

  // Stops accumulating results for `tag` (what it saw so far is kept).
  Status Remove(const std::string& tag);

  // Feeds one injected tuple to every live reference query.
  void Inject(const std::string& stream, const Tuple& tuple);

  bool Has(const std::string& tag) const { return entries_.count(tag) > 0; }
  std::vector<std::string> Tags() const;
  const AnalyzedQuery* Query(const std::string& tag) const;
  const std::vector<Tuple>& ResultsFor(const std::string& tag) const;

  // Evaluates an already-analyzed query over a complete injection log in a
  // fresh reference engine. Used for the representative-containment check
  // (the group representative is not a user query, so it has no live oracle
  // entry).
  static std::vector<Tuple> Evaluate(
      const AnalyzedQuery& query,
      const std::vector<std::pair<std::string, Tuple>>& log);

 private:
  struct Entry {
    AnalyzedQuery query;
    std::unique_ptr<SpeEngine> engine;
    bool live = true;
    // Owned behind a stable pointer: the engine's sink captures it.
    std::unique_ptr<std::vector<Tuple>> results;
  };

  const Catalog* catalog_;
  std::map<std::string, Entry> entries_;
};

}  // namespace cosmos

#endif  // COSMOS_HARNESS_ORACLE_H_
