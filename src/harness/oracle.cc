#include "harness/oracle.h"

#include "common/check.h"
#include "common/string_util.h"

namespace cosmos {

GroundTruthOracle::GroundTruthOracle(const Catalog* catalog)
    : catalog_(catalog) {}

Status GroundTruthOracle::Submit(const std::string& tag,
                                 const std::string& cql) {
  if (entries_.count(tag) > 0) {
    return Status::AlreadyExists(StrFormat("oracle tag '%s'", tag.c_str()));
  }
  COSMOS_ASSIGN_OR_RETURN(
      AnalyzedQuery analyzed,
      ParseAndAnalyze(cql, *catalog_, "oracle_" + tag));
  Entry entry;
  entry.query = analyzed;
  entry.engine = std::make_unique<SpeEngine>();
  entry.results = std::make_unique<std::vector<Tuple>>();
  std::vector<Tuple>* sink = entry.results.get();
  COSMOS_RETURN_IF_ERROR(entry.engine->InstallQuery(
      tag, analyzed, [sink](const std::string&, const Tuple& t) {
        sink->push_back(t);
      }));
  entries_.emplace(tag, std::move(entry));
  return Status::OK();
}

Status GroundTruthOracle::Remove(const std::string& tag) {
  auto it = entries_.find(tag);
  if (it == entries_.end()) {
    return Status::NotFound(StrFormat("oracle tag '%s'", tag.c_str()));
  }
  it->second.live = false;
  return Status::OK();
}

void GroundTruthOracle::Inject(const std::string& stream,
                               const Tuple& tuple) {
  for (auto& [tag, entry] : entries_) {
    if (!entry.live) continue;
    entry.engine->PushSourceTuple(stream, tuple);
  }
}

std::vector<std::string> GroundTruthOracle::Tags() const {
  std::vector<std::string> tags;
  tags.reserve(entries_.size());
  for (const auto& [tag, entry] : entries_) tags.push_back(tag);
  return tags;
}

const AnalyzedQuery* GroundTruthOracle::Query(const std::string& tag) const {
  auto it = entries_.find(tag);
  return it == entries_.end() ? nullptr : &it->second.query;
}

const std::vector<Tuple>& GroundTruthOracle::ResultsFor(
    const std::string& tag) const {
  static const std::vector<Tuple> kEmpty;
  auto it = entries_.find(tag);
  return it == entries_.end() ? kEmpty : *it->second.results;
}

std::vector<Tuple> GroundTruthOracle::Evaluate(
    const AnalyzedQuery& query,
    const std::vector<std::pair<std::string, Tuple>>& log) {
  SpeEngine engine;
  std::vector<Tuple> results;
  Status status = engine.InstallQuery(
      "eval", query, [&results](const std::string&, const Tuple& t) {
        results.push_back(t);
      });
  COSMOS_CHECK(status.ok());
  for (const auto& [stream, tuple] : log) {
    engine.PushSourceTuple(stream, tuple);
  }
  return results;
}

}  // namespace cosmos
