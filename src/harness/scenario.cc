#include "harness/scenario.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "common/zipf.h"
#include "core/workload.h"
#include "overlay/spanning_tree.h"
#include "overlay/topology.h"
#include "stream/catalog.h"

namespace cosmos {

namespace {

// Rng::Derive stream ids, one per concern. Keeping the draws decorrelated
// means dropping (say) a fault event during shrinking never changes which
// tuples or queries the seed produces.
constexpr uint64_t kTopologyStream = 1;
constexpr uint64_t kSchemaStream = 2;
constexpr uint64_t kPlacementStream = 3;
constexpr uint64_t kQueryStream = 4;
constexpr uint64_t kTupleStream = 5;
constexpr uint64_t kFaultStream = 6;
constexpr uint64_t kChurnStream = 7;
constexpr uint64_t kModeStream = 8;

int BoundedBetween(Rng& rng, int lo, int hi) {
  COSMOS_CHECK_LE(lo, hi);
  return lo + static_cast<int>(rng.NextBounded(
                  static_cast<uint64_t>(hi - lo + 1)));
}

std::shared_ptr<const Schema> MakeStreamSchema(const std::string& name,
                                               const DstOptions& options) {
  std::vector<AttributeDef> attrs;
  attrs.emplace_back("station_id", ValueType::kInt64, 0.0,
                     static_cast<double>(options.num_stations - 1));
  for (int m = 0; m < options.measurement_attrs; ++m) {
    attrs.emplace_back(StrFormat("m%d", m), ValueType::kDouble, 0.0, 100.0);
  }
  attrs.emplace_back("timestamp", ValueType::kInt64);
  return std::make_shared<Schema>(name, std::move(attrs));
}

}  // namespace

const char* DstEventTypeToString(DstEventType type) {
  switch (type) {
    case DstEventType::kInjectTuple:
      return "inject";
    case DstEventType::kFailLink:
      return "fail-link";
    case DstEventType::kRepairLinks:
      return "repair";
    case DstEventType::kRebuildTree:
      return "rebuild-tree";
    case DstEventType::kSubmitQuery:
      return "submit";
    case DstEventType::kRemoveQuery:
      return "remove";
  }
  return "?";
}

std::string DstEvent::ToString() const {
  std::string out = StrFormat("@%-8lld %s", static_cast<long long>(at),
                              DstEventTypeToString(type));
  switch (type) {
    case DstEventType::kInjectTuple: {
      out += StrFormat(" source=%zu ts=%lld station=%lld vals=[",
                       source_index, static_cast<long long>(event_time),
                       static_cast<long long>(station));
      for (size_t i = 0; i < measurements.size(); ++i) {
        if (i > 0) out += ",";
        out += StrFormat("%g", measurements[i]);
      }
      out += "]";
      break;
    }
    case DstEventType::kFailLink:
      out += StrFormat(" edge_ordinal=%llu",
                       static_cast<unsigned long long>(edge_ordinal));
      break;
    case DstEventType::kRepairLinks:
      break;
    case DstEventType::kRebuildTree:
      out += StrFormat(" tree_seed=%llu",
                       static_cast<unsigned long long>(tree_seed));
      break;
    case DstEventType::kSubmitQuery:
      out += StrFormat(" tag=%s user=%d cql=\"%s\"", query.tag.c_str(),
                       query.user, query.cql.c_str());
      break;
    case DstEventType::kRemoveQuery:
      out += StrFormat(" tag=%s", target_tag.c_str());
      break;
  }
  return out;
}

std::string DstScenario::ToString() const {
  std::string out = StrFormat(
      "scenario seed=%llu mode=%s nodes=%d overlay_edges=%zu\n",
      static_cast<unsigned long long>(seed), use_simulator ? "sim" : "sync",
      num_nodes, overlay.num_edges());
  out += "processors:";
  for (NodeId p : processors) out += StrFormat(" %d", p);
  out += "\nsources:\n";
  for (const auto& src : sources) {
    out += StrFormat("  %s @node %d\n", src.stream.c_str(), src.publisher);
  }
  out += StrFormat("initial queries (%zu):\n", initial_queries.size());
  for (const auto& q : initial_queries) {
    out += StrFormat("  [%s] user=%d %s\n", q.tag.c_str(), q.user,
                     q.cql.c_str());
  }
  out += StrFormat("events (%zu):\n", events.size());
  for (const auto& e : events) {
    out += "  " + e.ToString() + "\n";
  }
  return out;
}

DstScenario GenerateScenario(uint64_t seed, const DstOptions& options) {
  Rng root(seed);
  Rng topo = root.Derive(kTopologyStream);
  Rng schema_rng = root.Derive(kSchemaStream);
  Rng placement = root.Derive(kPlacementStream);
  Rng queries = root.Derive(kQueryStream);
  Rng tuples = root.Derive(kTupleStream);
  Rng faults = root.Derive(kFaultStream);
  Rng churn = root.Derive(kChurnStream);
  Rng mode = root.Derive(kModeStream);

  DstScenario s;
  s.seed = seed;
  s.num_nodes = BoundedBetween(topo, options.min_nodes, options.max_nodes);
  s.use_simulator = mode.NextDouble() < options.simulator_fraction;

  TopologyOptions topt;
  topt.num_nodes = s.num_nodes;
  topt.seed = topo.NextUint64();
  topt.ba_edges_per_node = 2;
  topt.plane_size = 50.0;  // hop delays up to ~70ms
  s.overlay = GenerateBarabasiAlbert(topt).graph;
  Result<std::vector<Edge>> mst = MinimumSpanningTree(s.overlay);
  COSMOS_CHECK(mst.ok());  // BA topologies are connected by construction
  Result<DisseminationTree> tree =
      DisseminationTree::FromEdges(s.num_nodes, *mst);
  COSMOS_CHECK(tree.ok());
  s.tree = std::move(*tree);

  // ---- streams: shared attribute names make every pair join-compatible.
  int num_streams =
      BoundedBetween(schema_rng, options.min_streams, options.max_streams);
  for (int i = 0; i < num_streams; ++i) {
    DstSourceSpec src;
    src.stream = StrFormat("dst_s%d", i);
    src.schema = MakeStreamSchema(src.stream, options);
    src.publisher = static_cast<NodeId>(
        placement.NextBounded(static_cast<uint64_t>(s.num_nodes)));
    s.sources.push_back(std::move(src));
  }

  // ---- processors: distinct nodes.
  int num_processors = BoundedBetween(
      placement, options.min_processors,
      std::min(options.max_processors, s.num_nodes));
  while (static_cast<int>(s.processors.size()) < num_processors) {
    NodeId candidate = static_cast<NodeId>(
        placement.NextBounded(static_cast<uint64_t>(s.num_nodes)));
    if (std::find(s.processors.begin(), s.processors.end(), candidate) ==
        s.processors.end()) {
      s.processors.push_back(candidate);
    }
  }

  // A scratch catalog so the workload generator sees the scenario streams.
  Catalog catalog;
  for (const auto& src : s.sources) {
    COSMOS_CHECK(catalog
                     .RegisterStream(src.schema, src.rate_tuples_per_sec,
                                     src.publisher)
                     .ok());
  }

  // ---- initial queries: the full mix. Stateful (join/aggregate) queries
  // are ONLY generated here: reinstalling a representative mid-run (a group
  // version bump) legitimately resets SPE window state, which the replay
  // oracle cannot mirror; keeping group membership fixed while tuples flow
  // keeps the oracle exact.
  WorkloadOptions wopt;
  wopt.zipf_theta = options.zipf_theta;
  wopt.seed = queries.NextUint64();
  wopt.mean_predicates = 1.2;
  wopt.aggregate_fraction = 0.25;
  wopt.join_fraction = 0.15;
  wopt.window_menu = {2 * kMinute, 30 * kSecond, 10 * kMinute, 5 * kSecond,
                      1 * kMinute};
  wopt.max_projected = 3;
  QueryWorkloadGenerator initial_gen(&catalog, wopt);
  int num_initial = BoundedBetween(queries, options.min_initial_queries,
                                   options.max_initial_queries);
  for (int i = 0; i < num_initial; ++i) {
    DstQuerySpec q;
    q.tag = StrFormat("q%d", i);
    q.cql = initial_gen.NextCql();
    q.user = static_cast<NodeId>(
        queries.NextBounded(static_cast<uint64_t>(s.num_nodes)));
    s.initial_queries.push_back(std::move(q));
  }

  // ---- tuple injections: sim-times advance in small steps; application
  // event times advance globally (all streams share one clock), so every
  // subscriber sees each stream in nondecreasing event-time order.
  int num_tuples =
      BoundedBetween(tuples, options.min_tuples, options.max_tuples);
  ZipfDistribution stream_dist(s.sources.size(), options.zipf_theta);
  ZipfDistribution level_dist(static_cast<size_t>(options.value_levels),
                              options.zipf_theta);
  Timestamp at = 0;
  Timestamp event_time = 0;
  Timestamp last_inject_at = 0;
  for (int i = 0; i < num_tuples; ++i) {
    at += (1 + static_cast<Timestamp>(tuples.NextBounded(20))) * kMillisecond;
    event_time +=
        (1 + static_cast<Timestamp>(tuples.NextBounded(30))) * kSecond;
    DstEvent e;
    e.type = DstEventType::kInjectTuple;
    e.at = at;
    e.source_index = stream_dist.Sample(tuples);
    e.event_time = event_time;
    e.station = static_cast<int64_t>(
        tuples.NextBounded(static_cast<uint64_t>(options.num_stations)));
    for (int m = 0; m < options.measurement_attrs; ++m) {
      // Discrete levels over [0, 100]: exact doubles, so selection
      // boundaries and join keys genuinely collide.
      size_t level = level_dist.Sample(tuples);
      e.measurements.push_back(100.0 * static_cast<double>(level) /
                               static_cast<double>(options.value_levels));
    }
    s.events.push_back(std::move(e));
    last_inject_at = at;
  }

  // ---- faults: fail/repair pairs anywhere on the timeline. The runner
  // resolves edge ordinals against the live tree and skips a failure that
  // would make the overlay unrepairable.
  int num_failures = static_cast<int>(
      faults.NextBounded(static_cast<uint64_t>(options.max_link_failures + 1)));
  for (int i = 0; i < num_failures; ++i) {
    Timestamp fail_at = static_cast<Timestamp>(
        faults.NextBounded(static_cast<uint64_t>(last_inject_at + 1)));
    DstEvent fail;
    fail.type = DstEventType::kFailLink;
    fail.at = fail_at;
    fail.edge_ordinal = faults.NextUint64();
    s.events.push_back(std::move(fail));

    DstEvent repair;
    repair.type = DstEventType::kRepairLinks;
    repair.at = fail_at + (1 + static_cast<Timestamp>(
                                   faults.NextBounded(40))) * kMillisecond;
    s.events.push_back(std::move(repair));
  }

  int num_rebuilds = static_cast<int>(
      faults.NextBounded(static_cast<uint64_t>(options.max_tree_rebuilds + 1)));
  for (int i = 0; i < num_rebuilds; ++i) {
    DstEvent e;
    e.type = DstEventType::kRebuildTree;
    e.at = static_cast<Timestamp>(
        faults.NextBounded(static_cast<uint64_t>(last_inject_at + 1)));
    e.tree_seed = faults.NextUint64();
    s.events.push_back(std::move(e));
  }

  // ---- churn: mid-run submits are select-project ONLY (see above); about
  // half are removed again before the end.
  WorkloadOptions churn_opt = wopt;
  churn_opt.seed = churn.NextUint64();
  churn_opt.aggregate_fraction = 0.0;
  churn_opt.join_fraction = 0.0;
  QueryWorkloadGenerator churn_gen(&catalog, churn_opt);
  int num_churn = static_cast<int>(
      churn.NextBounded(static_cast<uint64_t>(options.max_churn_queries + 1)));
  for (int i = 0; i < num_churn; ++i) {
    Timestamp submit_at = static_cast<Timestamp>(
        churn.NextBounded(static_cast<uint64_t>(last_inject_at + 1)));
    DstEvent submit;
    submit.type = DstEventType::kSubmitQuery;
    submit.at = submit_at;
    submit.query.tag = StrFormat("c%d", i);
    submit.query.cql = churn_gen.NextCql();
    submit.query.user = static_cast<NodeId>(
        churn.NextBounded(static_cast<uint64_t>(s.num_nodes)));
    s.events.push_back(std::move(submit));

    if (churn.NextBool(0.5)) {
      DstEvent remove;
      remove.type = DstEventType::kRemoveQuery;
      remove.at = submit_at + 1 + static_cast<Timestamp>(churn.NextBounded(
                                      static_cast<uint64_t>(
                                          last_inject_at - submit_at + 1)));
      remove.target_tag = StrFormat("c%d", i);
      s.events.push_back(std::move(remove));
    }
  }

  // Stable so ties keep the per-concern generation order — determinism.
  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const DstEvent& a, const DstEvent& b) {
                     return a.at < b.at;
                   });
  return s;
}

}  // namespace cosmos
