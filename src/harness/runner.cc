#include "harness/runner.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "core/profile_composer.h"
#include "core/system.h"
#include "harness/oracle.h"
#include "overlay/spanning_tree.h"
#include "sim/simulator.h"
#include "telemetry/registry.h"
#include "telemetry/snapshot.h"
#include "telemetry/trace.h"

namespace cosmos {

namespace {

// Canonical multiset key of a result tuple: timestamp plus every attribute
// as name=value. Doubles print as hexfloats so two values collide only when
// bit-identical — the oracle and the system compute on the same doubles, so
// exact comparison is the correct bar. The stream name is deliberately
// excluded (system results are named result_<id>, oracle ones oracle_<tag>).
std::string TupleKey(const Tuple& t) {
  std::string key =
      StrFormat("@%lld|", static_cast<long long>(t.timestamp()));
  const Schema& schema = *t.schema();
  for (size_t i = 0; i < t.num_values(); ++i) {
    key += schema.attribute(i).name;
    key += '=';
    const Value& v = t.value(i);
    switch (v.type()) {
      case ValueType::kInt64:
        key += StrFormat("i%lld", static_cast<long long>(v.AsInt64()));
        break;
      case ValueType::kDouble:
        key += StrFormat("d%a", v.AsDouble());
        break;
      case ValueType::kString:
        key += "s" + v.AsString();
        break;
      case ValueType::kBool:
        key += v.AsBool() ? "b1" : "b0";
        break;
      case ValueType::kNull:
        key += "null";
        break;
    }
    key += ';';
  }
  return key;
}

struct Multiset {
  std::map<std::string, int> counts;
  std::map<std::string, std::string> sample;  // key -> Tuple::ToString()

  void Add(const Tuple& t) {
    std::string key = TupleKey(t);
    if (++counts[key] == 1) sample[key] = t.ToString();
  }
};

Multiset ToMultiset(const std::vector<Tuple>& tuples) {
  Multiset m;
  for (const Tuple& t : tuples) m.Add(t);
  return m;
}

// Appends up to `limit` samples of keys where `a` has more copies than `b`.
std::string DescribeExcess(const Multiset& a, const Multiset& b,
                           size_t limit) {
  std::string out;
  size_t total = 0;
  size_t shown = 0;
  for (const auto& [key, count] : a.counts) {
    auto it = b.counts.find(key);
    int other = it == b.counts.end() ? 0 : it->second;
    if (count <= other) continue;
    total += static_cast<size_t>(count - other);
    if (shown < limit) {
      out += StrFormat("\n      %dx %s", count - other,
                       a.sample.at(key).c_str());
      ++shown;
    }
  }
  if (total == 0) return "";
  return StrFormat(" %zu tuple(s):%s%s", total, out.c_str(),
                   total > shown ? "\n      ..." : "");
}

// True when every tuple of `subset` appears (with multiplicity) in
// `superset`.
bool ContainedIn(const Multiset& subset, const Multiset& superset) {
  for (const auto& [key, count] : subset.counts) {
    auto it = superset.counts.find(key);
    if (it == superset.counts.end() || it->second < count) return false;
  }
  return true;
}

// Sum of a stream-labeled counter family, e.g. every cbn.dropped{stream=*}.
uint64_t SumFamily(const MetricsRegistry& metrics, const std::string& family) {
  const std::string prefix = family + "{";
  uint64_t total = 0;
  for (const auto& [name, c] : metrics.counters()) {
    if (name.rfind(prefix, 0) == 0) total += c->value();
  }
  return total;
}

// Can Repair() reconnect the tree if `candidate` also fails? Mirrors the
// splice search: overlay edges minus failed links must stay connected.
bool RepairableAfter(const DstScenario& s, const ContentBasedNetwork& net,
                     NodeId u, NodeId v) {
  const auto candidate = DisseminationTree::EdgeKey(u, v);
  Graph g(s.num_nodes);
  for (const Edge& e : s.overlay.edges()) {
    const auto key = DisseminationTree::EdgeKey(e.u, e.v);
    if (key == candidate) continue;
    if (net.failed_links().count(key) > 0) continue;
    COSMOS_CHECK(g.AddEdge(e.u, e.v, e.weight).ok());
  }
  return g.IsConnected();
}

}  // namespace

std::string DstReport::Summary() const {
  std::string verdict =
      ok ? "OK" : StrFormat("FAILED (%zu check violations)", failures.size());
  return StrFormat(
      "%s — events %zu run / %zu skipped, tuples %zu, queries %zu, "
      "results %zu delivered / %zu expected, recovered %llu, lost %llu, "
      "final groups %zu",
      verdict.c_str(), events_executed, events_skipped, tuples_injected,
      queries_submitted, results_delivered, results_expected,
      static_cast<unsigned long long>(recovered_datagrams),
      static_cast<unsigned long long>(lost_datagrams), final_groups);
}

DstReport RunScenario(const DstScenario& s, const DstRunOptions& options) {
  DstReport report;
  auto fail = [&report](std::string message) {
    report.ok = false;
    report.failures.push_back(std::move(message));
  };

  std::unique_ptr<Simulator> sim;
  if (s.use_simulator) sim = std::make_unique<Simulator>();
  // Every run gets an isolated registry (check 5 audits it) and, on
  // request, its own tracer for the Chrome trace export.
  MetricsRegistry metrics;
  Tracer tracer;
  if (options.capture_chrome_trace) tracer.Enable();
  SystemOptions sys_options;
  sys_options.network.compiled_matching = !options.interpreted_match;
  sys_options.metrics = &metrics;
  sys_options.tracer = options.capture_chrome_trace ? &tracer : nullptr;
  CosmosSystem system(s.tree, sys_options, sim.get());
  system.SetOverlay(s.overlay);
  system.EnableInjectionLog();
  auto export_artifacts = [&] {
    if (options.capture_chrome_trace) {
      report.chrome_trace_json = tracer.ToChromeTraceJson();
    }
    if (options.capture_metrics_json) {
      report.metrics_json =
          SnapshotToJson(TakeSnapshot(metrics, sim ? sim->now() : 0));
    }
  };

  std::deque<std::string> trace_ring;
  if (options.capture_trace) {
    system.network().set_trace_sink([&](const TraceEvent& ev) {
      trace_ring.push_back(StrFormat(
          "%-8s node=%-3d peer=%-3d count=%zu stream=%s ts=%lld",
          TraceEventKindToString(ev.kind), ev.node, ev.peer, ev.count,
          ev.stream.c_str(), static_cast<long long>(ev.timestamp)));
      if (trace_ring.size() > options.trace_limit) trace_ring.pop_front();
    });
  }

  for (NodeId p : s.processors) {
    Status st = system.AddProcessor(p);
    if (!st.ok()) {
      fail(StrFormat("AddProcessor(%d): %s", p, st.ToString().c_str()));
      return report;
    }
  }
  for (const auto& src : s.sources) {
    Status st = system.RegisterSource(src.schema, src.rate_tuples_per_sec,
                                      src.publisher);
    if (!st.ok()) {
      fail(StrFormat("RegisterSource(%s): %s", src.stream.c_str(),
                     st.ToString().c_str()));
      return report;
    }
  }

  GroundTruthOracle oracle(&system.catalog());
  // Shared so the per-query delivery callbacks (copied into CBN
  // subscriptions) stay valid for the system's whole lifetime.
  auto delivered =
      std::make_shared<std::map<std::string, std::vector<Tuple>>>();
  std::map<std::string, std::string> tag_to_id;  // live queries only
  std::map<std::string, std::string> id_to_tag;  // every submitted query
  std::map<std::string, uint64_t> injected_per_stream;  // for check 5

  // Sticky across the whole run (a later RemoveQuery may uninstall the
  // profile): did any installed subscription ever carry a residual-bearing
  // filter? Check 5 allows cbn.matcher_fallbacks > 0 only in that case.
  bool saw_residual_profile = false;
  auto note_residual_profiles = [&] {
    if (saw_residual_profile) return;
    system.network().ForEachSubscription([&](NodeId, const Profile& p) {
      for (const Filter& f : p.filters()) {
        if (f.has_residual()) saw_residual_profile = true;
      }
    });
  };

  auto submit = [&](const DstQuerySpec& q) {
    Status ost = oracle.Submit(q.tag, q.cql);
    if (!ost.ok()) {
      fail(StrFormat("oracle rejects [%s] \"%s\": %s", q.tag.c_str(),
                     q.cql.c_str(), ost.ToString().c_str()));
      return;
    }
    const std::string tag = q.tag;
    Result<std::string> id = system.SubmitQuery(
        q.cql, q.user, [delivered, tag](const std::string&, const Tuple& t) {
          (*delivered)[tag].push_back(t);
        });
    if (!id.ok()) {
      fail(StrFormat("SubmitQuery [%s] \"%s\": %s", q.tag.c_str(),
                     q.cql.c_str(), id.status().ToString().c_str()));
      return;
    }
    tag_to_id[tag] = *id;
    id_to_tag[*id] = tag;
    ++report.queries_submitted;
    note_residual_profiles();
  };

  // Runs the simulator dry (synchronous mode delivers inline; no-op).
  auto drain = [&] {
    if (sim) sim->Run();
  };
  // Advances virtual time to `at` unless a drain already moved past it.
  auto advance = [&](Timestamp at) {
    if (sim && at > sim->now()) sim->RunUntil(at);
  };
  // Control-plane mutations happen only at quiescent points: in-flight
  // datagrams carry routing decisions made under the old subscription
  // state, so churning mid-flight would make the oracle's notion of "what
  // this query should see" ill-defined. Link failures, by contrast, are
  // injected at arbitrary points — that is the coverage this harness is
  // for.
  auto quiescent = [&]() -> bool {
    drain();
    return !system.network().HasFailedLinks() &&
           system.network().buffered_datagrams() == 0;
  };

  for (const auto& q : s.initial_queries) submit(q);
  drain();

  for (const DstEvent& e : s.events) {
    switch (e.type) {
      case DstEventType::kInjectTuple: {
        advance(e.at);
        const DstSourceSpec& src = s.sources[e.source_index %
                                             s.sources.size()];
        std::vector<Value> values;
        values.emplace_back(static_cast<int64_t>(e.station));
        for (double m : e.measurements) values.emplace_back(m);
        values.emplace_back(static_cast<int64_t>(e.event_time));
        Tuple tuple(src.schema, std::move(values), e.event_time);
        Status st = system.PublishSourceTuple(src.stream, tuple);
        if (!st.ok()) {
          fail(StrFormat("PublishSourceTuple(%s): %s", src.stream.c_str(),
                         st.ToString().c_str()));
          break;
        }
        oracle.Inject(src.stream, tuple);
        ++injected_per_stream[src.stream];
        ++report.tuples_injected;
        ++report.events_executed;
        break;
      }
      case DstEventType::kFailLink: {
        advance(e.at);
        const std::vector<Edge>& edges = system.network().tree().edges();
        const Edge& victim =
            edges[e.edge_ordinal % static_cast<uint64_t>(edges.size())];
        const auto key = DisseminationTree::EdgeKey(victim.u, victim.v);
        if (system.network().failed_links().count(key) > 0 ||
            !RepairableAfter(s, system.network(), victim.u, victim.v)) {
          ++report.events_skipped;
          break;
        }
        Status st = system.FailLink(victim.u, victim.v);
        if (!st.ok()) {
          fail(StrFormat("FailLink(%d,%d): %s", victim.u, victim.v,
                         st.ToString().c_str()));
          break;
        }
        ++report.events_executed;
        break;
      }
      case DstEventType::kRepairLinks: {
        drain();
        if (!system.network().HasFailedLinks()) {
          ++report.events_skipped;
          break;
        }
        Status st = system.RepairLinks();
        if (!st.ok()) {
          fail(StrFormat("RepairLinks: %s", st.ToString().c_str()));
          break;
        }
        drain();
        ++report.events_executed;
        break;
      }
      case DstEventType::kRebuildTree: {
        // Rebuilding is legal mid-failure (it clears failed links and
        // flushes buffers onto the new tree), but we still drain first so
        // in-flight hops finish on the tree they were routed for.
        drain();
        Rng tree_rng(e.tree_seed);
        Result<std::vector<Edge>> edges =
            RandomSpanningTree(s.overlay, tree_rng);
        if (!edges.ok()) {
          ++report.events_skipped;
          break;
        }
        Result<DisseminationTree> tree =
            DisseminationTree::FromEdges(s.num_nodes, *edges);
        if (!tree.ok()) {
          ++report.events_skipped;
          break;
        }
        Status st = system.network().RebuildTree(std::move(*tree));
        if (!st.ok()) {
          fail(StrFormat("RebuildTree: %s", st.ToString().c_str()));
          break;
        }
        drain();
        ++report.events_executed;
        break;
      }
      case DstEventType::kSubmitQuery: {
        if (!quiescent()) {
          ++report.events_skipped;
          break;
        }
        submit(e.query);
        drain();
        ++report.events_executed;
        break;
      }
      case DstEventType::kRemoveQuery: {
        if (!quiescent()) {
          ++report.events_skipped;
          break;
        }
        auto it = tag_to_id.find(e.target_tag);
        if (it == tag_to_id.end()) {
          ++report.events_skipped;
          break;
        }
        Status st = system.RemoveQuery(it->second);
        if (!st.ok()) {
          fail(StrFormat("RemoveQuery [%s]: %s", e.target_tag.c_str(),
                         st.ToString().c_str()));
          break;
        }
        COSMOS_CHECK(oracle.Remove(e.target_tag).ok());
        tag_to_id.erase(it);
        drain();
        ++report.events_executed;
        break;
      }
    }
    if (!report.ok) break;  // infrastructure errors invalidate the run
  }

  // Epilogue: let everything land, repairing any outstanding failure so
  // buffered datagrams get their chance to be delivered.
  drain();
  if (report.ok && system.network().HasFailedLinks()) {
    Status st = system.RepairLinks();
    if (!st.ok()) {
      fail(StrFormat("final RepairLinks: %s", st.ToString().c_str()));
    }
    drain();
  }

  report.recovered_datagrams = system.network().recovered_datagrams();
  report.lost_datagrams = system.network().lost_datagrams();

  if (!report.ok) {
    report.trace.assign(trace_ring.begin(), trace_ring.end());
    export_artifacts();
    return report;
  }

  // ---- check 1: delivered multiset == oracle multiset, per query;
  // ---- check 2: delivered tuples carry exactly the query's output schema.
  for (const std::string& tag : oracle.Tags()) {
    const std::vector<Tuple>& expected = oracle.ResultsFor(tag);
    const std::vector<Tuple>& actual = (*delivered)[tag];
    report.results_expected += expected.size();
    report.results_delivered += actual.size();

    Multiset want = ToMultiset(expected);
    Multiset got = ToMultiset(actual);
    std::string missing = DescribeExcess(want, got, 3);
    std::string unexpected = DescribeExcess(got, want, 3);
    if (!missing.empty()) {
      fail(StrFormat("[%s] missing%s", tag.c_str(), missing.c_str()));
    }
    if (!unexpected.empty()) {
      fail(StrFormat("[%s] unexpected%s", tag.c_str(), unexpected.c_str()));
    }

    const AnalyzedQuery* query = oracle.Query(tag);
    COSMOS_CHECK(query != nullptr);
    const Schema& out_schema = *query->output_schema();
    for (const Tuple& t : actual) {
      const Schema& got_schema = *t.schema();
      bool exact = got_schema.num_attributes() == out_schema.num_attributes();
      for (size_t i = 0; exact && i < out_schema.num_attributes(); ++i) {
        exact = got_schema.attribute(i).name == out_schema.attribute(i).name;
      }
      if (!exact) {
        fail(StrFormat("[%s] projection mismatch: delivered %s, want %s",
                       tag.c_str(), got_schema.ToString().c_str(),
                       out_schema.ToString().c_str()));
        break;
      }
    }
  }

  // ---- check 3: every live member's oracle results are contained in its
  // final group representative's reference results, re-shaped through the
  // member's own presentation path (paper Theorems 1-2).
  const auto& log = system.injection_log();
  for (NodeId p : s.processors) {
    Processor* proc = system.processor(p);
    if (proc == nullptr) continue;
    report.final_groups += proc->grouping().num_groups();
    for (const auto& [gid, group] : proc->grouping().groups()) {
      std::vector<Tuple> rep_results =
          GroundTruthOracle::Evaluate(group.representative, log);
      for (size_t i = 0; i < group.member_ids.size(); ++i) {
        auto tag_it = id_to_tag.find(group.member_ids[i]);
        COSMOS_CHECK(tag_it != id_to_tag.end());
        const std::string& tag = tag_it->second;
        const AnalyzedQuery& member = group.members[i];

        std::vector<Tuple> presented;
        DeliveryCallback present = MakePresentationCallback(
            member, group.representative,
            [&presented](const std::string&, const Tuple& t) {
              presented.push_back(t);
            });
        for (const Tuple& t : rep_results) {
          present(group.ResultStreamName(), t);
        }
        Multiset member_truth = ToMultiset(oracle.ResultsFor(tag));
        Multiset rep_view = ToMultiset(presented);
        if (!ContainedIn(member_truth, rep_view)) {
          fail(StrFormat(
              "[%s] containment violated in group %llu at processor %d: "
              "member results not within the representative's%s",
              tag.c_str(), static_cast<unsigned long long>(gid), p,
              DescribeExcess(member_truth, rep_view, 3).c_str()));
        }
      }
    }
  }

  // ---- check 4: data-layer accounting.
  if (report.lost_datagrams != 0) {
    fail(StrFormat("%llu datagrams lost (buffering should cover failures)",
                   static_cast<unsigned long long>(report.lost_datagrams)));
  }
  if (system.network().buffered_datagrams() != 0) {
    fail(StrFormat("%llu datagrams still buffered after final repair",
                   static_cast<unsigned long long>(
                       system.network().buffered_datagrams())));
  }
  if (sim && sim->HasPendingEvents()) {
    fail("simulator still has pending events after final drain");
  }

  // ---- check 5: telemetry conservation. The run's isolated registry must
  // balance against the harness's injection counts and the network's own
  // accounting.
  const ContentBasedNetwork& net = system.network();
  for (const auto& [stream, injected] : injected_per_stream) {
    const Counter* published = metrics.FindCounter(
        MetricsRegistry::LabeledName("cbn.published", "stream", stream));
    uint64_t counted = published == nullptr ? 0 : published->value();
    if (counted != injected) {
      fail(StrFormat(
          "telemetry: cbn.published{stream=%s} = %llu, but the harness "
          "injected %llu tuples",
          stream.c_str(), static_cast<unsigned long long>(counted),
          static_cast<unsigned long long>(injected)));
    }
  }
  uint64_t dropped = SumFamily(metrics, "cbn.dropped");
  if (dropped != report.lost_datagrams) {
    fail(StrFormat("telemetry: %llu dropped counted vs %llu lost datagrams",
                   static_cast<unsigned long long>(dropped),
                   static_cast<unsigned long long>(report.lost_datagrams)));
  }
  uint64_t buffered = SumFamily(metrics, "cbn.buffered");
  uint64_t flushed = SumFamily(metrics, "cbn.flushed");
  if (buffered != flushed) {
    fail(StrFormat(
        "telemetry: %llu datagrams buffered but only %llu flushed back",
        static_cast<unsigned long long>(buffered),
        static_cast<unsigned long long>(flushed)));
  }
  if (flushed != report.recovered_datagrams) {
    fail(StrFormat("telemetry: %llu flushed vs %llu recovered datagrams",
                   static_cast<unsigned long long>(flushed),
                   static_cast<unsigned long long>(
                       report.recovered_datagrams)));
  }
  // Steady-state forward counters must equal the network's link accounting
  // exactly: recovered datagrams travel the recovery channel
  // (cbn.recovery_forwards) and must never be charged to link traffic.
  const Counter* fwd = metrics.FindCounter("cbn.forwards");
  const Counter* fwd_bytes = metrics.FindCounter("cbn.forwarded_bytes");
  uint64_t fwd_count = fwd == nullptr ? 0 : fwd->value();
  uint64_t fwd_byte_count = fwd_bytes == nullptr ? 0 : fwd_bytes->value();
  if (fwd_count != net.total_datagrams_forwarded() ||
      fwd_byte_count != net.total_bytes()) {
    fail(StrFormat(
        "telemetry: steady-state forwards %llu/%llu bytes disagree with "
        "link stats %llu/%llu (recovery traffic leaked into them?)",
        static_cast<unsigned long long>(fwd_count),
        static_cast<unsigned long long>(fwd_byte_count),
        static_cast<unsigned long long>(net.total_datagrams_forwarded()),
        static_cast<unsigned long long>(net.total_bytes())));
  }
  uint64_t delivered_steady = SumFamily(metrics, "cbn.delivered");
  uint64_t delivered_recovery = SumFamily(metrics, "cbn.delivered_recovery");
  if (delivered_steady + delivered_recovery != net.total_deliveries()) {
    fail(StrFormat(
        "telemetry: deliveries %llu steady + %llu recovery != %llu total",
        static_cast<unsigned long long>(delivered_steady),
        static_cast<unsigned long long>(delivered_recovery),
        static_cast<unsigned long long>(net.total_deliveries())));
  }
  // Matching-engine conservation: the interpreted escape hatch must never
  // touch the compiled machinery, and residual fallbacks may only occur
  // when some installed profile actually carried a residual-bearing filter.
  const Counter* compiles = metrics.FindCounter("cbn.matcher_compiles");
  const Counter* fallbacks = metrics.FindCounter("cbn.matcher_fallbacks");
  uint64_t compile_count = compiles == nullptr ? 0 : compiles->value();
  uint64_t fallback_count = fallbacks == nullptr ? 0 : fallbacks->value();
  if (options.interpreted_match) {
    if (compile_count != 0 || fallback_count != 0) {
      fail(StrFormat(
          "telemetry: interpreted-match run still compiled %llu matchers "
          "and took %llu residual fallbacks",
          static_cast<unsigned long long>(compile_count),
          static_cast<unsigned long long>(fallback_count)));
    }
  } else if (fallback_count > 0 && !saw_residual_profile) {
    fail(StrFormat(
        "telemetry: cbn.matcher_fallbacks = %llu but no residual-bearing "
        "profile was ever installed",
        static_cast<unsigned long long>(fallback_count)));
  }

  if (!report.ok) {
    report.trace.assign(trace_ring.begin(), trace_ring.end());
  }
  export_artifacts();
  return report;
}

namespace {

DstScenario WithoutEvents(const DstScenario& s, size_t begin, size_t count) {
  DstScenario out = s;
  out.events.erase(out.events.begin() + static_cast<ptrdiff_t>(begin),
                   out.events.begin() + static_cast<ptrdiff_t>(begin + count));
  return out;
}

DstScenario WithoutInitialQuery(const DstScenario& s, size_t index) {
  DstScenario out = s;
  out.initial_queries.erase(out.initial_queries.begin() +
                            static_cast<ptrdiff_t>(index));
  return out;
}

}  // namespace

DstScenario ShrinkScenario(
    const DstScenario& scenario,
    const std::function<bool(const DstScenario&)>& still_failing,
    size_t budget) {
  DstScenario current = scenario;
  size_t runs = 0;

  // Phase 1: drop event chunks, halving the chunk size down to 1. Removal
  // keeps the cursor in place (the next chunk slid into it); survival
  // advances past the chunk.
  size_t chunk = std::max<size_t>(1, current.events.size() / 2);
  while (runs < budget) {
    bool removed_any = false;
    for (size_t start = 0; start < current.events.size() && runs < budget;) {
      size_t len = std::min(chunk, current.events.size() - start);
      DstScenario candidate = WithoutEvents(current, start, len);
      ++runs;
      if (still_failing(candidate)) {
        current = std::move(candidate);
        removed_any = true;
      } else {
        start += len;
      }
    }
    if (chunk > 1) {
      chunk = std::max<size_t>(1, chunk / 2);
    } else if (!removed_any) {
      break;
    }
  }

  // Phase 2: drop initial queries one at a time (removals of churn tags
  // whose submit disappeared skip gracefully, so order does not matter).
  for (size_t i = current.initial_queries.size(); i > 0 && runs < budget;) {
    --i;
    DstScenario candidate = WithoutInitialQuery(current, i);
    ++runs;
    if (still_failing(candidate)) current = std::move(candidate);
  }
  return current;
}

DstScenario ShrinkScenario(const DstScenario& scenario, size_t budget) {
  return ShrinkScenario(
      scenario,
      [](const DstScenario& candidate) {
        return !RunScenario(candidate).ok;
      },
      budget);
}

}  // namespace cosmos
