#ifndef COSMOS_HARNESS_RUNNER_H_
#define COSMOS_HARNESS_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "harness/scenario.h"

namespace cosmos {

struct DstRunOptions {
  // Record the CBN event trace (ring buffer of the last `trace_limit`
  // formatted events) into DstReport::trace — used when re-running a
  // minimized failing scenario for the report.
  bool capture_trace = false;
  size_t trace_limit = 200;
  // Record the whole run as Chrome trace_event JSON into
  // DstReport::chrome_trace_json (load it in chrome://tracing or Perfetto).
  // Costly — meant for re-runs of failing seeds.
  bool capture_chrome_trace = false;
  // Export the final telemetry snapshot as JSON into
  // DstReport::metrics_json.
  bool capture_metrics_json = false;
  // Run the CBN with the interpreted per-profile matching walk instead of
  // the compiled counting matcher (the cosmos_dst --interpreted-match
  // escape hatch). Deliveries must be identical in both modes; the nightly
  // sweep runs a seed slice in each and diffs them.
  bool interpreted_match = false;
};

// Outcome of one scenario execution.
struct DstReport {
  bool ok = true;
  // Human-readable oracle-check violations (empty when ok).
  std::vector<std::string> failures;

  // Run statistics.
  size_t events_executed = 0;
  size_t events_skipped = 0;  // guard-skipped (unrepairable failure, ...)
  size_t tuples_injected = 0;
  size_t queries_submitted = 0;
  size_t results_delivered = 0;
  size_t results_expected = 0;
  uint64_t recovered_datagrams = 0;
  uint64_t lost_datagrams = 0;
  size_t final_groups = 0;

  std::vector<std::string> trace;  // only with DstRunOptions::capture_trace
  // Only with the corresponding DstRunOptions capture flag.
  std::string chrome_trace_json;
  std::string metrics_json;

  std::string Summary() const;
};

// Executes the scenario end-to-end against a fresh CosmosSystem and checks
// every user's delivered result stream against the ground-truth oracle:
//   1. completeness + no-duplicates + value exactness: the delivered
//      multiset equals the oracle's, per query;
//   2. projection exactness: delivered tuples carry exactly the query's
//      output schema (names, order);
//   3. group containment (paper Theorems 1-2): every member's oracle
//      results are contained in its final group representative's reference
//      results, re-presented through the member's own presentation path;
//   4. data-layer accounting: nothing lost, nothing left buffered, no
//      pending simulator events;
//   5. telemetry conservation: the run's isolated MetricsRegistry must
//      agree with the network's own accounting — per-stream published
//      counters match the injection counts, nothing dropped, every
//      buffered datagram flushed, steady-state forward counters match the
//      link stats (recovered datagrams are charged to recovery, never to
//      steady-state link traffic), deliveries balance, and the matching
//      engine behaves: cbn.matcher_fallbacks only increments when a
//      residual-bearing profile was installed, and an interpreted-match
//      run compiles nothing and falls back never.
// Deterministic: the same scenario always yields the same report.
DstReport RunScenario(const DstScenario& scenario,
                      const DstRunOptions& options = {});

// Greedy event-drop shrinking (ddmin-style): repeatedly re-runs the
// scenario with chunks of events removed — then single events, then
// initial queries — keeping every reduction on which `still_failing`
// holds. `budget` caps the number of re-runs. Returns the smallest
// still-failing scenario found.
DstScenario ShrinkScenario(
    const DstScenario& scenario,
    const std::function<bool(const DstScenario&)>& still_failing,
    size_t budget = 400);

// Convenience: shrink on "RunScenario reports any failure".
DstScenario ShrinkScenario(const DstScenario& scenario, size_t budget = 400);

}  // namespace cosmos

#endif  // COSMOS_HARNESS_RUNNER_H_
