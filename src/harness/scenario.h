#ifndef COSMOS_HARNESS_SCENARIO_H_
#define COSMOS_HARNESS_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/time.h"
#include "overlay/dissemination_tree.h"
#include "overlay/graph.h"
#include "stream/schema.h"

namespace cosmos {

// Knobs of the seed-driven scenario generator. The defaults are the
// dst_smoke envelope: small enough that a 50-seed suite finishes in
// seconds, large enough to exercise joins, aggregates, query merging,
// link failures, repairs, tree rebuilds and subscription churn.
struct DstOptions {
  int min_nodes = 8;
  int max_nodes = 20;
  int min_streams = 2;
  int max_streams = 4;
  // Shared kDouble measurement attributes per stream schema ("m0", ...);
  // shared names make every pair of streams join-compatible.
  int measurement_attrs = 3;
  // Measurement values are drawn from this many discrete levels (Zipf
  // skewed) so equality predicates and join keys actually collide.
  int value_levels = 12;
  int num_stations = 4;
  int min_processors = 1;
  int max_processors = 3;
  int min_initial_queries = 3;
  int max_initial_queries = 8;
  int min_tuples = 30;
  int max_tuples = 90;
  int max_link_failures = 3;  // fail/repair pairs on the timeline
  int max_tree_rebuilds = 1;
  int max_churn_queries = 3;  // mid-run submits (some later removed)
  double zipf_theta = 0.7;
  // Fraction of seeds that run under the discrete-event Simulator; the
  // rest run the synchronous network, which interleaves differently.
  double simulator_fraction = 0.75;
};

struct DstSourceSpec {
  std::string stream;
  NodeId publisher = 0;
  std::shared_ptr<const Schema> schema;
  double rate_tuples_per_sec = 5.0;
};

struct DstQuerySpec {
  std::string tag;  // scenario-level id, stable across shrinking
  std::string cql;
  NodeId user = 0;
};

enum class DstEventType {
  kInjectTuple,
  kFailLink,
  kRepairLinks,
  kRebuildTree,
  kSubmitQuery,
  kRemoveQuery,
};

const char* DstEventTypeToString(DstEventType type);

// One timeline event; fields not used by the event's type stay zero.
// kFailLink names its victim by ordinal into the LIVE tree's edge list
// (edges()[ordinal % n]) so the event keeps meaning after earlier repairs
// replaced edges — and after the shrinker dropped earlier events.
struct DstEvent {
  DstEventType type = DstEventType::kInjectTuple;
  Timestamp at = 0;  // simulator time (microseconds)

  // kInjectTuple
  size_t source_index = 0;
  Timestamp event_time = 0;  // tuple timestamp (application time)
  int64_t station = 0;
  std::vector<double> measurements;

  // kFailLink
  uint64_t edge_ordinal = 0;

  // kRebuildTree
  uint64_t tree_seed = 0;

  // kSubmitQuery
  DstQuerySpec query;
  // kRemoveQuery
  std::string target_tag;

  std::string ToString() const;
};

// A fully materialized scenario: everything RunScenario() needs, derived
// deterministically from the seed. Regenerating with the same seed and
// options yields an identical scenario, so a failing seed IS the repro.
struct DstScenario {
  uint64_t seed = 0;
  bool use_simulator = true;
  int num_nodes = 0;
  Graph overlay;
  DisseminationTree tree;
  std::vector<NodeId> processors;
  std::vector<DstSourceSpec> sources;
  std::vector<DstQuerySpec> initial_queries;
  std::vector<DstEvent> events;

  std::string ToString() const;
};

// Derives a scenario from `seed`. Each concern (topology, schemas,
// placement, queries, tuples, faults, churn) consumes its own
// Rng::Derive stream of the seed, so shrinking one axis never perturbs
// the others.
DstScenario GenerateScenario(uint64_t seed, const DstOptions& options = {});

}  // namespace cosmos

#endif  // COSMOS_HARNESS_SCENARIO_H_
