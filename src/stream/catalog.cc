#include "stream/catalog.h"

#include <functional>

#include "common/logging.h"
#include "common/string_util.h"

namespace cosmos {

Catalog::Catalog(DirectoryMode mode, int num_directory_nodes)
    : mode_(mode), num_directory_nodes_(num_directory_nodes) {
  COSMOS_CHECK_GE(num_directory_nodes_, 1);
}

Status Catalog::RegisterStream(std::shared_ptr<const Schema> schema,
                               double rate_tuples_per_sec,
                               int publisher_node) {
  if (schema == nullptr) {
    return Status::InvalidArgument("null schema");
  }
  const std::string& name = schema->stream_name();
  if (streams_.count(name) > 0) {
    return Status::AlreadyExists(
        StrFormat("stream '%s' already registered", name.c_str()));
  }
  StreamInfo info;
  info.schema = std::move(schema);
  info.rate_tuples_per_sec = rate_tuples_per_sec;
  info.publisher_node = publisher_node;
  streams_.emplace(name, std::move(info));
  return Status::OK();
}

Status Catalog::UpdateRate(const std::string& stream,
                           double rate_tuples_per_sec) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) {
    return Status::NotFound(StrFormat("stream '%s'", stream.c_str()));
  }
  it->second.rate_tuples_per_sec = rate_tuples_per_sec;
  return Status::OK();
}

bool Catalog::HasStream(const std::string& name) const {
  return streams_.count(name) > 0;
}

Result<StreamInfo> Catalog::Lookup(const std::string& name) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound(StrFormat("stream '%s'", name.c_str()));
  }
  return it->second;
}

Result<std::shared_ptr<const Schema>> Catalog::LookupSchema(
    const std::string& name) const {
  COSMOS_ASSIGN_OR_RETURN(StreamInfo info, Lookup(name));
  return info.schema;
}

int Catalog::ResponsibleNode(const std::string& name) const {
  return static_cast<int>(std::hash<std::string>{}(name) %
                          static_cast<size_t>(num_directory_nodes_));
}

int Catalog::LookupHops(const std::string& name, int from_node) const {
  if (mode_ == DirectoryMode::kFlooded) return 0;
  return ResponsibleNode(name) == from_node ? 0 : 1;
}

std::vector<std::string> Catalog::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, info] : streams_) names.push_back(name);
  return names;
}

}  // namespace cosmos
