#include "stream/sensor_dataset.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace cosmos {
namespace {

struct Measurement {
  const char* name;
  double min;
  double max;
  double step;  // random-walk step magnitude per sample
};

// SensorScope-like environmental measurements with plausible ranges.
constexpr Measurement kMeasurements[] = {
    {"ambient_temperature", -10.0, 35.0, 0.2},
    {"surface_temperature", -15.0, 45.0, 0.3},
    {"relative_humidity", 0.0, 100.0, 0.8},
    {"solar_radiation", 0.0, 1200.0, 15.0},
    {"soil_moisture", 0.0, 100.0, 0.5},
    {"watermark", 0.0, 200.0, 1.0},
    {"rain_meter", 0.0, 50.0, 0.4},
    {"wind_speed", 0.0, 30.0, 0.6},
    {"wind_direction", 0.0, 360.0, 8.0},
};

constexpr size_t kNumMeasurements =
    sizeof(kMeasurements) / sizeof(kMeasurements[0]);

}  // namespace

SensorDataset::SensorDataset(SensorDatasetOptions options)
    : options_(options) {
  COSMOS_CHECK_GT(options_.num_stations, 0);
  COSMOS_CHECK_GT(options_.sampling_period, 0);
}

std::string SensorDataset::StreamName(int station) {
  return StrFormat("sensor_%02d", station);
}

std::vector<std::string> SensorDataset::MeasurementAttributes() {
  std::vector<std::string> names;
  names.reserve(kNumMeasurements);
  for (const auto& m : kMeasurements) names.emplace_back(m.name);
  return names;
}

std::shared_ptr<const Schema> SensorDataset::SchemaOf(int station) const {
  std::vector<AttributeDef> attrs;
  attrs.emplace_back("station_id", ValueType::kInt64, 0,
                     options_.num_stations - 1);
  for (const auto& m : kMeasurements) {
    attrs.emplace_back(m.name, ValueType::kDouble, m.min, m.max);
  }
  attrs.emplace_back("timestamp", ValueType::kInt64);
  return std::make_shared<Schema>(StreamName(station), std::move(attrs));
}

double SensorDataset::RatePerStation() const {
  return static_cast<double>(kSecond) /
         static_cast<double>(options_.sampling_period);
}

Status SensorDataset::RegisterAll(Catalog& catalog) const {
  for (int k = 0; k < options_.num_stations; ++k) {
    COSMOS_RETURN_IF_ERROR(
        catalog.RegisterStream(SchemaOf(k), RatePerStation(), /*publisher=*/k));
  }
  return Status::OK();
}

std::unique_ptr<StreamGenerator> SensorDataset::MakeGenerator(
    int station) const {
  COSMOS_CHECK(station >= 0 && station < options_.num_stations);
  auto schema = SchemaOf(station);

  Rng rng = Rng(options_.seed).Fork(static_cast<uint64_t>(station));

  // Initialize each measurement uniformly inside its range, then walk.
  double state[kNumMeasurements];
  for (size_t i = 0; i < kNumMeasurements; ++i) {
    state[i] = rng.NextDouble(kMeasurements[i].min, kMeasurements[i].max);
  }

  Timestamp start = 0;
  if (options_.stagger_stations) {
    start = rng.NextInt(0, options_.sampling_period - 1);
  }

  std::vector<Tuple> tuples;
  for (Timestamp ts = start; ts < options_.duration;
       ts += options_.sampling_period) {
    std::vector<Value> values;
    values.reserve(kNumMeasurements + 2);
    values.emplace_back(static_cast<int64_t>(station));
    for (size_t i = 0; i < kNumMeasurements; ++i) {
      const auto& m = kMeasurements[i];
      state[i] += rng.NextGaussian() * m.step;
      state[i] = std::clamp(state[i], m.min, m.max);
      values.emplace_back(state[i]);
    }
    values.emplace_back(static_cast<int64_t>(ts));
    tuples.emplace_back(schema, std::move(values), ts);
  }
  return std::make_unique<VectorGenerator>(schema, std::move(tuples));
}

std::unique_ptr<ReplayMerger> SensorDataset::MakeReplay() const {
  std::vector<std::unique_ptr<StreamGenerator>> gens;
  gens.reserve(static_cast<size_t>(options_.num_stations));
  for (int k = 0; k < options_.num_stations; ++k) {
    gens.push_back(MakeGenerator(k));
  }
  return std::make_unique<ReplayMerger>(std::move(gens));
}

}  // namespace cosmos
