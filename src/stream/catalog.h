#ifndef COSMOS_STREAM_CATALOG_H_
#define COSMOS_STREAM_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "stream/schema.h"

namespace cosmos {

// Metadata tracked per registered stream.
struct StreamInfo {
  std::shared_ptr<const Schema> schema;
  // Estimated arrival rate in tuples per second; drives the benefit model.
  double rate_tuples_per_sec = 1.0;
  // Node id of the publisher (overlay node), if known.
  int publisher_node = -1;
};

// How schema metadata is disseminated among nodes (paper §3): with few
// streams it is flooded to every node; otherwise a DHT keyed by the unique
// stream name stores it.
enum class DirectoryMode { kFlooded, kDht };

// The stream catalog: the authoritative name -> StreamInfo registry.
// A Catalog instance represents the logical directory; DirectoryMode only
// affects the modeled lookup cost (see LookupHops), since in-process both
// modes resolve identically.
class Catalog {
 public:
  explicit Catalog(DirectoryMode mode = DirectoryMode::kFlooded,
                   int num_directory_nodes = 1);

  DirectoryMode mode() const { return mode_; }

  // Registers a stream; fails with kAlreadyExists on duplicate names.
  Status RegisterStream(std::shared_ptr<const Schema> schema,
                        double rate_tuples_per_sec = 1.0,
                        int publisher_node = -1);

  // Replaces the rate estimate of an existing stream.
  Status UpdateRate(const std::string& stream, double rate_tuples_per_sec);

  bool HasStream(const std::string& name) const;
  Result<StreamInfo> Lookup(const std::string& name) const;
  Result<std::shared_ptr<const Schema>> LookupSchema(
      const std::string& name) const;

  // Number of network hops a lookup of `name` from `from_node` costs under
  // the configured mode: 0 when flooded (every node holds a replica), and
  // 0 or 1 under DHT depending on whether `from_node` is the responsible
  // node for the name's hash.
  int LookupHops(const std::string& name, int from_node) const;

  // The DHT node responsible for `name` (hash mod num_directory_nodes).
  int ResponsibleNode(const std::string& name) const;

  std::vector<std::string> StreamNames() const;
  size_t num_streams() const { return streams_.size(); }

 private:
  DirectoryMode mode_;
  int num_directory_nodes_;
  std::map<std::string, StreamInfo> streams_;
};

}  // namespace cosmos

#endif  // COSMOS_STREAM_CATALOG_H_
