#ifndef COSMOS_STREAM_SCHEMA_H_
#define COSMOS_STREAM_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "stream/value.h"

namespace cosmos {

// One attribute (column) of a stream schema.
struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kNull;
  // Optional value range for numeric attributes; drives selectivity
  // estimation in the query-merging benefit model and the workload
  // generators. Ignored for strings/bools.
  double min = 0.0;
  double max = 0.0;
  bool has_range = false;

  AttributeDef() = default;
  AttributeDef(std::string n, ValueType t) : name(std::move(n)), type(t) {}
  AttributeDef(std::string n, ValueType t, double lo, double hi)
      : name(std::move(n)), type(t), min(lo), max(hi), has_range(true) {}
};

// Schema of a named stream: an ordered attribute list with by-name lookup.
// Every stream implicitly carries a "timestamp" attribute (kInt64,
// microseconds) — conventionally the last attribute; the constructors do NOT
// add it automatically, datasets declare it explicitly.
class Schema {
 public:
  Schema() = default;
  Schema(std::string stream_name, std::vector<AttributeDef> attributes);

  const std::string& stream_name() const { return stream_name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  size_t num_attributes() const { return attributes_.size(); }

  // Index of `name`, or nullopt if absent.
  std::optional<size_t> IndexOf(const std::string& name) const;
  bool HasAttribute(const std::string& name) const {
    return IndexOf(name).has_value();
  }
  const AttributeDef& attribute(size_t i) const { return attributes_[i]; }

  Result<AttributeDef> FindAttribute(const std::string& name) const;

  // Resolves `names` to column offsets in one pass, -1 for attributes this
  // schema does not carry (e.g. projected away upstream). Offsets are
  // stable for the schema's lifetime — the compiled matcher binds its
  // attribute tables to a schema once and then indexes positionally.
  std::vector<int32_t> ResolveOffsets(
      const std::vector<std::string>& names) const;

  // Sum of the fixed serialized sizes of the attributes (strings counted at
  // an assumed 16-byte average payload); used for rate estimation.
  size_t EstimatedRowWidth() const;

  // e.g. "OpenAuction(itemID:int64, start_price:double, timestamp:int64)"
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::string stream_name_;
  std::vector<AttributeDef> attributes_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace cosmos

#endif  // COSMOS_STREAM_SCHEMA_H_
