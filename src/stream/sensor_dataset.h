#ifndef COSMOS_STREAM_SENSOR_DATASET_H_
#define COSMOS_STREAM_SENSOR_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "stream/catalog.h"
#include "stream/generator.h"

namespace cosmos {

// Synthetic stand-in for the SensorScope environmental dataset used in the
// paper's experiments (63 stations measuring air temperature, humidity,
// etc.). Each station publishes one stream "sensor_<k>" whose schema lists
// the environmental measurements plus a station id and the application
// timestamp. Values follow bounded random walks so consecutive readings are
// correlated, as with real weather data. Everything is seeded and
// deterministic.
struct SensorDatasetOptions {
  int num_stations = 63;             // as in the paper
  Duration sampling_period = 30 * kSecond;
  Duration duration = 2 * kHour;     // history length per station
  uint64_t seed = 42;
  // Per-station phase offset so stations do not tick in lockstep.
  bool stagger_stations = true;
};

class SensorDataset {
 public:
  explicit SensorDataset(SensorDatasetOptions options = {});

  int num_stations() const { return options_.num_stations; }

  // Stream name of station k ("sensor_00" ... style).
  static std::string StreamName(int station);

  // The measurement schema of station `k` (all stations share the same
  // attribute list; ranges drive selectivity estimation).
  std::shared_ptr<const Schema> SchemaOf(int station) const;

  // Registers all station streams into `catalog` with their true rates.
  Status RegisterAll(Catalog& catalog) const;

  // Generator replaying station `k`'s history.
  std::unique_ptr<StreamGenerator> MakeGenerator(int station) const;

  // All stations merged into one timestamp-ordered replay feed.
  std::unique_ptr<ReplayMerger> MakeReplay() const;

  // Arrival rate in tuples/sec implied by the sampling period.
  double RatePerStation() const;

  // Names of the numeric measurement attributes usable in random predicates
  // (excludes station_id and timestamp).
  static std::vector<std::string> MeasurementAttributes();

 private:
  SensorDatasetOptions options_;
};

}  // namespace cosmos

#endif  // COSMOS_STREAM_SENSOR_DATASET_H_
