#include "stream/value.h"

#include <cmath>
#include <functional>

#include "common/logging.h"
#include "common/string_util.h"

namespace cosmos {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kBool:
      return "bool";
  }
  return "?";
}

ValueType Value::type() const {
  switch (repr_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt64;
    case 2:
      return ValueType::kDouble;
    case 3:
      return ValueType::kString;
    case 4:
      return ValueType::kBool;
  }
  return ValueType::kNull;
}

int64_t Value::AsInt64() const {
  COSMOS_CHECK(type() == ValueType::kInt64);
  return std::get<int64_t>(repr_);
}

double Value::AsDouble() const {
  COSMOS_CHECK(type() == ValueType::kDouble);
  return std::get<double>(repr_);
}

const std::string& Value::AsString() const {
  COSMOS_CHECK(type() == ValueType::kString);
  return std::get<std::string>(repr_);
}

bool Value::AsBool() const {
  COSMOS_CHECK(type() == ValueType::kBool);
  return std::get<bool>(repr_);
}

double Value::NumericValue() const {
  if (type() == ValueType::kInt64) return static_cast<double>(AsInt64());
  return AsDouble();
}

Result<int> Value::Compare(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  if (a == ValueType::kNull || b == ValueType::kNull) {
    return Status::InvalidArgument("cannot compare null values");
  }
  if (is_numeric() && other.is_numeric()) {
    double x = NumericValue();
    double y = other.NumericValue();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a != b) {
    return Status::InvalidArgument(
        StrFormat("cannot compare %s with %s", ValueTypeToString(a),
                  ValueTypeToString(b)));
  }
  if (a == ValueType::kString) {
    int c = AsString().compare(other.AsString());
    return (c < 0) ? -1 : (c > 0 ? 1 : 0);
  }
  // bool
  int x = AsBool() ? 1 : 0;
  int y = other.AsBool() ? 1 : 0;
  return x - y;
}

size_t Value::SerializedSize() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return 4 + AsString().size();  // length prefix + payload
    case ValueType::kBool:
      return 1;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      std::string s = StrFormat("%.6g", AsDouble());
      return s;
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B9;
    case ValueType::kInt64:
      return std::hash<int64_t>{}(AsInt64());
    case ValueType::kDouble: {
      double d = AsDouble();
      // Hash integral doubles like their int64 counterparts so mixed-type
      // group keys collide as the comparison semantics suggest.
      if (d == std::floor(d) && std::abs(d) < 1e18) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
    case ValueType::kBool:
      return std::hash<bool>{}(AsBool());
  }
  return 0;
}

}  // namespace cosmos
