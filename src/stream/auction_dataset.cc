#include "stream/auction_dataset.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cosmos {

AuctionDataset::AuctionDataset(AuctionDatasetOptions options)
    : options_(options) {
  COSMOS_CHECK_GT(options_.num_auctions, 0);
  COSMOS_CHECK_LE(options_.min_duration, options_.max_duration);
}

std::shared_ptr<const Schema> AuctionDataset::OpenAuctionSchema() {
  std::vector<AttributeDef> attrs = {
      {"itemID", ValueType::kInt64, 0, 1e9},
      {"sellerID", ValueType::kInt64, 0, 1e6},
      {"start_price", ValueType::kDouble, 0.0, 1000.0},
      {"timestamp", ValueType::kInt64},
  };
  return std::make_shared<Schema>("OpenAuction", std::move(attrs));
}

std::shared_ptr<const Schema> AuctionDataset::ClosedAuctionSchema() {
  std::vector<AttributeDef> attrs = {
      {"itemID", ValueType::kInt64, 0, 1e9},
      {"buyerID", ValueType::kInt64, 0, 1e6},
      {"timestamp", ValueType::kInt64},
  };
  return std::make_shared<Schema>("ClosedAuction", std::move(attrs));
}

Status AuctionDataset::RegisterAll(Catalog& catalog) const {
  double rate = static_cast<double>(kSecond) /
                static_cast<double>(options_.mean_interarrival);
  COSMOS_RETURN_IF_ERROR(catalog.RegisterStream(OpenAuctionSchema(), rate));
  COSMOS_RETURN_IF_ERROR(catalog.RegisterStream(
      ClosedAuctionSchema(), rate * options_.close_fraction));
  return Status::OK();
}

void AuctionDataset::Build() const {
  if (built_) return;
  built_ = true;

  auto open_schema = OpenAuctionSchema();
  auto closed_schema = ClosedAuctionSchema();
  Rng rng(options_.seed);

  struct CloseEvent {
    Timestamp ts;
    int64_t item;
    int64_t buyer;
  };
  std::vector<CloseEvent> closes;

  Timestamp now = 0;
  for (int i = 0; i < options_.num_auctions; ++i) {
    // Exponential interarrival for Poisson-like openings.
    double u = std::max(rng.NextDouble(), 1e-12);
    now += static_cast<Duration>(
        -std::log(u) * static_cast<double>(options_.mean_interarrival));
    int64_t item = i;
    int64_t seller = rng.NextInt(0, options_.num_sellers - 1);
    double price = rng.NextDouble(1.0, 1000.0);
    open_tuples_.emplace_back(
        open_schema,
        std::vector<Value>{Value(item), Value(seller), Value(price),
                           Value(static_cast<int64_t>(now))},
        now);
    if (rng.NextBool(options_.close_fraction)) {
      Duration d = rng.NextInt(options_.min_duration, options_.max_duration);
      closes.push_back(
          {now + d, item, rng.NextInt(0, options_.num_buyers - 1)});
    }
  }

  std::sort(closes.begin(), closes.end(),
            [](const CloseEvent& a, const CloseEvent& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              return a.item < b.item;
            });
  closed_tuples_.reserve(closes.size());
  for (const auto& c : closes) {
    closed_tuples_.emplace_back(
        closed_schema,
        std::vector<Value>{Value(c.item), Value(c.buyer),
                           Value(static_cast<int64_t>(c.ts))},
        c.ts);
  }
}

std::unique_ptr<StreamGenerator> AuctionDataset::MakeOpenGenerator() const {
  Build();
  return std::make_unique<VectorGenerator>(OpenAuctionSchema(), open_tuples_);
}

std::unique_ptr<StreamGenerator> AuctionDataset::MakeClosedGenerator() const {
  Build();
  return std::make_unique<VectorGenerator>(ClosedAuctionSchema(),
                                           closed_tuples_);
}

std::unique_ptr<ReplayMerger> AuctionDataset::MakeReplay() const {
  std::vector<std::unique_ptr<StreamGenerator>> gens;
  gens.push_back(MakeOpenGenerator());
  gens.push_back(MakeClosedGenerator());
  return std::make_unique<ReplayMerger>(std::move(gens));
}

}  // namespace cosmos
