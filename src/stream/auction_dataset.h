#ifndef COSMOS_STREAM_AUCTION_DATASET_H_
#define COSMOS_STREAM_AUCTION_DATASET_H_

#include <memory>

#include "common/random.h"
#include "stream/catalog.h"
#include "stream/generator.h"

namespace cosmos {

// The auction monitoring application of the paper's Table 1:
//   OpenAuction(itemID, sellerID, start_price, timestamp)
//   ClosedAuction(itemID, buyerID, timestamp)
// Auctions open at Poisson-ish arrivals; each closes after a uniformly drawn
// duration, so queries like "closed within three hours of opening" select a
// controllable fraction of auctions.
struct AuctionDatasetOptions {
  int num_auctions = 1000;
  Duration mean_interarrival = 30 * kSecond;
  Duration min_duration = 10 * kMinute;
  Duration max_duration = 8 * kHour;
  int num_sellers = 100;
  int num_buyers = 200;
  double close_fraction = 0.9;  // fraction of auctions that eventually close
  uint64_t seed = 7;
};

class AuctionDataset {
 public:
  explicit AuctionDataset(AuctionDatasetOptions options = {});

  static std::shared_ptr<const Schema> OpenAuctionSchema();
  static std::shared_ptr<const Schema> ClosedAuctionSchema();

  Status RegisterAll(Catalog& catalog) const;

  std::unique_ptr<StreamGenerator> MakeOpenGenerator() const;
  std::unique_ptr<StreamGenerator> MakeClosedGenerator() const;

  // Both streams merged in timestamp order.
  std::unique_ptr<ReplayMerger> MakeReplay() const;

 private:
  // Materializes both histories once (deterministically from the seed).
  void Build() const;

  AuctionDatasetOptions options_;
  mutable bool built_ = false;
  mutable std::vector<Tuple> open_tuples_;
  mutable std::vector<Tuple> closed_tuples_;
};

}  // namespace cosmos

#endif  // COSMOS_STREAM_AUCTION_DATASET_H_
