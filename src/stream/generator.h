#ifndef COSMOS_STREAM_GENERATOR_H_
#define COSMOS_STREAM_GENERATOR_H_

#include <memory>
#include <optional>
#include <vector>

#include "stream/tuple.h"

namespace cosmos {

// Produces the tuples of one stream in non-decreasing timestamp order.
// Datasets (sensor, auction) implement this; the replay machinery and the
// SPE engine consume it.
class StreamGenerator {
 public:
  virtual ~StreamGenerator() = default;

  virtual std::shared_ptr<const Schema> schema() const = 0;

  // Next tuple, or nullopt when the stream is exhausted.
  virtual std::optional<Tuple> Next() = 0;
};

// A generator over a pre-materialized tuple vector (must be timestamp
// sorted). Used by datasets that build their history up front and by tests.
class VectorGenerator : public StreamGenerator {
 public:
  VectorGenerator(std::shared_ptr<const Schema> schema,
                  std::vector<Tuple> tuples);

  std::shared_ptr<const Schema> schema() const override { return schema_; }
  std::optional<Tuple> Next() override;

  size_t remaining() const { return tuples_.size() - pos_; }

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

// Merges several generators into one globally timestamp-ordered feed,
// emulating the paper's replay of the SensorScope dataset "by using their
// timestamp information". Ties are broken by generator index so replays are
// deterministic.
class ReplayMerger {
 public:
  explicit ReplayMerger(std::vector<std::unique_ptr<StreamGenerator>> sources);

  // Next tuple across all sources, or nullopt when all are exhausted.
  std::optional<Tuple> Next();

 private:
  struct Head {
    std::optional<Tuple> tuple;
    size_t source;
  };

  void Refill(size_t i);

  std::vector<std::unique_ptr<StreamGenerator>> sources_;
  std::vector<std::optional<Tuple>> heads_;
};

// Drains `gen` fully into a vector.
std::vector<Tuple> DrainGenerator(StreamGenerator& gen);

}  // namespace cosmos

#endif  // COSMOS_STREAM_GENERATOR_H_
