#ifndef COSMOS_STREAM_VALUE_H_
#define COSMOS_STREAM_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace cosmos {

// Attribute types supported by COSMOS datagrams and tuples.
enum class ValueType { kNull = 0, kInt64, kDouble, kString, kBool };

const char* ValueTypeToString(ValueType type);

// A dynamically-typed attribute value. Values are small and copyable; the
// string alternative owns its storage.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}
  explicit Value(const char* v) : repr_(std::string(v)) {}
  explicit Value(bool v) : repr_(v) {}

  static Value Null() { return Value(); }

  ValueType type() const;

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    ValueType t = type();
    return t == ValueType::kInt64 || t == ValueType::kDouble;
  }

  // Typed accessors; calling the wrong one aborts (programming error).
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;
  bool AsBool() const;

  // Numeric value widened to double (int64 or double); aborts otherwise.
  double NumericValue() const;

  // Three-way comparison following SQL-ish semantics restricted to
  // comparable types: numerics compare numerically (int64 vs double OK),
  // strings lexicographically, bools false<true. Returns an error Status if
  // the types are incomparable or either side is null.
  Result<int> Compare(const Value& other) const;

  // Strict equality of type and payload (null == null here; used by
  // containers/tests, not by predicate evaluation).
  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Approximate serialized size in bytes; used by the communication cost
  // model (fixed 8 bytes for numerics, length for strings, 1 for bool).
  size_t SerializedSize() const;

  std::string ToString() const;

  // Stable hash for grouping keys.
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> repr_;
};

}  // namespace cosmos

#endif  // COSMOS_STREAM_VALUE_H_
