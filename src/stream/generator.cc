#include "stream/generator.h"

#include "common/logging.h"

namespace cosmos {

VectorGenerator::VectorGenerator(std::shared_ptr<const Schema> schema,
                                 std::vector<Tuple> tuples)
    : schema_(std::move(schema)), tuples_(std::move(tuples)) {
  for (size_t i = 1; i < tuples_.size(); ++i) {
    COSMOS_CHECK(tuples_[i - 1].timestamp() <= tuples_[i].timestamp());
  }
}

std::optional<Tuple> VectorGenerator::Next() {
  if (pos_ >= tuples_.size()) return std::nullopt;
  return tuples_[pos_++];
}

ReplayMerger::ReplayMerger(
    std::vector<std::unique_ptr<StreamGenerator>> sources)
    : sources_(std::move(sources)) {
  heads_.resize(sources_.size());
  for (size_t i = 0; i < sources_.size(); ++i) Refill(i);
}

void ReplayMerger::Refill(size_t i) { heads_[i] = sources_[i]->Next(); }

std::optional<Tuple> ReplayMerger::Next() {
  int best = -1;
  for (size_t i = 0; i < heads_.size(); ++i) {
    if (!heads_[i].has_value()) continue;
    if (best < 0 ||
        heads_[i]->timestamp() < heads_[best]->timestamp()) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return std::nullopt;
  Tuple out = std::move(*heads_[best]);
  Refill(static_cast<size_t>(best));
  return out;
}

std::vector<Tuple> DrainGenerator(StreamGenerator& gen) {
  std::vector<Tuple> out;
  while (auto t = gen.Next()) out.push_back(std::move(*t));
  return out;
}

}  // namespace cosmos
