#include "stream/schema.h"

#include "common/string_util.h"

namespace cosmos {

Schema::Schema(std::string stream_name, std::vector<AttributeDef> attributes)
    : stream_name_(std::move(stream_name)), attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    index_.emplace(attributes_[i].name, i);
  }
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Result<AttributeDef> Schema::FindAttribute(const std::string& name) const {
  auto idx = IndexOf(name);
  if (!idx.has_value()) {
    return Status::NotFound(StrFormat("attribute '%s' not in stream '%s'",
                                      name.c_str(), stream_name_.c_str()));
  }
  return attributes_[*idx];
}

std::vector<int32_t> Schema::ResolveOffsets(
    const std::vector<std::string>& names) const {
  std::vector<int32_t> offsets;
  offsets.reserve(names.size());
  for (const auto& name : names) {
    auto idx = IndexOf(name);
    offsets.push_back(idx ? static_cast<int32_t>(*idx) : -1);
  }
  return offsets;
}

size_t Schema::EstimatedRowWidth() const {
  size_t total = 0;
  for (const auto& a : attributes_) {
    switch (a.type) {
      case ValueType::kInt64:
      case ValueType::kDouble:
        total += 8;
        break;
      case ValueType::kString:
        total += 4 + 16;  // length prefix + assumed average payload
        break;
      case ValueType::kBool:
      case ValueType::kNull:
        total += 1;
        break;
    }
  }
  return total;
}

std::string Schema::ToString() const {
  std::string out = stream_name_ + "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ":";
    out += ValueTypeToString(attributes_[i].type);
  }
  out += ")";
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (stream_name_ != other.stream_name_) return false;
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name != other.attributes_[i].name) return false;
    if (attributes_[i].type != other.attributes_[i].type) return false;
  }
  return true;
}

}  // namespace cosmos
