#ifndef COSMOS_STREAM_TUPLE_H_
#define COSMOS_STREAM_TUPLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "stream/schema.h"
#include "stream/value.h"

namespace cosmos {

// A tuple of a stream: values positionally aligned with a shared Schema plus
// the application timestamp (paper §4: timestamps drawn from the discrete
// application time domain T). Join results carry composite schemas whose
// attribute names are qualified ("O.itemID").
class Tuple {
 public:
  Tuple() = default;
  Tuple(std::shared_ptr<const Schema> schema, std::vector<Value> values,
        Timestamp timestamp);

  const std::shared_ptr<const Schema>& schema() const { return schema_; }
  const std::vector<Value>& values() const { return values_; }
  Timestamp timestamp() const { return timestamp_; }

  size_t num_values() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }

  // By-name access through the schema.
  Result<Value> GetAttribute(const std::string& name) const;

  // Serialized size of the payload (values only) plus an 8-byte timestamp;
  // this is the unit of the communication-cost model.
  size_t SerializedSize() const;

  // Projects onto `indices` (into this tuple's schema), producing a tuple
  // over `projected_schema` which must list the same attributes in the same
  // order.
  Tuple Project(const std::vector<size_t>& indices,
                std::shared_ptr<const Schema> projected_schema) const;

  std::string ToString() const;

  // Value-wise equality (schemas compared by attribute names/types).
  bool operator==(const Tuple& other) const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<Value> values_;
  Timestamp timestamp_ = kInvalidTimestamp;
};

// Builds the composite schema for a join of `left` and `right`, qualifying
// attribute names with the given aliases ("O", "C").
std::shared_ptr<const Schema> MakeJoinedSchema(const Schema& left,
                                               const std::string& left_alias,
                                               const Schema& right,
                                               const std::string& right_alias,
                                               const std::string& name);

}  // namespace cosmos

#endif  // COSMOS_STREAM_TUPLE_H_
