#include "stream/tuple.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace cosmos {

Tuple::Tuple(std::shared_ptr<const Schema> schema, std::vector<Value> values,
             Timestamp timestamp)
    : schema_(std::move(schema)),
      values_(std::move(values)),
      timestamp_(timestamp) {
  COSMOS_CHECK(schema_ != nullptr);
  COSMOS_CHECK_EQ(values_.size(), schema_->num_attributes())
      << "tuple width does not match schema " << schema_->stream_name();
}

Result<Value> Tuple::GetAttribute(const std::string& name) const {
  if (schema_ == nullptr) {
    return Status::FailedPrecondition("tuple has no schema");
  }
  auto idx = schema_->IndexOf(name);
  if (!idx.has_value()) {
    return Status::NotFound(StrFormat("attribute '%s' not in tuple of '%s'",
                                      name.c_str(),
                                      schema_->stream_name().c_str()));
  }
  return values_[*idx];
}

size_t Tuple::SerializedSize() const {
  size_t total = 8;  // timestamp
  for (const auto& v : values_) total += v.SerializedSize();
  return total;
}

Tuple Tuple::Project(const std::vector<size_t>& indices,
                     std::shared_ptr<const Schema> projected_schema) const {
  std::vector<Value> out;
  out.reserve(indices.size());
  for (size_t i : indices) {
    COSMOS_CHECK_LT(i, values_.size());
    out.push_back(values_[i]);
  }
  return Tuple(std::move(projected_schema), std::move(out), timestamp_);
}

std::string Tuple::ToString() const {
  std::string out = schema_ ? schema_->stream_name() : "<no schema>";
  out += "{";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    if (schema_) {
      out += schema_->attribute(i).name;
      out += "=";
    }
    out += values_[i].ToString();
  }
  out += StrFormat("}@%lld", static_cast<long long>(timestamp_));
  return out;
}

bool Tuple::operator==(const Tuple& other) const {
  if (timestamp_ != other.timestamp_) return false;
  if (values_ != other.values_) return false;
  if ((schema_ == nullptr) != (other.schema_ == nullptr)) return false;
  if (schema_ && !(*schema_ == *other.schema_)) return false;
  return true;
}

std::shared_ptr<const Schema> MakeJoinedSchema(const Schema& left,
                                               const std::string& left_alias,
                                               const Schema& right,
                                               const std::string& right_alias,
                                               const std::string& name) {
  std::vector<AttributeDef> attrs;
  attrs.reserve(left.num_attributes() + right.num_attributes());
  for (const auto& a : left.attributes()) {
    AttributeDef d = a;
    d.name = left_alias + "." + a.name;
    attrs.push_back(std::move(d));
  }
  for (const auto& a : right.attributes()) {
    AttributeDef d = a;
    d.name = right_alias + "." + a.name;
    attrs.push_back(std::move(d));
  }
  return std::make_shared<Schema>(name, std::move(attrs));
}

}  // namespace cosmos
