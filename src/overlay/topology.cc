#include "overlay/topology.h"

#include <cmath>

#include "common/logging.h"

namespace cosmos {
namespace {

double Dist(const std::pair<double, double>& a,
            const std::pair<double, double>& b) {
  double dx = a.first - b.first;
  double dy = a.second - b.second;
  return std::sqrt(dx * dx + dy * dy);
}

std::vector<std::pair<double, double>> RandomCoordinates(int n, double size,
                                                         Rng& rng) {
  std::vector<std::pair<double, double>> coords;
  coords.reserve(n);
  for (int i = 0; i < n; ++i) {
    coords.emplace_back(rng.NextDouble(0, size), rng.NextDouble(0, size));
  }
  return coords;
}

// Link weight: geometric distance, floored so no link is free.
double LinkWeight(const std::pair<double, double>& a,
                  const std::pair<double, double>& b) {
  return std::max(Dist(a, b), 0.1);
}

}  // namespace

Topology GenerateBarabasiAlbert(const TopologyOptions& options) {
  COSMOS_CHECK_GE(options.num_nodes, 2);
  const int m = std::max(1, options.ba_edges_per_node);
  Rng rng(options.seed);

  Topology topo;
  topo.coordinates =
      RandomCoordinates(options.num_nodes, options.plane_size, rng);
  topo.graph = Graph(options.num_nodes);

  // Repeated-endpoint list: sampling uniformly from it implements
  // preferential attachment (probability proportional to degree).
  std::vector<NodeId> endpoints;

  // Seed clique over the first m+1 nodes.
  int seed_n = std::min(options.num_nodes, m + 1);
  for (int u = 0; u < seed_n; ++u) {
    for (int v = u + 1; v < seed_n; ++v) {
      (void)topo.graph.AddEdge(u, v,
                               LinkWeight(topo.coordinates[u],
                                          topo.coordinates[v]));
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  for (int u = seed_n; u < options.num_nodes; ++u) {
    int added = 0;
    int guard = 0;
    while (added < m && guard < 1000) {
      ++guard;
      NodeId target =
          endpoints[rng.NextBounded(endpoints.size())];
      if (target == u || topo.graph.HasEdge(u, target)) continue;
      (void)topo.graph.AddEdge(u, target,
                               LinkWeight(topo.coordinates[u],
                                          topo.coordinates[target]));
      endpoints.push_back(u);
      endpoints.push_back(target);
      ++added;
    }
    // Degenerate fallback (tiny graphs): connect to the previous node.
    if (added == 0) {
      (void)topo.graph.AddEdge(u, u - 1,
                               LinkWeight(topo.coordinates[u],
                                          topo.coordinates[u - 1]));
      endpoints.push_back(u);
      endpoints.push_back(u - 1);
    }
  }
  COSMOS_CHECK(topo.graph.IsConnected());
  return topo;
}

Topology GenerateWaxman(const TopologyOptions& options) {
  COSMOS_CHECK_GE(options.num_nodes, 2);
  Rng rng(options.seed);

  Topology topo;
  topo.coordinates =
      RandomCoordinates(options.num_nodes, options.plane_size, rng);
  topo.graph = Graph(options.num_nodes);

  // Maximum possible distance on the plane.
  const double kL = options.plane_size * std::sqrt(2.0);
  for (int u = 0; u < options.num_nodes; ++u) {
    for (int v = u + 1; v < options.num_nodes; ++v) {
      double d = Dist(topo.coordinates[u], topo.coordinates[v]);
      double p = options.waxman_alpha *
                 std::exp(-d / (options.waxman_beta * kL));
      if (rng.NextBool(p)) {
        (void)topo.graph.AddEdge(
            u, v, LinkWeight(topo.coordinates[u], topo.coordinates[v]));
      }
    }
  }
  // Stitch disconnected components with nearest-neighbor edges.
  while (!topo.graph.IsConnected()) {
    // Find an unreachable pair and connect the closest cross pair.
    std::vector<double> dist = topo.graph.ShortestDistances(0);
    int best_u = -1, best_v = -1;
    double best_d = 1e300;
    for (int v = 0; v < options.num_nodes; ++v) {
      if (!std::isinf(dist[v])) continue;
      for (int u = 0; u < options.num_nodes; ++u) {
        if (std::isinf(dist[u])) continue;
        double d = Dist(topo.coordinates[u], topo.coordinates[v]);
        if (d < best_d) {
          best_d = d;
          best_u = u;
          best_v = v;
        }
      }
    }
    COSMOS_CHECK_GE(best_u, 0) << "Waxman attachment found no candidate";
    (void)topo.graph.AddEdge(best_u, best_v,
                             LinkWeight(topo.coordinates[best_u],
                                        topo.coordinates[best_v]));
  }
  return topo;
}

std::vector<int> DegreeHistogram(const Graph& g) {
  int max_degree = 0;
  for (int u = 0; u < g.num_nodes(); ++u) {
    max_degree = std::max(max_degree, g.Degree(u));
  }
  std::vector<int> hist(max_degree + 1, 0);
  for (int u = 0; u < g.num_nodes(); ++u) {
    ++hist[g.Degree(u)];
  }
  return hist;
}

}  // namespace cosmos
