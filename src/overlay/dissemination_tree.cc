#include "overlay/dissemination_tree.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/string_util.h"

namespace cosmos {

Result<DisseminationTree> DisseminationTree::FromEdges(
    int num_nodes, const std::vector<Edge>& edges) {
  if (num_nodes <= 0) {
    return Status::InvalidArgument("tree needs at least one node");
  }
  if (static_cast<int>(edges.size()) != num_nodes - 1) {
    return Status::InvalidArgument(
        StrFormat("spanning tree over %d nodes needs %d edges, got %zu",
                  num_nodes, num_nodes - 1, edges.size()));
  }
  DisseminationTree t;
  t.adjacency_.resize(num_nodes);
  for (const auto& e : edges) {
    if (e.u < 0 || e.v < 0 || e.u >= num_nodes || e.v >= num_nodes ||
        e.u == e.v) {
      return Status::InvalidArgument("bad tree edge");
    }
    if (t.HasEdge(e.u, e.v)) {
      return Status::InvalidArgument("duplicate tree edge");
    }
    t.adjacency_[e.u].emplace_back(e.v, e.weight);
    t.adjacency_[e.v].emplace_back(e.u, e.weight);
    t.edges_.push_back(e);
  }
  // Connectivity check (n-1 edges + connected => tree).
  std::vector<bool> seen(num_nodes, false);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = true;
  int visited = 1;
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (const auto& [v, w] : t.adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        q.push(v);
      }
    }
  }
  if (visited != num_nodes) {
    return Status::InvalidArgument("edges do not form a connected tree");
  }
  // n nodes, n-1 distinct edges, connected => acyclic; re-assert the edge
  // bookkeeping that the invariant rests on.
  COSMOS_DCHECK_EQ(t.edges_.size(), static_cast<size_t>(num_nodes) - 1);
  return t;
}

bool DisseminationTree::HasEdge(NodeId u, NodeId v) const {
  if (u < 0 || u >= num_nodes()) return false;
  for (const auto& [n, w] : adjacency_[u]) {
    if (n == v) return true;
  }
  return false;
}

Result<double> DisseminationTree::EdgeWeight(NodeId u, NodeId v) const {
  if (u >= 0 && u < num_nodes()) {
    for (const auto& [n, w] : adjacency_[u]) {
      if (n == v) return w;
    }
  }
  return Status::NotFound(StrFormat("tree edge (%d,%d)", u, v));
}

std::vector<NodeId> DisseminationTree::Path(NodeId from, NodeId to) const {
  std::vector<NodeId> path;
  if (from < 0 || to < 0 || from >= num_nodes() || to >= num_nodes()) {
    return path;
  }
  // BFS from `from`; reconstruct via parents. Trees are small enough and
  // this is not on the datagram hot path (routing uses tables).
  std::vector<NodeId> parent(num_nodes(), -2);
  std::queue<NodeId> q;
  q.push(from);
  parent[from] = -1;
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    if (u == to) break;
    for (const auto& [v, w] : adjacency_[u]) {
      if (parent[v] == -2) {
        parent[v] = u;
        q.push(v);
      }
    }
  }
  if (parent[to] == -2) return path;
  for (NodeId v = to; v != -1; v = parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  // Parent-pointer consistency: the reconstructed path starts and ends at
  // the endpoints, every hop is a real tree edge, and — trees having unique
  // simple paths — no node repeats (a repeat would mean a cycle).
  COSMOS_DCHECK(!path.empty() && path.front() == from && path.back() == to);
  COSMOS_DCHECK(path.size() <= static_cast<size_t>(num_nodes()))
      << "path revisits a node: cycle in dissemination tree";
  for (size_t i = 1; i < path.size(); ++i) {
    COSMOS_DCHECK(HasEdge(path[i - 1], path[i]))
        << "path hop (" << path[i - 1] << "," << path[i]
        << ") is not a tree edge";
  }
  return path;
}

int DisseminationTree::HopDistance(NodeId from, NodeId to) const {
  auto p = Path(from, to);
  return p.empty() ? -1 : static_cast<int>(p.size()) - 1;
}

double DisseminationTree::WeightedDistance(NodeId from, NodeId to) const {
  auto p = Path(from, to);
  double total = 0.0;
  for (size_t i = 1; i < p.size(); ++i) {
    total += EdgeWeight(p[i - 1], p[i]).value_or(0.0);
  }
  return total;
}

NodeId DisseminationTree::NextHop(NodeId from, NodeId to) const {
  auto p = Path(from, to);
  if (p.size() < 2) return from;
  return p[1];
}

double DisseminationTree::TotalWeight() const {
  double total = 0.0;
  for (const auto& e : edges_) total += e.weight;
  return total;
}

}  // namespace cosmos
