#include "overlay/spanning_tree.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace cosmos {

Result<std::vector<Edge>> MinimumSpanningTree(const Graph& g) {
  const int n = g.num_nodes();
  if (n == 0) return std::vector<Edge>{};
  if (!g.IsConnected()) {
    return Status::FailedPrecondition("graph is not connected");
  }
  std::vector<bool> in_tree(n, false);
  std::vector<Edge> out;
  out.reserve(n - 1);
  using Item = std::pair<double, std::pair<NodeId, NodeId>>;  // (w, (to, from))
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  in_tree[0] = true;
  for (const auto& [v, w] : g.Neighbors(0)) pq.push({w, {v, 0}});
  while (!pq.empty() && static_cast<int>(out.size()) < n - 1) {
    auto [w, edge] = pq.top();
    pq.pop();
    auto [to, from] = edge;
    if (in_tree[to]) continue;
    in_tree[to] = true;
    out.push_back(Edge{from, to, w});
    for (const auto& [v, w2] : g.Neighbors(to)) {
      if (!in_tree[v]) pq.push({w2, {v, to}});
    }
  }
  return out;
}

Result<std::vector<Edge>> RandomSpanningTree(const Graph& g, Rng& rng) {
  const int n = g.num_nodes();
  if (n == 0) return std::vector<Edge>{};
  if (!g.IsConnected()) {
    return Status::FailedPrecondition("graph is not connected");
  }
  // Randomized frontier expansion: keep the frontier edges, pick uniformly.
  std::vector<bool> in_tree(n, false);
  std::vector<Edge> out;
  std::vector<std::pair<NodeId, NodeId>> frontier;  // (from-in-tree, to)
  NodeId start = static_cast<NodeId>(rng.NextBounded(n));
  in_tree[start] = true;
  for (const auto& [v, w] : g.Neighbors(start)) frontier.push_back({start, v});
  while (static_cast<int>(out.size()) < n - 1) {
    size_t pick = rng.NextBounded(frontier.size());
    auto [from, to] = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    if (in_tree[to]) continue;
    in_tree[to] = true;
    double w = g.EdgeWeight(from, to).value_or(1.0);
    out.push_back(Edge{from, to, w});
    for (const auto& [v, w2] : g.Neighbors(to)) {
      if (!in_tree[v]) frontier.push_back({to, v});
    }
  }
  return out;
}

Result<std::vector<Edge>> ShortestPathTree(const Graph& g, NodeId root) {
  const int n = g.num_nodes();
  if (root < 0 || root >= n) {
    return Status::InvalidArgument("bad root");
  }
  if (!g.IsConnected()) {
    return Status::FailedPrecondition("graph is not connected");
  }
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<NodeId> parent(n, -1);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[root] = 0;
  pq.push({0.0, root});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const auto& [v, w] : g.Neighbors(u)) {
      if (d + w < dist[v]) {
        dist[v] = d + w;
        parent[v] = u;
        pq.push({dist[v], v});
      }
    }
  }
  std::vector<Edge> out;
  out.reserve(n - 1);
  for (NodeId v = 0; v < n; ++v) {
    if (v == root) continue;
    double w = g.EdgeWeight(parent[v], v).value_or(1.0);
    out.push_back(Edge{parent[v], v, w});
  }
  return out;
}

}  // namespace cosmos
