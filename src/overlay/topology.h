#ifndef COSMOS_OVERLAY_TOPOLOGY_H_
#define COSMOS_OVERLAY_TOPOLOGY_H_

#include "common/random.h"
#include "overlay/graph.h"

namespace cosmos {

// Topology generators replacing BRITE (DESIGN.md substitution table). Nodes
// get synthetic 2-D coordinates; link weights are Euclidean distances
// (interpreted as milliseconds of delay), matching BRITE's geometric delay
// assignment.

struct TopologyOptions {
  int num_nodes = 1000;
  uint64_t seed = 1;
  // Barabási–Albert: edges added per new node (m). The generated degree
  // distribution follows a power law, as with BRITE's router-level mode.
  int ba_edges_per_node = 2;
  // Waxman parameters (flat random model, used for ablations).
  double waxman_alpha = 0.15;
  double waxman_beta = 0.6;
  // Plane size for coordinates; weights scale with it.
  double plane_size = 100.0;
};

// Generated topology: the graph plus node coordinates.
struct Topology {
  Graph graph;
  std::vector<std::pair<double, double>> coordinates;
};

// Power-law (preferential attachment) topology; always connected.
Topology GenerateBarabasiAlbert(const TopologyOptions& options);

// Waxman random geometric topology; retries until connected (adding uniform
// random edges if the base model leaves isolated components).
Topology GenerateWaxman(const TopologyOptions& options);

// Degree histogram of a graph (index = degree), for power-law sanity tests.
std::vector<int> DegreeHistogram(const Graph& g);

}  // namespace cosmos

#endif  // COSMOS_OVERLAY_TOPOLOGY_H_
