#include "overlay/optimizer.h"

#include <queue>

#include "common/logging.h"

namespace cosmos {

OverlayOptimizer::OverlayOptimizer(const Graph& overlay,
                                   OptimizerOptions options)
    : overlay_(overlay), options_(std::move(options)) {
  if (!options_.edge_cost) {
    options_.edge_cost = [](const Edge& e, double traffic_bps) {
      return e.weight * (1.0 + traffic_bps);
    };
  }
}

std::map<std::pair<NodeId, NodeId>, double> OverlayOptimizer::EdgeTraffic(
    const DisseminationTree& tree, const std::vector<Flow>& flows) const {
  std::map<std::pair<NodeId, NodeId>, double> traffic;
  for (const auto& e : tree.edges()) {
    traffic[DisseminationTree::EdgeKey(e.u, e.v)] = 0.0;
  }
  for (const auto& f : flows) {
    auto path = tree.Path(f.source, f.sink);
    for (size_t i = 1; i < path.size(); ++i) {
      traffic[DisseminationTree::EdgeKey(path[i - 1], path[i])] += f.rate_bps;
    }
  }
  return traffic;
}

double OverlayOptimizer::TreeCost(const DisseminationTree& tree,
                                  const std::vector<Flow>& flows) const {
  auto traffic = EdgeTraffic(tree, flows);
  double total = 0.0;
  for (const auto& e : tree.edges()) {
    total += options_.edge_cost(
        e, traffic[DisseminationTree::EdgeKey(e.u, e.v)]);
  }
  return total;
}

namespace {

// Marks the component of `start` in `tree` with edge (cu,cv) removed.
std::vector<bool> ComponentWithout(const DisseminationTree& tree,
                                   NodeId start, NodeId cu, NodeId cv) {
  std::vector<bool> in(tree.num_nodes(), false);
  std::queue<NodeId> q;
  q.push(start);
  in[start] = true;
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (const auto& [v, w] : tree.Neighbors(u)) {
      if ((u == cu && v == cv) || (u == cv && v == cu)) continue;
      if (!in[v]) {
        in[v] = true;
        q.push(v);
      }
    }
  }
  return in;
}

}  // namespace

Result<DisseminationTree> OverlayOptimizer::Optimize(
    const DisseminationTree& tree, const std::vector<Flow>& flows,
    Stats* stats) const {
  DisseminationTree current = tree;
  double current_cost = TreeCost(current, flows);
  Stats local;
  local.initial_cost = current_cost;

  Tracer::Span span;
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    span = options_.tracer->BeginSpan("overlay", "optimize", /*tid=*/-1);
    span.AddArg("flows", std::to_string(flows.size()));
  }

  for (int round = 0; round < options_.max_swaps; ++round) {
    double best_cost = current_cost;
    std::vector<Edge> best_edges;

    // Try replacing each tree edge with each overlay edge across its cut.
    for (const auto& removed : current.edges()) {
      std::vector<bool> side =
          ComponentWithout(current, removed.u, removed.u, removed.v);
      for (const auto& candidate : overlay_.edges()) {
        if (side[candidate.u] == side[candidate.v]) continue;  // same side
        if (candidate.u == removed.u && candidate.v == removed.v) continue;
        if (candidate.u == removed.v && candidate.v == removed.u) continue;
        if (current.HasEdge(candidate.u, candidate.v)) continue;
        // Degree constraint after the swap.
        int du = current.Degree(candidate.u) + 1 -
                 ((candidate.u == removed.u || candidate.u == removed.v) ? 1
                                                                         : 0);
        int dv = current.Degree(candidate.v) + 1 -
                 ((candidate.v == removed.u || candidate.v == removed.v) ? 1
                                                                         : 0);
        if (du > options_.max_degree || dv > options_.max_degree) continue;

        std::vector<Edge> edges;
        edges.reserve(current.edges().size());
        for (const auto& e : current.edges()) {
          if ((e.u == removed.u && e.v == removed.v) ||
              (e.u == removed.v && e.v == removed.u)) {
            continue;
          }
          edges.push_back(e);
        }
        edges.push_back(candidate);
        auto trial = DisseminationTree::FromEdges(current.num_nodes(), edges);
        if (!trial.ok()) continue;
        double cost = TreeCost(*trial, flows);
        if (cost < best_cost) {
          best_cost = cost;
          best_edges = std::move(edges);
        }
      }
    }

    if (best_edges.empty() ||
        best_cost >=
            current_cost * (1.0 - options_.min_relative_improvement)) {
      break;
    }
    COSMOS_ASSIGN_OR_RETURN(
        current, DisseminationTree::FromEdges(current.num_nodes(),
                                              best_edges));
    current_cost = best_cost;
    ++local.swaps_applied;
  }

  local.final_cost = current_cost;
  if (stats != nullptr) *stats = local;
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("optimizer.runs")->Increment();
    options_.metrics->GetCounter("optimizer.swaps")
        ->Add(static_cast<uint64_t>(local.swaps_applied));
    options_.metrics->GetGauge("optimizer.cost_before")
        ->Set(local.initial_cost);
    options_.metrics->GetGauge("optimizer.cost_after")->Set(local.final_cost);
  }
  if (span.active()) {
    span.AddArg("swaps", std::to_string(local.swaps_applied));
    span.AddArg("cost_before", std::to_string(local.initial_cost));
    span.AddArg("cost_after", std::to_string(local.final_cost));
  }
  return current;
}

}  // namespace cosmos
