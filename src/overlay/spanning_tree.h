#ifndef COSMOS_OVERLAY_SPANNING_TREE_H_
#define COSMOS_OVERLAY_SPANNING_TREE_H_

#include "common/random.h"
#include "overlay/graph.h"

namespace cosmos {

// Spanning-tree construction over the overlay graph. The paper's evaluation
// builds a minimum spanning tree over the BRITE topology as the
// dissemination tree; the random tree exists for the overlay-optimizer
// ablation.

// Prim's MST. Requires a connected graph.
Result<std::vector<Edge>> MinimumSpanningTree(const Graph& g);

// A uniformly random spanning tree (random-walk/Wilson-lite: randomized
// BFS), used as the ablation baseline.
Result<std::vector<Edge>> RandomSpanningTree(const Graph& g, Rng& rng);

// Shortest-path tree rooted at `root` (union of Dijkstra parent edges).
Result<std::vector<Edge>> ShortestPathTree(const Graph& g, NodeId root);

}  // namespace cosmos

#endif  // COSMOS_OVERLAY_SPANNING_TREE_H_
