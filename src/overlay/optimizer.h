#ifndef COSMOS_OVERLAY_OPTIMIZER_H_
#define COSMOS_OVERLAY_OPTIMIZER_H_

#include <functional>
#include <map>

#include "overlay/dissemination_tree.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace cosmos {

// A persistent data flow used by the optimizer's cost model: `rate_bps`
// bytes/sec travel from `source` to `sink` along the tree path.
struct Flow {
  NodeId source = 0;
  NodeId sink = 0;
  double rate_bps = 0.0;
};

struct OptimizerOptions {
  // Stop after this many accepted reorganizations.
  int max_swaps = 64;
  // A swap must improve total cost by at least this factor to be applied.
  double min_relative_improvement = 1e-6;
  // Node capability constraint: no node may exceed this tree degree.
  int max_degree = 32;
  // Configurable cost of carrying `traffic_bps` over `edge` (paper §3.2:
  // "a configurable cost function defined on these parameters"). The default
  // is delay × traffic; an idle link still costs its delay so the tree stays
  // short where no traffic flows.
  std::function<double(const Edge& edge, double traffic_bps)> edge_cost;
  // Telemetry taps: every Optimize() run records optimizer.runs/swaps
  // counters, cost_before/after gauges and one tracer slice. Either may be
  // nullptr (off).
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

// The overlay network optimizer (paper §3.2, refs [18,19]): monitors link
// delays and flow rates and applies local reorganizations of the
// dissemination tree — replacing a tree edge with a cheaper overlay edge
// across the same cut — while the move is beneficial under the cost
// function.
class OverlayOptimizer {
 public:
  OverlayOptimizer(const Graph& overlay, OptimizerOptions options = {});

  // Per-edge traffic (bps) induced by routing every flow along its tree
  // path. Keyed by the canonical edge pair.
  std::map<std::pair<NodeId, NodeId>, double> EdgeTraffic(
      const DisseminationTree& tree, const std::vector<Flow>& flows) const;

  // Total cost of `tree` carrying `flows`.
  double TreeCost(const DisseminationTree& tree,
                  const std::vector<Flow>& flows) const;

  struct Stats {
    int swaps_applied = 0;
    double initial_cost = 0.0;
    double final_cost = 0.0;
  };

  // Greedy local search: repeatedly applies the best improving edge swap.
  // The result is always a valid spanning tree of the overlay.
  Result<DisseminationTree> Optimize(const DisseminationTree& tree,
                                     const std::vector<Flow>& flows,
                                     Stats* stats = nullptr) const;

 private:
  const Graph& overlay_;
  OptimizerOptions options_;
};

}  // namespace cosmos

#endif  // COSMOS_OVERLAY_OPTIMIZER_H_
