#ifndef COSMOS_OVERLAY_GRAPH_H_
#define COSMOS_OVERLAY_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace cosmos {

using NodeId = int;

// An undirected edge with a weight (modeled as the overlay link delay in
// milliseconds; any non-negative cost works).
struct Edge {
  NodeId u = -1;
  NodeId v = -1;
  double weight = 1.0;
};

// A simple undirected weighted graph over nodes 0..n-1 (the physical
// overlay). Parallel edges are rejected; self-loops are rejected.
class Graph {
 public:
  explicit Graph(int num_nodes = 0);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  // Adds an undirected edge; fails on self-loop, duplicate or bad node id.
  Status AddEdge(NodeId u, NodeId v, double weight = 1.0);

  bool HasEdge(NodeId u, NodeId v) const;
  // Weight of edge (u,v); error when absent.
  Result<double> EdgeWeight(NodeId u, NodeId v) const;

  // Neighbor list of `u` as (neighbor, weight) pairs.
  const std::vector<std::pair<NodeId, double>>& Neighbors(NodeId u) const {
    return adjacency_[u];
  }
  int Degree(NodeId u) const {
    return static_cast<int>(adjacency_[u].size());
  }

  bool IsConnected() const;

  // Single-source shortest path distances (Dijkstra); unreachable nodes get
  // infinity.
  std::vector<double> ShortestDistances(NodeId source) const;

 private:
  std::vector<std::vector<std::pair<NodeId, double>>> adjacency_;
  std::vector<Edge> edges_;
};

}  // namespace cosmos

#endif  // COSMOS_OVERLAY_GRAPH_H_
