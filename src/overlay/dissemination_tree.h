#ifndef COSMOS_OVERLAY_DISSEMINATION_TREE_H_
#define COSMOS_OVERLAY_DISSEMINATION_TREE_H_

#include <vector>

#include "common/status.h"
#include "overlay/graph.h"

namespace cosmos {

// An (unrooted) overlay dissemination tree over nodes 0..n-1: exactly n-1
// edges, connected, acyclic. The CBN routes datagrams hop-by-hop along tree
// edges using per-link subscription tables, so the tree only needs neighbor
// sets and path queries.
class DisseminationTree {
 public:
  DisseminationTree() = default;

  // Validates and adopts `edges` as a spanning tree over `num_nodes` nodes.
  static Result<DisseminationTree> FromEdges(int num_nodes,
                                             const std::vector<Edge>& edges);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  const std::vector<Edge>& edges() const { return edges_; }

  const std::vector<std::pair<NodeId, double>>& Neighbors(NodeId u) const {
    return adjacency_[u];
  }
  int Degree(NodeId u) const {
    return static_cast<int>(adjacency_[u].size());
  }

  bool HasEdge(NodeId u, NodeId v) const;
  Result<double> EdgeWeight(NodeId u, NodeId v) const;

  // The unique tree path from `from` to `to` (inclusive of both ends).
  std::vector<NodeId> Path(NodeId from, NodeId to) const;

  // Number of tree edges between the two nodes.
  int HopDistance(NodeId from, NodeId to) const;

  // Sum of edge weights on the path.
  double WeightedDistance(NodeId from, NodeId to) const;

  // The neighbor of `from` on the path toward `to` (== `to` if adjacent).
  NodeId NextHop(NodeId from, NodeId to) const;

  double TotalWeight() const;

  // Canonical (min,max) ordering of an edge for use as a map key.
  static std::pair<NodeId, NodeId> EdgeKey(NodeId u, NodeId v) {
    return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  }

 private:
  std::vector<std::vector<std::pair<NodeId, double>>> adjacency_;
  std::vector<Edge> edges_;
};

}  // namespace cosmos

#endif  // COSMOS_OVERLAY_DISSEMINATION_TREE_H_
