#include "overlay/graph.h"

#include <limits>
#include <queue>

#include "common/string_util.h"

namespace cosmos {

Graph::Graph(int num_nodes) : adjacency_(static_cast<size_t>(num_nodes)) {}

Status Graph::AddEdge(NodeId u, NodeId v, double weight) {
  if (u < 0 || v < 0 || u >= num_nodes() || v >= num_nodes()) {
    return Status::InvalidArgument(StrFormat("bad node id (%d,%d)", u, v));
  }
  if (u == v) {
    return Status::InvalidArgument("self-loop");
  }
  if (HasEdge(u, v)) {
    return Status::AlreadyExists(StrFormat("edge (%d,%d) exists", u, v));
  }
  if (weight < 0) {
    return Status::InvalidArgument("negative edge weight");
  }
  adjacency_[u].emplace_back(v, weight);
  adjacency_[v].emplace_back(u, weight);
  edges_.push_back(Edge{u, v, weight});
  return Status::OK();
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u < 0 || u >= num_nodes()) return false;
  for (const auto& [n, w] : adjacency_[u]) {
    if (n == v) return true;
  }
  return false;
}

Result<double> Graph::EdgeWeight(NodeId u, NodeId v) const {
  if (u >= 0 && u < num_nodes()) {
    for (const auto& [n, w] : adjacency_[u]) {
      if (n == v) return w;
    }
  }
  return Status::NotFound(StrFormat("edge (%d,%d)", u, v));
}

bool Graph::IsConnected() const {
  if (num_nodes() == 0) return true;
  std::vector<bool> seen(num_nodes(), false);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = true;
  int visited = 1;
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (const auto& [v, w] : adjacency_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        q.push(v);
      }
    }
  }
  return visited == num_nodes();
}

std::vector<double> Graph::ShortestDistances(NodeId source) const {
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(num_nodes(), kInf);
  if (source < 0 || source >= num_nodes()) return dist;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[source] = 0.0;
  pq.emplace(0.0, source);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const auto& [v, w] : adjacency_[u]) {
      double nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        pq.emplace(nd, v);
      }
    }
  }
  return dist;
}

}  // namespace cosmos
