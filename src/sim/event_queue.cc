#include "sim/event_queue.h"

#include "common/logging.h"

namespace cosmos {

uint64_t EventQueue::Push(Timestamp when, Callback cb) {
  uint64_t id = next_seq_++;
  heap_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool EventQueue::Cancel(uint64_t id) { return callbacks_.erase(id) > 0; }

void EventQueue::SkipTombstones() const {
  while (!heap_.empty() &&
         callbacks_.find(heap_.top().seq) == callbacks_.end()) {
    heap_.pop();
  }
}

Timestamp EventQueue::NextTime() const {
  SkipTombstones();
  if (heap_.empty()) return kInvalidTimestamp;
  return heap_.top().when;
}

std::pair<Timestamp, EventQueue::Callback> EventQueue::Pop() {
  SkipTombstones();
  COSMOS_CHECK(!heap_.empty()) << "Pop() on empty event queue";
  Entry e = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(e.seq);
  COSMOS_CHECK(it != callbacks_.end())
      << "heap entry " << e.seq << " lost its callback";
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  return {e.when, std::move(cb)};
}

}  // namespace cosmos
