#include "sim/simulator.h"

#include "common/logging.h"

namespace cosmos {

uint64_t Simulator::Schedule(Duration delay, EventQueue::Callback cb) {
  COSMOS_CHECK(delay >= 0);
  return queue_.Push(now_ + delay, std::move(cb));
}

uint64_t Simulator::ScheduleAt(Timestamp when, EventQueue::Callback cb) {
  COSMOS_CHECK(when >= now_);
  return queue_.Push(when, std::move(cb));
}

bool Simulator::Step() {
  if (queue_.Empty()) return false;
  auto [when, cb] = queue_.Pop();
  COSMOS_CHECK(when >= now_);
  now_ = when;
  cb();
  return true;
}

size_t Simulator::Run() {
  stopped_ = false;
  size_t n = 0;
  while (!stopped_ && Step()) ++n;
  return n;
}

size_t Simulator::RunUntil(Timestamp until) {
  stopped_ = false;
  size_t n = 0;
  while (!stopped_ && !queue_.Empty() && queue_.NextTime() <= until) {
    Step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace cosmos
