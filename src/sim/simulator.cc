#include "sim/simulator.h"

#include "common/logging.h"

namespace cosmos {

uint64_t Simulator::Schedule(Duration delay, EventQueue::Callback cb) {
  COSMOS_CHECK_GE(delay, 0) << "negative schedule delay";
  return queue_.Push(now_ + delay, std::move(cb));
}

uint64_t Simulator::ScheduleAt(Timestamp when, EventQueue::Callback cb) {
  COSMOS_CHECK_GE(when, now_) << "ScheduleAt into the past";
  return queue_.Push(when, std::move(cb));
}

void Simulator::SetTelemetry(MetricsRegistry* registry) {
  if (registry == nullptr) {
    events_counter_ = nullptr;
    queue_depth_gauge_ = nullptr;
    now_gauge_ = nullptr;
    return;
  }
  events_counter_ = registry->GetCounter("sim.events");
  queue_depth_gauge_ = registry->GetGauge("sim.queue_depth");
  now_gauge_ = registry->GetGauge("sim.now_us");
}

bool Simulator::Step() {
  if (queue_.Empty()) return false;
  auto [when, cb] = queue_.Pop();
  // Virtual time is monotone: the queue can never yield a past event.
  COSMOS_CHECK_GE(when, now_) << "event queue yielded a past event";
  now_ = when;
  if (events_counter_ != nullptr) {
    events_counter_->Increment();
    queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    now_gauge_->Set(static_cast<double>(now_));
  }
  cb();
  return true;
}

size_t Simulator::Run() {
  stopped_ = false;
  size_t n = 0;
  while (!stopped_ && Step()) ++n;
  return n;
}

size_t Simulator::RunUntil(Timestamp until) {
  stopped_ = false;
  size_t n = 0;
  while (!stopped_ && !queue_.Empty() && queue_.NextTime() <= until) {
    Step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace cosmos
