#ifndef COSMOS_SIM_SIMULATOR_H_
#define COSMOS_SIM_SIMULATOR_H_

#include <cstdint>

#include "common/status.h"
#include "sim/event_queue.h"
#include "telemetry/registry.h"

namespace cosmos {

// Discrete-event simulator: a virtual clock driven by the event queue.
// All COSMOS network experiments run under one Simulator, which makes every
// benchmark fully deterministic and independent of wall-clock speed.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Timestamp now() const { return now_; }

  // Schedules `cb` to run `delay` after now (delay >= 0).
  uint64_t Schedule(Duration delay, EventQueue::Callback cb);

  // Schedules `cb` at absolute virtual time `when` (must be >= now).
  uint64_t ScheduleAt(Timestamp when, EventQueue::Callback cb);

  bool Cancel(uint64_t id) { return queue_.Cancel(id); }

  // Runs until the event queue drains or Stop() is called. Returns the
  // number of events processed.
  size_t Run();

  // Runs events with time <= `until` (inclusive); the clock ends at
  // min(until, last event time) or `until` if events remain.
  size_t RunUntil(Timestamp until);

  // Processes exactly one event if present; returns whether one fired.
  bool Step();

  // Stops Run() after the current event returns.
  void Stop() { stopped_ = true; }

  bool HasPendingEvents() const { return !queue_.Empty(); }
  Timestamp NextEventTime() const { return queue_.NextTime(); }

  // Telemetry tap: every executed event increments sim.events and the
  // queue-depth gauge tracks the pending count. Null (default) disables.
  void SetTelemetry(MetricsRegistry* registry);

 private:
  EventQueue queue_;
  Timestamp now_ = 0;
  bool stopped_ = false;
  Counter* events_counter_ = nullptr;
  Gauge* queue_depth_gauge_ = nullptr;
  Gauge* now_gauge_ = nullptr;
};

}  // namespace cosmos

#endif  // COSMOS_SIM_SIMULATOR_H_
