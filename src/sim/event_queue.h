#ifndef COSMOS_SIM_EVENT_QUEUE_H_
#define COSMOS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>

#include "common/time.h"

namespace cosmos {

// A deterministic future-event list: events fire in (time, insertion order).
class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Enqueues `cb` to fire at absolute time `when`. Returns an id usable with
  // Cancel().
  uint64_t Push(Timestamp when, Callback cb);

  // Cancels a pending event; returns false if it already fired or was
  // cancelled. Cancellation is lazy (tombstoned in the heap).
  bool Cancel(uint64_t id);

  bool Empty() const { return callbacks_.empty(); }
  size_t size() const { return callbacks_.size(); }

  // Timestamp of the earliest live event; kInvalidTimestamp when empty.
  Timestamp NextTime() const;

  // Removes and returns the earliest live event. Requires !Empty().
  std::pair<Timestamp, Callback> Pop();

 private:
  struct Entry {
    Timestamp when;
    uint64_t seq;
    // Inverted so the priority_queue yields earliest (then lowest seq) first.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  void SkipTombstones() const;

  mutable std::priority_queue<Entry> heap_;
  std::unordered_map<uint64_t, Callback> callbacks_;  // live events
  uint64_t next_seq_ = 0;
};

}  // namespace cosmos

#endif  // COSMOS_SIM_EVENT_QUEUE_H_
