#include "cbn/matcher.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "expr/evaluator.h"

namespace cosmos {

namespace {

// Which table an attribute constraint compiles into. Numeric point
// equalities and proper intervals get the sorted fast paths; everything
// else (non-numeric equality, disequalities, presence-only constraints)
// keeps its interpreted AttrConstraint::Matches semantics in the misc
// list. Mixed constraints (an interval plus eq/neq) must stay misc — the
// numeric tables alone would drop the eq/neq half.
enum class Shape { kPointEq, kInterval, kMisc };

Shape ClassifyConstraint(const AttrConstraint& c) {
  if (c.eq.has_value() || !c.neq.empty()) return Shape::kMisc;
  if (c.interval.IsPoint()) return Shape::kPointEq;
  if (!c.interval.IsAll() && !c.interval.IsEmpty()) return Shape::kInterval;
  return Shape::kMisc;  // presence-only (empty intervals were dropped)
}

}  // namespace

CompiledMatcher::CompiledMatcher(std::string stream,
                                 const std::vector<const Profile*>& profiles)
    : stream_(std::move(stream)), num_profiles_(profiles.size()) {
  struct TableBuilder {
    std::vector<EqEntry> eq;
    std::vector<RangeEntry> range;
    std::vector<MiscEntry> misc;
  };
  // std::map so attribute-table order (and therefore match order) is
  // deterministic across rebuilds.
  std::map<std::string, TableBuilder> builders;

  for (uint32_t p = 0; p < profiles.size(); ++p) {
    COSMOS_CHECK(profiles[p] != nullptr) << "null profile in bucket";
    std::vector<const Filter*> filters = profiles[p]->FiltersOf(stream_);
    if (filters.empty()) {
      // Stream requested without filters: covered unconditionally.
      unconditional_.push_back(p);
      continue;
    }
    for (const Filter* f : filters) {
      const ConjunctiveClause& clause = f->clause();
      // An unsatisfiable conjunct never matches; drop it whole (dropping
      // one constraint would lower the arity and widen the match).
      if (clause.IsUnsatisfiable()) continue;
      const auto id = static_cast<uint32_t>(conjuncts_.size());
      Conjunct cj;
      cj.profile = p;
      cj.arity = static_cast<uint32_t>(clause.constraints().size());
      cj.residual = clause.has_residual() ? &clause : nullptr;
      conjuncts_.push_back(cj);
      if (cj.arity == 0) {
        zero_arity_.push_back(id);
        continue;
      }
      for (const auto& [attr, c] : clause.constraints()) {
        TableBuilder& b = builders[attr];
        switch (ClassifyConstraint(c)) {
          case Shape::kPointEq:
            b.eq.push_back(EqEntry{c.interval.lo(), id});
            break;
          case Shape::kInterval:
            b.range.push_back(RangeEntry{c.interval, id});
            break;
          case Shape::kMisc:
            b.misc.push_back(MiscEntry{c, id});
            break;
        }
      }
    }
  }

  attrs_.reserve(builders.size());
  for (auto& [name, b] : builders) {
    std::sort(b.eq.begin(), b.eq.end(), [](const EqEntry& x, const EqEntry& y) {
      return x.value != y.value ? x.value < y.value : x.conjunct < y.conjunct;
    });
    std::sort(b.range.begin(), b.range.end(),
              [](const RangeEntry& x, const RangeEntry& y) {
                return x.interval.lo() != y.interval.lo()
                           ? x.interval.lo() < y.interval.lo()
                           : x.conjunct < y.conjunct;
              });
    attrs_.push_back(AttrTable{name, std::move(b.eq), std::move(b.range),
                               std::move(b.misc)});
    attr_names_.push_back(name);
  }
}

const std::vector<int32_t>& CompiledMatcher::OffsetsFor(
    const std::shared_ptr<const Schema>& schema) const {
  auto it = bindings_.find(schema.get());
  if (it != bindings_.end()) return it->second.offsets;
  // Exactly MatchesCanonical's resolution: an unqualified ColumnRef
  // resolves by plain schema name lookup, absent attributes fail.
  Binding binding{schema, schema->ResolveOffsets(attr_names_)};
  return bindings_.emplace(schema.get(), std::move(binding))
      .first->second.offsets;
}

void CompiledMatcher::Match(const Datagram& d, Scratch* scratch,
                            std::vector<uint32_t>* out) const {
  COSMOS_DCHECK_EQ(d.stream, stream_) << "matcher consulted for wrong stream";
  out->clear();
  scratch->fallback_evals = 0;
  if (num_profiles_ == 0) return;
  if (scratch->counters.size() < conjuncts_.size()) {
    scratch->counters.resize(conjuncts_.size(), 0);
  }
  if (scratch->profile_seen.size() < num_profiles_) {
    scratch->profile_seen.resize(num_profiles_, 0);
  }
  scratch->touched.clear();

  // Counting stage: one pass over the constrained attributes, bumping each
  // conjunct once per satisfied constraint.
  const std::vector<int32_t>& offsets = OffsetsFor(d.tuple.schema());
  const std::vector<Value>& values = d.tuple.values();
  auto bump = [scratch](uint32_t conjunct) {
    if (scratch->counters[conjunct]++ == 0) {
      scratch->touched.push_back(conjunct);
    }
  };
  for (size_t a = 0; a < attrs_.size(); ++a) {
    const int32_t col = offsets[a];
    // Absent attribute: every constraint on it fails (presence
    // requirement), so its conjuncts simply never reach their arity.
    if (col < 0) continue;
    const Value& v = values[static_cast<size_t>(col)];
    const AttrTable& t = attrs_[a];
    if (v.is_numeric() && (!t.eq.empty() || !t.range.empty())) {
      const double x = v.NumericValue();
      if (!t.eq.empty()) {
        auto e = std::lower_bound(
            t.eq.begin(), t.eq.end(), x,
            [](const EqEntry& entry, double v) { return entry.value < v; });
        for (; e != t.eq.end() && e->value == x; ++e) bump(e->conjunct);
      }
      // Entries are sorted by lower bound: once a bound exceeds x no later
      // interval can contain it.
      for (const RangeEntry& r : t.range) {
        if (r.interval.lo() > x) break;
        if (r.interval.Contains(x)) bump(r.conjunct);
      }
    }
    for (const MiscEntry& m : t.misc) {
      if (m.constraint.Matches(v)) bump(m.conjunct);
    }
  }

  // Gather stage: a conjunct at full arity passed the canonical
  // constraints; evaluate its residual (if any) and emit its profile once.
  auto emit = [this, scratch, out, &d](uint32_t conjunct) {
    const Conjunct& cj = conjuncts_[conjunct];
    if (scratch->profile_seen[cj.profile]) return;  // disjunction: any hit
    if (cj.residual != nullptr) {
      ++scratch->fallback_evals;
      for (const ExprPtr& r : cj.residual->residual()) {
        auto res = EvalPredicate(r, d.tuple);
        if (!res.ok() || !*res) return;
      }
    }
    scratch->profile_seen[cj.profile] = 1;
    out->push_back(cj.profile);
  };
  for (uint32_t c : scratch->touched) {
    if (scratch->counters[c] == conjuncts_[c].arity) emit(c);
    scratch->counters[c] = 0;  // restore the all-zero invariant
  }
  for (uint32_t c : zero_arity_) emit(c);
  for (uint32_t p : unconditional_) {
    if (!scratch->profile_seen[p]) {
      scratch->profile_seen[p] = 1;
      out->push_back(p);
    }
  }
  for (uint32_t p : *out) scratch->profile_seen[p] = 0;
  std::sort(out->begin(), out->end());
}

}  // namespace cosmos
