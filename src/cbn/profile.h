#ifndef COSMOS_CBN_PROFILE_H_
#define COSMOS_CBN_PROFILE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cbn/filter.h"

namespace cosmos {

using ProfileId = uint64_t;

// A data-interest profile π = ⟨S, P, F⟩ (paper §3.1):
//   S — the requested stream names,
//   P — per-stream projection attribute sets (the CBN extension: early
//       projection saves transmitting unneeded attributes),
//   F — a disjunction of single-stream filters.
// A datagram is covered by the profile iff some filter covers it. A stream
// in S with no filter is requested unconditionally (every datagram of that
// stream is covered) — this is how a user subscribes to a whole result
// stream by its unique name.
class Profile {
 public:
  Profile() = default;

  // Adds `stream` to S with projection set P(stream) = `attributes`
  // (empty = all attributes).
  void AddStream(const std::string& stream,
                 std::vector<std::string> attributes = {});

  // Adds a filter to F; its stream is added to S if absent (with an
  // all-attributes projection unless AddStream set one).
  void AddFilter(Filter filter);

  const std::set<std::string>& streams() const { return streams_; }
  bool WantsStream(const std::string& stream) const {
    return streams_.count(stream) > 0;
  }

  // Projection set of `stream`; empty vector = all attributes.
  const std::vector<std::string>& ProjectionOf(
      const std::string& stream) const;

  const std::vector<Filter>& filters() const { return filters_; }

  // Filters defined on `stream`. Backed by a per-stream index maintained
  // in AddFilter, so per-stream iteration does not scan filters of the
  // profile's other streams (the routing index relies on this).
  std::vector<const Filter*> FiltersOf(const std::string& stream) const;

  // Coverage test (paper: "a datagram is covered by a profile if it is
  // covered by any filters in the profile"; streams without filters are
  // covered unconditionally).
  bool Covers(const Datagram& d) const;

  // Attributes of `stream` the network must retain when forwarding a
  // datagram matched by this profile: projection set plus every attribute
  // any of the stream's filters references (needed for downstream
  // re-evaluation). Empty = all.
  std::vector<std::string> RequiredAttributes(const std::string& stream) const;

  std::string ToString() const;

 private:
  std::set<std::string> streams_;
  std::map<std::string, std::vector<std::string>> projections_;
  std::vector<Filter> filters_;
  // stream -> indices into filters_ defined on it.
  std::map<std::string, std::vector<size_t>> filters_by_stream_;
};

using ProfilePtr = std::shared_ptr<const Profile>;

}  // namespace cosmos

#endif  // COSMOS_CBN_PROFILE_H_
