#ifndef COSMOS_CBN_CODEC_H_
#define COSMOS_CBN_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cbn/datagram.h"
#include "cbn/profile.h"

namespace cosmos {

// Binary wire format for datagrams. The in-process network never needs to
// serialize, but the byte accounting of every experiment is calibrated
// against this codec (Datagram::SerializedSize matches EncodeDatagram's
// output length for the common attribute types), and a real deployment
// would ship exactly these bytes.
//
// Layout (little-endian):
//   u16  stream name length, then the name bytes
//   i64  timestamp
//   u16  attribute count
//   per attribute:
//     u16 name length + name bytes
//     u8  type tag (ValueType)
//     payload: i64 / f64 / (u32 length + bytes) / u8 bool / none for null
//
// Note the self-describing attribute names: a CBN datagram is a set of
// attribute-value pairs (paper §1), routable without out-of-band schemas.
class Encoder {
 public:
  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutI64(int64_t v);
  void PutF64(double v);
  void PutString(const std::string& s);  // u32 length prefix

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> Take() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

class Decoder {
 public:
  explicit Decoder(const std::vector<uint8_t>& buffer) : buffer_(buffer) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<int64_t> GetI64();
  Result<double> GetF64();
  Result<std::string> GetString();

  bool AtEnd() const { return pos_ == buffer_.size(); }
  size_t remaining() const { return buffer_.size() - pos_; }

 private:
  Status Need(size_t n) const;

  const std::vector<uint8_t>& buffer_;
  size_t pos_ = 0;
};

// Serializes `d` (schema attribute names travel inline).
std::vector<uint8_t> EncodeDatagram(const Datagram& d);

// Reconstructs a datagram; the schema is rebuilt from the inline names and
// type tags (no ranges — wire datagrams carry values, not statistics).
Result<Datagram> DecodeDatagram(const std::vector<uint8_t>& bytes);

// ---- profile wire format ----
//
// Subscription profiles are the control-plane payload of the CBN: a real
// deployment propagates exactly these bytes hop-by-hop (the in-process
// network shares Profile objects, but control_messages_ accounting and the
// DST codec fuzzing are calibrated against this format).
//
// Layout (little-endian):
//   u16 stream count; per stream:
//     u32-prefixed name, u16 projection-attribute count, u32-prefixed names
//   u16 filter count; per filter:
//     u32-prefixed stream name
//     u16 constraint count; per constraint (attribute-name sorted):
//       u32-prefixed attribute name
//       f64 interval lo, u8 lo_open, f64 hi, u8 hi_open
//       u8 has_eq [+ value], u16 neq count + values
//     u16 residual count + expression trees
//
// Values are a u8 ValueType tag plus the datagram payload encoding;
// expressions are a u8 ExprKind tag plus kind-specific fields (literals
// carry a value, column refs two strings, comparisons/arithmetic an op tag
// and two subtrees, logicals an op tag and a u16-counted child list).

void EncodeValue(const Value& v, Encoder* enc);
Result<Value> DecodeValue(Decoder* dec);

// `expr` must be non-null. Decoding rejects trees deeper than an internal
// limit so malformed input cannot exhaust the stack.
void EncodeExpression(const ExprPtr& expr, Encoder* enc);
Result<ExprPtr> DecodeExpression(Decoder* dec);

std::vector<uint8_t> EncodeProfile(const Profile& profile);
Result<Profile> DecodeProfile(const std::vector<uint8_t>& bytes);

}  // namespace cosmos

#endif  // COSMOS_CBN_CODEC_H_
