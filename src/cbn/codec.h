#ifndef COSMOS_CBN_CODEC_H_
#define COSMOS_CBN_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cbn/datagram.h"

namespace cosmos {

// Binary wire format for datagrams. The in-process network never needs to
// serialize, but the byte accounting of every experiment is calibrated
// against this codec (Datagram::SerializedSize matches EncodeDatagram's
// output length for the common attribute types), and a real deployment
// would ship exactly these bytes.
//
// Layout (little-endian):
//   u16  stream name length, then the name bytes
//   i64  timestamp
//   u16  attribute count
//   per attribute:
//     u16 name length + name bytes
//     u8  type tag (ValueType)
//     payload: i64 / f64 / (u32 length + bytes) / u8 bool / none for null
//
// Note the self-describing attribute names: a CBN datagram is a set of
// attribute-value pairs (paper §1), routable without out-of-band schemas.
class Encoder {
 public:
  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutI64(int64_t v);
  void PutF64(double v);
  void PutString(const std::string& s);  // u32 length prefix

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> Take() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

class Decoder {
 public:
  explicit Decoder(const std::vector<uint8_t>& buffer) : buffer_(buffer) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<int64_t> GetI64();
  Result<double> GetF64();
  Result<std::string> GetString();

  bool AtEnd() const { return pos_ == buffer_.size(); }
  size_t remaining() const { return buffer_.size() - pos_; }

 private:
  Status Need(size_t n) const;

  const std::vector<uint8_t>& buffer_;
  size_t pos_ = 0;
};

// Serializes `d` (schema attribute names travel inline).
std::vector<uint8_t> EncodeDatagram(const Datagram& d);

// Reconstructs a datagram; the schema is rebuilt from the inline names and
// type tags (no ranges — wire datagrams carry values, not statistics).
Result<Datagram> DecodeDatagram(const std::vector<uint8_t>& bytes);

}  // namespace cosmos

#endif  // COSMOS_CBN_CODEC_H_
