#ifndef COSMOS_CBN_FILTER_H_
#define COSMOS_CBN_FILTER_H_

#include <string>
#include <vector>

#include "cbn/datagram.h"
#include "expr/conjunct.h"

namespace cosmos {

// A datagram filter (paper §3.1): defined on exactly one stream, applicable
// only to that stream, and a conjunction of constraints on its attributes.
// The canonical constraints live in `clause`; clause residuals (e.g. the
// window re-tightening predicate "O.timestamp - C.timestamp <= 0") are
// evaluated as expressions.
class Filter {
 public:
  Filter() = default;
  Filter(std::string stream, ConjunctiveClause clause)
      : stream_(std::move(stream)), clause_(std::move(clause)) {}

  const std::string& stream() const { return stream_; }
  const ConjunctiveClause& clause() const { return clause_; }

  // True when the clause carries residual conjuncts — the part the
  // compiled matcher must hand back to the interpreted Evaluator.
  bool has_residual() const { return clause_.has_residual(); }

  // "A datagram is said to be covered by a filter if the datagram is from
  // the data stream of the filter and satisfies all the constraints."
  bool Covers(const Datagram& d) const;

  // Attributes referenced by the constraints and residual (needed upstream
  // so that early projection never drops an attribute a downstream filter
  // still has to evaluate).
  std::vector<std::string> ReferencedAttributes() const;

  std::string ToString() const;

 private:
  std::string stream_;
  ConjunctiveClause clause_;
};

}  // namespace cosmos

#endif  // COSMOS_CBN_FILTER_H_
