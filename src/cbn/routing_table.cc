#include "cbn/routing_table.h"

#include "common/check.h"

namespace cosmos {

void RoutingTable::Add(NodeId link, ProfileId id, ProfilePtr profile) {
  COSMOS_CHECK(profile != nullptr) << "routing entry " << id;
  per_link_[link].push_back(Entry{id, std::move(profile)});
  COSMOS_DCHECK(CheckInvariants());
}

bool RoutingTable::AddUnique(NodeId link, ProfileId id, ProfilePtr profile) {
  COSMOS_CHECK(profile != nullptr) << "routing entry " << id;
  for (const auto& e : per_link_[link]) {
    if (e.id == id) return false;
  }
  per_link_[link].push_back(Entry{id, std::move(profile)});
  COSMOS_DCHECK(CheckInvariants());
  return true;
}

bool RoutingTable::Remove(NodeId link, ProfileId id) {
  auto it = per_link_.find(link);
  if (it == per_link_.end()) return false;
  auto& entries = it->second;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].id == id) {
      entries.erase(entries.begin() + static_cast<long>(i));
      if (entries.empty()) per_link_.erase(it);
      COSMOS_DCHECK(CheckInvariants());
      return true;
    }
  }
  return false;
}

size_t RoutingTable::RemoveEverywhere(ProfileId id) {
  size_t removed = 0;
  for (auto it = per_link_.begin(); it != per_link_.end();) {
    auto& entries = it->second;
    for (size_t i = 0; i < entries.size();) {
      if (entries[i].id == id) {
        entries.erase(entries.begin() + static_cast<long>(i));
        ++removed;
      } else {
        ++i;
      }
    }
    if (entries.empty()) {
      it = per_link_.erase(it);
    } else {
      ++it;
    }
  }
  // The unsubscribe must leave no dangling entry for `id` on any link.
  COSMOS_DCHECK_EQ(CountOf(id), 0u) << "dangling routing entries";
  COSMOS_DCHECK(CheckInvariants());
  return removed;
}

size_t RoutingTable::CountOf(ProfileId id) const {
  size_t count = 0;
  for (const auto& [link, entries] : per_link_) {
    for (const auto& e : entries) {
      if (e.id == id) ++count;
    }
  }
  return count;
}

bool RoutingTable::CheckInvariants() const {
  for (const auto& [link, entries] : per_link_) {
    if (entries.empty()) return false;  // empty lists must be erased
    for (const auto& e : entries) {
      if (e.profile == nullptr) return false;
    }
  }
  return true;
}

const std::vector<RoutingTable::Entry>& RoutingTable::EntriesFor(
    NodeId link) const {
  static const std::vector<Entry> kEmpty;
  auto it = per_link_.find(link);
  if (it == per_link_.end()) return kEmpty;
  return it->second;
}

std::vector<NodeId> RoutingTable::Links() const {
  std::vector<NodeId> out;
  out.reserve(per_link_.size());
  for (const auto& [link, entries] : per_link_) out.push_back(link);
  return out;
}

bool RoutingTable::LinkCovers(NodeId link, const Datagram& d) const {
  for (const auto& e : EntriesFor(link)) {
    if (e.profile->Covers(d)) return true;
  }
  return false;
}

std::vector<const Profile*> RoutingTable::MatchingProfiles(
    NodeId link, const Datagram& d) const {
  std::vector<const Profile*> out;
  for (const auto& e : EntriesFor(link)) {
    if (e.profile->Covers(d)) out.push_back(e.profile.get());
  }
  return out;
}

size_t RoutingTable::TotalEntries() const {
  size_t total = 0;
  for (const auto& [link, entries] : per_link_) total += entries.size();
  return total;
}

}  // namespace cosmos
