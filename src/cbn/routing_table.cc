#include "cbn/routing_table.h"

namespace cosmos {

void RoutingTable::Add(NodeId link, ProfileId id, ProfilePtr profile) {
  per_link_[link].push_back(Entry{id, std::move(profile)});
}

bool RoutingTable::AddUnique(NodeId link, ProfileId id, ProfilePtr profile) {
  for (const auto& e : per_link_[link]) {
    if (e.id == id) return false;
  }
  per_link_[link].push_back(Entry{id, std::move(profile)});
  return true;
}

bool RoutingTable::Remove(NodeId link, ProfileId id) {
  auto it = per_link_.find(link);
  if (it == per_link_.end()) return false;
  auto& entries = it->second;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].id == id) {
      entries.erase(entries.begin() + static_cast<long>(i));
      if (entries.empty()) per_link_.erase(it);
      return true;
    }
  }
  return false;
}

size_t RoutingTable::RemoveEverywhere(ProfileId id) {
  size_t removed = 0;
  for (auto it = per_link_.begin(); it != per_link_.end();) {
    auto& entries = it->second;
    for (size_t i = 0; i < entries.size();) {
      if (entries[i].id == id) {
        entries.erase(entries.begin() + static_cast<long>(i));
        ++removed;
      } else {
        ++i;
      }
    }
    if (entries.empty()) {
      it = per_link_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

const std::vector<RoutingTable::Entry>& RoutingTable::EntriesFor(
    NodeId link) const {
  static const std::vector<Entry> kEmpty;
  auto it = per_link_.find(link);
  if (it == per_link_.end()) return kEmpty;
  return it->second;
}

std::vector<NodeId> RoutingTable::Links() const {
  std::vector<NodeId> out;
  out.reserve(per_link_.size());
  for (const auto& [link, entries] : per_link_) out.push_back(link);
  return out;
}

bool RoutingTable::LinkCovers(NodeId link, const Datagram& d) const {
  for (const auto& e : EntriesFor(link)) {
    if (e.profile->Covers(d)) return true;
  }
  return false;
}

std::vector<const Profile*> RoutingTable::MatchingProfiles(
    NodeId link, const Datagram& d) const {
  std::vector<const Profile*> out;
  for (const auto& e : EntriesFor(link)) {
    if (e.profile->Covers(d)) out.push_back(e.profile.get());
  }
  return out;
}

size_t RoutingTable::TotalEntries() const {
  size_t total = 0;
  for (const auto& [link, entries] : per_link_) total += entries.size();
  return total;
}

}  // namespace cosmos
