#include "cbn/routing_table.h"

#include <algorithm>

#include "common/check.h"

namespace cosmos {

const std::vector<std::string>& RoutingTable::StreamBucket::UnionRequired(
    bool* wants_all) const {
  if (union_dirty_) {
    union_required_.clear();
    union_wants_all_ = false;
    for (const auto& slot : slots_) {
      if (slot.required.empty()) {  // needs all attributes
        union_wants_all_ = true;
        union_required_.clear();
        break;
      }
      // Slots keep `required` sorted; merge-insert keeps the union sorted
      // (and therefore a deterministic projection-cache key).
      for (const auto& attr : slot.required) {
        auto it = std::lower_bound(union_required_.begin(),
                                   union_required_.end(), attr);
        if (it == union_required_.end() || *it != attr) {
          union_required_.insert(it, attr);
        }
      }
    }
    union_dirty_ = false;
  }
  *wants_all = union_wants_all_;
  return union_required_;
}

const CompiledMatcher& RoutingTable::StreamBucket::Compiled(
    const std::string& stream) const {
  if (matcher_ == nullptr) {
    std::vector<const Profile*> profiles;
    profiles.reserve(slots_.size());
    for (const auto& slot : slots_) profiles.push_back(slot.profile);
    matcher_ = std::make_unique<CompiledMatcher>(stream, profiles);
  }
  return *matcher_;
}

void RoutingTable::IndexEntry(LinkState& state, ProfileId id,
                              const Profile& p) {
  for (const auto& stream : p.streams()) {
    StreamBucket& bucket = state.by_stream[stream];
    std::vector<std::string> required = p.RequiredAttributes(stream);
    std::sort(required.begin(), required.end());
    bucket.slots_.push_back(BucketSlot{id, &p, std::move(required)});
    bucket.union_dirty_ = true;
    bucket.matcher_.reset();
  }
}

void RoutingTable::DeindexEntry(LinkState& state, ProfileId id,
                                const Profile& p) {
  for (const auto& stream : p.streams()) {
    auto it = state.by_stream.find(stream);
    COSMOS_DCHECK(it != state.by_stream.end())
        << "no bucket for indexed stream " << stream;
    auto& slots = it->second.slots_;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].id == id && slots[i].profile == &p) {
        slots.erase(slots.begin() + static_cast<long>(i));
        break;
      }
    }
    if (slots.empty()) {
      state.by_stream.erase(it);
    } else {
      it->second.union_dirty_ = true;
      it->second.matcher_.reset();
    }
  }
}

void RoutingTable::Add(NodeId link, ProfileId id, ProfilePtr profile) {
  COSMOS_CHECK(profile != nullptr) << "routing entry " << id;
  LinkState& state = per_link_[link];
  IndexEntry(state, id, *profile);
  state.entries.push_back(Entry{id, std::move(profile)});
  COSMOS_DCHECK(CheckInvariants());
}

bool RoutingTable::AddUnique(NodeId link, ProfileId id, ProfilePtr profile) {
  COSMOS_CHECK(profile != nullptr) << "routing entry " << id;
  if (Contains(link, id)) return false;
  Add(link, id, std::move(profile));
  return true;
}

bool RoutingTable::Remove(NodeId link, ProfileId id) {
  auto it = per_link_.find(link);
  if (it == per_link_.end()) return false;
  LinkState& state = it->second;
  auto& entries = state.entries;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].id == id) {
      DeindexEntry(state, id, *entries[i].profile);
      entries.erase(entries.begin() + static_cast<long>(i));
      if (entries.empty()) per_link_.erase(it);
      COSMOS_DCHECK(CheckInvariants());
      return true;
    }
  }
  return false;
}

size_t RoutingTable::RemoveEverywhere(ProfileId id) {
  size_t removed = 0;
  for (auto it = per_link_.begin(); it != per_link_.end();) {
    LinkState& state = it->second;
    auto& entries = state.entries;
    for (size_t i = 0; i < entries.size();) {
      if (entries[i].id == id) {
        DeindexEntry(state, id, *entries[i].profile);
        entries.erase(entries.begin() + static_cast<long>(i));
        ++removed;
      } else {
        ++i;
      }
    }
    if (entries.empty()) {
      it = per_link_.erase(it);
    } else {
      ++it;
    }
  }
  // The unsubscribe must leave no dangling entry for `id` on any link.
  COSMOS_DCHECK_EQ(CountOf(id), 0u) << "dangling routing entries";
  COSMOS_DCHECK(CheckInvariants());
  return removed;
}

bool RoutingTable::Contains(NodeId link, ProfileId id) const {
  auto it = per_link_.find(link);
  if (it == per_link_.end()) return false;
  for (const auto& e : it->second.entries) {
    if (e.id == id) return true;
  }
  return false;
}

size_t RoutingTable::CountOf(ProfileId id) const {
  size_t count = 0;
  for (const auto& [link, state] : per_link_) {
    for (const auto& e : state.entries) {
      if (e.id == id) ++count;
    }
  }
  return count;
}

bool RoutingTable::CheckInvariants() const {
  for (const auto& [link, state] : per_link_) {
    if (state.entries.empty()) return false;  // empty lists must be erased
    size_t expected_slots = 0;
    for (const auto& e : state.entries) {
      if (e.profile == nullptr) return false;
      expected_slots += e.profile->streams().size();
      // Every (entry, stream) pair must be indexed.
      for (const auto& stream : e.profile->streams()) {
        auto it = state.by_stream.find(stream);
        if (it == state.by_stream.end()) return false;
        bool found = false;
        for (const auto& slot : it->second.slots()) {
          if (slot.id == e.id && slot.profile == e.profile.get()) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
    }
    // No empty or stray buckets/slots; slot count matches the entries'
    // stream count exactly (no duplicate or leaked slots).
    size_t total_slots = 0;
    for (const auto& [stream, bucket] : state.by_stream) {
      if (bucket.slots().empty()) return false;
      total_slots += bucket.slots().size();
      for (const auto& slot : bucket.slots()) {
        if (slot.profile == nullptr) return false;
        bool backed = false;
        for (const auto& e : state.entries) {
          if (e.id == slot.id && e.profile.get() == slot.profile &&
              e.profile->WantsStream(stream)) {
            backed = true;
            break;
          }
        }
        if (!backed) return false;
      }
    }
    if (total_slots != expected_slots) return false;
  }
  return true;
}

const std::vector<RoutingTable::Entry>& RoutingTable::EntriesFor(
    NodeId link) const {
  static const std::vector<Entry> kEmpty;
  auto it = per_link_.find(link);
  if (it == per_link_.end()) return kEmpty;
  return it->second.entries;
}

std::vector<NodeId> RoutingTable::Links() const {
  std::vector<NodeId> out;
  out.reserve(per_link_.size());
  for (const auto& [link, state] : per_link_) out.push_back(link);
  return out;
}

const RoutingTable::StreamBucket* RoutingTable::BucketFor(
    NodeId link, const std::string& stream) const {
  auto it = per_link_.find(link);
  if (it == per_link_.end()) return nullptr;
  auto bit = it->second.by_stream.find(stream);
  if (bit == it->second.by_stream.end()) return nullptr;
  return &bit->second;
}

bool RoutingTable::LinkCovers(NodeId link, const Datagram& d) const {
  const StreamBucket* bucket = BucketFor(link, d.stream);
  if (bucket == nullptr) return false;
  for (const auto& slot : bucket->slots()) {
    if (slot.profile->Covers(d)) return true;
  }
  return false;
}

void RoutingTable::MatchingProfiles(NodeId link, const Datagram& d,
                                    std::vector<const Profile*>* out) const {
  const StreamBucket* bucket = BucketFor(link, d.stream);
  if (bucket == nullptr) return;
  for (const auto& slot : bucket->slots()) {
    if (slot.profile->Covers(d)) out->push_back(slot.profile);
  }
}

std::vector<const Profile*> RoutingTable::MatchingProfiles(
    NodeId link, const Datagram& d) const {
  std::vector<const Profile*> out;
  MatchingProfiles(link, d, &out);
  return out;
}

size_t RoutingTable::TotalEntries() const {
  size_t total = 0;
  for (const auto& [link, state] : per_link_) total += state.entries.size();
  return total;
}

size_t RoutingTable::TotalIndexedSlots() const {
  size_t total = 0;
  for (const auto& [link, state] : per_link_) {
    for (const auto& [stream, bucket] : state.by_stream) {
      total += bucket.slots().size();
    }
  }
  return total;
}

}  // namespace cosmos
