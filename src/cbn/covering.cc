#include "cbn/covering.h"

#include <algorithm>

#include "common/check.h"
#include "expr/implication.h"

namespace cosmos {

bool FilterCovers(const Filter& wide, const Filter& narrow) {
  if (wide.stream() != narrow.stream()) return false;
  // Covering is implication of clauses; implication must at minimum be
  // reflexive on live data or the cover relation loses its partial-order
  // structure (Theorem 2 relies on it).
  COSMOS_DCHECK(ClauseImplies(narrow.clause(), narrow.clause()))
      << "implication not reflexive for " << narrow.stream();
  return ClauseImplies(narrow.clause(), wide.clause());
}

namespace {

// Projection set `wide` admits everything `narrow` needs (empty = all).
bool ProjectionCovers(const std::vector<std::string>& wide,
                      const std::vector<std::string>& narrow) {
  if (wide.empty()) return true;
  if (narrow.empty()) return false;  // narrow wants all, wide is a subset
  for (const auto& a : narrow) {
    if (std::find(wide.begin(), wide.end(), a) == wide.end()) return false;
  }
  return true;
}

}  // namespace

bool ProfileCovers(const Profile& wide, const Profile& narrow) {
  for (const auto& stream : narrow.streams()) {
    if (!wide.WantsStream(stream)) return false;
    // Compare *required* attribute sets (projection plus filter-referenced
    // attributes), not raw projections: when a pruned subscription's entry
    // sits downstream of links that early-project to the coverer's required
    // set, its filters must still be evaluable on what survives.
    if (!ProjectionCovers(wide.RequiredAttributes(stream),
                          narrow.RequiredAttributes(stream))) {
      return false;
    }
    auto wide_filters = wide.FiltersOf(stream);
    auto narrow_filters = narrow.FiltersOf(stream);
    if (wide_filters.empty()) continue;  // wide takes the whole stream
    if (narrow_filters.empty()) return false;  // narrow takes whole stream
    for (const auto* nf : narrow_filters) {
      bool covered = false;
      for (const auto* wf : wide_filters) {
        if (FilterCovers(*wf, *nf)) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
  }
  return true;
}

Profile MergeProfiles(const Profile& a, const Profile& b) {
  Profile out;
  for (const auto& p : {&a, &b}) {
    for (const auto& stream : p->streams()) {
      // Widen projections to the union of *required* attribute sets so
      // early projection upstream keeps everything either side needs.
      std::vector<std::string> req = p->RequiredAttributes(stream);
      out.AddStream(stream, std::move(req));
      // "All attributes" dominates.
      if (p->ProjectionOf(stream).empty()) out.AddStream(stream, {});
    }
  }
  // Concatenate filters, pruning ones covered by an already-kept filter.
  std::vector<Filter> kept;
  auto consider = [&kept](const Filter& f) {
    for (const auto& k : kept) {
      if (FilterCovers(k, f)) return;
    }
    kept.push_back(f);
  };
  // Streams subscribed without filters swallow all filters of that stream.
  auto unconditional = [](const Profile& p, const std::string& stream) {
    return p.WantsStream(stream) && p.FiltersOf(stream).empty();
  };
  for (const auto& p : {&a, &b}) {
    const Profile& other = (p == &a) ? b : a;
    for (const auto& f : p->filters()) {
      if (unconditional(other, f.stream())) continue;
      consider(f);
    }
  }
  // Keep streams that either side requests unconditionally filter-free.
  for (const auto& f : kept) out.AddFilter(f);
  // The merge is a relaxation: the merged profile must cover both inputs,
  // or upstream routing would drop datagrams a subscriber still needs.
  COSMOS_DCHECK(ProfileCovers(out, a)) << "merged profile fails to cover a";
  COSMOS_DCHECK(ProfileCovers(out, b)) << "merged profile fails to cover b";
  return out;
}

}  // namespace cosmos
