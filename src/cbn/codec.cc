#include "cbn/codec.h"

#include <cstring>

#include "common/string_util.h"

namespace cosmos {

void Encoder::PutU8(uint8_t v) { buffer_.push_back(v); }

void Encoder::PutU16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v & 0xFF));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
}

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutI64(int64_t v) {
  uint64_t u;
  std::memcpy(&u, &v, 8);
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(u >> (8 * i)));
  }
}

void Encoder::PutF64(double v) {
  int64_t bits;
  std::memcpy(&bits, &v, 8);
  PutI64(bits);
}

void Encoder::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

Status Decoder::Need(size_t n) const {
  if (pos_ + n > buffer_.size()) {
    return Status::OutOfRange(
        StrFormat("decode past end: need %zu, have %zu", n,
                  buffer_.size() - pos_));
  }
  return Status::OK();
}

Result<uint8_t> Decoder::GetU8() {
  COSMOS_RETURN_IF_ERROR(Need(1));
  return buffer_[pos_++];
}

Result<uint16_t> Decoder::GetU16() {
  COSMOS_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(buffer_[pos_]) |
               static_cast<uint16_t>(buffer_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> Decoder::GetU32() {
  COSMOS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(buffer_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<int64_t> Decoder::GetI64() {
  COSMOS_RETURN_IF_ERROR(Need(8));
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u |= static_cast<uint64_t>(buffer_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  int64_t v;
  std::memcpy(&v, &u, 8);
  return v;
}

Result<double> Decoder::GetF64() {
  COSMOS_ASSIGN_OR_RETURN(int64_t bits, GetI64());
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

Result<std::string> Decoder::GetString() {
  COSMOS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  COSMOS_RETURN_IF_ERROR(Need(len));
  std::string s(reinterpret_cast<const char*>(buffer_.data() + pos_), len);
  pos_ += len;
  return s;
}

std::vector<uint8_t> EncodeDatagram(const Datagram& d) {
  Encoder enc;
  enc.PutU16(static_cast<uint16_t>(d.stream.size()));
  for (char c : d.stream) enc.PutU8(static_cast<uint8_t>(c));
  enc.PutI64(d.tuple.timestamp());
  enc.PutU16(static_cast<uint16_t>(d.tuple.num_values()));
  for (size_t i = 0; i < d.tuple.num_values(); ++i) {
    const auto& def = d.tuple.schema()->attribute(i);
    enc.PutU16(static_cast<uint16_t>(def.name.size()));
    for (char c : def.name) enc.PutU8(static_cast<uint8_t>(c));
    const Value& v = d.tuple.value(i);
    enc.PutU8(static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt64:
        enc.PutI64(v.AsInt64());
        break;
      case ValueType::kDouble:
        enc.PutF64(v.AsDouble());
        break;
      case ValueType::kString:
        enc.PutString(v.AsString());
        break;
      case ValueType::kBool:
        enc.PutU8(v.AsBool() ? 1 : 0);
        break;
    }
  }
  return enc.Take();
}

Result<Datagram> DecodeDatagram(const std::vector<uint8_t>& bytes) {
  Decoder dec(bytes);
  COSMOS_ASSIGN_OR_RETURN(uint16_t name_len, dec.GetU16());
  std::string stream;
  stream.reserve(name_len);
  for (uint16_t i = 0; i < name_len; ++i) {
    COSMOS_ASSIGN_OR_RETURN(uint8_t c, dec.GetU8());
    stream.push_back(static_cast<char>(c));
  }
  COSMOS_ASSIGN_OR_RETURN(int64_t ts, dec.GetI64());
  COSMOS_ASSIGN_OR_RETURN(uint16_t count, dec.GetU16());

  std::vector<AttributeDef> attrs;
  std::vector<Value> values;
  for (uint16_t i = 0; i < count; ++i) {
    COSMOS_ASSIGN_OR_RETURN(uint16_t alen, dec.GetU16());
    std::string attr;
    attr.reserve(alen);
    for (uint16_t k = 0; k < alen; ++k) {
      COSMOS_ASSIGN_OR_RETURN(uint8_t c, dec.GetU8());
      attr.push_back(static_cast<char>(c));
    }
    COSMOS_ASSIGN_OR_RETURN(uint8_t tag, dec.GetU8());
    ValueType type = static_cast<ValueType>(tag);
    switch (type) {
      case ValueType::kNull:
        values.emplace_back();
        break;
      case ValueType::kInt64: {
        COSMOS_ASSIGN_OR_RETURN(int64_t v, dec.GetI64());
        values.emplace_back(v);
        break;
      }
      case ValueType::kDouble: {
        COSMOS_ASSIGN_OR_RETURN(double v, dec.GetF64());
        values.emplace_back(v);
        break;
      }
      case ValueType::kString: {
        COSMOS_ASSIGN_OR_RETURN(std::string v, dec.GetString());
        values.emplace_back(std::move(v));
        break;
      }
      case ValueType::kBool: {
        COSMOS_ASSIGN_OR_RETURN(uint8_t v, dec.GetU8());
        values.emplace_back(v != 0);
        break;
      }
      default:
        return Status::ParseError(
            StrFormat("bad value type tag %u", tag));
    }
    attrs.emplace_back(std::move(attr), type);
  }
  if (!dec.AtEnd()) {
    return Status::ParseError("trailing bytes after datagram");
  }
  auto schema = std::make_shared<Schema>(stream, std::move(attrs));
  return Datagram{stream, Tuple(std::move(schema), std::move(values), ts)};
}

namespace {

// Expression trees nest at most this deep on the wire; deeper input is
// rejected rather than recursed into.
constexpr int kMaxExprDepth = 64;

Result<ExprPtr> DecodeExpressionAt(Decoder* dec, int depth);

void EncodeInterval(const Interval& iv, Encoder* enc) {
  enc->PutF64(iv.lo());
  enc->PutU8(iv.lo_open() ? 1 : 0);
  enc->PutF64(iv.hi());
  enc->PutU8(iv.hi_open() ? 1 : 0);
}

Result<Interval> DecodeInterval(Decoder* dec) {
  COSMOS_ASSIGN_OR_RETURN(double lo, dec->GetF64());
  COSMOS_ASSIGN_OR_RETURN(uint8_t lo_open, dec->GetU8());
  COSMOS_ASSIGN_OR_RETURN(double hi, dec->GetF64());
  COSMOS_ASSIGN_OR_RETURN(uint8_t hi_open, dec->GetU8());
  if (lo != lo || hi != hi) {
    return Status::ParseError("NaN interval endpoint");
  }
  return Interval(lo, lo_open != 0, hi, hi_open != 0);
}

Result<ConjunctiveClause> DecodeClause(Decoder* dec) {
  ConjunctiveClause clause;
  COSMOS_ASSIGN_OR_RETURN(uint16_t nconstraints, dec->GetU16());
  for (uint16_t i = 0; i < nconstraints; ++i) {
    COSMOS_ASSIGN_OR_RETURN(std::string attr, dec->GetString());
    COSMOS_ASSIGN_OR_RETURN(Interval iv, DecodeInterval(dec));
    clause.ConstrainInterval(attr, iv);
    COSMOS_ASSIGN_OR_RETURN(uint8_t has_eq, dec->GetU8());
    if (has_eq != 0) {
      COSMOS_ASSIGN_OR_RETURN(Value eq, DecodeValue(dec));
      if (eq.is_numeric()) {
        // A numeric equality is canonically a point interval; a wire
        // constraint carrying one is not a valid encoding.
        return Status::ParseError("numeric eq constraint on the wire");
      }
      clause.ConstrainEquals(attr, std::move(eq));
    }
    COSMOS_ASSIGN_OR_RETURN(uint16_t nneq, dec->GetU16());
    for (uint16_t k = 0; k < nneq; ++k) {
      COSMOS_ASSIGN_OR_RETURN(Value v, DecodeValue(dec));
      if (v.is_numeric()) {
        return Status::ParseError("numeric neq constraint on the wire");
      }
      clause.ConstrainNotEquals(attr, std::move(v));
    }
  }
  COSMOS_ASSIGN_OR_RETURN(uint16_t nresidual, dec->GetU16());
  for (uint16_t i = 0; i < nresidual; ++i) {
    COSMOS_ASSIGN_OR_RETURN(ExprPtr e, DecodeExpressionAt(dec, 0));
    clause.AddResidual(std::move(e));
  }
  return clause;
}

void EncodeClause(const ConjunctiveClause& clause, Encoder* enc) {
  enc->PutU16(static_cast<uint16_t>(clause.constraints().size()));
  for (const auto& [attr, c] : clause.constraints()) {
    enc->PutString(attr);
    EncodeInterval(c.interval, enc);
    enc->PutU8(c.eq.has_value() ? 1 : 0);
    if (c.eq.has_value()) EncodeValue(*c.eq, enc);
    enc->PutU16(static_cast<uint16_t>(c.neq.size()));
    for (const Value& v : c.neq) EncodeValue(v, enc);
  }
  enc->PutU16(static_cast<uint16_t>(clause.residual().size()));
  for (const ExprPtr& e : clause.residual()) EncodeExpression(e, enc);
}

Result<ExprPtr> DecodeExpressionAt(Decoder* dec, int depth) {
  if (depth > kMaxExprDepth) {
    return Status::ParseError("expression tree too deep");
  }
  COSMOS_ASSIGN_OR_RETURN(uint8_t tag, dec->GetU8());
  switch (static_cast<ExprKind>(tag)) {
    case ExprKind::kLiteral: {
      COSMOS_ASSIGN_OR_RETURN(Value v, DecodeValue(dec));
      return ExprPtr(std::make_shared<LiteralExpr>(std::move(v)));
    }
    case ExprKind::kColumnRef: {
      COSMOS_ASSIGN_OR_RETURN(std::string qualifier, dec->GetString());
      COSMOS_ASSIGN_OR_RETURN(std::string name, dec->GetString());
      return ExprPtr(std::make_shared<ColumnRefExpr>(std::move(qualifier),
                                                     std::move(name)));
    }
    case ExprKind::kComparison: {
      COSMOS_ASSIGN_OR_RETURN(uint8_t op, dec->GetU8());
      if (op > static_cast<uint8_t>(CompareOp::kGe)) {
        return Status::ParseError(StrFormat("bad compare op %u", op));
      }
      COSMOS_ASSIGN_OR_RETURN(ExprPtr lhs,
                              DecodeExpressionAt(dec, depth + 1));
      COSMOS_ASSIGN_OR_RETURN(ExprPtr rhs,
                              DecodeExpressionAt(dec, depth + 1));
      return ExprPtr(std::make_shared<ComparisonExpr>(
          static_cast<CompareOp>(op), std::move(lhs), std::move(rhs)));
    }
    case ExprKind::kLogical: {
      COSMOS_ASSIGN_OR_RETURN(uint8_t op, dec->GetU8());
      if (op > static_cast<uint8_t>(LogicalOp::kNot)) {
        return Status::ParseError(StrFormat("bad logical op %u", op));
      }
      COSMOS_ASSIGN_OR_RETURN(uint16_t count, dec->GetU16());
      std::vector<ExprPtr> children;
      children.reserve(count);
      for (uint16_t i = 0; i < count; ++i) {
        COSMOS_ASSIGN_OR_RETURN(ExprPtr child,
                                DecodeExpressionAt(dec, depth + 1));
        children.push_back(std::move(child));
      }
      // Constructed directly (not via MakeAnd/MakeOr) so the decoded tree
      // is structurally identical to the encoded one — the factories
      // flatten nested conjunctions.
      return ExprPtr(std::make_shared<LogicalExpr>(
          static_cast<LogicalOp>(op), std::move(children)));
    }
    case ExprKind::kArithmetic: {
      COSMOS_ASSIGN_OR_RETURN(uint8_t op, dec->GetU8());
      if (op > static_cast<uint8_t>(ArithOp::kDiv)) {
        return Status::ParseError(StrFormat("bad arith op %u", op));
      }
      COSMOS_ASSIGN_OR_RETURN(ExprPtr lhs,
                              DecodeExpressionAt(dec, depth + 1));
      COSMOS_ASSIGN_OR_RETURN(ExprPtr rhs,
                              DecodeExpressionAt(dec, depth + 1));
      return ExprPtr(std::make_shared<ArithmeticExpr>(
          static_cast<ArithOp>(op), std::move(lhs), std::move(rhs)));
    }
    default:
      return Status::ParseError(StrFormat("bad expression kind %u", tag));
  }
}

}  // namespace

void EncodeValue(const Value& v, Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      enc->PutI64(v.AsInt64());
      break;
    case ValueType::kDouble:
      enc->PutF64(v.AsDouble());
      break;
    case ValueType::kString:
      enc->PutString(v.AsString());
      break;
    case ValueType::kBool:
      enc->PutU8(v.AsBool() ? 1 : 0);
      break;
  }
}

Result<Value> DecodeValue(Decoder* dec) {
  COSMOS_ASSIGN_OR_RETURN(uint8_t tag, dec->GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value();
    case ValueType::kInt64: {
      COSMOS_ASSIGN_OR_RETURN(int64_t v, dec->GetI64());
      return Value(v);
    }
    case ValueType::kDouble: {
      COSMOS_ASSIGN_OR_RETURN(double v, dec->GetF64());
      return Value(v);
    }
    case ValueType::kString: {
      COSMOS_ASSIGN_OR_RETURN(std::string v, dec->GetString());
      return Value(std::move(v));
    }
    case ValueType::kBool: {
      COSMOS_ASSIGN_OR_RETURN(uint8_t v, dec->GetU8());
      return Value(v != 0);
    }
    default:
      return Status::ParseError(StrFormat("bad value type tag %u", tag));
  }
}

void EncodeExpression(const ExprPtr& expr, Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(expr->kind()));
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      EncodeValue(static_cast<const LiteralExpr&>(*expr).value(), enc);
      break;
    case ExprKind::kColumnRef: {
      const auto& col = static_cast<const ColumnRefExpr&>(*expr);
      enc->PutString(col.qualifier());
      enc->PutString(col.name());
      break;
    }
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(*expr);
      enc->PutU8(static_cast<uint8_t>(cmp.op()));
      EncodeExpression(cmp.lhs(), enc);
      EncodeExpression(cmp.rhs(), enc);
      break;
    }
    case ExprKind::kLogical: {
      const auto& log = static_cast<const LogicalExpr&>(*expr);
      enc->PutU8(static_cast<uint8_t>(log.op()));
      enc->PutU16(static_cast<uint16_t>(log.children().size()));
      for (const ExprPtr& child : log.children()) {
        EncodeExpression(child, enc);
      }
      break;
    }
    case ExprKind::kArithmetic: {
      const auto& ar = static_cast<const ArithmeticExpr&>(*expr);
      enc->PutU8(static_cast<uint8_t>(ar.op()));
      EncodeExpression(ar.lhs(), enc);
      EncodeExpression(ar.rhs(), enc);
      break;
    }
  }
}

Result<ExprPtr> DecodeExpression(Decoder* dec) {
  return DecodeExpressionAt(dec, 0);
}

std::vector<uint8_t> EncodeProfile(const Profile& profile) {
  Encoder enc;
  enc.PutU16(static_cast<uint16_t>(profile.streams().size()));
  for (const std::string& stream : profile.streams()) {
    enc.PutString(stream);
    const auto& proj = profile.ProjectionOf(stream);
    enc.PutU16(static_cast<uint16_t>(proj.size()));
    for (const std::string& attr : proj) enc.PutString(attr);
  }
  enc.PutU16(static_cast<uint16_t>(profile.filters().size()));
  for (const Filter& f : profile.filters()) {
    enc.PutString(f.stream());
    EncodeClause(f.clause(), &enc);
  }
  return enc.Take();
}

Result<Profile> DecodeProfile(const std::vector<uint8_t>& bytes) {
  Decoder dec(bytes);
  Profile profile;
  COSMOS_ASSIGN_OR_RETURN(uint16_t nstreams, dec.GetU16());
  for (uint16_t i = 0; i < nstreams; ++i) {
    COSMOS_ASSIGN_OR_RETURN(std::string stream, dec.GetString());
    COSMOS_ASSIGN_OR_RETURN(uint16_t nproj, dec.GetU16());
    std::vector<std::string> proj;
    proj.reserve(nproj);
    for (uint16_t k = 0; k < nproj; ++k) {
      COSMOS_ASSIGN_OR_RETURN(std::string attr, dec.GetString());
      proj.push_back(std::move(attr));
    }
    profile.AddStream(stream, std::move(proj));
  }
  COSMOS_ASSIGN_OR_RETURN(uint16_t nfilters, dec.GetU16());
  for (uint16_t i = 0; i < nfilters; ++i) {
    COSMOS_ASSIGN_OR_RETURN(std::string stream, dec.GetString());
    COSMOS_ASSIGN_OR_RETURN(ConjunctiveClause clause, DecodeClause(&dec));
    profile.AddFilter(Filter(std::move(stream), std::move(clause)));
  }
  if (!dec.AtEnd()) {
    return Status::ParseError("trailing bytes after profile");
  }
  return profile;
}

}  // namespace cosmos
