#include "cbn/codec.h"

#include <cstring>

#include "common/string_util.h"

namespace cosmos {

void Encoder::PutU8(uint8_t v) { buffer_.push_back(v); }

void Encoder::PutU16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v & 0xFF));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
}

void Encoder::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutI64(int64_t v) {
  uint64_t u;
  std::memcpy(&u, &v, 8);
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(u >> (8 * i)));
  }
}

void Encoder::PutF64(double v) {
  int64_t bits;
  std::memcpy(&bits, &v, 8);
  PutI64(bits);
}

void Encoder::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

Status Decoder::Need(size_t n) const {
  if (pos_ + n > buffer_.size()) {
    return Status::OutOfRange(
        StrFormat("decode past end: need %zu, have %zu", n,
                  buffer_.size() - pos_));
  }
  return Status::OK();
}

Result<uint8_t> Decoder::GetU8() {
  COSMOS_RETURN_IF_ERROR(Need(1));
  return buffer_[pos_++];
}

Result<uint16_t> Decoder::GetU16() {
  COSMOS_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(buffer_[pos_]) |
               static_cast<uint16_t>(buffer_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> Decoder::GetU32() {
  COSMOS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(buffer_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<int64_t> Decoder::GetI64() {
  COSMOS_RETURN_IF_ERROR(Need(8));
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u |= static_cast<uint64_t>(buffer_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  int64_t v;
  std::memcpy(&v, &u, 8);
  return v;
}

Result<double> Decoder::GetF64() {
  COSMOS_ASSIGN_OR_RETURN(int64_t bits, GetI64());
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

Result<std::string> Decoder::GetString() {
  COSMOS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  COSMOS_RETURN_IF_ERROR(Need(len));
  std::string s(reinterpret_cast<const char*>(buffer_.data() + pos_), len);
  pos_ += len;
  return s;
}

std::vector<uint8_t> EncodeDatagram(const Datagram& d) {
  Encoder enc;
  enc.PutU16(static_cast<uint16_t>(d.stream.size()));
  for (char c : d.stream) enc.PutU8(static_cast<uint8_t>(c));
  enc.PutI64(d.tuple.timestamp());
  enc.PutU16(static_cast<uint16_t>(d.tuple.num_values()));
  for (size_t i = 0; i < d.tuple.num_values(); ++i) {
    const auto& def = d.tuple.schema()->attribute(i);
    enc.PutU16(static_cast<uint16_t>(def.name.size()));
    for (char c : def.name) enc.PutU8(static_cast<uint8_t>(c));
    const Value& v = d.tuple.value(i);
    enc.PutU8(static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt64:
        enc.PutI64(v.AsInt64());
        break;
      case ValueType::kDouble:
        enc.PutF64(v.AsDouble());
        break;
      case ValueType::kString:
        enc.PutString(v.AsString());
        break;
      case ValueType::kBool:
        enc.PutU8(v.AsBool() ? 1 : 0);
        break;
    }
  }
  return enc.Take();
}

Result<Datagram> DecodeDatagram(const std::vector<uint8_t>& bytes) {
  Decoder dec(bytes);
  COSMOS_ASSIGN_OR_RETURN(uint16_t name_len, dec.GetU16());
  std::string stream;
  stream.reserve(name_len);
  for (uint16_t i = 0; i < name_len; ++i) {
    COSMOS_ASSIGN_OR_RETURN(uint8_t c, dec.GetU8());
    stream.push_back(static_cast<char>(c));
  }
  COSMOS_ASSIGN_OR_RETURN(int64_t ts, dec.GetI64());
  COSMOS_ASSIGN_OR_RETURN(uint16_t count, dec.GetU16());

  std::vector<AttributeDef> attrs;
  std::vector<Value> values;
  for (uint16_t i = 0; i < count; ++i) {
    COSMOS_ASSIGN_OR_RETURN(uint16_t alen, dec.GetU16());
    std::string attr;
    attr.reserve(alen);
    for (uint16_t k = 0; k < alen; ++k) {
      COSMOS_ASSIGN_OR_RETURN(uint8_t c, dec.GetU8());
      attr.push_back(static_cast<char>(c));
    }
    COSMOS_ASSIGN_OR_RETURN(uint8_t tag, dec.GetU8());
    ValueType type = static_cast<ValueType>(tag);
    switch (type) {
      case ValueType::kNull:
        values.emplace_back();
        break;
      case ValueType::kInt64: {
        COSMOS_ASSIGN_OR_RETURN(int64_t v, dec.GetI64());
        values.emplace_back(v);
        break;
      }
      case ValueType::kDouble: {
        COSMOS_ASSIGN_OR_RETURN(double v, dec.GetF64());
        values.emplace_back(v);
        break;
      }
      case ValueType::kString: {
        COSMOS_ASSIGN_OR_RETURN(std::string v, dec.GetString());
        values.emplace_back(std::move(v));
        break;
      }
      case ValueType::kBool: {
        COSMOS_ASSIGN_OR_RETURN(uint8_t v, dec.GetU8());
        values.emplace_back(v != 0);
        break;
      }
      default:
        return Status::ParseError(
            StrFormat("bad value type tag %u", tag));
    }
    attrs.emplace_back(std::move(attr), type);
  }
  if (!dec.AtEnd()) {
    return Status::ParseError("trailing bytes after datagram");
  }
  auto schema = std::make_shared<Schema>(stream, std::move(attrs));
  return Datagram{stream, Tuple(std::move(schema), std::move(values), ts)};
}

}  // namespace cosmos
