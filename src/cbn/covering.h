#ifndef COSMOS_CBN_COVERING_H_
#define COSMOS_CBN_COVERING_H_

#include "cbn/profile.h"

namespace cosmos {

// Covering relations between filters and profiles, used for subscription
// aggregation: when a profile already installed on a link covers a new one,
// the new subscription need not be propagated further (classic CBN
// optimization, SIENA-style). All tests are sound and conservative — a
// "true" is a guarantee, a "false" means "could not prove".

// True iff every datagram covered by `narrow` is covered by `wide`
// (requires same stream and clause implication).
bool FilterCovers(const Filter& wide, const Filter& narrow);

// True iff every datagram covered by `narrow` is covered by `wide`, and
// `wide` retains at least the attributes `narrow` needs — its projection
// plus the attributes its filters reference, so the narrow profile stays
// evaluable downstream of early projection ("all" covers anything).
bool ProfileCovers(const Profile& wide, const Profile& narrow);

// Union of two profiles: S/P unions, filter concatenation with
// covered-filter pruning. The result covers exactly the union of the two
// coverages (projections widen to the union of required sets).
Profile MergeProfiles(const Profile& a, const Profile& b);

}  // namespace cosmos

#endif  // COSMOS_CBN_COVERING_H_
