#include "cbn/datagram.h"

// Datagram is header-only; this TU anchors the target in the build.
