#include "cbn/filter.h"

#include <set>

#include "expr/evaluator.h"

namespace cosmos {

bool Filter::Covers(const Datagram& d) const {
  if (d.stream != stream_) return false;
  if (!clause_.MatchesCanonical(d.tuple)) return false;
  for (const auto& r : clause_.residual()) {
    auto res = EvalPredicate(r, d.tuple);
    if (!res.ok() || !*res) return false;
  }
  return true;
}

std::vector<std::string> Filter::ReferencedAttributes() const {
  std::set<std::string> names;
  for (const auto& [attr, c] : clause_.constraints()) names.insert(attr);
  for (const auto& r : clause_.residual()) {
    std::vector<const ColumnRefExpr*> cols;
    CollectColumns(r, &cols);
    for (const auto* c : cols) names.insert(c->FullName());
  }
  return std::vector<std::string>(names.begin(), names.end());
}

std::string Filter::ToString() const {
  return stream_ + ": " + clause_.ToString();
}

}  // namespace cosmos
