#include "cbn/profile.h"

#include <algorithm>

#include "common/string_util.h"

namespace cosmos {

void Profile::AddStream(const std::string& stream,
                        std::vector<std::string> attributes) {
  streams_.insert(stream);
  auto it = projections_.find(stream);
  if (it == projections_.end()) {
    projections_.emplace(stream, std::move(attributes));
  } else if (!attributes.empty()) {
    if (it->second.empty()) {
      // Already "all attributes"; keep it (wider).
    } else {
      for (auto& a : attributes) {
        if (std::find(it->second.begin(), it->second.end(), a) ==
            it->second.end()) {
          it->second.push_back(std::move(a));
        }
      }
    }
  }
}

void Profile::AddFilter(Filter filter) {
  if (streams_.count(filter.stream()) == 0) {
    AddStream(filter.stream());
  }
  filters_by_stream_[filter.stream()].push_back(filters_.size());
  filters_.push_back(std::move(filter));
}

const std::vector<std::string>& Profile::ProjectionOf(
    const std::string& stream) const {
  static const std::vector<std::string> kAll;
  auto it = projections_.find(stream);
  if (it == projections_.end()) return kAll;
  return it->second;
}

std::vector<const Filter*> Profile::FiltersOf(
    const std::string& stream) const {
  std::vector<const Filter*> out;
  auto it = filters_by_stream_.find(stream);
  if (it == filters_by_stream_.end()) return out;
  out.reserve(it->second.size());
  for (size_t i : it->second) out.push_back(&filters_[i]);
  return out;
}

bool Profile::Covers(const Datagram& d) const {
  if (streams_.count(d.stream) == 0) return false;
  auto it = filters_by_stream_.find(d.stream);
  // A stream subscribed without filters is requested unconditionally.
  if (it == filters_by_stream_.end()) return true;
  for (size_t i : it->second) {
    if (filters_[i].Covers(d)) return true;
  }
  return false;
}

std::vector<std::string> Profile::RequiredAttributes(
    const std::string& stream) const {
  const std::vector<std::string>& proj = ProjectionOf(stream);
  if (proj.empty()) return {};  // all attributes
  std::vector<std::string> out = proj;
  auto it = filters_by_stream_.find(stream);
  if (it == filters_by_stream_.end()) return out;
  for (size_t i : it->second) {
    for (auto& a : filters_[i].ReferencedAttributes()) {
      if (std::find(out.begin(), out.end(), a) == out.end()) {
        out.push_back(std::move(a));
      }
    }
  }
  return out;
}

std::string Profile::ToString() const {
  std::string out = "S={";
  out += StrJoin(std::vector<std::string>(streams_.begin(), streams_.end()),
                 ", ");
  out += "} P={";
  std::vector<std::string> projs;
  for (const auto& [stream, attrs] : projections_) {
    projs.push_back(stream + ":" +
                    (attrs.empty() ? "*" : "[" + StrJoin(attrs, ",") + "]"));
  }
  out += StrJoin(projs, "; ");
  out += "} F={";
  std::vector<std::string> fs;
  for (const auto& f : filters_) fs.push_back(f.ToString());
  out += StrJoin(fs, " | ");
  out += "}";
  return out;
}

}  // namespace cosmos
