#ifndef COSMOS_CBN_ROUTER_H_
#define COSMOS_CBN_ROUTER_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cbn/routing_table.h"

namespace cosmos {

// Delivery callback of a local subscriber: receives the (possibly
// projected) tuple of `stream`.
using DeliveryCallback =
    std::function<void(const std::string& stream, const Tuple& tuple)>;

// Projects `d.tuple` onto `attrs` (schema attribute order preserved;
// attributes missing from the current schema — already projected away
// upstream — are skipped). Empty attrs = identity. Schemas are cached per
// (source schema, attribute set) in `cache` to keep the hot path cheap.
class ProjectionCache {
 public:
  Datagram Project(const Datagram& d, const std::vector<std::string>& attrs);

 private:
  // The key RETAINS the source schema: entries are looked up by address,
  // and holding the shared_ptr guarantees no other schema can ever be
  // allocated at a cached address (an address reuse would silently apply a
  // stale plan built for a different layout).
  struct Key {
    std::shared_ptr<const Schema> schema;
    std::string attrs_key;
    bool operator==(const Key& other) const {
      return schema.get() == other.schema.get() &&
             attrs_key == other.attrs_key;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<const void*>{}(k.schema.get()) ^
             std::hash<std::string>{}(k.attrs_key);
    }
  };
  struct Plan {
    std::shared_ptr<const Schema> schema;
    std::vector<size_t> indices;
    bool identity = false;
  };

  const Plan& PlanFor(const std::shared_ptr<const Schema>& schema,
                      const std::vector<std::string>& attrs);

  std::unordered_map<Key, Plan, KeyHash> plans_;
};

// One CBN node: the per-link routing table plus local subscriptions.
// Forwarding decisions are made here; the Network drives the hop-by-hop
// traversal and accounts link bytes.
class Router {
 public:
  explicit Router(NodeId id = -1) : id_(id) {}

  NodeId id() const { return id_; }
  RoutingTable& table() { return table_; }
  const RoutingTable& table() const { return table_; }

  void AddLocal(ProfileId id, ProfilePtr profile, DeliveryCallback callback);
  bool RemoveLocal(ProfileId id);
  const std::vector<std::pair<ProfileId, ProfilePtr>>& local_profiles() const {
    return local_profiles_;
  }

  // Delivers `d` to every matching local subscriber, applying the
  // subscriber's exact projection set P (last-hop projection, paper §3.1).
  // Only subscribers of `d.stream` are evaluated (per-stream index).
  // Returns the number of deliveries.
  size_t DeliverLocal(const Datagram& d, ProjectionCache& cache);

  // One forwarding decision: the datagram to put on the wire toward `link`
  // (early-projected to the union of required attributes of the matching
  // profiles when `early_projection`), or nullopt when no profile matches.
  // Evaluates only the (link, d.stream) bucket of the routing table and
  // reuses internal scratch buffers, so a decision allocates nothing on
  // the no-match and all-match paths.
  std::optional<Datagram> DecideForward(const Datagram& d, NodeId link,
                                        bool early_projection,
                                        ProjectionCache& cache) const;

 private:
  // Rebuilds local_by_stream_ after a removal shifted indices.
  void ReindexLocals();

  NodeId id_;
  RoutingTable table_;
  std::vector<std::pair<ProfileId, ProfilePtr>> local_profiles_;
  std::vector<DeliveryCallback> local_callbacks_;
  // stream -> indices into local_profiles_ subscribed to it.
  std::unordered_map<std::string, std::vector<size_t>> local_by_stream_;
  // Scratch for DecideForward (single-threaded per node, like the table).
  mutable std::vector<const RoutingTable::BucketSlot*> match_scratch_;
  mutable std::vector<std::string> attr_scratch_;
};

}  // namespace cosmos

#endif  // COSMOS_CBN_ROUTER_H_
