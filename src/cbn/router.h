#ifndef COSMOS_CBN_ROUTER_H_
#define COSMOS_CBN_ROUTER_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cbn/routing_table.h"
#include "telemetry/registry.h"

namespace cosmos {

// Delivery callback of a local subscriber: receives the (possibly
// projected) tuple of `stream`.
using DeliveryCallback =
    std::function<void(const std::string& stream, const Tuple& tuple)>;

// Projects `d.tuple` onto `attrs` (schema attribute order preserved;
// attributes missing from the current schema — already projected away
// upstream — are skipped). Empty attrs = identity. Schemas are cached per
// (source schema, attribute set) in `cache` to keep the hot path cheap.
class ProjectionCache {
 public:
  Datagram Project(const Datagram& d, const std::vector<std::string>& attrs);

 private:
  // The key RETAINS the source schema: entries are looked up by address,
  // and holding the shared_ptr guarantees no other schema can ever be
  // allocated at a cached address (an address reuse would silently apply a
  // stale plan built for a different layout).
  struct Key {
    std::shared_ptr<const Schema> schema;
    std::string attrs_key;
    bool operator==(const Key& other) const {
      return schema.get() == other.schema.get() &&
             attrs_key == other.attrs_key;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<const void*>{}(k.schema.get()) ^
             std::hash<std::string>{}(k.attrs_key);
    }
  };
  struct Plan {
    std::shared_ptr<const Schema> schema;
    std::vector<size_t> indices;
    bool identity = false;
  };

  const Plan& PlanFor(const std::shared_ptr<const Schema>& schema,
                      const std::vector<std::string>& attrs);

  std::unordered_map<Key, Plan, KeyHash> plans_;
};

// One CBN node: the per-link routing table plus local subscriptions.
// Forwarding decisions are made here; the Network drives the hop-by-hop
// traversal and accounts link bytes.
class Router {
 public:
  explicit Router(NodeId id = -1) : id_(id) {}

  NodeId id() const { return id_; }
  RoutingTable& table() { return table_; }
  const RoutingTable& table() const { return table_; }

  void AddLocal(ProfileId id, ProfilePtr profile, DeliveryCallback callback);
  bool RemoveLocal(ProfileId id);
  const std::vector<std::pair<ProfileId, ProfilePtr>>& local_profiles() const {
    return local_profiles_;
  }

  // Delivers `d` to every matching local subscriber, applying the
  // subscriber's exact projection set P (last-hop projection, paper §3.1).
  // Only subscribers of `d.stream` are evaluated (per-stream index).
  // Returns the number of deliveries.
  size_t DeliverLocal(const Datagram& d, ProjectionCache& cache);

  // One forwarding decision: the datagram to put on the wire toward `link`
  // (early-projected to the union of required attributes of the matching
  // profiles when `early_projection`), or nullopt when no profile matches.
  // Evaluates only the (link, d.stream) bucket of the routing table and
  // reuses internal scratch buffers, so a decision allocates nothing on
  // the no-match and all-match paths.
  std::optional<Datagram> DecideForward(const Datagram& d, NodeId link,
                                        bool early_projection,
                                        ProjectionCache& cache) const;

  // Toggles the compiled counting matcher on the hot paths (DecideForward
  // and DeliverLocal). On by default; off falls back to the interpreted
  // per-profile Profile::Covers walk (the --interpreted-match escape
  // hatch). In debug builds the compiled path cross-checks the interpreted
  // one on every decision. Toggling drops cached local matchers.
  void set_compiled_matching(bool enabled);
  bool compiled_matching() const { return compiled_matching_; }

  // Attaches (nullptr: detaches) matcher instruments in `metrics`:
  // cbn.matcher_compiles (bucket/local compilations), cbn.matcher_fallbacks
  // (residual evaluations behind the counting stage) and cbn.match_ns.
  // Handles are cached; the histogram samples every 64th match so timing
  // cannot erode the telemetry throughput budget.
  void SetTelemetry(MetricsRegistry* metrics);

 private:
  // Rebuilds local_by_stream_ after a removal shifted indices.
  void ReindexLocals();

  // The compiled matcher over the local subscribers of `stream` (profile
  // indices align with `indices`), built lazily and dropped on any local
  // subscription change.
  const CompiledMatcher& LocalMatcher(const std::string& stream,
                                      const std::vector<size_t>& indices);

  // Runs `m` over `d` into `*hits` with sampled timing and fallback
  // accounting.
  void MatchCompiled(const CompiledMatcher& m, const Datagram& d,
                     std::vector<uint32_t>* hits) const;

  NodeId id_;
  RoutingTable table_;
  std::vector<std::pair<ProfileId, ProfilePtr>> local_profiles_;
  std::vector<DeliveryCallback> local_callbacks_;
  // stream -> indices into local_profiles_ subscribed to it.
  std::unordered_map<std::string, std::vector<size_t>> local_by_stream_;
  // stream -> compiled matcher over its local_by_stream_ entry.
  std::unordered_map<std::string, std::unique_ptr<CompiledMatcher>>
      local_matchers_;
  bool compiled_matching_ = true;
  Counter* matcher_compiles_ = nullptr;
  Counter* matcher_fallbacks_ = nullptr;
  Histogram* match_time_ns_ = nullptr;
  mutable uint64_t match_sample_ = 0;
  // Scratch for DecideForward (single-threaded per node, like the table).
  mutable std::vector<const RoutingTable::BucketSlot*> match_scratch_;
  mutable std::vector<std::string> attr_scratch_;
  mutable CompiledMatcher::Scratch matcher_scratch_;
  mutable std::vector<uint32_t> hit_scratch_;
  // DeliverLocal's hit buffer is swapped out while subscriber callbacks
  // run: a callback that publishes re-enters matching on this router, and
  // the nested Match must not clobber the list being delivered.
  mutable std::vector<uint32_t> local_hit_scratch_;
};

}  // namespace cosmos

#endif  // COSMOS_CBN_ROUTER_H_
