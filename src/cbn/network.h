#ifndef COSMOS_CBN_NETWORK_H_
#define COSMOS_CBN_NETWORK_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "cbn/covering.h"
#include "cbn/router.h"
#include "overlay/dissemination_tree.h"
#include "overlay/graph.h"
#include "sim/simulator.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace cosmos {

// Per-link transfer statistics — the communication-cost model of every
// experiment (bytes and datagrams that crossed the link, in either
// direction).
struct LinkStats {
  uint64_t datagrams = 0;
  uint64_t bytes = 0;
};

// One observable data-layer event. The DST harness installs a sink to
// record an event trace it can print alongside a failing seed; the tap
// costs nothing when unset.
struct TraceEvent {
  enum class Kind {
    kPublish,  // datagram entered the CBN at `node`
    kForward,  // one hop `node` -> `peer`
    kDeliver,  // `count` local deliveries at `node`
    kBuffer,   // held at failed link for the component entered at `peer`
    kDrop,     // lost at failed link `node` -> `peer` (buffering off)
    kRecover,  // buffered datagram re-entering at `node` after repair
  };
  Kind kind = Kind::kPublish;
  NodeId node = -1;
  NodeId peer = -1;
  size_t count = 0;  // kDeliver only
  std::string stream;
  Timestamp timestamp = 0;  // tuple event time
};

const char* TraceEventKindToString(TraceEvent::Kind kind);

using TraceSink = std::function<void(const TraceEvent&)>;

struct NetworkOptions {
  // Early projection (paper §3.1 extension). Off reproduces a traditional
  // filter-only CBN (ablation abl-proj).
  bool early_projection = true;
  // Covering-based pruning of subscription propagation (saves control
  // messages when an already-forwarded profile covers the new one).
  bool covering_prune = true;
  // Advertisement scoping (paper §2: sources advertise their streams,
  // processors advertise their result streams): subscription state is
  // installed only on the tree paths from advertised publishers of the
  // requested streams to the subscriber, instead of network-wide. Requires
  // every publisher to Advertise() before publishing.
  bool advertisement_scoping = false;
  // Buffer datagrams that would cross a failed link and flush them after
  // Repair() (data-layer high availability, paper §2's fault-tolerance
  // module of the data layer).
  bool buffer_on_failure = true;
  // Evaluate forwarding/delivery matches with the compiled per-bucket
  // counting matcher (src/cbn/matcher.h). Off falls back to the
  // interpreted per-profile walk — the cosmos_dst --interpreted-match
  // escape hatch; both modes must produce identical deliveries.
  bool compiled_matching = true;
};

// The content-based network: routers on every node of a dissemination tree.
// Publishing floods the datagram along tree links that have covering
// subscriptions (reverse-path content routing); subscriptions are profiles
// propagated from the subscriber outward.
//
// When a Simulator is attached, forwarding hops are scheduled with the link
// delay (edge weight, interpreted as milliseconds); otherwise delivery is
// synchronous and immediate.
class ContentBasedNetwork {
 public:
  explicit ContentBasedNetwork(DisseminationTree tree,
                               NetworkOptions options = {},
                               Simulator* sim = nullptr);

  const DisseminationTree& tree() const { return tree_; }
  int num_nodes() const { return tree_.num_nodes(); }

  // Declares that `node` publishes `stream` (idempotent). Required before
  // publishing when advertisement_scoping is on; otherwise optional
  // bookkeeping. Installs the entries of existing subscriptions along the
  // new publisher's paths.
  void Advertise(NodeId node, const std::string& stream);

  // Installs `profile` for a subscriber at `node`; `callback` fires on each
  // delivered tuple. Returns the profile id (for Unsubscribe).
  ProfileId Subscribe(NodeId node, Profile profile,
                      DeliveryCallback callback);

  // Removes the subscription everywhere. False when unknown.
  bool Unsubscribe(ProfileId id);

  // Publishes a datagram from `node` (a source or a processor emitting a
  // result stream). Returns the number of local deliveries performed
  // (synchronous mode) or scheduled so far (simulated mode).
  size_t Publish(NodeId node, const Datagram& datagram);

  // ---- fault tolerance (data-layer module of paper Figure 2) ----

  // Takes the tree link (u,v) down. Traffic that would cross it is counted
  // lost — or buffered for post-repair flushing when buffer_on_failure.
  Status FailLink(NodeId u, NodeId v);

  bool HasFailedLinks() const { return !failed_links_.empty(); }
  const std::set<std::pair<NodeId, NodeId>>& failed_links() const {
    return failed_links_;
  }

  // Repairs every failed link by splicing in the cheapest overlay edge
  // across each cut, rebuilding all routing state from the subscription
  // registry and flushing buffered datagrams. `overlay` must contain the
  // current tree's surviving edges.
  Status Repair(const Graph& overlay);

  // Replaces the dissemination tree wholesale (the overlay optimizer's
  // reorganization path): rebuilds every router's state from the
  // subscription registry. Fails if `tree` has a different node count.
  Status RebuildTree(DisseminationTree tree);

  // ---- statistics ----
  const std::map<std::pair<NodeId, NodeId>, LinkStats>& link_stats() const {
    return link_stats_;
  }
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_datagrams_forwarded() const { return total_forwards_; }
  uint64_t total_deliveries() const { return total_deliveries_; }
  // Sum over links of bytes × link weight (delay-weighted traffic).
  double WeightedBytes() const;
  // Subscription control messages sent during propagation.
  uint64_t control_messages() const { return control_messages_; }
  // Datagram forwards dropped at failed links (buffered ones not counted).
  uint64_t lost_datagrams() const { return lost_datagrams_; }
  uint64_t buffered_datagrams() const { return buffered_.size(); }
  // Buffered datagrams delivered into the cut-off component after Repair.
  uint64_t recovered_datagrams() const { return recovered_datagrams_; }
  // Sum of routing-table entries across all nodes (memory cost of
  // subscription state; advertisement scoping shrinks it).
  size_t TotalTableEntries() const;
  void ResetStats();

  const Router& router(NodeId node) const { return routers_[node]; }
  const std::set<NodeId>* PublishersOf(const std::string& stream) const;

  // Installs (or clears, with nullptr) the event-trace tap.
  void set_trace_sink(TraceSink sink) { trace_sink_ = std::move(sink); }

  // ---- telemetry ----

  // Attaches instruments: counters in `metrics` (stream-labeled families
  // plus per-link and total counts) and Chrome-trace slices for every hop
  // and delivery in `tracer`. Either may be nullptr (off). Handles are
  // cached here once, so the steady-state cost per hop is plain adds.
  void SetTelemetry(MetricsRegistry* metrics, Tracer* tracer);

  // Cumulative serialized bytes published per stream, maintained even with
  // telemetry detached — the SelfTuner's measured-rate source.
  const std::map<std::string, uint64_t>& published_bytes_by_stream() const {
    return published_bytes_by_stream_;
  }

  // Visits every live subscription as (subscriber node, profile).
  void ForEachSubscription(
      const std::function<void(NodeId, const Profile&)>& fn) const;

 private:
  struct Subscription {
    NodeId node = -1;
    ProfilePtr profile;
    DeliveryCallback callback;
  };

  void PropagateSubscription(NodeId subscriber, ProfileId id,
                             const ProfilePtr& profile);
  // Installs routing entries for one subscription along the tree path from
  // `publisher` to `subscriber` (advertisement-scoped propagation).
  void InstallAlongPath(NodeId publisher, NodeId subscriber, ProfileId id,
                        const ProfilePtr& profile);
  // Nodes allowed to carry entries for this subscription; nullopt = all.
  std::optional<std::set<NodeId>> ScopeOf(NodeId subscriber,
                                          const Profile& profile) const;
  // Processes `d` at `node` arriving from `from` (-1 = published locally).
  // When `allowed` is non-null, *delivery* is restricted to nodes with
  // allowed[v] == true (post-repair flushing into the side a failed link
  // cut off); forwarding is unrestricted so the flush can route through
  // already-served nodes when the repaired tree demands it.
  size_t Process(NodeId node, NodeId from, const Datagram& d,
                 const std::vector<bool>* allowed = nullptr);
  // Cached handles of the stream-labeled counter families. Created lazily
  // on the first datagram of each stream, then plain pointer adds.
  struct StreamCounters {
    Counter* published = nullptr;
    Counter* published_bytes = nullptr;
    Counter* delivered = nullptr;
    Counter* delivered_recovery = nullptr;
    Counter* buffered = nullptr;
    Counter* flushed = nullptr;
    Counter* dropped = nullptr;
    Counter* forwarded = nullptr;
    Counter* forwarded_bytes = nullptr;
  };
  StreamCounters* StreamMetrics(const std::string& stream);
  struct LinkCounters {
    Counter* datagrams = nullptr;
    Counter* bytes = nullptr;
  };
  // Counts one subscription control message (and its telemetry counter).
  void CountControl();
  // Membership of `start`'s side of the tree edge (blocked_from, start) —
  // the nodes a datagram stopped at that edge has not reached.
  std::vector<bool> ComponentBeyondEdge(NodeId start,
                                        NodeId blocked_from) const;
  void AccountLink(NodeId u, NodeId v, const Datagram& d,
                   StreamCounters* sc);
  void Trace(TraceEvent::Kind kind, NodeId node, NodeId peer, size_t count,
             const Datagram& d) const;
  bool LinkFailed(NodeId u, NodeId v) const {
    return failed_links_.count(DisseminationTree::EdgeKey(u, v)) > 0;
  }
  // Clears all routing state and reinstalls every live subscription.
  void ReinstallAllSubscriptions();
  // Delivers every buffered datagram into its recorded cut-off component
  // and counts it recovered. Called after Repair()/RebuildTree() restored
  // a connected tree.
  void FlushBuffered();
  // Drops link_stats_ entries for edges no longer in tree_ (repair/rebuild
  // replaced them), so WeightedBytes() never charges stale keys at the
  // fallback weight.
  void PruneStaleLinkStats();

  DisseminationTree tree_;
  NetworkOptions options_;
  Simulator* sim_;
  TraceSink trace_sink_;
  std::vector<Router> routers_;
  ProjectionCache projection_cache_;
  ProfileId next_profile_id_ = 1;

  std::map<ProfileId, Subscription> subscriptions_;
  std::map<std::string, std::set<NodeId>> advertisements_;
  std::set<std::pair<NodeId, NodeId>> failed_links_;
  struct Buffered {
    NodeId entry;               // far endpoint of the failed link
    // Nodes on the far side of the failed link at buffer time — the ones
    // that have not seen the datagram. Flushing delivers only to them.
    std::vector<bool> allowed;
    Datagram datagram;
  };
  std::deque<Buffered> buffered_;

  MetricsRegistry* metrics_ = nullptr;
  Tracer* tracer_ = nullptr;
  std::map<std::string, StreamCounters> stream_counters_;
  std::map<std::pair<NodeId, NodeId>, LinkCounters> link_counters_;
  Counter* forwards_counter_ = nullptr;
  Counter* forwarded_bytes_counter_ = nullptr;
  Counter* recovery_forwards_counter_ = nullptr;
  Counter* deliveries_counter_ = nullptr;
  Counter* matches_counter_ = nullptr;
  Counter* control_counter_ = nullptr;
  Histogram* datagram_bytes_hist_ = nullptr;
  std::map<std::string, uint64_t> published_bytes_by_stream_;

  std::map<std::pair<NodeId, NodeId>, LinkStats> link_stats_;
  uint64_t total_bytes_ = 0;
  uint64_t total_forwards_ = 0;
  uint64_t total_deliveries_ = 0;
  uint64_t control_messages_ = 0;
  uint64_t lost_datagrams_ = 0;
  uint64_t recovered_datagrams_ = 0;
};

}  // namespace cosmos

#endif  // COSMOS_CBN_NETWORK_H_
