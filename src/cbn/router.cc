#include "cbn/router.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"

namespace cosmos {

const ProjectionCache::Plan& ProjectionCache::PlanFor(
    const Schema& schema, const std::vector<std::string>& attrs) {
  Key key{&schema, StrJoin(attrs, ",")};
  auto it = plans_.find(key);
  if (it != plans_.end()) return it->second;

  Plan plan;
  if (attrs.empty()) {
    plan.identity = true;
  } else {
    std::vector<AttributeDef> defs;
    // Preserve the source schema's attribute order.
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      const auto& def = schema.attribute(i);
      if (std::find(attrs.begin(), attrs.end(), def.name) != attrs.end()) {
        plan.indices.push_back(i);
        defs.push_back(def);
      }
    }
    if (plan.indices.size() == schema.num_attributes()) {
      plan.identity = true;
    } else {
      plan.schema = std::make_shared<Schema>(schema.stream_name(),
                                             std::move(defs));
    }
  }
  return plans_.emplace(std::move(key), std::move(plan)).first->second;
}

Datagram ProjectionCache::Project(const Datagram& d,
                                  const std::vector<std::string>& attrs) {
  const Plan& plan = PlanFor(*d.tuple.schema(), attrs);
  if (plan.identity) return d;
  return Datagram{d.stream, d.tuple.Project(plan.indices, plan.schema)};
}

void Router::AddLocal(ProfileId id, ProfilePtr profile,
                      DeliveryCallback callback) {
  local_profiles_.emplace_back(id, std::move(profile));
  local_callbacks_.push_back(std::move(callback));
}

bool Router::RemoveLocal(ProfileId id) {
  for (size_t i = 0; i < local_profiles_.size(); ++i) {
    if (local_profiles_[i].first == id) {
      local_profiles_.erase(local_profiles_.begin() + static_cast<long>(i));
      local_callbacks_.erase(local_callbacks_.begin() +
                             static_cast<long>(i));
      return true;
    }
  }
  return false;
}

size_t Router::DeliverLocal(const Datagram& d, ProjectionCache& cache) {
  size_t delivered = 0;
  for (size_t i = 0; i < local_profiles_.size(); ++i) {
    const Profile& p = *local_profiles_[i].second;
    if (!p.Covers(d)) continue;
    // Last-hop projection: the subscriber receives exactly P(stream).
    Datagram out = cache.Project(d, p.ProjectionOf(d.stream));
    if (local_callbacks_[i]) {
      local_callbacks_[i](out.stream, out.tuple);
    }
    ++delivered;
  }
  return delivered;
}

std::optional<Datagram> Router::DecideForward(const Datagram& d, NodeId link,
                                              bool early_projection,
                                              ProjectionCache& cache) const {
  std::vector<const Profile*> matching = table_.MatchingProfiles(link, d);
  if (matching.empty()) return std::nullopt;
  if (!early_projection) return d;

  // Union of the attributes any matching downstream profile still needs
  // (its projection set plus its filters' attributes, so re-evaluation at
  // later hops stays possible). Any profile wanting all attributes disables
  // projection on this link.
  std::set<std::string> needed;
  for (const Profile* p : matching) {
    std::vector<std::string> req = p->RequiredAttributes(d.stream);
    if (req.empty()) return d;  // wants all attributes
    needed.insert(req.begin(), req.end());
  }
  return cache.Project(
      d, std::vector<std::string>(needed.begin(), needed.end()));
}

}  // namespace cosmos
