#include "cbn/router.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace cosmos {

const ProjectionCache::Plan& ProjectionCache::PlanFor(
    const std::shared_ptr<const Schema>& schema_ptr,
    const std::vector<std::string>& attrs) {
  const Schema& schema = *schema_ptr;
  Key key{schema_ptr, StrJoin(attrs, ",")};
  auto it = plans_.find(key);
  if (it != plans_.end()) return it->second;

  Plan plan;
  if (attrs.empty()) {
    plan.identity = true;
  } else {
    std::vector<AttributeDef> defs;
    // Preserve the source schema's attribute order.
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      const auto& def = schema.attribute(i);
      if (std::find(attrs.begin(), attrs.end(), def.name) != attrs.end()) {
        plan.indices.push_back(i);
        defs.push_back(def);
      }
    }
    if (plan.indices.size() == schema.num_attributes()) {
      plan.identity = true;
    } else {
      plan.schema = std::make_shared<Schema>(schema.stream_name(),
                                             std::move(defs));
    }
  }
  return plans_.emplace(std::move(key), std::move(plan)).first->second;
}

Datagram ProjectionCache::Project(const Datagram& d,
                                  const std::vector<std::string>& attrs) {
  const Plan& plan = PlanFor(d.tuple.schema(), attrs);
  if (plan.identity) return d;
  return Datagram{d.stream, d.tuple.Project(plan.indices, plan.schema)};
}

void Router::AddLocal(ProfileId id, ProfilePtr profile,
                      DeliveryCallback callback) {
  size_t index = local_profiles_.size();
  for (const auto& stream : profile->streams()) {
    local_by_stream_[stream].push_back(index);
  }
  local_profiles_.emplace_back(id, std::move(profile));
  local_callbacks_.push_back(std::move(callback));
  local_matchers_.clear();
}

void Router::ReindexLocals() {
  local_by_stream_.clear();
  for (size_t i = 0; i < local_profiles_.size(); ++i) {
    for (const auto& stream : local_profiles_[i].second->streams()) {
      local_by_stream_[stream].push_back(i);
    }
  }
  local_matchers_.clear();
}

void Router::set_compiled_matching(bool enabled) {
  compiled_matching_ = enabled;
  local_matchers_.clear();
}

void Router::SetTelemetry(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    matcher_compiles_ = nullptr;
    matcher_fallbacks_ = nullptr;
    match_time_ns_ = nullptr;
    return;
  }
  matcher_compiles_ = metrics->GetCounter("cbn.matcher_compiles");
  matcher_fallbacks_ = metrics->GetCounter("cbn.matcher_fallbacks");
  match_time_ns_ = metrics->GetHistogram("cbn.match_ns");
}

const CompiledMatcher& Router::LocalMatcher(
    const std::string& stream, const std::vector<size_t>& indices) {
  auto it = local_matchers_.find(stream);
  if (it != local_matchers_.end()) return *it->second;
  std::vector<const Profile*> profiles;
  profiles.reserve(indices.size());
  for (size_t i : indices) profiles.push_back(local_profiles_[i].second.get());
  if (matcher_compiles_ != nullptr) matcher_compiles_->Increment();
  return *local_matchers_
              .emplace(stream,
                       std::make_unique<CompiledMatcher>(stream, profiles))
              .first->second;
}

void Router::MatchCompiled(const CompiledMatcher& m, const Datagram& d,
                           std::vector<uint32_t>* hits) const {
  const bool timed =
      match_time_ns_ != nullptr && (match_sample_++ & 63) == 0;
  std::chrono::steady_clock::time_point start;
  if (timed) start = std::chrono::steady_clock::now();
  m.Match(d, &matcher_scratch_, hits);
  if (timed) {
    match_time_ns_->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  if (matcher_fallbacks_ != nullptr && matcher_scratch_.fallback_evals > 0) {
    matcher_fallbacks_->Add(matcher_scratch_.fallback_evals);
  }
}

bool Router::RemoveLocal(ProfileId id) {
  for (size_t i = 0; i < local_profiles_.size(); ++i) {
    if (local_profiles_[i].first == id) {
      local_profiles_.erase(local_profiles_.begin() + static_cast<long>(i));
      local_callbacks_.erase(local_callbacks_.begin() +
                             static_cast<long>(i));
      ReindexLocals();
      return true;
    }
  }
  return false;
}

size_t Router::DeliverLocal(const Datagram& d, ProjectionCache& cache) {
  auto it = local_by_stream_.find(d.stream);
  if (it == local_by_stream_.end()) return 0;
  size_t delivered = 0;
  if (compiled_matching_) {
    const CompiledMatcher& m = LocalMatcher(d.stream, it->second);
    // Take the reusable hit buffer for the duration of the callbacks: a
    // callback that publishes re-enters this router and must not clobber
    // the list being delivered (it finds the member empty and regrows).
    std::vector<uint32_t> hits;
    std::swap(hits, local_hit_scratch_);
    MatchCompiled(m, d, &hits);
#ifndef NDEBUG
    {
      // Compiled output must equal the interpreted walk, slot by slot.
      size_t k = 0;
      for (size_t j = 0; j < it->second.size(); ++j) {
        const bool interpreted = local_profiles_[it->second[j]].second->Covers(d);
        const bool compiled = k < hits.size() && hits[k] == j;
        COSMOS_DCHECK_EQ(compiled, interpreted)
            << "compiled/interpreted divergence for local subscriber "
            << local_profiles_[it->second[j]].first << " on " << d.stream;
        if (compiled) ++k;
      }
    }
#endif
    for (uint32_t h : hits) {
      const size_t i = it->second[h];
      const Profile& p = *local_profiles_[i].second;
      // Last-hop projection: the subscriber receives exactly P(stream).
      Datagram out = cache.Project(d, p.ProjectionOf(d.stream));
      if (local_callbacks_[i]) {
        local_callbacks_[i](out.stream, out.tuple);
      }
      ++delivered;
    }
    hits.clear();
    std::swap(hits, local_hit_scratch_);
    return delivered;
  }
  for (size_t i : it->second) {
    const Profile& p = *local_profiles_[i].second;
    if (!p.Covers(d)) continue;
    // Last-hop projection: the subscriber receives exactly P(stream).
    Datagram out = cache.Project(d, p.ProjectionOf(d.stream));
    if (local_callbacks_[i]) {
      local_callbacks_[i](out.stream, out.tuple);
    }
    ++delivered;
  }
  return delivered;
}

std::optional<Datagram> Router::DecideForward(const Datagram& d, NodeId link,
                                              bool early_projection,
                                              ProjectionCache& cache) const {
  const RoutingTable::StreamBucket* bucket = table_.BucketFor(link, d.stream);
  if (bucket == nullptr) return std::nullopt;
  match_scratch_.clear();
  const std::vector<RoutingTable::BucketSlot>& slots = bucket->slots();
  if (compiled_matching_) {
    const bool was_compiled = bucket->has_compiled();
    const CompiledMatcher& m = bucket->Compiled(d.stream);
    if (!was_compiled && matcher_compiles_ != nullptr) {
      matcher_compiles_->Increment();
    }
    MatchCompiled(m, d, &hit_scratch_);
#ifndef NDEBUG
    {
      // Compiled output must equal the interpreted walk, slot by slot.
      size_t k = 0;
      for (size_t i = 0; i < slots.size(); ++i) {
        const bool interpreted = slots[i].profile->Covers(d);
        const bool compiled =
            k < hit_scratch_.size() && hit_scratch_[k] == i;
        COSMOS_DCHECK_EQ(compiled, interpreted)
            << "compiled/interpreted divergence at slot " << i << " (entry "
            << slots[i].id << ") on stream " << d.stream;
        if (compiled) ++k;
      }
    }
#endif
    for (uint32_t h : hit_scratch_) match_scratch_.push_back(&slots[h]);
  } else {
    for (const auto& slot : slots) {
      if (slot.profile->Covers(d)) match_scratch_.push_back(&slot);
    }
  }
  if (match_scratch_.empty()) return std::nullopt;
  if (!early_projection) return d;

  // Union of the attributes any matching downstream profile still needs
  // (its projection set plus its filters' attributes, so re-evaluation at
  // later hops stays possible). Any profile wanting all attributes disables
  // projection on this link. When every bucket entry matched — the common
  // case for stream-level subscriptions — the bucket's cached union is the
  // answer and nothing is rebuilt.
  if (match_scratch_.size() == bucket->slots().size()) {
    bool wants_all = false;
    const std::vector<std::string>& needed = bucket->UnionRequired(&wants_all);
    if (wants_all) return d;
    return cache.Project(d, needed);
  }
  attr_scratch_.clear();
  for (const RoutingTable::BucketSlot* slot : match_scratch_) {
    if (slot->required.empty()) return d;  // wants all attributes
    // Slot `required` sets are sorted; merge-insert keeps the union sorted
    // so equal attribute sets share one projection-cache plan.
    for (const auto& attr : slot->required) {
      auto pos = std::lower_bound(attr_scratch_.begin(), attr_scratch_.end(),
                                  attr);
      if (pos == attr_scratch_.end() || *pos != attr) {
        attr_scratch_.insert(pos, attr);
      }
    }
  }
  return cache.Project(d, attr_scratch_);
}

}  // namespace cosmos
