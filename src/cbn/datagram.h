#ifndef COSMOS_CBN_DATAGRAM_H_
#define COSMOS_CBN_DATAGRAM_H_

#include <string>

#include "stream/tuple.h"

namespace cosmos {

// The unit of transport in the content-based network: one tuple of one
// named stream (paper §3: "each datagram consists of several
// attribute-value pairs" and belongs to exactly one stream). The attribute
// names/types come from the tuple's schema, which may be a projected subset
// of the stream's full schema after early projection.
struct Datagram {
  std::string stream;
  Tuple tuple;

  // Wire size: stream-name header + encoded tuple. This is the quantity the
  // communication-cost model accumulates per link.
  size_t SerializedSize() const {
    return 2 + stream.size() + tuple.SerializedSize();
  }

  std::string ToString() const { return stream + ":" + tuple.ToString(); }
};

}  // namespace cosmos

#endif  // COSMOS_CBN_DATAGRAM_H_
