#ifndef COSMOS_CBN_MATCHER_H_
#define COSMOS_CBN_MATCHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cbn/profile.h"
#include "expr/interval.h"

namespace cosmos {

// Compiled counting matcher over every profile of one (link, stream)
// routing-table bucket. Instead of tree-walking each profile's clause per
// datagram, compilation inverts the bucket: every canonical attribute
// constraint of every conjunct becomes an entry in a per-attribute table
// (sorted point equalities, intervals sorted by lower bound, or a general
// residue list), attribute names are resolved to schema column offsets once
// per schema, and a single pass over the datagram's attributes bumps a
// counter per conjunct. A conjunct whose counter reaches its arity (its
// constraint count) is satisfied; a profile matches when any of its
// conjuncts is satisfied (its filters are a disjunction) or when it
// requests the stream without filters. Clause residuals — the conjuncts
// canonicalization could not turn into per-attribute constraints — fall
// back to the interpreted Evaluator, but only for conjuncts that already
// passed the counting stage.
//
// Semantics are exactly those of the interpreted path
// (Profile::Covers -> Filter::Covers -> MatchesCanonical + residuals):
//  - an attribute named by any constraint must be present in the datagram's
//    schema, even when the constraint is vacuous (presence requirement);
//  - unsatisfiable conjuncts can never match and are dropped at compile
//    time (dropping the whole conjunct, never a single constraint, so
//    arities stay truthful);
//  - type mismatches (numeric constraint vs string value, ...) fail the
//    constraint just like AttrConstraint::Matches.
// Router cross-checks this equivalence against the interpreted path on
// every decision in debug builds.
//
// A matcher is immutable after construction and holds raw Profile/Filter
// pointers; the owning bucket must rebuild it whenever the profile set
// changes (RoutingTable's IndexEntry/DeindexEntry invalidation hooks do
// this, alongside the cached attribute unions).
class CompiledMatcher {
 public:
  // Reusable per-caller scratch: counter array indexed by conjunct, the
  // touched-conjunct list that makes the post-match reset O(work done)
  // instead of O(table size), and per-profile seen flags that dedupe
  // disjunctions. All vectors grow monotonically and are reset to their
  // empty/zero state before Match returns.
  struct Scratch {
    std::vector<uint32_t> counters;
    std::vector<uint32_t> touched;
    std::vector<uint8_t> profile_seen;
    // Residual (fallback) evaluations performed by the last Match call.
    uint64_t fallback_evals = 0;
  };

  // Compiles the matcher for `profiles` (the bucket's slots, in slot
  // order) against `stream`. Profiles must outlive the matcher.
  CompiledMatcher(std::string stream,
                  const std::vector<const Profile*>& profiles);

  const std::string& stream() const { return stream_; }
  size_t num_profiles() const { return num_profiles_; }
  size_t num_conjuncts() const { return conjuncts_.size(); }
  size_t num_attribute_tables() const { return attrs_.size(); }

  // Fills `*out` with the indices (ascending, into the compile-time
  // profile vector) of the profiles covering `d`. `d.stream` must equal
  // stream(). Allocation-free once scratch and `*out` have grown to the
  // bucket's high-water mark.
  void Match(const Datagram& d, Scratch* scratch,
             std::vector<uint32_t>* out) const;

 private:
  struct EqEntry {
    double value = 0.0;
    uint32_t conjunct = 0;
  };
  struct RangeEntry {
    Interval interval;
    uint32_t conjunct = 0;
  };
  // Constraints the numeric tables cannot express (string/bool equalities,
  // disequalities, presence-only constraints): evaluated with the
  // interpreted AttrConstraint::Matches, but still only once per attribute
  // per datagram.
  struct MiscEntry {
    AttrConstraint constraint;
    uint32_t conjunct = 0;
  };
  struct AttrTable {
    std::string name;
    std::vector<EqEntry> eq;       // sorted by value
    std::vector<RangeEntry> range;  // sorted by interval lower bound
    std::vector<MiscEntry> misc;
  };
  struct Conjunct {
    uint32_t profile = 0;
    uint32_t arity = 0;
    // Clause whose residual to evaluate when the counting stage passes;
    // nullptr when the conjunct has no residual.
    const ConjunctiveClause* residual = nullptr;
  };
  // Column offsets of attrs_ (aligned; -1 = absent) in one tuple schema.
  // Retaining the schema makes the by-address cache ABA-safe: no other
  // schema can be allocated at a cached address while the entry lives.
  struct Binding {
    std::shared_ptr<const Schema> schema;
    std::vector<int32_t> offsets;
  };

  const std::vector<int32_t>& OffsetsFor(
      const std::shared_ptr<const Schema>& schema) const;

  std::string stream_;
  size_t num_profiles_ = 0;
  std::vector<AttrTable> attrs_;
  // attrs_[i].name, aligned — the argument to Schema::ResolveOffsets.
  std::vector<std::string> attr_names_;
  std::vector<Conjunct> conjuncts_;
  // Conjuncts with no canonical constraints (arity 0): satisfied by every
  // datagram of the stream, subject only to their residual.
  std::vector<uint32_t> zero_arity_;
  // Profiles requesting the stream with no filters at all: unconditional.
  std::vector<uint32_t> unconditional_;
  mutable std::unordered_map<const Schema*, Binding> bindings_;
};

}  // namespace cosmos

#endif  // COSMOS_CBN_MATCHER_H_
