#include "cbn/network.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>

#include "common/logging.h"
#include "common/string_util.h"

namespace cosmos {

const char* TraceEventKindToString(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kPublish:
      return "publish";
    case TraceEvent::Kind::kForward:
      return "forward";
    case TraceEvent::Kind::kDeliver:
      return "deliver";
    case TraceEvent::Kind::kBuffer:
      return "buffer";
    case TraceEvent::Kind::kDrop:
      return "drop";
    case TraceEvent::Kind::kRecover:
      return "recover";
  }
  return "?";
}

void ContentBasedNetwork::Trace(TraceEvent::Kind kind, NodeId node,
                                NodeId peer, size_t count,
                                const Datagram& d) const {
  if (!trace_sink_) return;
  TraceEvent ev;
  ev.kind = kind;
  ev.node = node;
  ev.peer = peer;
  ev.count = count;
  ev.stream = d.stream;
  ev.timestamp = d.tuple.timestamp();
  trace_sink_(ev);
}

ContentBasedNetwork::ContentBasedNetwork(DisseminationTree tree,
                                         NetworkOptions options,
                                         Simulator* sim)
    : tree_(std::move(tree)), options_(options), sim_(sim) {
  routers_.reserve(tree_.num_nodes());
  for (NodeId i = 0; i < tree_.num_nodes(); ++i) {
    routers_.emplace_back(i);
    routers_.back().set_compiled_matching(options_.compiled_matching);
  }
}

const std::set<NodeId>* ContentBasedNetwork::PublishersOf(
    const std::string& stream) const {
  auto it = advertisements_.find(stream);
  return it == advertisements_.end() ? nullptr : &it->second;
}

void ContentBasedNetwork::SetTelemetry(MetricsRegistry* metrics,
                                       Tracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
  stream_counters_.clear();
  link_counters_.clear();
  for (auto& r : routers_) r.SetTelemetry(metrics_);
  if (metrics_ == nullptr) {
    forwards_counter_ = nullptr;
    forwarded_bytes_counter_ = nullptr;
    recovery_forwards_counter_ = nullptr;
    deliveries_counter_ = nullptr;
    matches_counter_ = nullptr;
    control_counter_ = nullptr;
    datagram_bytes_hist_ = nullptr;
    return;
  }
  forwards_counter_ = metrics_->GetCounter("cbn.forwards");
  forwarded_bytes_counter_ = metrics_->GetCounter("cbn.forwarded_bytes");
  recovery_forwards_counter_ = metrics_->GetCounter("cbn.recovery_forwards");
  deliveries_counter_ = metrics_->GetCounter("cbn.deliveries");
  matches_counter_ = metrics_->GetCounter("cbn.matches");
  control_counter_ = metrics_->GetCounter("cbn.control_messages");
  datagram_bytes_hist_ = metrics_->GetHistogram("cbn.datagram_bytes");
}

ContentBasedNetwork::StreamCounters* ContentBasedNetwork::StreamMetrics(
    const std::string& stream) {
  auto it = stream_counters_.find(stream);
  if (it != stream_counters_.end()) return &it->second;
  StreamCounters sc;
  sc.published = metrics_->GetCounter("cbn.published", "stream", stream);
  sc.published_bytes =
      metrics_->GetCounter("cbn.published_bytes", "stream", stream);
  sc.delivered = metrics_->GetCounter("cbn.delivered", "stream", stream);
  sc.delivered_recovery =
      metrics_->GetCounter("cbn.delivered_recovery", "stream", stream);
  sc.buffered = metrics_->GetCounter("cbn.buffered", "stream", stream);
  sc.flushed = metrics_->GetCounter("cbn.flushed", "stream", stream);
  sc.dropped = metrics_->GetCounter("cbn.dropped", "stream", stream);
  sc.forwarded = metrics_->GetCounter("cbn.forwarded", "stream", stream);
  sc.forwarded_bytes =
      metrics_->GetCounter("cbn.forwarded_bytes", "stream", stream);
  return &stream_counters_.emplace(stream, sc).first->second;
}

void ContentBasedNetwork::CountControl() {
  ++control_messages_;
  if (control_counter_ != nullptr) control_counter_->Increment();
}

void ContentBasedNetwork::ForEachSubscription(
    const std::function<void(NodeId, const Profile&)>& fn) const {
  for (const auto& [id, sub] : subscriptions_) {
    fn(sub.node, *sub.profile);
  }
}

void ContentBasedNetwork::Advertise(NodeId node, const std::string& stream) {
  COSMOS_CHECK(node >= 0 && node < num_nodes()) << "node " << node;
  auto& publishers = advertisements_[stream];
  if (!publishers.insert(node).second) return;  // already advertised
  if (!options_.advertisement_scoping) return;
  // A new publisher appeared: existing subscriptions interested in this
  // stream need routing entries along the new publisher->subscriber paths.
  for (const auto& [id, sub] : subscriptions_) {
    if (!sub.profile->WantsStream(stream)) continue;
    InstallAlongPath(node, sub.node, id, sub.profile);
  }
}

ProfileId ContentBasedNetwork::Subscribe(NodeId node, Profile profile,
                                         DeliveryCallback callback) {
  COSMOS_CHECK(node >= 0 && node < num_nodes()) << "node " << node;
  ProfileId id = next_profile_id_++;
  auto shared = std::make_shared<const Profile>(std::move(profile));
  routers_[node].AddLocal(id, shared, callback);
  subscriptions_[id] = Subscription{node, shared, std::move(callback)};
  PropagateSubscription(node, id, shared);
  return id;
}

std::optional<std::set<NodeId>> ContentBasedNetwork::ScopeOf(
    NodeId subscriber, const Profile& profile) const {
  if (!options_.advertisement_scoping) return std::nullopt;
  std::set<NodeId> scope;
  for (const auto& stream : profile.streams()) {
    const std::set<NodeId>* publishers = PublishersOf(stream);
    if (publishers == nullptr) continue;
    for (NodeId p : *publishers) {
      for (NodeId n : tree_.Path(p, subscriber)) scope.insert(n);
    }
  }
  return scope;
}

void ContentBasedNetwork::InstallAlongPath(NodeId publisher,
                                           NodeId subscriber, ProfileId id,
                                           const ProfilePtr& profile) {
  auto path = tree_.Path(publisher, subscriber);
  // path runs publisher -> ... -> subscriber; at each intermediate node the
  // entry points to the next hop (toward the subscriber).
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    NodeId node = path[i];
    NodeId toward = path[i + 1];
    RoutingTable& table = routers_[node].table();
    if (!table.Contains(toward, id)) {
      table.Add(toward, id, profile);
      CountControl();
    }
  }
}

void ContentBasedNetwork::PropagateSubscription(NodeId subscriber,
                                                ProfileId id,
                                                const ProfilePtr& profile) {
  auto scope = ScopeOf(subscriber, *profile);
  if (scope.has_value()) {
    // Advertisement-scoped installation: only publisher->subscriber paths.
    for (const auto& stream : profile->streams()) {
      const std::set<NodeId>* publishers = PublishersOf(stream);
      if (publishers == nullptr) continue;
      for (NodeId p : *publishers) {
        InstallAlongPath(p, subscriber, id, profile);
      }
    }
    return;
  }

  // Flood outward from the subscriber. A node reached from neighbor `prev`
  // (the side the subscriber lies on) installs (prev -> profile) and keeps
  // flooding unless covering-prune applies: if a profile already installed
  // on that same link covers the new one, nodes farther out would never
  // route anything new toward us, so propagation stops.
  struct Hop {
    NodeId node;
    NodeId prev;
  };
  std::queue<Hop> q;
  for (const auto& [n, w] : tree_.Neighbors(subscriber)) {
    q.push(Hop{n, subscriber});
    CountControl();
  }
  while (!q.empty()) {
    Hop h = q.front();
    q.pop();
    RoutingTable& table = routers_[h.node].table();
    bool covered = false;
    if (options_.covering_prune) {
      for (const auto& e : table.EntriesFor(h.prev)) {
        if (e.id != id && ProfileCovers(*e.profile, *profile)) {
          covered = true;
          break;
        }
      }
    }
    table.AddUnique(h.prev, id, profile);
    if (covered) continue;  // no need to announce farther out
    for (const auto& [n, w] : tree_.Neighbors(h.node)) {
      if (n == h.prev) continue;
      q.push(Hop{n, h.node});
      CountControl();
    }
  }
}

bool ContentBasedNetwork::Unsubscribe(ProfileId id) {
  ProfilePtr removed;
  auto sit = subscriptions_.find(id);
  if (sit != subscriptions_.end()) {
    removed = sit->second.profile;
    subscriptions_.erase(sit);
  }
  bool found = removed != nullptr;
  for (auto& r : routers_) {
    if (r.RemoveLocal(id)) found = true;
    if (r.table().RemoveEverywhere(id) > 0) found = true;
  }
  // Covering-prune soundness: subscriptions whose propagation was pruned
  // under the removed profile would go deaf. Re-propagate every remaining
  // subscription that shares a stream with it; AddUnique makes this
  // idempotent where entries already exist.
  if (found && options_.covering_prune && removed != nullptr) {
    for (const auto& [other_id, sub] : subscriptions_) {
      bool overlaps = false;
      for (const auto& stream : sub.profile->streams()) {
        if (removed->WantsStream(stream)) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) {
        PropagateSubscription(sub.node, other_id, sub.profile);
      }
    }
  }
  return found;
}

void ContentBasedNetwork::AccountLink(NodeId u, NodeId v, const Datagram& d,
                                      StreamCounters* sc) {
  size_t size = d.SerializedSize();
  LinkStats& stats = link_stats_[DisseminationTree::EdgeKey(u, v)];
  ++stats.datagrams;
  stats.bytes += size;
  total_bytes_ += size;
  ++total_forwards_;
  if (metrics_ != nullptr) {
    forwards_counter_->Increment();
    forwarded_bytes_counter_->Add(size);
    datagram_bytes_hist_->Observe(size);
    sc->forwarded->Increment();
    sc->forwarded_bytes->Add(size);
    auto key = DisseminationTree::EdgeKey(u, v);
    auto it = link_counters_.find(key);
    if (it == link_counters_.end()) {
      std::string label =
          StrFormat("%d-%d", static_cast<int>(key.first),
                    static_cast<int>(key.second));
      LinkCounters lc;
      lc.datagrams = metrics_->GetCounter("cbn.link_datagrams", "link", label);
      lc.bytes = metrics_->GetCounter("cbn.link_bytes", "link", label);
      it = link_counters_.emplace(key, lc).first;
    }
    it->second.datagrams->Increment();
    it->second.bytes->Add(size);
  }
}

std::vector<bool> ContentBasedNetwork::ComponentBeyondEdge(
    NodeId start, NodeId blocked_from) const {
  // Membership of `start`'s side of the single tree edge
  // (blocked_from, start): exactly the nodes the datagram stopped at that
  // edge never reached. Other failed links are crossed freely — nodes
  // beyond them have not seen the datagram either (the tree path is
  // unique), and distinct buffered copies of one datagram always record
  // disjoint sides.
  std::vector<bool> in(num_nodes(), false);
  std::queue<NodeId> q;
  q.push(start);
  in[start] = true;
  const auto blocked = DisseminationTree::EdgeKey(start, blocked_from);
  while (!q.empty()) {
    NodeId u = q.front();
    q.pop();
    for (const auto& [v, w] : tree_.Neighbors(u)) {
      if (in[v] || DisseminationTree::EdgeKey(u, v) == blocked) continue;
      in[v] = true;
      q.push(v);
    }
  }
  return in;
}

size_t ContentBasedNetwork::Process(NodeId node, NodeId from,
                                    const Datagram& d,
                                    const std::vector<bool>* allowed) {
  // `allowed` marks the nodes that have NOT yet seen this datagram (a
  // post-repair flush into the side a failed link cut off). It restricts
  // *delivery*, never forwarding: after a repair (or a wholesale tree
  // rebuild) the surviving route to an unserved subscriber may pass through
  // already-served nodes, so a forwarding restriction would strand the
  // datagram. Served nodes merely relay; only unserved ones deliver.
  StreamCounters* sc = metrics_ == nullptr ? nullptr : StreamMetrics(d.stream);
  size_t delivered = 0;
  if (allowed == nullptr || (*allowed)[node]) {
    delivered = routers_[node].DeliverLocal(d, projection_cache_);
    total_deliveries_ += delivered;
    if (delivered > 0) {
      Trace(TraceEvent::Kind::kDeliver, node, from, delivered, d);
      if (sc != nullptr) {
        deliveries_counter_->Add(delivered);
        // Recovered datagrams are charged to recovery, never steady state.
        (allowed == nullptr ? sc->delivered : sc->delivered_recovery)
            ->Add(delivered);
      }
      if (tracer_ != nullptr && tracer_->enabled()) {
        tracer_->Instant("cbn", "deliver", node,
                         {{"stream", Tracer::ArgString(d.stream)},
                          {"count", std::to_string(delivered)}});
      }
    }
  }

  for (const auto& [neighbor, weight] : tree_.Neighbors(node)) {
    if (neighbor == from) continue;
    std::optional<Datagram> out = routers_[node].DecideForward(
        d, neighbor, options_.early_projection, projection_cache_);
    if (!out.has_value()) continue;
    if (sc != nullptr) matches_counter_->Increment();
    if (LinkFailed(node, neighbor)) {
      if (options_.buffer_on_failure) {
        // Hold a copy for the cut-off side; it resumes after Repair()
        // delivering exactly there, so nobody sees it twice.
        buffered_.push_back(Buffered{
            neighbor, ComponentBeyondEdge(neighbor, node), *out});
        Trace(TraceEvent::Kind::kBuffer, node, neighbor, 0, *out);
        if (sc != nullptr) sc->buffered->Increment();
        if (tracer_ != nullptr && tracer_->enabled()) {
          tracer_->Instant("cbn", "buffer", node,
                           {{"stream", Tracer::ArgString(out->stream)}});
        }
      } else {
        ++lost_datagrams_;
        Trace(TraceEvent::Kind::kDrop, node, neighbor, 0, *out);
        if (sc != nullptr) sc->dropped->Increment();
        if (tracer_ != nullptr && tracer_->enabled()) {
          tracer_->Instant("cbn", "drop", node,
                           {{"stream", Tracer::ArgString(out->stream)}});
        }
      }
      continue;
    }
    if (allowed == nullptr) {
      // Flush retransmissions travel over the recovery channel and are not
      // charged to the per-link byte counters.
      AccountLink(node, neighbor, *out, sc);
    } else if (sc != nullptr) {
      recovery_forwards_counter_->Increment();
    }
    Trace(TraceEvent::Kind::kForward, node, neighbor, 0, *out);
    if (tracer_ != nullptr && tracer_->enabled()) {
      // One slice on the receiving node's row, as long as the link delay.
      Duration dur = static_cast<Duration>(weight * kMillisecond);
      tracer_->Complete("cbn", "hop", neighbor, tracer_->Now(), dur,
                        {{"stream", Tracer::ArgString(out->stream)},
                         {"from", std::to_string(node)}});
    }
    if (sim_ != nullptr) {
      // Link weight is the delay in milliseconds.
      Duration delay = static_cast<Duration>(weight * kMillisecond);
      Datagram copy = *out;
      NodeId next = neighbor;
      NodeId prev = node;
      // The component restriction must ride along with the scheduled hop
      // (by value: the caller's vector dies with the flush), or a
      // post-repair flush leaks into the healthy side and delivers twice.
      std::shared_ptr<const std::vector<bool>> allowed_copy;
      if (allowed != nullptr) {
        allowed_copy = std::make_shared<const std::vector<bool>>(*allowed);
      }
      sim_->Schedule(delay, [this, next, prev, copy, allowed_copy]() {
        Process(next, prev, copy, allowed_copy.get());
      });
    } else {
      delivered += Process(neighbor, node, *out, allowed);
    }
  }
  return delivered;
}

size_t ContentBasedNetwork::Publish(NodeId node, const Datagram& datagram) {
  COSMOS_CHECK(node >= 0 && node < num_nodes()) << "node " << node;
  if (options_.advertisement_scoping) {
    const std::set<NodeId>* publishers = PublishersOf(datagram.stream);
    COSMOS_CHECK(publishers != nullptr && publishers->count(node) > 0)
        << "node " << node << " advertises a stream it never registered";
  }
  Trace(TraceEvent::Kind::kPublish, node, -1, 0, datagram);
  published_bytes_by_stream_[datagram.stream] += datagram.SerializedSize();
  if (metrics_ != nullptr) {
    StreamCounters* sc = StreamMetrics(datagram.stream);
    sc->published->Increment();
    sc->published_bytes->Add(datagram.SerializedSize());
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("cbn", "publish", node,
                     {{"stream", Tracer::ArgString(datagram.stream)}});
  }
  return Process(node, /*from=*/-1, datagram);
}

Status ContentBasedNetwork::FailLink(NodeId u, NodeId v) {
  if (!tree_.HasEdge(u, v)) {
    return Status::NotFound(StrFormat("tree link (%d,%d)", u, v));
  }
  failed_links_.insert(DisseminationTree::EdgeKey(u, v));
  return Status::OK();
}

void ContentBasedNetwork::ReinstallAllSubscriptions() {
  for (auto& r : routers_) {
    // A fresh Router drops the matching mode and telemetry handles with the
    // routing state; re-apply both or rebuilds would silently fall back.
    r = Router(r.id());
    r.set_compiled_matching(options_.compiled_matching);
    r.SetTelemetry(metrics_);
  }
  for (const auto& [id, sub] : subscriptions_) {
    routers_[sub.node].AddLocal(id, sub.profile, sub.callback);
    PropagateSubscription(sub.node, id, sub.profile);
  }
}

Status ContentBasedNetwork::Repair(const Graph& overlay) {
  if (failed_links_.empty()) return Status::OK();
  if (overlay.num_nodes() != num_nodes()) {
    return Status::InvalidArgument("overlay node count mismatch");
  }
  // Surviving tree edges.
  std::vector<Edge> edges;
  for (const auto& e : tree_.edges()) {
    if (!LinkFailed(e.u, e.v)) edges.push_back(e);
  }
  // Reconnect components greedily: union-find over surviving edges, then
  // for each failed link pick the cheapest overlay edge across the cut.
  std::vector<int> parent(num_nodes());
  for (int i = 0; i < num_nodes(); ++i) parent[i] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](int a, int b) { parent[find(a)] = find(b); };
  for (const auto& e : edges) unite(e.u, e.v);

  size_t needed = failed_links_.size();
  for (size_t round = 0; round < needed; ++round) {
    // Find the cheapest healthy overlay edge across any remaining cut.
    const Edge* best = nullptr;
    for (const auto& cand : overlay.edges()) {
      if (find(cand.u) == find(cand.v)) continue;
      if (LinkFailed(cand.u, cand.v)) continue;
      if (best == nullptr || cand.weight < best->weight) best = &cand;
    }
    if (best == nullptr) {
      return Status::FailedPrecondition(
          "overlay cannot reconnect the partitioned tree");
    }
    edges.push_back(*best);
    unite(best->u, best->v);
  }

  COSMOS_ASSIGN_OR_RETURN(DisseminationTree repaired,
                          DisseminationTree::FromEdges(num_nodes(), edges));
  tree_ = std::move(repaired);
  failed_links_.clear();
  PruneStaleLinkStats();
  ReinstallAllSubscriptions();
  FlushBuffered();
  return Status::OK();
}

Status ContentBasedNetwork::RebuildTree(DisseminationTree tree) {
  if (tree.num_nodes() != num_nodes()) {
    return Status::InvalidArgument("tree node count mismatch");
  }
  tree_ = std::move(tree);
  failed_links_.clear();
  PruneStaleLinkStats();
  ReinstallAllSubscriptions();
  // Datagrams buffered at failed links would otherwise be stranded: never
  // delivered, never counted lost. They recover here exactly like after
  // Repair().
  FlushBuffered();
  return Status::OK();
}

void ContentBasedNetwork::FlushBuffered() {
  // Flush buffered datagrams to the nodes they never reached; restricting
  // *delivery* to that membership guarantees no duplicates on the healthy
  // side, while forwarding stays unrestricted so the repaired tree can
  // route through it. (The retransmission itself travels over a recovery
  // channel and is not charged to the byte counters.)
  std::deque<Buffered> pending = std::move(buffered_);
  buffered_.clear();
  for (auto& b : pending) {
    Trace(TraceEvent::Kind::kRecover, b.entry, -1, 0, b.datagram);
    if (metrics_ != nullptr) {
      StreamMetrics(b.datagram.stream)->flushed->Increment();
    }
    if (tracer_ != nullptr && tracer_->enabled()) {
      tracer_->Instant("cbn", "recover", b.entry,
                       {{"stream", Tracer::ArgString(b.datagram.stream)}});
    }
    Process(b.entry, /*from=*/-1, b.datagram, &b.allowed);
    ++recovered_datagrams_;
  }
}

void ContentBasedNetwork::PruneStaleLinkStats() {
  // Keys for edges the repair/rebuild dropped would otherwise be charged
  // forever by WeightedBytes() at the value_or(1.0) fallback weight.
  for (auto it = link_stats_.begin(); it != link_stats_.end();) {
    if (!tree_.HasEdge(it->first.first, it->first.second)) {
      it = link_stats_.erase(it);
    } else {
      ++it;
    }
  }
}

double ContentBasedNetwork::WeightedBytes() const {
  double total = 0.0;
  for (const auto& [key, stats] : link_stats_) {
    double w = tree_.EdgeWeight(key.first, key.second).value_or(1.0);
    total += static_cast<double>(stats.bytes) * w;
  }
  return total;
}

size_t ContentBasedNetwork::TotalTableEntries() const {
  size_t total = 0;
  for (const auto& r : routers_) total += r.table().TotalEntries();
  return total;
}

void ContentBasedNetwork::ResetStats() {
  link_stats_.clear();
  total_bytes_ = 0;
  total_forwards_ = 0;
  total_deliveries_ = 0;
  control_messages_ = 0;
  lost_datagrams_ = 0;
  recovered_datagrams_ = 0;
}

}  // namespace cosmos
