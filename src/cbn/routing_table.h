#ifndef COSMOS_CBN_ROUTING_TABLE_H_
#define COSMOS_CBN_ROUTING_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cbn/matcher.h"
#include "cbn/profile.h"
#include "overlay/graph.h"

namespace cosmos {

// One node's content-based routing state: for every tree link (identified
// by the neighbor node id), the profiles subscribed somewhere downstream
// through that link. A datagram is forwarded onto a link iff some profile
// in the link's entry list covers it.
//
// Entries are additionally indexed per (link, stream): a forwarding
// decision for a datagram of stream S touches only the entries whose
// profile requests S, so matching is sub-linear in table size (the
// posting-list layout of large-scale pub/sub matching engines). Each
// bucket slot precomputes the profile's required attributes for its
// stream, and the bucket caches the union across slots, so early
// projection does not rebuild an attribute set per datagram.
class RoutingTable {
 public:
  struct Entry {
    ProfileId id = 0;
    ProfilePtr profile;
  };

  // One entry's projection into a (link, stream) bucket: the profile plus
  // its precomputed RequiredAttributes(stream), sorted. `required` empty
  // means the profile needs all attributes of the stream.
  struct BucketSlot {
    ProfileId id = 0;
    const Profile* profile = nullptr;
    std::vector<std::string> required;
  };

  // The entries of one link subscribed to one stream, plus a lazily
  // rebuilt union of their required attribute sets.
  class StreamBucket {
   public:
    const std::vector<BucketSlot>& slots() const { return slots_; }

    // Union of required attributes across slots (sorted, deduped).
    // Sets `*wants_all` when any slot needs all attributes, in which case
    // the returned vector is empty and must not be used for projection.
    const std::vector<std::string>& UnionRequired(bool* wants_all) const;

    // The compiled counting matcher over this bucket's slots (profile
    // indices align with slots()), built lazily on first use for `stream`
    // and dropped by the same mutation hooks that dirty the cached union.
    const CompiledMatcher& Compiled(const std::string& stream) const;

    // Whether a compiled matcher is currently built (telemetry counts a
    // compile when this flips to true).
    bool has_compiled() const { return matcher_ != nullptr; }

   private:
    friend class RoutingTable;
    std::vector<BucketSlot> slots_;
    mutable std::vector<std::string> union_required_;
    mutable bool union_wants_all_ = false;
    mutable bool union_dirty_ = true;
    mutable std::unique_ptr<CompiledMatcher> matcher_;
  };

  void Add(NodeId link, ProfileId id, ProfilePtr profile);

  // Adds unless an entry with `id` already exists on `link`; returns true
  // when something was added (used by re-propagation after unsubscribes).
  bool AddUnique(NodeId link, ProfileId id, ProfilePtr profile);

  // Removes the entry with `id` on `link`; true when something was removed.
  bool Remove(NodeId link, ProfileId id);

  // Removes `id` from every link; returns number of entries removed.
  size_t RemoveEverywhere(ProfileId id);

  // True when an entry with `id` exists on `link`.
  bool Contains(NodeId link, ProfileId id) const;

  // Entries installed for `link` (empty when none).
  const std::vector<Entry>& EntriesFor(NodeId link) const;

  // Links that have at least one entry.
  std::vector<NodeId> Links() const;

  // The (link, stream) bucket; nullptr when no entry on `link` requests
  // `stream`. This is the forwarding hot path's view of the table.
  const StreamBucket* BucketFor(NodeId link, const std::string& stream) const;

  // True when any profile on `link` covers `d`.
  bool LinkCovers(NodeId link, const Datagram& d) const;

  // Appends the profiles on `link` covering `d` to `*out` (caller-owned
  // scratch; not cleared here so callers can reuse one vector).
  void MatchingProfiles(NodeId link, const Datagram& d,
                        std::vector<const Profile*>* out) const;

  // Allocating convenience wrapper for tests and cold paths.
  std::vector<const Profile*> MatchingProfiles(NodeId link,
                                               const Datagram& d) const;

  size_t TotalEntries() const;

  // Sum of bucket slot counts across all links: each entry contributes one
  // slot per stream its profile requests, so for single-stream profiles
  // this equals TotalEntries().
  size_t TotalIndexedSlots() const;

  // Number of entries across all links carrying `id`.
  size_t CountOf(ProfileId id) const;

  // Structural invariants: no link maps to an empty entry list, no entry
  // holds a null profile, and the per-stream index is consistent with the
  // entry list (every (entry, stream) pair has exactly one bucket slot, no
  // bucket is empty, no slot is stray). DCHECK'd after every mutation so a
  // dangling subscription or index drift cannot survive unnoticed.
  bool CheckInvariants() const;

 private:
  struct LinkState {
    std::vector<Entry> entries;
    std::unordered_map<std::string, StreamBucket> by_stream;
  };

  // Adds/removes the bucket slots of one entry (one per profile stream).
  static void IndexEntry(LinkState& state, ProfileId id, const Profile& p);
  static void DeindexEntry(LinkState& state, ProfileId id, const Profile& p);

  std::map<NodeId, LinkState> per_link_;
};

}  // namespace cosmos

#endif  // COSMOS_CBN_ROUTING_TABLE_H_
