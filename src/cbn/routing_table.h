#ifndef COSMOS_CBN_ROUTING_TABLE_H_
#define COSMOS_CBN_ROUTING_TABLE_H_

#include <map>
#include <vector>

#include "cbn/profile.h"
#include "overlay/graph.h"

namespace cosmos {

// One node's content-based routing state: for every tree link (identified
// by the neighbor node id), the profiles subscribed somewhere downstream
// through that link. A datagram is forwarded onto a link iff some profile
// in the link's entry list covers it.
class RoutingTable {
 public:
  struct Entry {
    ProfileId id = 0;
    ProfilePtr profile;
  };

  void Add(NodeId link, ProfileId id, ProfilePtr profile);

  // Adds unless an entry with `id` already exists on `link`; returns true
  // when something was added (used by re-propagation after unsubscribes).
  bool AddUnique(NodeId link, ProfileId id, ProfilePtr profile);

  // Removes the entry with `id` on `link`; true when something was removed.
  bool Remove(NodeId link, ProfileId id);

  // Removes `id` from every link; returns number of entries removed.
  size_t RemoveEverywhere(ProfileId id);

  // Entries installed for `link` (empty when none).
  const std::vector<Entry>& EntriesFor(NodeId link) const;

  // Links that have at least one entry.
  std::vector<NodeId> Links() const;

  // True when any profile on `link` covers `d`.
  bool LinkCovers(NodeId link, const Datagram& d) const;

  // All profiles on `link` covering `d`.
  std::vector<const Profile*> MatchingProfiles(NodeId link,
                                               const Datagram& d) const;

  size_t TotalEntries() const;

  // Number of entries across all links carrying `id`.
  size_t CountOf(ProfileId id) const;

  // Structural invariants: no link maps to an empty entry list, no entry
  // holds a null profile. DCHECK'd after every mutation so a dangling
  // subscription cannot survive an unsubscribe unnoticed.
  bool CheckInvariants() const;

 private:
  std::map<NodeId, std::vector<Entry>> per_link_;
};

}  // namespace cosmos

#endif  // COSMOS_CBN_ROUTING_TABLE_H_
