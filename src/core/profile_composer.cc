#include "core/profile_composer.h"

#include "common/string_util.h"
#include "expr/implication.h"

namespace cosmos {

Profile ComposeSourceProfile(const AnalyzedQuery& query) {
  Profile profile;
  for (size_t i = 0; i < query.sources().size(); ++i) {
    const auto& src = query.sources()[i];
    profile.AddStream(src.from.stream, query.ReferencedAttributes(i));
    const ConjunctiveClause& sel = query.local_selection(i);
    if (sel.IsTautology()) continue;
    // Paper §3.1: a profile's F is a *disjunction* of conjunctive filters.
    // A selection with OR residuals expands into one filter per DNF clause;
    // anything DNF cannot normalize (NOT over compounds) stays a single
    // filter whose residual is evaluated as an expression.
    bool expanded = false;
    if (sel.has_residual()) {
      auto dnf = ToDnf(sel.ToExpr());
      if (dnf.ok() && dnf->size() > 1) {
        for (auto& clause : *dnf) {
          profile.AddFilter(Filter(src.from.stream, std::move(clause)));
        }
        expanded = true;
      }
    }
    if (!expanded) {
      profile.AddFilter(Filter(src.from.stream, sel));
    }
  }
  return profile;
}

Profile ComposeWholeStreamProfile(const std::string& result_stream) {
  Profile profile;
  profile.AddStream(result_stream, {});  // all attributes, no filter
  return profile;
}

namespace {

// The representative's output attribute name for (rep source, attr index),
// or empty when the representative does not project it.
std::string RepOutputName(const AnalyzedQuery& rep, size_t source,
                          size_t attr) {
  for (const auto& c : rep.output_columns()) {
    if (c.source == source && c.attr == attr) return c.out_name;
  }
  return "";
}

std::string RepOutputNameByAttr(const AnalyzedQuery& rep, size_t source,
                                const std::string& attr_name) {
  auto idx = rep.sources()[source].schema->IndexOf(attr_name);
  if (!idx.has_value()) return "";
  return RepOutputName(rep, source, *idx);
}

}  // namespace

Result<std::vector<std::string>> UserColumnRepNames(
    const AnalyzedQuery& user, const AnalyzedQuery& rep) {
  auto align = AlignSources(user, rep);
  if (!align.has_value()) {
    return Status::InvalidArgument(
        "user query and representative are over different streams");
  }
  std::vector<std::string> names;
  if (user.is_aggregate()) return names;  // positional mapping
  names.reserve(user.output_columns().size());
  for (const auto& c : user.output_columns()) {
    size_t rep_source = (*align)[c.source];
    const std::string& attr_name =
        user.sources()[c.source].schema->attribute(c.attr).name;
    std::string out = RepOutputNameByAttr(rep, rep_source, attr_name);
    if (out.empty()) {
      return Status::Internal(StrFormat(
          "representative does not project '%s'", attr_name.c_str()));
    }
    names.push_back(std::move(out));
  }
  return names;
}

DeliveryCallback MakePresentationCallback(const AnalyzedQuery& user,
                                          const AnalyzedQuery& rep,
                                          DeliveryCallback inner) {
  auto rep_names = UserColumnRepNames(user, rep);
  std::shared_ptr<const Schema> user_schema = user.output_schema();
  if (!rep_names.ok() || inner == nullptr) {
    // Fall back to raw delivery; ComposeUserProfile would have failed
    // before this matters.
    return inner;
  }
  // Per delivered schema (the CBN may deliver projections), cache the
  // index of each user column. Keys retain their schema so pointer
  // identity stays unambiguous for the callback's whole lifetime.
  struct State {
    std::vector<std::string> rep_names;
    std::shared_ptr<const Schema> user_schema;
    DeliveryCallback inner;
    std::map<std::shared_ptr<const Schema>, std::vector<int>> mappings;
  };
  auto state = std::make_shared<State>();
  state->rep_names = std::move(*rep_names);
  state->user_schema = std::move(user_schema);
  state->inner = std::move(inner);

  return [state](const std::string& /*stream*/, const Tuple& t) {
    const std::string& user_stream = state->user_schema->stream_name();
    if (state->rep_names.empty()) {
      // Aggregate: positional rename (same arity by construction).
      if (t.num_values() == state->user_schema->num_attributes()) {
        state->inner(user_stream,
                     Tuple(state->user_schema, t.values(), t.timestamp()));
      } else {
        state->inner(user_stream, t);
      }
      return;
    }
    auto it = state->mappings.find(t.schema());
    if (it == state->mappings.end()) {
      std::vector<int> mapping;
      mapping.reserve(state->rep_names.size());
      for (const auto& name : state->rep_names) {
        auto idx = t.schema()->IndexOf(name);
        mapping.push_back(idx.has_value() ? static_cast<int>(*idx) : -1);
      }
      it = state->mappings.emplace(t.schema(), std::move(mapping)).first;
    }
    std::vector<Value> values;
    values.reserve(it->second.size());
    for (int idx : it->second) {
      if (idx < 0) return;  // malformed delivery; drop rather than garble
      values.push_back(t.value(static_cast<size_t>(idx)));
    }
    state->inner(user_stream, Tuple(state->user_schema, std::move(values),
                                    t.timestamp()));
  };
}

Result<Profile> ComposeUserProfile(const AnalyzedQuery& user,
                                   const AnalyzedQuery& rep) {
  auto align = AlignSources(user, rep);
  if (!align.has_value()) {
    return Status::InvalidArgument(
        "user query and representative are over different streams");
  }
  const std::string& stream = rep.output_schema()->stream_name();

  Profile profile;

  // ---- Projection P: the user's output columns in rep naming ----
  std::vector<std::string> projection;
  if (user.is_aggregate()) {
    // Group mates are equivalent; take the whole result row.
    profile.AddStream(stream, {});
  } else {
    for (const auto& c : user.output_columns()) {
      size_t rep_source = (*align)[c.source];
      const std::string& attr_name =
          user.sources()[c.source].schema->attribute(c.attr).name;
      std::string out = RepOutputNameByAttr(rep, rep_source, attr_name);
      if (out.empty()) {
        return Status::Internal(StrFormat(
            "representative does not project '%s' needed by the user query",
            attr_name.c_str()));
      }
      projection.push_back(std::move(out));
    }
    profile.AddStream(stream, projection);
  }

  // ---- Filter F: re-tighten the loosened constraints ----
  ConjunctiveClause clause;
  bool any_constraint = false;

  for (size_t i = 0; i < user.sources().size(); ++i) {
    size_t ri = (*align)[i];
    const ConjunctiveClause& user_sel = user.local_selection(i);
    const ConjunctiveClause& rep_sel = rep.local_selection(ri);
    for (const auto& [attr, c] : user_sel.constraints()) {
      // Skip constraints the representative already enforces exactly.
      AttrConstraint rep_c = rep_sel.ConstraintFor(attr);
      bool rep_enforces = rep_c.interval == c.interval &&
                          rep_c.eq.has_value() == c.eq.has_value() &&
                          (!c.eq.has_value() || *rep_c.eq == *c.eq) &&
                          rep_c.neq == c.neq;
      if (rep_enforces) continue;
      std::string out = RepOutputNameByAttr(rep, ri, attr);
      if (out.empty()) {
        return Status::Internal(StrFormat(
            "representative does not project constrained attribute '%s'",
            attr.c_str()));
      }
      if (!c.interval.IsAll()) clause.ConstrainInterval(out, c.interval);
      if (c.eq.has_value()) clause.ConstrainEquals(out, *c.eq);
      for (const auto& v : c.neq) clause.ConstrainNotEquals(out, v);
      any_constraint = true;
    }
    // Residual local conjuncts (rare; merge-compatibility guarantees the
    // representative enforces them when present).
  }

  // ---- Window re-tightening (Lemma 1) ----
  if (!user.is_aggregate() && user.sources().size() == 2) {
    Duration t0 = user.WindowSize(0);
    Duration t1 = user.WindowSize(1);
    size_t r0 = (*align)[0];
    size_t r1 = (*align)[1];
    bool tighter0 = t0 != rep.WindowSize(r0);
    bool tighter1 = t1 != rep.WindowSize(r1);
    if (tighter0 || tighter1) {
      std::string ts0 = RepOutputNameByAttr(rep, r0, "timestamp");
      std::string ts1 = RepOutputNameByAttr(rep, r1, "timestamp");
      if (ts0.empty() || ts1.empty()) {
        return Status::Internal(
            "representative does not project timestamps needed for window "
            "re-tightening");
      }
      // Lemma 1: -T0 <= ts0 - ts1 <= T1  (timestamps in microseconds).
      ExprPtr diff = MakeArith(ArithOp::kSub, MakeColumn(ts0),
                               MakeColumn(ts1));
      if (t0 != kInfiniteDuration) {
        clause.AddResidual(MakeCompare(CompareOp::kGe, diff,
                                       MakeLiteral(Value(-t0))));
      }
      if (t1 != kInfiniteDuration) {
        clause.AddResidual(
            MakeCompare(CompareOp::kLe, diff, MakeLiteral(Value(t1))));
      }
      any_constraint = true;
    }
  }

  if (any_constraint) {
    profile.AddFilter(Filter(stream, std::move(clause)));
  }
  return profile;
}

}  // namespace cosmos
