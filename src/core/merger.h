#ifndef COSMOS_CORE_MERGER_H_
#define COSMOS_CORE_MERGER_H_

#include <string>
#include <vector>

#include "core/containment.h"
#include "stream/catalog.h"

namespace cosmos {

// Representative-query composition (paper §4): given member queries with
// overlapping results, produce one query q whose result contains every
// member's result, by merging selection predicates (interval hulls), window
// predicates (max) and projections (union). The loosened constraints are
// re-tightened in per-user CBN profiles (core/profile_composer.h).
//
// Group restrictions (paper §4 plus the sound strengthening of Theorem 2
// documented in DESIGN.md):
//  - identical FROM stream sets (no self-joins), aligned by stream name;
//  - identical equi-join sets and cross residuals;
//  - for aggregate queries: identical aggregates, grouping, windows and
//    equivalent selections (the representative is then just a rename).
//
// The representative additionally projects, per source:
//  - every attribute on which member selections disagree (so user profiles
//    can re-filter), and
//  - the "timestamp" attribute of every source when member windows differ
//    in a multi-stream query (so the Lemma-1 window condition can be
//    re-imposed downstream). Merging fails if such a source lacks a
//    "timestamp" attribute.

// Cheap structural compatibility test (no catalog access): true when the
// two queries are mergeable into one group.
bool MergeCompatible(const AnalyzedQuery& a, const AnalyzedQuery& b);

// Canonical signature string: two queries can only be group mates when
// their signatures match. Used to index groups.
std::string MergeSignature(const AnalyzedQuery& q);

// True when a user profile can split `user`'s exact results out of `rep`'s
// result stream: every user constraint that is tighter than the
// representative's is on an attribute the representative projects, and —
// for multi-stream queries with tighter windows — the representative
// projects the per-source timestamps Lemma 1 needs. QueryContains(rep,
// user) guarantees no rows are missing; this guarantees the surplus can be
// filtered back out (core/profile_composer.h relies on it).
bool SplittableFrom(const AnalyzedQuery& user, const AnalyzedQuery& rep);

// Composes (and re-analyzes, against `catalog`) the representative of
// `members` with result stream `result_name`. Fails when the members are
// not group-compatible. Postcondition (property-tested):
// QueryContains(rep, *m) for every member m.
Result<AnalyzedQuery> ComposeRepresentative(
    const std::vector<const AnalyzedQuery*>& members, const Catalog& catalog,
    const std::string& result_name);

}  // namespace cosmos

#endif  // COSMOS_CORE_MERGER_H_
