#include "core/self_tuner.h"

#include <utility>
#include <vector>

#include "common/logging.h"

namespace cosmos {

SelfTuner::SelfTuner(CosmosSystem* system, SelfTunerOptions options)
    : system_(system), options_(std::move(options)) {
  COSMOS_CHECK(system_ != nullptr);
  COSMOS_CHECK_GT(options_.period, 0);
}

Result<SelfTuner::RoundStats> SelfTuner::RunOnce(Timestamp now) {
  RoundStats stats;
  MetricsRegistry* metrics = system_->options().metrics;
  Tracer* tracer = system_->options().tracer;
  Tracer::Span span;
  if (tracer != nullptr && tracer->enabled()) {
    span = tracer->BeginSpan("core", "selftune", /*tid=*/-1);
  }

  // (a) Recalibrate the catalog when measured rates drifted from it.
  stats.max_drift =
      system_->rate_monitor().MaxDriftRatio(system_->catalog(), now);
  if (stats.max_drift >= options_.recalibrate_drift) {
    stats.streams_recalibrated = system_->CalibrateRates();
  }

  // (b) Flows from the bytes the data layer actually carried this window.
  double seconds = static_cast<double>(now - baseline_at_) / kSecond;
  if (seconds <= 0.0) seconds = 1.0;
  std::vector<Flow> flows = system_->MeasuredFlows(baseline_bytes_, seconds);
  stats.flows = flows.size();
  baseline_bytes_ = system_->network().published_bytes_by_stream();
  baseline_at_ = now;

  // (c) Re-optimize the overlay against measured reality; SelfTune applies
  // the improved tree through RebuildTree.
  if (!flows.empty() && system_->has_overlay()) {
    COSMOS_ASSIGN_OR_RETURN(OverlayOptimizer::Stats os,
                            system_->SelfTune(options_.optimizer, &flows));
    stats.swaps_applied = os.swaps_applied;
    stats.cost_before = os.initial_cost;
    stats.cost_after = os.final_cost;
    stats.tree_changed = os.swaps_applied > 0;
  }

  // (d) The tuner's own actions are telemetry too.
  ++rounds_;
  last_ = stats;
  if (metrics != nullptr) {
    metrics->GetCounter("selftune.runs")->Increment();
    metrics->GetCounter("selftune.swaps")
        ->Add(static_cast<uint64_t>(stats.swaps_applied));
    metrics->GetCounter("selftune.recalibrations")
        ->Add(static_cast<uint64_t>(stats.streams_recalibrated));
    if (stats.tree_changed) {
      metrics->GetCounter("selftune.tree_changes")->Increment();
    }
    metrics->GetGauge("selftune.max_drift")->Set(stats.max_drift);
    metrics->GetGauge("selftune.cost_before")->Set(stats.cost_before);
    metrics->GetGauge("selftune.cost_after")->Set(stats.cost_after);
  }
  if (span.active()) {
    span.AddArg("flows", std::to_string(stats.flows));
    span.AddArg("max_drift", std::to_string(stats.max_drift));
    span.AddArg("recalibrated",
                std::to_string(stats.streams_recalibrated));
    span.AddArg("swaps", std::to_string(stats.swaps_applied));
    span.AddArg("cost_before", std::to_string(stats.cost_before));
    span.AddArg("cost_after", std::to_string(stats.cost_after));
  }
  return stats;
}

void SelfTuner::Start() {
  Simulator* sim = system_->sim();
  if (sim == nullptr || running_) return;
  running_ = true;
  baseline_bytes_ = system_->network().published_bytes_by_stream();
  baseline_at_ = sim->now();
  ScheduleNext();
}

void SelfTuner::Stop() {
  running_ = false;
  if (pending_ != 0 && system_->sim() != nullptr) {
    system_->sim()->Cancel(pending_);
  }
  pending_ = 0;
}

void SelfTuner::ScheduleNext() {
  Simulator* sim = system_->sim();
  pending_ = sim->Schedule(options_.period, [this]() {
    if (!running_) return;
    (void)RunOnce(system_->sim()->now());
    ScheduleNext();
  });
}

}  // namespace cosmos
