#include "core/grouping.h"

#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace cosmos {

GroupingEngine::GroupingEngine(const Catalog* catalog,
                               GroupingOptions options,
                               RateEstimatorOptions rate_options,
                               std::string name_prefix)
    : catalog_(catalog), options_(options),
      estimator_(catalog, rate_options),
      name_prefix_(std::move(name_prefix)) {}

const QueryGroup* GroupingEngine::FindGroup(uint64_t group_id) const {
  auto it = groups_.find(group_id);
  return it == groups_.end() ? nullptr : &it->second;
}

const QueryGroup* GroupingEngine::GroupOf(const std::string& query_id) const {
  auto it = query_to_group_.find(query_id);
  if (it == query_to_group_.end()) return nullptr;
  return FindGroup(it->second);
}

Result<AnalyzedQuery> GroupingEngine::Recompose(QueryGroup& group) {
  std::vector<const AnalyzedQuery*> members;
  members.reserve(group.members.size());
  for (const auto& m : group.members) members.push_back(&m);
  return ComposeRepresentative(members, *catalog_,
                               group.ResultStreamName());
}

Result<GroupingEngine::AddResult> GroupingEngine::AddQuery(
    const std::string& query_id, const AnalyzedQuery& query) {
  if (query_to_group_.count(query_id) > 0) {
    return Status::AlreadyExists(
        StrFormat("query '%s' already grouped", query_id.c_str()));
  }
  const std::string signature = MergeSignature(query);
  const double query_rate = estimator_.EstimateOutputRate(query);

  // Greedy step: among compatible groups, find the max marginal benefit.
  uint64_t best_group = 0;
  double best_benefit = options_.min_benefit;
  bool found = false;

  auto [begin, end] = by_signature_.equal_range(signature);
  size_t examined = 0;
  for (auto it = begin; it != end && examined < options_.max_candidates;
       ++it, ++examined) {
    QueryGroup& g = groups_.at(it->second);
    if (!MergeCompatible(g.representative, query)) continue;
    // Rank by the fast merged-rate prediction; the winner is composed
    // exactly once below. Merging the current representative with the
    // newcomer contains all members (containment is transitive).
    auto align = AlignSources(query, g.representative);
    if (!align.has_value()) continue;
    double merged_rate = estimator_.EstimateMergedOutputRate(
        g.representative, query, *align);
    double marginal = (g.representative_rate + query_rate) - merged_rate;
    if (marginal > best_benefit) {
      best_benefit = marginal;
      best_group = it->second;
      found = true;
    }
  }

  AddResult result;
  if (found) {
    QueryGroup& g = groups_.at(best_group);
    // Only bump the version (and thus the result stream name) when the
    // representative actually widens — or when it contains the newcomer
    // but does not project an attribute the newcomer's re-tightening
    // profile must filter on (recomposition adds that projection).
    bool widened = !QueryContains(g.representative, query) ||
                   !SplittableFrom(query, g.representative);
    if (widened) {
      ++g.version;
      std::vector<const AnalyzedQuery*> pair = {&g.representative, &query};
      auto rep =
          ComposeRepresentative(pair, *catalog_, g.ResultStreamName());
      if (!rep.ok()) {
        // Exact composition failed despite the estimate: fall back to a
        // fresh singleton group below.
        --g.version;
        found = false;
      } else {
        g.representative = std::move(*rep);
      }
    }
    if (found) {
      g.member_ids.push_back(query_id);
      g.members.push_back(query);
      g.representative_rate =
          estimator_.EstimateOutputRate(g.representative);
      query_to_group_[query_id] = best_group;
      // ComposeRepresentative's postcondition (Theorem 1/2 containment):
      // the group representative answers every member, in particular the
      // newcomer — otherwise the user profile cannot re-tighten its results
      // out of the group stream.
      COSMOS_DCHECK(QueryContains(g.representative, query))
          << "representative of group " << best_group
          << " does not contain query '" << query_id << "'";
      COSMOS_DCHECK(CheckInvariants());
      result.group_id = best_group;
      result.created_new_group = false;
      result.representative_changed = widened;
      result.marginal_benefit = best_benefit;
      return result;
    }
  }

  // Open a new singleton group.
  QueryGroup g;
  g.group_id = next_group_id_++;
  g.version = 1;
  g.name_prefix = name_prefix_;
  g.member_ids.push_back(query_id);
  g.members.push_back(query);
  g.signature = signature;
  // Re-analyze under the group's stream name so the representative's output
  // schema carries the group result stream.
  COSMOS_ASSIGN_OR_RETURN(
      g.representative,
      Analyze(query.ast(), *catalog_, g.ResultStreamName()));
  g.representative_rate = estimator_.EstimateOutputRate(g.representative);

  result.group_id = g.group_id;
  result.created_new_group = true;
  result.representative_changed = true;
  result.marginal_benefit = 0.0;
  query_to_group_[query_id] = g.group_id;
  by_signature_.emplace(signature, g.group_id);
  groups_.emplace(g.group_id, std::move(g));
  COSMOS_DCHECK(CheckInvariants());
  return result;
}

Result<GroupingEngine::AddResult> GroupingEngine::RemoveQuery(
    const std::string& query_id) {
  auto it = query_to_group_.find(query_id);
  if (it == query_to_group_.end()) {
    return Status::NotFound(StrFormat("query '%s'", query_id.c_str()));
  }
  uint64_t gid = it->second;
  QueryGroup& g = groups_.at(gid);
  for (size_t i = 0; i < g.member_ids.size(); ++i) {
    if (g.member_ids[i] == query_id) {
      g.member_ids.erase(g.member_ids.begin() + static_cast<long>(i));
      g.members.erase(g.members.begin() + static_cast<long>(i));
      break;
    }
  }
  query_to_group_.erase(it);

  AddResult result;
  result.group_id = gid;
  if (g.members.empty()) {
    // Drop the group entirely.
    for (auto sit = by_signature_.begin(); sit != by_signature_.end();
         ++sit) {
      if (sit->second == gid) {
        by_signature_.erase(sit);
        break;
      }
    }
    groups_.erase(gid);
    result.representative_changed = true;
    COSMOS_DCHECK(CheckInvariants());
    return result;
  }
  ++g.version;
  COSMOS_ASSIGN_OR_RETURN(g.representative, Recompose(g));
  g.representative_rate = estimator_.EstimateOutputRate(g.representative);
  result.representative_changed = true;
  COSMOS_DCHECK(CheckInvariants());
  return result;
}

bool GroupingEngine::CheckInvariants() const {
  size_t total_members = 0;
  for (const auto& [gid, g] : groups_) {
    if (g.members.empty()) return false;  // empty groups must be dropped
    if (g.member_ids.size() != g.members.size()) return false;
    if (g.version == 0) return false;  // versions start at 1 and only grow
    // Group cost must stay a usable quantity: merging can only produce a
    // finite, non-negative estimated representative rate.
    if (!(g.representative_rate >= 0.0) ||
        std::isinf(g.representative_rate)) {
      return false;
    }
    for (const auto& id : g.member_ids) {
      auto it = query_to_group_.find(id);
      if (it == query_to_group_.end() || it->second != gid) return false;
      ++total_members;
    }
    // Exactly one signature-index entry per group.
    size_t hits = 0;
    auto [begin, end] = by_signature_.equal_range(g.signature);
    for (auto it2 = begin; it2 != end; ++it2) {
      if (it2->second == gid) ++hits;
    }
    if (hits != 1) return false;
  }
  // Every grouped query is a member of exactly one group.
  return total_members == query_to_group_.size();
}

double GroupingEngine::GroupingRatio() const {
  if (query_to_group_.empty()) return 1.0;
  return static_cast<double>(groups_.size()) /
         static_cast<double>(query_to_group_.size());
}

double GroupingEngine::TotalMemberRate() const {
  double total = 0.0;
  for (const auto& [id, g] : groups_) {
    for (const auto& m : g.members) {
      total += estimator_.EstimateOutputRate(m);
    }
  }
  return total;
}

double GroupingEngine::TotalRepresentativeRate() const {
  double total = 0.0;
  for (const auto& [id, g] : groups_) total += g.representative_rate;
  return total;
}

}  // namespace cosmos
