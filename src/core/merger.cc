#include "core/merger.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"
#include "expr/implication.h"
#include "expr/relaxation.h"
#include "query/parser.h"
#include "query/unparser.h"

namespace cosmos {
namespace {

// Canonical alias-free join representation (same as containment.cc's).
using JoinEnd = std::pair<std::string, std::string>;
using CanonicalJoin = std::pair<JoinEnd, JoinEnd>;

std::set<CanonicalJoin> CanonicalJoins(const AnalyzedQuery& q) {
  std::set<CanonicalJoin> out;
  for (const auto& j : q.equi_joins()) {
    JoinEnd l{q.sources()[j.left_source].from.stream,
              q.sources()[j.left_source].schema->attribute(j.left_attr).name};
    JoinEnd r{
        q.sources()[j.right_source].from.stream,
        q.sources()[j.right_source].schema->attribute(j.right_attr).name};
    if (r < l) std::swap(l, r);
    out.insert({l, r});
  }
  return out;
}

// Residuals rendered alias-free (qualifier replaced by the stream name) and
// sorted, for structural comparison across differently-aliased queries.
std::multiset<std::string> CanonicalResiduals(const AnalyzedQuery& q) {
  std::map<std::string, std::string> alias_to_stream;
  for (const auto& s : q.sources()) {
    alias_to_stream[s.alias()] = s.from.stream;
  }
  struct Renderer {
    const std::map<std::string, std::string>& m;
    std::string Render(const ExprPtr& e) const {
      if (e->kind() == ExprKind::kColumnRef) {
        const auto& col = static_cast<const ColumnRefExpr&>(*e);
        auto it = m.find(col.qualifier());
        std::string q = it == m.end() ? col.qualifier() : it->second;
        return q.empty() ? col.name() : q + "." + col.name();
      }
      if (e->kind() == ExprKind::kComparison) {
        const auto& c = static_cast<const ComparisonExpr&>(*e);
        return Render(c.lhs()) + CompareOpToString(c.op()) + Render(c.rhs());
      }
      if (e->kind() == ExprKind::kArithmetic) {
        const auto& a = static_cast<const ArithmeticExpr&>(*e);
        const char* ops[] = {"+", "-", "*", "/"};
        return "(" + Render(a.lhs()) + ops[static_cast<int>(a.op())] +
               Render(a.rhs()) + ")";
      }
      if (e->kind() == ExprKind::kLogical) {
        const auto& l = static_cast<const LogicalExpr&>(*e);
        std::string out = l.op() == LogicalOp::kAnd
                              ? "AND("
                              : (l.op() == LogicalOp::kOr ? "OR(" : "NOT(");
        for (const auto& ch : l.children()) out += Render(ch) + ";";
        return out + ")";
      }
      return e->ToString();
    }
  } renderer{alias_to_stream};
  std::multiset<std::string> out;
  for (const auto& r : q.cross_residual()) out.insert(renderer.Render(r));
  return out;
}

std::string AggSignature(const AnalyzedQuery& q) {
  if (!q.is_aggregate()) return "SPJ";
  std::string out = "AGG:";
  for (const auto& a : q.aggregates()) {
    out += AggFuncToString(a.func);
    out += "(";
    out += a.star ? "*"
                  : q.sources()[a.source].from.stream + "." +
                        q.sources()[a.source].schema->attribute(a.attr).name;
    out += ");";
  }
  out += "BY:";
  for (const auto& g : q.group_by()) {
    out += q.sources()[g.source].from.stream + "." +
           q.sources()[g.source].schema->attribute(g.attr).name + ";";
  }
  out += "WIN:";
  for (const auto& s : q.sources()) {
    out += s.from.stream + "=" + std::to_string(s.from.window.size) + ";";
  }
  return out;
}

}  // namespace

std::string MergeSignature(const AnalyzedQuery& q) {
  std::vector<std::string> streams;
  for (const auto& s : q.sources()) streams.push_back(s.from.stream);
  std::sort(streams.begin(), streams.end());
  std::string out = StrJoin(streams, ",");
  out += "|J:";
  for (const auto& j : CanonicalJoins(q)) {
    out += j.first.first + "." + j.first.second + "=" + j.second.first + "." +
           j.second.second + ";";
  }
  out += "|R:";
  for (const auto& r : CanonicalResiduals(q)) out += r + ";";
  out += "|";
  out += AggSignature(q);
  return out;
}

bool MergeCompatible(const AnalyzedQuery& a, const AnalyzedQuery& b) {
  auto align = AlignSources(a, b);
  if (!align.has_value()) return false;
  if (a.is_aggregate() != b.is_aggregate()) return false;
  if (CanonicalJoins(a) != CanonicalJoins(b)) return false;
  if (CanonicalResiduals(a) != CanonicalResiduals(b)) return false;
  // Local selections with residual conjuncts are opaque to the hull;
  // require them to be empty (workloads never produce them) unless equal.
  for (size_t i = 0; i < a.sources().size(); ++i) {
    if (!a.local_selection(i).residual().empty() ||
        !b.local_selection((*align)[i]).residual().empty()) {
      // Conservative: only mergeable when equivalent.
      if (!ClauseImplies(a.local_selection(i),
                         b.local_selection((*align)[i])) ||
          !ClauseImplies(b.local_selection((*align)[i]),
                         a.local_selection(i))) {
        return false;
      }
    }
  }
  if (a.is_aggregate()) {
    // Theorem 2 (sound form): equal windows and equivalent selections.
    if (AggSignature(a) != AggSignature(b)) return false;
    for (size_t i = 0; i < a.sources().size(); ++i) {
      size_t j = (*align)[i];
      if (a.WindowSize(i) != b.WindowSize(j)) return false;
      if (!ClauseImplies(a.local_selection(i), b.local_selection(j)) ||
          !ClauseImplies(b.local_selection(j), a.local_selection(i))) {
        return false;
      }
    }
    if (!QueryContains(a, b) || !QueryContains(b, a)) {
      // Projection may still differ; aggregates project group cols + aggs
      // only, so containment both ways reduces to the checks above. Keep
      // the belt-and-braces check cheap by not failing here.
    }
  }
  return true;
}

bool SplittableFrom(const AnalyzedQuery& user, const AnalyzedQuery& rep) {
  auto align = AlignSources(user, rep);
  if (!align.has_value()) return false;
  if (user.is_aggregate()) return true;  // group mates are equivalent

  auto rep_projects = [&rep](size_t source, const std::string& attr) {
    auto idx = rep.sources()[source].schema->IndexOf(attr);
    if (!idx.has_value()) return false;
    for (const auto& c : rep.output_columns()) {
      if (c.source == source && c.attr == *idx) return true;
    }
    return false;
  };

  for (size_t i = 0; i < user.sources().size(); ++i) {
    size_t ri = (*align)[i];
    const auto& user_sel = user.local_selection(i);
    const auto& rep_sel = rep.local_selection(ri);
    for (const auto& [attr, c] : user_sel.constraints()) {
      AttrConstraint rep_c = rep_sel.ConstraintFor(attr);
      bool rep_enforces = rep_c.interval == c.interval &&
                          rep_c.eq.has_value() == c.eq.has_value() &&
                          (!c.eq.has_value() || *rep_c.eq == *c.eq) &&
                          rep_c.neq == c.neq;
      if (!rep_enforces && !rep_projects(ri, attr)) return false;
    }
  }
  if (user.sources().size() == 2) {
    bool windows_differ = false;
    for (size_t i = 0; i < 2; ++i) {
      if (user.WindowSize(i) != rep.WindowSize((*align)[i])) {
        windows_differ = true;
      }
    }
    if (windows_differ) {
      for (size_t i = 0; i < 2; ++i) {
        if (!rep_projects((*align)[i], "timestamp")) return false;
      }
    }
  }
  return true;
}

Result<AnalyzedQuery> ComposeRepresentative(
    const std::vector<const AnalyzedQuery*>& members, const Catalog& catalog,
    const std::string& result_name) {
  if (members.empty()) {
    return Status::InvalidArgument("no members to merge");
  }
  const AnalyzedQuery& base = *members[0];

  // Alignment of every member onto the base.
  std::vector<std::vector<size_t>> align(members.size());
  for (size_t m = 0; m < members.size(); ++m) {
    auto a = AlignSources(*members[m], base);
    if (!a.has_value()) {
      return Status::InvalidArgument(
          "members are not over the same stream set");
    }
    align[m] = *a;
    if (m > 0 && !MergeCompatible(base, *members[m])) {
      return Status::InvalidArgument("members are not merge-compatible");
    }
  }

  const size_t num_sources = base.sources().size();

  // Aggregate groups: all members equivalent; the representative is the
  // base re-analyzed under the new result name.
  if (base.is_aggregate()) {
    return Analyze(base.ast(), catalog, result_name);
  }

  // ---- SPJ merge ----
  // Per-source merged window (max) and selection hull.
  std::vector<Duration> windows(num_sources, 0);
  std::vector<ConjunctiveClause> hulls(num_sources);
  std::vector<bool> windows_differ(num_sources, false);
  std::vector<bool> selections_differ(num_sources, false);
  for (size_t i = 0; i < num_sources; ++i) {
    Duration w = 0;
    std::vector<ConjunctiveClause> clauses;
    for (size_t m = 0; m < members.size(); ++m) {
      // Index of base source i within member m.
      size_t mi = 0;
      bool found = false;
      for (size_t k = 0; k < num_sources; ++k) {
        if (align[m][k] == i) {
          mi = k;
          found = true;
          break;
        }
      }
      if (!found) return Status::Internal("alignment hole");
      Duration mw = members[m]->WindowSize(mi);
      if (m == 0) {
        w = mw;
      } else if (mw != w) {
        windows_differ[i] = true;
        if (mw == kInfiniteDuration || w == kInfiniteDuration) {
          w = kInfiniteDuration;
        } else {
          w = std::max(w, mw);
        }
      }
      clauses.push_back(members[m]->local_selection(mi));
    }
    windows[i] = w;
    hulls[i] = ClauseHullMany(clauses);
    for (const auto& c : clauses) {
      if (!ClauseImplies(hulls[i], c)) {
        selections_differ[i] = true;
        break;
      }
    }
  }

  // Union of projected (source, attr) pairs, plus re-filtering needs.
  std::vector<std::set<std::string>> projected(num_sources);
  for (size_t m = 0; m < members.size(); ++m) {
    for (const auto& c : members[m]->output_columns()) {
      size_t bi = align[m][c.source];
      projected[bi].insert(
          members[m]->sources()[c.source].schema->attribute(c.attr).name);
    }
  }
  for (size_t i = 0; i < num_sources; ++i) {
    if (selections_differ[i]) {
      // Every attribute any member constrains may need re-filtering.
      for (size_t m = 0; m < members.size(); ++m) {
        size_t mi = 0;
        for (size_t k = 0; k < num_sources; ++k) {
          if (align[m][k] == i) mi = k;
        }
        for (const auto& [attr, c] :
             members[m]->local_selection(mi).constraints()) {
          projected[i].insert(attr);
        }
      }
    }
  }
  bool any_window_differs =
      std::any_of(windows_differ.begin(), windows_differ.end(),
                  [](bool b) { return b; });
  if (any_window_differs && num_sources > 1) {
    for (size_t i = 0; i < num_sources; ++i) {
      if (!base.sources()[i].schema->HasAttribute("timestamp")) {
        return Status::FailedPrecondition(
            "window re-tightening requires a 'timestamp' attribute on " +
            base.sources()[i].from.stream);
      }
      projected[i].insert("timestamp");
    }
  }

  // ---- Build the representative's AST ----
  ParsedQuery ast;
  for (size_t i = 0; i < num_sources; ++i) {
    FromItem item = base.sources()[i].from;
    item.window = WindowSpec{windows[i]};
    ast.from.push_back(std::move(item));
  }
  for (size_t i = 0; i < num_sources; ++i) {
    // Deterministic order: schema attribute order.
    for (const auto& def : base.sources()[i].schema->attributes()) {
      if (projected[i].count(def.name) == 0) continue;
      SelectItem item;
      item.kind = SelectItem::Kind::kColumn;
      item.qualifier = base.sources()[i].alias();
      item.name = def.name;
      ast.select.push_back(std::move(item));
    }
  }
  if (ast.select.empty()) {
    return Status::Internal("representative projects no columns");
  }

  ExprPtr where;
  for (size_t i = 0; i < num_sources; ++i) {
    if (hulls[i].IsTautology()) continue;
    // Qualify the hull's bare attribute names with the source alias.
    const std::string& alias = base.sources()[i].alias();
    for (const auto& [attr, c] : hulls[i].constraints()) {
      where = ConjoinNullable(
          where, ConstraintToExpr(MakeColumn(alias, attr), c));
    }
    for (const auto& r : hulls[i].residual()) {
      // Merge-compatibility guarantees equal residuals; they carry bare
      // names, so requalify them with the alias.
      struct Q {
        const std::string& alias;
        ExprPtr R(const ExprPtr& e) const {
          switch (e->kind()) {
            case ExprKind::kLiteral:
              return e;
            case ExprKind::kColumnRef: {
              const auto& col = static_cast<const ColumnRefExpr&>(*e);
              if (!col.qualifier().empty()) return e;
              return MakeColumn(alias, col.name());
            }
            case ExprKind::kComparison: {
              const auto& c = static_cast<const ComparisonExpr&>(*e);
              return MakeCompare(c.op(), R(c.lhs()), R(c.rhs()));
            }
            case ExprKind::kLogical: {
              const auto& l = static_cast<const LogicalExpr&>(*e);
              std::vector<ExprPtr> children;
              for (const auto& ch : l.children()) children.push_back(R(ch));
              if (l.op() == LogicalOp::kNot) return MakeNot(children[0]);
              return l.op() == LogicalOp::kAnd ? MakeAnd(std::move(children))
                                               : MakeOr(std::move(children));
            }
            case ExprKind::kArithmetic: {
              const auto& a = static_cast<const ArithmeticExpr&>(*e);
              return MakeArith(a.op(), R(a.lhs()), R(a.rhs()));
            }
          }
          return e;
        }
      } q{alias};
      where = ConjoinNullable(where, q.R(r));
    }
  }
  for (const auto& j : base.equi_joins()) {
    const auto& ls = base.sources()[j.left_source];
    const auto& rs = base.sources()[j.right_source];
    where = ConjoinNullable(
        where, MakeCompare(CompareOp::kEq,
                           MakeColumn(ls.alias(),
                                      ls.schema->attribute(j.left_attr).name),
                           MakeColumn(
                               rs.alias(),
                               rs.schema->attribute(j.right_attr).name)));
  }
  for (const auto& r : base.cross_residual()) {
    where = ConjoinNullable(where, r);
  }
  ast.where = where;

  COSMOS_ASSIGN_OR_RETURN(AnalyzedQuery rep,
                          Analyze(ast, catalog, result_name));
  // Safety net: the representative must contain every member.
  for (const auto* m : members) {
    if (!QueryContains(rep, *m)) {
      return Status::Internal(
          "composed representative does not contain a member: " +
          Unparse(rep));
    }
  }
  return rep;
}

}  // namespace cosmos
