#include "core/query_group.h"

#include "common/string_util.h"

namespace cosmos {

std::string QueryGroup::ResultStreamName() const {
  return name_prefix +
         StrFormat("grp_%llu_v%llu",
                   static_cast<unsigned long long>(group_id),
                   static_cast<unsigned long long>(version));
}

}  // namespace cosmos
