#include "core/system.h"

#include "common/string_util.h"

namespace cosmos {

CosmosSystem::CosmosSystem(DisseminationTree tree, SystemOptions options,
                           Simulator* sim)
    : sim_(sim),
      catalog_(options.directory, tree.num_nodes()),
      network_(std::move(tree), options.network, sim),
      options_(options),
      distributor_(options.distribution) {
  network_.SetTelemetry(options_.metrics, options_.tracer);
  if (sim_ != nullptr && options_.metrics != nullptr) {
    sim_->SetTelemetry(options_.metrics);
  }
  if (sim_ != nullptr && options_.tracer != nullptr) {
    Simulator* s = sim_;
    options_.tracer->SetClock([s] { return s->now(); });
  }
}

Status CosmosSystem::AddProcessor(NodeId node) {
  if (node < 0 || node >= network_.num_nodes()) {
    return Status::InvalidArgument(StrFormat("bad node %d", node));
  }
  if (processors_.count(node) > 0) {
    return Status::AlreadyExists(StrFormat("processor at node %d", node));
  }
  ProcessorOptions popts = options_.processor;
  popts.metrics = options_.metrics;
  popts.tracer = options_.tracer;
  processors_.emplace(node, std::make_unique<Processor>(
                                node, &catalog_, &network_, popts));
  distributor_.AddProcessor(node);
  return Status::OK();
}

Processor* CosmosSystem::processor(NodeId node) {
  auto it = processors_.find(node);
  return it == processors_.end() ? nullptr : it->second.get();
}

Status CosmosSystem::RegisterSource(std::shared_ptr<const Schema> schema,
                                    double rate_tuples_per_sec,
                                    NodeId publisher_node) {
  if (publisher_node < 0 || publisher_node >= network_.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("bad publisher node %d", publisher_node));
  }
  const std::string stream = schema->stream_name();
  COSMOS_RETURN_IF_ERROR(catalog_.RegisterStream(
      std::move(schema), rate_tuples_per_sec, publisher_node));
  // Paper §2: "the data sources advertise the source streams that they
  // provide".
  network_.Advertise(publisher_node, stream);
  return Status::OK();
}

std::vector<Flow> CosmosSystem::CollectFlows() const {
  std::vector<Flow> flows;
  for (const auto& [node, p] : processors_) {
    p->CollectFlows(&flows);
  }
  return flows;
}

std::vector<Flow> CosmosSystem::MeasuredFlows(
    const std::map<std::string, uint64_t>& baseline_bytes,
    double window_seconds) const {
  std::vector<Flow> flows;
  if (window_seconds <= 0.0) return flows;
  for (const auto& [stream, total] : network_.published_bytes_by_stream()) {
    auto bit = baseline_bytes.find(stream);
    uint64_t before = bit == baseline_bytes.end() ? 0 : bit->second;
    if (total <= before) continue;
    double rate_bps = static_cast<double>(total - before) / window_seconds;
    // Publishers come from CBN advertisements, so both source streams
    // (advertised by RegisterSource) and representative result streams
    // (advertised by their processor) are covered.
    const std::set<NodeId>* publishers = network_.PublishersOf(stream);
    if (publishers == nullptr) continue;
    for (NodeId p : *publishers) {
      network_.ForEachSubscription(
          [&flows, &stream, p, rate_bps](NodeId node,
                                         const Profile& profile) {
            if (node == p || !profile.WantsStream(stream)) return;
            flows.push_back(Flow{p, node, rate_bps});
          });
    }
  }
  return flows;
}

Result<OverlayOptimizer::Stats> CosmosSystem::SelfTune(
    OptimizerOptions options, const std::vector<Flow>* flows) {
  if (!overlay_.has_value()) {
    return Status::FailedPrecondition("no overlay registered; SetOverlay()");
  }
  if (options.metrics == nullptr) options.metrics = options_.metrics;
  if (options.tracer == nullptr) options.tracer = options_.tracer;
  OverlayOptimizer optimizer(*overlay_, std::move(options));
  std::vector<Flow> estimated;
  if (flows == nullptr) {
    estimated = CollectFlows();
    flows = &estimated;
  }
  OverlayOptimizer::Stats stats;
  COSMOS_ASSIGN_OR_RETURN(
      DisseminationTree improved,
      optimizer.Optimize(network_.tree(), *flows, &stats));
  if (stats.swaps_applied > 0) {
    COSMOS_RETURN_IF_ERROR(network_.RebuildTree(std::move(improved)));
  }
  return stats;
}

Status CosmosSystem::FailProcessor(NodeId node) {
  auto it = processors_.find(node);
  if (it == processors_.end()) {
    return Status::NotFound(StrFormat("no processor at node %d", node));
  }
  if (processors_.size() == 1) {
    return Status::FailedPrecondition(
        "cannot fail the only processor in the system");
  }
  std::vector<Processor::QueryRecord> orphans = it->second->DrainQueries();
  processors_.erase(it);
  // The distributor stops routing new queries there and releases the old
  // placements.
  for (const auto& r : orphans) {
    (void)distributor_.Release(r.query_id);
    query_home_.erase(r.query_id);
  }
  QueryDistributor fresh(options_.distribution);
  for (const auto& [n, p] : processors_) fresh.AddProcessor(n);
  // Preserve current loads so re-homing balances against live queries.
  for (const auto& [qid, home] : query_home_) {
    (void)fresh.RecordPlacement(qid, "", home);
  }
  distributor_ = std::move(fresh);

  // Re-home the orphans (their ids are stable; users keep their
  // callbacks).
  for (auto& r : orphans) {
    COSMOS_ASSIGN_OR_RETURN(
        AnalyzedQuery analyzed,
        ParseAndAnalyze(r.cql, catalog_, "result_" + r.query_id));
    COSMOS_ASSIGN_OR_RETURN(
        NodeId home,
        distributor_.Assign(r.query_id, MergeSignature(analyzed)));
    COSMOS_RETURN_IF_ERROR(processors_.at(home)->SubmitQuery(
        r.query_id, r.cql, r.user_node, std::move(r.callback)));
    query_home_[r.query_id] = home;
  }
  return Status::OK();
}

Status CosmosSystem::RepairLinks() {
  if (!overlay_.has_value()) {
    return Status::FailedPrecondition("no overlay registered; SetOverlay()");
  }
  return network_.Repair(*overlay_);
}

Status CosmosSystem::PublishSourceTuple(const std::string& stream,
                                        const Tuple& tuple) {
  COSMOS_ASSIGN_OR_RETURN(StreamInfo info, catalog_.Lookup(stream));
  if (info.publisher_node < 0) {
    return Status::FailedPrecondition(
        StrFormat("stream '%s' has no publisher node", stream.c_str()));
  }
  Datagram d{stream, tuple};
  if (injection_log_enabled_) injection_log_.emplace_back(stream, tuple);
  rate_monitor_.Record(stream, tuple.timestamp(), d.SerializedSize());
  if (tuple.timestamp() > max_event_time_) {
    max_event_time_ = tuple.timestamp();
  }
  network_.Publish(info.publisher_node, std::move(d));
  return Status::OK();
}

size_t CosmosSystem::CalibrateRates() {
  return rate_monitor_.CalibrateCatalog(catalog_, max_event_time_);
}

Status CosmosSystem::Replay(ReplayMerger& merger) {
  while (auto t = merger.Next()) {
    COSMOS_RETURN_IF_ERROR(
        PublishSourceTuple(t->schema()->stream_name(), *t));
  }
  return Status::OK();
}

Result<std::string> CosmosSystem::SubmitQuery(const std::string& cql,
                                              NodeId user_node,
                                              DeliveryCallback callback) {
  if (processors_.empty()) {
    return Status::FailedPrecondition("no processors in the system");
  }
  std::string query_id =
      StrFormat("q%llu", static_cast<unsigned long long>(next_query_id_++));
  // Analyze once here to derive the merge signature for load management.
  COSMOS_ASSIGN_OR_RETURN(
      AnalyzedQuery analyzed,
      ParseAndAnalyze(cql, catalog_, "result_" + query_id));
  COSMOS_ASSIGN_OR_RETURN(NodeId home,
                          distributor_.Assign(query_id,
                                              MergeSignature(analyzed)));
  Status status = processors_.at(home)->SubmitQuery(query_id, cql, user_node,
                                                    std::move(callback));
  if (!status.ok()) {
    (void)distributor_.Release(query_id);
    return status;
  }
  query_home_[query_id] = home;
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("core.queries_submitted")->Increment();
  }
  return query_id;
}

Status CosmosSystem::RemoveQuery(const std::string& query_id) {
  auto it = query_home_.find(query_id);
  if (it == query_home_.end()) {
    return Status::NotFound(StrFormat("query '%s'", query_id.c_str()));
  }
  COSMOS_RETURN_IF_ERROR(processors_.at(it->second)->RemoveQuery(query_id));
  (void)distributor_.Release(query_id);
  query_home_.erase(it);
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("core.queries_removed")->Increment();
  }
  return Status::OK();
}

size_t CosmosSystem::TotalQueries() const {
  size_t total = 0;
  for (const auto& [node, p] : processors_) total += p->num_queries();
  return total;
}

size_t CosmosSystem::TotalGroups() const {
  size_t total = 0;
  for (const auto& [node, p] : processors_) {
    total += p->grouping().num_groups();
  }
  return total;
}

double CosmosSystem::TotalMemberRate() const {
  double total = 0.0;
  for (const auto& [node, p] : processors_) {
    total += p->grouping().TotalMemberRate();
  }
  return total;
}

double CosmosSystem::TotalRepresentativeRate() const {
  double total = 0.0;
  for (const auto& [node, p] : processors_) {
    total += p->grouping().TotalRepresentativeRate();
  }
  return total;
}

}  // namespace cosmos
