#ifndef COSMOS_CORE_RATE_ESTIMATOR_H_
#define COSMOS_CORE_RATE_ESTIMATOR_H_

#include "query/analyzer.h"
#include "stream/catalog.h"

namespace cosmos {

// The C(q) model of the paper's benefit estimate Σᵢ C(qᵢ) − C(q): the
// expected rate (bytes per second) of a query's result stream, derived from
// catalog arrival rates, uniform-range selectivity of the canonical
// selections, a window-join output model, and schema row widths.
struct RateEstimatorOptions {
  // Equality selectivity used when an attribute has no declared range.
  double default_eq_selectivity = 0.1;
  // Selectivity charged per opaque residual conjunct.
  double residual_selectivity = 0.5;
  // Join-key match probability when the key domain size is unknown.
  double default_join_selectivity = 0.01;
};

class RateEstimator {
 public:
  explicit RateEstimator(const Catalog* catalog,
                         RateEstimatorOptions options = {});

  // Tuples per second entering source `i` of `q` after its local selection.
  double FilteredInputRate(const AnalyzedQuery& q, size_t i) const;

  // Result tuples per second.
  double EstimateTupleRate(const AnalyzedQuery& q) const;

  // C(q): result bytes per second (tuple rate × output row width).
  double EstimateOutputRate(const AnalyzedQuery& q) const;

  // The benefit of merging `members` into `rep` (paper §4):
  // Σ C(member) − C(rep). Positive = merging saves bandwidth.
  double MergeBenefit(const std::vector<const AnalyzedQuery*>& members,
                      const AnalyzedQuery& rep) const;

  // Fast prediction of C(merge(a, b)) without composing the merged query:
  // hulls the selections, maxes the windows and unions the projections
  // directly. Used by the greedy grouping loop to rank candidate groups;
  // the winner is then composed exactly once. `b_to_a` aligns b's sources
  // onto a's (AlignSources(b, a)).
  double EstimateMergedOutputRate(const AnalyzedQuery& a,
                                  const AnalyzedQuery& b,
                                  const std::vector<size_t>& b_to_a) const;

 private:
  double JoinSelectivity(const AnalyzedQuery& q) const;

  const Catalog* catalog_;
  RateEstimatorOptions options_;
};

}  // namespace cosmos

#endif  // COSMOS_CORE_RATE_ESTIMATOR_H_
