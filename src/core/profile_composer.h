#ifndef COSMOS_CORE_PROFILE_COMPOSER_H_
#define COSMOS_CORE_PROFILE_COMPOSER_H_

#include "cbn/profile.h"
#include "cbn/router.h"
#include "core/containment.h"

namespace cosmos {

// Profile composition (paper §4).

// The profile a processor submits to the data layer to pull the source data
// of `query`:
//   S = the FROM streams,
//   P = per stream, every attribute the query references,
//   F = per stream, the query's canonical local selection.
Profile ComposeSourceProfile(const AnalyzedQuery& query);

// The re-tightening profile a user submits to pull their own result out of
// the representative's result stream (paper §4's p1/p2 example):
//   S = {rep result stream},
//   P = the user query's output columns, mapped to the representative's
//       output attribute names,
//   F = one filter re-imposing (a) the user's selection constraints that
//       the representative loosened and (b) the Lemma-1 window condition
//       when the user's windows are tighter than the representative's.
// Requires QueryContains(rep, user) — i.e. they are group mates.
Result<Profile> ComposeUserProfile(const AnalyzedQuery& user,
                                   const AnalyzedQuery& rep);

// Convenience for unmerged queries: the profile retrieving the whole result
// stream of `query` (unique stream name, no filter, full projection) — the
// traditional per-query delivery the paper contrasts against.
Profile ComposeWholeStreamProfile(const std::string& result_stream);

// The representative's output-attribute names for the user query's output
// columns, in the user's SELECT order (aggregate queries map positionally
// and return an empty vector). Used to re-present delivered tuples in the
// user's own result schema. Requires QueryContains(rep, user).
Result<std::vector<std::string>> UserColumnRepNames(const AnalyzedQuery& user,
                                                    const AnalyzedQuery& rep);

// Wraps `inner` so each delivered representative-stream tuple is re-shaped
// into the user query's result schema — user attribute names, user column
// order, user result-stream name — before the user sees it. With this, a
// merged query's delivery is byte-identical to an unmerged one's.
DeliveryCallback MakePresentationCallback(const AnalyzedQuery& user,
                                          const AnalyzedQuery& rep,
                                          DeliveryCallback inner);

}  // namespace cosmos

#endif  // COSMOS_CORE_PROFILE_COMPOSER_H_
