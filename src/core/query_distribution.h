#ifndef COSMOS_CORE_QUERY_DISTRIBUTION_H_
#define COSMOS_CORE_QUERY_DISTRIBUTION_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "overlay/graph.h"

namespace cosmos {

// How the load-management service picks the processor for a new query
// (paper §2: "a user query is first distributed to a processor by the load
// management service").
enum class DistributionPolicy {
  kRoundRobin,
  kLeastLoaded,
  // Prefer a processor that already hosts a group with the same merge
  // signature (maximizes merging opportunities), falling back to least
  // loaded. This is the policy COSMOS wants: co-locating overlapping
  // queries is what makes the query-merging layer effective.
  kSignatureAffinity,
};

// Tracks per-processor load and signature placement and assigns queries.
class QueryDistributor {
 public:
  explicit QueryDistributor(
      DistributionPolicy policy = DistributionPolicy::kSignatureAffinity);

  void AddProcessor(NodeId processor);
  bool HasProcessor(NodeId processor) const;
  const std::vector<NodeId>& processors() const { return processors_; }

  // Picks a processor for a query with `signature`; records the placement.
  Result<NodeId> Assign(const std::string& query_id,
                        const std::string& signature);

  // Force-records an existing placement (used when rebuilding distributor
  // state after a processor failure). The processor must be registered.
  Status RecordPlacement(const std::string& query_id,
                         const std::string& signature, NodeId processor);

  // Releases a previous placement.
  Status Release(const std::string& query_id);

  int LoadOf(NodeId processor) const;

 private:
  DistributionPolicy policy_;
  std::vector<NodeId> processors_;
  std::map<NodeId, int> load_;
  size_t round_robin_next_ = 0;
  // signature -> processor hosting queries of that signature.
  std::map<std::string, NodeId> signature_home_;
  struct Placement {
    NodeId processor;
    std::string signature;
  };
  std::map<std::string, Placement> placements_;
};

}  // namespace cosmos

#endif  // COSMOS_CORE_QUERY_DISTRIBUTION_H_
