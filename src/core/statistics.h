#ifndef COSMOS_CORE_STATISTICS_H_
#define COSMOS_CORE_STATISTICS_H_

#include <deque>
#include <map>
#include <string>

#include "common/time.h"
#include "stream/catalog.h"

namespace cosmos {

// Observed-rate statistics over a sliding event-time window. The benefit
// model C(q) starts from catalog rate *estimates*; a self-tuning deployment
// measures the real arrival rates and recalibrates (COSMOS = COoperative
// and Self-tuning Management Of Streaming data). CosmosSystem feeds every
// published source tuple through a RateMonitor; CalibrateCatalog() writes
// the observed rates back so subsequent grouping decisions use reality.
class RateMonitor {
 public:
  explicit RateMonitor(Duration window = 10 * kMinute);

  Duration window() const { return window_; }

  // Records one tuple of `stream` at event time `ts` with `bytes` payload.
  // Timestamps may arrive slightly out of order; pruning uses the maximum
  // seen so far.
  void Record(const std::string& stream, Timestamp ts, size_t bytes);

  // Observed tuples per second of `stream` over the trailing window ending
  // at `now` (0.0 when nothing was observed).
  double TupleRate(const std::string& stream, Timestamp now) const;

  // Observed bytes per second.
  double ByteRate(const std::string& stream, Timestamp now) const;

  // Tuples currently inside the window.
  size_t WindowCount(const std::string& stream, Timestamp now) const;

  // Lifetime totals (never pruned).
  uint64_t TotalTuples(const std::string& stream) const;

  // Writes each observed stream's tuple rate into `catalog` (streams the
  // catalog does not know are skipped). Returns how many were updated.
  size_t CalibrateCatalog(Catalog& catalog, Timestamp now) const;

  std::vector<std::string> ObservedStreams() const;

  // Largest relative drift |observed/estimate - 1| between observed tuple
  // rates and the catalog's current estimates at `now` (streams the catalog
  // does not know, or with nothing in the window, are skipped). The
  // SelfTuner gates catalog recalibration on this.
  double MaxDriftRatio(const Catalog& catalog, Timestamp now) const;

 private:
  struct Series {
    // (event time, bytes), pruned against the window lazily.
    mutable std::deque<std::pair<Timestamp, size_t>> events;
    mutable uint64_t window_bytes = 0;
    uint64_t total_tuples = 0;
    Timestamp max_ts = kInvalidTimestamp;
  };

  void Prune(const Series& s, Timestamp now) const;
  // Effective averaging span at `now`: the window, clipped to the span of
  // data actually observed (so early measurements are not diluted).
  double SpanSeconds(const Series& s, Timestamp now) const;

  Duration window_;
  std::map<std::string, Series> series_;
};

}  // namespace cosmos

#endif  // COSMOS_CORE_STATISTICS_H_
