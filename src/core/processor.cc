#include "core/processor.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace cosmos {
namespace {

GroupingOptions EffectiveGrouping(const ProcessorOptions& options) {
  GroupingOptions g = options.grouping;
  if (!options.enable_merging) {
    g.max_candidates = 0;  // never examine existing groups => singletons
  }
  return g;
}

}  // namespace

Processor::Processor(NodeId node, const Catalog* catalog,
                     ContentBasedNetwork* network, ProcessorOptions options)
    : node_(node),
      catalog_(catalog),
      network_(network),
      options_(options),
      grouping_(catalog, EffectiveGrouping(options), options.rates,
                StrFormat("p%d_", node)),
      wrapper_(catalog) {
  wrapper_.SetTelemetry(options_.metrics, options_.tracer, node_);
}

Status Processor::SubmitQuery(const std::string& query_id,
                              const std::string& cql, NodeId user_node,
                              DeliveryCallback callback) {
  if (queries_.count(query_id) > 0) {
    return Status::AlreadyExists(
        StrFormat("query '%s'", query_id.c_str()));
  }
  COSMOS_ASSIGN_OR_RETURN(
      AnalyzedQuery analyzed,
      ParseAndAnalyze(cql, *catalog_, "result_" + query_id));

  COSMOS_ASSIGN_OR_RETURN(GroupingEngine::AddResult placement,
                          grouping_.AddQuery(query_id, analyzed));
  if (options_.metrics != nullptr) {
    options_.metrics
        ->GetCounter(placement.created_new_group ? "core.groups_formed"
                                                 : "core.group_merges")
        ->Increment();
    options_.metrics->GetGauge("core.merge_benefit")
        ->Add(placement.marginal_benefit);
    if (placement.representative_changed) {
      options_.metrics->GetCounter("core.representative_changes")
          ->Increment();
    }
  }

  QueryRuntime rt;
  rt.analyzed = std::move(analyzed);
  rt.cql = cql;
  rt.group_id = placement.group_id;
  rt.user_node = user_node;
  rt.callback = std::move(callback);
  queries_.emplace(query_id, std::move(rt));

  Status status = SyncGroup(placement.group_id);
  if (!status.ok()) {
    // Roll back the placement so the engine and runtime stay consistent.
    (void)grouping_.RemoveQuery(query_id);
    queries_.erase(query_id);
    return status;
  }
  return Status::OK();
}

Status Processor::UninstallGroup(GroupRuntime& rt) {
  if (!rt.spe_query_id.empty()) {
    COSMOS_RETURN_IF_ERROR(wrapper_.RemoveQuery(rt.spe_query_id));
    rt.spe_query_id.clear();
  }
  return Status::OK();
}

void Processor::RefreshSourceSubscription() {
  // The union of every installed representative's source needs, as one
  // profile. Subscribe the new one before unsubscribing the old so source
  // coverage never lapses.
  bool any = false;
  Profile merged;
  for (const auto& [gid, group] : grouping_.groups()) {
    Profile p = ComposeSourceProfile(group.representative);
    merged = any ? MergeProfiles(merged, p) : std::move(p);
    any = true;
  }
  ProfileId old = source_profile_;
  if (any) {
    NativeSpeWrapper* wrapper = &wrapper_;
    source_profile_ = network_->Subscribe(
        node_, std::move(merged),
        [wrapper](const std::string& stream, const Tuple& tuple) {
          wrapper->DeliverTuple(stream, tuple);
        });
  } else {
    source_profile_ = 0;
  }
  if (old != 0) network_->Unsubscribe(old);
}

Status Processor::SyncGroup(uint64_t group_id) {
  const QueryGroup* group = grouping_.FindGroup(group_id);
  GroupRuntime& rt = group_runtime_[group_id];

  if (group == nullptr) {
    // Group dissolved: tear everything down.
    COSMOS_RETURN_IF_ERROR(UninstallGroup(rt));
    group_runtime_.erase(group_id);
    RefreshSourceSubscription();
    if (options_.metrics != nullptr) {
      options_.metrics->GetCounter("core.groups_dissolved")->Increment();
    }
    return Status::OK();
  }

  if (rt.installed_version != group->version) {
    COSMOS_RETURN_IF_ERROR(UninstallGroup(rt));

    const std::string result_stream = group->ResultStreamName();
    const std::string spe_id = StrFormat(
        "grp_%llu", static_cast<unsigned long long>(group_id));

    // Install the representative on the SPE through the query wrapper; its
    // results are published into the CBN as the group's result stream,
    // which this processor advertises (paper §2: "the processors would
    // also advertise the result streams that they generate").
    ContentBasedNetwork* network = network_;
    NodeId node = node_;
    std::string cql = Unparse(group->representative);
    network_->Advertise(node_, result_stream);
    COSMOS_RETURN_IF_ERROR(wrapper_.InstallQuery(
        spe_id, cql, result_stream,
        [network, node, result_stream](const std::string& /*qid*/,
                                       const Tuple& tuple) {
          network->Publish(node, Datagram{result_stream, tuple});
        }));
    rt.spe_query_id = spe_id;
    rt.result_stream = result_stream;
    rt.installed_version = group->version;
    RefreshSourceSubscription();

    // Refresh every member's re-tightened user profile: they must point at
    // the (possibly renamed, possibly widened) new result stream.
    for (const auto& member_id : group->member_ids) {
      auto qit = queries_.find(member_id);
      if (qit == queries_.end()) continue;
      QueryRuntime& q = qit->second;
      if (q.user_profile != 0) {
        network_->Unsubscribe(q.user_profile);
        q.user_profile = 0;
      }
      COSMOS_ASSIGN_OR_RETURN(
          Profile user_profile,
          ComposeUserProfile(q.analyzed, group->representative));
      q.user_profile = network_->Subscribe(
          q.user_node, std::move(user_profile),
          MakePresentationCallback(q.analyzed, group->representative,
                                   q.callback));
    }
    return Status::OK();
  }

  // Version unchanged: only newly added members (no profile yet) need a
  // subscription.
  for (const auto& member_id : group->member_ids) {
    auto qit = queries_.find(member_id);
    if (qit == queries_.end()) continue;
    QueryRuntime& q = qit->second;
    if (q.user_profile != 0) continue;
    COSMOS_ASSIGN_OR_RETURN(
        Profile user_profile,
        ComposeUserProfile(q.analyzed, group->representative));
    q.user_profile = network_->Subscribe(
        q.user_node, std::move(user_profile),
        MakePresentationCallback(q.analyzed, group->representative,
                                 q.callback));
  }
  return Status::OK();
}

std::vector<Processor::QueryRecord> Processor::DrainQueries() {
  std::vector<QueryRecord> records;
  records.reserve(queries_.size());
  for (const auto& [id, q] : queries_) {
    QueryRecord r;
    r.query_id = id;
    r.cql = q.cql;
    r.user_node = q.user_node;
    r.callback = q.callback;
    records.push_back(std::move(r));
  }
  // Tear down in a stable order; RemoveQuery keeps grouping and CBN state
  // consistent at every step.
  for (const auto& r : records) {
    (void)RemoveQuery(r.query_id);
  }
  return records;
}

void Processor::CollectFlows(std::vector<Flow>* flows) const {
  const RateEstimator& est = grouping_.rate_estimator();
  for (const auto& [gid, group] : grouping_.groups()) {
    // Source streams: publisher -> processor, filtered rate x row width.
    for (size_t i = 0; i < group.representative.sources().size(); ++i) {
      const auto& src = group.representative.sources()[i];
      auto info = catalog_->Lookup(src.from.stream);
      if (!info.ok() || info->publisher_node < 0) continue;
      Flow f;
      f.source = info->publisher_node;
      f.sink = node_;
      f.rate_bps = est.FilteredInputRate(group.representative, i) *
                   static_cast<double>(src.schema->EstimatedRowWidth() + 8);
      flows->push_back(f);
    }
    // Result streams: processor -> each member's user node at the member's
    // (post-split) rate.
    for (const auto& member_id : group.member_ids) {
      auto qit = queries_.find(member_id);
      if (qit == queries_.end()) continue;
      Flow f;
      f.source = node_;
      f.sink = qit->second.user_node;
      f.rate_bps = est.EstimateOutputRate(qit->second.analyzed);
      flows->push_back(f);
    }
  }
}

Status Processor::RemoveQuery(const std::string& query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound(StrFormat("query '%s'", query_id.c_str()));
  }
  QueryRuntime& q = it->second;
  if (q.user_profile != 0) {
    network_->Unsubscribe(q.user_profile);
  }
  uint64_t group_id = q.group_id;
  queries_.erase(it);
  COSMOS_RETURN_IF_ERROR(grouping_.RemoveQuery(query_id).status());
  return SyncGroup(group_id);
}

}  // namespace cosmos
