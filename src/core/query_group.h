#ifndef COSMOS_CORE_QUERY_GROUP_H_
#define COSMOS_CORE_QUERY_GROUP_H_

#include <string>
#include <vector>

#include "query/analyzer.h"

namespace cosmos {

// A group of merge-compatible queries sharing one representative query
// (paper §4): the representative runs on the SPE; member results are split
// out of its result stream by re-tightened user profiles.
struct QueryGroup {
  uint64_t group_id = 0;
  // Bumped whenever the representative changes; result streams are named
  // "<prefix>grp_<id>_v<version>" so stale subscriptions never alias new
  // ones. The prefix namespaces groups per processor — COSMOS stream names
  // are globally unique (paper §3).
  uint64_t version = 0;
  std::string name_prefix;

  std::vector<std::string> member_ids;
  std::vector<AnalyzedQuery> members;

  AnalyzedQuery representative;
  std::string signature;  // MergeSignature of the members

  // Estimated C(rep) at last recompute (bytes/sec).
  double representative_rate = 0.0;

  std::string ResultStreamName() const;

  size_t size() const { return members.size(); }
};

}  // namespace cosmos

#endif  // COSMOS_CORE_QUERY_GROUP_H_
