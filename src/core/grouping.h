#ifndef COSMOS_CORE_GROUPING_H_
#define COSMOS_CORE_GROUPING_H_

#include <map>
#include <memory>

#include "core/merger.h"
#include "core/query_group.h"
#include "core/rate_estimator.h"

namespace cosmos {

struct GroupingOptions {
  // Only merge when the estimated marginal benefit strictly exceeds this
  // (bytes/sec). Zero reproduces the paper's greedy "maximum benefit" rule.
  double min_benefit = 0.0;
  // Cap on candidate groups examined per insertion (with the signature
  // index this rarely binds; it bounds worst-case insert latency).
  size_t max_candidates = 256;
};

// The incremental greedy query-grouping optimizer (paper §4): each new
// query is assigned to the existing compatible group with the maximum
// positive marginal benefit
//     [C(rep_g) + C(q)] - C(rep_{g ∪ {q}})
// or opens a new singleton group when no merge is beneficial. Groups are
// indexed by MergeSignature, so only structurally compatible groups are
// examined.
class GroupingEngine {
 public:
  // `name_prefix` namespaces the groups' result-stream names (processors
  // pass "p<node>_" so stream names stay globally unique across the
  // system).
  GroupingEngine(const Catalog* catalog, GroupingOptions options = {},
                 RateEstimatorOptions rate_options = {},
                 std::string name_prefix = "");

  struct AddResult {
    uint64_t group_id = 0;
    bool created_new_group = false;
    // True when the group's representative changed (the processor must
    // reinstall the SPE query and refresh subscriptions).
    bool representative_changed = false;
    double marginal_benefit = 0.0;
  };

  // Inserts `query` (analyzed, result name irrelevant — the group assigns
  // its own); `query_id` must be unique.
  Result<AddResult> AddQuery(const std::string& query_id,
                             const AnalyzedQuery& query);

  // Removes a query; the group shrinks (and is dropped when empty). The
  // representative is recomposed from the remaining members.
  Result<AddResult> RemoveQuery(const std::string& query_id);

  const std::map<uint64_t, QueryGroup>& groups() const { return groups_; }
  const QueryGroup* FindGroup(uint64_t group_id) const;
  const QueryGroup* GroupOf(const std::string& query_id) const;

  size_t num_queries() const { return query_to_group_.size(); }
  size_t num_groups() const { return groups_.size(); }

  // #groups / #queries — Figure 4(b)'s metric.
  double GroupingRatio() const;

  // Σ C(qᵢ) over all member queries (the no-merging cost) and
  // Σ C(rep_g) (the merged cost); their gap over the former is the
  // rate-model benefit ratio.
  double TotalMemberRate() const;
  double TotalRepresentativeRate() const;

  const RateEstimator& rate_estimator() const { return estimator_; }

  // Bookkeeping invariants (DCHECK'd after every mutation): every grouped
  // query maps to a live group, member lists and the query index agree,
  // the signature index holds each group exactly once, and estimated group
  // costs are finite and non-negative.
  bool CheckInvariants() const;

 private:
  Result<AnalyzedQuery> Recompose(QueryGroup& group);

  const Catalog* catalog_;
  GroupingOptions options_;
  RateEstimator estimator_;
  std::string name_prefix_;
  uint64_t next_group_id_ = 1;
  std::map<uint64_t, QueryGroup> groups_;
  std::map<std::string, uint64_t> query_to_group_;
  std::multimap<std::string, uint64_t> by_signature_;
};

}  // namespace cosmos

#endif  // COSMOS_CORE_GROUPING_H_
