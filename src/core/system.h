#ifndef COSMOS_CORE_SYSTEM_H_
#define COSMOS_CORE_SYSTEM_H_

#include <map>
#include <memory>
#include <optional>

#include "core/processor.h"
#include "core/query_distribution.h"
#include "core/statistics.h"
#include "stream/generator.h"

namespace cosmos {

struct SystemOptions {
  NetworkOptions network;
  DistributionPolicy distribution = DistributionPolicy::kSignatureAffinity;
  ProcessorOptions processor;
  DirectoryMode directory = DirectoryMode::kFlooded;
  // Telemetry taps (either nullptr = off). When set they are wired through
  // the CBN, every processor's SPE, the simulator and optimizer runs; the
  // tracer's clock is bound to the simulator's virtual time.
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

// The COSMOS system façade (paper Figure 1): a dissemination tree of
// brokers, a subset of nodes equipped with SPEs (processors), data sources
// publishing named streams, and users submitting CQL queries from arbitrary
// nodes. Every node participates in the CBN data layer; only processors run
// the query layer.
class CosmosSystem {
 public:
  explicit CosmosSystem(DisseminationTree tree, SystemOptions options = {},
                        Simulator* sim = nullptr);

  // Registers the physical overlay graph (superset of the tree). Required
  // for SelfTune() and RepairLink() — the tree alone offers no alternate
  // routes.
  void SetOverlay(Graph overlay) { overlay_ = std::move(overlay); }
  bool has_overlay() const { return overlay_.has_value(); }

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  ContentBasedNetwork& network() { return network_; }
  const ContentBasedNetwork& network() const { return network_; }

  // Equips `node` with a stream processing engine.
  Status AddProcessor(NodeId node);
  Processor* processor(NodeId node);
  size_t num_processors() const { return processors_.size(); }

  // Registers a source stream published at `publisher_node`.
  Status RegisterSource(std::shared_ptr<const Schema> schema,
                        double rate_tuples_per_sec, NodeId publisher_node);

  // Injects one tuple of `stream` into the CBN at its publisher.
  Status PublishSourceTuple(const std::string& stream, const Tuple& tuple);

  // When enabled, every PublishSourceTuple is appended (in injection order)
  // to a log the DST ground-truth oracle replays against reference query
  // plans. Off by default — experiments inject millions of tuples.
  void EnableInjectionLog() { injection_log_enabled_ = true; }
  const std::vector<std::pair<std::string, Tuple>>& injection_log() const {
    return injection_log_;
  }

  // Replays an entire timestamp-ordered feed (e.g. SensorDataset replay).
  Status Replay(ReplayMerger& merger);

  // Submits a CQL query from a user at `user_node`; results arrive at
  // `callback`. Returns the assigned query id.
  Result<std::string> SubmitQuery(const std::string& cql, NodeId user_node,
                                  DeliveryCallback callback);

  Status RemoveQuery(const std::string& query_id);

  // ---- self-tuning (the "S" in COSMOS; paper §3.2) ----

  // Source arrival rates observed by the data layer (every
  // PublishSourceTuple is recorded at its event time).
  const RateMonitor& rate_monitor() const { return rate_monitor_; }

  // Replaces the catalog's rate estimates with the observed rates so
  // subsequent grouping decisions use measured reality. Returns the number
  // of streams recalibrated.
  size_t CalibrateRates();

  // Derives the persistent flows (sources -> processors -> users) from the
  // live query population.
  std::vector<Flow> CollectFlows() const;

  // Flows derived from *measured* per-stream published byte counters
  // instead of estimator guesses: for each stream whose published bytes
  // grew past `baseline_bytes` (a previous copy of the CBN's
  // published_bytes_by_stream(); empty = since start), one flow per
  // (advertised publisher -> subscriber wanting the stream) at
  // delta_bytes / window_seconds.
  std::vector<Flow> MeasuredFlows(
      const std::map<std::string, uint64_t>& baseline_bytes,
      double window_seconds) const;

  // Runs the overlay optimizer against the current tree and, when it finds
  // a cheaper one, rebuilds the CBN on it (all subscription state is
  // reinstalled). Requires SetOverlay(). `flows` overrides the estimated
  // CollectFlows() — the SelfTuner passes MeasuredFlows().
  Result<OverlayOptimizer::Stats> SelfTune(
      OptimizerOptions options = {},
      const std::vector<Flow>* flows = nullptr);

  // ---- data-layer fault tolerance ----

  // Fails a tree link; in-flight interest continues to be buffered by the
  // CBN (NetworkOptions::buffer_on_failure).
  Status FailLink(NodeId u, NodeId v) { return network_.FailLink(u, v); }

  // Repairs all failed links with overlay edges and flushes buffers.
  // Requires SetOverlay().
  Status RepairLinks();

  // Query-layer failover: removes the processor at `node` and re-homes its
  // queries onto the remaining processors (same query ids, same user
  // callbacks; the queries re-enter grouping at their new homes). Fails
  // when it is the only processor.
  Status FailProcessor(NodeId node);

  // The attached simulator (nullptr in synchronous mode).
  Simulator* sim() { return sim_; }
  const SystemOptions& options() const { return options_; }

  // Aggregate grouping stats over all processors.
  size_t TotalQueries() const;
  size_t TotalGroups() const;
  double TotalMemberRate() const;
  double TotalRepresentativeRate() const;

 private:
  Simulator* sim_ = nullptr;
  std::optional<Graph> overlay_;
  RateMonitor rate_monitor_;
  bool injection_log_enabled_ = false;
  std::vector<std::pair<std::string, Tuple>> injection_log_;
  Timestamp max_event_time_ = 0;
  Catalog catalog_;
  ContentBasedNetwork network_;
  SystemOptions options_;
  QueryDistributor distributor_;
  std::map<NodeId, std::unique_ptr<Processor>> processors_;
  std::map<std::string, NodeId> query_home_;
  uint64_t next_query_id_ = 1;
};

}  // namespace cosmos

#endif  // COSMOS_CORE_SYSTEM_H_
