#ifndef COSMOS_CORE_COSMOS_H_
#define COSMOS_CORE_COSMOS_H_

// Umbrella header for library users: pulls in the whole public COSMOS API.
// Most applications only need CosmosSystem (core/system.h) plus a topology
// (overlay/topology.h, overlay/spanning_tree.h); include this when
// exploring or prototyping.

#include "cbn/codec.h"            // IWYU pragma: export
#include "cbn/covering.h"         // IWYU pragma: export
#include "cbn/network.h"          // IWYU pragma: export
#include "core/containment.h"     // IWYU pragma: export
#include "core/grouping.h"        // IWYU pragma: export
#include "core/merger.h"          // IWYU pragma: export
#include "core/processor.h"       // IWYU pragma: export
#include "core/profile_composer.h"// IWYU pragma: export
#include "core/query_distribution.h"  // IWYU pragma: export
#include "core/rate_estimator.h"  // IWYU pragma: export
#include "core/statistics.h"      // IWYU pragma: export
#include "core/system.h"          // IWYU pragma: export
#include "core/workload.h"        // IWYU pragma: export
#include "overlay/optimizer.h"    // IWYU pragma: export
#include "overlay/spanning_tree.h"// IWYU pragma: export
#include "overlay/topology.h"     // IWYU pragma: export
#include "query/parser.h"         // IWYU pragma: export
#include "query/unparser.h"       // IWYU pragma: export
#include "spe/engine.h"           // IWYU pragma: export
#include "spe/wrapper.h"          // IWYU pragma: export
#include "stream/auction_dataset.h"  // IWYU pragma: export
#include "stream/sensor_dataset.h"   // IWYU pragma: export

#endif  // COSMOS_CORE_COSMOS_H_
