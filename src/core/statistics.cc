#include "core/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cosmos {

RateMonitor::RateMonitor(Duration window) : window_(window) {
  COSMOS_CHECK_GT(window, 0);
}

void RateMonitor::Record(const std::string& stream, Timestamp ts,
                         size_t bytes) {
  Series& s = series_[stream];
  ++s.total_tuples;
  if (s.max_ts == kInvalidTimestamp || ts > s.max_ts) s.max_ts = ts;
  // An out-of-order record already older than the whole window would lodge
  // behind newer entries (front pruning only removes a prefix) and inflate
  // window stats for up to another full window: count it in the lifetime
  // total only.
  if (ts < s.max_ts - window_) return;
  s.events.emplace_back(ts, bytes);
  s.window_bytes += bytes;
  // Keep memory bounded even without rate queries.
  Prune(s, s.max_ts);
}

void RateMonitor::Prune(const Series& s, Timestamp now) const {
  const Timestamp cutoff = now - window_;
  while (!s.events.empty() && s.events.front().first < cutoff) {
    s.window_bytes -= s.events.front().second;
    s.events.pop_front();
  }
}

double RateMonitor::SpanSeconds(const Series& s, Timestamp now) const {
  if (s.events.empty()) return 0.0;
  Timestamp oldest = s.events.front().first;
  Duration span = std::min<Duration>(window_, now - oldest);
  // A single sample spans at least one second so rates stay finite.
  return std::max(1.0, static_cast<double>(span) / kSecond);
}

double RateMonitor::TupleRate(const std::string& stream,
                              Timestamp now) const {
  auto it = series_.find(stream);
  if (it == series_.end()) return 0.0;
  Prune(it->second, now);
  if (it->second.events.empty()) return 0.0;
  return static_cast<double>(it->second.events.size()) /
         SpanSeconds(it->second, now);
}

double RateMonitor::ByteRate(const std::string& stream, Timestamp now) const {
  auto it = series_.find(stream);
  if (it == series_.end()) return 0.0;
  Prune(it->second, now);
  if (it->second.events.empty()) return 0.0;
  return static_cast<double>(it->second.window_bytes) /
         SpanSeconds(it->second, now);
}

size_t RateMonitor::WindowCount(const std::string& stream,
                                Timestamp now) const {
  auto it = series_.find(stream);
  if (it == series_.end()) return 0;
  Prune(it->second, now);
  return it->second.events.size();
}

uint64_t RateMonitor::TotalTuples(const std::string& stream) const {
  auto it = series_.find(stream);
  return it == series_.end() ? 0 : it->second.total_tuples;
}

size_t RateMonitor::CalibrateCatalog(Catalog& catalog, Timestamp now) const {
  size_t updated = 0;
  for (const auto& [stream, s] : series_) {
    if (!catalog.HasStream(stream)) continue;
    double rate = TupleRate(stream, now);
    if (rate <= 0.0) continue;
    if (catalog.UpdateRate(stream, rate).ok()) ++updated;
  }
  return updated;
}

double RateMonitor::MaxDriftRatio(const Catalog& catalog,
                                  Timestamp now) const {
  double max_drift = 0.0;
  for (const auto& [stream, s] : series_) {
    if (!catalog.HasStream(stream)) continue;
    double observed = TupleRate(stream, now);
    if (observed <= 0.0) continue;
    auto info = catalog.Lookup(stream);
    if (!info.ok() || info->rate_tuples_per_sec <= 0.0) continue;
    double drift =
        std::abs(observed / info->rate_tuples_per_sec - 1.0);
    if (drift > max_drift) max_drift = drift;
  }
  return max_drift;
}

std::vector<std::string> RateMonitor::ObservedStreams() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [stream, s] : series_) out.push_back(stream);
  return out;
}

}  // namespace cosmos
