#ifndef COSMOS_CORE_PROCESSOR_H_
#define COSMOS_CORE_PROCESSOR_H_

#include <map>
#include <memory>

#include "cbn/network.h"
#include "core/grouping.h"
#include "core/profile_composer.h"
#include "overlay/optimizer.h"
#include "query/unparser.h"
#include "spe/wrapper.h"

namespace cosmos {

struct ProcessorOptions {
  // Query merging on/off (off = one singleton group per query, the
  // traditional per-query delivery of Figure 3a).
  bool enable_merging = true;
  GroupingOptions grouping;
  RateEstimatorOptions rates;
  // Telemetry taps (either nullptr = off): grouping counters here, tuple
  // counters and evaluation spans on the embedded SPE. CosmosSystem fills
  // these from its own SystemOptions when it creates processors.
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

// A COSMOS processor (paper §2, Figure 2): the query layer of one node.
// The query-management module analyzes arriving CQL, maintains query
// groups, keeps the group representatives installed on the local SPE
// (through the pluggable wrapper), keeps the source-side CBN subscriptions
// in sync, publishes representative result streams back into the CBN, and
// installs the re-tightened per-user profiles that split shared result
// streams (Figure 3b).
class Processor {
 public:
  Processor(NodeId node, const Catalog* catalog,
            ContentBasedNetwork* network, ProcessorOptions options = {});

  NodeId node() const { return node_; }

  // Handles a user query: the result tuples are delivered to `callback` at
  // overlay node `user_node` through the CBN.
  Status SubmitQuery(const std::string& query_id, const std::string& cql,
                     NodeId user_node, DeliveryCallback callback);

  Status RemoveQuery(const std::string& query_id);

  // Everything needed to resubmit a query elsewhere (processor failover).
  struct QueryRecord {
    std::string query_id;
    std::string cql;
    NodeId user_node = -1;
    DeliveryCallback callback;
  };

  // Tears down every query (SPE installations, source subscription, user
  // profiles) and returns their records for re-homing.
  std::vector<QueryRecord> DrainQueries();

  const GroupingEngine& grouping() const { return grouping_; }
  const NativeSpeWrapper& wrapper() const { return wrapper_; }
  size_t num_queries() const { return queries_.size(); }

  // Representative queries currently installed on the SPE.
  size_t num_installed_representatives() const { return group_runtime_.size(); }

  // Appends this processor's persistent flows for the overlay optimizer:
  // source streams flowing publisher -> this node, and each member's split
  // result stream flowing this node -> the member's user node (rates from
  // the grouping engine's estimator).
  void CollectFlows(std::vector<Flow>* flows) const;

 private:
  struct GroupRuntime {
    uint64_t installed_version = 0;
    std::string spe_query_id;
    std::string result_stream;
  };
  struct QueryRuntime {
    AnalyzedQuery analyzed;
    std::string cql;  // original text, for failover resubmission
    uint64_t group_id = 0;
    NodeId user_node = -1;
    DeliveryCallback callback;
    ProfileId user_profile = 0;
  };

  // Brings the SPE installation and all member subscriptions of `group_id`
  // in line with the grouping engine's current state.
  Status SyncGroup(uint64_t group_id);
  Status UninstallGroup(GroupRuntime& rt);

  // The processor holds ONE data-layer subscription: the merged source
  // profile of all installed representatives. Each plan re-applies its own
  // selection, so over-delivery is filtered at the SPE, never duplicated —
  // a tuple enters the engine exactly once.
  void RefreshSourceSubscription();

  NodeId node_;
  const Catalog* catalog_;
  ContentBasedNetwork* network_;
  ProcessorOptions options_;
  GroupingEngine grouping_;
  NativeSpeWrapper wrapper_;
  std::map<uint64_t, GroupRuntime> group_runtime_;
  std::map<std::string, QueryRuntime> queries_;
  ProfileId source_profile_ = 0;
};

}  // namespace cosmos

#endif  // COSMOS_CORE_PROCESSOR_H_
