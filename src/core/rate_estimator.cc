#include "core/rate_estimator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/check.h"
#include "expr/implication.h"
#include "expr/relaxation.h"

namespace cosmos {

RateEstimator::RateEstimator(const Catalog* catalog,
                             RateEstimatorOptions options)
    : catalog_(catalog), options_(options) {}

double RateEstimator::FilteredInputRate(const AnalyzedQuery& q,
                                        size_t i) const {
  const ResolvedSource& src = q.sources()[i];
  double rate = 1.0;
  auto info = catalog_->Lookup(src.from.stream);
  if (info.ok()) rate = info->rate_tuples_per_sec;
  double sel = q.local_selection(i).EstimateSelectivity(
      *src.schema, options_.default_eq_selectivity,
      options_.residual_selectivity);
  return rate * sel;
}

double RateEstimator::JoinSelectivity(const AnalyzedQuery& q) const {
  double sel = 1.0;
  for (const auto& j : q.equi_joins()) {
    const auto& def =
        q.sources()[j.left_source].schema->attribute(j.left_attr);
    if (def.has_range && def.max > def.min) {
      // Integer-ish key domain: 1 / domain size.
      sel *= 1.0 / std::max(1.0, def.max - def.min);
    } else {
      sel *= options_.default_join_selectivity;
    }
  }
  for (size_t k = 0; k < q.cross_residual().size(); ++k) {
    sel *= options_.residual_selectivity;
  }
  return sel;
}

double RateEstimator::EstimateTupleRate(const AnalyzedQuery& q) const {
  const size_t n = q.sources().size();
  if (n == 1) {
    // Selection output; aggregation emits one refreshed row per arrival.
    return FilteredInputRate(q, 0);
  }
  // Two-way sliding-window join: lambda1 * lambda2 * sel * (T1 + T2),
  // the classic expected-match model (each arrival probes the other side's
  // window population).
  double r0 = FilteredInputRate(q, 0);
  double r1 = FilteredInputRate(q, 1);
  double t0 = q.WindowSize(0) == kInfiniteDuration
                  ? 3600.0  // treat unbounded as an hour of history
                  : static_cast<double>(q.WindowSize(0)) / kSecond;
  double t1 = q.WindowSize(1) == kInfiniteDuration
                  ? 3600.0
                  : static_cast<double>(q.WindowSize(1)) / kSecond;
  double sel = JoinSelectivity(q);
  return r0 * r1 * sel * (t0 + t1);
}

double RateEstimator::EstimateOutputRate(const AnalyzedQuery& q) const {
  return EstimateTupleRate(q) *
         static_cast<double>(q.output_schema()->EstimatedRowWidth() + 8);
}

double RateEstimator::EstimateMergedOutputRate(
    const AnalyzedQuery& a, const AnalyzedQuery& b,
    const std::vector<size_t>& b_to_a) const {
  // Aggregate group mates are equivalent (DESIGN.md): no widening happens.
  if (a.is_aggregate()) return EstimateOutputRate(a);
  const size_t n = a.sources().size();

  // Inverse of b_to_a, hoisted out of the per-source loops: bi = a_to_b[ai]
  // is the b-source aligned with a-source ai. The alignment must be a
  // permutation — a missing mapping once silently defaulted to source 0 and
  // skewed the merged-rate estimate toward the wrong stream.
  COSMOS_CHECK_EQ(b_to_a.size(), n) << "source alignment size mismatch";
  std::vector<size_t> a_to_b(n, n);
  for (size_t k = 0; k < n; ++k) {
    COSMOS_CHECK_LT(b_to_a[k], n) << "b_to_a[" << k << "] out of range";
    COSMOS_CHECK_EQ(a_to_b[b_to_a[k]], n)
        << "b_to_a maps two b-sources onto a-source " << b_to_a[k];
    a_to_b[b_to_a[k]] = k;
  }

  // Per-source merged selectivity (hull) and window (max).
  double tuple_rate = 0.0;
  std::vector<double> filtered(n, 0.0);
  std::vector<double> windows_sec(n, 0.0);
  bool windows_differ = false;
  bool selections_differ = false;
  for (size_t ai = 0; ai < n; ++ai) {
    const size_t bi = a_to_b[ai];
    ConjunctiveClause hull =
        ClauseHull(a.local_selection(ai), b.local_selection(bi));
    if (!ClauseImplies(hull, a.local_selection(ai)) ||
        !ClauseImplies(hull, b.local_selection(bi))) {
      selections_differ = true;
    }
    const auto& src = a.sources()[ai];
    double rate = 1.0;
    auto info = catalog_->Lookup(src.from.stream);
    if (info.ok()) rate = info->rate_tuples_per_sec;
    filtered[ai] = rate * hull.EstimateSelectivity(
                              *src.schema, options_.default_eq_selectivity,
                              options_.residual_selectivity);
    Duration wa = a.WindowSize(ai);
    Duration wb = b.WindowSize(bi);
    if (wa != wb) windows_differ = true;
    Duration w = (wa == kInfiniteDuration || wb == kInfiniteDuration)
                     ? kInfiniteDuration
                     : std::max(wa, wb);
    windows_sec[ai] = (w == kInfiniteDuration)
                          ? 3600.0
                          : static_cast<double>(w) / kSecond;
  }
  if (n == 1) {
    tuple_rate = filtered[0];
  } else {
    tuple_rate = filtered[0] * filtered[1] * JoinSelectivity(a) *
                 (windows_sec[0] + windows_sec[1]);
  }

  // Merged output width: union of projected (a-source, attr) pairs, plus
  // the attributes re-filtering will need.
  std::set<std::pair<size_t, std::string>> attrs;
  for (const auto& c : a.output_columns()) {
    attrs.insert({c.source,
                  a.sources()[c.source].schema->attribute(c.attr).name});
  }
  for (const auto& c : b.output_columns()) {
    attrs.insert({b_to_a[c.source],
                  b.sources()[c.source].schema->attribute(c.attr).name});
  }
  if (selections_differ) {
    for (size_t ai = 0; ai < n; ++ai) {
      const size_t bi = a_to_b[ai];
      for (const auto& [attr, c] : a.local_selection(ai).constraints()) {
        attrs.insert({ai, attr});
      }
      for (const auto& [attr, c] : b.local_selection(bi).constraints()) {
        attrs.insert({ai, attr});
      }
    }
  }
  if (windows_differ && n > 1) {
    for (size_t ai = 0; ai < n; ++ai) attrs.insert({ai, "timestamp"});
  }
  double width = 8.0;  // timestamp header
  for (const auto& [si, name] : attrs) {
    auto def = a.sources()[si].schema->FindAttribute(name);
    if (!def.ok()) continue;
    switch (def->type) {
      case ValueType::kInt64:
      case ValueType::kDouble:
        width += 8;
        break;
      case ValueType::kString:
        width += 20;
        break;
      default:
        width += 1;
        break;
    }
  }
  return tuple_rate * width;
}

double RateEstimator::MergeBenefit(
    const std::vector<const AnalyzedQuery*>& members,
    const AnalyzedQuery& rep) const {
  double total = 0.0;
  for (const auto* m : members) total += EstimateOutputRate(*m);
  return total - EstimateOutputRate(rep);
}

}  // namespace cosmos
