#include "core/query_distribution.h"

#include <algorithm>

#include "common/string_util.h"

namespace cosmos {

QueryDistributor::QueryDistributor(DistributionPolicy policy)
    : policy_(policy) {}

void QueryDistributor::AddProcessor(NodeId processor) {
  if (!HasProcessor(processor)) {
    processors_.push_back(processor);
    load_[processor] = 0;
  }
}

bool QueryDistributor::HasProcessor(NodeId processor) const {
  return std::find(processors_.begin(), processors_.end(), processor) !=
         processors_.end();
}

int QueryDistributor::LoadOf(NodeId processor) const {
  auto it = load_.find(processor);
  return it == load_.end() ? 0 : it->second;
}

Result<NodeId> QueryDistributor::Assign(const std::string& query_id,
                                        const std::string& signature) {
  if (processors_.empty()) {
    return Status::FailedPrecondition("no processors registered");
  }
  if (placements_.count(query_id) > 0) {
    return Status::AlreadyExists(
        StrFormat("query '%s' already assigned", query_id.c_str()));
  }
  NodeId chosen = -1;
  switch (policy_) {
    case DistributionPolicy::kRoundRobin:
      chosen = processors_[round_robin_next_++ % processors_.size()];
      break;
    case DistributionPolicy::kLeastLoaded: {
      chosen = processors_[0];
      for (NodeId p : processors_) {
        if (load_[p] < load_[chosen]) chosen = p;
      }
      break;
    }
    case DistributionPolicy::kSignatureAffinity: {
      auto it = signature_home_.find(signature);
      if (it != signature_home_.end() && HasProcessor(it->second)) {
        chosen = it->second;
      } else {
        chosen = processors_[0];
        for (NodeId p : processors_) {
          if (load_[p] < load_[chosen]) chosen = p;
        }
        signature_home_[signature] = chosen;
      }
      break;
    }
  }
  ++load_[chosen];
  placements_[query_id] = Placement{chosen, signature};
  return chosen;
}

Status QueryDistributor::RecordPlacement(const std::string& query_id,
                                         const std::string& signature,
                                         NodeId processor) {
  if (!HasProcessor(processor)) {
    return Status::NotFound(StrFormat("processor %d", processor));
  }
  if (placements_.count(query_id) > 0) {
    return Status::AlreadyExists(
        StrFormat("query '%s' already assigned", query_id.c_str()));
  }
  ++load_[processor];
  placements_[query_id] = Placement{processor, signature};
  if (!signature.empty() && signature_home_.count(signature) == 0) {
    signature_home_[signature] = processor;
  }
  return Status::OK();
}

Status QueryDistributor::Release(const std::string& query_id) {
  auto it = placements_.find(query_id);
  if (it == placements_.end()) {
    return Status::NotFound(StrFormat("query '%s'", query_id.c_str()));
  }
  --load_[it->second.processor];
  placements_.erase(it);
  return Status::OK();
}

}  // namespace cosmos
