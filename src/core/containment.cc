#include "core/containment.h"

#include <algorithm>
#include <set>

#include "expr/implication.h"

namespace cosmos {
namespace {

// Canonical, alias-free form of an equi-join: ((stream,attr),(stream,attr))
// with the lexicographically smaller endpoint first.
using JoinEnd = std::pair<std::string, std::string>;
using CanonicalJoin = std::pair<JoinEnd, JoinEnd>;

std::set<CanonicalJoin> CanonicalJoins(const AnalyzedQuery& q) {
  std::set<CanonicalJoin> out;
  for (const auto& j : q.equi_joins()) {
    JoinEnd l{q.sources()[j.left_source].from.stream,
              q.sources()[j.left_source].schema->attribute(j.left_attr).name};
    JoinEnd r{
        q.sources()[j.right_source].from.stream,
        q.sources()[j.right_source].schema->attribute(j.right_attr).name};
    if (r < l) std::swap(l, r);
    out.insert({l, r});
  }
  return out;
}

// Rewrites alias qualifiers in `expr` through `alias_map` (old -> new).
ExprPtr RemapAliases(const ExprPtr& expr,
                     const std::map<std::string, std::string>& alias_map) {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kColumnRef: {
      const auto& col = static_cast<const ColumnRefExpr&>(*expr);
      auto it = alias_map.find(col.qualifier());
      if (it == alias_map.end()) return expr;
      return MakeColumn(it->second, col.name());
    }
    case ExprKind::kComparison: {
      const auto& c = static_cast<const ComparisonExpr&>(*expr);
      return MakeCompare(c.op(), RemapAliases(c.lhs(), alias_map),
                         RemapAliases(c.rhs(), alias_map));
    }
    case ExprKind::kLogical: {
      const auto& l = static_cast<const LogicalExpr&>(*expr);
      std::vector<ExprPtr> children;
      for (const auto& ch : l.children()) {
        children.push_back(RemapAliases(ch, alias_map));
      }
      if (l.op() == LogicalOp::kNot) return MakeNot(children[0]);
      return l.op() == LogicalOp::kAnd ? MakeAnd(std::move(children))
                                       : MakeOr(std::move(children));
    }
    case ExprKind::kArithmetic: {
      const auto& a = static_cast<const ArithmeticExpr&>(*expr);
      return MakeArith(a.op(), RemapAliases(a.lhs(), alias_map),
                       RemapAliases(a.rhs(), alias_map));
    }
  }
  return expr;
}

// Output columns as alias-free (stream, attribute) pairs.
std::set<std::pair<std::string, std::string>> OutputPairs(
    const AnalyzedQuery& q) {
  std::set<std::pair<std::string, std::string>> out;
  for (const auto& c : q.output_columns()) {
    out.insert({q.sources()[c.source].from.stream,
                q.sources()[c.source].schema->attribute(c.attr).name});
  }
  return out;
}

std::map<std::string, std::string> AliasMap(
    const AnalyzedQuery& from, const AnalyzedQuery& to,
    const std::vector<size_t>& from_to_to) {
  std::map<std::string, std::string> m;
  for (size_t i = 0; i < from.sources().size(); ++i) {
    m[from.sources()[i].alias()] = to.sources()[from_to_to[i]].alias();
  }
  return m;
}

bool ResidualsMatch(const AnalyzedQuery& container,
                    const AnalyzedQuery& containee,
                    const std::vector<size_t>& containee_to_container,
                    bool require_equal) {
  auto alias_map = AliasMap(containee, container, containee_to_container);
  std::vector<ExprPtr> remapped;
  for (const auto& r : containee.cross_residual()) {
    remapped.push_back(RemapAliases(r, alias_map));
  }
  // Every residual of the container must be enforced by the containee.
  for (const auto& rc : container.cross_residual()) {
    bool found = false;
    for (const auto& re : remapped) {
      if (rc->Equals(*re)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  if (require_equal &&
      remapped.size() != container.cross_residual().size()) {
    return false;
  }
  return true;
}

bool AggregatesEqual(const AnalyzedQuery& a, const AnalyzedQuery& b,
                     const std::vector<size_t>& a_to_b) {
  if (a.aggregates().size() != b.aggregates().size()) return false;
  for (size_t i = 0; i < a.aggregates().size(); ++i) {
    const auto& x = a.aggregates()[i];
    const auto& y = b.aggregates()[i];
    if (x.func != y.func || x.star != y.star) return false;
    if (!x.star) {
      if (a_to_b[x.source] != y.source) return false;
      const std::string& xa =
          a.sources()[x.source].schema->attribute(x.attr).name;
      const std::string& ya =
          b.sources()[y.source].schema->attribute(y.attr).name;
      if (xa != ya) return false;
    }
  }
  if (a.group_by().size() != b.group_by().size()) return false;
  for (size_t i = 0; i < a.group_by().size(); ++i) {
    const auto& x = a.group_by()[i];
    const auto& y = b.group_by()[i];
    if (a_to_b[x.source] != y.source) return false;
    const std::string& xa =
        a.sources()[x.source].schema->attribute(x.attr).name;
    const std::string& ya =
        b.sources()[y.source].schema->attribute(y.attr).name;
    if (xa != ya) return false;
  }
  return true;
}

}  // namespace

std::optional<std::vector<size_t>> AlignSources(const AnalyzedQuery& a,
                                                const AnalyzedQuery& b) {
  if (a.sources().size() != b.sources().size()) return std::nullopt;
  std::vector<size_t> mapping(a.sources().size());
  std::vector<bool> used(b.sources().size(), false);
  for (size_t i = 0; i < a.sources().size(); ++i) {
    const std::string& stream = a.sources()[i].from.stream;
    // Reject self-joins (duplicate streams) in either query.
    for (size_t k = i + 1; k < a.sources().size(); ++k) {
      if (a.sources()[k].from.stream == stream) return std::nullopt;
    }
    bool found = false;
    for (size_t j = 0; j < b.sources().size(); ++j) {
      if (!used[j] && b.sources()[j].from.stream == stream) {
        mapping[i] = j;
        used[j] = true;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  return mapping;
}

bool RelationalContains(const AnalyzedQuery& container,
                        const AnalyzedQuery& containee,
                        const std::vector<size_t>& containee_to_container) {
  // Selections: containee's per-source clause must imply container's.
  for (size_t i = 0; i < containee.sources().size(); ++i) {
    const auto& narrow = containee.local_selection(i);
    const auto& wide =
        container.local_selection(containee_to_container[i]);
    if (!ClauseImplies(narrow, wide)) return false;
  }
  // Joins: every join the container performs must be performed by the
  // containee (missing joins in the containee would admit rows the
  // container filters out — wait, the other way: the container's
  // conditions must be implied, so container joins ⊆ containee joins).
  auto cj = CanonicalJoins(container);
  auto ej = CanonicalJoins(containee);
  for (const auto& j : cj) {
    if (ej.find(j) == ej.end()) return false;
  }
  if (!ResidualsMatch(container, containee, containee_to_container,
                      /*require_equal=*/false)) {
    return false;
  }
  // Projection: container must emit every column containee emits.
  if (!container.is_aggregate()) {
    auto cp = OutputPairs(container);
    for (const auto& p : OutputPairs(containee)) {
      if (cp.find(p) == cp.end()) return false;
    }
  }
  return true;
}

bool QueryContains(const AnalyzedQuery& container,
                   const AnalyzedQuery& containee) {
  auto align = AlignSources(containee, container);
  if (!align.has_value()) return false;
  if (container.is_aggregate() != containee.is_aggregate()) return false;

  if (!RelationalContains(container, containee, *align)) return false;

  if (container.is_aggregate()) {
    // Theorem 2 (sound form): identical windows, aggregates, grouping, and
    // equivalent selections/joins/residuals.
    for (size_t i = 0; i < containee.sources().size(); ++i) {
      if (containee.WindowSize(i) != container.WindowSize((*align)[i])) {
        return false;
      }
      const auto& a = containee.local_selection(i);
      const auto& b = container.local_selection((*align)[i]);
      if (!ClauseImplies(a, b) || !ClauseImplies(b, a)) return false;
    }
    if (CanonicalJoins(container) != CanonicalJoins(containee)) return false;
    if (!ResidualsMatch(container, containee, *align,
                        /*require_equal=*/true)) {
      return false;
    }
    if (!AggregatesEqual(containee, container, *align)) return false;
    return true;
  }

  // Theorem 1: window containment T^i_1 <= T^i_2 per aligned source.
  for (size_t i = 0; i < containee.sources().size(); ++i) {
    Duration t1 = containee.WindowSize(i);
    Duration t2 = container.WindowSize((*align)[i]);
    if (t2 == kInfiniteDuration) continue;
    if (t1 == kInfiniteDuration || t1 > t2) return false;
  }
  return true;
}

bool QueryEquivalent(const AnalyzedQuery& a, const AnalyzedQuery& b) {
  return QueryContains(a, b) && QueryContains(b, a);
}

}  // namespace cosmos
