#ifndef COSMOS_CORE_CONTAINMENT_H_
#define COSMOS_CORE_CONTAINMENT_H_

#include <optional>
#include <vector>

#include "query/analyzer.h"

namespace cosmos {

// Continuous-query containment (paper §4, Definition 1): q1 ⊑ q2 iff
// q1(S,τ) ⊆ q2(S,τ) for every stream instance S and time τ. The tests here
// implement the *sufficient* conditions of Theorems 1 and 2 — a true answer
// is a guarantee; false means "not provable with these theorems".
//
// Alignment: sources are matched by stream name (queries over different
// stream sets are never comparable; self-joins are not supported by the
// merger and are rejected here).

// Maps each source index of `a` to the index of the same stream in `b`;
// nullopt when the stream sets differ or either query repeats a stream.
std::optional<std::vector<size_t>> AlignSources(const AnalyzedQuery& a,
                                                const AnalyzedQuery& b);

// Q∞ containment of the relational (window-free) parts: every condition
// `container` imposes is implied by `containee`'s conditions, and
// `container` projects every column `containee` projects.
bool RelationalContains(const AnalyzedQuery& container,
                        const AnalyzedQuery& containee,
                        const std::vector<size_t>& containee_to_container);

// Theorem 1 (select-project-join): Q1 ⊑ Q2 if Q1∞ ⊑ Q2∞ and T1_i <= T2_i
// for every aligned source. Theorem 2 (aggregates): additionally the window
// sizes must be equal and — sound strengthening over the paper's statement,
// see DESIGN.md — the aggregate lists, grouping columns and selection
// predicates must be equivalent, since a looser superset query changes
// aggregate values rather than producing a superset of rows.
bool QueryContains(const AnalyzedQuery& container,
                   const AnalyzedQuery& containee);

// Both directions (used to deduplicate equivalent queries).
bool QueryEquivalent(const AnalyzedQuery& a, const AnalyzedQuery& b);

}  // namespace cosmos

#endif  // COSMOS_CORE_CONTAINMENT_H_
