#include "core/workload.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace cosmos {
namespace {

// Numeric attributes with declared ranges — the predicate/projection menu.
std::vector<const AttributeDef*> UsableAttributes(const Schema& schema) {
  std::vector<const AttributeDef*> out;
  for (const auto& def : schema.attributes()) {
    if (def.has_range && def.type == ValueType::kDouble) {
      out.push_back(&def);
    }
  }
  return out;
}

}  // namespace

QueryWorkloadGenerator::QueryWorkloadGenerator(const Catalog* catalog,
                                               WorkloadOptions options)
    : catalog_(catalog),
      options_(options),
      rng_(options.seed),
      streams_(catalog->StreamNames()),
      stream_dist_(std::max<size_t>(1, streams_.size()), options.zipf_theta),
      window_dist_(options.window_menu.size(), options.zipf_theta),
      width_dist_(options.width_menu.size(), options.zipf_theta),
      offset_dist_(static_cast<size_t>(options.num_offsets),
                   options.zipf_theta) {
  COSMOS_CHECK(!streams_.empty());
}

void QueryWorkloadGenerator::Reseed(uint64_t seed) { rng_ = Rng(seed); }

size_t QueryWorkloadGenerator::SampleIndex(const ZipfDistribution& dist) {
  return dist.Sample(rng_);
}

std::string QueryWorkloadGenerator::NextCql() {
  const std::string& stream = streams_[SampleIndex(stream_dist_)];
  auto schema = catalog_->LookupSchema(stream).value_or(nullptr);
  COSMOS_CHECK(schema != nullptr);

  if (options_.join_fraction > 0 && rng_.NextBool(options_.join_fraction) &&
      streams_.size() >= 2) {
    std::string other = stream;
    int guard = 0;
    while (other == stream && guard++ < 64) {
      other = streams_[SampleIndex(stream_dist_)];
    }
    if (other != stream) {
      auto other_schema = catalog_->LookupSchema(other).value_or(nullptr);
      COSMOS_CHECK(other_schema != nullptr);
      return MakeJoin(stream, *schema, other, *other_schema);
    }
  }
  if (options_.aggregate_fraction > 0 &&
      rng_.NextBool(options_.aggregate_fraction)) {
    return MakeAggregate(stream, *schema);
  }
  return MakeSelectProject(stream, *schema);
}

std::string QueryWorkloadGenerator::MakeSelectProject(
    const std::string& stream, const Schema& schema) {
  auto usable = UsableAttributes(schema);
  COSMOS_CHECK(!usable.empty());
  ZipfDistribution attr_dist(usable.size(), options_.zipf_theta);

  // Projection: 1..max_projected distinct attributes (Zipf-headed).
  int nproj = 1 + static_cast<int>(rng_.NextBounded(
                      static_cast<uint64_t>(options_.max_projected)));
  std::vector<std::string> proj;
  for (int i = 0; i < nproj * 4 && static_cast<int>(proj.size()) < nproj;
       ++i) {
    const std::string& name = usable[SampleIndex(attr_dist)]->name;
    if (std::find(proj.begin(), proj.end(), name) == proj.end()) {
      proj.push_back(name);
    }
  }

  // Window.
  Duration window = options_.window_menu[SampleIndex(window_dist_)];

  // Predicates: Poisson-ish 0..2 with mean mean_predicates.
  int npred = 0;
  double p1 = std::min(1.0, options_.mean_predicates / 2.0);
  if (rng_.NextBool(p1)) ++npred;
  if (rng_.NextBool(p1)) ++npred;

  std::vector<std::string> preds;
  std::vector<std::string> used_attrs;
  for (int i = 0; i < npred; ++i) {
    const AttributeDef* attr = usable[SampleIndex(attr_dist)];
    if (std::find(used_attrs.begin(), used_attrs.end(), attr->name) !=
        used_attrs.end()) {
      continue;
    }
    used_attrs.push_back(attr->name);
    double domain = attr->max - attr->min;
    double width = options_.width_menu[SampleIndex(width_dist_)];
    size_t max_off = static_cast<size_t>(options_.num_offsets);
    double offset =
        static_cast<double>(SampleIndex(offset_dist_) % max_off) /
        static_cast<double>(max_off);
    offset = std::min(offset, 1.0 - width);
    if (offset < 0) offset = 0;
    double lo = attr->min + offset * domain;
    double hi = std::min(attr->max, lo + width * domain);
    preds.push_back(StrFormat("%s >= %.4f AND %s <= %.4f",
                              attr->name.c_str(), lo, attr->name.c_str(),
                              hi));
  }

  std::string cql = "SELECT " + StrJoin(proj, ", ") + " FROM " + stream +
                    " " + WindowSpec{window}.ToString();
  if (!preds.empty()) {
    cql += " WHERE " + StrJoin(preds, " AND ");
  }
  return cql;
}

std::string QueryWorkloadGenerator::MakeAggregate(const std::string& stream,
                                                  const Schema& schema) {
  auto usable = UsableAttributes(schema);
  COSMOS_CHECK(!usable.empty());
  ZipfDistribution attr_dist(usable.size(), options_.zipf_theta);
  const AttributeDef* attr = usable[SampleIndex(attr_dist)];
  Duration window = options_.window_menu[SampleIndex(window_dist_)];
  const char* funcs[] = {"AVG", "MIN", "MAX", "SUM", "COUNT"};
  const char* func = funcs[rng_.NextBounded(5)];

  std::string group_col =
      schema.HasAttribute("station_id") ? "station_id" : usable[0]->name;
  return StrFormat("SELECT %s, %s(%s) FROM %s %s GROUP BY %s",
                   group_col.c_str(), func, attr->name.c_str(),
                   stream.c_str(), WindowSpec{window}.ToString().c_str(),
                   group_col.c_str());
}

std::string QueryWorkloadGenerator::MakeJoin(const std::string& left,
                                             const Schema& lschema,
                                             const std::string& right,
                                             const Schema& rschema) {
  // Join two sensor streams on a shared attribute when available
  // (station_id never matches across stations, so prefer a coarse bucketed
  // measurement — here we use equality on station_id only when schemas are
  // heterogeneous; for the homogeneous sensor fleet this produces a
  // cross-station correlation query on the first shared ranged attribute).
  auto lu = UsableAttributes(lschema);
  auto ru = UsableAttributes(rschema);
  COSMOS_CHECK(!lu.empty() && !ru.empty());
  std::string join_attr;
  for (const auto* a : lu) {
    if (rschema.HasAttribute(a->name)) {
      join_attr = a->name;
      break;
    }
  }
  Duration lw = options_.window_menu[SampleIndex(window_dist_)];
  Duration rw = options_.window_menu[SampleIndex(window_dist_)];
  std::string cql = StrFormat(
      "SELECT L.%s, R.%s FROM %s %s L, %s %s R", lu[0]->name.c_str(),
      ru[0]->name.c_str(), left.c_str(), WindowSpec{lw}.ToString().c_str(),
      right.c_str(), WindowSpec{rw}.ToString().c_str());
  if (!join_attr.empty()) {
    cql += StrFormat(" WHERE L.%s = R.%s", join_attr.c_str(),
                     join_attr.c_str());
  }
  return cql;
}

}  // namespace cosmos
