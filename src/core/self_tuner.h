#ifndef COSMOS_CORE_SELF_TUNER_H_
#define COSMOS_CORE_SELF_TUNER_H_

#include <map>
#include <string>

#include "core/system.h"

namespace cosmos {

struct SelfTunerOptions {
  // Virtual time between tuning rounds when Start()ed on a simulator.
  Duration period = 30 * kSecond;
  // Recalibrate the catalog only when the largest observed-vs-estimate
  // rate drift exceeds this relative threshold (0 = always).
  double recalibrate_drift = 0.10;
  OptimizerOptions optimizer;
};

// The closed self-tuning loop (the "S" in COSMOS, paper §3.2): instead of
// optimizing the overlay against RateEstimator guesses, each round measures
// what the data layer actually carried since the previous round and feeds
// that back into the control decisions. One round:
//  (a) recalibrates the catalog from the RateMonitor when rates drifted,
//  (b) builds Flows from the CBN's measured per-stream byte counters,
//  (c) re-runs the OverlayOptimizer and applies an improved tree,
//  (d) records its own actions as telemetry (selftune.* instruments and a
//      tracer slice).
//
// Drive it either manually with RunOnce(now) or periodically with Start()
// on a system attached to a Simulator (use RunUntil: a started tuner keeps
// rescheduling itself, so Run() would never drain the queue).
class SelfTuner {
 public:
  explicit SelfTuner(CosmosSystem* system, SelfTunerOptions options = {});

  struct RoundStats {
    size_t streams_recalibrated = 0;
    double max_drift = 0.0;
    size_t flows = 0;  // measured flows fed to the optimizer
    int swaps_applied = 0;
    double cost_before = 0.0;
    double cost_after = 0.0;
    bool tree_changed = false;
  };

  // Runs one round at virtual time `now`. The measurement window is the
  // time since the previous round (or since construction/Start()).
  Result<RoundStats> RunOnce(Timestamp now);

  // Schedules periodic RunOnce every `period` on the system's simulator.
  // No-op when the system runs synchronously (no simulator).
  void Start();
  void Stop();
  bool running() const { return running_; }

  uint64_t rounds_run() const { return rounds_; }
  const RoundStats& last_round() const { return last_; }

 private:
  void ScheduleNext();

  CosmosSystem* system_;
  SelfTunerOptions options_;
  // Baseline of the CBN's published-bytes counters at the previous round;
  // the next round's flow rates are the deltas against it.
  std::map<std::string, uint64_t> baseline_bytes_;
  Timestamp baseline_at_ = 0;
  bool running_ = false;
  uint64_t pending_ = 0;  // scheduled event id, for Stop()
  uint64_t rounds_ = 0;
  RoundStats last_;
};

}  // namespace cosmos

#endif  // COSMOS_CORE_SELF_TUNER_H_
