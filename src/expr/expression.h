#ifndef COSMOS_EXPR_EXPRESSION_H_
#define COSMOS_EXPR_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "stream/value.h"

namespace cosmos {

// Immutable expression trees for WHERE clauses and CBN filter predicates.
// Nodes are shared via shared_ptr<const Expr>; construction goes through the
// factory helpers at the bottom of this header.

enum class ExprKind {
  kLiteral,     // constant Value
  kColumnRef,   // [qualifier.]name
  kComparison,  // lhs op rhs
  kLogical,     // AND / OR / NOT
  kArithmetic,  // + - * /
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp { kAnd, kOr, kNot };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* CompareOpToString(CompareOp op);
// Mirror of a comparison when operands swap sides (a < b  <=>  b > a).
CompareOp FlipCompareOp(CompareOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  virtual ~Expr() = default;
  virtual ExprKind kind() const = 0;
  virtual std::string ToString() const = 0;

  // Structural equality.
  virtual bool Equals(const Expr& other) const = 0;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  ExprKind kind() const override { return ExprKind::kLiteral; }
  const Value& value() const { return value_; }
  std::string ToString() const override { return value_.ToString(); }
  bool Equals(const Expr& other) const override;

 private:
  Value value_;
};

class ColumnRefExpr final : public Expr {
 public:
  ColumnRefExpr(std::string qualifier, std::string name)
      : qualifier_(std::move(qualifier)), name_(std::move(name)) {}
  ExprKind kind() const override { return ExprKind::kColumnRef; }
  // Table alias or stream name; empty when unqualified.
  const std::string& qualifier() const { return qualifier_; }
  const std::string& name() const { return name_; }
  // "qualifier.name" or just "name".
  std::string FullName() const;
  std::string ToString() const override { return FullName(); }
  bool Equals(const Expr& other) const override;

 private:
  std::string qualifier_;
  std::string name_;
};

class ComparisonExpr final : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  ExprKind kind() const override { return ExprKind::kComparison; }
  CompareOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }
  std::string ToString() const override;
  bool Equals(const Expr& other) const override;

 private:
  CompareOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class LogicalExpr final : public Expr {
 public:
  LogicalExpr(LogicalOp op, std::vector<ExprPtr> children)
      : op_(op), children_(std::move(children)) {}
  ExprKind kind() const override { return ExprKind::kLogical; }
  LogicalOp op() const { return op_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  std::string ToString() const override;
  bool Equals(const Expr& other) const override;

 private:
  LogicalOp op_;
  std::vector<ExprPtr> children_;
};

class ArithmeticExpr final : public Expr {
 public:
  ArithmeticExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  ExprKind kind() const override { return ExprKind::kArithmetic; }
  ArithOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }
  std::string ToString() const override;
  bool Equals(const Expr& other) const override;

 private:
  ArithOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

// ---- Factory helpers ----

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumn(std::string qualifier, std::string name);
ExprPtr MakeColumn(std::string name);  // unqualified
ExprPtr MakeCompare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeAnd(std::vector<ExprPtr> children);  // flattens nested ANDs
ExprPtr MakeOr(std::vector<ExprPtr> children);   // flattens nested ORs
ExprPtr MakeNot(ExprPtr child);
ExprPtr MakeArith(ArithOp op, ExprPtr lhs, ExprPtr rhs);

// Conjoins two possibly-null predicates; null means "true".
ExprPtr ConjoinNullable(ExprPtr a, ExprPtr b);

// Collects the distinct column references appearing in `expr`.
void CollectColumns(const ExprPtr& expr,
                    std::vector<const ColumnRefExpr*>* out);

}  // namespace cosmos

#endif  // COSMOS_EXPR_EXPRESSION_H_
