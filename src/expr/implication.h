#ifndef COSMOS_EXPR_IMPLICATION_H_
#define COSMOS_EXPR_IMPLICATION_H_

#include "expr/conjunct.h"

namespace cosmos {

// Sound (conservative) implication tests between canonical conjunctive
// clauses. These drive both CBN covering checks and the containment test of
// the query-merging theory (paper §4, Q∞ containment): a "true" answer is a
// guarantee; "false" means "could not prove".

// True iff every tuple satisfying `a` also satisfies `b`.
// Conservative: returns false when either clause has residual conjuncts it
// cannot reason about — unless the residuals are structurally equal.
bool ClauseImplies(const ConjunctiveClause& a, const ConjunctiveClause& b);

// True iff the two clauses provably accept exactly the same tuples.
bool ClauseEquivalent(const ConjunctiveClause& a, const ConjunctiveClause& b);

// True iff the clauses can provably never both match one tuple (some
// attribute's constraints are disjoint).
bool ClauseDisjoint(const ConjunctiveClause& a, const ConjunctiveClause& b);

// Implication over DNF predicate sets: every clause of `a` must imply some
// clause of `b`. Sound but not complete.
bool DnfImplies(const std::vector<ConjunctiveClause>& a,
                const std::vector<ConjunctiveClause>& b);

}  // namespace cosmos

#endif  // COSMOS_EXPR_IMPLICATION_H_
