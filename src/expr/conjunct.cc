#include "expr/conjunct.h"

#include <algorithm>

#include "common/string_util.h"
#include "expr/evaluator.h"

namespace cosmos {

bool AttrConstraint::IsUnsatisfiable() const {
  if (interval.IsEmpty()) return true;
  if (eq.has_value()) {
    for (const auto& v : neq) {
      if (*eq == v) return true;
    }
    // Numeric equality conflicting with the interval.
    if (eq->is_numeric() && !interval.Contains(eq->NumericValue())) {
      return true;
    }
  }
  return false;
}

bool AttrConstraint::Matches(const Value& v) const {
  if (v.is_numeric()) {
    if (!interval.Contains(v.NumericValue())) return false;
  } else if (!interval.IsAll()) {
    return false;  // numeric constraint on non-numeric value
  }
  if (eq.has_value()) {
    auto cmp = v.Compare(*eq);
    if (!cmp.ok() || *cmp != 0) return false;
  }
  for (const auto& x : neq) {
    auto cmp = v.Compare(x);
    if (cmp.ok() && *cmp == 0) return false;
  }
  return true;
}

std::string AttrConstraint::ToString(const std::string& attr) const {
  std::vector<std::string> parts;
  if (!interval.IsAll()) {
    parts.push_back(attr + " in " + interval.ToString());
  }
  if (eq.has_value()) parts.push_back(attr + " = " + eq->ToString());
  for (const auto& v : neq) parts.push_back(attr + " != " + v.ToString());
  if (parts.empty()) return attr + " unconstrained";
  return StrJoin(parts, " AND ");
}

void ConjunctiveClause::ConstrainInterval(const std::string& attribute,
                                          const Interval& interval) {
  auto& c = constraints_[attribute];
  c.interval = c.interval.Intersect(interval);
}

void ConjunctiveClause::ConstrainEquals(const std::string& attribute,
                                        Value v) {
  if (v.is_numeric()) {
    ConstrainInterval(attribute, Interval::Point(v.NumericValue()));
    return;
  }
  auto& c = constraints_[attribute];
  if (c.eq.has_value() && !(*c.eq == v)) {
    // Two different equalities: unsatisfiable; encode via empty interval.
    c.interval = Interval::Empty();
    return;
  }
  c.eq = std::move(v);
}

void ConjunctiveClause::ConstrainNotEquals(const std::string& attribute,
                                           Value v) {
  if (v.is_numeric()) {
    // A numeric disequality is not representable as one interval; keep it in
    // the residual so evaluation stays exact.
    AddResidual(MakeCompare(CompareOp::kNe, MakeColumn(attribute),
                            MakeLiteral(std::move(v))));
    return;
  }
  auto& c = constraints_[attribute];
  for (const auto& existing : c.neq) {
    if (existing == v) return;
  }
  c.neq.push_back(std::move(v));
}

void ConjunctiveClause::AddResidual(ExprPtr expr) {
  residual_.push_back(std::move(expr));
}

AttrConstraint ConjunctiveClause::ConstraintFor(
    const std::string& attribute) const {
  auto it = constraints_.find(attribute);
  if (it == constraints_.end()) return AttrConstraint{};
  return it->second;
}

bool ConjunctiveClause::IsUnsatisfiable() const {
  for (const auto& [attr, c] : constraints_) {
    if (c.IsUnsatisfiable()) return true;
  }
  return false;
}

bool ConjunctiveClause::MatchesCanonical(const Tuple& tuple) const {
  for (const auto& [attr, c] : constraints_) {
    ColumnRefExpr col("", attr);
    auto idx = ResolveColumn(*tuple.schema(), col);
    if (!idx.has_value()) return false;
    if (!c.Matches(tuple.value(*idx))) return false;
  }
  return true;
}

ExprPtr ConstraintToExpr(const ExprPtr& column, const AttrConstraint& c) {
  std::vector<ExprPtr> conjuncts;
  const Interval& iv = c.interval;
  if (iv.IsEmpty()) {
    // FALSE: encode as the impossible comparison 1 = 0.
    return MakeCompare(CompareOp::kEq, MakeLiteral(Value(int64_t{1})),
                       MakeLiteral(Value(int64_t{0})));
  }
  if (iv.IsPoint()) {
    conjuncts.push_back(
        MakeCompare(CompareOp::kEq, column, MakeLiteral(Value(iv.lo()))));
  } else {
    if (!iv.lo_unbounded()) {
      conjuncts.push_back(
          MakeCompare(iv.lo_open() ? CompareOp::kGt : CompareOp::kGe, column,
                      MakeLiteral(Value(iv.lo()))));
    }
    if (!iv.hi_unbounded()) {
      conjuncts.push_back(
          MakeCompare(iv.hi_open() ? CompareOp::kLt : CompareOp::kLe, column,
                      MakeLiteral(Value(iv.hi()))));
    }
  }
  if (c.eq.has_value()) {
    conjuncts.push_back(MakeCompare(CompareOp::kEq, column,
                                    MakeLiteral(*c.eq)));
  }
  for (const auto& v : c.neq) {
    conjuncts.push_back(MakeCompare(CompareOp::kNe, column, MakeLiteral(v)));
  }
  if (conjuncts.empty()) return nullptr;
  return MakeAnd(std::move(conjuncts));
}

ExprPtr ConjunctiveClause::ToExpr() const {
  std::vector<ExprPtr> conjuncts;
  for (const auto& [attr, c] : constraints_) {
    ExprPtr piece = ConstraintToExpr(MakeColumn(attr), c);
    if (piece != nullptr) conjuncts.push_back(std::move(piece));
  }
  for (const auto& r : residual_) conjuncts.push_back(r);
  if (conjuncts.empty()) return nullptr;
  return MakeAnd(std::move(conjuncts));
}

double ConjunctiveClause::EstimateSelectivity(
    const Schema& schema, double default_eq_selectivity,
    double residual_selectivity) const {
  double sel = 1.0;
  for (const auto& [attr, c] : constraints_) {
    // Strip a qualifier if the schema stores bare names.
    std::string bare = attr;
    if (auto dot = attr.rfind('.'); dot != std::string::npos &&
                                    !schema.HasAttribute(attr)) {
      bare = attr.substr(dot + 1);
    }
    double factor = 1.0;
    if (!c.interval.IsAll()) {
      auto def = schema.FindAttribute(schema.HasAttribute(attr) ? attr : bare);
      if (def.ok() && def->has_range) {
        factor *= c.interval.SelectivityWithin(def->min, def->max);
      } else if (c.interval.IsPoint()) {
        factor *= default_eq_selectivity;
      } else {
        factor *= 0.5;  // unknown range: assume a half-selective range scan
      }
    }
    if (c.eq.has_value()) factor *= default_eq_selectivity;
    // Disequalities barely reduce cardinality; ignore them.
    sel *= factor;
  }
  for (size_t i = 0; i < residual_.size(); ++i) sel *= residual_selectivity;
  return sel;
}

std::string ConjunctiveClause::ToString() const {
  if (IsTautology()) return "TRUE";
  std::vector<std::string> parts;
  for (const auto& [attr, c] : constraints_) {
    parts.push_back(c.ToString(attr));
  }
  for (const auto& r : residual_) parts.push_back(r->ToString());
  return StrJoin(parts, " AND ");
}

bool ConjunctiveClause::operator==(const ConjunctiveClause& other) const {
  if (constraints_.size() != other.constraints_.size()) return false;
  for (const auto& [attr, c] : constraints_) {
    auto it = other.constraints_.find(attr);
    if (it == other.constraints_.end()) return false;
    const AttrConstraint& o = it->second;
    if (!(c.interval == o.interval)) return false;
    if (c.eq.has_value() != o.eq.has_value()) return false;
    if (c.eq.has_value() && !(*c.eq == *o.eq)) return false;
    if (c.neq != o.neq) return false;
  }
  if (residual_.size() != other.residual_.size()) return false;
  for (size_t i = 0; i < residual_.size(); ++i) {
    if (!residual_[i]->Equals(*other.residual_[i])) return false;
  }
  return true;
}

namespace {

// Attempts to register the atom `cmp` as a canonical constraint in `clause`;
// falls back to the residual.
void AbsorbComparison(const ComparisonExpr& cmp, const ExprPtr& original,
                      ConjunctiveClause* clause) {
  const Expr* lhs = cmp.lhs().get();
  const Expr* rhs = cmp.rhs().get();
  CompareOp op = cmp.op();
  if (lhs->kind() == ExprKind::kLiteral &&
      rhs->kind() == ExprKind::kColumnRef) {
    std::swap(lhs, rhs);
    op = FlipCompareOp(op);
  }
  if (lhs->kind() != ExprKind::kColumnRef ||
      rhs->kind() != ExprKind::kLiteral) {
    clause->AddResidual(original);
    return;
  }
  const auto& col = static_cast<const ColumnRefExpr&>(*lhs);
  const Value& lit = static_cast<const LiteralExpr&>(*rhs).value();
  const std::string attr = col.FullName();

  if (lit.is_numeric()) {
    double v = lit.NumericValue();
    switch (op) {
      case CompareOp::kEq:
        clause->ConstrainInterval(attr, Interval::Point(v));
        return;
      case CompareOp::kNe:
        clause->ConstrainNotEquals(attr, lit);
        return;
      case CompareOp::kLt:
        clause->ConstrainInterval(attr, Interval::AtMost(v, /*open=*/true));
        return;
      case CompareOp::kLe:
        clause->ConstrainInterval(attr, Interval::AtMost(v));
        return;
      case CompareOp::kGt:
        clause->ConstrainInterval(attr, Interval::AtLeast(v, /*open=*/true));
        return;
      case CompareOp::kGe:
        clause->ConstrainInterval(attr, Interval::AtLeast(v));
        return;
    }
  }
  switch (op) {
    case CompareOp::kEq:
      clause->ConstrainEquals(attr, lit);
      return;
    case CompareOp::kNe:
      clause->ConstrainNotEquals(attr, lit);
      return;
    default:
      // Ordered comparison on strings/bools: exact but rare; keep residual.
      clause->AddResidual(original);
      return;
  }
}

Status AbsorbConjunct(const ExprPtr& expr, ConjunctiveClause* clause) {
  switch (expr->kind()) {
    case ExprKind::kComparison:
      AbsorbComparison(static_cast<const ComparisonExpr&>(*expr), expr,
                       clause);
      return Status::OK();
    case ExprKind::kLogical: {
      const auto& l = static_cast<const LogicalExpr&>(*expr);
      if (l.op() == LogicalOp::kAnd) {
        for (const auto& child : l.children()) {
          COSMOS_RETURN_IF_ERROR(AbsorbConjunct(child, clause));
        }
        return Status::OK();
      }
      // OR / NOT below a conjunction: keep whole subtree as residual.
      clause->AddResidual(expr);
      return Status::OK();
    }
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(*expr);
      if (lit.value().type() == ValueType::kBool) {
        if (!lit.value().AsBool()) {
          clause->AddResidual(expr);  // FALSE literal stays residual
        }
        return Status::OK();
      }
      return Status::InvalidArgument("non-boolean literal as conjunct");
    }
    case ExprKind::kColumnRef:
    case ExprKind::kArithmetic:
      return Status::InvalidArgument(
          "non-boolean expression used as conjunct: " + expr->ToString());
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<ConjunctiveClause> ClauseFromExpr(const ExprPtr& expr) {
  ConjunctiveClause clause;
  if (expr == nullptr) return clause;
  COSMOS_RETURN_IF_ERROR(AbsorbConjunct(expr, &clause));
  return clause;
}

namespace {

// DNF of an expression as a list of conjunctions of atoms (each atom an
// ExprPtr); expansion is the classic distributive blow-up.
Result<std::vector<std::vector<ExprPtr>>> DnfAtoms(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kComparison:
    case ExprKind::kLiteral:
      return std::vector<std::vector<ExprPtr>>{{expr}};
    case ExprKind::kLogical: {
      const auto& l = static_cast<const LogicalExpr&>(*expr);
      if (l.op() == LogicalOp::kNot) {
        const ExprPtr& child = l.children()[0];
        if (child->kind() == ExprKind::kComparison) {
          // Push negation into the comparison.
          const auto& c = static_cast<const ComparisonExpr&>(*child);
          CompareOp neg;
          switch (c.op()) {
            case CompareOp::kEq:
              neg = CompareOp::kNe;
              break;
            case CompareOp::kNe:
              neg = CompareOp::kEq;
              break;
            case CompareOp::kLt:
              neg = CompareOp::kGe;
              break;
            case CompareOp::kLe:
              neg = CompareOp::kGt;
              break;
            case CompareOp::kGt:
              neg = CompareOp::kLe;
              break;
            case CompareOp::kGe:
              neg = CompareOp::kLt;
              break;
            default:
              return Status::Internal("bad op");
          }
          return std::vector<std::vector<ExprPtr>>{
              {MakeCompare(neg, c.lhs(), c.rhs())}};
        }
        if (child->kind() == ExprKind::kLogical) {
          // De Morgan: push NOT through AND/OR; NOT NOT cancels.
          const auto& inner = static_cast<const LogicalExpr&>(*child);
          if (inner.op() == LogicalOp::kNot) {
            return DnfAtoms(inner.children()[0]);
          }
          std::vector<ExprPtr> negated;
          for (const auto& grandchild : inner.children()) {
            negated.push_back(MakeNot(grandchild));
          }
          ExprPtr pushed = inner.op() == LogicalOp::kAnd
                               ? MakeOr(std::move(negated))
                               : MakeAnd(std::move(negated));
          return DnfAtoms(pushed);
        }
        if (child->kind() == ExprKind::kLiteral) {
          const auto& lit = static_cast<const LiteralExpr&>(*child);
          if (lit.value().type() == ValueType::kBool) {
            return std::vector<std::vector<ExprPtr>>{
                {MakeLiteral(Value(!lit.value().AsBool()))}};
          }
        }
        return Status::Unimplemented(
            "NOT over non-boolean expression in DNF conversion: " +
            expr->ToString());
      }
      if (l.op() == LogicalOp::kOr) {
        std::vector<std::vector<ExprPtr>> out;
        for (const auto& child : l.children()) {
          COSMOS_ASSIGN_OR_RETURN(auto sub, DnfAtoms(child));
          out.insert(out.end(), sub.begin(), sub.end());
        }
        return out;
      }
      // AND: cross product of children's DNFs.
      std::vector<std::vector<ExprPtr>> acc{{}};
      for (const auto& child : l.children()) {
        COSMOS_ASSIGN_OR_RETURN(auto sub, DnfAtoms(child));
        std::vector<std::vector<ExprPtr>> next;
        next.reserve(acc.size() * sub.size());
        for (const auto& a : acc) {
          for (const auto& s : sub) {
            std::vector<ExprPtr> merged = a;
            merged.insert(merged.end(), s.begin(), s.end());
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
    case ExprKind::kColumnRef:
    case ExprKind::kArithmetic:
      return Status::InvalidArgument("non-boolean expression in DNF: " +
                                     expr->ToString());
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<std::vector<ConjunctiveClause>> ToDnf(const ExprPtr& expr) {
  if (expr == nullptr) {
    return std::vector<ConjunctiveClause>{ConjunctiveClause{}};
  }
  COSMOS_ASSIGN_OR_RETURN(auto atom_lists, DnfAtoms(expr));
  std::vector<ConjunctiveClause> out;
  out.reserve(atom_lists.size());
  for (const auto& atoms : atom_lists) {
    ConjunctiveClause clause;
    for (const auto& a : atoms) {
      COSMOS_RETURN_IF_ERROR(AbsorbConjunct(a, &clause));
    }
    if (!clause.IsUnsatisfiable()) out.push_back(std::move(clause));
  }
  if (out.empty()) {
    // Entire disjunction unsatisfiable; surface one empty-interval clause so
    // callers can still build a (never-matching) filter.
    ConjunctiveClause never;
    never.ConstrainInterval("__false__", Interval::Empty());
    out.push_back(std::move(never));
  }
  return out;
}

}  // namespace cosmos
