#ifndef COSMOS_EXPR_RELAXATION_H_
#define COSMOS_EXPR_RELAXATION_H_

#include "expr/conjunct.h"

namespace cosmos {

// Predicate relaxation for representative-query composition (paper §4):
// given member predicates, produce a predicate that is implied by each of
// them (accepts a superset of their union) while staying as tight as the
// canonical form allows. The loosened constraints are later re-tightened in
// the per-user CBN profiles, so relaxation only costs bandwidth, never
// correctness.

// The per-attribute hull of two clauses:
//  - attributes constrained in both: interval hull; equal equalities kept,
//    differing ones dropped; neq intersection kept;
//  - attributes constrained in only one clause: dropped (relaxed to
//    unconstrained);
//  - residuals: kept only when present (structurally) in both clauses.
// Guarantee (property-tested): ClauseImplies(a, hull) and
// ClauseImplies(b, hull).
ConjunctiveClause ClauseHull(const ConjunctiveClause& a,
                             const ConjunctiveClause& b);

// True when the hull provably accepts exactly union(a, b) — used to report
// how much slack the merge introduced (slack is re-filtered at the user's
// profile, costing transfer of non-result tuples).
bool ClauseHullIsExact(const ConjunctiveClause& a,
                       const ConjunctiveClause& b);

// Hull of many clauses (fold of ClauseHull; empty input yields a tautology).
ConjunctiveClause ClauseHullMany(const std::vector<ConjunctiveClause>& cs);

}  // namespace cosmos

#endif  // COSMOS_EXPR_RELAXATION_H_
