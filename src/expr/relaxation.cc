#include "expr/relaxation.h"

#include "expr/implication.h"

namespace cosmos {

ConjunctiveClause ClauseHull(const ConjunctiveClause& a,
                             const ConjunctiveClause& b) {
  if (a.IsUnsatisfiable()) return b;
  if (b.IsUnsatisfiable()) return a;
  ConjunctiveClause out;
  for (const auto& [attr, ac] : a.constraints()) {
    auto it = b.constraints().find(attr);
    if (it == b.constraints().end()) continue;  // relax: drop
    const AttrConstraint& bc = it->second;

    // Interval hull.
    Interval hull = ac.interval.Hull(bc.interval);
    if (!hull.IsAll()) out.ConstrainInterval(attr, hull);

    // Keep an equality only when both demand the same value.
    if (ac.eq.has_value() && bc.eq.has_value() && *ac.eq == *bc.eq) {
      out.ConstrainEquals(attr, *ac.eq);
    }
    // Keep the common disequalities.
    for (const auto& v : ac.neq) {
      for (const auto& w : bc.neq) {
        if (v == w) out.ConstrainNotEquals(attr, v);
      }
    }
  }
  // Residuals survive only when enforced by both sides.
  for (const auto& ra : a.residual()) {
    for (const auto& rb : b.residual()) {
      if (ra->Equals(*rb)) {
        out.AddResidual(ra);
        break;
      }
    }
  }
  return out;
}

bool ClauseHullIsExact(const ConjunctiveClause& a,
                       const ConjunctiveClause& b) {
  ConjunctiveClause hull = ClauseHull(a, b);
  // Exact iff hull implies (a OR b). With canonical boxes that holds exactly
  // when the clauses differ on at most one attribute and on that attribute
  // the interval union is exact, with equal auxiliary constraints.
  if (ClauseImplies(hull, a) || ClauseImplies(hull, b)) return true;

  // Count attributes whose constraints differ.
  int differing = 0;
  const ConjunctiveClause* wide = &a;
  (void)wide;
  std::vector<std::string> attrs;
  for (const auto& [attr, c] : hull.constraints()) attrs.push_back(attr);
  // Also consider attributes present in a or b but dropped by the hull: the
  // hull is wider there, so the union is inexact unless the other clause
  // already covered everything — handled by the implication check above.
  for (const auto& [attr, c] : a.constraints()) {
    if (hull.constraints().find(attr) == hull.constraints().end()) {
      return false;
    }
  }
  for (const auto& [attr, c] : b.constraints()) {
    if (hull.constraints().find(attr) == hull.constraints().end()) {
      return false;
    }
  }
  std::string diff_attr;
  for (const auto& attr : attrs) {
    AttrConstraint ac = a.ConstraintFor(attr);
    AttrConstraint bc = b.ConstraintFor(attr);
    bool same = ac.interval == bc.interval &&
                ac.eq.has_value() == bc.eq.has_value() &&
                (!ac.eq.has_value() || *ac.eq == *bc.eq) && ac.neq == bc.neq;
    if (!same) {
      ++differing;
      diff_attr = attr;
    }
  }
  if (differing == 0) return true;
  if (differing > 1) return false;
  AttrConstraint ac = a.ConstraintFor(diff_attr);
  AttrConstraint bc = b.ConstraintFor(diff_attr);
  if (ac.eq.has_value() || bc.eq.has_value() || !ac.neq.empty() ||
      !bc.neq.empty()) {
    return false;
  }
  return ac.interval.UnionIsExact(bc.interval);
}

ConjunctiveClause ClauseHullMany(const std::vector<ConjunctiveClause>& cs) {
  ConjunctiveClause out;
  if (cs.empty()) return out;
  out = cs[0];
  for (size_t i = 1; i < cs.size(); ++i) out = ClauseHull(out, cs[i]);
  return out;
}

}  // namespace cosmos
